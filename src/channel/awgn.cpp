#include "channel/awgn.h"

#include <cmath>
#include <stdexcept>

#include "dsp/math_util.h"

namespace fmbs::channel {

AwgnSource::AwgnSource(units::Dbm noise_in_ref_bw, units::Hertz reference_bandwidth,
                       double sample_rate, std::uint64_t seed)
    : rng_(seed), dist_(0.0F, 1.0F) {
  if (reference_bandwidth.raw() <= 0.0 || sample_rate <= 0.0) {
    throw std::invalid_argument("AwgnSource: bad bandwidth or rate");
  }
  const double ref_power = noise_in_ref_bw.to_watts().raw();
  variance_ = ref_power * sample_rate / reference_bandwidth.raw();
  sigma_per_component_ = static_cast<float>(std::sqrt(variance_ / 2.0));
}

void AwgnSource::add_to(std::span<dsp::cfloat> block) {
  for (auto& v : block) {
    v += dsp::cfloat(sigma_per_component_ * dist_(rng_),
                     sigma_per_component_ * dist_(rng_));
  }
}

}  // namespace fmbs::channel
