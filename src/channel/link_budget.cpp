#include "channel/link_budget.h"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "channel/units.h"
#include "dsp/math_util.h"

namespace fmbs::channel {

double friis_path_loss_db(double distance_m, double frequency_hz) {
  if (distance_m <= 0.0 || frequency_hz <= 0.0) {
    throw std::invalid_argument("friis_path_loss_db: bad distance or frequency");
  }
  const double lambda = wavelength_m(frequency_hz);
  // Clamp inside the near field: FSPL below lambda/(2 pi) is not physical;
  // treat very small ranges as the near-field boundary.
  const double d = std::max(distance_m, lambda / (2.0 * dsp::kPi));
  return 20.0 * std::log10(4.0 * dsp::kPi * d / lambda);
}

double two_ray_path_loss_db(double distance_m, double frequency_hz,
                            double tx_height_m, double rx_height_m) {
  if (distance_m <= 0.0 || frequency_hz <= 0.0 || tx_height_m <= 0.0 ||
      rx_height_m <= 0.0) {
    throw std::invalid_argument("two_ray_path_loss_db: bad parameters");
  }
  const double lambda = wavelength_m(frequency_hz);
  const double d = std::max(distance_m, lambda / (2.0 * dsp::kPi));
  // Exact two-ray field sum with a -1 ground reflection coefficient.
  const double d_los = std::hypot(d, tx_height_m - rx_height_m);
  const double d_gnd = std::hypot(d, tx_height_m + rx_height_m);
  const double k = dsp::kTwoPi / lambda;
  const std::complex<double> e_los =
      std::polar(1.0 / d_los, -k * d_los);
  const std::complex<double> e_gnd =
      std::polar(-1.0 / d_gnd, -k * d_gnd);
  const double field = std::abs(e_los + e_gnd);
  // Normalize against the free-space field 1/d at the same range.
  const double rel = field * d_los;
  const double fspl = friis_path_loss_db(d_los, frequency_hz);
  return fspl - dsp::db_from_amplitude_ratio(std::max(rel, 1e-6));
}

LinkBudget compute_link_budget(double tag_power_dbm, double direct_power_dbm,
                               double tag_rx_distance_m,
                               const LinkBudgetConfig& config) {
  if (std::isnan(direct_power_dbm)) direct_power_dbm = tag_power_dbm;
  LinkBudget out;

  const double fspl_db =
      config.use_two_ray
          ? two_ray_path_loss_db(tag_rx_distance_m, config.carrier_hz,
                                 config.tag_height_m, config.rx_height_m)
          : friis_path_loss_db(tag_rx_distance_m, config.carrier_hz);
  const double refl_db = dsp::db_from_amplitude_ratio(config.reflection_amplitude);
  // P_rx(backscatter channel, excluding the 4/pi modulation factor carried
  // by the subcarrier waveform itself):
  const double p_back_dbm = tag_power_dbm + refl_db + config.tag_antenna_gain_db +
                            config.rx_antenna_gain_db -
                            config.implementation_loss_db - fspl_db;
  out.backscatter_gain_db = p_back_dbm - tag_power_dbm;
  // The simulated station waveform has unit mean-square amplitude, so a
  // component of power P watts is represented with amplitude sqrt(P).
  out.backscatter_amplitude = std::sqrt(dsp::watts_from_dbm(p_back_dbm));
  out.direct_amplitude = std::sqrt(dsp::watts_from_dbm(direct_power_dbm));
  return out;
}

BackscatterPath compute_backscatter_path(double tag_power_dbm,
                                         double direct_power_dbm,
                                         double tag_rx_distance_m,
                                         const LinkBudgetConfig& config) {
  BackscatterPath out;
  out.budget = compute_link_budget(tag_power_dbm, direct_power_dbm,
                                   tag_rx_distance_m, config);
  // One sideband of the square wave carries (2/pi)^2 of the reflection.
  out.sideband_watts = out.budget.backscatter_amplitude *
                       out.budget.backscatter_amplitude * (2.0 / dsp::kPi) *
                       (2.0 / dsp::kPi);
  out.sideband_power_dbm = dsp::dbm_from_watts(out.sideband_watts);
  return out;
}

}  // namespace fmbs::channel
