#include "channel/link_budget.h"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "dsp/math_util.h"

namespace fmbs::channel {

units::Db friis_path_loss(units::Meters distance, units::Hertz frequency) {
  if (distance.raw() <= 0.0 || frequency.raw() <= 0.0) {
    throw std::invalid_argument("friis_path_loss: bad distance or frequency");
  }
  const double lambda = frequency.wavelength().raw();
  // Clamp inside the near field: FSPL below lambda/(2 pi) is not physical;
  // treat very small ranges as the near-field boundary.
  const double d = std::max(distance.raw(), lambda / (2.0 * dsp::kPi));
  return units::Db{20.0 * std::log10(4.0 * dsp::kPi * d / lambda)};
}

units::Db two_ray_path_loss(units::Meters distance, units::Hertz frequency,
                            units::Meters tx_height, units::Meters rx_height) {
  if (distance.raw() <= 0.0 || frequency.raw() <= 0.0 ||
      tx_height.raw() <= 0.0 || rx_height.raw() <= 0.0) {
    throw std::invalid_argument("two_ray_path_loss: bad parameters");
  }
  const double lambda = frequency.wavelength().raw();
  const double d = std::max(distance.raw(), lambda / (2.0 * dsp::kPi));
  // Exact two-ray field sum with a -1 ground reflection coefficient.
  const double d_los = std::hypot(d, tx_height.raw() - rx_height.raw());
  const double d_gnd = std::hypot(d, tx_height.raw() + rx_height.raw());
  const double k = dsp::kTwoPi / lambda;
  const std::complex<double> e_los =
      std::polar(1.0 / d_los, -k * d_los);
  const std::complex<double> e_gnd =
      std::polar(-1.0 / d_gnd, -k * d_gnd);
  const double field = std::abs(e_los + e_gnd);
  // Normalize against the free-space field 1/d at the same range.
  const double rel = field * d_los;
  const units::Db fspl = friis_path_loss(units::Meters{d_los}, frequency);
  return fspl - units::Db::from_amplitude_ratio(std::max(rel, 1e-6));
}

LinkBudget compute_link_budget(units::Dbm tag_power,
                               std::optional<units::Dbm> direct_power,
                               units::Meters tag_rx_distance,
                               const LinkBudgetConfig& config) {
  const units::Dbm direct = direct_power.value_or(tag_power);
  LinkBudget out;

  const units::Db fspl =
      config.use_two_ray
          ? two_ray_path_loss(tag_rx_distance, config.carrier,
                              config.tag_height, config.rx_height)
          : friis_path_loss(tag_rx_distance, config.carrier);
  const units::Db refl =
      units::Db::from_amplitude_ratio(config.reflection_amplitude);
  // P_rx(backscatter channel, excluding the 4/pi modulation factor carried
  // by the subcarrier waveform itself):
  const units::Dbm p_back = tag_power + refl + config.tag_antenna_gain +
                            config.rx_antenna_gain -
                            config.implementation_loss - fspl;
  out.backscatter_gain = p_back - tag_power;
  // The simulated station waveform has unit mean-square amplitude, so a
  // component of power P watts is represented with amplitude sqrt(P).
  out.backscatter_amplitude = std::sqrt(p_back.to_watts().raw());
  out.direct_amplitude = std::sqrt(direct.to_watts().raw());
  return out;
}

BackscatterPath compute_backscatter_path(units::Dbm tag_power,
                                         std::optional<units::Dbm> direct_power,
                                         units::Meters tag_rx_distance,
                                         const LinkBudgetConfig& config) {
  BackscatterPath out;
  out.budget =
      compute_link_budget(tag_power, direct_power, tag_rx_distance, config);
  // One sideband of the square wave carries (2/pi)^2 of the reflection.
  out.sideband = units::Watts{out.budget.backscatter_amplitude *
                              out.budget.backscatter_amplitude *
                              (2.0 / dsp::kPi) * (2.0 / dsp::kPi)};
  out.sideband_power = out.sideband.to_dbm();
  return out;
}

}  // namespace fmbs::channel
