// Complex additive white Gaussian noise, specified the way receiver noise is
// quoted: dBm within a reference bandwidth (the 200 kHz FM channel).
#pragma once

#include <cstdint>
#include <random>
#include <span>

#include "core/units.h"
#include "dsp/types.h"

namespace fmbs::channel {

/// Streaming complex AWGN source.
class AwgnSource {
 public:
  /// noise_in_ref_bw: noise power within reference_bandwidth.
  /// sample_rate: simulation rate; the generated noise is white across the
  /// whole rate, so total noise power is scaled by sample_rate / ref_bw.
  AwgnSource(units::Dbm noise_in_ref_bw, units::Hertz reference_bandwidth,
             double sample_rate, std::uint64_t seed);

  /// Adds noise in place.
  void add_to(std::span<dsp::cfloat> block);

  /// Per-sample complex noise variance (I^2 + Q^2 expectation).
  double variance() const { return variance_; }

 private:
  double variance_;
  float sigma_per_component_;
  std::mt19937_64 rng_;
  std::normal_distribution<float> dist_;
};

}  // namespace fmbs::channel
