// Motion-induced fading for the smart-fabric experiments (paper Fig. 17b):
// a Rician process whose scattered component Doppler-spreads with body
// speed, plus slow log-normal body shadowing. Standing is nearly static
// (high K factor); walking and running lower K and raise the Doppler rate,
// producing exactly the BER inflation the paper measures.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "core/units.h"
#include "dsp/types.h"

namespace fmbs::channel {

/// Mobility presets from the paper (section 6.2).
enum class Mobility { kStanding, kWalking, kRunning };

/// Fading process parameters.
struct FadingConfig {
  units::Hertz carrier{94.9e6};
  double speed_mps = 0.0;           // body speed; 0 = static
  units::Db rician_k{25.0};         // LOS-to-scatter ratio
  units::Db shadow_sigma{0.0};      // slow body-shadowing std-dev
  units::Hertz shadow_rate{0.6};    // shadowing innovation rate
};

/// Preset for a mobility class: standing (static), walking (1 m/s, paper),
/// running (2.2 m/s, paper).
FadingConfig fading_for_mobility(Mobility mobility,
                                 units::Hertz carrier = units::Hertz{94.9e6});

/// Sum-of-sinusoids (Jakes-style) Rician fading generator producing a
/// complex gain per sample. Deterministic per seed.
class FadingProcess {
 public:
  FadingProcess(const FadingConfig& config, double sample_rate, std::uint64_t seed);

  /// Next complex channel gain (unit mean power), advancing the process by
  /// `stride` samples of simulated time.
  dsp::cfloat next(std::size_t stride = 1);

  /// Applies the fading to a block in place (gain evaluated per sample).
  void apply(std::span<dsp::cfloat> block);

  /// True when the configuration is static (gain == 1 always).
  bool is_static() const { return static_; }

 private:
  bool static_ = true;
  double sample_rate_ = 1.0;
  double los_amplitude_ = 1.0;
  double scatter_amplitude_ = 0.0;
  // Jakes sum-of-sinusoids state.
  std::vector<double> phase_;
  std::vector<double> step_;
  std::vector<double> gain_cos_;  // random arrival angles
  // Slow shadowing (first-order Gauss-Markov in dB).
  double shadow_db_ = 0.0;
  double shadow_alpha_ = 0.0;
  double shadow_sigma_db_ = 0.0;
  std::mt19937_64 rng_;
  std::normal_distribution<double> gauss_{0.0, 1.0};
  std::size_t shadow_interval_ = 1;
  std::size_t counter_ = 0;
  double current_shadow_gain_ = 1.0;
};

}  // namespace fmbs::channel
