#include "channel/fading.h"

#include <cmath>
#include <stdexcept>

#include "dsp/math_util.h"

namespace fmbs::channel {

FadingConfig fading_for_mobility(Mobility mobility, units::Hertz carrier) {
  FadingConfig cfg;
  cfg.carrier = carrier;
  switch (mobility) {
    case Mobility::kStanding:
      cfg.speed_mps = 0.05;  // breathing / small sway
      cfg.rician_k = units::Db{18.0};
      cfg.shadow_sigma = units::Db{0.5};
      cfg.shadow_rate = units::Hertz{0.3};
      break;
    case Mobility::kWalking:
      cfg.speed_mps = 1.0;  // paper: 1 m/s
      cfg.rician_k = units::Db{5.0};
      cfg.shadow_sigma = units::Db{5.5};  // arm-swing blockage of the worn antenna
      cfg.shadow_rate = units::Hertz{1.6};  // stride rate
      break;
    case Mobility::kRunning:
      cfg.speed_mps = 2.2;  // paper: 2.2 m/s
      cfg.rician_k = units::Db{2.0};
      cfg.shadow_sigma = units::Db{7.5};
      cfg.shadow_rate = units::Hertz{2.8};
      break;
  }
  return cfg;
}

FadingProcess::FadingProcess(const FadingConfig& config, double sample_rate,
                             std::uint64_t seed)
    : sample_rate_(sample_rate), rng_(seed) {
  if (sample_rate <= 0.0) throw std::invalid_argument("FadingProcess: bad rate");
  if (config.speed_mps <= 0.0 && config.shadow_sigma.raw() <= 0.0) {
    static_ = true;
    return;
  }
  static_ = false;

  const double k_linear = config.rician_k.power_ratio();
  los_amplitude_ = std::sqrt(k_linear / (k_linear + 1.0));
  scatter_amplitude_ = std::sqrt(1.0 / (k_linear + 1.0));

  const double doppler_hz =
      config.speed_mps / config.carrier.wavelength().raw();
  constexpr std::size_t kNumPaths = 12;
  std::uniform_real_distribution<double> uni(0.0, dsp::kTwoPi);
  phase_.resize(kNumPaths);
  step_.resize(kNumPaths);
  gain_cos_.resize(kNumPaths);
  for (std::size_t i = 0; i < kNumPaths; ++i) {
    const double angle = uni(rng_);
    phase_[i] = uni(rng_);
    step_[i] = dsp::kTwoPi * doppler_hz * std::cos(angle) / sample_rate;
    gain_cos_[i] = uni(rng_);
  }

  shadow_sigma_db_ = config.shadow_sigma.raw();
  // Update shadowing at ~100 Hz rather than per sample; exponential
  // autocorrelation with the configured rate.
  shadow_interval_ = static_cast<std::size_t>(std::max(1.0, sample_rate / 100.0));
  const double update_rate = sample_rate / static_cast<double>(shadow_interval_);
  shadow_alpha_ = std::exp(-config.shadow_rate.raw() / update_rate);
}

dsp::cfloat FadingProcess::next(std::size_t stride) {
  if (static_) return dsp::cfloat(1.0F, 0.0F);

  if (shadow_sigma_db_ > 0.0) {
    // Advance the Gauss-Markov shadowing once per crossed update interval.
    const std::size_t before = counter_ / shadow_interval_;
    counter_ += stride;
    const std::size_t after = counter_ / shadow_interval_;
    for (std::size_t k = before; k < after; ++k) {
      shadow_db_ = shadow_alpha_ * shadow_db_ +
                   std::sqrt(1.0 - shadow_alpha_ * shadow_alpha_) *
                       shadow_sigma_db_ * gauss_(rng_);
    }
    if (after > before) {
      current_shadow_gain_ = dsp::amplitude_ratio_from_db(shadow_db_);
    }
  } else {
    counter_ += stride;
  }

  double re = 0.0, im = 0.0;
  const double norm = 1.0 / std::sqrt(static_cast<double>(phase_.size()));
  const double s = static_cast<double>(stride);
  for (std::size_t i = 0; i < phase_.size(); ++i) {
    phase_[i] += step_[i] * s;
    re += std::cos(phase_[i] + gain_cos_[i]);
    im += std::sin(phase_[i] + gain_cos_[i]);
  }
  re *= norm * scatter_amplitude_;
  im *= norm * scatter_amplitude_;
  re += los_amplitude_;

  return dsp::cfloat(static_cast<float>(re * current_shadow_gain_),
                     static_cast<float>(im * current_shadow_gain_));
}

void FadingProcess::apply(std::span<dsp::cfloat> block) {
  if (static_) return;
  // Fading is slow relative to the RF rate; evaluate the gain once per
  // 64-sample chunk to keep the cost negligible.
  constexpr std::size_t kChunk = 64;
  for (std::size_t start = 0; start < block.size(); start += kChunk) {
    const std::size_t end = std::min(start + kChunk, block.size());
    const dsp::cfloat g = next(end - start);
    for (std::size_t i = start; i < end; ++i) block[i] *= g;
  }
}

}  // namespace fmbs::channel
