// Per-tag link superposition kernels: the RF scene at a receiver is the
// direct station wave plus one scaled reflected wave per active tag,
//
//   rf[i] = g_direct * station[i] + sum_t g_t * reflected_t[i]
//
// computed with one scale pass and one scaled-accumulate pass per tag. The
// operation order matches the single-tag simulator's fused expression
// exactly (scalar multiply rounds, then the add rounds), so a one-tag
// superposition is bit-identical to the legacy core::simulate scene.
#pragma once

#include <span>

#include "dsp/types.h"

namespace fmbs::channel {

/// dst[i] = gain * src[i]. Spans must be the same length.
void scale_into(std::span<dsp::cfloat> dst, std::span<const dsp::cfloat> src,
                float gain);

/// dst[i] += gain * src[i] (complex axpy). Spans must be the same length.
void accumulate_scaled(std::span<dsp::cfloat> dst,
                       std::span<const dsp::cfloat> src, float gain);

}  // namespace fmbs::channel
