// Backscatter link budget. The paper parameterizes every experiment by the
// ambient FM power measured *at the backscatter device* and the distance
// between the device and the receiver — this module turns those two knobs
// into the amplitude scalars the RF scene applies.
//
// Model: the tag re-radiates a fraction of the power incident on its
// antenna. Switching the antenna between open and short with waveform
// B(t) in {+1,-1} multiplies the incident field by (delta Gamma / 2) B(t);
// the band-limited square-wave synthesis carries the 4/pi fundamental
// explicitly, so this budget handles only (delta Gamma / 2), antenna gains
// and free-space propagation.
//
// Every quantity is strongly typed (core/units.h): powers are units::Dbm or
// units::Watts, gains units::Db, ranges units::Meters — a feet-for-meters or
// dB-for-dBm swap does not compile.
#pragma once

#include <cstdint>
#include <optional>

#include "core/units.h"

namespace fmbs::channel {

/// Free-space path loss (positive gain value) between isotropic antennas.
/// Throws std::invalid_argument on a non-positive distance or frequency.
units::Db friis_path_loss(units::Meters distance, units::Hertz frequency);

/// Two-ray ground-reflection path loss: direct + ground-bounced rays
/// interfere, producing the ripple-then-d^4 falloff of near-ground outdoor
/// links (posters at a bus stop, a phone in a hand).
units::Db two_ray_path_loss(units::Meters distance, units::Hertz frequency,
                            units::Meters tx_height, units::Meters rx_height);

/// Link-budget inputs.
struct LinkBudgetConfig {
  units::Hertz carrier{94.9e6};        // the paper's deployed station
  units::Db tag_antenna_gain{2.15};    // half-wave dipole poster
  units::Db rx_antenna_gain{-3.0};     // headphone-wire antenna (phones)
  /// |delta Gamma| / 2: differential reflection amplitude of the switch
  /// between its open and short states (1.0 = ideal).
  double reflection_amplitude = 0.8;
  /// Extra implementation loss (cable, polarization mismatch).
  units::Db implementation_loss{2.0};
  /// Use the two-ray ground-reflection model instead of free space for the
  /// tag-to-receiver segment (heights below).
  bool use_two_ray = false;
  units::Meters tag_height{1.5};  // poster on a bus-stop wall
  units::Meters rx_height{1.2};   // phone in a hand
};

/// Computed scene gains.
struct LinkBudget {
  /// Amplitude scale applied to the tag-reflected wave as it arrives at the
  /// receiver (relative to a unit-power incident wave at the tag).
  double backscatter_amplitude = 0.0;
  /// Same quantity as a power gain (for reporting).
  units::Db backscatter_gain{0.0};
  /// Amplitude scale of the direct station signal at the receiver.
  double direct_amplitude = 0.0;
};

/// Builds the scene gains from the paper's two sweep knobs.
/// `tag_power` — ambient FM power at the tag; `direct_power` — power of the
/// (unshifted) station at the receiver (the paper keeps the receiver and tag
/// equidistant from the transmitter, so std::nullopt defaults to the same
/// value); `tag_rx_distance` — tag-to-receiver range.
LinkBudget compute_link_budget(units::Dbm tag_power,
                               std::optional<units::Dbm> direct_power,
                               units::Meters tag_rx_distance,
                               const LinkBudgetConfig& config = {});

/// A priced tag-to-receiver reflection path: the link budget plus the
/// square-wave sideband bookkeeping every engine needs when it reasons about
/// the reflected power as a channel occupant (carrier sensing, interference
/// folding, SNR). One sideband of the switch waveform carries (2/pi)^2 of
/// the reflected power — the band-limited square synthesis puts 4/pi on the
/// fundamental's amplitude and the receiver hears one of the two copies.
struct BackscatterPath {
  LinkBudget budget;
  /// In-channel power of one backscatter sideband at the receiver.
  units::Watts sideband{0.0};
  units::Dbm sideband_power{units::kFloorDb};
};

/// compute_link_budget plus the single-sideband power split. This is the one
/// shared pricing of a reflection; the scenario engine's carrier-sense
/// oracle, its per-segment link tables and the fleet engine's analytic chain
/// all go through it instead of repeating the (2/pi)^2 arithmetic.
BackscatterPath compute_backscatter_path(units::Dbm tag_power,
                                         std::optional<units::Dbm> direct_power,
                                         units::Meters tag_rx_distance,
                                         const LinkBudgetConfig& config = {});

/// Receiver noise floor (within the 200 kHz FM channel) for a given receiver
/// class. These lump LNA noise figure and antenna inefficiency and are
/// calibrated so the end-to-end ranges match the paper (phones: Fig. 7/8,
/// cars: Fig. 14 working to 60 ft).
struct ReceiverNoise {
  /// Smartphone with headphone-cable antenna.
  static constexpr units::Dbm kPhonePer200kHz{-93.0};
  /// Car receiver with proper whip antenna and ground plane.
  static constexpr units::Dbm kCarPer200kHz{-98.0};
};

}  // namespace fmbs::channel
