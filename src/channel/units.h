// Unit conversions. The paper reports distances in feet and powers in dBm;
// the physics uses meters and watts.
#pragma once

namespace fmbs::channel {

inline constexpr double kMetersPerFoot = 0.3048;
inline constexpr double kSpeedOfLight = 299792458.0;  // m/s

/// Feet -> meters.
constexpr double meters_from_feet(double feet) { return feet * kMetersPerFoot; }

/// Meters -> feet.
constexpr double feet_from_meters(double meters) { return meters / kMetersPerFoot; }

/// Wavelength (m) at a carrier frequency (Hz).
constexpr double wavelength_m(double frequency_hz) {
  return kSpeedOfLight / frequency_hz;
}

}  // namespace fmbs::channel
