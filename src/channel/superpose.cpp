#include "channel/superpose.h"

#include <stdexcept>

namespace fmbs::channel {

void scale_into(std::span<dsp::cfloat> dst, std::span<const dsp::cfloat> src,
                float gain) {
  if (dst.size() != src.size()) {
    throw std::invalid_argument("scale_into: length mismatch");
  }
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = gain * src[i];
}

void accumulate_scaled(std::span<dsp::cfloat> dst,
                       std::span<const dsp::cfloat> src, float gain) {
  if (dst.size() != src.size()) {
    throw std::invalid_argument("accumulate_scaled: length mismatch");
  }
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += gain * src[i];
}

}  // namespace fmbs::channel
