#include "channel/superpose.h"

#include <stdexcept>

#include "dsp/simd.h"

namespace fmbs::channel {

// Both kernels are elementwise, so the SSE2 paths are bit-identical to the
// scalar loops: each output float is one multiply (and one add) in the same
// order either way. complex<float> arrays are layout-compatible with
// interleaved float pairs, so a span of n complex samples is 2n floats.

void scale_into(std::span<dsp::cfloat> dst, std::span<const dsp::cfloat> src,
                float gain) {
  if (dst.size() != src.size()) {
    throw std::invalid_argument("scale_into: length mismatch");
  }
#if FMBS_SIMD_ENABLED
  dsp::simd::scale_f32(reinterpret_cast<float*>(dst.data()),
                       reinterpret_cast<const float*>(src.data()), gain,
                       2 * dst.size());
#else
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = gain * src[i];
#endif
}

void accumulate_scaled(std::span<dsp::cfloat> dst,
                       std::span<const dsp::cfloat> src, float gain) {
  if (dst.size() != src.size()) {
    throw std::invalid_argument("accumulate_scaled: length mismatch");
  }
#if FMBS_SIMD_ENABLED
  dsp::simd::axpy_f32(reinterpret_cast<float*>(dst.data()),
                      reinterpret_cast<const float*>(src.data()), gain,
                      2 * dst.size());
#else
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += gain * src[i];
#endif
}

}  // namespace fmbs::channel
