// City-scale FM signal survey simulator (paper section 3.1 / Fig. 2).
// The paper drove a USRP through Seattle, gridded the city into 0.8 mi
// cells, and recorded the strongest FM station per cell; we model towers
// with high ERP and log-distance propagation with log-normal shadowing,
// calibrated to the paper's findings: power between -10 and -55 dBm with a
// median of -35.15 dBm, and a 24 h temporal standard deviation of 0.7 dB.
#pragma once

#include <cstdint>
#include <vector>

namespace fmbs::survey {

/// Survey model parameters.
struct CitySurveyConfig {
  double city_extent_miles = 8.0;     // square city edge
  double grid_cell_miles = 0.8;       // paper's grid
  int num_stations = 25;              // transmitting towers in range
  double erp_min_kw = 5.0;            // effective radiated power range
  double erp_max_kw = 100.0;          // FCC cap (paper section 3.1)
  double path_loss_exponent = 3.1;    // dense urban
  double shadowing_sigma_db = 6.0;    // building/terrain shadowing
  double elevation_spread_ft = 450.0; // paper: 450 ft elevation differences
  std::uint64_t seed = 2017;
};

/// One grid-cell measurement.
struct SurveySample {
  double x_miles = 0.0;
  double y_miles = 0.0;
  double best_station_dbm = 0.0;  // strongest station in this cell
};

/// Simulates the drive-through survey; returns one sample per grid cell
/// (69 cells at the default extents, matching the paper's measurement count).
std::vector<SurveySample> run_city_survey(const CitySurveyConfig& config);

/// Temporal model: per-minute received power of the strongest station at a
/// fixed location over `hours` (paper Fig. 2b: roughly constant, sigma
/// ~0.7 dB). Gauss-Markov around the mean.
std::vector<double> run_temporal_survey(double mean_dbm, double sigma_db,
                                        int hours, std::uint64_t seed);

}  // namespace fmbs::survey
