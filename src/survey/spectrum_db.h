// FM spectrum occupancy database (paper section 3.3 / Fig. 4). The paper
// pulled licensed-station lists from radio-locator.com and detectable
// stations from fmfool.com for five cities; those services are live web
// resources, so this module embeds representative per-city channel sets,
// statistically matched to Fig. 4a (licensed/detectable counts), and
// implements the real algorithms on top:
//  * occupancy counting,
//  * minimum shift frequency: for each active station, the distance to the
//    nearest unoccupied FM channel (Fig. 4b: median 200 kHz, worst < 800 kHz),
//  * backscatter channel selection (pick f_back so fc + f_back lands on the
//    emptiest channel).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fmbs::survey {

/// Channel occupancy of one city. Channels are indexed 0..99
/// (88.1 + 0.2 k MHz).
struct CitySpectrum {
  std::string name;
  std::vector<int> licensed_channels;    // channel indices with a license
  std::vector<int> detectable_channels;  // channels with receivable signal
  /// Ambient power of each detectable channel at a street location (dBm),
  /// parallel to detectable_channels.
  std::vector<double> detectable_power_dbm;
};

/// Center frequency (Hz) of FM channel index 0..99.
double channel_frequency_hz(int channel_index);

/// The five surveyed cities with representative occupancy data.
std::vector<CitySpectrum> builtin_city_spectra();

/// Generates a synthetic city spectrum with the requested counts (for
/// parameter sweeps beyond the built-in five).
CitySpectrum synthesize_city_spectrum(const std::string& name, int licensed,
                                      int detectable, std::uint64_t seed);

/// Minimum shift frequencies (Hz): for every *licensed* station, the
/// distance to the nearest channel with no licensed station (the paper's
/// Fig. 4b definition, computed from licensing data).
std::vector<double> minimum_shift_frequencies(const CitySpectrum& city);

/// Chosen backscatter shift for a tag listening to `station_channel`:
/// prefers the unoccupied channel with the lowest ambient power within
/// `max_shift_hz` (paper: "the optimal value of f_back ... should be chosen
/// such that the backscatter transmission is sent at the frequency with the
/// lowest power ambient FM signal").
struct ShiftChoice {
  int target_channel = -1;
  double shift_hz = 0.0;       // may be negative (shift down-band)
  double ambient_dbm = -120.0; // estimated ambient power on the target
};
ShiftChoice choose_backscatter_shift(const CitySpectrum& city, int station_channel,
                                     double max_shift_hz = 800e3);

}  // namespace fmbs::survey
