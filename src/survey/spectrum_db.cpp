#include "survey/spectrum_db.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <set>
#include <stdexcept>

#include "fm/constants.h"

namespace fmbs::survey {

double channel_frequency_hz(int channel_index) {
  if (channel_index < 0 || channel_index >= fm::kNumChannels) {
    throw std::invalid_argument("channel_frequency_hz: index out of range");
  }
  return fm::kBandLoHz + channel_index * fm::kChannelSpacingHz;
}

CitySpectrum synthesize_city_spectrum(const std::string& name, int licensed,
                                      int detectable, std::uint64_t seed) {
  if (licensed < 0 || licensed > fm::kNumChannels || detectable < 0 ||
      detectable > fm::kNumChannels) {
    throw std::invalid_argument("synthesize_city_spectrum: bad counts");
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> chan(0, fm::kNumChannels - 1);
  std::uniform_real_distribution<double> strong(-45.0, -15.0);
  std::uniform_real_distribution<double> weak(-75.0, -50.0);
  std::bernoulli_distribution allow_adjacent(0.25);

  // Licensed stations: FCC avoids first-adjacent co-location, but
  // neighboring-market licenses make some adjacency appear in practice.
  std::set<int> lic;
  int guard = 0;
  while (static_cast<int>(lic.size()) < licensed && guard++ < 20000) {
    const int c = chan(rng);
    if (lic.count(c)) continue;
    const bool has_neighbor = lic.count(c - 1) || lic.count(c + 1);
    if (has_neighbor && !allow_adjacent(rng)) continue;
    lic.insert(c);
  }

  CitySpectrum city;
  city.name = name;
  city.licensed_channels.assign(lic.begin(), lic.end());

  // Detectable: most licensed stations are receivable (some silent), plus
  // out-of-market stations when detectable > licensed.
  std::set<int> det;
  std::vector<int> lic_vec(lic.begin(), lic.end());
  std::shuffle(lic_vec.begin(), lic_vec.end(), rng);
  const int receivable =
      std::min<int>(detectable, static_cast<int>(lic_vec.size()) * 9 / 10);
  for (int i = 0; i < receivable; ++i) det.insert(lic_vec[static_cast<std::size_t>(i)]);
  guard = 0;
  while (static_cast<int>(det.size()) < detectable && guard++ < 20000) {
    det.insert(chan(rng));
  }

  for (const int c : det) {
    city.detectable_channels.push_back(c);
    const bool local = lic.count(c) > 0;
    city.detectable_power_dbm.push_back(local ? strong(rng) : weak(rng));
  }
  return city;
}

std::vector<CitySpectrum> builtin_city_spectra() {
  // Counts read off the paper's Fig. 4a (licensed vs detectable): Seattle is
  // the city where detectable exceeds licensed (neighboring-city signals).
  return {
      synthesize_city_spectrum("SFO", 45, 37, 101),
      synthesize_city_spectrum("Seattle", 39, 55, 202),
      synthesize_city_spectrum("Boston", 36, 31, 303),
      synthesize_city_spectrum("Chicago", 55, 46, 404),
      synthesize_city_spectrum("LA", 66, 52, 505),
  };
}

std::vector<double> minimum_shift_frequencies(const CitySpectrum& city) {
  std::set<int> occupied(city.licensed_channels.begin(),
                         city.licensed_channels.end());
  std::vector<double> shifts;
  shifts.reserve(city.licensed_channels.size());
  for (const int c : city.licensed_channels) {
    int best = fm::kNumChannels;  // in channel units
    for (int other = 0; other < fm::kNumChannels; ++other) {
      if (occupied.count(other)) continue;
      best = std::min(best, std::abs(other - c));
    }
    if (best == fm::kNumChannels) continue;  // fully occupied band
    shifts.push_back(best * fm::kChannelSpacingHz);
  }
  return shifts;
}

ShiftChoice choose_backscatter_shift(const CitySpectrum& city, int station_channel,
                                     double max_shift_hz) {
  if (station_channel < 0 || station_channel >= fm::kNumChannels) {
    throw std::invalid_argument("choose_backscatter_shift: bad channel");
  }
  std::set<int> occupied(city.licensed_channels.begin(),
                         city.licensed_channels.end());
  // Ambient power per channel: detectable power where known, floor elsewhere.
  std::vector<double> ambient(fm::kNumChannels, -110.0);
  for (std::size_t i = 0; i < city.detectable_channels.size(); ++i) {
    ambient[static_cast<std::size_t>(city.detectable_channels[i])] =
        city.detectable_power_dbm[i];
  }

  const int max_steps =
      static_cast<int>(max_shift_hz / fm::kChannelSpacingHz + 0.5);
  ShiftChoice choice;
  double best_power = 1e9;
  for (int delta = -max_steps; delta <= max_steps; ++delta) {
    if (delta == 0) continue;
    const int target = station_channel + delta;
    if (target < 0 || target >= fm::kNumChannels) continue;
    if (occupied.count(target)) continue;
    const double p = ambient[static_cast<std::size_t>(target)];
    // Prefer lower ambient power; ties break toward the smaller shift
    // (cheaper subcarrier, lower tag power).
    const bool better =
        p < best_power - 1e-9 ||
        (std::abs(p - best_power) <= 1e-9 &&
         std::abs(delta) * fm::kChannelSpacingHz < std::abs(choice.shift_hz));
    if (better) {
      best_power = p;
      choice.target_channel = target;
      choice.shift_hz = delta * fm::kChannelSpacingHz;
      choice.ambient_dbm = p;
    }
  }
  return choice;
}

}  // namespace fmbs::survey
