#include "survey/city_survey.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "dsp/math_util.h"

namespace fmbs::survey {

namespace {
constexpr double kMilesToMeters = 1609.34;
}

std::vector<SurveySample> run_city_survey(const CitySurveyConfig& config) {
  if (config.grid_cell_miles <= 0.0 || config.city_extent_miles <= 0.0) {
    throw std::invalid_argument("run_city_survey: bad extents");
  }
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> erp(config.erp_min_kw, config.erp_max_kw);
  std::normal_distribution<double> shadow(0.0, config.shadowing_sigma_db);

  // Broadcast towers cluster on hills and masts around (not inside) the
  // drive grid; place them on an annulus 2.5-10 miles from the city center.
  struct Tower {
    double x, y, erp_dbm;
  };
  const double cx = config.city_extent_miles / 2.0;
  std::uniform_real_distribution<double> radius(2.5, 10.0);
  std::uniform_real_distribution<double> angle(0.0, dsp::kTwoPi);
  std::vector<Tower> towers(static_cast<std::size_t>(config.num_stations));
  for (auto& t : towers) {
    const double r = radius(rng);
    const double a = angle(rng);
    t.x = cx + r * std::cos(a);
    t.y = cx + r * std::sin(a);
    t.erp_dbm = dsp::dbm_from_watts(erp(rng) * 1000.0);
  }

  const int cells_per_edge = static_cast<int>(
      std::floor(config.city_extent_miles / config.grid_cell_miles));
  std::vector<SurveySample> samples;

  // Urban-macro reference loss at 1 km for ~98 MHz (Hata-like: tall tower to
  // a street-level antenna through clutter), then log-distance beyond.
  const double ref_loss_db = 103.0;
  for (int gy = 0; gy < cells_per_edge; ++gy) {
    for (int gx = 0; gx < cells_per_edge; ++gx) {
      // The paper reports 69 grid squares; an 8x0.8 grid is 100 cells, so
      // keep the driveable subset — skip cells pseudo-randomly (water,
      // highways) to land near the paper's count.
      if ((gx * 31 + gy * 17 + static_cast<int>(config.seed)) % 10 < 3) continue;
      SurveySample s;
      s.x_miles = (gx + 0.5) * config.grid_cell_miles;
      s.y_miles = (gy + 0.5) * config.grid_cell_miles;
      double best = -300.0;
      for (const Tower& t : towers) {
        const double dx = (s.x_miles - t.x) * kMilesToMeters;
        const double dy = (s.y_miles - t.y) * kMilesToMeters;
        const double d = std::max(std::hypot(dx, dy), 200.0);
        const double loss = ref_loss_db + 10.0 * config.path_loss_exponent *
                                              std::log10(d / 1000.0);
        const double rx = t.erp_dbm - loss + shadow(rng);
        best = std::max(best, rx);
      }
      s.best_station_dbm = best;
      samples.push_back(s);
    }
  }
  return samples;
}

std::vector<double> run_temporal_survey(double mean_dbm, double sigma_db,
                                        int hours, std::uint64_t seed) {
  if (hours <= 0) throw std::invalid_argument("run_temporal_survey: bad hours");
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  const int minutes = hours * 60;
  std::vector<double> out(static_cast<std::size_t>(minutes));
  // First-order Gauss-Markov: slow drift (multipath from moving cars,
  // weather) with the configured stationary sigma.
  const double rho = 0.97;
  double state = 0.0;
  for (auto& v : out) {
    state = rho * state + std::sqrt(1.0 - rho * rho) * sigma_db * g(rng);
    v = mean_dbm + state;
  }
  return out;
}

}  // namespace fmbs::survey
