#include "core/experiment.h"

#include <cmath>
#include <iomanip>
#include <stdexcept>

#include "audio/speech_synth.h"
#include "audio/tone.h"
#include "dsp/spectrum.h"
#include "rx/cooperative.h"
#include "rx/mrc.h"
#include "tag/baseband.h"

namespace fmbs::core {

namespace {

/// Seed offsets so the station program, tag content and channel noise are
/// mutually independent processes.
constexpr std::uint64_t kContentSeedOffset = 0x100000;
constexpr std::uint64_t kNoiseSeedOffset = 0x200000;

double duration_for_bits(tag::DataRate rate, std::size_t num_bits) {
  return static_cast<double>(num_bits) / tag::bits_per_second(rate) + 0.15;
}

/// Settle time before the data starts: lets the receiver filters, pilot
/// envelope tracker and AGC converge so the first symbol is clean (real
/// deployments begin every packet with a preamble that serves the same
/// purpose).
constexpr double kSettleSeconds = 0.08;

audio::MonoBuffer with_lead_in(const audio::MonoBuffer& wave) {
  return audio::concat(audio::make_silence(kSettleSeconds, wave.sample_rate), wave);
}

audio::MonoBuffer drop_lead_in(const audio::MonoBuffer& mono) {
  const auto skip = static_cast<std::size_t>(kSettleSeconds * mono.sample_rate);
  if (mono.size() <= skip) return mono;
  return audio::MonoBuffer(
      std::vector<float>(mono.samples.begin() + static_cast<std::ptrdiff_t>(skip),
                         mono.samples.end()),
      mono.sample_rate);
}

// The pipeline group delay shifts the data by a few tens of samples, so the
// final symbol of the last repetition ends just past the trimmed combine
// buffer. Repetitions are cyclic, so extending the buffer with its own head
// restores that tail for the demodulator.
void extend_circularly(audio::MonoBuffer& combined) {
  const std::size_t extra = std::min<std::size_t>(combined.size(), 480);
  combined.samples.insert(combined.samples.end(), combined.samples.begin(),
                          combined.samples.begin() + static_cast<std::ptrdiff_t>(extra));
}

}  // namespace

SystemConfig make_system(const ExperimentPoint& point) {
  SystemConfig cfg;
  cfg.station.program.genre = point.genre;
  cfg.station.program.stereo = point.stereo_station;
  cfg.station.seed = point.station_seed != 0 ? point.station_seed : point.seed;
  cfg.scene.tag_power = point.tag_power;
  cfg.scene.tag_rx_distance = point.distance;
  cfg.scene.noise_seed = point.seed + kNoiseSeedOffset;
  cfg.receiver = point.receiver;
  if (point.receiver == ReceiverKind::kCar) {
    cfg.scene.rx_noise_200khz = channel::ReceiverNoise::kCarPer200kHz;
    cfg.scene.link.rx_antenna_gain =
        units::Db{tag::car_whip_antenna().effective_gain_db()};
    cfg.stereo_decoder.force_mono = true;  // car stereo used as plain mono
    // Car ranges (20-80 ft) run near the ground where the two-ray d^4
    // falloff dominates (poster at 5 ft per the paper, whip on the car
    // body); phones operate inside the two-ray crossover so free space
    // suffices there.
    cfg.scene.link.use_two_ray = true;
    cfg.scene.link.tag_height = units::Meters{1.52};  // poster mounted 5 ft up
    cfg.scene.link.rx_height = units::Meters{1.5};
  } else {
    cfg.scene.link.rx_antenna_gain =
        units::Db{tag::headphone_antenna().effective_gain_db()};
  }
  return cfg;
}

double run_tone_snr(const ExperimentPoint& point, units::Hertz tone,
                    bool stereo_band, units::Seconds duration) {
  const double tone_hz = tone.raw();
  const double duration_seconds = duration.raw();
  SystemConfig cfg = make_system(point);
  // Fig. 6 methodology: "we simulate an FM station transmitting no audio
  // information (FM_audio = 0, a single tone at fc)".
  cfg.station.program.genre = audio::ProgramGenre::kSilence;
  cfg.station.program.stereo = false;

  const audio::MonoBuffer tone_wave =
      audio::make_tone(tone_hz, 1.0, duration_seconds, fm::kAudioRate);
  dsp::rvec bb;
  if (stereo_band) {
    bb = tag::compose_stereo_baseband(tone_wave, /*insert_pilot=*/true);
  } else {
    bb = tag::compose_overlay_baseband(tone_wave, kOverlayLevel);
  }
  const SimulationResult sim = simulate(cfg, bb, duration);

  const audio::MonoBuffer& measured =
      stereo_band ? sim.backscatter_rx.stereo.side() : sim.backscatter_rx.mono;
  // Skip the filter-settling head before measuring.
  const auto skip = static_cast<std::size_t>(0.1 * fm::kAudioRate);
  if (measured.size() <= skip + 4096) {
    throw std::invalid_argument("run_tone_snr: capture too short");
  }
  const std::span<const float> body(measured.samples.data() + skip,
                                    measured.size() - skip);
  return dsp::tone_snr_db(body, fm::kAudioRate, tone_hz, 100.0, 15000.0);
}

namespace {

rx::BerResult demodulate_and_compare(const audio::MonoBuffer& audio_in,
                                     const std::vector<std::uint8_t>& bits,
                                     tag::DataRate rate) {
  const rx::FskDemodResult demod = rx::demodulate_fsk(audio_in, rate, bits.size());
  return rx::compare_bits(bits, demod.bits);
}

}  // namespace

rx::BerResult run_overlay_ber(const ExperimentPoint& point, tag::DataRate rate,
                              std::size_t num_bits) {
  SystemConfig cfg = make_system(point);
  const auto bits =
      tag::random_bits(num_bits, point.seed + kContentSeedOffset);
  const audio::MonoBuffer wave = with_lead_in(
      tag::modulate_fsk(bits, rate, fm::kAudioRate));
  const dsp::rvec bb = tag::compose_overlay_baseband(wave, kOverlayLevel);
  const SimulationResult sim = simulate(
      cfg, bb,
      units::Seconds{duration_for_bits(rate, num_bits) + kSettleSeconds});
  return demodulate_and_compare(drop_lead_in(sim.backscatter_rx.mono), bits, rate);
}

rx::BerResult run_overlay_ber_mrc(const ExperimentPoint& point, tag::DataRate rate,
                                  std::size_t num_bits, std::size_t repetitions) {
  if (repetitions == 0) throw std::invalid_argument("run_overlay_ber_mrc: 0 reps");
  SystemConfig cfg = make_system(point);
  const auto bits =
      tag::random_bits(num_bits, point.seed + kContentSeedOffset);
  const audio::MonoBuffer one = tag::modulate_fsk(bits, rate, fm::kAudioRate);
  audio::MonoBuffer all = one;
  for (std::size_t r = 1; r < repetitions; ++r) all = audio::concat(all, one);

  const double payload_seconds = all.duration_seconds();
  const dsp::rvec bb =
      tag::compose_overlay_baseband(with_lead_in(all), kOverlayLevel);
  const SimulationResult sim =
      simulate(cfg, bb, units::Seconds{payload_seconds + kSettleSeconds + 0.15});

  // Trim the padding tail so the N segments tile exactly, then combine.
  audio::MonoBuffer mono = drop_lead_in(sim.backscatter_rx.mono);
  const auto payload_samples =
      static_cast<std::size_t>(payload_seconds * fm::kAudioRate);
  if (mono.size() > payload_samples) mono.samples.resize(payload_samples);
  // Repetitions are sample-synchronous here (one capture), so realignment is
  // disabled: a +-1 sample correlation error would rotate the highest FSK
  // tones enough to partially cancel instead of combine.
  audio::MonoBuffer combined = rx::mrc_combine(mono, repetitions, 0);
  extend_circularly(combined);
  return demodulate_and_compare(combined, bits, rate);
}

rx::BerResult run_overlay_ber_coded(const ExperimentPoint& point,
                                    tag::DataRate rate, std::size_t payload_bits,
                                    tag::FecScheme scheme) {
  SystemConfig cfg = make_system(point);
  const auto payload =
      tag::random_bits(payload_bits, point.seed + kContentSeedOffset);
  const auto coded = tag::fec_encode(payload, scheme);
  const audio::MonoBuffer wave =
      with_lead_in(tag::modulate_fsk(coded, rate, fm::kAudioRate));
  const dsp::rvec bb = tag::compose_overlay_baseband(wave, kOverlayLevel);
  const SimulationResult sim = simulate(
      cfg, bb,
      units::Seconds{duration_for_bits(rate, coded.size()) + kSettleSeconds});
  const rx::FskDemodResult demod = rx::demodulate_fsk(
      drop_lead_in(sim.backscatter_rx.mono), rate, coded.size());
  const auto decoded = tag::fec_decode(demod.bits, scheme, payload_bits);
  return rx::compare_bits(payload, decoded);
}

rx::BerResult run_stereo_ber(const ExperimentPoint& point, tag::DataRate rate,
                             std::size_t num_bits) {
  SystemConfig cfg = make_system(point);
  const bool insert_pilot = !point.stereo_station;  // mono-to-stereo conversion
  const auto bits =
      tag::random_bits(num_bits, point.seed + kContentSeedOffset);
  const audio::MonoBuffer wave = with_lead_in(
      tag::modulate_fsk(bits, rate, fm::kAudioRate));
  const dsp::rvec bb = tag::compose_stereo_baseband(wave, insert_pilot);
  const SimulationResult sim = simulate(
      cfg, bb,
      units::Seconds{duration_for_bits(rate, num_bits) + kSettleSeconds});
  // The receiver outputs L and R; recover the stereo stream as (L-R)/2.
  const audio::MonoBuffer side = sim.backscatter_rx.stereo.side();
  return demodulate_and_compare(drop_lead_in(side), bits, rate);
}

namespace {

audio::MonoBuffer tag_speech(double duration_seconds, std::uint64_t seed) {
  audio::SpeechConfig sc;
  sc.pitch_hz = 165.0;  // distinct voice from the news announcer
  sc.level_rms = 0.2;
  return audio::synthesize_speech(sc, duration_seconds, fm::kAudioRate, seed);
}

}  // namespace

double run_overlay_pesq(const ExperimentPoint& point, units::Seconds duration) {
  const double duration_seconds = duration.raw();
  SystemConfig cfg = make_system(point);
  const audio::MonoBuffer speech =
      tag_speech(duration_seconds, point.seed + kContentSeedOffset);
  const dsp::rvec bb = tag::compose_overlay_baseband(speech, kOverlayLevel);
  const SimulationResult sim =
      simulate(cfg, bb, units::Seconds{duration_seconds + 0.1});
  return audio::pesq_like(speech, sim.backscatter_rx.mono);
}

double run_stereo_pesq(const ExperimentPoint& point, units::Seconds duration) {
  const double duration_seconds = duration.raw();
  SystemConfig cfg = make_system(point);
  const bool insert_pilot = !point.stereo_station;
  const audio::MonoBuffer speech =
      tag_speech(duration_seconds, point.seed + kContentSeedOffset);
  const dsp::rvec bb = tag::compose_stereo_baseband(speech, insert_pilot);
  const SimulationResult sim =
      simulate(cfg, bb, units::Seconds{duration_seconds + 0.1});
  const audio::MonoBuffer side = sim.backscatter_rx.stereo.side();
  return audio::pesq_like(speech, side);
}

double run_cooperative_pesq(const ExperimentPoint& point,
                            units::Seconds duration) {
  const double duration_seconds = duration.raw();
  SystemConfig cfg = make_system(point);
  cfg.capture_ambient_receiver = true;
  // Exercise the receiver-side problem the technique solves: hardware gain
  // control. Receiver AGCs track channel level with slow loop dynamics, so
  // the gain is near-constant within the preamble and within the payload —
  // the two states the 13 kHz pilot calibration compares.
  cfg.phone.enable_agc = true;
  cfg.phone.agc.attack_seconds = 0.4;
  cfg.phone.agc.release_seconds = 2.0;
  cfg.phone.agc.min_gain = 0.5;  // real record paths adjust gain mildly
  cfg.phone.agc.max_gain = 2.0;

  tag::CoopPilotConfig pilot;  // defaults match rx::CooperativeConfig
  const audio::MonoBuffer speech =
      tag_speech(duration_seconds, point.seed + kContentSeedOffset);
  const dsp::rvec bb =
      tag::compose_cooperative_baseband(speech, kOverlayLevel, pilot);
  const SimulationResult sim = simulate(
      cfg, bb,
      units::Seconds{duration_seconds + pilot.preamble_seconds + 0.1});
  if (!sim.ambient_rx) {
    throw std::logic_error("run_cooperative_pesq: missing ambient capture");
  }
  rx::CooperativeConfig coop;
  coop.pilot = pilot;
  const rx::CooperativeResult cancelled = rx::cancel_ambient(
      sim.ambient_rx->mono, sim.backscatter_rx.mono, coop);
  return audio::pesq_like(speech, cancelled.backscatter_audio);
}

rx::BerResult run_fabric_ber(channel::Mobility mobility, tag::DataRate rate,
                             std::size_t num_bits, std::size_t mrc_repetitions,
                             std::uint64_t seed, std::uint64_t station_seed) {
  ExperimentPoint point;
  // Paper section 6.2: outdoor ambient level of -35 to -40 dBm, phone worn
  // close to the shirt.
  point.tag_power = units::Dbm{-37.5};
  point.distance = units::Feet{3.0};
  point.genre = audio::ProgramGenre::kNews;
  point.seed = seed;
  point.station_seed = station_seed;
  SystemConfig cfg = make_system(point);
  cfg.tag.antenna = tag::tshirt_meander_antenna(/*worn=*/true);
  // On-body operation adds absorption and detuning beyond the antenna's own
  // efficiency: the link runs with little margin, which is exactly why the
  // paper measures visible BER here.
  cfg.scene.link.implementation_loss = units::Db{13.0};
  cfg.scene.fading = channel::fading_for_mobility(mobility);

  const auto bits = tag::random_bits(num_bits, seed + kContentSeedOffset);
  const audio::MonoBuffer one = tag::modulate_fsk(bits, rate, fm::kAudioRate);
  audio::MonoBuffer all = one;
  for (std::size_t r = 1; r < mrc_repetitions; ++r) all = audio::concat(all, one);
  const double payload_seconds = all.duration_seconds();
  const dsp::rvec bb =
      tag::compose_overlay_baseband(with_lead_in(all), kOverlayLevel);
  const SimulationResult sim =
      simulate(cfg, bb, units::Seconds{payload_seconds + kSettleSeconds + 0.15});

  audio::MonoBuffer combined = drop_lead_in(sim.backscatter_rx.mono);
  if (mrc_repetitions > 1) {
    // Trim the padding tail so the N segments tile exactly, combine, then
    // restore the group-delayed tail of the last symbol circularly.
    const auto payload_samples =
        static_cast<std::size_t>(payload_seconds * fm::kAudioRate);
    if (combined.size() > payload_samples) {
      combined.samples.resize(payload_samples);
    }
    combined = rx::mrc_combine(combined, mrc_repetitions, 0);
    extend_circularly(combined);
  }
  return demodulate_and_compare(combined, bits, rate);
}

void print_table(std::ostream& os, const std::string& title,
                 const std::string& x_label, const std::vector<double>& xs,
                 const std::vector<Series>& series, int precision) {
  os << "== " << title << " ==\n";
  os << std::setw(14) << x_label;
  for (const Series& s : series) os << std::setw(14) << s.label;
  os << "\n";
  os << std::fixed << std::setprecision(precision);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    os << std::setw(14) << xs[i];
    for (const Series& s : series) {
      if (i < s.values.size()) {
        os << std::setw(14) << s.values[i];
      } else {
        os << std::setw(14) << "-";
      }
    }
    os << "\n";
  }
  os.unsetf(std::ios::fixed);
  os << std::setprecision(6) << std::flush;
}

}  // namespace fmbs::core
