#include "core/simulator.h"

#include <stdexcept>
#include <utility>

#include "core/scenario.h"
#include "dsp/math_util.h"

namespace fmbs::core {

ReceiverCapture finish_receiver_capture(const fm::ReceiverOutput& out,
                                        ReceiverKind kind,
                                        const rx::PhoneChainConfig& phone,
                                        const rx::CabinConfig& cabin) {
  ReceiverCapture cap;
  cap.fm = out;
  if (kind == ReceiverKind::kCar) {
    // Car: audio is re-recorded with a microphone in the running cabin.
    cap.mono = rx::apply_cabin_acoustics(out.mono(), cabin);
    cap.stereo = audio::StereoBuffer::dual_mono(cap.mono);
  } else {
    cap.mono = rx::apply_phone_chain(out.mono(), phone);
    cap.stereo = rx::apply_phone_chain(out.audio, phone);
  }
  return cap;
}

SimulationResult simulate(const SystemConfig& config, const dsp::rvec& tag_baseband,
                          units::Seconds duration) {
  if (duration.raw() <= 0.0) {
    throw std::invalid_argument("simulate: duration must be > 0");
  }
  // Thin bridge onto the one physics path: build the equivalent one-tag
  // Scenario and run it through the ScenarioEngine. Sample-for-sample
  // bit-identical to the historical hand-rolled simulator loop (verified by
  // tests/core/test_scenario_engine.cpp and the committed golden traces).
  ScenarioResult rendered = ScenarioEngine().run(
      scenario_from_system(config, tag_baseband, duration));

  SimulationResult result;
  result.station = std::move(rendered.station);
  result.backscatter_rx = std::move(rendered.receivers[0].capture);
  if (config.capture_ambient_receiver) {
    result.ambient_rx = std::move(rendered.receivers[1].capture);
  }

  // Scene gains, reported exactly as the legacy simulator computed them.
  channel::LinkBudgetConfig link = config.scene.link;
  link.tag_antenna_gain = units::Db{config.tag.antenna.effective_gain_db()};
  result.budget = channel::compute_link_budget(
      config.scene.tag_power, config.scene.direct_power,
      config.scene.tag_rx_distance.to_meters(), link);
  // In-channel backscatter power: one sideband of the square wave carries
  // (2/pi)^2 of the reflected power.
  const double g_back = result.budget.backscatter_amplitude;
  result.backscatter_rx_power_dbm = dsp::dbm_from_watts(
      g_back * g_back * (2.0 / dsp::kPi) * (2.0 / dsp::kPi));
  return result;
}

}  // namespace fmbs::core
