#include "core/simulator.h"

#include <cmath>
#include <stdexcept>

#include "channel/awgn.h"
#include "channel/units.h"
#include "dsp/fir.h"
#include "dsp/math_util.h"
#include "fm/station_cache.h"
#include "rx/tuner.h"
#include "tag/subcarrier.h"

namespace fmbs::core {

namespace {

constexpr std::size_t kBlockMpx = 24000;  // 0.1 s at 240 kHz

ReceiverCapture finish_receiver(const fm::ReceiverOutput& out,
                                const SystemConfig& cfg) {
  return finish_receiver_capture(out, cfg.receiver, cfg.phone, cfg.cabin);
}

}  // namespace

ReceiverCapture finish_receiver_capture(const fm::ReceiverOutput& out,
                                        ReceiverKind kind,
                                        const rx::PhoneChainConfig& phone,
                                        const rx::CabinConfig& cabin) {
  ReceiverCapture cap;
  cap.fm = out;
  if (kind == ReceiverKind::kCar) {
    // Car: audio is re-recorded with a microphone in the running cabin.
    cap.mono = rx::apply_cabin_acoustics(out.mono(), cabin);
    cap.stereo = audio::StereoBuffer::dual_mono(cap.mono);
  } else {
    cap.mono = rx::apply_phone_chain(out.mono(), phone);
    cap.stereo = rx::apply_phone_chain(out.audio, phone);
  }
  return cap;
}

SimulationResult simulate(const SystemConfig& config, const dsp::rvec& tag_baseband,
                          double duration_seconds) {
  if (duration_seconds <= 0.0) {
    throw std::invalid_argument("simulate: duration must be > 0");
  }
  SimulationResult result;
  result.station =
      fm::StationCache::instance().render(config.station, duration_seconds);

  // Pad/trim the tag baseband to the station length.
  dsp::rvec tag_bb = tag_baseband;
  tag_bb.resize(result.station->iq.size(), 0.0F);
  // Pad the station to a whole number of blocks (both streams together).
  const std::size_t padded =
      (result.station->iq.size() + kBlockMpx - 1) / kBlockMpx * kBlockMpx;
  dsp::cvec station_iq = result.station->iq;
  station_iq.resize(padded, dsp::cfloat(1.0F, 0.0F));
  tag_bb.resize(padded, 0.0F);

  // Scene gains.
  channel::LinkBudgetConfig link = config.scene.link;
  link.tag_antenna_gain_db = config.tag.antenna.effective_gain_db();
  result.budget = channel::compute_link_budget(
      config.scene.tag_power_dbm, config.scene.direct_power_dbm,
      channel::meters_from_feet(config.scene.tag_rx_distance_feet), link);
  const auto g_direct = static_cast<float>(result.budget.direct_amplitude);
  const auto g_back = static_cast<float>(result.budget.backscatter_amplitude);
  // In-channel backscatter power: one sideband of the square wave carries
  // (2/pi)^2 of the reflected power.
  result.backscatter_rx_power_dbm =
      dsp::dbm_from_watts(static_cast<double>(g_back) * g_back *
                          (2.0 / dsp::kPi) * (2.0 / dsp::kPi));

  // Streaming components.
  const auto up_factor = static_cast<std::size_t>(fm::kMpxToRfFactor);
  dsp::FirInterpolator<dsp::cfloat> upsampler(
      dsp::fir_design_lowpass((16 * up_factor) | 1U,
                              0.45 / static_cast<double>(up_factor)),
      up_factor);
  tag::SubcarrierGenerator subcarrier(config.tag.subcarrier);

  channel::AwgnSource noise_back(config.scene.rx_noise_dbm_200khz,
                                 fm::kChannelSpacingHz, fm::kRfRate,
                                 config.scene.noise_seed);
  channel::AwgnSource noise_amb(config.scene.rx_noise_dbm_200khz,
                                fm::kChannelSpacingHz, fm::kRfRate,
                                config.scene.noise_seed + 0x9e3779b9ULL);

  std::optional<channel::FadingProcess> fading;
  if (config.scene.fading) {
    fading.emplace(*config.scene.fading, fm::kRfRate, config.scene.noise_seed + 1);
  }

  rx::TunerConfig tuner_cfg;
  tuner_cfg.offset_hz = config.tag.subcarrier.shift_hz;
  rx::Tuner tuner_back(tuner_cfg);
  std::optional<rx::Tuner> tuner_amb;
  if (config.capture_ambient_receiver) {
    rx::TunerConfig amb_cfg;
    amb_cfg.offset_hz = 0.0;
    tuner_amb.emplace(amb_cfg);
  }

  dsp::cvec iq_back;
  iq_back.reserve(padded);
  dsp::cvec iq_amb;
  if (tuner_amb) iq_amb.reserve(padded);

  dsp::cvec rf;           // composite block at RF rate
  dsp::cvec rf_ambient;   // copy for the second receiver's independent noise
  for (std::size_t start = 0; start < padded; start += kBlockMpx) {
    const std::span<const dsp::cfloat> st_block(station_iq.data() + start,
                                                kBlockMpx);
    const std::span<const float> bb_block(tag_bb.data() + start, kBlockMpx);

    dsp::cvec st_rf = upsampler.process(st_block);
    dsp::cvec b = subcarrier.process(bb_block);

    // reflected = B(t) x incident, with motion fading on the tag path.
    for (std::size_t i = 0; i < st_rf.size(); ++i) b[i] *= st_rf[i];
    if (fading) fading->apply(b);

    rf.resize(st_rf.size());
    for (std::size_t i = 0; i < st_rf.size(); ++i) {
      rf[i] = g_direct * st_rf[i] + g_back * b[i];
    }

    if (tuner_amb) {
      rf_ambient = rf;  // same waves, independent receiver noise
      noise_amb.add_to(rf_ambient);
      const dsp::cvec t = tuner_amb->process(rf_ambient);
      iq_amb.insert(iq_amb.end(), t.begin(), t.end());
    }
    noise_back.add_to(rf);
    const dsp::cvec t = tuner_back.process(rf);
    iq_back.insert(iq_back.end(), t.begin(), t.end());
  }

  fm::ReceiverConfig rx_cfg;
  rx_cfg.stereo = config.stereo_decoder;
  result.backscatter_rx = finish_receiver(fm::receive_fm(iq_back, rx_cfg), config);
  if (tuner_amb) {
    result.ambient_rx = finish_receiver(fm::receive_fm(iq_amb, rx_cfg), config);
  }
  return result;
}

}  // namespace fmbs::core
