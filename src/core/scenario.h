// Signal-level multi-tag scenarios — paper section 8 ("Multiple backscatter
// devices"), simulated physically instead of analytically: one cached
// ambient FM station, N backscatter tags (each with its own subcarrier
// channel, FSK payload, link-budget geometry and burst schedule) and M
// receivers (phone or car, each tuned to one channel), rendered through a
// single shared RF scene. Overlapping transmissions on one channel *collide
// in the MPX spectrum* — the engine is what validates the core::aloha
// analytic MAC model against the PHY — and tags on disjoint channels
// coexist exactly as the spectrum says they should.
//
// Typical use:
//
//   core::Scenario sc;
//   sc.duration_seconds = 0.5;
//   const auto plan = tag::plan_subcarrier_channels(4);
//   for (int i = 0; i < 4; ++i) {
//     core::ScenarioTag t;
//     t.name = "poster" + std::to_string(i);
//     t.subcarrier = plan[i].subcarrier;
//     sc.tags.push_back(t);
//   }
//   sc.receivers.push_back(core::phone_listening_to(plan[0].subcarrier));
//   const core::ScenarioResult r = core::ScenarioEngine().run(sc);
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "channel/fading.h"
#include "channel/link_budget.h"
#include "core/config.h"
#include "core/simulator.h"
#include "core/sweep_runner.h"
#include "dsp/types.h"
#include "fm/transmitter.h"
#include "rx/multitag.h"
#include "tag/antenna.h"
#include "tag/fsk.h"
#include "tag/subcarrier.h"

namespace fmbs::core {

/// Switch-on guard the engine keeps around every burst: the tag's switch
/// runs this long before/after the payload (composition-filter spread, as a
/// real tag frames packets with guard time). Part of the public contract —
/// the ALOHA vulnerability window is the payload extended by this guard.
inline constexpr double kBurstGuardSeconds = 0.01;

/// Planar position of a tag or receiver in the scene (meters). Distances are
/// Euclidean; the ambient station is far-field so only tag-to-receiver
/// geometry matters.
struct ScenePosition {
  double x_m = 0.0;
  double y_m = 0.0;
};

/// One backscatter tag in the scenario.
struct ScenarioTag {
  std::string name;
  tag::SubcarrierConfig subcarrier;  // per-tag f_back and waveform mode
  tag::AntennaModel antenna = tag::poster_dipole_antenna();

  // Payload: FSK data composed as overlay baseband by the engine...
  tag::DataRate rate = tag::DataRate::k1600bps;
  std::size_t num_bits = 64;
  std::size_t packet_bits = 0;  // PER granularity; 0 = one packet
  double level = kOverlayLevel;  // content level relative to full deviation
  /// Burst start relative to the end of the scenario settle window. The tag
  /// switch runs only while its burst is on the air (an idle tag reflects
  /// nothing), which is what makes ALOHA collisions physical.
  double start_seconds = 0.0;
  /// ...or an explicit FM_back baseband at the MPX rate (non-empty overrides
  /// the FSK payload; the tag is then on-air for the whole scenario and
  /// reports no BER — used for audio tags and the legacy-simulator bridge).
  dsp::rvec custom_baseband;

  // Link budget inputs.
  double tag_power_dbm = -30.0;  // ambient FM power at this tag
  ScenePosition position;
  /// When set, overrides the geometric tag-to-receiver distance for every
  /// receiver (the paper's single-knob experiments; also the bit-identity
  /// bridge from SceneConfig::tag_rx_distance_feet).
  double distance_override_feet = std::numeric_limits<double>::quiet_NaN();
  std::optional<channel::FadingConfig> fading;

  /// Content / fading seeds; unset = derived from Scenario::seed and the
  /// tag index (scheduling-independent, like SweepRunner's policy).
  std::optional<std::uint64_t> seed;
  std::optional<std::uint64_t> fading_seed;
};

/// One receiving device in the scenario.
struct ScenarioReceiver {
  std::string name;
  ReceiverKind kind = ReceiverKind::kPhone;
  /// Channel the receiver tunes to, as an offset from the ambient station
  /// (a tag's subcarrier shift, or 0 to listen to the station itself).
  double tune_offset_hz = fm::kDefaultBackscatterShiftHz;
  ScenePosition position;
  /// Power of the unshifted station at the receiver; NaN = the strongest
  /// tag's ambient power (the paper keeps devices equidistant from the
  /// transmitter).
  double direct_power_dbm = std::numeric_limits<double>::quiet_NaN();
  /// Receiver noise floor (dBm / 200 kHz); NaN = the kind's default.
  double noise_dbm_200khz = std::numeric_limits<double>::quiet_NaN();
  /// Propagation/link template for tag paths into this receiver; the engine
  /// fills the per-tag antenna gain. rx_antenna_gain_db of NaN = the kind's
  /// default antenna.
  channel::LinkBudgetConfig link = default_link_config();
  std::optional<std::uint64_t> noise_seed;  // unset = derived
  rx::PhoneChainConfig phone;
  rx::CabinConfig cabin;
  fm::StereoDecoderConfig stereo_decoder;

  static channel::LinkBudgetConfig default_link_config() {
    channel::LinkBudgetConfig link;
    link.rx_antenna_gain_db = std::numeric_limits<double>::quiet_NaN();
    return link;
  }
};

/// A complete multi-entity deployment around one ambient station.
struct Scenario {
  std::string name;
  fm::StationConfig station;
  std::vector<ScenarioTag> tags;
  std::vector<ScenarioReceiver> receivers;
  /// Scenario length after the settle window; tag bursts must fit inside.
  double duration_seconds = 0.5;
  /// Receiver warm-up before any burst starts (filters, AGC, pilot
  /// tracking), matching the experiment harness's lead-in convention.
  double settle_seconds = 0.08;
  /// Root for every derived per-entity seed.
  std::uint64_t seed = 1;
};

/// Decode statistics of one (tag, receiver) link.
struct TagLinkReport {
  std::size_t tag_index = 0;
  std::size_t receiver_index = 0;
  rx::BurstReport burst;                  // BER / PER / confidence
  double backscatter_rx_power_dbm = 0.0;  // in-channel power at this receiver
  double goodput_bps = 0.0;  // correct payload bits per scenario second
};

/// Everything captured and decoded at one receiver.
struct ScenarioReceiverResult {
  ReceiverCapture capture;           // empty when keep_captures is off
  std::vector<TagLinkReport> links;  // one per tag audible on this channel
};

/// Full scenario outcome.
struct ScenarioResult {
  std::shared_ptr<const fm::StationSignal> station;
  std::vector<ScenarioReceiverResult> receivers;
  /// Best (lowest-BER) link per data tag, across every receiver that hears
  /// it; tags heard by no receiver are absent.
  std::vector<TagLinkReport> best_per_tag;
  /// Sum of best-per-tag goodput: the deployment's delivered bit rate.
  double aggregate_goodput_bps = 0.0;
};

/// Engine options.
struct ScenarioEngineConfig {
  /// Keep per-receiver audio captures in the result (turn off for sweeps —
  /// captures dominate the result's memory).
  bool keep_captures = true;
};

/// Renders and decodes scenarios. Stateless between runs; one shared station
/// render per (StationConfig, duration) via fm::StationCache.
class ScenarioEngine {
 public:
  explicit ScenarioEngine(ScenarioEngineConfig config = {}) : config_(config) {}

  const ScenarioEngineConfig& config() const { return config_; }

  /// Runs one scenario. Throws std::invalid_argument on an inconsistent
  /// scenario (no receivers, burst past the end, bad rates).
  ScenarioResult run(const Scenario& scenario) const;

  /// Runs many scenarios across a SweepRunner pool. Ordered and
  /// bit-identical at any thread count: each scenario carries its own seeds
  /// and the engine shares nothing mutable across runs.
  std::vector<ScenarioResult> run_many(SweepRunner& runner,
                                       const std::vector<Scenario>& scenarios) const;

 private:
  ScenarioEngineConfig config_;
};

/// True when a receiver tuned at `tune_offset_hz` hears the tag's channel: a
/// real square-wave switch serves +-|f_back| (mirror copies), SSB only its
/// signed channel.
bool tag_audible_at(const ScenarioTag& tag, double tune_offset_hz);

/// A phone receiver tuned to a planned subcarrier channel.
ScenarioReceiver phone_listening_to(const tag::SubcarrierConfig& subcarrier);

/// A car receiver tuned to a planned subcarrier channel: whip antenna, car
/// noise floor, two-ray ground propagation and mono decode, as in
/// make_system's car branch.
ScenarioReceiver car_listening_to(const tag::SubcarrierConfig& subcarrier);

/// Bridges a legacy single-tag SystemConfig + explicit baseband into a
/// one-tag, one-or-two-receiver Scenario whose rendered receiver capture is
/// bit-identical to core::simulate(config, baseband, duration).
Scenario scenario_from_system(const SystemConfig& config,
                              const dsp::rvec& tag_baseband,
                              double duration_seconds);

}  // namespace fmbs::core
