// Signal-level multi-tag, multi-station scenarios — paper sections 2, 6 and
// 8: a city block's RF scene holds several co-resident FM stations (the band
// survey of Fig. 4 finds dozens per city) plus N backscatter tags (each with
// its own subcarrier channel, FSK payload, link-budget geometry and burst
// schedule) and M receivers (phone or car, each tuned to one channel),
// rendered through a single shared 2.4 MHz RF scene. Every station is
// superposed into the scene at its own carrier offset, every tag reflects
// its strongest ambient station (as the paper's posters do), overlapping
// transmissions on one channel *collide in the MPX spectrum*, and
// adjacent-channel interference between stations and tags is physical —
// it arrives through the receiver tuner's stopband, not through a model.
//
// Typical use:
//
//   core::Scenario sc;
//   sc.duration = units::Seconds{0.5};
//   const auto plan = tag::plan_subcarrier_channels(4);
//   for (int i = 0; i < 4; ++i) {
//     core::ScenarioTag t;
//     t.name = "poster" + std::to_string(i);
//     t.subcarrier = plan[i].subcarrier;
//     sc.tags.push_back(t);
//   }
//   sc.receivers.push_back(core::phone_listening_to(plan[0].subcarrier));
//   const core::ScenarioResult r = core::ScenarioEngine().run(sc);
//
// City spectra plug in directly:
//
//   const auto cities = survey::builtin_city_spectra();
//   sc.stations = core::stations_from_survey(cities[1], /*listen_channel=*/49);
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "channel/fading.h"
#include "channel/link_budget.h"
#include "core/config.h"
#include "core/simulator.h"
#include "core/sweep_runner.h"
#include "dsp/types.h"
#include "fm/transmitter.h"
#include "rx/multitag.h"
#include "rx/rds_path.h"
#include "survey/spectrum_db.h"
#include "tag/antenna.h"
#include "tag/fsk.h"
#include "tag/mac.h"
#include "tag/subcarrier.h"

namespace fmbs::core {

/// Switch-on guard the engine keeps around every burst: the tag's switch
/// runs this long before/after the payload (composition-filter spread, as a
/// real tag frames packets with guard time). Part of the public contract —
/// the ALOHA vulnerability window is the payload extended by this guard.
inline constexpr double kBurstGuardSeconds = 0.01;

/// Planar position of a tag or receiver in the scene (meters). Distances are
/// Euclidean; far-field stations ignore geometry, positioned stations scale
/// with it.
struct ScenePosition {
  double x_m = 0.0;
  double y_m = 0.0;
};

/// Fixed-duration segmentation of a scenario's timeline. With a positive
/// `segment_seconds` the engine re-evaluates the scene geometry once per
/// segment — waypoint paths advance, per-tag strongest-station selection is
/// re-decided (handoff), link budgets update — and carrier-sense MACs listen
/// segment by segment. 0 keeps today's single frozen geometry for the whole
/// run (bit-identical to the pre-timeline engine).
struct ScenarioTimeline {
  /// Segment length; 0 = one segment spanning the run. Must be a
  /// whole number of 0.1 s streaming blocks: geometry switches apply at
  /// block boundaries, so a non-multiple would silently shift the segment
  /// grid — the engine rejects it instead.
  units::Seconds segment{0.0};
};

/// Position along a waypoint path at time fraction `u` in [0, 1]: the path
/// runs [anchor, waypoints...] with equal time per leg (an empty waypoint
/// list pins the entity at the anchor).
ScenePosition path_position(const ScenePosition& anchor,
                            std::span<const ScenePosition> waypoints, double u);

/// Largest station carrier offset whose Carson bandwidth still fits inside
/// the complex-baseband RF scene (which spans +-fm::kRfRate / 2).
inline constexpr double kMaxStationOffsetHz =
    fm::kRfRate / 2.0 - fm::kCarsonBandwidthHz / 2.0;

/// Demand-driven scene pruning radius: an emitter (station carrier or tag
/// backscatter channel) is synthesized only when it falls within this many Hz
/// of some receiver's tuned channel. Two channel spacings covers the tuned
/// channel plus both adjacent channels — everything the tuner's transition
/// band passes at a level that can move a decode; anything further arrives
/// only through >70 dB of stopband, far below every receiver noise floor the
/// engine models. Selected stations of a needed tag are always synthesized
/// regardless of distance (the reflection carries their modulation).
inline constexpr double kSceneNeighborhoodHz = 2.0 * fm::kChannelSpacingHz;

/// One ambient FM station of a multi-station RF scene. The scene is complex
/// baseband around the legacy single-station carrier: a station's carrier
/// sits at `offset_hz` from the scene center, so adjacent-channel geometry
/// reads directly in multiples of fm::kChannelSpacingHz.
struct ScenarioStation {
  std::string name;
  fm::StationConfig config;
  /// Carrier offset within the scene; |offset| <= kMaxStationOffsetHz.
  units::Hertz offset{0.0};
  /// Ambient power of this station at the scene origin.
  units::Dbm power{-30.0};
  /// Transmitter position; unset = far field (the station is equally strong
  /// everywhere in the scene). When set, the ambient power scales with
  /// free-space distance relative to the origin — what makes per-tag
  /// station selection geometric.
  std::optional<ScenePosition> position;
};

/// Ambient power of `station` at scene position `at` (see
/// ScenarioStation::position).
units::Dbm station_power_at(const ScenarioStation& station,
                            const ScenePosition& at);

/// One backscatter tag in the scenario.
struct ScenarioTag {
  std::string name;
  tag::SubcarrierConfig subcarrier;  // per-tag f_back and waveform mode
  tag::AntennaModel antenna = tag::poster_dipole_antenna();

  // Payload: FSK data composed as overlay baseband by the engine...
  tag::DataRate rate = tag::DataRate::k1600bps;
  std::size_t num_bits = 64;
  std::size_t packet_bits = 0;  // PER granularity; 0 = one packet
  double level = kOverlayLevel;  // content level relative to full deviation
  /// Burst start relative to the end of the scenario settle window. The tag
  /// switch runs only while its burst is on the air (an idle tag reflects
  /// nothing), which is what makes ALOHA collisions physical.
  units::Seconds start{0.0};
  /// ...or an RDS RadioText payload (the paper's headline demo: a poster
  /// pushing "SIMPLY THREE - TICKETS 50% OFF" onto any RDS radio display).
  /// A non-empty string switches the tag into RDS data mode: the text is
  /// compiled via fm::make_radiotext_groups -> tag::compose_rds_baseband
  /// and transmitted as one burst starting at `start` — MAC-aware
  /// (carrier sense defers it like an FSK burst) and colliding physically
  /// in the 57 kHz band of its backscatter channel. The burst lasts
  /// ceil((chars+1)/4) * 104 / 1187.5 seconds and must fit the scenario.
  /// Mutually exclusive with custom_baseband.
  std::string rds_radiotext;
  /// RDS subcarrier injection level of the burst, relative to full
  /// deviation. Broadcast stations inject ~0.05; the tag's backscatter
  /// channel has an empty program band, so a stronger injection simply
  /// buys block-error margin against the reflected station's own RDS.
  double rds_level = 0.3;
  /// ...or an explicit FM_back baseband at the MPX rate (non-empty overrides
  /// the FSK payload; the tag is then on-air for the whole scenario and
  /// reports no BER — used for audio tags and the legacy-simulator bridge).
  dsp::rvec custom_baseband;

  // Link budget inputs.
  /// Ambient FM power at this tag in a single-station scene. In a
  /// multi-station scene the value is ignored — the power is derived from
  /// the selected station via station_power_at.
  units::Dbm tag_power{-30.0};
  /// Station this tag backscatters in a multi-station scene: -1 selects the
  /// strongest ambient station at the tag's position (the paper's posters
  /// reflect whichever signal is strongest); an explicit index pins it.
  /// Ignored in single-station scenes.
  int station_index = -1;
  ScenePosition position;
  /// Waypoint path: when non-empty the tag walks [position, waypoints...]
  /// with equal time per leg across the run. Geometry is re-evaluated per
  /// timeline segment, so a walking tag's strongest station changes along
  /// the path — a mid-run handoff between stations.
  std::vector<ScenePosition> waypoints;
  /// Medium access: how `start` maps to the actual burst start
  /// (pure ALOHA transmits at the nominal time — today's behavior; slotted
  /// ALOHA quantizes to slot boundaries; carrier sense listens per segment
  /// and defers while its channel is busy). Custom-baseband tags are on the
  /// air for the whole run and ignore this.
  tag::MacConfig mac;
  /// When set, overrides the geometric tag-to-receiver distance for every
  /// receiver (the paper's single-knob experiments; also the bit-identity
  /// bridge from SceneConfig::tag_rx_distance).
  std::optional<units::Feet> distance_override;
  std::optional<channel::FadingConfig> fading;

  /// Content / fading seeds; unset = derived from Scenario::seed and the
  /// tag index (scheduling-independent, like SweepRunner's policy).
  std::optional<std::uint64_t> seed;
  std::optional<std::uint64_t> fading_seed;
};

/// One receiving device in the scenario.
struct ScenarioReceiver {
  std::string name;
  ReceiverKind kind = ReceiverKind::kPhone;
  /// Channel the receiver tunes to, as an offset from the scene center (a
  /// tag's channel is its station's offset plus the subcarrier shift; 0
  /// listens to the station at the scene center).
  units::Hertz tune_offset{fm::kDefaultBackscatterShiftHz};
  ScenePosition position;
  /// Waypoint path, like ScenarioTag::waypoints (a pedestrian's phone walks
  /// with its owner; link budgets re-evaluate per timeline segment).
  std::vector<ScenePosition> waypoints;
  /// Power of the unshifted station at the receiver in a single-station
  /// scene; unset = the strongest tag's ambient power (the paper keeps
  /// devices equidistant from the transmitter). Multi-station scenes derive
  /// every station's power at the receiver from station_power_at instead.
  std::optional<units::Dbm> direct_power;
  /// Receiver noise floor per 200 kHz; unset = the kind's default.
  std::optional<units::Dbm> noise_200khz;
  /// Receive antenna gain override; unset = the kind's default antenna
  /// (see receiver_antenna_gain).
  std::optional<units::Db> rx_antenna_gain;
  /// Propagation/link template for tag paths into this receiver; the engine
  /// fills the per-tag antenna gain from `rx_antenna_gain`.
  channel::LinkBudgetConfig link;
  std::optional<std::uint64_t> noise_seed;  // unset = derived
  rx::PhoneChainConfig phone;
  rx::CabinConfig cabin;
  fm::StereoDecoderConfig stereo_decoder;
};

/// A complete multi-entity deployment inside one RF scene.
struct Scenario {
  std::string name;
  /// Legacy single-station scene (bit-identical to the pre-multi-station
  /// engine); used only while `stations` is empty.
  fm::StationConfig station;
  /// Multi-station scene: every entry is rendered and superposed into the
  /// shared RF stream at its carrier offset. Empty = the single legacy
  /// `station` at offset 0.
  std::vector<ScenarioStation> stations;
  std::vector<ScenarioTag> tags;
  std::vector<ScenarioReceiver> receivers;
  /// Scenario length after the settle window; tag bursts must fit inside.
  units::Seconds duration{0.5};
  /// Timeline segmentation (mobility, handoff, carrier sense). The default
  /// single segment is bit-identical to the pre-timeline engine.
  ScenarioTimeline timeline;
  /// Receiver warm-up before any burst starts (filters, AGC, pilot
  /// tracking), matching the experiment harness's lead-in convention.
  units::Seconds settle{0.08};
  /// Root for every derived per-entity seed. 0 is the "derive me" sentinel
  /// used by run_scenario_sweep's seed policy; a scenario run directly
  /// through ScenarioEngine::run keeps whatever is set here.
  std::uint64_t seed = 1;
};

/// Decode statistics of one (tag, receiver) link.
struct TagLinkReport {
  std::size_t tag_index = 0;
  std::size_t receiver_index = 0;
  rx::BurstReport burst;                  // BER / PER / confidence
  /// RDS payload outcome — set only for rds_radiotext tags. For those
  /// links `burst.ber.ber` carries the block error rate (so best-link
  /// selection and sweep plotting stay uniform with FSK tags),
  /// `burst.bits_delivered` counts the 16 information bits of every clean
  /// block, and `goodput_bps` follows from it.
  std::optional<rx::RdsLinkReport> rds;
  double backscatter_rx_power_dbm = 0.0;  // in-channel power at this receiver
  double goodput_bps = 0.0;  // correct payload bits per scenario second
};

/// Everything captured and decoded at one receiver.
struct ScenarioReceiverResult {
  ReceiverCapture capture;           // empty when keep_captures is off
  std::vector<TagLinkReport> links;  // one per tag audible on this channel
  /// RDS of the ambient station on this receiver's tuned channel — what an
  /// unmodified RDS radio parked here displays (the scene station's PS
  /// name). Set when such a station exists and broadcasts RDS
  /// (StationConfig::rds_level > 0); decoded over the whole capture.
  std::optional<rx::RdsLinkReport> station_rds;
};

/// Geometry snapshot of one timeline segment.
struct ScenarioSegmentReport {
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  /// Station index each tag backscatters during this segment (parallel to
  /// Scenario::tags). A change between consecutive segments is a handoff.
  std::vector<int> selected_station;
};

/// MAC outcome of one tag's burst (parallel to Scenario::tags; always-on
/// custom-baseband tags report transmitted with no deferrals).
struct TagMacReport {
  bool transmitted = true;
  std::size_t deferrals = 0;
  /// Actual payload start within the rendered window (settle included).
  double start_seconds = 0.0;
  /// What the final carrier-sense measured; -inf for other policies.
  double last_sensed_dbm = -std::numeric_limits<double>::infinity();
};

/// What demand-driven rendering actually synthesized (see
/// ScenarioEngineConfig::scene_rendering): totals versus the subset inside
/// some receiver's tuned-channel neighborhood, plus the size of the shared
/// block-staging scratch that replaced the old per-station padded copies.
struct SceneRenderStats {
  std::size_t stations_total = 0;
  std::size_t stations_rendered = 0;
  std::size_t tags_total = 0;
  std::size_t tags_rendered = 0;
  /// Bytes of per-run staging scratch (one shared block when the render
  /// length is not a whole number of streaming blocks, else zero). The old
  /// engine instead copied and padded every station render.
  std::size_t scene_scratch_bytes = 0;
  /// Peak bytes of streaming-engine buffering (ring slots, per-tag burst
  /// waveforms, decode windows, pilot decision buffers, loop-mode station
  /// blocks). 0 under the batch engine. Independent of run duration — the
  /// O(1)-memory guarantee the soak tests pin.
  std::size_t streaming_peak_buffer_bytes = 0;
};

/// Full scenario outcome.
struct ScenarioResult {
  /// The scene-center station's render (station 0; the legacy field).
  std::shared_ptr<const fm::StationSignal> station;
  /// One render per scene station (parallel to Scenario::stations, or a
  /// single entry for the legacy station). Under SceneRendering::kSparse a
  /// station outside every receiver's neighborhood is never synthesized and
  /// its entry is nullptr (station 0 — the scene center — is always
  /// rendered).
  std::vector<std::shared_ptr<const fm::StationSignal>> station_renders;
  /// Station index each tag backscattered during the first segment
  /// (parallel to Scenario::tags; the whole run for an unsegmented
  /// scenario). Per-segment history — the handoff record — is in
  /// `segments`.
  std::vector<int> selected_station;
  /// One geometry snapshot per timeline segment (a single entry when the
  /// timeline is unsegmented).
  std::vector<ScenarioSegmentReport> segments;
  /// MAC outcome per tag (deferrals, actual start, silent give-ups).
  std::vector<TagMacReport> mac;
  std::vector<ScenarioReceiverResult> receivers;
  /// Best (lowest-BER) link per data tag, across every receiver that hears
  /// it; tags heard by no receiver are absent.
  std::vector<TagLinkReport> best_per_tag;
  /// Sum of best-per-tag goodput: the deployment's delivered bit rate.
  double aggregate_goodput_bps = 0.0;
  /// What demand-driven rendering synthesized for this run.
  SceneRenderStats scene;
};

/// How the engine decides which emitters to synthesize.
enum class SceneRendering {
  /// Synthesize only stations/tags within kSceneNeighborhoodHz of some
  /// receiver's tuned channel (plus every needed tag's selected stations).
  /// Decoded outcomes match kDense — what is dropped sits below every
  /// receiver's noise floor — at O(audible) instead of O(scene) cost.
  kSparse,
  /// Synthesize every station and tag in the scenario (the historical
  /// behavior; the reference for the sparse-vs-dense equivalence tests).
  kDense,
};

// ---- Pre-render planning ----------------------------------------------------
// Everything the engines decide before any signal is synthesized — timeline
// segmentation, waypoint geometry, per-segment station selection, payload
// durations, the resolved MAC schedule and the per-pair link tables — is a
// pure function of the Scenario, factored out so the signal-level
// ScenarioEngine and the hybrid FleetEngine share one resolution
// bit-identically.

/// Effective noise floor (per 200 kHz) of a receiver: the explicit value
/// when set, else the kind's default.
units::Dbm receiver_noise_floor(const ScenarioReceiver& rx);

/// Effective receive antenna gain: the explicit value when set, else the
/// kind's default antenna.
units::Db receiver_antenna_gain(const ScenarioReceiver& rx);

/// The channel(s) `tag` occupies when reflecting a station whose carrier
/// sits at `station_offset`: an SSB tag shifts one copy, a real square
/// switch mirrors two. Fills out[0..n) and returns n (1 or 2).
int tag_backscatter_channels(const ScenarioTag& tag,
                             units::Hertz station_offset,
                             units::Hertz out[2]);

/// One tag's pre-render decisions.
struct ScenarioTagPlan {
  /// Payload kind flags (mutually exclusive; neither set = FSK data).
  bool custom_baseband = false;
  bool rds = false;
  /// Payload on-air seconds (0 for custom-baseband tags, which are on the
  /// air for the whole run).
  double burst_seconds = 0.0;
  /// Resolved content / fading seeds (explicit or derived from
  /// Scenario::seed); fading_seed is 0 when the tag has no fading.
  std::uint64_t content_seed = 0;
  std::uint64_t fading_seed = 0;
  /// Serialized RDS groups of an rds_radiotext tag (drives burst_seconds).
  std::vector<unsigned char> rds_bits;
  // Resolved MAC outcome (custom-baseband tags report transmitted with no
  // deferrals, like TagMacReport).
  bool transmitted = true;
  double start_seconds = 0.0;  ///< actual payload start, settle included
  std::size_t deferrals = 0;
  double last_sensed_dbm = -std::numeric_limits<double>::infinity();
};

/// The resolved pre-render plan of one scenario.
struct ScenarioPlan {
  double total_seconds = 0.0;    ///< settle + duration
  double segment_seconds = 0.0;  ///< 0 = one segment spanning the run
  std::size_t num_segments = 1;
  /// False = legacy single-station scene (sc.station at the center).
  bool multi = false;
  std::size_t num_stations = 1;
  std::vector<double> station_offset;  ///< carrier offset per station
  /// Per-segment entity positions along their waypoint paths.
  std::vector<std::vector<ScenePosition>> tag_pos;  // [segment][tag]
  std::vector<std::vector<ScenePosition>> rx_pos;   // [segment][receiver]
  /// Station index each tag backscatters per segment, and the ambient power
  /// (dBm) of that station at the tag.
  std::vector<std::vector<int>> selected_station;      // [segment][tag]
  std::vector<std::vector<double>> tag_ambient_dbm;    // [segment][tag]
  /// Legacy single-station scene: power of the unshifted station at each
  /// receiver after the NaN policy (empty for multi-station scenes).
  std::vector<double> receiver_direct_dbm;
  /// Resolved per-receiver noise seed (explicit or derived).
  std::vector<std::uint64_t> receiver_noise_seed;
  std::vector<ScenarioTagPlan> tags;  ///< parallel to Scenario::tags
  /// Per-segment link tables: g_direct[k][r][s] — unshifted amplitude of
  /// station s at receiver r; g_back[k][r][t] — reflected amplitude of tag
  /// t at receiver r; rx_power_dbm[k][r][t] — in-channel sideband power of
  /// that reflection.
  std::vector<std::vector<std::vector<float>>> g_direct;
  std::vector<std::vector<std::vector<float>>> g_back;
  std::vector<std::vector<std::vector<double>>> rx_power_dbm;

  /// Segment owning time `t` (boundary times stay in the opening segment,
  /// matching resolve_mac_schedule's convention).
  std::size_t segment_of_time(double t) const;
  /// [start, end) of segment `k` in seconds.
  std::pair<double, double> segment_bounds(std::size_t k) const;
};

/// Resolves a scenario's pre-render plan. Performs the engine's full
/// validation (throws std::invalid_argument on inconsistent scenarios) and
/// the complete MAC resolution — carrier-sense tags listen against the same
/// analytic channel model the engine uses — without synthesizing a sample.
ScenarioPlan resolve_scenario_plan(const Scenario& scenario);

/// Demand-driven scene pruning verdicts (see SceneRendering::kSparse): which
/// stations and tags must actually be synthesized. A pure function of the
/// scenario and its plan, factored out so the batch and streaming engines
/// prune identically. Under kDense every flag is set.
struct ScenePruning {
  std::vector<char> station_needed;  ///< parallel to the scene's stations
  std::vector<char> tag_needed;      ///< parallel to Scenario::tags
};

ScenePruning resolve_scene_pruning(const Scenario& scenario,
                                   const ScenarioPlan& plan,
                                   SceneRendering mode);

/// Engine options.
struct ScenarioEngineConfig {
  /// Keep per-receiver audio captures in the result (turn off for sweeps —
  /// captures dominate the result's memory).
  bool keep_captures = true;
  /// Demand-driven (kSparse) vs exhaustive (kDense) scene synthesis.
  SceneRendering scene_rendering = SceneRendering::kSparse;
};

/// Renders and decodes scenarios. Stateless between runs; one shared station
/// render per (StationConfig, duration) via fm::StationCache, pinned for the
/// run through a StationCache::SceneScope so multi-station scenes never
/// evict their own renders.
class ScenarioEngine {
 public:
  explicit ScenarioEngine(ScenarioEngineConfig config = {}) : config_(config) {}

  const ScenarioEngineConfig& config() const { return config_; }

  /// Runs one scenario. Throws std::invalid_argument on an inconsistent
  /// scenario (no receivers, burst past the end, bad rates, station offsets
  /// outside the scene).
  ScenarioResult run(const Scenario& scenario) const;

  /// Runs many scenarios across a SweepRunner pool. Ordered and
  /// bit-identical at any thread count: each scenario carries its own seeds
  /// and the engine shares nothing mutable across runs.
  std::vector<ScenarioResult> run_many(SweepRunner& runner,
                                       const std::vector<Scenario>& scenarios) const;

 private:
  ScenarioEngineConfig config_;
};

/// True when a receiver tuned at `tune_offset` (scene-absolute) hears the
/// channel of a tag backscattering the station at `station_offset`: a
/// real square-wave switch serves station_offset +- |f_back| (mirror
/// copies), SSB only station_offset + f_back; a receiver on the station
/// carrier itself hears the station, not tag data.
bool tag_audible_at(const ScenarioTag& tag, units::Hertz station_offset,
                    units::Hertz tune_offset);

/// Single-station shorthand (station at the scene center).
inline bool tag_audible_at(const ScenarioTag& tag, units::Hertz tune_offset) {
  return tag_audible_at(tag, units::Hertz{0.0}, tune_offset);
}

/// A phone receiver tuned to a planned subcarrier channel.
ScenarioReceiver phone_listening_to(const tag::SubcarrierConfig& subcarrier);

/// A car receiver tuned to a planned subcarrier channel: whip antenna, car
/// noise floor, two-ray ground propagation and mono decode, as in
/// make_system's car branch.
ScenarioReceiver car_listening_to(const tag::SubcarrierConfig& subcarrier);

/// Bridges a legacy single-tag SystemConfig + explicit baseband into a
/// one-tag, one-or-two-receiver Scenario whose rendered receiver capture is
/// bit-identical to core::simulate(config, baseband, duration).
Scenario scenario_from_system(const SystemConfig& config,
                              const dsp::rvec& tag_baseband,
                              units::Seconds duration);

/// Builds a multi-station scene from a surveyed city's band occupancy
/// (survey::SpectrumDb, paper Fig. 4): every detectable channel within
/// `max_offset` of `listen_channel` becomes a ScenarioStation at its real
/// 200 kHz-raster offset carrying its surveyed street-level ambient power;
/// program genre, stereo flag, content seed, RDS injection level and PS
/// name (derived from the city and channel frequency, e.g. "BOS098.5") vary
/// deterministically per channel — surveyed city scenes broadcast RDS the
/// way a real band does. Stations come back sorted by |offset|, so the listen channel
/// (when detectable) is station 0 — the scene center a ScenarioResult
/// reports as `station`. Throws std::invalid_argument when no detectable
/// station falls inside the scene (an empty vector would silently mean
/// "legacy single-station mode" to the engine).
std::vector<ScenarioStation> stations_from_survey(
    const survey::CitySpectrum& city, int listen_channel,
    units::Hertz max_offset = units::Hertz{kMaxStationOffsetHz},
    std::uint64_t seed = 1);

/// stations_from_survey plus the stations it could NOT place: a surveyed
/// channel whose carrier offset falls outside the ±1.2 MHz scene (or past
/// the caller's tighter cap) cannot be rendered without aliasing, so it is
/// excluded — never clamped onto a wrong frequency — and reported here with
/// a human-readable warning, instead of disappearing silently.
struct SurveySceneReport {
  std::vector<ScenarioStation> stations;  ///< the renderable scene
  /// One warning per excluded channel ("<city>@<freq> at +3.4 MHz is
  /// outside the ±1.1 MHz scene — skipped").
  std::vector<std::string> warnings;
};

SurveySceneReport stations_from_survey_report(
    const survey::CitySpectrum& city, int listen_channel,
    units::Hertz max_offset = units::Hertz{kMaxStationOffsetHz},
    std::uint64_t seed = 1);

// ---- Scenario-level sweeps --------------------------------------------------

/// One row of a scenario figure grid (the scenario-level analogue of
/// GridRow): a label, a factory building the row's Scenario at an x value,
/// and the measurement extracted from its result.
struct ScenarioGridRow {
  std::string label;
  std::function<Scenario(double x)> make_scenario;
  std::function<double(const ScenarioResult& result, double x)> eval;
};

/// Applies the sweep seed policy to scenario `index` of a sweep rooted at
/// `config`: a scenario left at seed == 0 gets derive_seed(base_seed, index)
/// — scheduling-independent, so sweeps are bit-identical at any thread
/// count — and, when the sweep shares station renders, station seeds left
/// at 0 are pinned sweep-wide (base_seed for the legacy station,
/// derive_seed(base_seed, stream + s) for scene station s) so every point
/// shares one fm::StationCache render per station instead of re-rendering.
void apply_scenario_seed_policy(Scenario& scenario, std::size_t index,
                                const SweepConfig& config);

/// Runs scenarios across the runner's pool after applying the seed policy
/// to each (in list order). Ordered and bit-identical at any thread count.
std::vector<ScenarioResult> run_scenario_sweep(SweepRunner& runner,
                                               const ScenarioEngine& engine,
                                               std::vector<Scenario> scenarios);

/// Full scenario figure grid: one scenario per (row, x) cell — the grid is
/// flattened into a single work list so narrow rows still fill the pool —
/// returning one print_table-ready Series per row.
std::vector<Series> run_scenario_grid(SweepRunner& runner,
                                      const ScenarioEngine& engine,
                                      const std::vector<ScenarioGridRow>& rows,
                                      const std::vector<double>& xs);

}  // namespace fmbs::core
