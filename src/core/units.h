// Compile-time unit safety: zero-overhead strong types for every physical
// quantity the simulation moves around — carrier/offset frequencies, dB
// gains, dBm/watt powers, durations, distances (the paper reports feet, the
// physics runs in meters) and sample bookkeeping. A dBm-where-dB or
// feet-where-meters swap is a *type error*, not a silently-wrong link
// budget.
//
// Design rules:
//  * Each type wraps exactly one double (static_assert-pinned to
//    sizeof(double); trivially copyable) and every operation is constexpr —
//    the types erase to plain double arithmetic at -O0 already.
//  * Construction is explicit; there is no implicit conversion from or to
//    double. The escape hatch is .raw(), for the DSP layer's untyped math
//    and for printing.
//  * Only dimensionally meaningful arithmetic exists. Linear quantities
//    (Hertz, Watts, Seconds, Meters, Feet, SampleRate) add/subtract among
//    themselves and scale by dimensionless doubles. Logarithmic quantities
//    compose the way link budgets do:
//        Dbm + Db -> Dbm        (gain applied to a power level)
//        Dbm - Dbm -> Db        (a power ratio)
//        Db  + Db  -> Db
//    while Dbm + Dbm does not compile (adding two absolute power levels in
//    log space is meaningless).
//  * Validation at construction: every type rejects NaN. Linear quantities
//    also reject +-inf. Db/Dbm allow -inf — zero watts is a legitimate
//    power (a silent channel measures -inf dBm) — but reject +inf. These
//    are assert()s: free in release builds, fatal in the Debug CI lane.
//  * Conversions carry the one blessed implementation of the project's
//    magic constants (0.3048 m/ft, c = 299792458 m/s, the dBm reference
//    milliwatt and its -300 dB clamp — see dsp/math_util.h, whose scalar
//    helpers delegate here).
//
// Quickstart (user-defined literals live in fmbs::units::literals):
//
//   using namespace fmbs::units::literals;
//   units::Hertz carrier = 100.5_mhz;
//   units::Dbm power = -35.0_dbm;
//   units::Seconds dur = 0.1_s;
//   units::Meters range = (20.0_ft).to_meters();
//   units::Dbm at_rx = power + units::Db{-12.0};   // gain composes
//   double for_dsp = at_rx.raw();                  // escape hatch
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

namespace fmbs::units {

inline constexpr double kMetersPerFoot = 0.3048;
inline constexpr double kSpeedOfLight = 299792458.0;  // m/s
/// Clamp for log-scale conversions of non-positive linear power, matching
/// dsp::math_util's historical floor so migrated results stay bit-identical.
inline constexpr double kFloorDb = -300.0;

namespace detail {

/// True for every value a linear physical quantity may hold.
constexpr bool finite(double v) { return v == v && v <= 1.79769313486231571e308 && v >= -1.79769313486231571e308; }
/// True for every value a logarithmic quantity may hold (-inf = zero power).
constexpr bool not_nan_nor_posinf(double v) { return v == v && v <= 1.79769313486231571e308; }

/// Round-to-nearest (ties away from zero), constexpr counterpart of
/// std::llround for the Seconds * SampleRate -> SampleCount rule.
constexpr std::int64_t llround_constexpr(double v) {
  return v >= 0.0 ? static_cast<std::int64_t>(v + 0.5)
                  : -static_cast<std::int64_t>(-v + 0.5);
}

}  // namespace detail

/// CRTP base for the linear quantities: one double, explicit construction,
/// same-type additive arithmetic, dimensionless scaling, full comparisons.
template <class Derived>
class LinearUnit {
 public:
  constexpr LinearUnit() = default;
  constexpr explicit LinearUnit(double value) : value_(value) {
    assert(detail::finite(value_) && "unit value must be finite");
  }

  /// The untyped value — the escape hatch into the DSP layer's math.
  constexpr double raw() const { return value_; }

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.raw() + b.raw()};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.raw() - b.raw()};
  }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.raw()}; }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.raw() * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{s * a.raw()};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.raw() / s};
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.raw() / b.raw();
  }
  friend constexpr bool operator==(Derived a, Derived b) {
    return a.raw() == b.raw();
  }
  friend constexpr bool operator!=(Derived a, Derived b) {
    return a.raw() != b.raw();
  }
  friend constexpr bool operator<(Derived a, Derived b) {
    return a.raw() < b.raw();
  }
  friend constexpr bool operator<=(Derived a, Derived b) {
    return a.raw() <= b.raw();
  }
  friend constexpr bool operator>(Derived a, Derived b) {
    return a.raw() > b.raw();
  }
  friend constexpr bool operator>=(Derived a, Derived b) {
    return a.raw() >= b.raw();
  }
  constexpr Derived& operator+=(Derived b) {
    value_ += b.raw();
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived b) {
    value_ -= b.raw();
    return static_cast<Derived&>(*this);
  }

 private:
  double value_ = 0.0;
};

class Meters;
class Watts;
class SampleCount;

/// A frequency (carrier, subcarrier offset, deviation, bandwidth, rate of a
/// slow process). Negative values are meaningful — a backscatter shift below
/// the station is a negative offset.
class Hertz : public LinearUnit<Hertz> {
 public:
  using LinearUnit::LinearUnit;
  /// Free-space wavelength. Asserts a positive frequency — wavelength of DC
  /// or of a negative "frequency" is a bug at the call site (offsets may be
  /// negative; carriers may not).
  constexpr Meters wavelength() const;
};

/// A relative power gain/loss in decibels.
class Db {
 public:
  constexpr Db() = default;
  constexpr explicit Db(double value) : value_(value) {
    assert(detail::not_nan_nor_posinf(value_) && "dB value must not be NaN/+inf");
  }
  constexpr double raw() const { return value_; }

  friend constexpr Db operator+(Db a, Db b) { return Db{a.raw() + b.raw()}; }
  friend constexpr Db operator-(Db a, Db b) { return Db{a.raw() - b.raw()}; }
  friend constexpr Db operator-(Db a) { return Db{-a.raw()}; }
  friend constexpr Db operator*(Db a, double s) { return Db{a.raw() * s}; }
  friend constexpr Db operator*(double s, Db a) { return Db{s * a.raw()}; }
  friend constexpr bool operator==(Db a, Db b) { return a.raw() == b.raw(); }
  friend constexpr bool operator!=(Db a, Db b) { return a.raw() != b.raw(); }
  friend constexpr bool operator<(Db a, Db b) { return a.raw() < b.raw(); }
  friend constexpr bool operator<=(Db a, Db b) { return a.raw() <= b.raw(); }
  friend constexpr bool operator>(Db a, Db b) { return a.raw() > b.raw(); }
  friend constexpr bool operator>=(Db a, Db b) { return a.raw() >= b.raw(); }

  /// Linear power ratio of this gain.
  constexpr double power_ratio() const { return std::pow(10.0, value_ / 10.0); }
  /// Linear amplitude ratio of this gain (20 log10 convention).
  constexpr double amplitude_ratio() const {
    return std::pow(10.0, value_ / 20.0);
  }
  /// Gain of a linear power ratio; non-positive clamps at the -300 dB floor.
  static constexpr Db from_power_ratio(double ratio) {
    return Db{ratio <= 0.0 ? kFloorDb : 10.0 * std::log10(ratio)};
  }
  /// Gain of a linear amplitude ratio (20 log10); clamps like power_ratio.
  static constexpr Db from_amplitude_ratio(double ratio) {
    return Db{ratio <= 0.0 ? kFloorDb : 20.0 * std::log10(ratio)};
  }

 private:
  double value_ = 0.0;
};

/// An absolute power level in dB-milliwatts. -inf is a silent channel.
class Dbm {
 public:
  constexpr Dbm() = default;
  constexpr explicit Dbm(double value) : value_(value) {
    assert(detail::not_nan_nor_posinf(value_) && "dBm value must not be NaN/+inf");
  }
  constexpr double raw() const { return value_; }

  /// Applying a gain to a power level keeps it a power level.
  friend constexpr Dbm operator+(Dbm a, Db b) { return Dbm{a.raw() + b.raw()}; }
  friend constexpr Dbm operator+(Db a, Dbm b) { return Dbm{a.raw() + b.raw()}; }
  friend constexpr Dbm operator-(Dbm a, Db b) { return Dbm{a.raw() - b.raw()}; }
  /// The difference of two power levels is a ratio — a gain.
  friend constexpr Db operator-(Dbm a, Dbm b) { return Db{a.raw() - b.raw()}; }
  /// Sign flip of the level value (what makes `-35.0_dbm` parse; negating a
  /// dBm literal is a notation, not a physical operation).
  friend constexpr Dbm operator-(Dbm a) { return Dbm{-a.raw()}; }
  friend constexpr bool operator==(Dbm a, Dbm b) { return a.raw() == b.raw(); }
  friend constexpr bool operator!=(Dbm a, Dbm b) { return a.raw() != b.raw(); }
  friend constexpr bool operator<(Dbm a, Dbm b) { return a.raw() < b.raw(); }
  friend constexpr bool operator<=(Dbm a, Dbm b) { return a.raw() <= b.raw(); }
  friend constexpr bool operator>(Dbm a, Dbm b) { return a.raw() > b.raw(); }
  friend constexpr bool operator>=(Dbm a, Dbm b) { return a.raw() >= b.raw(); }

  constexpr Watts to_watts() const;

 private:
  double value_ = 0.0;
};

/// An absolute power in watts (the physics' linear domain).
class Watts : public LinearUnit<Watts> {
 public:
  using LinearUnit::LinearUnit;
  /// dBm of this power; non-positive clamps at -300 dBm (matching the
  /// historical dsp::dbm_from_watts floor).
  constexpr Dbm to_dbm() const {
    return Dbm{raw() <= 0.0 ? kFloorDb : 10.0 * std::log10(raw() / 1e-3)};
  }
};

constexpr Watts Dbm::to_watts() const {
  return Watts{1e-3 * std::pow(10.0, value_ / 10.0)};
}

/// Samples per second of one of the simulation's fixed rates.
class SampleRate : public LinearUnit<SampleRate> {
 public:
  using LinearUnit::LinearUnit;
};

/// A duration (or absolute time within a render window).
class Seconds : public LinearUnit<Seconds> {
 public:
  using LinearUnit::LinearUnit;
  /// Seconds -> whole samples at a rate, by the project's rounding rule:
  /// round to nearest, ties away from zero (std::llround), the convention
  /// the scenario engine's block math uses.
  constexpr SampleCount samples_at(SampleRate rate) const;
};

class Feet;

/// A distance in meters — the unit the physics runs in.
class Meters : public LinearUnit<Meters> {
 public:
  using LinearUnit::LinearUnit;
  constexpr Feet to_feet() const;
};

/// A distance in feet — the unit the paper reports.
class Feet : public LinearUnit<Feet> {
 public:
  using LinearUnit::LinearUnit;
  constexpr Meters to_meters() const { return Meters{raw() * kMetersPerFoot}; }
};

constexpr Feet Meters::to_feet() const { return Feet{raw() / kMetersPerFoot}; }

constexpr Meters Hertz::wavelength() const {
  assert(raw() > 0.0 && "wavelength of a non-positive frequency");
  return Meters{kSpeedOfLight / raw()};
}

/// A whole number of samples.
class SampleCount {
 public:
  constexpr SampleCount() = default;
  constexpr explicit SampleCount(std::int64_t value) : value_(value) {}
  constexpr std::int64_t raw() const { return value_; }
  /// Back to a duration at a rate.
  constexpr Seconds at(SampleRate rate) const {
    return Seconds{static_cast<double>(value_) / rate.raw()};
  }
  friend constexpr SampleCount operator+(SampleCount a, SampleCount b) {
    return SampleCount{a.raw() + b.raw()};
  }
  friend constexpr SampleCount operator-(SampleCount a, SampleCount b) {
    return SampleCount{a.raw() - b.raw()};
  }
  friend constexpr bool operator==(SampleCount a, SampleCount b) {
    return a.raw() == b.raw();
  }
  friend constexpr bool operator!=(SampleCount a, SampleCount b) {
    return a.raw() != b.raw();
  }
  friend constexpr bool operator<(SampleCount a, SampleCount b) {
    return a.raw() < b.raw();
  }
  friend constexpr bool operator<=(SampleCount a, SampleCount b) {
    return a.raw() <= b.raw();
  }
  friend constexpr bool operator>(SampleCount a, SampleCount b) {
    return a.raw() > b.raw();
  }
  friend constexpr bool operator>=(SampleCount a, SampleCount b) {
    return a.raw() >= b.raw();
  }

 private:
  std::int64_t value_ = 0;
};

constexpr SampleCount Seconds::samples_at(SampleRate rate) const {
  return SampleCount{detail::llround_constexpr(raw() * rate.raw())};
}

/// Seconds * SampleRate -> whole samples (the project's llround rule).
constexpr SampleCount operator*(Seconds s, SampleRate r) {
  return s.samples_at(r);
}
constexpr SampleCount operator*(SampleRate r, Seconds s) {
  return s.samples_at(r);
}

// ---- User-defined literals --------------------------------------------------

namespace literals {

constexpr Hertz operator""_hz(long double v) {
  return Hertz{static_cast<double>(v)};
}
constexpr Hertz operator""_hz(unsigned long long v) {
  return Hertz{static_cast<double>(v)};
}
constexpr Hertz operator""_khz(long double v) {
  return Hertz{static_cast<double>(v) * 1e3};
}
constexpr Hertz operator""_khz(unsigned long long v) {
  return Hertz{static_cast<double>(v) * 1e3};
}
constexpr Hertz operator""_mhz(long double v) {
  return Hertz{static_cast<double>(v) * 1e6};
}
constexpr Hertz operator""_mhz(unsigned long long v) {
  return Hertz{static_cast<double>(v) * 1e6};
}
constexpr Db operator""_db(long double v) { return Db{static_cast<double>(v)}; }
constexpr Db operator""_db(unsigned long long v) {
  return Db{static_cast<double>(v)};
}
constexpr Dbm operator""_dbm(long double v) {
  return Dbm{static_cast<double>(v)};
}
constexpr Dbm operator""_dbm(unsigned long long v) {
  return Dbm{static_cast<double>(v)};
}
constexpr Watts operator""_w(long double v) {
  return Watts{static_cast<double>(v)};
}
constexpr Watts operator""_mw(long double v) {
  return Watts{static_cast<double>(v) * 1e-3};
}
constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_ms(long double v) {
  return Seconds{static_cast<double>(v) * 1e-3};
}
constexpr Meters operator""_m(long double v) {
  return Meters{static_cast<double>(v)};
}
constexpr Meters operator""_m(unsigned long long v) {
  return Meters{static_cast<double>(v)};
}
constexpr Feet operator""_ft(long double v) {
  return Feet{static_cast<double>(v)};
}
constexpr Feet operator""_ft(unsigned long long v) {
  return Feet{static_cast<double>(v)};
}

}  // namespace literals

// ---- Compile-time self-checks ----------------------------------------------
// Zero overhead: every type is exactly one double (SampleCount: one int64).

static_assert(sizeof(Hertz) == sizeof(double));
static_assert(sizeof(Db) == sizeof(double));
static_assert(sizeof(Dbm) == sizeof(double));
static_assert(sizeof(Watts) == sizeof(double));
static_assert(sizeof(Seconds) == sizeof(double));
static_assert(sizeof(Meters) == sizeof(double));
static_assert(sizeof(Feet) == sizeof(double));
static_assert(sizeof(SampleRate) == sizeof(double));
static_assert(sizeof(SampleCount) == sizeof(std::int64_t));

namespace detail {
using namespace literals;

// Log-domain composition behaves like a link budget.
static_assert((-30.0_dbm + Db{10.0}).raw() == -20.0);
static_assert((-20.0_dbm - (-30.0_dbm)).raw() == 10.0);
// dBm <-> watts: 0 dBm is one milliwatt, exactly.
static_assert((0.0_dbm).to_watts() == Watts{1e-3});
static_assert(Watts{1e-3}.to_dbm().raw() == 0.0);
static_assert(Watts{0.0}.to_dbm().raw() == kFloorDb);
// Feet <-> meters round-trips through the one 0.3048 constant.
static_assert((1.0_ft).to_meters().raw() == kMetersPerFoot);
static_assert((20.0_ft).to_meters().to_feet() == 20.0_ft);
// Wavelength at the paper's deployed station is ~3.16 m.
static_assert((94.9_mhz).wavelength().raw() > 3.15 &&
              (94.9_mhz).wavelength().raw() < 3.17);
// The sample rule: round to nearest, ties away from zero.
static_assert(0.1_s * SampleRate{240000.0} == SampleCount{24000});
static_assert(Seconds{1.0 / 3.0} * SampleRate{3.0} == SampleCount{1});
// Frequency scaling through the MHz literal is exact.
static_assert(100.5_mhz == Hertz{100.5e6});
}  // namespace detail

}  // namespace units

// The types read naturally from every layer as units::X; benches/tests pull
// in the literals with `using namespace fmbs::units::literals`.
namespace units = fmbs::units;
