// Umbrella header: the full public API of the FM-backscatter library.
//
// Quick start:
//
//   #include "core/fmbs.h"
//   using namespace fmbs;
//
//   core::ExperimentPoint point;                 // -30 dBm, 4 ft, news
//   auto ber = core::run_overlay_ber(point, tag::DataRate::k100bps, 400);
//
// or drive the pieces directly: render a station (fm::render_station),
// compose a tag baseband (tag::compose_overlay_baseband), run the physical
// simulation (core::simulate) and decode (rx::demodulate_fsk /
// audio::pesq_like).
#pragma once

#include "audio/metrics.h"
#include "audio/music_synth.h"
#include "audio/pesq_like.h"
#include "audio/program.h"
#include "audio/speech_synth.h"
#include "audio/tone.h"
#include "audio/wav.h"
#include "channel/fading.h"
#include "channel/link_budget.h"
#include "core/aloha.h"
#include "core/config.h"
#include "core/experiment.h"
#include "core/fleet.h"
#include "core/harvesting.h"
#include "core/rng.h"
#include "core/scenario.h"
#include "core/simulator.h"
#include "core/sweep_runner.h"
#include "core/thread_pool.h"
#include "fm/constants.h"
#include "fm/rds.h"
#include "fm/receiver.h"
#include "fm/station_cache.h"
#include "fm/transmitter.h"
#include "rx/analytic_fsk.h"
#include "rx/cooperative.h"
#include "rx/fsk_demod.h"
#include "rx/mrc.h"
#include "rx/multitag.h"
#include "survey/city_survey.h"
#include "survey/spectrum_db.h"
#include "tag/antenna.h"
#include "tag/baseband.h"
#include "tag/channel_plan.h"
#include "tag/framing.h"
#include "tag/fsk.h"
#include "tag/mac.h"
#include "tag/power_model.h"
#include "tag/subcarrier.h"
