// Streaming scenario engine: the batch ScenarioEngine's block renderer
// refactored into a producer/consumer pipeline with O(1) memory in the run
// duration. One producer thread renders the shared RF scene a 0.1 s block at
// a time into a fixed ring of reusable per-receiver IQ buffers
// (dsp::RingBuffer); consumer threads demodulate blocks incrementally
// through persistent per-link state (fm::StereoStreamDecoder,
// rx::StreamingBurstDemodulator, rx::RdsStreamDecoder, the streaming device
// chains) — no full-run capture ever exists.
//
// Equivalence contract: for every committed golden scenario the streaming
// engine's decoded ScenarioResult is byte-identical to ScenarioEngine::run
// (pinned by tests/golden/test_streaming_equivalence.cpp), at any consumer
// thread count. Two documented divergences exist only on runs longer than
// the configured bounds, which no golden reaches:
//   * global decisions (stereo pilot detect, the tuned station's whole-run
//     RDS decode) are made from the first `decision_window` of the
//     run instead of all of it;
//   * station program content loops every `station_horizon` once the
//     run outgrows the horizon (phase-continuous IQ via a persistent
//     per-station FmModulator), so a 10-minute soak run costs the memory of
//     a 2 s render.
#pragma once

#include <cstddef>
#include <functional>

#include "core/scenario.h"

namespace fmbs::core {

/// One decoded-link event, delivered live as its decode window completes
/// mid-stream (the radio-server daemon serves these without waiting for the
/// run to end). Windows truncated by the end of the run are delivered during
/// the final drain.
struct StreamingLinkEvent {
  enum class Kind {
    kFskBurst,    ///< a data tag's FSK payload scored
    kRdsBurst,    ///< a tag's RadioText burst decoded
    kStationRds,  ///< the tuned station's broadcast RDS (link.rds only)
  };
  Kind kind = Kind::kFskBurst;
  std::size_t receiver_index = 0;
  std::size_t tag_index = 0;  ///< meaningless for kStationRds
  /// Simulated stream time (seconds since the start of the render, settle
  /// included) at which the window completed.
  double stream_seconds = 0.0;
  TagLinkReport link;
};

/// Streaming engine options.
struct StreamingConfig {
  /// Demodulation threads; receivers are partitioned round-robin
  /// (r % consumer_threads), so decoded results are bit-identical at any
  /// count — the producer's scene is independent of it and each receiver's
  /// chain stays sequential on one thread.
  std::size_t consumer_threads = 1;
  /// Ring capacity in 0.1 s blocks: how far the producer may run ahead of
  /// the slowest consumer. Memory is ring_blocks * receivers * 192 KB.
  std::size_t ring_blocks = 8;
  /// Station render horizon. Runs no longer than this use one exact render
  /// per station (bit-identical to the batch engine); longer runs render the
  /// horizon once and loop its MPX through a persistent modulator.
  units::Seconds station_horizon{2.0};
  /// Bound on the buffered global decisions (stereo pilot detect; the tuned
  /// station's capture-wide RDS window). <= 0 buffers the whole run, exactly
  /// like the batch engine — and unbounded memory on long runs.
  units::Seconds decision_window{4.0};
  /// Demand-driven (kSparse) vs exhaustive (kDense) scene synthesis, exactly
  /// as in ScenarioEngineConfig.
  SceneRendering scene_rendering = SceneRendering::kSparse;
  /// Pace the producer to simulated real time (one 0.1 s block per 0.1 s of
  /// wall clock) — the radio-server daemon mode. Off: render flat out.
  bool real_time = false;
  /// Live decode callback, invoked from consumer threads as windows
  /// complete. May be called concurrently from different consumers (never
  /// for the same receiver); the callee synchronizes its own state.
  std::function<void(const StreamingLinkEvent&)> on_link;
};

/// Runs scenarios through the streaming pipeline. Stateless between runs.
/// The returned ScenarioResult matches ScenarioEngine::run field for field,
/// except receiver captures are never kept (the whole point is that they
/// never exist) and scene.streaming_peak_buffer_bytes reports the bounded
/// buffering that replaced them.
class StreamingEngine {
 public:
  explicit StreamingEngine(StreamingConfig config = {});

  const StreamingConfig& config() const { return config_; }

  /// Renders, streams and decodes one scenario. Throws
  /// std::invalid_argument on inconsistent scenarios (same validation as the
  /// batch engine) and propagates any worker-thread failure after shutting
  /// the pipeline down cleanly.
  ScenarioResult run(const Scenario& scenario) const;

 private:
  StreamingConfig config_;
};

}  // namespace fmbs::core
