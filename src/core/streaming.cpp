#include "core/streaming.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "audio/tone.h"
#include "channel/awgn.h"
#include "channel/fading.h"
#include "channel/superpose.h"
#include "dsp/fir.h"
#include "dsp/nco.h"
#include "dsp/ring_buffer.h"
#include "fm/demodulator.h"
#include "fm/modulator.h"
#include "fm/station_cache.h"
#include "fm/stereo_stream.h"
#include "rx/device_stream.h"
#include "rx/fsk_stream.h"
#include "rx/rds_stream.h"
#include "rx/tuner.h"
#include "tag/baseband.h"
#include "tag/fsk.h"
#include "tag/subcarrier.h"

namespace fmbs::core {

namespace {

// Block geometry and decode slack, byte-identical to the batch engine's
// (scenario.cpp); the golden streaming==batch equivalence tests pin the two
// against each other.
constexpr std::size_t kBlockMpx = 24000;  // 0.1 s at 240 kHz
constexpr double kBlockSeconds = static_cast<double>(kBlockMpx) / fm::kMpxRate;
constexpr std::size_t kBlockRf =
    kBlockMpx * static_cast<std::size_t>(fm::kMpxToRfFactor);
constexpr double kRdsDecodeSlackSeconds = 0.02;

/// One published ring slot: the tuned post-channel IQ of every receiver for
/// one 0.1 s block. The producer refills the same vectors in place, so the
/// steady state allocates nothing.
struct StreamBlock {
  std::size_t index = 0;
  std::vector<dsp::cvec> iq;  // [receiver][kBlockMpx]
};

/// Producer-side per-station state. Exact mode streams blocks straight out
/// of the cached full-run render (like the batch engine); loop mode cycles a
/// horizon render's MPX through a persistent modulator, keeping the carrier
/// phase continuous across the seam at O(horizon) memory.
struct StationSource {
  std::shared_ptr<const fm::StationSignal> render;
  std::optional<dsp::FirInterpolator<dsp::cfloat>> up;
  std::optional<dsp::Mixer> mixer;
  std::optional<fm::FmModulator> loop_mod;
  std::size_t loop_pos = 0;  // next MPX sample of the cycled horizon
  dsp::cvec loop_iq;         // per-block re-modulated IQ (loop mode)
};

/// Producer-side per-tag state. Unlike the batch engine's padded full-run
/// baseband, only the burst's own waveform is kept: outside
/// [wave_begin, wave_begin + wave_len) the baseband is zero by construction
/// (the FIR interpolator's zero state makes the compact waveform bit-equal
/// to the slice of the padded one).
struct StreamTag {
  dsp::rvec wave;
  const dsp::rvec* custom = nullptr;  // custom-baseband tags read in place
  std::size_t wave_begin = 0;
  std::size_t wave_len = 0;
  std::size_t active_begin = 0;  // switch-on window, MPX samples
  std::size_t active_end = 0;
  std::vector<std::uint8_t> bits;
  std::vector<unsigned char> rds_bits;
  double burst_start_seconds = 0.0;
  double burst_seconds = 0.0;
  bool transmitted = true;
  std::unique_ptr<tag::SubcarrierGenerator> subcarrier;
  std::unique_ptr<channel::FadingProcess> fading;
  std::uint64_t fading_seed = 0;
  std::size_t fading_segment = static_cast<std::size_t>(-1);
};

/// One burst collector riding a receiver's decoded-audio stream.
struct FskCollector {
  std::size_t tag = 0;
  std::size_t seg = 0;  // segment owning the burst midpoint
  rx::StreamingBurstDemodulator demod;
  bool done = false;
  TagLinkReport link;
};

/// One RDS-window collector riding a receiver's post-demod MPX stream.
struct RdsCollector {
  std::size_t tag = 0;
  std::size_t seg = 0;
  rx::RdsStreamDecoder decoder;
  bool done = false;
  TagLinkReport link;
};

/// Everything one receiver's consumer needs, owned by exactly one consumer
/// thread during streaming and read by the main thread only after join.
struct ReceiverStream {
  std::size_t index = 0;
  fm::QuadratureDemodulator demod;
  fm::StereoStreamDecoder stereo;
  std::optional<rx::PhoneChainStream> phone;
  std::optional<rx::CabinAcousticsStream> cabin;
  std::vector<FskCollector> fsk;
  std::vector<RdsCollector> rds;
  std::optional<rx::RdsStreamDecoder> station_rds;
  bool station_rds_done = false;
  rx::RdsLinkReport station_rds_report;
  dsp::rvec left, right, mono;  // per-block audio scratch

  ReceiverStream(const fm::StereoDecoderConfig& stereo_cfg, std::size_t padded,
                 units::Seconds decision_window)
      : demod(units::Hertz{fm::kMaxDeviationHz}, fm::kMpxRate),
        stereo(stereo_cfg, padded, decision_window) {}
};

/// Shared read-only context for the consumer threads.
struct StreamContext {
  const Scenario* sc = nullptr;
  const ScenarioPlan* plan = nullptr;
  const std::function<void(const StreamingLinkEvent&)>* on_link = nullptr;
};

void finalize_fsk(const StreamContext& ctx, ReceiverStream& rs,
                  FskCollector& c, double now) {
  c.link = TagLinkReport{};
  c.link.tag_index = c.tag;
  c.link.receiver_index = rs.index;
  c.link.burst = c.demod.finish();
  c.link.backscatter_rx_power_dbm =
      (*ctx.plan).rx_power_dbm[c.seg][rs.index][c.tag];
  c.link.goodput_bps = static_cast<double>(c.link.burst.bits_delivered) /
                       ctx.sc->duration.raw();
  c.done = true;
  if (*ctx.on_link) {
    StreamingLinkEvent ev;
    ev.kind = StreamingLinkEvent::Kind::kFskBurst;
    ev.receiver_index = rs.index;
    ev.tag_index = c.tag;
    ev.stream_seconds = now;
    ev.link = c.link;
    (*ctx.on_link)(ev);
  }
}

void finalize_rds(const StreamContext& ctx, ReceiverStream& rs,
                  RdsCollector& c, double now) {
  c.link = TagLinkReport{};
  c.link.tag_index = c.tag;
  c.link.receiver_index = rs.index;
  c.link.rds = c.decoder.finish();
  c.link.burst.ber.ber = c.link.rds->bler;
  c.link.burst.bits_delivered = c.link.rds->blocks_ok * 16;
  c.link.backscatter_rx_power_dbm =
      (*ctx.plan).rx_power_dbm[c.seg][rs.index][c.tag];
  c.link.goodput_bps = static_cast<double>(c.link.burst.bits_delivered) /
                       ctx.sc->duration.raw();
  c.done = true;
  if (*ctx.on_link) {
    StreamingLinkEvent ev;
    ev.kind = StreamingLinkEvent::Kind::kRdsBurst;
    ev.receiver_index = rs.index;
    ev.tag_index = c.tag;
    ev.stream_seconds = now;
    ev.link = c.link;
    (*ctx.on_link)(ev);
  }
}

void finalize_station_rds(const StreamContext& ctx, ReceiverStream& rs,
                          double now) {
  rs.station_rds_report = rs.station_rds->finish();
  rs.station_rds_done = true;
  if (*ctx.on_link) {
    StreamingLinkEvent ev;
    ev.kind = StreamingLinkEvent::Kind::kStationRds;
    ev.receiver_index = rs.index;
    ev.stream_seconds = now;
    ev.link.receiver_index = rs.index;
    ev.link.rds = rs.station_rds_report;
    (*ctx.on_link)(ev);
  }
}

/// Feeds freshly decoded audio (rs.left/rs.right) through the device chain
/// into every open burst collector.
void feed_audio(const StreamContext& ctx, ReceiverStream& rs, double now) {
  if (rs.left.empty()) return;
  rs.mono.resize(rs.left.size());
  for (std::size_t i = 0; i < rs.mono.size(); ++i) {
    rs.mono[i] = 0.5F * (rs.left[i] + rs.right[i]);
  }
  if (rs.phone) rs.phone->process_inplace(rs.mono);
  if (rs.cabin) rs.cabin->process_inplace(rs.mono);
  for (FskCollector& c : rs.fsk) {
    if (c.done) continue;
    c.demod.push(rs.mono);
    if (c.demod.window_complete()) finalize_fsk(ctx, rs, c, now);
  }
}

void consume_block(const StreamContext& ctx, ReceiverStream& rs,
                   std::span<const dsp::cfloat> iq, double now) {
  const dsp::rvec mpx = rs.demod.process(iq);
  if (rs.station_rds && !rs.station_rds_done) {
    rs.station_rds->push(mpx);
    if (rs.station_rds->window_complete()) finalize_station_rds(ctx, rs, now);
  }
  for (RdsCollector& c : rs.rds) {
    if (c.done) continue;
    c.decoder.push(mpx);
    if (c.decoder.window_complete()) finalize_rds(ctx, rs, c, now);
  }
  rs.left.clear();
  rs.right.clear();
  rs.stereo.push(mpx, rs.left, rs.right);
  feed_audio(ctx, rs, now);
}

/// End of stream: flush the stereo tail and score every still-open window
/// (truncated windows were clamped to the capture up front, so their reports
/// match the batch engine's on the same truncated capture).
void drain_receiver(const StreamContext& ctx, ReceiverStream& rs, double now) {
  rs.left.clear();
  rs.right.clear();
  rs.stereo.finish(rs.left, rs.right);
  feed_audio(ctx, rs, now);
  if (rs.station_rds && !rs.station_rds_done) {
    finalize_station_rds(ctx, rs, now);
  }
  for (RdsCollector& c : rs.rds) {
    if (!c.done) finalize_rds(ctx, rs, c, now);
  }
  for (FskCollector& c : rs.fsk) {
    if (!c.done) finalize_fsk(ctx, rs, c, now);
  }
}

}  // namespace

StreamingEngine::StreamingEngine(StreamingConfig config)
    : config_(std::move(config)) {
  if (config_.consumer_threads == 0) {
    throw std::invalid_argument("StreamingEngine: consumer_threads must be > 0");
  }
  if (config_.ring_blocks == 0) {
    throw std::invalid_argument("StreamingEngine: ring_blocks must be > 0");
  }
  if (config_.station_horizon.raw() <= 0.0) {
    throw std::invalid_argument(
        "StreamingEngine: station_horizon must be > 0");
  }
}

ScenarioResult StreamingEngine::run(const Scenario& sc) const {
  const ScenarioPlan plan = resolve_scenario_plan(sc);
  const double total_seconds = plan.total_seconds;
  const std::size_t num_segments = plan.num_segments;
  const bool multi = plan.multi;
  const std::size_t num_stations = plan.num_stations;
  const std::vector<double>& station_offset = plan.station_offset;
  const std::vector<std::vector<int>>& sel = plan.selected_station;
  const std::size_t blocks_per_segment =
      plan.segment_seconds > 0.0
          ? static_cast<std::size_t>(
                std::llround(plan.segment_seconds / kBlockSeconds))
          : 0;

  ScenarioResult result;
  // Scene renders stay pinned for the stream's whole lifetime: the producer
  // re-reads them on every block, so mid-run eviction would be a
  // use-after-free, not just a cache miss.
  fm::StationCache::SceneScope scope(fm::StationCache::instance());

  // Runs within the horizon use one exact full-run render per station — the
  // batch engine's source signals, bit for bit. Longer runs render the
  // horizon once and loop it.
  const bool loop_mode = total_seconds > config_.station_horizon.raw();
  const double render_seconds =
      loop_mode ? config_.station_horizon.raw() : total_seconds;
  result.station_renders.assign(num_stations, nullptr);
  result.station_renders[0] =
      scope.render(multi ? sc.stations[0].config : sc.station,
                   units::Seconds{render_seconds});
  result.station = result.station_renders[0];
  const std::size_t content_len = result.station->iq.size();
  const std::size_t run_len =
      loop_mode ? static_cast<std::size_t>(total_seconds * fm::kMpxRate + 0.5)
                : content_len;
  const std::size_t padded = (run_len + kBlockMpx - 1) / kBlockMpx * kBlockMpx;
  const std::size_t num_blocks = padded / kBlockMpx;

  result.selected_station = sel[0];
  result.segments.resize(num_segments);
  for (std::size_t k = 0; k < num_segments; ++k) {
    const auto [s0, s1] = plan.segment_bounds(k);
    result.segments[k].start_seconds = s0;
    result.segments[k].end_seconds = s1;
    result.segments[k].selected_station = sel[k];
  }

  // ---- Pruning and station renders (shared logic with the batch engine). ---
  const ScenePruning pruning =
      resolve_scene_pruning(sc, plan, config_.scene_rendering);
  const std::vector<char>& station_needed = pruning.station_needed;
  const std::vector<char>& tag_needed = pruning.tag_needed;
  for (std::size_t s = 1; s < num_stations; ++s) {
    if (!station_needed[s]) continue;
    result.station_renders[s] =
        scope.render(sc.stations[s].config, units::Seconds{render_seconds});
    if (result.station_renders[s]->iq.size() != content_len) {
      throw std::logic_error("StreamingEngine: station render length mismatch");
    }
  }
  result.scene.stations_total = num_stations;
  result.scene.tags_total = sc.tags.size();
  for (std::size_t s = 0; s < num_stations; ++s) {
    result.scene.stations_rendered += station_needed[s] ? 1U : 0U;
  }
  for (std::size_t t = 0; t < sc.tags.size(); ++t) {
    result.scene.tags_rendered += tag_needed[t] ? 1U : 0U;
  }

  // ---- Per-tag state and compact burst waveforms. --------------------------
  result.mac.resize(sc.tags.size());
  std::vector<StreamTag> tags(sc.tags.size());
  for (std::size_t i = 0; i < sc.tags.size(); ++i) {
    const ScenarioTag& t = sc.tags[i];
    const ScenarioTagPlan& tp = plan.tags[i];
    StreamTag& st = tags[i];
    st.subcarrier = std::make_unique<tag::SubcarrierGenerator>(t.subcarrier);
    if (t.fading) {
      st.fading_seed = tp.fading_seed;
      if (num_segments == 1) {
        st.fading = std::make_unique<channel::FadingProcess>(
            *t.fading, fm::kRfRate, st.fading_seed);
      }
    }
    if (tp.custom_baseband) {
      // Read the user's baseband in place; the block stager supplies the
      // zeros the batch engine's resize(padded) would have appended.
      st.custom = &t.custom_baseband;
      st.active_begin = 0;
      st.active_end = padded;
      continue;
    }
    st.burst_seconds = tp.burst_seconds;
    if (tp.rds) {
      st.rds_bits = tp.rds_bits;
    } else {
      st.bits = tag::random_bits(t.num_bits, tp.content_seed);
    }
    result.mac[i].transmitted = tp.transmitted;
    result.mac[i].deferrals = tp.deferrals;
    result.mac[i].start_seconds = tp.start_seconds;
    result.mac[i].last_sensed_dbm = tp.last_sensed_dbm;
    st.transmitted = tp.transmitted;
    if (!tp.transmitted || !tag_needed[i]) {
      st.burst_start_seconds = tp.start_seconds;
      st.active_begin = 0;
      st.active_end = 0;
      continue;
    }
    st.burst_start_seconds = tp.start_seconds;
    if (!st.rds_bits.empty()) {
      const auto nsamp = static_cast<std::size_t>(
          std::ceil(st.burst_seconds * fm::kMpxRate));
      st.wave = tag::compose_rds_baseband(st.rds_bits, nsamp, t.rds_level);
      st.wave_begin =
          static_cast<std::size_t>(st.burst_start_seconds * fm::kMpxRate);
    } else {
      // The batch engine composes silence(start) ++ fsk through the overlay
      // interpolator; with zero filter state the silent prefix maps to an
      // exact zero prefix, so composing the payload alone and offsetting it
      // reproduces the padded baseband bit for bit at O(burst) memory.
      const auto lead = static_cast<std::size_t>(
          st.burst_start_seconds * fm::kAudioRate + 0.5);
      st.wave = tag::compose_overlay_baseband(
          tag::modulate_fsk(st.bits, t.rate, fm::kAudioRate), t.level,
          fm::kMpxRate);
      st.wave_begin =
          lead * static_cast<std::size_t>(fm::kMpxRate / fm::kAudioRate);
    }
    st.wave_len = std::min(
        st.wave.size(), st.wave_begin < padded ? padded - st.wave_begin : 0);
    st.active_begin = static_cast<std::size_t>(
        std::max(0.0, st.burst_start_seconds - kBurstGuardSeconds) *
        fm::kMpxRate);
    st.active_end = std::min(
        padded,
        static_cast<std::size_t>(
            (st.burst_start_seconds + st.burst_seconds + kBurstGuardSeconds) *
            fm::kMpxRate));
  }

  // ---- Per-station front ends (never reset at segment boundaries). --------
  const auto up_factor = static_cast<std::size_t>(fm::kMpxToRfFactor);
  const std::vector<float> up_taps = dsp::fir_design_lowpass(
      (16 * up_factor) | 1U, 0.45 / static_cast<double>(up_factor));
  std::vector<StationSource> stations(num_stations);
  for (std::size_t s = 0; s < num_stations; ++s) {
    if (!station_needed[s]) continue;
    StationSource& src = stations[s];
    src.render = result.station_renders[s];
    src.up.emplace(up_taps, up_factor);
    if (station_offset[s] != 0.0) {
      src.mixer.emplace(station_offset[s], fm::kRfRate);
    }
    if (loop_mode) {
      const units::Hertz deviation =
          multi ? sc.stations[s].config.deviation : sc.station.deviation;
      src.loop_mod.emplace(deviation, fm::kMpxRate);
    }
  }

  // ---- Per-receiver front ends and decode chains. --------------------------
  std::vector<channel::AwgnSource> noise;
  std::vector<rx::Tuner> tuners;
  noise.reserve(sc.receivers.size());
  tuners.reserve(sc.receivers.size());
  std::vector<std::unique_ptr<ReceiverStream>> streams(sc.receivers.size());
  std::size_t decode_buffer_bytes = 0;
  for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
    const ScenarioReceiver& rx = sc.receivers[r];
    noise.emplace_back(receiver_noise_floor(rx),
                       units::Hertz{fm::kChannelSpacingHz}, fm::kRfRate,
                       plan.receiver_noise_seed[r]);
    rx::TunerConfig tuner_cfg;
    tuner_cfg.offset_hz = rx.tune_offset.raw();
    tuners.emplace_back(tuner_cfg);

    fm::StereoDecoderConfig sdc = rx.stereo_decoder;
    sdc.mpx_rate = fm::kMpxRate;
    streams[r] = std::make_unique<ReceiverStream>(
        sdc, padded, config_.decision_window);
    ReceiverStream& rs = *streams[r];
    rs.index = r;
    if (rx.kind == ReceiverKind::kCar) {
      rs.cabin.emplace(rx.cabin, sdc.audio_rate);
    } else {
      rs.phone.emplace(rx.phone, sdc.audio_rate);
    }
    const auto decim =
        static_cast<std::size_t>(sdc.mpx_rate / sdc.audio_rate + 0.5);
    const std::size_t audio_len = padded / decim;

    // FSK burst routing, exactly as the batch engine routes before
    // demodulate_bursts.
    for (std::size_t t = 0; t < sc.tags.size(); ++t) {
      const ScenarioTag& tcfg = sc.tags[t];
      if (tags[t].bits.empty()) continue;
      if (!tags[t].transmitted) continue;
      const std::size_t burst_seg = plan.segment_of_time(
          tags[t].burst_start_seconds + 0.5 * tags[t].burst_seconds);
      if (!tag_audible_at(
              tcfg,
              units::Hertz{
                  station_offset[static_cast<std::size_t>(sel[burst_seg][t])]},
              rx.tune_offset)) {
        continue;
      }
      rx::BurstSpec burst;
      burst.rate = tcfg.rate;
      burst.bits = tags[t].bits;
      burst.start_seconds = tags[t].burst_start_seconds;
      burst.packet_bits = tcfg.packet_bits;
      rs.fsk.push_back(FskCollector{
          t, burst_seg,
          rx::StreamingBurstDemodulator(burst, sdc.audio_rate, audio_len),
          false,
          TagLinkReport{}});
    }
    // RDS tag links, over their on-air windows only.
    for (std::size_t t = 0; t < sc.tags.size(); ++t) {
      const StreamTag& st = tags[t];
      if (st.rds_bits.empty() || !st.transmitted) continue;
      const std::size_t burst_seg = plan.segment_of_time(
          st.burst_start_seconds + 0.5 * st.burst_seconds);
      if (!tag_audible_at(
              sc.tags[t],
              units::Hertz{
                  station_offset[static_cast<std::size_t>(sel[burst_seg][t])]},
              rx.tune_offset)) {
        continue;
      }
      rs.rds.push_back(RdsCollector{
          t, burst_seg,
          rx::RdsStreamDecoder(fm::kMpxRate, padded, st.burst_start_seconds,
                               st.burst_seconds + kRdsDecodeSlackSeconds),
          false,
          TagLinkReport{}});
    }
    // The tuned channel's own broadcast RDS (window bounded for soak runs).
    const fm::StationConfig* tuned_station = nullptr;
    if (multi) {
      for (std::size_t s = 0; s < num_stations; ++s) {
        if (std::abs(station_offset[s] - rx.tune_offset.raw()) < 1.0) {
          tuned_station = &sc.stations[s].config;
          break;
        }
      }
    } else if (std::abs(rx.tune_offset.raw()) < 1.0) {
      tuned_station = &sc.station;
    }
    if (tuned_station != nullptr && tuned_station->rds_level > 0.0) {
      // In loop mode the station MPX past the first horizon period is a
      // re-cycle whose RDS group alignment breaks at every seam (the horizon
      // rarely holds a whole number of groups), so the ambient-RDS verdict
      // is reached within the first period — where the streamed content is
      // bit-exact — rather than diluted with seam garbage.
      const double station_window =
          loop_mode ? std::min(config_.decision_window.raw(),
                               config_.station_horizon.raw())
                    : config_.decision_window.raw();
      rs.station_rds.emplace(fm::kMpxRate, padded, 0.0, -1.0, station_window);
    }

    decode_buffer_bytes += rs.stereo.decision_buffer_bytes();
    decode_buffer_bytes +=
        (rs.stereo.decision_buffer_bytes() / sizeof(float) / decim) * 2 *
        sizeof(float);  // the L/R chunk the decision flush emits
    decode_buffer_bytes += kBlockMpx * sizeof(float);  // per-block MPX scratch
    for (const FskCollector& c : rs.fsk) decode_buffer_bytes += c.demod.buffer_bytes();
    for (const RdsCollector& c : rs.rds) decode_buffer_bytes += c.decoder.buffer_bytes();
    if (rs.station_rds) decode_buffer_bytes += rs.station_rds->buffer_bytes();
  }

  // ---- The O(1)-memory ledger. ---------------------------------------------
  // Every buffer whose lifetime spans the stream, summed up front (all sizes
  // are known before the first sample): ring slots, producer scene scratch,
  // compact burst waveforms, loop-mode horizon buffers, decision windows and
  // burst collectors. None scales with the run duration — the property the
  // soak tests pin via this field.
  std::size_t peak_bytes =
      config_.ring_blocks * sc.receivers.size() * kBlockMpx * sizeof(dsp::cfloat);
  peak_bytes += kBlockRf * sizeof(dsp::cfloat);  // per-receiver RF compose
  peak_bytes += kBlockMpx * sizeof(float);       // tag baseband staging
  for (std::size_t s = 0; s < num_stations; ++s) {
    if (!station_needed[s]) continue;
    peak_bytes += kBlockRf * sizeof(dsp::cfloat);  // st_rf[s]
    if (loop_mode) {
      peak_bytes += stations[s].render->mpx.size() * sizeof(float);
      peak_bytes += stations[s].render->iq.size() * sizeof(dsp::cfloat);
      peak_bytes += kBlockMpx * sizeof(dsp::cfloat);  // re-modulated block
    }
  }
  if (loop_mode) peak_bytes += kBlockMpx * sizeof(float);  // MPX cycle scratch
  // A tag's reflected-IQ scratch lives only across its active blocks (the
  // producer frees it once the burst window passes), so the ledger charges
  // the worst-case number of *simultaneously* active tags, not the tag
  // count: a long run of staggered bursts buffers like a single burst.
  std::vector<std::pair<std::size_t, int>> active_edges;
  for (std::size_t t = 0; t < sc.tags.size(); ++t) {
    if (!tag_needed[t] || tags[t].active_end <= tags[t].active_begin) continue;
    active_edges.emplace_back(tags[t].active_begin / kBlockMpx, +1);
    active_edges.emplace_back(
        (tags[t].active_end + kBlockMpx - 1) / kBlockMpx, -1);
  }
  std::sort(active_edges.begin(), active_edges.end());
  std::ptrdiff_t concurrent = 0;
  std::ptrdiff_t peak_concurrent = 0;
  for (const auto& [block, edge] : active_edges) {
    concurrent += edge;
    peak_concurrent = std::max(peak_concurrent, concurrent);
  }
  peak_bytes += static_cast<std::size_t>(peak_concurrent) * kBlockRf *
                sizeof(dsp::cfloat);
  for (std::size_t t = 0; t < sc.tags.size(); ++t) {
    peak_bytes += tags[t].wave.size() * sizeof(float);
  }
  peak_bytes += decode_buffer_bytes;
  dsp::cvec scene_scratch;
  if (!loop_mode && padded != content_len) {
    scene_scratch.resize(kBlockMpx);
    peak_bytes += kBlockMpx * sizeof(dsp::cfloat);
  }
  result.scene.scene_scratch_bytes =
      scene_scratch.size() * sizeof(dsp::cfloat);
  result.scene.streaming_peak_buffer_bytes = peak_bytes;

  // ---- The pipeline. -------------------------------------------------------
  const std::size_t num_consumers = config_.consumer_threads;
  dsp::RingBuffer<StreamBlock> ring(config_.ring_blocks, num_consumers);
  StreamContext ctx;
  ctx.sc = &sc;
  ctx.plan = &plan;
  ctx.on_link = &config_.on_link;

  std::vector<std::exception_ptr> errors(num_consumers + 1);
  std::vector<std::thread> workers;
  workers.reserve(num_consumers);
  for (std::size_t k = 0; k < num_consumers; ++k) {
    workers.emplace_back([&, k] {
      try {
        while (StreamBlock* blk = ring.consumer_acquire(k)) {
          const double now =
              static_cast<double>(blk->index + 1) * kBlockSeconds;
          for (std::size_t r = k; r < streams.size(); r += num_consumers) {
            consume_block(ctx, *streams[r], blk->iq[r], now);
          }
          ring.consumer_release(k);
        }
        if (!ring.stopped()) {
          const double end = static_cast<double>(num_blocks) * kBlockSeconds;
          for (std::size_t r = k; r < streams.size(); r += num_consumers) {
            drain_receiver(ctx, *streams[r], end);
          }
        }
      } catch (...) {
        errors[k + 1] = std::current_exception();
        ring.stop();
      }
    });
  }

  // Producer: the calling thread renders the scene block by block into the
  // ring — the batch engine's block loop, feeding slots instead of growing
  // per-receiver captures.
  try {
    std::vector<dsp::cvec> st_rf(num_stations);
    std::vector<dsp::cvec> reflected(sc.tags.size());
    std::vector<char> tag_active(sc.tags.size(), 0);
    dsp::rvec tag_bb(kBlockMpx);
    dsp::rvec loop_mpx;
    if (loop_mode) loop_mpx.resize(kBlockMpx);
    dsp::cvec rf;
    const auto t0 = std::chrono::steady_clock::now();  // fmbs-lint: allow(wall-clock-seed) real_time pacing only delays block production, never feeds a sample or seed
    std::size_t block_index = 0;
    for (std::size_t start = 0; start < padded;
         start += kBlockMpx, ++block_index) {
      if (config_.real_time) {
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(  // fmbs-lint: allow(wall-clock-seed) pacing, not state
                     std::chrono::duration<double>(
                         static_cast<double>(block_index) * kBlockSeconds)));
      }
      const std::size_t seg =
          num_segments == 1
              ? 0
              : std::min(num_segments - 1, block_index / blocks_per_segment);

      for (std::size_t s = 0; s < num_stations; ++s) {
        if (!station_needed[s]) continue;
        StationSource& src = stations[s];
        std::span<const dsp::cfloat> st_block;
        if (loop_mode) {
          // Cycle the horizon's MPX through the persistent modulator: the
          // carrier phase rides straight across the content seam.
          const dsp::rvec& mpx = src.render->mpx;
          std::size_t pos = src.loop_pos;
          for (std::size_t i = 0; i < kBlockMpx; ++i) {
            loop_mpx[i] = mpx[pos];
            if (++pos == mpx.size()) pos = 0;
          }
          src.loop_pos = pos;
          src.loop_iq = src.loop_mod->process(loop_mpx);
          st_block = std::span<const dsp::cfloat>(src.loop_iq);
        } else if (start + kBlockMpx <= content_len) {
          st_block = std::span<const dsp::cfloat>(
              src.render->iq.data() + start, kBlockMpx);
        } else {
          // Partial final block: stage the remaining render samples and hold
          // the final one through the pad (batch engine semantics).
          const std::size_t have = content_len - start;
          std::copy(src.render->iq.begin() + static_cast<std::ptrdiff_t>(start),
                    src.render->iq.end(), scene_scratch.begin());
          std::fill(scene_scratch.begin() + static_cast<std::ptrdiff_t>(have),
                    scene_scratch.end(), src.render->iq.back());
          st_block = std::span<const dsp::cfloat>(scene_scratch);
        }
        st_rf[s] = src.up->process(st_block);
        if (src.mixer) src.mixer->process_inplace(st_rf[s]);
      }

      for (std::size_t t = 0; t < tags.size(); ++t) {
        StreamTag& st = tags[t];
        if (!tag_needed[t]) continue;
        tag_active[t] =
            start < st.active_end && start + kBlockMpx > st.active_begin;
        if (!tag_active[t]) {
          // Past its burst window the tag contributes nothing again: return
          // its block-sized reflected scratch (the ledger charges only
          // concurrently active tags on the strength of this).
          if (!reflected[t].empty()) dsp::cvec().swap(reflected[t]);
          continue;
        }
        // Stage this block's slice of the tag baseband: the compact burst
        // waveform (or the custom baseband) inside its range, zeros outside
        // — bit-identical to the batch engine's padded full-run buffer.
        std::fill(tag_bb.begin(), tag_bb.end(), 0.0F);
        if (st.custom != nullptr) {
          if (start < st.custom->size()) {
            const std::size_t n =
                std::min(kBlockMpx, st.custom->size() - start);
            std::copy(st.custom->begin() + static_cast<std::ptrdiff_t>(start),
                      st.custom->begin() + static_cast<std::ptrdiff_t>(start + n),
                      tag_bb.begin());
          }
        } else if (st.wave_len > 0) {
          const std::size_t lo = std::max(start, st.wave_begin);
          const std::size_t hi =
              std::min(start + kBlockMpx, st.wave_begin + st.wave_len);
          if (lo < hi) {
            std::copy(
                st.wave.begin() + static_cast<std::ptrdiff_t>(lo - st.wave_begin),
                st.wave.begin() + static_cast<std::ptrdiff_t>(hi - st.wave_begin),
                tag_bb.begin() + static_cast<std::ptrdiff_t>(lo - start));
          }
        }
        const dsp::cvec& incident =
            st_rf[static_cast<std::size_t>(sel[seg][t])];
        dsp::cvec& b = reflected[t];
        b = st.subcarrier->process(tag_bb);
        for (std::size_t i = 0; i < incident.size(); ++i) b[i] *= incident[i];
        if (sc.tags[t].fading) {
          if (num_segments > 1 && st.fading_segment != seg) {
            st.fading = std::make_unique<channel::FadingProcess>(
                *sc.tags[t].fading, fm::kRfRate,
                derive_seed(st.fading_seed, seg));
            st.fading_segment = seg;
          }
          st.fading->apply(b);
        }
        const std::size_t lo =
            st.active_begin > start ? (st.active_begin - start) * up_factor : 0;
        const std::size_t hi = st.active_end < start + kBlockMpx
                                   ? (st.active_end - start) * up_factor
                                   : b.size();
        std::fill(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(lo),
                  dsp::cfloat(0.0F, 0.0F));
        std::fill(b.begin() + static_cast<std::ptrdiff_t>(hi), b.end(),
                  dsp::cfloat(0.0F, 0.0F));
      }

      StreamBlock* slot = ring.producer_acquire();
      if (slot == nullptr) break;  // a consumer failed and stopped the ring
      slot->index = block_index;
      slot->iq.resize(sc.receivers.size());
      rf.resize(st_rf[0].size());
      for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
        channel::scale_into(rf, st_rf[0], plan.g_direct[seg][r][0]);
        for (std::size_t s = 1; s < num_stations; ++s) {
          if (!station_needed[s]) continue;
          channel::accumulate_scaled(rf, st_rf[s], plan.g_direct[seg][r][s]);
        }
        for (std::size_t t = 0; t < tags.size(); ++t) {
          if (!tag_active[t]) continue;
          channel::accumulate_scaled(rf, reflected[t], plan.g_back[seg][r][t]);
        }
        noise[r].add_to(rf);
        slot->iq[r] = tuners[r].process(rf);
      }
      ring.producer_publish();
    }
    ring.finish();
  } catch (...) {
    errors[0] = std::current_exception();
    ring.stop();
  }

  for (std::thread& w : workers) w.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // ---- Assembly: batch-identical report structure. -------------------------
  result.receivers.resize(sc.receivers.size());
  std::vector<TagLinkReport> best(sc.tags.size());
  std::vector<char> heard(sc.tags.size(), 0);
  for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
    ReceiverStream& rs = *streams[r];
    ScenarioReceiverResult& rr = result.receivers[r];
    for (const FskCollector& c : rs.fsk) {
      if (!heard[c.tag] || c.link.burst.ber.ber < best[c.tag].burst.ber.ber) {
        best[c.tag] = c.link;
        heard[c.tag] = 1;
      }
      rr.links.push_back(c.link);
    }
    for (const RdsCollector& c : rs.rds) {
      if (!heard[c.tag] || c.link.burst.ber.ber < best[c.tag].burst.ber.ber) {
        best[c.tag] = c.link;
        heard[c.tag] = 1;
      }
      rr.links.push_back(c.link);
    }
    if (rs.station_rds) rr.station_rds = rs.station_rds_report;
  }
  for (std::size_t t = 0; t < sc.tags.size(); ++t) {
    if (!heard[t]) continue;
    result.aggregate_goodput_bps += best[t].goodput_bps;
    result.best_per_tag.push_back(best[t]);
  }
  return result;
}

}  // namespace fmbs::core
