#include "core/sweep_runner.h"

#include <stdexcept>

namespace fmbs::core {

SweepRunner::SweepRunner(SweepConfig config)
    : config_(config),
      pool_(std::make_unique<ThreadPool>(config.threads)) {
  if (config_.base_seed == 0) {
    // 0 is ExperimentPoint::station_seed's "follow seed" sentinel; allowing
    // it here would silently disable the shared station render.
    throw std::invalid_argument("SweepConfig::base_seed must be nonzero");
  }
}

void SweepRunner::apply_seed_policy(ExperimentPoint& point,
                                    std::size_t index) const {
  point.seed = derive_seed(config_.base_seed, index);
  if (config_.share_station_renders && point.station_seed == 0) {
    point.station_seed = config_.base_seed;
  }
}

std::vector<ExperimentPoint> SweepRunner::seed_points(
    std::vector<ExperimentPoint> points) const {
  for (std::size_t i = 0; i < points.size(); ++i) apply_seed_policy(points[i], i);
  return points;
}

std::vector<double> SweepRunner::run(
    const std::vector<ExperimentPoint>& points,
    const std::function<double(const ExperimentPoint&)>& eval) {
  return map(seed_points(points),
             [&](const ExperimentPoint& point) { return eval(point); });
}

std::vector<Series> SweepRunner::run_grid(const std::vector<GridRow>& rows,
                                          const std::vector<double>& xs) {
  struct Cell {
    ExperimentPoint point;
    const GridRow* row;
    double x;
  };
  std::vector<Cell> cells;
  cells.reserve(rows.size() * xs.size());
  for (const GridRow& row : rows) {
    if (!row.make_point || !row.eval) {
      throw std::invalid_argument("run_grid: row needs make_point and eval");
    }
    for (const double x : xs) {
      cells.push_back(Cell{row.make_point(x), &row, x});
      apply_seed_policy(cells.back().point, cells.size() - 1);
    }
  }

  const std::vector<double> values =
      map(cells, [](const Cell& cell) { return cell.row->eval(cell.point, cell.x); });

  std::vector<Series> series;
  series.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    Series s;
    s.label = rows[r].label;
    s.values.assign(values.begin() + static_cast<std::ptrdiff_t>(r * xs.size()),
                    values.begin() + static_cast<std::ptrdiff_t>((r + 1) * xs.size()));
    series.push_back(std::move(s));
  }
  return series;
}

}  // namespace fmbs::core
