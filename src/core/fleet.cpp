#include "core/fleet.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/rng.h"
#include "dsp/math_util.h"
#include "fm/constants.h"
#include "rx/analytic_fsk.h"

namespace fmbs::core {

namespace {

/// Seed stream for per-cluster sub-scene root seeds (disjoint from the
/// per-entity streams scenario.cpp derives from the same scenario seed).
constexpr std::uint64_t kFleetSubsceneStream = 0x6000;

/// Receiver warm-up baked into every sub-scene: the parent run's settle has
/// long elapsed when a mid-run cluster starts, but the freshly instantiated
/// sub-scene receivers still need their own filter/AGC/pilot lead-in.
constexpr double kSubsceneSettleSeconds = 0.08;
/// Demod look-past slack after a cluster's last guard edge (covers the
/// receiver pipeline group delay, like rx::demodulate_burst's window slack).
constexpr double kSubsceneTailSeconds = 0.06;

/// One transmitted burst of the plan, with everything classification needs.
struct BurstInfo {
  std::size_t tag = 0;
  double start = 0.0;   ///< resolved payload start (settle included)
  double burst = 0.0;   ///< payload seconds
  std::size_t seg = 0;  ///< timeline segment of the burst midpoint
  units::Hertz ch[2] = {units::Hertz{0.0},
                        units::Hertz{0.0}};  ///< backscatter channel(s)
  int nch = 0;
  bool rds = false;
  double symbol_seconds = 0.0;
};

/// One temporal+spectral contact of a burst: `other`'s reflection couples
/// into the burst's channel and its on-air window touches the burst's
/// vulnerability window.
struct Contact {
  std::size_t other = 0;  ///< index into the burst table
  tag::Vulnerability verdict = tag::Vulnerability::kClear;
  /// Fraction of the victim's payload the interferer is on the air for —
  /// the duty weight of its power when folded into the victim's SINR.
  double overlap_weight = 0.0;
};

/// A (burst, receiver) pair routed to the PHY, with the index of its
/// placeholder in the flat link list.
struct PhyPair {
  std::size_t burst = 0;
  std::size_t receiver = 0;
  std::size_t link_index = 0;
};

struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::size_t find(std::size_t a) {
    while (parent[a] != a) {
      parent[a] = parent[parent[a]];
      a = parent[a];
    }
    return a;
  }
  /// The smaller root wins, so component representatives — and with them
  /// the cluster ordering and every derived sub-scene seed — are
  /// independent of union order.
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    parent[std::max(a, b)] = std::min(a, b);
  }
};

/// Enumerates, for every burst, the other bursts whose reflections couple
/// into one of its channels (within half a channel spacing — the same
/// coupling rule the carrier-sense oracle uses) and whose on-air window
/// touches its payload. Bursts are bucketed on a half-spacing frequency
/// grid and time-sorted per bucket, so the cost is O(bursts x contacts),
/// not O(bursts^2) — at metro scale almost all pairs share neither
/// frequency nor time.
std::vector<std::vector<Contact>> find_contacts(
    const std::vector<BurstInfo>& bursts) {
  const double half = fm::kChannelSpacingHz / 2.0;
  const double guard = kBurstGuardSeconds;

  struct Entry {
    double start = 0.0;
    double channel = 0.0;
    std::size_t burst = 0;
  };
  // std::map keys the buckets deterministically; entries sort by start so
  // the temporal scan below touches only candidates that can overlap.
  std::map<long long, std::vector<Entry>> bins;
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    for (int c = 0; c < bursts[i].nch; ++c) {
      const long long bin = std::llround(bursts[i].ch[c].raw() / half);
      bins[bin].push_back({bursts[i].start, bursts[i].ch[c].raw(), i});
    }
  }
  std::map<long long, double> bin_max_burst;
  for (auto& [bin, entries] : bins) {
    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
      return a.start < b.start || (a.start == b.start && a.burst < b.burst);
    });
    double longest = 0.0;
    for (const Entry& e : entries) {
      longest = std::max(longest, bursts[e.burst].burst);
    }
    bin_max_burst[bin] = longest;
  }

  std::vector<std::vector<Contact>> contacts(bursts.size());
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    const BurstInfo& b = bursts[i];
    const double pay_lo = b.start;
    const double pay_hi = b.start + b.burst;
    const tag::BurstWindow mine{units::Seconds{b.start},
                                units::Seconds{b.burst},
                                units::Seconds{guard}};
    std::vector<Contact>& out = contacts[i];
    for (int c = 0; c < b.nch; ++c) {
      const long long bin = std::llround(b.ch[c].raw() / half);
      for (long long db = -1; db <= 1; ++db) {
        const auto it = bins.find(bin + db);
        if (it == bins.end()) continue;
        const std::vector<Entry>& entries = it->second;
        // Earliest start that can still reach my payload: an interferer is
        // on the air until start + its burst + guard.
        const double first = pay_lo - bin_max_burst[bin + db] - guard;
        auto e = std::lower_bound(
            entries.begin(), entries.end(), first,
            [](const Entry& a, double t) { return a.start < t; });
        for (; e != entries.end() && e->start < pay_hi + guard; ++e) {
          if (e->burst == i) continue;
          if (std::abs(e->channel - b.ch[c].raw()) >= half) continue;
          const BurstInfo& o = bursts[e->burst];
          const tag::BurstWindow other{units::Seconds{o.start},
                                       units::Seconds{o.burst},
                                       units::Seconds{guard}};
          const tag::Vulnerability v = tag::classify_vulnerability(
              mine, other, units::Seconds{b.symbol_seconds});
          if (v == tag::Vulnerability::kClear) continue;
          const double po = std::min(pay_hi, o.start + o.burst + guard) -
                            std::max(pay_lo, o.start - guard);
          const double w =
              std::clamp(po, 0.0, b.burst) / std::max(b.burst, 1e-12);
          out.push_back({e->burst, v, w});
        }
      }
    }
    // A mirror-sideband (DSB) pair can meet the same interferer on both
    // channels: keep one contact per interferer, worst verdict, largest
    // duty weight.
    std::sort(out.begin(), out.end(), [](const Contact& a, const Contact& b) {
      return a.other < b.other;
    });
    std::size_t n = 0;
    for (std::size_t k = 0; k < out.size(); ++k) {
      if (n > 0 && out[n - 1].other == out[k].other) {
        out[n - 1].verdict = std::max(out[n - 1].verdict, out[k].verdict);
        out[n - 1].overlap_weight =
            std::max(out[n - 1].overlap_weight, out[k].overlap_weight);
      } else {
        out[n++] = out[k];
      }
    }
    out.erase(out.begin() + static_cast<std::ptrdiff_t>(n), out.end());
  }
  return contacts;
}

}  // namespace

const char* to_string(FleetLinkResolution r) {
  switch (r) {
    case FleetLinkResolution::kAnalyticClear:
      return "analytic-clear";
    case FleetLinkResolution::kAnalyticCollision:
      return "analytic-collision";
    case FleetLinkResolution::kPhyCluster:
      return "phy-cluster";
  }
  return "?";
}

FleetResult FleetEngine::run(const Scenario& sc) const {
  for (const ScenarioTag& t : sc.tags) {
    if (!t.custom_baseband.empty()) {
      throw std::invalid_argument(
          "FleetEngine: custom-baseband tag '" + t.name +
          "' has no analytic error model — use ScenarioEngine");
    }
  }

  const ScenarioPlan plan = resolve_scenario_plan(sc);

  FleetResult result;
  result.mac.resize(sc.tags.size());
  for (std::size_t i = 0; i < sc.tags.size(); ++i) {
    const ScenarioTagPlan& tp = plan.tags[i];
    result.mac[i].transmitted = tp.transmitted;
    result.mac[i].deferrals = tp.deferrals;
    result.mac[i].start_seconds = tp.start_seconds;
    result.mac[i].last_sensed_dbm = tp.last_sensed_dbm;
  }

  // ---- Burst table: every transmitted burst, with its channel footprint.
  std::vector<BurstInfo> bursts;
  bursts.reserve(sc.tags.size());
  for (std::size_t i = 0; i < sc.tags.size(); ++i) {
    if (!plan.tags[i].transmitted) continue;
    BurstInfo b;
    b.tag = i;
    b.start = plan.tags[i].start_seconds;
    b.burst = plan.tags[i].burst_seconds;
    b.seg = plan.segment_of_time(b.start + 0.5 * b.burst);
    const double station_off =
        plan.multi ? plan.station_offset[static_cast<std::size_t>(
                         plan.selected_station[b.seg][i])]
                   : 0.0;
    b.nch = tag_backscatter_channels(sc.tags[i], units::Hertz{station_off},
                                    b.ch);
    b.rds = plan.tags[i].rds;
    b.symbol_seconds =
        b.rds ? 1.0 / fm::kRdsBitRateHz
              : 1.0 / tag::FskParams::for_rate(sc.tags[i].rate).symbol_rate;
    bursts.push_back(b);
  }

  const std::vector<std::vector<Contact>> contacts = find_contacts(bursts);

  // ---- Classify and resolve every audible (burst, receiver) link.
  // Links are laid out receiver-major like ScenarioResult, so best-link tie
  // breaking (first receiver wins) matches the signal-level engine.
  const double certain_loss_delta_db =
      (config_.capture_margin - config_.capture_ambiguity_band).raw();
  std::vector<bool> burst_contested(bursts.size(), false);
  std::vector<PhyPair> phy_pairs;
  for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
    const ScenarioReceiver& rx = sc.receivers[r];
    const double noise_watts = receiver_noise_floor(rx).to_watts().raw();
    for (std::size_t bi = 0; bi < bursts.size(); ++bi) {
      const BurstInfo& b = bursts[bi];
      const ScenarioTag& t = sc.tags[b.tag];
      const double station_off =
          plan.multi ? plan.station_offset[static_cast<std::size_t>(
                           plan.selected_station[b.seg][b.tag])]
                     : 0.0;
      if (!tag_audible_at(t, units::Hertz{station_off}, rx.tune_offset)) {
        continue;
      }

      const double p_dbm = plan.rx_power_dbm[b.seg][r][b.tag];

      // Interference budget: co-channel stations (a carrier within half a
      // spacing of the tuned channel jams the tag's whole channel) ...
      double interference_watts = 0.0;
      if (plan.multi) {
        for (std::size_t s = 0; s < sc.stations.size(); ++s) {
          if (std::abs(plan.station_offset[s] - rx.tune_offset.raw()) <
              fm::kChannelSpacingHz / 2.0) {
            interference_watts +=
                station_power_at(sc.stations[s], plan.rx_pos[b.seg][r])
                    .to_watts()
                    .raw();
          }
        }
      } else if (std::abs(rx.tune_offset.raw()) <
                 fm::kChannelSpacingHz / 2.0) {
        interference_watts += dsp::watts_from_dbm(plan.receiver_direct_dbm[r]);
      }

      // ... plus every contacting burst, classified against the capture
      // margin at THIS receiver: captured interferers fold into the SINR,
      // deep payload collisions decide the link analytically, and only the
      // genuinely ambiguous contacts demand waveforms.
      bool certain_loss = false;
      bool contested = false;
      for (const Contact& c : contacts[bi]) {
        const BurstInfo& o = bursts[c.other];
        const double delta = p_dbm - plan.rx_power_dbm[o.seg][r][o.tag];
        if (delta >= config_.capture_margin.raw()) {
          interference_watts +=
              c.overlap_weight *
              dsp::watts_from_dbm(plan.rx_power_dbm[o.seg][r][o.tag]);
          continue;
        }
        if (c.verdict == tag::Vulnerability::kCollision &&
            delta <= certain_loss_delta_db) {
          certain_loss = true;
          continue;
        }
        contested = true;
      }

      FleetLink link;
      link.tag_index = b.tag;
      link.receiver_index = r;
      link.rx_power_dbm = p_dbm;
      link.snr_db = 10.0 * std::log10(dsp::watts_from_dbm(p_dbm) /
                                      (noise_watts + interference_watts));
      link.latency_seconds =
          (b.start - (sc.settle.raw() + t.start.raw())) + b.burst;
      if (certain_loss) {
        // The colliding interferer is too close in power for capture: every
        // packet sees at least a symbol of comparable-power co-channel
        // energy. Chance-level BER, nothing delivered.
        link.resolution = FleetLinkResolution::kAnalyticCollision;
        link.ber = b.rds ? 1.0 : 0.5;
        link.delivered = false;
      } else if (b.rds || contested) {
        link.resolution = FleetLinkResolution::kPhyCluster;
        burst_contested[bi] = true;
        phy_pairs.push_back({bi, r, result.links.size()});
      } else {
        link.resolution = FleetLinkResolution::kAnalyticClear;
        const rx::AnalyticBurstReport rep = rx::analytic_fsk_burst(
            link.snr_db, t.rate, t.num_bits, t.packet_bits,
            t.fading.has_value());
        link.ber = rep.ber;
        link.delivered = rep.packets_ok == rep.packets;
        link.bits_delivered = rep.bits_delivered;
        link.goodput_bps =
            static_cast<double>(rep.bits_delivered) / sc.duration.raw();
      }
      result.links.push_back(link);
    }
  }

  // ---- Contested clusters -> minimal PHY sub-scenes.
  // A cluster is the connected component of a contested burst and its
  // contacts (the interference that must physically exist in its
  // sub-scene); two contested bursts sharing an interferer merge.
  UnionFind uf(bursts.size());
  for (std::size_t bi = 0; bi < bursts.size(); ++bi) {
    if (!burst_contested[bi]) continue;
    for (const Contact& c : contacts[bi]) uf.unite(bi, c.other);
  }
  std::map<std::size_t, std::vector<std::size_t>> clusters;  // root -> members
  for (std::size_t bi = 0; bi < bursts.size(); ++bi) {
    clusters[uf.find(bi)].push_back(bi);
  }

  std::size_t ordinal = 0;
  for (const auto& [root, members] : clusters) {
    // Receivers with a PHY link on some member, and the member pairs to
    // harvest afterwards.
    std::vector<std::size_t> cluster_rx;
    std::vector<const PhyPair*> cluster_pairs;
    for (const PhyPair& p : phy_pairs) {
      if (uf.find(p.burst) != root) continue;
      cluster_pairs.push_back(&p);
      cluster_rx.push_back(p.receiver);
    }
    if (cluster_pairs.empty()) continue;  // pure interferer component
    std::sort(cluster_rx.begin(), cluster_rx.end());
    cluster_rx.erase(std::unique(cluster_rx.begin(), cluster_rx.end()),
                     cluster_rx.end());

    double window_begin = bursts[members.front()].start;
    double window_end = 0.0;
    for (std::size_t m : members) {
      window_begin = std::min(window_begin, bursts[m].start);
      window_end = std::max(window_end, bursts[m].start + bursts[m].burst);
    }
    window_begin = std::max(0.0, window_begin - kBurstGuardSeconds);
    window_end += kBurstGuardSeconds + kSubsceneTailSeconds;
    const double quantum = std::max(config_.subscene_quantum.raw(), 1e-3);
    const double duration =
        std::ceil((window_end - window_begin) / quantum) * quantum;
    const std::size_t segm =
        plan.segment_of_time(0.5 * (window_begin + window_end));

    Scenario sub;
    sub.name = sc.name + "#cluster" + std::to_string(ordinal);
    sub.seed = derive_seed(sc.seed, kFleetSubsceneStream + ordinal);
    sub.settle = units::Seconds{kSubsceneSettleSeconds};
    sub.duration = units::Seconds{duration};
    sub.station = sc.station;
    sub.stations = sc.stations;
    for (std::size_t r : cluster_rx) {
      ScenarioReceiver rr = sc.receivers[r];
      rr.position = plan.rx_pos[segm][r];
      rr.waypoints.clear();
      rr.noise_seed = derive_seed(plan.receiver_noise_seed[r], ordinal);
      // Pin the legacy NaN policy's outcome: the sub-scene sees only a
      // subset of tags, so re-deriving "strongest tag's ambient" could
      // drift from the parent scene.
      if (!plan.multi) {
        rr.direct_power = units::Dbm{plan.receiver_direct_dbm[r]};
      }
      sub.receivers.push_back(std::move(rr));
    }
    for (std::size_t m : members) {
      const BurstInfo& b = bursts[m];
      ScenarioTag tt = sc.tags[b.tag];
      // The MAC already resolved: replay the burst at its resolved start
      // (relative to the cluster window) under plain ALOHA.
      tt.start = units::Seconds{b.start - window_begin};
      tt.mac = tag::MacConfig{};
      tt.position = plan.tag_pos[b.seg][b.tag];
      tt.waypoints.clear();
      if (plan.multi) {
        tt.station_index = plan.selected_station[b.seg][b.tag];
      }
      tt.seed = plan.tags[b.tag].content_seed;
      if (tt.fading) tt.fading_seed = plan.tags[b.tag].fading_seed;
      sub.tags.push_back(std::move(tt));
    }

    ScenarioEngineConfig phy_config = config_.phy;
    phy_config.keep_captures = false;
    const ScenarioResult sub_result = ScenarioEngine(phy_config).run(sub);

    result.stats.phy_clusters += 1;
    result.stats.phy_tags_rendered += members.size();
    result.stats.phy_subscene_seconds += kSubsceneSettleSeconds + duration;

    for (const PhyPair* p : cluster_pairs) {
      const auto sub_tag = static_cast<std::size_t>(
          std::lower_bound(members.begin(), members.end(), p->burst) -
          members.begin());
      const auto sub_rx = static_cast<std::size_t>(
          std::lower_bound(cluster_rx.begin(), cluster_rx.end(),
                           p->receiver) -
          cluster_rx.begin());
      FleetLink& link = result.links[p->link_index];
      for (const TagLinkReport& l : sub_result.receivers[sub_rx].links) {
        if (l.tag_index != sub_tag) continue;
        link.ber = l.burst.ber.ber;
        link.bits_delivered = l.burst.bits_delivered;
        link.goodput_bps = static_cast<double>(l.burst.bits_delivered) /
                           sc.duration.raw();
        link.delivered =
            l.rds ? (l.rds->synced && l.rds->bler == 0.0)
                  : (l.burst.packets > 0 &&
                     l.burst.packets_ok == l.burst.packets);
        break;
      }
    }
    ++ordinal;
  }

  // ---- Aggregate, mirroring ScenarioEngine's best-link rule.
  result.stats.links_total = result.links.size();
  for (const FleetLink& link : result.links) {
    switch (link.resolution) {
      case FleetLinkResolution::kAnalyticClear:
        ++result.stats.analytic_clear;
        break;
      case FleetLinkResolution::kAnalyticCollision:
        ++result.stats.analytic_collision;
        break;
      case FleetLinkResolution::kPhyCluster:
        ++result.stats.phy_links;
        break;
    }
  }
  std::vector<std::ptrdiff_t> best_of_tag(sc.tags.size(), -1);
  for (std::size_t k = 0; k < result.links.size(); ++k) {
    const FleetLink& link = result.links[k];
    std::ptrdiff_t& best = best_of_tag[link.tag_index];
    if (best < 0 || link.ber < result.links[static_cast<std::size_t>(best)].ber) {
      best = static_cast<std::ptrdiff_t>(k);
    }
  }
  double latency_sum = 0.0;
  std::size_t latency_count = 0;
  for (std::size_t i = 0; i < sc.tags.size(); ++i) {
    if (best_of_tag[i] < 0) continue;
    const FleetLink& link =
        result.links[static_cast<std::size_t>(best_of_tag[i])];
    result.best_per_tag.push_back(link);
    result.aggregate_goodput_bps += link.goodput_bps;
    if (link.delivered) {
      latency_sum += link.latency_seconds;
      ++latency_count;
    }
  }
  if (latency_count > 0) {
    result.mean_delivery_latency_seconds =
        latency_sum / static_cast<double>(latency_count);
  }
  return result;
}

std::vector<FleetResult> run_fleet_sweep(SweepRunner& runner,
                                         const FleetEngine& engine,
                                         std::vector<Scenario> scenarios) {
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    apply_scenario_seed_policy(scenarios[i], i, runner.config());
  }
  return runner.map(scenarios,
                    [&engine](const Scenario& sc) { return engine.run(sc); });
}

}  // namespace fmbs::core
