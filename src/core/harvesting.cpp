#include "core/harvesting.h"

#include <algorithm>
#include <stdexcept>

#include "dsp/math_util.h"

namespace fmbs::core {

DutyCycleResult sustainable_duty_cycle(const HarvestConfig& config,
                                       double tag_power_uw,
                                       double sleep_power_uw) {
  if (tag_power_uw <= 0.0) {
    throw std::invalid_argument("sustainable_duty_cycle: bad tag power");
  }
  DutyCycleResult out;
  const double rf_in_uw = config.rf_power.to_watts().raw() * 1e6;
  out.harvested_uw = rf_in_uw * config.rf_efficiency +
                     config.solar_area_cm2 * config.solar_irradiance_uw_per_cm2 *
                         config.solar_efficiency;

  // harvested = d * tag + (1-d) * sleep  ->  d = (h - sleep) / (tag - sleep)
  if (out.harvested_uw <= sleep_power_uw) {
    out.sustainable_duty_cycle = 0.0;
  } else if (tag_power_uw <= sleep_power_uw) {
    out.sustainable_duty_cycle = 1.0;
  } else {
    out.sustainable_duty_cycle = std::min(
        1.0, (out.harvested_uw - sleep_power_uw) / (tag_power_uw - sleep_power_uw));
  }
  out.effective_bps_100 = 100.0 * out.sustainable_duty_cycle;
  out.effective_bps_3200 = 3200.0 * out.sustainable_duty_cycle;
  return out;
}

}  // namespace fmbs::core
