// SweepRunner: the parallel, cached execution engine behind every figure
// bench. A paper figure is a grid of ExperimentPoints; SweepRunner
//
//   * executes the grid across a worker thread pool (core/thread_pool.h),
//   * derives each point's RNG seed from (base_seed, grid index) via
//     core/rng.h — never from scheduling — so results are bit-identical at
//     any thread count,
//   * pins every point's station_seed to the sweep's base seed, so the
//     fm::StationCache shares one read-only station render across all
//     points of a sweep instead of re-synthesizing it per point.
//
// Typical figure bench:
//
//   core::SweepRunner runner;
//   std::vector<core::GridRow> rows;
//   for (double p : powers_dbm)
//     rows.push_back({label(p),
//                     [p](double d) { /* point at power p, distance d */ },
//                     [](const core::ExperimentPoint& pt, double) {
//                       return core::run_overlay_ber(pt, rate, bits).ber;
//                     }});
//   const auto series = runner.run_grid(rows, distances_ft);
//   core::print_table(std::cout, title, "dist_ft", distances_ft, series);
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "core/experiment.h"
#include "core/rng.h"
#include "core/thread_pool.h"

namespace fmbs::core {

struct SweepConfig {
  /// Worker threads; 0 = one per hardware thread.
  std::size_t threads = 0;
  /// Root of per-point seed derivation (and the shared station seed).
  std::uint64_t base_seed = 1;
  /// Pin station_seed to base_seed on every point so one cached station
  /// render is shared across the sweep. Disable to give each point its own
  /// station content (seeded from its derived per-point seed).
  bool share_station_renders = true;
};

/// One row of a figure grid: the label print_table shows, a factory that
/// builds the row's ExperimentPoint for an x value, and the measurement to
/// run at that point (eval receives the x value again for procedures whose
/// knob is not an ExperimentPoint field, e.g. the Fig. 6 tone frequency).
struct GridRow {
  std::string label;
  std::function<ExperimentPoint(double x)> make_point;
  std::function<double(const ExperimentPoint& point, double x)> eval;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig config = {});

  const SweepConfig& config() const { return config_; }
  std::size_t threads() const { return pool_->size(); }

  /// Ordered parallel map: out[i] == fn(items[i]) regardless of thread
  /// count. All randomness must come from the item itself.
  template <typename In, typename Fn>
  auto map(const std::vector<In>& items, Fn&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const In&>>> {
    using Out = std::decay_t<std::invoke_result_t<Fn&, const In&>>;
    // vector<bool> bit-packs: concurrent out[i] writes would race. Return
    // int/char from the callback instead.
    static_assert(!std::is_same_v<Out, bool>,
                  "SweepRunner::map cannot return bool (vector<bool> is not "
                  "thread-safe element-wise)");
    std::vector<Out> out(items.size());
    pool_->parallel_for(items.size(),
                        [&](std::size_t i) { out[i] = fn(items[i]); });
    return out;
  }

  /// Applies the sweep's seed policy: point i gets seed derive_seed(base, i)
  /// and (when sharing) station_seed = base_seed. Scheduling-independent by
  /// construction. Points that pre-set station_seed keep it.
  std::vector<ExperimentPoint> seed_points(
      std::vector<ExperimentPoint> points) const;

  /// Evaluates every point with `eval` after applying the seed policy.
  std::vector<double> run(
      const std::vector<ExperimentPoint>& points,
      const std::function<double(const ExperimentPoint&)>& eval);

  /// Full figure grid: one task per (row, x) cell — the whole grid is
  /// flattened into a single work list so narrow rows still fill the pool —
  /// returning one print_table-ready Series per row.
  std::vector<Series> run_grid(const std::vector<GridRow>& rows,
                               const std::vector<double>& xs);

 private:
  void apply_seed_policy(ExperimentPoint& point, std::size_t index) const;

  SweepConfig config_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace fmbs::core
