// Power harvesting and duty cycling — paper section 8: "We can explore
// powering these devices by harvesting from ambient RF signals such as FM or
// TV or using solar energy ... the power requirements could further be
// reduced by duty cycling transmissions." Analytic energy model: harvested
// input vs the 11.07 uW tag, yielding the sustainable duty cycle and
// effective data rate.
#pragma once

#include "core/units.h"

namespace fmbs::core {

/// Harvesting source model.
struct HarvestConfig {
  /// Ambient RF power available at the antenna — e.g. -20 dBm near a
  /// strong FM station.
  units::Dbm rf_power{-20.0};
  /// RF-harvester conversion efficiency at that input level.
  double rf_efficiency = 0.2;
  /// Solar cell area (cm^2) and irradiance (uW/cm^2; ~100 for indoor,
  /// 10,000+ for direct sun). Zero disables solar.
  double solar_area_cm2 = 0.0;
  double solar_irradiance_uw_per_cm2 = 0.0;
  double solar_efficiency = 0.15;
};

/// Duty-cycling outcome.
struct DutyCycleResult {
  double harvested_uw = 0.0;
  double sustainable_duty_cycle = 0.0;  // fraction of time transmitting
  double effective_bps_100 = 0.0;       // at the paper's 100 bps
  double effective_bps_3200 = 0.0;      // at 3.2 kbps
};

/// Computes the duty cycle a tag drawing `tag_power_uw` (11.07 by default)
/// can sustain from the harvest, plus sleep overhead `sleep_power_uw`.
DutyCycleResult sustainable_duty_cycle(const HarvestConfig& config,
                                       double tag_power_uw = 11.07,
                                       double sleep_power_uw = 0.1);

}  // namespace fmbs::core
