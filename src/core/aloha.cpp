#include "core/aloha.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace fmbs::core {

AlohaResult simulate_aloha(const AlohaConfig& config) {
  const double frame_seconds = config.frame.raw();
  const double duration_seconds = config.duration.raw();
  if (config.num_tags == 0 || frame_seconds <= 0.0 ||
      duration_seconds <= 0.0 || config.num_channels == 0) {
    throw std::invalid_argument("simulate_aloha: bad parameters");
  }
  std::mt19937_64 rng(config.seed);
  std::exponential_distribution<double> next_gap(config.per_tag_rate.raw());

  struct Tx {
    double start;
    std::size_t channel;
  };
  std::vector<Tx> transmissions;
  for (std::size_t tag = 0; tag < config.num_tags; ++tag) {
    const std::size_t channel = tag % config.num_channels;
    double t = next_gap(rng);
    while (t < duration_seconds) {
      double start = t;
      if (config.slotted) {
        start = std::ceil(start / frame_seconds) * frame_seconds;
      }
      transmissions.push_back({start, channel});
      t += next_gap(rng);
    }
  }
  std::sort(transmissions.begin(), transmissions.end(),
            [](const Tx& a, const Tx& b) { return a.start < b.start; });

  AlohaResult result;
  result.attempts = transmissions.size();
  // Slotted starts are k * frame in floating point, so the gap
  // between adjacent slots can round to just under frame_seconds (0.08 is
  // not binary-representable); without the epsilon the scan would count
  // adjacent slots as collisions and slotted success would collapse toward
  // e^{-3G} instead of e^{-G}.
  const double vulnerable = frame_seconds * (1.0 - 1e-9);
  for (std::size_t i = 0; i < transmissions.size(); ++i) {
    bool collided = false;
    // Conflicts only within the same channel and within +-frame time.
    for (std::size_t j = i; j-- > 0;) {
      if (transmissions[i].start - transmissions[j].start >= vulnerable)
        break;
      if (transmissions[j].channel == transmissions[i].channel) {
        collided = true;
        break;
      }
    }
    if (!collided) {
      for (std::size_t j = i + 1; j < transmissions.size(); ++j) {
        if (transmissions[j].start - transmissions[i].start >= vulnerable)
          break;
        if (transmissions[j].channel == transmissions[i].channel) {
          collided = true;
          break;
        }
      }
    }
    if (!collided) ++result.successes;
  }

  const double frames = duration_seconds / frame_seconds;
  result.throughput = static_cast<double>(result.successes) /
                      (frames * static_cast<double>(config.num_channels));
  result.success_probability =
      result.attempts > 0
          ? static_cast<double>(result.successes) /
                static_cast<double>(result.attempts)
          : 0.0;
  result.offered_load = static_cast<double>(result.attempts) /
                        (frames * static_cast<double>(config.num_channels));
  return result;
}

double aloha_theoretical_throughput(double offered_load, bool slotted) {
  return slotted ? offered_load * std::exp(-offered_load)
                 : offered_load * std::exp(-2.0 * offered_load);
}

}  // namespace fmbs::core
