#include "core/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "audio/tone.h"
#include "channel/awgn.h"
#include "channel/superpose.h"
#include "channel/units.h"
#include "dsp/fir.h"
#include "dsp/math_util.h"
#include "dsp/nco.h"
#include "fm/station_cache.h"
#include "rx/tuner.h"
#include "tag/baseband.h"

namespace fmbs::core {

namespace {

constexpr std::size_t kBlockMpx = 24000;  // 0.1 s at 240 kHz, as in simulate()

/// derive_seed index streams so tag content, tag fading, receiver noise and
/// scene-station content are mutually independent processes per entity.
constexpr std::uint64_t kTagContentStream = 0x1000;
constexpr std::uint64_t kTagFadingStream = 0x2000;
constexpr std::uint64_t kReceiverNoiseStream = 0x3000;
constexpr std::uint64_t kStationSeedStream = 0x4000;

double pair_distance_m(const ScenarioTag& tag, const ScenarioReceiver& rx) {
  if (!std::isnan(tag.distance_override_feet)) {
    return channel::meters_from_feet(tag.distance_override_feet);
  }
  // Coincident positions (both entities left at the origin) degrade to the
  // near-field bound inside friis_path_loss_db; just keep the value positive.
  return std::max(1e-3, std::hypot(tag.position.x_m - rx.position.x_m,
                                   tag.position.y_m - rx.position.y_m));
}

double receiver_noise_dbm(const ScenarioReceiver& rx) {
  if (!std::isnan(rx.noise_dbm_200khz)) return rx.noise_dbm_200khz;
  return rx.kind == ReceiverKind::kCar
             ? channel::ReceiverNoise::kCarDbmPer200kHz
             : channel::ReceiverNoise::kPhoneDbmPer200kHz;
}

double receiver_antenna_gain_db(const ScenarioReceiver& rx) {
  if (!std::isnan(rx.link.rx_antenna_gain_db)) return rx.link.rx_antenna_gain_db;
  return rx.kind == ReceiverKind::kCar
             ? tag::car_whip_antenna().effective_gain_db()
             : tag::headphone_antenna().effective_gain_db();
}

/// Per-tag rendering state for one engine run.
struct TagState {
  dsp::rvec baseband;           // FM_back at the MPX rate, padded
  std::size_t active_begin = 0;  // switch-on window, MPX samples
  std::size_t active_end = 0;
  std::vector<std::uint8_t> bits;  // empty for custom-baseband tags
  double burst_start_seconds = 0.0;
  std::unique_ptr<tag::SubcarrierGenerator> subcarrier;
  std::unique_ptr<channel::FadingProcess> fading;
};

}  // namespace

double station_power_at(const ScenarioStation& station, const ScenePosition& at) {
  if (!station.position) return station.power_dbm;  // far field: uniform
  const double d_origin =
      std::max(1e-3, std::hypot(station.position->x_m, station.position->y_m));
  const double d_at = std::max(1e-3, std::hypot(station.position->x_m - at.x_m,
                                                station.position->y_m - at.y_m));
  // power_dbm is referenced at the scene origin; scale with free-space
  // distance from the transmitter.
  return station.power_dbm + 20.0 * std::log10(d_origin / d_at);
}

bool tag_audible_at(const ScenarioTag& tag, double station_offset_hz,
                    double tune_offset_hz) {
  constexpr double kTol = 1.0;  // Hz; assignments come from shared constants
  if (tag.subcarrier.mode == tag::SubcarrierMode::kSingleSideband) {
    return std::abs(station_offset_hz + tag.subcarrier.shift_hz -
                    tune_offset_hz) < kTol;
  }
  // Real square switches serve both signed copies of |f_back| around their
  // station's carrier; a receiver parked on the carrier itself hears the
  // station program, not tag data.
  const double mag = std::abs(tag.subcarrier.shift_hz);
  const bool on_channel =
      std::abs(station_offset_hz + mag - tune_offset_hz) < kTol ||
      std::abs(station_offset_hz - mag - tune_offset_hz) < kTol;
  return on_channel && std::abs(tune_offset_hz - station_offset_hz) >= kTol;
}

ScenarioReceiver phone_listening_to(const tag::SubcarrierConfig& subcarrier) {
  ScenarioReceiver rx;
  rx.kind = ReceiverKind::kPhone;
  rx.tune_offset_hz = subcarrier.shift_hz;
  return rx;
}

ScenarioReceiver car_listening_to(const tag::SubcarrierConfig& subcarrier) {
  ScenarioReceiver rx;
  rx.kind = ReceiverKind::kCar;
  rx.tune_offset_hz = subcarrier.shift_hz;
  rx.stereo_decoder.force_mono = true;  // car stereo used as plain mono
  // Car ranges run near the ground where the two-ray d^4 falloff dominates
  // (see make_system's car branch).
  rx.link.use_two_ray = true;
  rx.link.tag_height_m = 1.52;
  rx.link.rx_height_m = 1.5;
  return rx;
}

Scenario scenario_from_system(const SystemConfig& config,
                              const dsp::rvec& tag_baseband,
                              double duration_seconds) {
  Scenario sc;
  sc.name = "legacy-bridge";
  sc.station = config.station;
  sc.settle_seconds = 0.0;
  sc.duration_seconds = duration_seconds;
  sc.seed = config.scene.noise_seed;

  ScenarioTag t;
  t.name = "tag";
  t.subcarrier = config.tag.subcarrier;
  t.antenna = config.tag.antenna;
  // An empty legacy baseband means "unmodulated always-on switch" (the
  // engine zero-pads to the scene length); keep one explicit zero sample so
  // the engine does not mistake it for an FSK payload tag.
  t.custom_baseband = tag_baseband.empty() ? dsp::rvec(1, 0.0F) : tag_baseband;
  t.tag_power_dbm = config.scene.tag_power_dbm;
  t.distance_override_feet = config.scene.tag_rx_distance_feet;
  t.fading = config.scene.fading;
  t.fading_seed = config.scene.noise_seed + 1;  // simulate()'s fading stream
  sc.tags.push_back(std::move(t));

  ScenarioReceiver rx;
  rx.name = "backscatter-rx";
  rx.kind = config.receiver;
  rx.tune_offset_hz = config.tag.subcarrier.shift_hz;
  rx.direct_power_dbm = config.scene.direct_power_dbm;
  rx.noise_dbm_200khz = config.scene.rx_noise_dbm_200khz;
  rx.link = config.scene.link;
  rx.noise_seed = config.scene.noise_seed;
  rx.phone = config.phone;
  rx.cabin = config.cabin;
  rx.stereo_decoder = config.stereo_decoder;
  sc.receivers.push_back(rx);

  if (config.capture_ambient_receiver) {
    ScenarioReceiver amb = rx;
    amb.name = "ambient-rx";
    amb.tune_offset_hz = 0.0;
    amb.noise_seed = config.scene.noise_seed + 0x9e3779b9ULL;  // simulate()'s
    sc.receivers.push_back(std::move(amb));
  }
  return sc;
}

std::vector<ScenarioStation> stations_from_survey(
    const survey::CitySpectrum& city, int listen_channel, double max_offset_hz,
    std::uint64_t seed) {
  if (listen_channel < 0 || listen_channel >= fm::kNumChannels) {
    throw std::invalid_argument("stations_from_survey: bad listen channel");
  }
  const double cap = std::min(max_offset_hz, kMaxStationOffsetHz);
  // Genres cycle deterministically per channel (never silence: a detectable
  // station is on the air).
  static constexpr audio::ProgramGenre kGenres[] = {
      audio::ProgramGenre::kNews, audio::ProgramGenre::kPop,
      audio::ProgramGenre::kMixed, audio::ProgramGenre::kRock};
  std::vector<ScenarioStation> out;
  for (std::size_t i = 0; i < city.detectable_channels.size(); ++i) {
    const int ch = city.detectable_channels[i];
    const double offset =
        (ch - listen_channel) * fm::kChannelSpacingHz;
    if (std::abs(offset) > cap + 1e-6) continue;
    ScenarioStation st;
    char freq[32];
    std::snprintf(freq, sizeof(freq), "%.1fMHz",
                  survey::channel_frequency_hz(ch) / 1e6);
    st.name = city.name + "@" + freq;
    st.config.program.genre = kGenres[static_cast<std::size_t>(ch) % 4];
    st.config.program.stereo = ch % 3 != 0;  // a mix of mono and stereo
    st.config.seed = derive_seed(seed, static_cast<std::uint64_t>(ch));
    st.offset_hz = offset;
    st.power_dbm = city.detectable_power_dbm[i];
    out.push_back(std::move(st));
  }
  if (out.empty()) {
    // An empty vector would silently flip the Scenario into legacy
    // single-station mode (the default-constructed sc.station) — surface
    // the misconfiguration instead.
    throw std::invalid_argument(
        "stations_from_survey: no detectable station of " + city.name +
        " falls within the scene around the listen channel");
  }
  std::sort(out.begin(), out.end(),
            [](const ScenarioStation& a, const ScenarioStation& b) {
              const double am = std::abs(a.offset_hz);
              const double bm = std::abs(b.offset_hz);
              return am != bm ? am < bm : a.offset_hz < b.offset_hz;
            });
  return out;
}

ScenarioResult ScenarioEngine::run(const Scenario& sc) const {
  if (sc.duration_seconds <= 0.0) {
    throw std::invalid_argument("ScenarioEngine: duration must be > 0");
  }
  if (sc.receivers.empty()) {
    throw std::invalid_argument("ScenarioEngine: scenario needs a receiver");
  }
  const double total_seconds = sc.settle_seconds + sc.duration_seconds;
  // Scene station table. An empty `stations` means the legacy single-station
  // scene: sc.station at the scene center with the legacy per-tag/receiver
  // power semantics (bit-identical to the pre-multi-station engine).
  const bool multi = !sc.stations.empty();
  const std::size_t num_stations = multi ? sc.stations.size() : 1;
  std::vector<double> station_offset(num_stations, 0.0);
  if (multi) {
    for (std::size_t s = 0; s < num_stations; ++s) {
      station_offset[s] = sc.stations[s].offset_hz;
      if (std::abs(station_offset[s]) > kMaxStationOffsetHz + 1e-6) {
        throw std::invalid_argument(
            "ScenarioEngine: station \"" + sc.stations[s].name +
            "\" carrier offset falls outside the 2.4 MHz scene");
      }
    }
  }

  ScenarioResult result;
  // Pin every scene render for the duration of the run: a scene wider than
  // the cache capacity must not thrash/evict its own stations mid-run.
  fm::StationCache::SceneScope scope(fm::StationCache::instance());
  result.station_renders.reserve(num_stations);
  for (std::size_t s = 0; s < num_stations; ++s) {
    const fm::StationConfig& config = multi ? sc.stations[s].config : sc.station;
    result.station_renders.push_back(scope.render(config, total_seconds));
  }
  result.station = result.station_renders[0];
  const std::size_t station_len = result.station->iq.size();
  const std::size_t padded =
      (station_len + kBlockMpx - 1) / kBlockMpx * kBlockMpx;
  std::vector<dsp::cvec> station_iq(num_stations);
  for (std::size_t s = 0; s < num_stations; ++s) {
    if (result.station_renders[s]->iq.size() != station_len) {
      throw std::logic_error("ScenarioEngine: station render length mismatch");
    }
    station_iq[s] = result.station_renders[s]->iq;
    station_iq[s].resize(padded, dsp::cfloat(1.0F, 0.0F));
  }

  // ---- Per-tag station selection and ambient power. ------------------------
  std::vector<int> sel(sc.tags.size(), 0);
  std::vector<double> tag_ambient_dbm(sc.tags.size(), 0.0);
  for (std::size_t t = 0; t < sc.tags.size(); ++t) {
    const ScenarioTag& tcfg = sc.tags[t];
    if (!multi) {
      tag_ambient_dbm[t] = tcfg.tag_power_dbm;
      continue;
    }
    int chosen = tcfg.station_index;
    if (chosen >= static_cast<int>(num_stations)) {
      throw std::invalid_argument("ScenarioEngine: tag \"" + tcfg.name +
                                  "\" selects a station outside the scene");
    }
    if (chosen < 0) {
      // The paper's posters backscatter whichever ambient signal is
      // strongest at their location.
      double best = -1e18;
      for (std::size_t s = 0; s < num_stations; ++s) {
        const double p = station_power_at(sc.stations[s], tcfg.position);
        if (p > best) {
          best = p;
          chosen = static_cast<int>(s);
        }
      }
    }
    sel[t] = chosen;
    tag_ambient_dbm[t] =
        station_power_at(sc.stations[static_cast<std::size_t>(chosen)],
                         tcfg.position);
  }
  result.selected_station = sel;

  // ---- Per-tag state: baseband, burst window, generators. ------------------
  std::vector<TagState> tags(sc.tags.size());
  for (std::size_t i = 0; i < sc.tags.size(); ++i) {
    const ScenarioTag& t = sc.tags[i];
    TagState& st = tags[i];
    st.subcarrier = std::make_unique<tag::SubcarrierGenerator>(t.subcarrier);
    if (t.fading) {
      const std::uint64_t fseed =
          t.fading_seed ? *t.fading_seed : derive_seed(sc.seed, kTagFadingStream + i);
      st.fading =
          std::make_unique<channel::FadingProcess>(*t.fading, fm::kRfRate, fseed);
    }
    if (!t.custom_baseband.empty()) {
      st.baseband = t.custom_baseband;
      st.baseband.resize(padded, 0.0F);
      st.active_begin = 0;
      st.active_end = padded;
      continue;
    }
    if (t.num_bits == 0) {
      throw std::invalid_argument("ScenarioEngine: tag \"" + t.name +
                                  "\" has no payload");
    }
    const std::uint64_t cseed =
        t.seed ? *t.seed : derive_seed(sc.seed, kTagContentStream + i);
    st.bits = tag::random_bits(t.num_bits, cseed);
    const audio::MonoBuffer wave =
        tag::modulate_fsk(st.bits, t.rate, fm::kAudioRate);
    st.burst_start_seconds = sc.settle_seconds + t.start_seconds;
    if (t.start_seconds < 0.0 ||
        st.burst_start_seconds + wave.duration_seconds() >
            total_seconds + 1e-9) {
      throw std::invalid_argument("ScenarioEngine: tag \"" + t.name +
                                  "\" burst does not fit the scenario");
    }
    const audio::MonoBuffer lead_in =
        audio::make_silence(st.burst_start_seconds, fm::kAudioRate);
    st.baseband = tag::compose_overlay_baseband(audio::concat(lead_in, wave),
                                                t.level, fm::kMpxRate);
    st.baseband.resize(padded, 0.0F);
    st.active_begin = static_cast<std::size_t>(
        std::max(0.0, st.burst_start_seconds - kBurstGuardSeconds) * fm::kMpxRate);
    st.active_end = std::min(
        padded, static_cast<std::size_t>(
                    (st.burst_start_seconds + wave.duration_seconds() +
                     kBurstGuardSeconds) *
                    fm::kMpxRate));
  }

  // ---- Per-pair link budgets. ----------------------------------------------
  // g_back[r][t]: reflected-wave amplitude of tag t at receiver r;
  // g_direct[r][s]: unshifted amplitude of station s at receiver r.
  std::vector<double> direct_dbm(sc.receivers.size());
  if (!multi) {
    for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
      double p = sc.receivers[r].direct_power_dbm;
      if (std::isnan(p)) {
        p = -1e9;
        for (const ScenarioTag& t : sc.tags) p = std::max(p, t.tag_power_dbm);
        if (sc.tags.empty()) p = -30.0;
      }
      direct_dbm[r] = p;
    }
  }
  std::vector<std::vector<float>> g_direct(
      sc.receivers.size(), std::vector<float>(num_stations, 0.0F));
  std::vector<std::vector<float>> g_back(
      sc.receivers.size(), std::vector<float>(sc.tags.size(), 0.0F));
  std::vector<std::vector<double>> rx_power_dbm(
      sc.receivers.size(), std::vector<double>(sc.tags.size(), 0.0));
  for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
    const ScenarioReceiver& rx = sc.receivers[r];
    channel::LinkBudgetConfig link = rx.link;
    link.rx_antenna_gain_db = receiver_antenna_gain_db(rx);
    if (multi) {
      for (std::size_t s = 0; s < num_stations; ++s) {
        g_direct[r][s] = static_cast<float>(std::sqrt(dsp::watts_from_dbm(
            station_power_at(sc.stations[s], rx.position))));
      }
      for (std::size_t t = 0; t < sc.tags.size(); ++t) {
        link.tag_antenna_gain_db = sc.tags[t].antenna.effective_gain_db();
        const channel::LinkBudget budget = channel::compute_link_budget(
            tag_ambient_dbm[t], tag_ambient_dbm[t],
            pair_distance_m(sc.tags[t], rx), link);
        g_back[r][t] = static_cast<float>(budget.backscatter_amplitude);
        // One sideband of the square wave carries (2/pi)^2 of the reflection.
        rx_power_dbm[r][t] = dsp::dbm_from_watts(
            budget.backscatter_amplitude * budget.backscatter_amplitude *
            (2.0 / dsp::kPi) * (2.0 / dsp::kPi));
      }
      continue;
    }
    if (sc.tags.empty()) {
      g_direct[r][0] =
          static_cast<float>(std::sqrt(dsp::watts_from_dbm(direct_dbm[r])));
      continue;
    }
    for (std::size_t t = 0; t < sc.tags.size(); ++t) {
      link.tag_antenna_gain_db = sc.tags[t].antenna.effective_gain_db();
      const channel::LinkBudget budget = channel::compute_link_budget(
          sc.tags[t].tag_power_dbm, direct_dbm[r],
          pair_distance_m(sc.tags[t], rx), link);
      g_back[r][t] = static_cast<float>(budget.backscatter_amplitude);
      if (t == 0) g_direct[r][0] = static_cast<float>(budget.direct_amplitude);
      // One sideband of the square wave carries (2/pi)^2 of the reflection.
      rx_power_dbm[r][t] = dsp::dbm_from_watts(
          budget.backscatter_amplitude * budget.backscatter_amplitude *
          (2.0 / dsp::kPi) * (2.0 / dsp::kPi));
    }
  }

  // ---- Per-station and per-receiver front ends. ----------------------------
  const auto up_factor = static_cast<std::size_t>(fm::kMpxToRfFactor);
  const std::vector<float> up_taps = dsp::fir_design_lowpass(
      (16 * up_factor) | 1U, 0.45 / static_cast<double>(up_factor));
  std::vector<dsp::FirInterpolator<dsp::cfloat>> upsamplers;
  upsamplers.reserve(num_stations);
  std::vector<std::optional<dsp::Mixer>> mixers(num_stations);
  for (std::size_t s = 0; s < num_stations; ++s) {
    upsamplers.emplace_back(up_taps, up_factor);
    if (station_offset[s] != 0.0) {
      mixers[s].emplace(station_offset[s], fm::kRfRate);
    }
  }
  std::vector<channel::AwgnSource> noise;
  std::vector<rx::Tuner> tuners;
  noise.reserve(sc.receivers.size());
  tuners.reserve(sc.receivers.size());
  std::vector<dsp::cvec> iq(sc.receivers.size());
  for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
    const ScenarioReceiver& rx = sc.receivers[r];
    const std::uint64_t nseed = rx.noise_seed
                                    ? *rx.noise_seed
                                    : derive_seed(sc.seed, kReceiverNoiseStream + r);
    noise.emplace_back(receiver_noise_dbm(rx), fm::kChannelSpacingHz, fm::kRfRate,
                       nseed);
    rx::TunerConfig tuner_cfg;
    tuner_cfg.offset_hz = rx.tune_offset_hz;
    tuners.emplace_back(tuner_cfg);
    iq[r].reserve(padded);
  }

  // ---- The shared RF scene, block by block. --------------------------------
  std::vector<dsp::cvec> st_rf(num_stations);
  std::vector<dsp::cvec> reflected(sc.tags.size());
  std::vector<char> tag_active(sc.tags.size(), 0);
  dsp::cvec rf;
  for (std::size_t start = 0; start < padded; start += kBlockMpx) {
    for (std::size_t s = 0; s < num_stations; ++s) {
      const std::span<const dsp::cfloat> st_block(station_iq[s].data() + start,
                                                  kBlockMpx);
      st_rf[s] = upsamplers[s].process(st_block);
      if (mixers[s]) mixers[s]->process_inplace(st_rf[s]);
    }

    for (std::size_t t = 0; t < tags.size(); ++t) {
      TagState& st = tags[t];
      tag_active[t] =
          start < st.active_end && start + kBlockMpx > st.active_begin;
      if (!tag_active[t]) continue;
      const std::span<const float> bb_block(st.baseband.data() + start, kBlockMpx);
      const dsp::cvec& incident = st_rf[static_cast<std::size_t>(sel[t])];
      dsp::cvec& b = reflected[t];
      b = st.subcarrier->process(bb_block);
      // reflected = B(t) x incident (the tag's selected station), with
      // motion fading on the tag path.
      for (std::size_t i = 0; i < incident.size(); ++i) b[i] *= incident[i];
      if (st.fading) st.fading->apply(b);
      // The switch is off outside the burst window: no reflection at all.
      const std::size_t lo =
          st.active_begin > start ? (st.active_begin - start) * up_factor : 0;
      const std::size_t hi = st.active_end < start + kBlockMpx
                                 ? (st.active_end - start) * up_factor
                                 : b.size();
      std::fill(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(lo),
                dsp::cfloat(0.0F, 0.0F));
      std::fill(b.begin() + static_cast<std::ptrdiff_t>(hi), b.end(),
                dsp::cfloat(0.0F, 0.0F));
    }

    rf.resize(st_rf[0].size());
    for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
      channel::scale_into(rf, st_rf[0], g_direct[r][0]);
      for (std::size_t s = 1; s < num_stations; ++s) {
        channel::accumulate_scaled(rf, st_rf[s], g_direct[r][s]);
      }
      for (std::size_t t = 0; t < tags.size(); ++t) {
        if (!tag_active[t]) continue;
        channel::accumulate_scaled(rf, reflected[t], g_back[r][t]);
      }
      noise[r].add_to(rf);
      const dsp::cvec tuned = tuners[r].process(rf);
      iq[r].insert(iq[r].end(), tuned.begin(), tuned.end());
    }
  }

  // ---- Demodulation and per-tag routing. -----------------------------------
  result.receivers.resize(sc.receivers.size());
  std::vector<TagLinkReport> best(sc.tags.size());
  std::vector<char> heard(sc.tags.size(), 0);
  for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
    const ScenarioReceiver& rx = sc.receivers[r];
    fm::ReceiverConfig rx_cfg;
    rx_cfg.stereo = rx.stereo_decoder;
    ReceiverCapture capture = finish_receiver_capture(
        fm::receive_fm(iq[r], rx_cfg), rx.kind, rx.phone, rx.cabin);

    ScenarioReceiverResult& rr = result.receivers[r];
    std::vector<std::size_t> routed;  // tag index per burst, demod order
    std::vector<rx::BurstSpec> bursts;
    for (std::size_t t = 0; t < sc.tags.size(); ++t) {
      const ScenarioTag& tcfg = sc.tags[t];
      if (tags[t].bits.empty()) continue;  // custom baseband: no BER to score
      if (!tag_audible_at(tcfg, station_offset[static_cast<std::size_t>(sel[t])],
                          rx.tune_offset_hz)) {
        continue;
      }
      rx::BurstSpec burst;
      burst.rate = tcfg.rate;
      burst.bits = tags[t].bits;
      burst.start_seconds = tags[t].burst_start_seconds;
      burst.packet_bits = tcfg.packet_bits;
      routed.push_back(t);
      bursts.push_back(std::move(burst));
    }
    const std::vector<rx::BurstReport> reports =
        rx::demodulate_bursts(capture.mono, bursts);
    for (std::size_t b = 0; b < reports.size(); ++b) {
      const std::size_t t = routed[b];
      TagLinkReport link;
      link.tag_index = t;
      link.receiver_index = r;
      link.burst = reports[b];
      link.backscatter_rx_power_dbm = rx_power_dbm[r][t];
      link.goodput_bps = static_cast<double>(link.burst.bits_delivered) /
                         sc.duration_seconds;
      if (!heard[t] || link.burst.ber.ber < best[t].burst.ber.ber) {
        best[t] = link;
        heard[t] = 1;
      }
      rr.links.push_back(std::move(link));
    }
    if (config_.keep_captures) rr.capture = std::move(capture);
  }
  for (std::size_t t = 0; t < sc.tags.size(); ++t) {
    if (!heard[t]) continue;
    result.aggregate_goodput_bps += best[t].goodput_bps;
    result.best_per_tag.push_back(best[t]);
  }
  return result;
}

std::vector<ScenarioResult> ScenarioEngine::run_many(
    SweepRunner& runner, const std::vector<Scenario>& scenarios) const {
  return runner.map(scenarios,
                    [this](const Scenario& sc) { return run(sc); });
}

void apply_scenario_seed_policy(Scenario& scenario, std::size_t index,
                                const SweepConfig& config) {
  if (scenario.seed == 0) scenario.seed = derive_seed(config.base_seed, index);
  // Station seeds left at the 0 sentinel are pinned sweep-wide when sharing
  // (one fm::StationCache render per station across every point), otherwise
  // derived from the scenario's own seed (fresh content per point).
  const std::uint64_t root =
      config.share_station_renders ? config.base_seed : scenario.seed;
  if (scenario.station.seed == 0) scenario.station.seed = root;
  for (std::size_t s = 0; s < scenario.stations.size(); ++s) {
    if (scenario.stations[s].config.seed == 0) {
      scenario.stations[s].config.seed = derive_seed(root, kStationSeedStream + s);
    }
  }
}

std::vector<ScenarioResult> run_scenario_sweep(SweepRunner& runner,
                                               const ScenarioEngine& engine,
                                               std::vector<Scenario> scenarios) {
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    apply_scenario_seed_policy(scenarios[i], i, runner.config());
  }
  return runner.map(scenarios,
                    [&engine](const Scenario& sc) { return engine.run(sc); });
}

std::vector<Series> run_scenario_grid(SweepRunner& runner,
                                      const ScenarioEngine& engine,
                                      const std::vector<ScenarioGridRow>& rows,
                                      const std::vector<double>& xs) {
  struct Cell {
    Scenario scenario;
    const ScenarioGridRow* row;
    double x;
  };
  std::vector<Cell> cells;
  cells.reserve(rows.size() * xs.size());
  for (const ScenarioGridRow& row : rows) {
    if (!row.make_scenario || !row.eval) {
      throw std::invalid_argument(
          "run_scenario_grid: row needs make_scenario and eval");
    }
    for (const double x : xs) {
      cells.push_back(Cell{row.make_scenario(x), &row, x});
      apply_scenario_seed_policy(cells.back().scenario, cells.size() - 1,
                                 runner.config());
    }
  }

  const std::vector<double> values = runner.map(cells, [&](const Cell& cell) {
    return cell.row->eval(engine.run(cell.scenario), cell.x);
  });

  std::vector<Series> series;
  series.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    Series s;
    s.label = rows[r].label;
    s.values.assign(values.begin() + static_cast<std::ptrdiff_t>(r * xs.size()),
                    values.begin() + static_cast<std::ptrdiff_t>((r + 1) * xs.size()));
    series.push_back(std::move(s));
  }
  return series;
}

}  // namespace fmbs::core
