#include "core/scenario.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "audio/tone.h"
#include "channel/awgn.h"
#include "channel/superpose.h"
#include "dsp/fir.h"
#include "dsp/math_util.h"
#include "dsp/nco.h"
#include "fm/rds.h"
#include "fm/station_cache.h"
#include "rx/tuner.h"
#include "tag/baseband.h"

namespace fmbs::core {

namespace {

constexpr std::size_t kBlockMpx = 24000;  // 0.1 s at 240 kHz, as in simulate()
constexpr double kBlockSeconds =
    static_cast<double>(kBlockMpx) / fm::kMpxRate;

/// derive_seed index streams so tag content, tag fading, receiver noise and
/// scene-station content are mutually independent processes per entity.
constexpr std::uint64_t kTagContentStream = 0x1000;
constexpr std::uint64_t kTagFadingStream = 0x2000;
constexpr std::uint64_t kReceiverNoiseStream = 0x3000;
constexpr std::uint64_t kStationSeedStream = 0x4000;
constexpr std::uint64_t kSurveyRdsStream = 0x5000;

/// Capture kept past an RDS burst's nominal end when decoding it out of a
/// receiver's post-demod MPX: covers the front-end group delay, like the
/// FSK router's tail slack.
constexpr double kRdsDecodeSlackSeconds = 0.02;

double pair_distance_m(const ScenarioTag& tag, const ScenePosition& tag_at,
                       const ScenePosition& rx_at) {
  if (tag.distance_override) {
    return tag.distance_override->to_meters().raw();
  }
  // Coincident positions (both entities left at the origin) degrade to the
  // near-field bound inside friis_path_loss; just keep the value positive.
  return std::max(1e-3, std::hypot(tag_at.x_m - rx_at.x_m,
                                   tag_at.y_m - rx_at.y_m));
}

/// Per-tag rendering state for one engine run.
struct TagState {
  dsp::rvec baseband;           // FM_back at the MPX rate, padded
  std::size_t active_begin = 0;  // switch-on window, MPX samples
  std::size_t active_end = 0;
  std::vector<std::uint8_t> bits;  // empty for custom-baseband and RDS tags
  std::vector<unsigned char> rds_bits;  // serialized groups of an RDS tag
  double burst_start_seconds = 0.0;
  double burst_seconds = 0.0;  // payload on-air time (0 for custom tags)
  bool transmitted = true;     // false: the MAC never let the burst out
  std::unique_ptr<tag::SubcarrierGenerator> subcarrier;
  std::unique_ptr<channel::FadingProcess> fading;
  /// Root of the tag's fading streams. Single-segment runs construct one
  /// process from it directly (the historical, bit-identical path);
  /// segmented runs re-derive a stream per segment in the block loop.
  std::uint64_t fading_seed = 0;
  std::size_t fading_segment = static_cast<std::size_t>(-1);
};

}  // namespace

ScenePosition path_position(const ScenePosition& anchor,
                            std::span<const ScenePosition> waypoints, double u) {
  if (waypoints.empty()) return anchor;
  u = std::clamp(u, 0.0, 1.0);
  // The path [anchor, waypoints...] spends equal time on every leg.
  const double along = u * static_cast<double>(waypoints.size());
  const std::size_t leg =
      std::min(static_cast<std::size_t>(along), waypoints.size() - 1);
  const double f = along - static_cast<double>(leg);
  const ScenePosition& a = leg == 0 ? anchor : waypoints[leg - 1];
  const ScenePosition& b = waypoints[leg];
  return {a.x_m + (b.x_m - a.x_m) * f, a.y_m + (b.y_m - a.y_m) * f};
}

units::Dbm station_power_at(const ScenarioStation& station,
                            const ScenePosition& at) {
  if (!station.position) return station.power;  // far field: uniform
  const double d_origin =
      std::max(1e-3, std::hypot(station.position->x_m, station.position->y_m));
  const double d_at = std::max(1e-3, std::hypot(station.position->x_m - at.x_m,
                                                station.position->y_m - at.y_m));
  // `power` is referenced at the scene origin; scale with free-space
  // distance from the transmitter.
  return station.power + units::Db{20.0 * std::log10(d_origin / d_at)};
}

bool tag_audible_at(const ScenarioTag& tag, units::Hertz station_offset,
                    units::Hertz tune_offset) {
  constexpr double kTol = 1.0;  // Hz; assignments come from shared constants
  const double station_offset_hz = station_offset.raw();
  const double tune_offset_hz = tune_offset.raw();
  if (tag.subcarrier.mode == tag::SubcarrierMode::kSingleSideband) {
    return std::abs(station_offset_hz + tag.subcarrier.shift.raw() -
                    tune_offset_hz) < kTol;
  }
  // Real square switches serve both signed copies of |f_back| around their
  // station's carrier; a receiver parked on the carrier itself hears the
  // station program, not tag data.
  const double mag = std::abs(tag.subcarrier.shift.raw());
  const bool on_channel =
      std::abs(station_offset_hz + mag - tune_offset_hz) < kTol ||
      std::abs(station_offset_hz - mag - tune_offset_hz) < kTol;
  return on_channel && std::abs(tune_offset_hz - station_offset_hz) >= kTol;
}

units::Dbm receiver_noise_floor(const ScenarioReceiver& rx) {
  if (rx.noise_200khz) return *rx.noise_200khz;
  return rx.kind == ReceiverKind::kCar ? channel::ReceiverNoise::kCarPer200kHz
                                       : channel::ReceiverNoise::kPhonePer200kHz;
}

units::Db receiver_antenna_gain(const ScenarioReceiver& rx) {
  if (rx.rx_antenna_gain) return *rx.rx_antenna_gain;
  return units::Db{rx.kind == ReceiverKind::kCar
                       ? tag::car_whip_antenna().effective_gain_db()
                       : tag::headphone_antenna().effective_gain_db()};
}

int tag_backscatter_channels(const ScenarioTag& tag,
                             units::Hertz station_offset,
                             units::Hertz out[2]) {
  if (tag.subcarrier.mode == tag::SubcarrierMode::kSingleSideband) {
    out[0] = station_offset + tag.subcarrier.shift;
    return 1;
  }
  const units::Hertz mag{std::abs(tag.subcarrier.shift.raw())};
  out[0] = station_offset + mag;
  out[1] = station_offset - mag;
  return 2;
}

ScenarioReceiver phone_listening_to(const tag::SubcarrierConfig& subcarrier) {
  ScenarioReceiver rx;
  rx.kind = ReceiverKind::kPhone;
  rx.tune_offset = subcarrier.shift;
  return rx;
}

ScenarioReceiver car_listening_to(const tag::SubcarrierConfig& subcarrier) {
  ScenarioReceiver rx;
  rx.kind = ReceiverKind::kCar;
  rx.tune_offset = subcarrier.shift;
  rx.stereo_decoder.force_mono = true;  // car stereo used as plain mono
  // Car ranges run near the ground where the two-ray d^4 falloff dominates
  // (see make_system's car branch).
  rx.link.use_two_ray = true;
  rx.link.tag_height = units::Meters{1.52};
  rx.link.rx_height = units::Meters{1.5};
  return rx;
}

Scenario scenario_from_system(const SystemConfig& config,
                              const dsp::rvec& tag_baseband,
                              units::Seconds duration) {
  Scenario sc;
  sc.name = "legacy-bridge";
  sc.station = config.station;
  sc.settle = units::Seconds{0.0};
  sc.duration = duration;
  sc.seed = config.scene.noise_seed;

  ScenarioTag t;
  t.name = "tag";
  t.subcarrier = config.tag.subcarrier;
  t.antenna = config.tag.antenna;
  // An empty legacy baseband means "unmodulated always-on switch" (the
  // engine zero-pads to the scene length); keep one explicit zero sample so
  // the engine does not mistake it for an FSK payload tag.
  t.custom_baseband = tag_baseband.empty() ? dsp::rvec(1, 0.0F) : tag_baseband;
  t.tag_power = config.scene.tag_power;
  t.distance_override = config.scene.tag_rx_distance;
  t.fading = config.scene.fading;
  t.fading_seed = config.scene.noise_seed + 1;  // simulate()'s fading stream
  sc.tags.push_back(std::move(t));

  ScenarioReceiver rx;
  rx.name = "backscatter-rx";
  rx.kind = config.receiver;
  rx.tune_offset = config.tag.subcarrier.shift;
  rx.direct_power = config.scene.direct_power;
  rx.noise_200khz = config.scene.rx_noise_200khz;
  rx.link = config.scene.link;
  rx.noise_seed = config.scene.noise_seed;
  rx.phone = config.phone;
  rx.cabin = config.cabin;
  rx.stereo_decoder = config.stereo_decoder;
  sc.receivers.push_back(rx);

  if (config.capture_ambient_receiver) {
    ScenarioReceiver amb = rx;
    amb.name = "ambient-rx";
    amb.tune_offset = units::Hertz{0.0};
    amb.noise_seed = config.scene.noise_seed + 0x9e3779b9ULL;  // simulate()'s
    sc.receivers.push_back(std::move(amb));
  }
  return sc;
}

SurveySceneReport stations_from_survey_report(
    const survey::CitySpectrum& city, int listen_channel,
    units::Hertz max_offset, std::uint64_t seed) {
  if (listen_channel < 0 || listen_channel >= fm::kNumChannels) {
    throw std::invalid_argument("stations_from_survey: bad listen channel");
  }
  // A caller asking for a wider cap than the scene can hold is clamped to
  // the scene: a station past kMaxStationOffsetHz cannot be rendered without
  // aliasing its Carson band back into the scene.
  const double cap = std::min(max_offset.raw(), kMaxStationOffsetHz);
  // Genres cycle deterministically per channel (never silence: a detectable
  // station is on the air).
  static constexpr audio::ProgramGenre kGenres[] = {
      audio::ProgramGenre::kNews, audio::ProgramGenre::kPop,
      audio::ProgramGenre::kMixed, audio::ProgramGenre::kRock};
  SurveySceneReport report;
  for (std::size_t i = 0; i < city.detectable_channels.size(); ++i) {
    const int ch = city.detectable_channels[i];
    const double offset =
        (ch - listen_channel) * fm::kChannelSpacingHz;
    char freq[32];
    std::snprintf(freq, sizeof(freq), "%.1fMHz",
                  survey::channel_frequency_hz(ch) / 1e6);
    if (std::abs(offset) > cap + 1e-6) {
      // Out of scene: excluded, never clamped onto a wrong carrier — but
      // loudly, so a survey-driven deployment knows what it is not seeing.
      char warning[160];
      std::snprintf(warning, sizeof(warning),
                    "%s@%s at %+.0f kHz is outside the +-%.0f kHz scene "
                    "around the listen channel - skipped",
                    city.name.c_str(), freq, offset / 1000.0, cap / 1000.0);
      report.warnings.emplace_back(warning);
      continue;
    }
    ScenarioStation st;
    st.name = city.name + "@" + freq;
    st.config.program.genre = kGenres[static_cast<std::size_t>(ch) % 4];
    st.config.program.stereo = ch % 3 != 0;  // a mix of mono and stereo
    st.config.seed = derive_seed(seed, static_cast<std::uint64_t>(ch));
    // Real stations broadcast RDS: give every surveyed channel a
    // deterministic injection level (the 0.04-0.06 band real broadcasters
    // use) and a PS name derived from the city and channel frequency, so
    // city scenes carry the 57 kHz subcarrier the way a real band does.
    st.config.rds_level =
        0.04 + 0.01 * static_cast<double>(
                          derive_seed(seed, kSurveyRdsStream +
                                                static_cast<std::uint64_t>(ch)) %
                          3);
    std::string call;
    for (const char c : city.name) {
      if (call.size() == 3) break;
      call.push_back(static_cast<char>(
          std::toupper(static_cast<unsigned char>(c))));
    }
    while (call.size() < 3) call.push_back('X');
    char ps[16];
    std::snprintf(ps, sizeof(ps), "%s%05.1f", call.c_str(),
                  survey::channel_frequency_hz(ch) / 1e6);
    st.config.rds_ps_name = ps;  // e.g. "BOS098.5"
    st.offset = units::Hertz{offset};
    st.power = units::Dbm{city.detectable_power_dbm[i]};
    report.stations.push_back(std::move(st));
  }
  if (report.stations.empty()) {
    // An empty vector would silently flip the Scenario into legacy
    // single-station mode (the default-constructed sc.station) — surface
    // the misconfiguration instead.
    throw std::invalid_argument(
        "stations_from_survey: no detectable station of " + city.name +
        " falls within the scene around the listen channel");
  }
  std::sort(report.stations.begin(), report.stations.end(),
            [](const ScenarioStation& a, const ScenarioStation& b) {
              const double am = std::abs(a.offset.raw());
              const double bm = std::abs(b.offset.raw());
              return am != bm ? am < bm : a.offset < b.offset;
            });
  return report;
}

std::vector<ScenarioStation> stations_from_survey(
    const survey::CitySpectrum& city, int listen_channel,
    units::Hertz max_offset, std::uint64_t seed) {
  return stations_from_survey_report(city, listen_channel, max_offset, seed)
      .stations;
}

std::size_t ScenarioPlan::segment_of_time(double t) const {
  if (num_segments == 1) return 0;
  // The epsilon keeps boundary times (k * S computed in floating point)
  // in segment k, matching resolve_mac_schedule's convention.
  return std::min(num_segments - 1,
                  static_cast<std::size_t>(std::floor(
                      std::max(0.0, t) / segment_seconds + 1e-9)));
}

std::pair<double, double> ScenarioPlan::segment_bounds(std::size_t k) const {
  if (num_segments == 1) return {0.0, total_seconds};
  const double s0 = static_cast<double>(k) * segment_seconds;
  return {s0, std::min(total_seconds, s0 + segment_seconds)};
}

ScenarioPlan resolve_scenario_plan(const Scenario& sc) {
  if (sc.duration.raw() <= 0.0) {
    throw std::invalid_argument("ScenarioEngine: duration must be > 0");
  }
  if (sc.settle.raw() < 0.0) {
    throw std::invalid_argument("ScenarioEngine: negative settle window");
  }
  if (sc.receivers.empty()) {
    throw std::invalid_argument("ScenarioEngine: scenario needs a receiver");
  }
  ScenarioPlan plan;
  plan.total_seconds = sc.settle.raw() + sc.duration.raw();
  const double total_seconds = plan.total_seconds;

  // ---- Timeline segmentation. ----------------------------------------------
  // Geometry (positions, station selection, link budgets) is evaluated once
  // per segment; the engines' streaming front ends run straight through
  // segment boundaries, so captures — and the bursts demodulated out of
  // them — are seam-free by construction.
  const double seg_len = sc.timeline.segment.raw();
  if (seg_len < 0.0) {
    throw std::invalid_argument("ScenarioEngine: negative segment length");
  }
  if (seg_len > 0.0) {
    const double blocks = seg_len / kBlockSeconds;
    if (blocks < 1.0 - 1e-9 ||
        std::abs(blocks - std::round(blocks)) > 1e-6) {
      throw std::invalid_argument(
          "ScenarioEngine: timeline segment must be a positive "
          "multiple of the 0.1 s streaming block");
    }
    plan.num_segments = static_cast<std::size_t>(
        std::max(1.0, std::ceil(total_seconds / seg_len - 1e-9)));
  }
  plan.segment_seconds = seg_len;
  const std::size_t num_segments = plan.num_segments;

  // Scene station table. An empty `stations` means the legacy single-station
  // scene: sc.station at the scene center with the legacy per-tag/receiver
  // power semantics (bit-identical to the pre-multi-station engine).
  plan.multi = !sc.stations.empty();
  const bool multi = plan.multi;
  plan.num_stations = multi ? sc.stations.size() : 1;
  const std::size_t num_stations = plan.num_stations;
  plan.station_offset.assign(num_stations, 0.0);
  if (multi) {
    for (std::size_t s = 0; s < num_stations; ++s) {
      plan.station_offset[s] = sc.stations[s].offset.raw();
      if (std::abs(plan.station_offset[s]) > kMaxStationOffsetHz + 1e-6) {
        throw std::invalid_argument(
            "ScenarioEngine: station \"" + sc.stations[s].name +
            "\" carrier offset falls outside the 2.4 MHz scene");
      }
    }
  }

  // ---- Per-segment entity positions along their waypoint paths. -----------
  plan.tag_pos.assign(num_segments, std::vector<ScenePosition>(sc.tags.size()));
  plan.rx_pos.assign(num_segments,
                     std::vector<ScenePosition>(sc.receivers.size()));
  for (std::size_t k = 0; k < num_segments; ++k) {
    const auto [s0, s1] = plan.segment_bounds(k);
    const double u = total_seconds > 0.0 ? 0.5 * (s0 + s1) / total_seconds : 0.0;
    for (std::size_t t = 0; t < sc.tags.size(); ++t) {
      plan.tag_pos[k][t] =
          path_position(sc.tags[t].position, sc.tags[t].waypoints, u);
    }
    for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
      plan.rx_pos[k][r] =
          path_position(sc.receivers[r].position, sc.receivers[r].waypoints, u);
    }
  }

  // ---- Per-segment station selection and ambient power. --------------------
  // Re-deciding the strongest station per segment is what turns a waypoint
  // path into a handoff: a walking tag crosses the midpoint between two
  // stations and its reflected carrier moves to the other channel.
  plan.selected_station.assign(num_segments,
                               std::vector<int>(sc.tags.size(), 0));
  plan.tag_ambient_dbm.assign(num_segments,
                              std::vector<double>(sc.tags.size(), 0.0));
  for (std::size_t k = 0; k < num_segments; ++k) {
    for (std::size_t t = 0; t < sc.tags.size(); ++t) {
      const ScenarioTag& tcfg = sc.tags[t];
      if (!multi) {
        plan.tag_ambient_dbm[k][t] = tcfg.tag_power.raw();
        continue;
      }
      int chosen = tcfg.station_index;
      if (chosen >= static_cast<int>(num_stations)) {
        throw std::invalid_argument("ScenarioEngine: tag \"" + tcfg.name +
                                    "\" selects a station outside the scene");
      }
      if (chosen < 0) {
        // The paper's posters backscatter whichever ambient signal is
        // strongest at their location.
        double best = -1e18;
        for (std::size_t s = 0; s < num_stations; ++s) {
          const double p =
              station_power_at(sc.stations[s], plan.tag_pos[k][t]).raw();
          if (p > best) {
            best = p;
            chosen = static_cast<int>(s);
          }
        }
      }
      plan.selected_station[k][t] = chosen;
      plan.tag_ambient_dbm[k][t] =
          station_power_at(sc.stations[static_cast<std::size_t>(chosen)],
                           plan.tag_pos[k][t])
              .raw();
    }
  }

  // ---- Per-tag payload plan: kinds, burst durations, seeds. ----------------
  plan.tags.resize(sc.tags.size());
  for (std::size_t i = 0; i < sc.tags.size(); ++i) {
    const ScenarioTag& t = sc.tags[i];
    ScenarioTagPlan& tp = plan.tags[i];
    if (t.fading) {
      tp.fading_seed = t.fading_seed ? *t.fading_seed
                                     : derive_seed(sc.seed, kTagFadingStream + i);
    }
    if (!t.custom_baseband.empty()) {
      if (!t.rds_radiotext.empty()) {
        throw std::invalid_argument(
            "ScenarioEngine: tag \"" + t.name +
            "\" sets both custom_baseband and rds_radiotext");
      }
      tp.custom_baseband = true;
      continue;
    }
    if (t.start.raw() < 0.0) {
      throw std::invalid_argument("ScenarioEngine: tag \"" + t.name +
                                  "\" burst does not fit the scenario");
    }
    if (!t.rds_radiotext.empty()) {
      // RDS data mode: the RadioText compiles to group-2A blocks whose
      // serialized bitstream becomes the burst (one pass over the groups at
      // the standard 1187.5 bps).
      if (t.rds_level <= 0.0 || t.rds_level > 1.0) {
        throw std::invalid_argument("ScenarioEngine: tag \"" + t.name +
                                    "\" rds_level must be in (0, 1]");
      }
      tp.rds = true;
      tp.rds_bits =
          fm::serialize_groups(fm::make_radiotext_groups(t.rds_radiotext));
      tp.burst_seconds =
          static_cast<double>(tp.rds_bits.size()) / fm::kRdsBitRateHz;
      continue;
    }
    if (t.num_bits == 0) {
      throw std::invalid_argument("ScenarioEngine: tag \"" + t.name +
                                  "\" has no payload");
    }
    tp.content_seed =
        t.seed ? *t.seed : derive_seed(sc.seed, kTagContentStream + i);
    // Duration only: the waveform itself is synthesized at composition time,
    // and only for tags some receiver can hear — a city of deployed tags
    // resolves its MAC schedule without paying per-tag FSK synthesis.
    tp.burst_seconds = tag::fsk_burst_seconds(t.num_bits, t.rate, fm::kAudioRate);
  }

  // ---- Medium access: nominal starts -> actual burst schedule. -------------
  // The MAC resolves before anything is rendered: carrier-sense deferrals
  // reshape the on-air schedule segment by segment, and the scene is then
  // rendered once with the final schedule (so what a receiver hears is what
  // the MAC actually let on the air).
  std::vector<tag::MacAttempt> attempts;
  std::vector<std::size_t> attempt_tag;  // attempt index -> tag index
  for (std::size_t i = 0; i < sc.tags.size(); ++i) {
    // Custom-baseband tags are always on and bypass the MAC; FSK and RDS
    // bursts both contend for the channel.
    if (plan.tags[i].custom_baseband) continue;
    tag::MacAttempt a;
    a.nominal_start = units::Seconds{sc.settle.raw() + sc.tags[i].start.raw()};
    a.burst = units::Seconds{plan.tags[i].burst_seconds};
    a.guard = units::Seconds{kBurstGuardSeconds};
    a.config = sc.tags[i].mac;
    attempt_tag.push_back(i);
    attempts.push_back(a);
  }
  // What a deferring tag hears: every station whose carrier falls in one of
  // the tag's subcarrier channels, plus every committed neighbor burst that
  // couples into those channels, all evaluated with the segment's geometry.
  auto channels_of = [&](std::size_t t, std::size_t seg,
                         units::Hertz (&out)[2]) -> int {
    const units::Hertz off{multi
                               ? plan.station_offset[static_cast<std::size_t>(
                                     plan.selected_station[seg][t])]
                               : 0.0};
    return tag_backscatter_channels(sc.tags[t], off, out);
  };
  auto sense_channel = [&](std::size_t attempt, units::Seconds w_begin,
                           units::Seconds w_end,
                           std::span<const tag::OnAirInterval> on_air) {
    const double t0 = w_begin.raw();
    const double t1 = w_end.raw();
    const std::size_t ti = attempt_tag[attempt];
    const std::size_t seg = plan.segment_of_time(0.5 * (t0 + t1));
    const ScenePosition& at = plan.tag_pos[seg][ti];
    units::Hertz ch_i[2];
    const int n_i = channels_of(ti, seg, ch_i);
    const double half = fm::kChannelSpacingHz / 2.0;
    double watts = 0.0;
    // Ambient stations occupying the sensed channel(s).
    for (std::size_t s = 0; s < num_stations; ++s) {
      const units::Dbm power =
          multi ? station_power_at(sc.stations[s], at)
                : sc.tags[ti].tag_power;  // legacy: ambient at the tag
      for (int c = 0; c < n_i; ++c) {
        if (std::abs(plan.station_offset[s] - ch_i[c].raw()) < half) {
          watts += power.to_watts().raw();
          break;
        }
      }
    }
    // Committed neighbor bursts on the air during the window.
    for (const tag::OnAirInterval& iv : on_air) {
      if (std::min(t1, iv.end.raw()) - std::max(t0, iv.begin.raw()) <= 0.0) {
        continue;
      }
      const std::size_t tj = attempt_tag[iv.attempt];
      if (tj == ti) continue;
      units::Hertz ch_j[2];
      const int n_j = channels_of(tj, seg, ch_j);
      bool couples = false;
      for (int a = 0; a < n_i && !couples; ++a) {
        for (int b = 0; b < n_j; ++b) {
          if (std::abs(ch_i[a].raw() - ch_j[b].raw()) < half) {
            couples = true;
            break;
          }
        }
      }
      if (!couples) continue;
      channel::LinkBudgetConfig link;
      link.tag_antenna_gain = units::Db{sc.tags[tj].antenna.effective_gain_db()};
      link.rx_antenna_gain = units::Db{sc.tags[ti].antenna.effective_gain_db()};
      const double dist =
          std::max(1e-3, std::hypot(plan.tag_pos[seg][tj].x_m - at.x_m,
                                    plan.tag_pos[seg][tj].y_m - at.y_m));
      watts += channel::compute_backscatter_path(
                   units::Dbm{plan.tag_ambient_dbm[seg][tj]},
                   units::Dbm{plan.tag_ambient_dbm[seg][tj]},
                   units::Meters{dist}, link)
                   .sideband.raw();
    }
    return watts > 0.0
               ? units::Watts{watts}.to_dbm()
               : units::Dbm{-std::numeric_limits<double>::infinity()};
  };
  const std::vector<tag::MacDecision> schedule = tag::resolve_mac_schedule(
      attempts, units::Seconds{total_seconds}, units::Seconds{seg_len},
      sense_channel);
  for (std::size_t a = 0; a < schedule.size(); ++a) {
    const std::size_t i = attempt_tag[a];
    ScenarioTagPlan& tp = plan.tags[i];
    const tag::MacDecision& d = schedule[a];
    tp.transmitted = d.transmitted;
    tp.deferrals = d.deferrals;
    tp.start_seconds = d.start.raw();
    tp.last_sensed_dbm = d.last_sensed.raw();
    if (d.transmitted &&
        d.start.raw() + tp.burst_seconds > total_seconds + 1e-9) {
      if (attempts[a].nominal_start.raw() + tp.burst_seconds >
          total_seconds + 1e-9) {
        // The burst could never have fit at its requested start — a
        // configuration error regardless of MAC policy.
        throw std::invalid_argument("ScenarioEngine: tag \"" + sc.tags[i].name +
                                    "\" burst does not fit the scenario");
      }
      // The burst fit where the user asked for it, but the MAC (slot
      // quantization) pushed it past the run boundary: it would be truncated
      // on the air, so it is never sent — excluded from the scene and from
      // goodput consistently by every engine that consumes this plan, the
      // same way carrier sense silently gives up.
      tp.transmitted = false;
    }
  }

  // ---- Legacy direct-power policy and per-receiver noise seeds. ------------
  if (!multi) {
    plan.receiver_direct_dbm.resize(sc.receivers.size());
    for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
      double p;
      if (sc.receivers[r].direct_power) {
        p = sc.receivers[r].direct_power->raw();
      } else {
        p = -1e9;
        for (const ScenarioTag& t : sc.tags) p = std::max(p, t.tag_power.raw());
        if (sc.tags.empty()) p = -30.0;
      }
      plan.receiver_direct_dbm[r] = p;
    }
  }
  plan.receiver_noise_seed.resize(sc.receivers.size());
  for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
    plan.receiver_noise_seed[r] =
        sc.receivers[r].noise_seed
            ? *sc.receivers[r].noise_seed
            : derive_seed(sc.seed, kReceiverNoiseStream + r);
  }

  // ---- Per-pair link budgets, one table per segment. -----------------------
  // g_back[k][r][t]: reflected-wave amplitude of tag t at receiver r during
  // segment k; g_direct[k][r][s]: unshifted amplitude of station s at
  // receiver r during segment k.
  plan.g_direct.assign(num_segments,
                       std::vector<std::vector<float>>(
                           sc.receivers.size(),
                           std::vector<float>(num_stations, 0.0F)));
  plan.g_back.assign(num_segments,
                     std::vector<std::vector<float>>(
                         sc.receivers.size(),
                         std::vector<float>(sc.tags.size(), 0.0F)));
  plan.rx_power_dbm.assign(num_segments,
                           std::vector<std::vector<double>>(
                               sc.receivers.size(),
                               std::vector<double>(sc.tags.size(), 0.0)));
  for (std::size_t k = 0; k < num_segments; ++k) {
    for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
      const ScenarioReceiver& rx = sc.receivers[r];
      channel::LinkBudgetConfig link = rx.link;
      link.rx_antenna_gain = receiver_antenna_gain(rx);
      if (multi) {
        for (std::size_t s = 0; s < num_stations; ++s) {
          plan.g_direct[k][r][s] = static_cast<float>(
              std::sqrt(station_power_at(sc.stations[s], plan.rx_pos[k][r])
                            .to_watts()
                            .raw()));
        }
        for (std::size_t t = 0; t < sc.tags.size(); ++t) {
          link.tag_antenna_gain =
              units::Db{sc.tags[t].antenna.effective_gain_db()};
          const channel::BackscatterPath path =
              channel::compute_backscatter_path(
                  units::Dbm{plan.tag_ambient_dbm[k][t]},
                  units::Dbm{plan.tag_ambient_dbm[k][t]},
                  units::Meters{pair_distance_m(sc.tags[t], plan.tag_pos[k][t],
                                                plan.rx_pos[k][r])},
                  link);
          plan.g_back[k][r][t] =
              static_cast<float>(path.budget.backscatter_amplitude);
          plan.rx_power_dbm[k][r][t] = path.sideband_power.raw();
        }
        continue;
      }
      if (sc.tags.empty()) {
        plan.g_direct[k][r][0] = static_cast<float>(std::sqrt(
            units::Dbm{plan.receiver_direct_dbm[r]}.to_watts().raw()));
        continue;
      }
      for (std::size_t t = 0; t < sc.tags.size(); ++t) {
        link.tag_antenna_gain =
            units::Db{sc.tags[t].antenna.effective_gain_db()};
        const channel::BackscatterPath path = channel::compute_backscatter_path(
            sc.tags[t].tag_power, units::Dbm{plan.receiver_direct_dbm[r]},
            units::Meters{pair_distance_m(sc.tags[t], plan.tag_pos[k][t],
                                          plan.rx_pos[k][r])},
            link);
        plan.g_back[k][r][t] =
            static_cast<float>(path.budget.backscatter_amplitude);
        if (t == 0) {
          plan.g_direct[k][r][0] =
              static_cast<float>(path.budget.direct_amplitude);
        }
        plan.rx_power_dbm[k][r][t] = path.sideband_power.raw();
      }
    }
  }
  return plan;
}

ScenePruning resolve_scene_pruning(const Scenario& sc, const ScenarioPlan& plan,
                                   SceneRendering mode) {
  // What must actually be synthesized, from the channel plan and capture
  // logic alone (everything here is a pure function of configuration — no
  // rendered signal is consulted, so the decision is cheap and
  // deterministic):
  //   * a tag is needed when one of its backscatter channels (channels_of,
  //     evaluated against its per-segment selected station) falls within
  //     kSceneNeighborhoodHz of some receiver's tuned channel;
  //   * a station is needed when its carrier falls within that margin of
  //     some receiver's tune, or when a needed tag selects it in any segment
  //     (the reflection carries the station's modulation);
  //   * station 0 is always needed — it is the scene center the legacy
  //     `station` field and single-station power semantics hang off.
  // Everything needed is synthesized for ALL receivers: pruning decides what
  // enters the scene, never per-receiver superposition lists, so dense mode
  // (every flag forced on) reproduces the historical engine exactly.
  ScenePruning pr;
  pr.station_needed.assign(plan.num_stations, 1);
  pr.tag_needed.assign(sc.tags.size(), 1);
  if (mode != SceneRendering::kSparse) return pr;
  const std::vector<std::vector<int>>& sel = plan.selected_station;
  auto near_some_receiver = [&](double channel_hz) {
    for (const ScenarioReceiver& rx : sc.receivers) {
      if (std::abs(channel_hz - rx.tune_offset.raw()) <=
          kSceneNeighborhoodHz + 1e-6) {
        return true;
      }
    }
    return false;
  };
  for (std::size_t s = 1; s < plan.num_stations; ++s) {
    pr.station_needed[s] = near_some_receiver(plan.station_offset[s]) ? 1 : 0;
  }
  for (std::size_t t = 0; t < sc.tags.size(); ++t) {
    pr.tag_needed[t] = 0;
    // A burst the MAC never let on the air reflects nothing — skip its
    // waveform (and don't force its stations) no matter how audible its
    // channel would have been.
    if (!plan.tags[t].transmitted) continue;
    for (std::size_t k = 0; k < plan.num_segments && !pr.tag_needed[t]; ++k) {
      units::Hertz ch[2];
      const int n = tag_backscatter_channels(
          sc.tags[t],
          units::Hertz{
              plan.multi
                  ? plan.station_offset[static_cast<std::size_t>(sel[k][t])]
                  : 0.0},
          ch);
      for (int c = 0; c < n; ++c) {
        if (near_some_receiver(ch[c].raw())) {
          pr.tag_needed[t] = 1;
          break;
        }
      }
    }
    if (!pr.tag_needed[t]) continue;
    for (std::size_t k = 0; k < plan.num_segments; ++k) {
      pr.station_needed[static_cast<std::size_t>(sel[k][t])] = 1;
    }
  }
  return pr;
}

ScenarioResult ScenarioEngine::run(const Scenario& sc) const {
  // Everything decided before a sample exists — validation, timeline,
  // geometry, station selection, the MAC schedule, the link tables — lives
  // in the shared pre-render plan; this engine adds the signal level:
  // synthesis, superposition, demodulation.
  const ScenarioPlan plan = resolve_scenario_plan(sc);
  const double total_seconds = plan.total_seconds;
  const std::size_t num_segments = plan.num_segments;
  const bool multi = plan.multi;
  const std::size_t num_stations = plan.num_stations;
  const std::vector<double>& station_offset = plan.station_offset;
  const std::vector<std::vector<int>>& sel = plan.selected_station;
  const std::size_t blocks_per_segment =
      plan.segment_seconds > 0.0
          ? static_cast<std::size_t>(
                std::llround(plan.segment_seconds / kBlockSeconds))
          : 0;

  ScenarioResult result;
  // Pin every scene render for the duration of the run: a scene wider than
  // the cache capacity must not thrash/evict its own stations mid-run. Each
  // needed station is rendered ONCE for the whole run and reused across
  // every timeline segment — segmentation changes geometry, never the
  // broadcast. Station 0 (the scene center, the legacy `station` field) is
  // rendered up front; the rest render lazily once demand-driven pruning
  // below knows which ones any receiver can actually hear.
  fm::StationCache::SceneScope scope(fm::StationCache::instance());
  result.station_renders.assign(num_stations, nullptr);
  result.station_renders[0] = scope.render(
      multi ? sc.stations[0].config : sc.station, units::Seconds{total_seconds});
  result.station = result.station_renders[0];
  const std::size_t station_len = result.station->iq.size();
  const std::size_t padded =
      (station_len + kBlockMpx - 1) / kBlockMpx * kBlockMpx;

  result.selected_station = sel[0];
  result.segments.resize(num_segments);
  for (std::size_t k = 0; k < num_segments; ++k) {
    const auto [s0, s1] = plan.segment_bounds(k);
    result.segments[k].start_seconds = s0;
    result.segments[k].end_seconds = s1;
    result.segments[k].selected_station = sel[k];
  }

  // ---- Per-tag state: generators, payload bits, burst waveforms. -----------
  std::vector<TagState> tags(sc.tags.size());
  for (std::size_t i = 0; i < sc.tags.size(); ++i) {
    const ScenarioTag& t = sc.tags[i];
    const ScenarioTagPlan& tp = plan.tags[i];
    TagState& st = tags[i];
    st.subcarrier = std::make_unique<tag::SubcarrierGenerator>(t.subcarrier);
    if (t.fading) {
      st.fading_seed = tp.fading_seed;
      // A single-segment run streams one process seeded exactly as the
      // historical engine did (bit-identical); segmented runs re-derive the
      // stream per segment inside the block loop, so segment geometry
      // changes actually decorrelate the fade instead of riding one
      // coherent realization across the whole walk.
      if (num_segments == 1) {
        st.fading = std::make_unique<channel::FadingProcess>(
            *t.fading, fm::kRfRate, st.fading_seed);
      }
    }
    if (tp.custom_baseband) {
      st.baseband = t.custom_baseband;
      st.baseband.resize(padded, 0.0F);
      st.active_begin = 0;
      st.active_end = padded;
      continue;
    }
    st.burst_seconds = tp.burst_seconds;
    if (tp.rds) {
      st.rds_bits = tp.rds_bits;
      continue;
    }
    st.bits = tag::random_bits(t.num_bits, tp.content_seed);
  }

  // ---- Demand-driven scene pruning (shared with the streaming engine). -----
  const ScenePruning pruning =
      resolve_scene_pruning(sc, plan, config_.scene_rendering);
  const std::vector<char>& station_needed = pruning.station_needed;
  const std::vector<char>& tag_needed = pruning.tag_needed;
  for (std::size_t s = 1; s < num_stations; ++s) {
    if (!station_needed[s]) continue;
    result.station_renders[s] =
        scope.render(sc.stations[s].config, units::Seconds{total_seconds});
    if (result.station_renders[s]->iq.size() != station_len) {
      throw std::logic_error("ScenarioEngine: station render length mismatch");
    }
  }
  result.scene.stations_total = num_stations;
  result.scene.tags_total = sc.tags.size();
  for (std::size_t s = 0; s < num_stations; ++s) {
    result.scene.stations_rendered += station_needed[s] ? 1U : 0U;
  }
  for (std::size_t t = 0; t < sc.tags.size(); ++t) {
    result.scene.tags_rendered += tag_needed[t] ? 1U : 0U;
  }

  // ---- Compose each transmitted burst's baseband at its resolved start. ----
  result.mac.resize(sc.tags.size());
  for (std::size_t i = 0; i < sc.tags.size(); ++i) {
    const ScenarioTag& t = sc.tags[i];
    const ScenarioTagPlan& tp = plan.tags[i];
    TagState& st = tags[i];
    if (tp.custom_baseband) continue;  // always on; default MAC report
    result.mac[i].transmitted = tp.transmitted;
    result.mac[i].deferrals = tp.deferrals;
    result.mac[i].start_seconds = tp.start_seconds;
    result.mac[i].last_sensed_dbm = tp.last_sensed_dbm;
    st.transmitted = tp.transmitted;
    if (!tp.transmitted) {
      st.active_begin = 0;
      st.active_end = 0;  // the switch never turns on: no reflection at all
      continue;
    }
    st.burst_start_seconds = tp.start_seconds;
    if (!tag_needed[i]) {
      // No receiver can hear this tag's channel: the MAC outcome above is
      // still reported, but the burst waveform itself is never composed.
      st.active_begin = 0;
      st.active_end = 0;
      continue;
    }
    if (!st.rds_bits.empty()) {
      // RDS burst: generated directly at the MPX rate and dropped into the
      // burst window (the biphase/BPSK waveform needs no audio-rate stage).
      const auto nsamp = static_cast<std::size_t>(
          std::ceil(st.burst_seconds * fm::kMpxRate));
      const dsp::rvec wave =
          tag::compose_rds_baseband(st.rds_bits, nsamp, t.rds_level);
      st.baseband.assign(padded, 0.0F);
      const auto s0 = static_cast<std::size_t>(st.burst_start_seconds *
                                               fm::kMpxRate);
      const std::size_t n =
          std::min(wave.size(), s0 < padded ? padded - s0 : 0);
      std::copy(wave.begin(),
                wave.begin() + static_cast<std::ptrdiff_t>(n),
                st.baseband.begin() + static_cast<std::ptrdiff_t>(s0));
    } else {
      const audio::MonoBuffer lead_in =
          audio::make_silence(st.burst_start_seconds, fm::kAudioRate);
      st.baseband = tag::compose_overlay_baseband(
          audio::concat(lead_in,
                        tag::modulate_fsk(st.bits, t.rate, fm::kAudioRate)),
          t.level, fm::kMpxRate);
      st.baseband.resize(padded, 0.0F);
    }
    st.active_begin = static_cast<std::size_t>(
        std::max(0.0, st.burst_start_seconds - kBurstGuardSeconds) * fm::kMpxRate);
    st.active_end = std::min(
        padded, static_cast<std::size_t>(
                    (st.burst_start_seconds + st.burst_seconds +
                     kBurstGuardSeconds) *
                    fm::kMpxRate));
  }

  // ---- Per-station and per-receiver front ends. ----------------------------
  // Streaming state (interpolators, mixers, noise, tuners) is never reset at
  // a segment boundary — only the geometry scalars switch.
  const auto up_factor = static_cast<std::size_t>(fm::kMpxToRfFactor);
  const std::vector<float> up_taps = dsp::fir_design_lowpass(
      (16 * up_factor) | 1U, 0.45 / static_cast<double>(up_factor));
  std::vector<std::optional<dsp::FirInterpolator<dsp::cfloat>>> upsamplers(
      num_stations);
  std::vector<std::optional<dsp::Mixer>> mixers(num_stations);
  for (std::size_t s = 0; s < num_stations; ++s) {
    if (!station_needed[s]) continue;  // never enters the scene
    upsamplers[s].emplace(up_taps, up_factor);
    if (station_offset[s] != 0.0) {
      mixers[s].emplace(station_offset[s], fm::kRfRate);
    }
  }
  std::vector<channel::AwgnSource> noise;
  std::vector<rx::Tuner> tuners;
  noise.reserve(sc.receivers.size());
  tuners.reserve(sc.receivers.size());
  std::vector<dsp::cvec> iq(sc.receivers.size());
  for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
    const ScenarioReceiver& rx = sc.receivers[r];
    noise.emplace_back(receiver_noise_floor(rx),
                       units::Hertz{fm::kChannelSpacingHz}, fm::kRfRate,
                       plan.receiver_noise_seed[r]);
    rx::TunerConfig tuner_cfg;
    tuner_cfg.offset_hz = rx.tune_offset.raw();
    tuners.emplace_back(tuner_cfg);
    iq[r].reserve(padded);
  }

  // ---- The shared RF scene, block by block. --------------------------------
  // Full blocks stream as spans straight out of the cached renders (shared,
  // read-only — no per-station copies); only the final partial block is
  // staged into one shared scratch, reused arena-style across stations. The
  // tail past the render holds the final sample: the FM carrier continues at
  // its last phase (the discriminator sees silence), where the old padded
  // copies snapped to the unrelated constant (1, 0) and clicked at the seam.
  std::vector<dsp::cvec> st_rf(num_stations);
  std::vector<dsp::cvec> reflected(sc.tags.size());
  std::vector<char> tag_active(sc.tags.size(), 0);
  dsp::cvec scratch;
  if (padded != station_len) scratch.resize(kBlockMpx);
  result.scene.scene_scratch_bytes = scratch.size() * sizeof(dsp::cfloat);
  dsp::cvec rf;
  std::size_t block_index = 0;
  for (std::size_t start = 0; start < padded; start += kBlockMpx, ++block_index) {
    // The segment owning this block (blocks past the nominal end — padding —
    // stay on the last segment's geometry).
    const std::size_t seg =
        num_segments == 1
            ? 0
            : std::min(num_segments - 1, block_index / blocks_per_segment);
    for (std::size_t s = 0; s < num_stations; ++s) {
      if (!station_needed[s]) continue;
      const dsp::cvec& src = result.station_renders[s]->iq;
      std::span<const dsp::cfloat> st_block(scratch);
      if (start + kBlockMpx <= station_len) {
        st_block = std::span<const dsp::cfloat>(src.data() + start, kBlockMpx);
      } else {
        // The last block is partial: stage the remaining render samples and
        // hold the final one through the pad.
        const std::size_t have = station_len - start;
        std::copy(src.begin() + static_cast<std::ptrdiff_t>(start), src.end(),
                  scratch.begin());
        std::fill(scratch.begin() + static_cast<std::ptrdiff_t>(have),
                  scratch.end(), src.back());
      }
      st_rf[s] = upsamplers[s]->process(st_block);
      if (mixers[s]) mixers[s]->process_inplace(st_rf[s]);
    }

    for (std::size_t t = 0; t < tags.size(); ++t) {
      TagState& st = tags[t];
      if (!tag_needed[t]) continue;  // stays zero in tag_active
      tag_active[t] =
          start < st.active_end && start + kBlockMpx > st.active_begin;
      if (!tag_active[t]) continue;
      const std::span<const float> bb_block(st.baseband.data() + start, kBlockMpx);
      const dsp::cvec& incident =
          st_rf[static_cast<std::size_t>(sel[seg][t])];
      dsp::cvec& b = reflected[t];
      b = st.subcarrier->process(bb_block);
      // reflected = B(t) x incident (the tag's selected station in this
      // segment — a handoff moves the reflection to the new station's
      // carrier), with motion fading on the tag path.
      for (std::size_t i = 0; i < incident.size(); ++i) b[i] *= incident[i];
      if (sc.tags[t].fading) {
        if (num_segments > 1 && st.fading_segment != seg) {
          // Segmented timelines re-derive the fading stream per segment
          // (derive_seed(fseed, segment)): the walk's geometry change is
          // what decorrelates the fade — one process streaming across the
          // whole run would keep a long walk on a single coherent fade.
          st.fading = std::make_unique<channel::FadingProcess>(
              *sc.tags[t].fading, fm::kRfRate,
              derive_seed(st.fading_seed, seg));
          st.fading_segment = seg;
        }
        st.fading->apply(b);
      }
      // The switch is off outside the burst window: no reflection at all.
      const std::size_t lo =
          st.active_begin > start ? (st.active_begin - start) * up_factor : 0;
      const std::size_t hi = st.active_end < start + kBlockMpx
                                 ? (st.active_end - start) * up_factor
                                 : b.size();
      std::fill(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(lo),
                dsp::cfloat(0.0F, 0.0F));
      std::fill(b.begin() + static_cast<std::ptrdiff_t>(hi), b.end(),
                dsp::cfloat(0.0F, 0.0F));
    }

    rf.resize(st_rf[0].size());
    for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
      channel::scale_into(rf, st_rf[0], plan.g_direct[seg][r][0]);
      for (std::size_t s = 1; s < num_stations; ++s) {
        if (!station_needed[s]) continue;
        channel::accumulate_scaled(rf, st_rf[s], plan.g_direct[seg][r][s]);
      }
      for (std::size_t t = 0; t < tags.size(); ++t) {
        if (!tag_active[t]) continue;
        channel::accumulate_scaled(rf, reflected[t], plan.g_back[seg][r][t]);
      }
      noise[r].add_to(rf);
      const dsp::cvec tuned = tuners[r].process(rf);
      iq[r].insert(iq[r].end(), tuned.begin(), tuned.end());
    }
  }

  // ---- Demodulation and per-tag routing. -----------------------------------
  result.receivers.resize(sc.receivers.size());
  std::vector<TagLinkReport> best(sc.tags.size());
  std::vector<char> heard(sc.tags.size(), 0);
  for (std::size_t r = 0; r < sc.receivers.size(); ++r) {
    const ScenarioReceiver& rx = sc.receivers[r];
    fm::ReceiverConfig rx_cfg;
    rx_cfg.stereo = rx.stereo_decoder;
    ReceiverCapture capture = finish_receiver_capture(
        fm::receive_fm(iq[r], rx_cfg), rx.kind, rx.phone, rx.cabin);

    ScenarioReceiverResult& rr = result.receivers[r];
    std::vector<std::size_t> routed;  // tag index per burst, demod order
    std::vector<std::size_t> routed_seg;  // segment owning each burst
    std::vector<rx::BurstSpec> bursts;
    for (std::size_t t = 0; t < sc.tags.size(); ++t) {
      const ScenarioTag& tcfg = sc.tags[t];
      if (tags[t].bits.empty()) continue;  // custom baseband: no BER to score
      if (!tags[t].transmitted) continue;  // the MAC kept this burst silent
      // The burst lives on the channel of the station its tag reflected
      // while on the air: route by the segment holding the burst midpoint.
      const std::size_t burst_seg = plan.segment_of_time(
          tags[t].burst_start_seconds + 0.5 * tags[t].burst_seconds);
      if (!tag_audible_at(
              tcfg,
              units::Hertz{
                  station_offset[static_cast<std::size_t>(sel[burst_seg][t])]},
              rx.tune_offset)) {
        continue;
      }
      rx::BurstSpec burst;
      burst.rate = tcfg.rate;
      burst.bits = tags[t].bits;
      burst.start_seconds = tags[t].burst_start_seconds;
      burst.packet_bits = tcfg.packet_bits;
      routed.push_back(t);
      routed_seg.push_back(burst_seg);
      bursts.push_back(std::move(burst));
    }
    const std::vector<rx::BurstReport> reports =
        rx::demodulate_bursts(capture.mono, bursts);
    for (std::size_t b = 0; b < reports.size(); ++b) {
      const std::size_t t = routed[b];
      TagLinkReport link;
      link.tag_index = t;
      link.receiver_index = r;
      link.burst = reports[b];
      link.backscatter_rx_power_dbm = plan.rx_power_dbm[routed_seg[b]][r][t];
      link.goodput_bps = static_cast<double>(link.burst.bits_delivered) /
                         sc.duration.raw();
      if (!heard[t] || link.burst.ber.ber < best[t].burst.ber.ber) {
        best[t] = link;
        heard[t] = 1;
      }
      rr.links.push_back(std::move(link));
    }

    // RDS tag links: each audible RadioText burst is decoded out of this
    // receiver's post-demod MPX over its on-air window only (so the
    // reflected station's continuous RDS outside the burst cannot steal
    // carrier/timing lock). BLER plays the role FSK BER plays in best-link
    // selection, and goodput counts the info bits of clean blocks.
    for (std::size_t t = 0; t < sc.tags.size(); ++t) {
      const TagState& st = tags[t];
      if (st.rds_bits.empty() || !st.transmitted) continue;
      const std::size_t burst_seg = plan.segment_of_time(
          st.burst_start_seconds + 0.5 * st.burst_seconds);
      if (!tag_audible_at(
              sc.tags[t],
              units::Hertz{
                  station_offset[static_cast<std::size_t>(sel[burst_seg][t])]},
              rx.tune_offset)) {
        continue;
      }
      TagLinkReport link;
      link.tag_index = t;
      link.receiver_index = r;
      link.rds = rx::decode_rds_link(
          capture.fm.mpx, fm::kMpxRate, st.burst_start_seconds,
          st.burst_seconds + kRdsDecodeSlackSeconds);
      link.burst.ber.ber = link.rds->bler;
      link.burst.bits_delivered = link.rds->blocks_ok * 16;
      link.backscatter_rx_power_dbm = plan.rx_power_dbm[burst_seg][r][t];
      link.goodput_bps = static_cast<double>(link.burst.bits_delivered) /
                         sc.duration.raw();
      if (!heard[t] || link.burst.ber.ber < best[t].burst.ber.ber) {
        best[t] = link;
        heard[t] = 1;
      }
      rr.links.push_back(std::move(link));
    }

    // The tuned channel's own broadcast RDS: the scene-station PS name any
    // unmodified RDS radio parked on this channel displays.
    const fm::StationConfig* tuned_station = nullptr;
    if (multi) {
      for (std::size_t s = 0; s < num_stations; ++s) {
        if (std::abs(station_offset[s] - rx.tune_offset.raw()) < 1.0) {
          tuned_station = &sc.stations[s].config;
          break;
        }
      }
    } else if (std::abs(rx.tune_offset.raw()) < 1.0) {
      tuned_station = &sc.station;
    }
    if (tuned_station != nullptr && tuned_station->rds_level > 0.0) {
      rr.station_rds = rx::decode_rds_link(capture.fm.mpx, fm::kMpxRate);
    }
    if (config_.keep_captures) rr.capture = std::move(capture);
  }
  for (std::size_t t = 0; t < sc.tags.size(); ++t) {
    if (!heard[t]) continue;
    result.aggregate_goodput_bps += best[t].goodput_bps;
    result.best_per_tag.push_back(best[t]);
  }
  return result;
}

std::vector<ScenarioResult> ScenarioEngine::run_many(
    SweepRunner& runner, const std::vector<Scenario>& scenarios) const {
  return runner.map(scenarios,
                    [this](const Scenario& sc) { return run(sc); });
}

void apply_scenario_seed_policy(Scenario& scenario, std::size_t index,
                                const SweepConfig& config) {
  if (scenario.seed == 0) scenario.seed = derive_seed(config.base_seed, index);
  // Station seeds left at the 0 sentinel are pinned sweep-wide when sharing
  // (one fm::StationCache render per station across every point), otherwise
  // derived from the scenario's own seed (fresh content per point).
  const std::uint64_t root =
      config.share_station_renders ? config.base_seed : scenario.seed;
  if (scenario.station.seed == 0) scenario.station.seed = root;
  for (std::size_t s = 0; s < scenario.stations.size(); ++s) {
    if (scenario.stations[s].config.seed == 0) {
      scenario.stations[s].config.seed = derive_seed(root, kStationSeedStream + s);
    }
  }
}

std::vector<ScenarioResult> run_scenario_sweep(SweepRunner& runner,
                                               const ScenarioEngine& engine,
                                               std::vector<Scenario> scenarios) {
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    apply_scenario_seed_policy(scenarios[i], i, runner.config());
  }
  return runner.map(scenarios,
                    [&engine](const Scenario& sc) { return engine.run(sc); });
}

std::vector<Series> run_scenario_grid(SweepRunner& runner,
                                      const ScenarioEngine& engine,
                                      const std::vector<ScenarioGridRow>& rows,
                                      const std::vector<double>& xs) {
  struct Cell {
    Scenario scenario;
    const ScenarioGridRow* row;
    double x;
  };
  std::vector<Cell> cells;
  cells.reserve(rows.size() * xs.size());
  for (const ScenarioGridRow& row : rows) {
    if (!row.make_scenario || !row.eval) {
      throw std::invalid_argument(
          "run_scenario_grid: row needs make_scenario and eval");
    }
    for (const double x : xs) {
      cells.push_back(Cell{row.make_scenario(x), &row, x});
      apply_scenario_seed_policy(cells.back().scenario, cells.size() - 1,
                                 runner.config());
    }
  }

  const std::vector<double> values = runner.map(cells, [&](const Cell& cell) {
    return cell.row->eval(engine.run(cell.scenario), cell.x);
  });

  std::vector<Series> series;
  series.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    Series s;
    s.label = rows[r].label;
    s.values.assign(values.begin() + static_cast<std::ptrdiff_t>(r * xs.size()),
                    values.begin() + static_cast<std::ptrdiff_t>((r + 1) * xs.size()));
    series.push_back(std::move(s));
  }
  return series;
}

}  // namespace fmbs::core
