// Experiment harness: the measurement procedures of the paper's evaluation
// (section 5), packaged so each bench binary is a thin parameter sweep.
// Every function builds a SystemConfig, runs the physical simulation and
// applies the paper's measurement methodology for that figure.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "audio/pesq_like.h"
#include "audio/program.h"
#include "channel/fading.h"
#include "core/config.h"
#include "core/simulator.h"
#include "rx/fsk_demod.h"
#include "tag/coding.h"
#include "tag/fsk.h"

namespace fmbs::core {

/// Tag content level relative to full deviation for overlay content.
inline constexpr double kOverlayLevel = 0.95;

/// Common experiment knobs (one struct so benches read like the paper).
struct ExperimentPoint {
  units::Dbm tag_power{-30.0};
  units::Feet distance{4.0};
  audio::ProgramGenre genre = audio::ProgramGenre::kNews;
  bool stereo_station = true;
  ReceiverKind receiver = ReceiverKind::kPhone;
  std::uint64_t seed = 1;
  /// Station content seed; 0 follows `seed`. SweepRunner pins this to the
  /// sweep's base seed so every point shares one cached station render while
  /// tag content and channel noise (derived from `seed`) stay independent.
  std::uint64_t station_seed = 0;
};

/// Builds a fully-populated SystemConfig for a measurement point.
SystemConfig make_system(const ExperimentPoint& point);

// ---- Micro-benchmarks (Fig. 6 / Fig. 7 / Fig. 14a) ------------------------

/// Backscatters a single tone over an unmodulated carrier and returns the
/// received audio SNR (dB) — the paper's Fig. 6 ratio P_tone / (P_band -
/// P_tone). stereo_band places the tone in the L-R stream (with pilot).
double run_tone_snr(const ExperimentPoint& point, units::Hertz tone,
                    bool stereo_band = false,
                    units::Seconds duration = units::Seconds{1.5});

// ---- Data (Fig. 8 / Fig. 9 / Fig. 10 / Fig. 17b) ---------------------------

/// Overlay-backscatter BER at a rate over a program-playing station.
rx::BerResult run_overlay_ber(const ExperimentPoint& point, tag::DataRate rate,
                              std::size_t num_bits);

/// Overlay BER with N-fold repetition + maximal-ratio combining.
rx::BerResult run_overlay_ber_mrc(const ExperimentPoint& point, tag::DataRate rate,
                                  std::size_t num_bits, std::size_t repetitions);

/// Stereo-backscatter BER: data rides the L-R stream. When
/// `point.stereo_station` is false the tag also injects the 19 kHz pilot
/// (mono-to-stereo conversion).
rx::BerResult run_stereo_ber(const ExperimentPoint& point, tag::DataRate rate,
                             std::size_t num_bits);

/// Overlay BER with forward error correction (the paper's section-8 range
/// extension). The payload is FEC-encoded + interleaved before modulation;
/// the returned BER is measured on the decoded payload.
rx::BerResult run_overlay_ber_coded(const ExperimentPoint& point,
                                    tag::DataRate rate, std::size_t payload_bits,
                                    tag::FecScheme scheme);

// ---- Audio quality (Fig. 11 / Fig. 12 / Fig. 13 / Fig. 14b) ---------------

/// Overlay audio: tag speech over the station program; returns the
/// PESQ-like score of the received mono audio against the tag's speech.
double run_overlay_pesq(const ExperimentPoint& point,
                        units::Seconds duration = units::Seconds{3.0});

/// Stereo audio backscatter PESQ (Fig. 13a/b depending on stereo_station).
double run_stereo_pesq(const ExperimentPoint& point,
                       units::Seconds duration = units::Seconds{3.0});

/// Cooperative backscatter PESQ: two phones, MIMO cancellation (Fig. 12).
double run_cooperative_pesq(const ExperimentPoint& point,
                            units::Seconds duration = units::Seconds{3.0});

// ---- Smart fabric (Fig. 17b) ----------------------------------------------

/// BER with the t-shirt antenna under a mobility pattern; `mrc_repetitions`
/// of 1 disables combining (the paper's 1.6 kbps bar uses 2x MRC).
/// `station_seed` of 0 follows `seed` (see ExperimentPoint::station_seed).
rx::BerResult run_fabric_ber(channel::Mobility mobility, tag::DataRate rate,
                             std::size_t num_bits, std::size_t mrc_repetitions,
                             std::uint64_t seed = 1,
                             std::uint64_t station_seed = 0);

// ---- Output formatting ------------------------------------------------------

/// One plotted series: label + y values (parallel to the x axis).
struct Series {
  std::string label;
  std::vector<double> values;
};

/// Prints a paper-style table: header, x column, one column per series.
void print_table(std::ostream& os, const std::string& title,
                 const std::string& x_label, const std::vector<double>& xs,
                 const std::vector<Series>& series, int precision = 3);

}  // namespace fmbs::core
