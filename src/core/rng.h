// Deterministic seed derivation for parallel sweeps. Every ExperimentPoint
// in a grid gets its own statistically independent seed computed from the
// sweep's base seed and the point's grid index — never from execution order
// or thread identity — so results are bit-identical at any thread count.
#pragma once

#include <cstdint>

namespace fmbs::core {

/// SplitMix64 finalizer over (base, index). Adjacent indices decorrelate
/// fully, and index 0 does not collapse onto the base seed itself.
constexpr std::uint64_t derive_seed(std::uint64_t base_seed,
                                    std::uint64_t index) {
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace fmbs::core
