// Multi-tag medium access — paper section 8: "We can also use MAC protocols
// similar to the Aloha protocol to enable multiple devices to share the same
// FM band." Monte-Carlo simulation of unslotted/slotted Aloha for tags
// sharing one backscatter channel, plus the paper's other option of
// spreading tags across distinct unused channels.
#pragma once

#include <cstdint>
#include <vector>

#include "core/units.h"

namespace fmbs::core {

/// Aloha simulation parameters.
struct AlohaConfig {
  std::size_t num_tags = 10;
  units::Seconds frame{0.5};        // one backscatter packet
  units::Hertz per_tag_rate{0.2};   // Poisson transmission attempts per tag
  units::Seconds duration{3600.0};  // simulated time
  bool slotted = false;
  std::size_t num_channels = 1;     // tags hash onto distinct f_back values
  std::uint64_t seed = 7;
};

/// Simulation outcome.
struct AlohaResult {
  std::size_t attempts = 0;
  std::size_t successes = 0;
  double throughput = 0.0;          // successful frames per frame-time
  double success_probability = 0.0; // successes / attempts
  double offered_load = 0.0;        // G, attempts per frame-time per channel
};

/// Runs the Monte-Carlo MAC simulation.
AlohaResult simulate_aloha(const AlohaConfig& config);

/// Closed-form expectations for validation: pure Aloha S = G e^{-2G},
/// slotted S = G e^{-G}.
double aloha_theoretical_throughput(double offered_load, bool slotted);

}  // namespace fmbs::core
