// Hybrid PHY/analytic fleet engine — the paper's section-8 metro-scale
// story at 10^4..10^5 tags, where rendering every tag through the
// signal-level ScenarioEngine is off the table (10^5 tags x 60 s of
// 2.4 MHz complex baseband is days of synthesis for one capacity point).
//
// The observation that makes the hybrid exact-enough: at city scale almost
// every burst's fate is decided before any signal exists. The whole-city
// MAC schedule resolves deterministically up front (resolve_scenario_plan),
// after which each (tag, receiver) link falls into one of three buckets:
//
//  * uncontested — no temporal/spectral contact with any other burst, or
//    every contact is captured (the interferer sits >= capture_margin_db
//    below this link at the receiver and folds into the SINR). Resolved by
//    the calibrated closed-form FSK curve (rx/analytic_fsk.h) on the same
//    link-budget SINR the scene would have realized.
//  * certainly lost — a payload overlap of at least one symbol with an
//    interferer the capture margin cannot save it from. Counted as a
//    collision loss without rendering a sample.
//  * contested — grazing overlaps and near-capture collisions, where the
//    outcome genuinely depends on waveforms. Only these drop into the
//    signal-level ScenarioEngine, as minimal sub-scenes covering one
//    collision cluster each, with every seed pinned from the plan.
//
// Everything is deterministic: the plan, the classification, the analytic
// curve and the sub-scene seeds are pure functions of the Scenario, so a
// fleet sweep is bit-identical at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/scenario.h"
#include "core/sweep_runner.h"

namespace fmbs::core {

/// How one (tag, receiver) link was resolved.
enum class FleetLinkResolution {
  /// No contention (or all interferers captured): calibrated analytic FSK
  /// curve on the link-budget SINR.
  kAnalyticClear,
  /// Payload collision beyond capture: certain loss, no PHY needed.
  kAnalyticCollision,
  /// Contested: resolved by a signal-level sub-scene render.
  kPhyCluster,
};

const char* to_string(FleetLinkResolution r);

/// Outcome of one (tag, receiver) link.
struct FleetLink {
  std::size_t tag_index = 0;
  std::size_t receiver_index = 0;
  FleetLinkResolution resolution = FleetLinkResolution::kAnalyticClear;
  bool delivered = false;  ///< every packet (RDS: block) decoded clean
  double ber = 0.0;        ///< bit error rate (RDS links: block error rate)
  /// In-channel SINR the analytic curve consumed (sideband power over noise
  /// + co-channel stations + captured interferers); for PHY links the
  /// interference-free SNR, for reference.
  double snr_db = 0.0;
  double rx_power_dbm = 0.0;  ///< in-channel sideband power at this receiver
  std::size_t bits_delivered = 0;
  double goodput_bps = 0.0;  ///< correct payload bits per scenario second
  /// MAC queueing delay (resolved start minus nominal start) plus the burst
  /// on-air time: how long the tag's data took to arrive.
  double latency_seconds = 0.0;
};

/// What the hybrid split looked like for one run — the bench derives its
/// speedup accounting from these.
struct FleetStats {
  std::size_t links_total = 0;
  std::size_t analytic_clear = 0;
  std::size_t analytic_collision = 0;
  std::size_t phy_links = 0;
  std::size_t phy_clusters = 0;        ///< sub-scenes rendered
  std::size_t phy_tags_rendered = 0;   ///< tag copies placed in sub-scenes
  double phy_subscene_seconds = 0.0;   ///< summed sub-scene durations
};

struct FleetEngineConfig {
  /// Power advantage (at the receiver) at or above which this link
  /// captures over an interfering burst: the interferer folds into the SINR
  /// instead of forcing a PHY render. 18 dB keeps the folded term a <2%
  /// noise-power perturbation.
  units::Db capture_margin{18.0};
  /// Width of the ambiguous band below the capture margin. A payload
  /// collision whose power gap falls inside
  /// (margin - band, margin) could go either way -> PHY; at or below
  /// margin - band the loss is certain -> analytic.
  units::Db capture_ambiguity_band{6.0};
  /// Sub-scene durations round up to this quantum so collision clusters of
  /// similar span share one fm::StationCache render per station.
  units::Seconds subscene_quantum{0.25};
  /// Engine options for the PHY sub-scenes (keep_captures is forced off).
  ScenarioEngineConfig phy;
};

struct FleetResult {
  /// MAC outcome per tag, exactly as ScenarioEngine would report it (the
  /// schedule is shared through resolve_scenario_plan).
  std::vector<TagMacReport> mac;
  /// Every audible (tag, receiver) link.
  std::vector<FleetLink> links;
  /// Best (lowest-BER) link per tag; tags heard by no receiver are absent.
  std::vector<FleetLink> best_per_tag;
  /// Sum of best-per-tag goodput: the deployment's delivered bit rate.
  double aggregate_goodput_bps = 0.0;
  /// Mean latency over delivered best links (0 when none delivered).
  double mean_delivery_latency_seconds = 0.0;
  FleetStats stats;
};

/// The hybrid engine. Stateless between runs, like ScenarioEngine.
/// Restrictions versus the full engine: custom-baseband tags are rejected
/// (they have no analytic error model and no burst to classify), and RDS
/// tags always resolve through a PHY sub-scene (no closed-form BLER curve).
class FleetEngine {
 public:
  explicit FleetEngine(FleetEngineConfig config = {}) : config_(config) {}

  const FleetEngineConfig& config() const { return config_; }

  /// Runs one fleet scenario. Throws std::invalid_argument on scenarios the
  /// hybrid cannot represent (custom-baseband tags) and on everything
  /// resolve_scenario_plan rejects.
  FleetResult run(const Scenario& scenario) const;

 private:
  FleetEngineConfig config_;
};

/// Runs fleet scenarios across the runner's pool after applying the sweep
/// seed policy to each (the exact counterpart of run_scenario_sweep).
/// Ordered and bit-identical at any thread count.
std::vector<FleetResult> run_fleet_sweep(SweepRunner& runner,
                                         const FleetEngine& engine,
                                         std::vector<Scenario> scenarios);

}  // namespace fmbs::core
