// The end-to-end physical simulation:
//
//   station MPX/IQ (240 kHz) --x10--> RF scene (2.4 MHz complex baseband)
//        |                               |
//        |        tag baseband --> subcarrier B(t) --> reflected = B x RF
//        |                               |
//        +--> direct path ---------------+--> + AWGN --> tuner(s) --> FM rx
//
// The backscatter multiplication happens sample-by-sample on the RF signal,
// exactly as the tag's switch does it; no audio-domain shortcut is taken.
// Processing is block-streamed (0.1 s blocks) so long captures never hold
// the 2.4 MHz stream in memory.
//
// Since the multi-station refactor there is exactly ONE physics path:
// simulate() is a thin bridge that builds a one-tag, one-station
// core::Scenario (see core/scenario.h) and runs the ScenarioEngine; its
// output is sample-for-sample identical to the historical hand-rolled loop.
#pragma once

#include <memory>
#include <optional>

#include "audio/audio_buffer.h"
#include "channel/link_budget.h"
#include "core/config.h"
#include "dsp/types.h"
#include "fm/receiver.h"
#include "fm/transmitter.h"

namespace fmbs::core {

/// Everything captured at one receiver.
struct ReceiverCapture {
  fm::ReceiverOutput fm;        // raw FM receiver output
  audio::MonoBuffer mono;       // mono audio after the device chain
  audio::StereoBuffer stereo;   // stereo audio after the device chain
};

/// Full simulation result. The station render is shared and read-only: when
/// the fm::StationCache is enabled (the default), concurrent sweep points
/// listening to the same station all point at one render.
struct SimulationResult {
  ReceiverCapture backscatter_rx;               // tuned to fc + f_back
  std::optional<ReceiverCapture> ambient_rx;    // tuned to fc (cooperative)
  std::shared_ptr<const fm::StationSignal> station;  // ground truth
  channel::LinkBudget budget;
  double backscatter_rx_power_dbm = 0.0;        // in-channel backscatter power
};

/// Runs the physical simulation. `tag_baseband` is FM_back at the MPX rate
/// (see tag/baseband.h composers); it is zero-padded or truncated to the
/// station duration. Throws std::invalid_argument on inconsistent rates.
SimulationResult simulate(const SystemConfig& config, const dsp::rvec& tag_baseband,
                          units::Seconds duration);

/// Applies the receiving device's audio chain (phone record path or car
/// cabin acoustics) to a raw FM receiver output. Shared by the single-tag
/// simulator and the multi-tag core::ScenarioEngine.
ReceiverCapture finish_receiver_capture(const fm::ReceiverOutput& out,
                                        ReceiverKind kind,
                                        const rx::PhoneChainConfig& phone,
                                        const rx::CabinConfig& cabin);

}  // namespace fmbs::core
