// Fixed-size worker pool backing core::SweepRunner. Two primitives:
//
//   * submit(job)        — fire-and-forget enqueue of a void() closure,
//   * parallel_for(n,fn) — run fn(i) for i in [0, n); the calling thread
//                          participates, indices are handed out dynamically,
//                          and the first exception is rethrown to the caller.
//
// Determinism contract: parallel_for only decides *when* an index runs,
// never what it computes — callers must key all randomness off the index
// (see core/rng.h), at which point any thread count yields identical bits.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fmbs::core {

class ThreadPool {
 public:
  /// threads == 0 picks one worker per hardware thread.
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) threads = default_thread_count();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  static std::size_t default_thread_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }

  void submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      jobs_.push_back(std::move(job));
    }
    cv_.notify_one();
  }

  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    auto state = std::make_shared<ForState>();
    state->n = n;
    state->fn = &fn;

    // One helper per worker (capped at n-1: the caller takes a share too).
    const std::size_t helpers = std::min(size(), n > 0 ? n - 1 : 0);
    for (std::size_t i = 0; i < helpers; ++i) {
      submit([state] {
        state->active.fetch_add(1, std::memory_order_acq_rel);
        drain(*state);
        if (state->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(state->mutex);
          state->cv.notify_all();
        }
      });
    }
    drain(*state);

    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->n ||
             (state->stop.load(std::memory_order_acquire) &&
              state->active.load(std::memory_order_acquire) == 0);
    });
    if (state->error) std::rethrow_exception(state->error);
  }

 private:
  struct ForState {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> active{0};
    std::atomic<bool> stop{false};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;  // guarded by mutex
  };

  // Pulls indices until the range is exhausted or a sibling failed. A helper
  // that starts after completion sees next >= n and exits without touching
  // fn, so the state outliving parallel_for is safe (fn never dangles).
  static void drain(ForState& state) {
    while (!state.stop.load(std::memory_order_acquire)) {
      const std::size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state.n) break;
      try {
        (*state.fn)(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(state.mutex);
          if (!state.error) state.error = std::current_exception();
        }
        state.stop.store(true, std::memory_order_release);
        {
          std::lock_guard<std::mutex> lock(state.mutex);
          state.cv.notify_all();
        }
        return;
      }
      if (state.done.fetch_add(1, std::memory_order_acq_rel) + 1 == state.n) {
        std::lock_guard<std::mutex> lock(state.mutex);
        state.cv.notify_all();
        return;
      }
    }
  }

  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return stopping_ || !jobs_.empty(); });
        if (jobs_.empty()) return;  // stopping_ with an empty queue
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      job();
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace fmbs::core
