// End-to-end system configuration: one struct per physical element of the
// paper's deployment — the ambient station, the backscatter tag, the radio
// scene between them, and the receiving device.
#pragma once

#include <cstdint>
#include <optional>

#include "channel/fading.h"
#include "channel/link_budget.h"
#include "fm/constants.h"
#include "fm/stereo_decoder.h"
#include "fm/transmitter.h"
#include "rx/car.h"
#include "rx/phone_chain.h"
#include "tag/antenna.h"
#include "tag/baseband.h"
#include "tag/subcarrier.h"

namespace fmbs::core {

/// Which device decodes the backscatter channel.
enum class ReceiverKind { kPhone, kCar };

/// Backscatter tag configuration.
struct TagConfig {
  tag::SubcarrierConfig subcarrier;
  tag::AntennaModel antenna = tag::poster_dipole_antenna();
  tag::CoopPilotConfig coop_pilot;
};

/// Radio scene: the paper's two sweep knobs plus noise/fading.
struct SceneConfig {
  /// Ambient FM power measured at the tag — the paper's power knob.
  units::Dbm tag_power{-30.0};
  /// Power of the unshifted station at the receiver; unset = same as at the
  /// tag (the paper keeps both devices equidistant from the transmitter).
  std::optional<units::Dbm> direct_power;
  /// Tag-to-receiver distance — the paper's distance knob.
  units::Feet tag_rx_distance{4.0};
  /// Receiver noise floor in the 200 kHz channel.
  units::Dbm rx_noise_200khz = channel::ReceiverNoise::kPhonePer200kHz;
  channel::LinkBudgetConfig link;
  std::optional<channel::FadingConfig> fading;
  std::uint64_t noise_seed = 42;
};

/// The complete simulated system.
struct SystemConfig {
  fm::StationConfig station;
  TagConfig tag;
  SceneConfig scene;
  ReceiverKind receiver = ReceiverKind::kPhone;
  rx::PhoneChainConfig phone;
  rx::CabinConfig cabin;
  fm::StereoDecoderConfig stereo_decoder;
  /// Also capture a second receiver tuned to the ambient station (phone 1 of
  /// cooperative backscatter).
  bool capture_ambient_receiver = false;
};

}  // namespace fmbs::core
