#include "dsp/correlate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"

namespace fmbs::dsp {

std::vector<double> cross_correlate(std::span<const float> a,
                                    std::span<const float> b,
                                    std::size_t max_lag) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("cross_correlate: empty input");
  }
  std::vector<double> r(2 * max_lag + 1, 0.0);
  const auto la = static_cast<long>(a.size());
  const auto lb = static_cast<long>(b.size());
  for (long k = -static_cast<long>(max_lag); k <= static_cast<long>(max_lag); ++k) {
    double acc = 0.0;
    const long n_begin = std::max(0L, -k);
    const long n_end = std::min(la, lb - k);
    for (long n = n_begin; n < n_end; ++n) {
      acc += static_cast<double>(a[static_cast<std::size_t>(n)]) *
             static_cast<double>(b[static_cast<std::size_t>(n + k)]);
    }
    r[static_cast<std::size_t>(k + static_cast<long>(max_lag))] = acc;
  }
  return r;
}

std::vector<double> cross_correlate_fft(std::span<const float> a,
                                        std::span<const float> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("cross_correlate_fft: empty input");
  }
  const std::size_t full = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(full);
  cvec fa(n), fb(n);
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = cfloat(a[i], 0.0F);
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = cfloat(b[i], 0.0F);
  FftPlan plan(n);
  plan.forward(fa);
  plan.forward(fb);
  for (std::size_t i = 0; i < n; ++i) fa[i] = std::conj(fa[i]) * fb[i];
  plan.inverse(fa);
  // fa now holds circular correlation; unwrap so index i = lag i-(lb-1).
  std::vector<double> out(full);
  const std::size_t lb = b.size();
  for (std::size_t i = 0; i < full; ++i) {
    const long lag = static_cast<long>(i) - static_cast<long>(lb - 1);
    const std::size_t src = lag >= 0 ? static_cast<std::size_t>(lag)
                                     : n - static_cast<std::size_t>(-lag);
    out[i] = static_cast<double>(fa[src].real());
  }
  return out;
}

DelayEstimate estimate_delay(std::span<const float> a, std::span<const float> b,
                             std::size_t max_lag) {
  const std::vector<double> r = cross_correlate(a, b, max_lag);
  const auto it = std::max_element(r.begin(), r.end(),
                                   [](double x, double y) {
                                     return std::abs(x) < std::abs(y);
                                   });
  const auto peak_idx = static_cast<std::size_t>(it - r.begin());
  double delay = static_cast<double>(peak_idx) - static_cast<double>(max_lag);

  // Parabolic interpolation around the peak for sub-sample resolution.
  if (peak_idx > 0 && peak_idx + 1 < r.size()) {
    const double y0 = r[peak_idx - 1];
    const double y1 = r[peak_idx];
    const double y2 = r[peak_idx + 1];
    const double denom = y0 - 2.0 * y1 + y2;
    if (std::abs(denom) > 1e-12) {
      delay += 0.5 * (y0 - y2) / denom;
    }
  }

  double ea = 0.0, eb = 0.0;
  for (const float v : a) ea += static_cast<double>(v) * v;
  for (const float v : b) eb += static_cast<double>(v) * v;
  const double norm = std::sqrt(ea * eb);
  DelayEstimate est;
  est.delay_samples = delay;
  est.peak_correlation = norm > 0.0 ? std::abs(*it) / norm : 0.0;
  return est;
}

std::vector<float> shift_signal(std::span<const float> x, long shift) {
  std::vector<float> out(x.size(), 0.0F);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const long j = static_cast<long>(i) - shift;
    if (j >= 0 && j < static_cast<long>(x.size())) {
      out[i] = x[static_cast<std::size_t>(j)];
    }
  }
  return out;
}

}  // namespace fmbs::dsp
