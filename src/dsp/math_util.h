// Small numeric helpers used throughout the library: dB conversions, unit
// conversions, descriptive statistics and CDF extraction for bench output.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace fmbs::dsp {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Converts a linear power ratio to decibels. Zero or negative input clamps
/// to -300 dB rather than producing -inf/NaN so downstream sorting and
/// printing stay well defined.
double db_from_power_ratio(double ratio);

/// Converts decibels to a linear power ratio.
double power_ratio_from_db(double db);

/// Converts a linear amplitude ratio to decibels (20 log10).
double db_from_amplitude_ratio(double ratio);

/// Converts decibels to a linear amplitude ratio.
double amplitude_ratio_from_db(double db);

/// Converts power in dBm to watts.
double watts_from_dbm(double dbm);

/// Converts power in watts to dBm. Clamps at -300 dBm for non-positive input.
double dbm_from_watts(double watts);

/// Normalized sinc: sin(pi x) / (pi x), with sinc(0) = 1.
double sinc(double x);

/// Arithmetic mean of a sequence; 0 for an empty sequence.
double mean(std::span<const float> x);
double mean(std::span<const double> x);

/// Population standard deviation; 0 for sequences shorter than 2.
double stddev(std::span<const float> x);
double stddev(std::span<const double> x);

/// Mean of squares (signal power) of a real sequence.
double mean_square(std::span<const float> x);

/// Root-mean-square of a real sequence.
double rms(std::span<const float> x);

/// Linear interpolated p-quantile (p in [0,1]) of a copy-sorted sequence.
/// Throws std::invalid_argument when the sequence is empty.
double quantile(std::span<const double> x, double p);

/// One (value, cumulative probability) point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double probability = 0.0;
};

/// Builds an empirical CDF from unsorted samples: sorted values paired with
/// probabilities (i+1)/N. Useful for reproducing the paper's CDF figures.
std::vector<CdfPoint> empirical_cdf(std::span<const double> samples);

/// Values of the empirical CDF at the requested probabilities (for compact
/// table output). Probabilities outside [0,1] throw std::invalid_argument.
std::vector<double> cdf_at(std::span<const double> samples,
                           std::span<const double> probabilities);

}  // namespace fmbs::dsp
