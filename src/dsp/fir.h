// FIR design (windowed-sinc, Kaiser-sized) and streaming FIR filters,
// including polyphase decimators and interpolators used by the RF <-> MPX
// <-> audio rate-conversion chain.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "dsp/types.h"
#include "dsp/window.h"

namespace fmbs::dsp {

/// Designs a linear-phase low-pass FIR with unity DC gain.
/// cutoff is normalized to the sample rate (0 < cutoff < 0.5).
std::vector<float> fir_design_lowpass(std::size_t num_taps, double cutoff,
                                      WindowType window = WindowType::kHamming);

/// Designs a high-pass FIR (spectral inversion of the low-pass);
/// num_taps is forced odd internally for a well-defined Nyquist response.
std::vector<float> fir_design_highpass(std::size_t num_taps, double cutoff,
                                       WindowType window = WindowType::kHamming);

/// Designs a band-pass FIR passing [low, high] (normalized, 0 < low < high < 0.5).
std::vector<float> fir_design_bandpass(std::size_t num_taps, double low,
                                       double high,
                                       WindowType window = WindowType::kHamming);

/// Designs a Kaiser-windowed low-pass with the given stopband attenuation
/// (dB) and normalized transition width; tap count chosen automatically.
std::vector<float> fir_design_kaiser_lowpass(double cutoff, double transition_width,
                                             double attenuation_db);

/// Streaming FIR filter over float or complex samples. Maintains history
/// across process() calls so block boundaries are seamless.
template <typename Sample>
class FirFilter {
 public:
  explicit FirFilter(std::vector<float> taps) : taps_(std::move(taps)) {
    if (taps_.empty()) throw std::invalid_argument("FirFilter: empty taps");
    history_.assign(taps_.size() - 1, Sample{});
  }

  std::size_t num_taps() const { return taps_.size(); }

  /// Group delay in samples ((N-1)/2 for these linear-phase designs).
  double group_delay() const { return (static_cast<double>(taps_.size()) - 1.0) / 2.0; }

  /// Filters a block; output has the same length as the input.
  std::vector<Sample> process(std::span<const Sample> in) {
    std::vector<Sample> out(in.size());
    process_into(in, out);
    return out;
  }

  /// Filters a block into a caller-provided buffer of equal length.
  void process_into(std::span<const Sample> in, std::span<Sample> out) {
    if (out.size() != in.size()) throw std::invalid_argument("FirFilter: size mismatch");
    const std::size_t h = history_.size();
    work_.resize(h + in.size());
    std::copy(history_.begin(), history_.end(), work_.begin());
    std::copy(in.begin(), in.end(), work_.begin() + static_cast<std::ptrdiff_t>(h));
    const std::size_t nt = taps_.size();
    for (std::size_t i = 0; i < in.size(); ++i) {
      Sample acc{};
      const Sample* x = work_.data() + i;
      for (std::size_t t = 0; t < nt; ++t) acc += x[t] * taps_[nt - 1 - t];
      out[i] = acc;
    }
    if (h > 0) {
      std::copy(work_.end() - static_cast<std::ptrdiff_t>(h), work_.end(),
                history_.begin());
    }
  }

  /// Clears the filter history.
  void reset() { std::fill(history_.begin(), history_.end(), Sample{}); }

 private:
  std::vector<float> taps_;
  std::vector<Sample> history_;
  std::vector<Sample> work_;
};

/// Polyphase decimator: low-pass filter + keep-every-Mth-sample, computing
/// only the retained outputs. Input block lengths must be multiples of the
/// decimation factor.
template <typename Sample>
class FirDecimator {
 public:
  FirDecimator(std::vector<float> taps, std::size_t factor)
      : taps_(std::move(taps)), factor_(factor) {
    if (taps_.empty()) throw std::invalid_argument("FirDecimator: empty taps");
    if (factor_ == 0) throw std::invalid_argument("FirDecimator: factor must be >= 1");
    history_.assign(taps_.size() - 1, Sample{});
  }

  std::size_t factor() const { return factor_; }

  std::vector<Sample> process(std::span<const Sample> in) {
    if (in.size() % factor_ != 0) {
      throw std::invalid_argument("FirDecimator: block not a multiple of factor");
    }
    const std::size_t h = history_.size();
    work_.resize(h + in.size());
    std::copy(history_.begin(), history_.end(), work_.begin());
    std::copy(in.begin(), in.end(), work_.begin() + static_cast<std::ptrdiff_t>(h));
    const std::size_t nt = taps_.size();
    std::vector<Sample> out(in.size() / factor_);
    for (std::size_t o = 0; o < out.size(); ++o) {
      Sample acc{};
      const Sample* x = work_.data() + o * factor_;
      for (std::size_t t = 0; t < nt; ++t) acc += x[t] * taps_[nt - 1 - t];
      out[o] = acc;
    }
    if (h > 0) {
      std::copy(work_.end() - static_cast<std::ptrdiff_t>(h), work_.end(),
                history_.begin());
    }
    return out;
  }

  void reset() { std::fill(history_.begin(), history_.end(), Sample{}); }

 private:
  std::vector<float> taps_;
  std::size_t factor_;
  std::vector<Sample> history_;
  std::vector<Sample> work_;
};

/// Polyphase interpolator: insert L-1 zeros + low-pass, computed as L
/// subfilters so the zero multiplies are skipped. The prototype filter is
/// scaled by L internally to preserve signal amplitude.
template <typename Sample>
class FirInterpolator {
 public:
  FirInterpolator(std::vector<float> prototype_taps, std::size_t factor)
      : factor_(factor) {
    if (prototype_taps.empty()) {
      throw std::invalid_argument("FirInterpolator: empty taps");
    }
    if (factor_ == 0) throw std::invalid_argument("FirInterpolator: factor must be >= 1");
    // Pad the prototype to a multiple of L, scale by L (zero stuffing divides
    // the spectrum amplitude by L), then split into L polyphase branches.
    const std::size_t padded =
        (prototype_taps.size() + factor_ - 1) / factor_ * factor_;
    prototype_taps.resize(padded, 0.0F);
    const std::size_t branch_len = padded / factor_;
    branches_.assign(factor_, std::vector<float>(branch_len, 0.0F));
    for (std::size_t i = 0; i < padded; ++i) {
      branches_[i % factor_][i / factor_] =
          prototype_taps[i] * static_cast<float>(factor_);
    }
    history_.assign(branch_len - 1, Sample{});
  }

  std::size_t factor() const { return factor_; }

  std::vector<Sample> process(std::span<const Sample> in) {
    const std::size_t h = history_.size();
    work_.resize(h + in.size());
    std::copy(history_.begin(), history_.end(), work_.begin());
    std::copy(in.begin(), in.end(), work_.begin() + static_cast<std::ptrdiff_t>(h));
    std::vector<Sample> out(in.size() * factor_);
    const std::size_t bl = branches_.empty() ? 0 : branches_[0].size();
    for (std::size_t i = 0; i < in.size(); ++i) {
      const Sample* x = work_.data() + i;
      for (std::size_t p = 0; p < factor_; ++p) {
        Sample acc{};
        const std::vector<float>& b = branches_[p];
        for (std::size_t t = 0; t < bl; ++t) acc += x[t] * b[bl - 1 - t];
        out[i * factor_ + p] = acc;
      }
    }
    if (h > 0) {
      std::copy(work_.end() - static_cast<std::ptrdiff_t>(h), work_.end(),
                history_.begin());
    }
    return out;
  }

  void reset() { std::fill(history_.begin(), history_.end(), Sample{}); }

 private:
  std::size_t factor_;
  std::vector<std::vector<float>> branches_;
  std::vector<Sample> history_;
  std::vector<Sample> work_;
};

}  // namespace fmbs::dsp
