// FIR design (windowed-sinc, Kaiser-sized) and streaming FIR filters,
// including polyphase decimators and interpolators used by the RF <-> MPX
// <-> audio rate-conversion chain.
//
// The float and complex<float> inner loops dispatch to the SSE2 kernels in
// dsp/simd.h when FMBS_SIMD is on. Those kernels vectorize across OUTPUTS
// (each lane accumulates its taps serially, in the scalar order), so the
// filtered blocks are bit-identical to the scalar fallback — pinned by
// tests/dsp/test_simd_kernels.cpp.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "dsp/simd.h"
#include "dsp/types.h"
#include "dsp/window.h"

namespace fmbs::dsp {

/// Designs a linear-phase low-pass FIR with unity DC gain.
/// cutoff is normalized to the sample rate (0 < cutoff < 0.5).
std::vector<float> fir_design_lowpass(std::size_t num_taps, double cutoff,
                                      WindowType window = WindowType::kHamming);

/// Designs a high-pass FIR (spectral inversion of the low-pass). num_taps
/// must be odd: an even count has no well-defined Nyquist response, and the
/// historical behavior of silently bumping to the next odd count left every
/// caller that sized history or group delay from the REQUESTED count off by
/// one sample. Throws std::invalid_argument on an even num_taps, so the tap
/// count the caller reasons about is always the tap count it gets.
std::vector<float> fir_design_highpass(std::size_t num_taps, double cutoff,
                                       WindowType window = WindowType::kHamming);

/// Designs a band-pass FIR passing [low, high] (normalized, 0 < low < high < 0.5).
std::vector<float> fir_design_bandpass(std::size_t num_taps, double low,
                                       double high,
                                       WindowType window = WindowType::kHamming);

/// Designs a Kaiser-windowed low-pass with the given stopband attenuation
/// (dB) and normalized transition width; tap count chosen automatically.
std::vector<float> fir_design_kaiser_lowpass(double cutoff, double transition_width,
                                             double attenuation_db);

namespace detail {

/// Reversed taps (rt[t] = taps[nt-1-t]) so the convolution loop reads them
/// in ascending order — the layout the SIMD kernels and the scalar loops
/// share.
inline std::vector<float> reverse_taps(const std::vector<float>& taps) {
  return std::vector<float>(taps.rbegin(), taps.rend());
}

/// out[i * out_stride] = sum_t x[i * in_stride + t] * rt[t], the shared
/// inner loop of every FIR variant below. Sample is float or cfloat; taps
/// are real. Dispatches to dsp::simd when compiled in (bit-identical).
template <typename Sample>
inline void fir_apply(const Sample* x, std::size_t in_stride,
                      const float* rt, std::size_t nt, Sample* out,
                      std::size_t out_stride, std::size_t n) {
#if FMBS_SIMD_ENABLED
  if constexpr (std::is_same_v<Sample, float>) {
    if (in_stride == 1) {
      simd::fir_f32(x, rt, nt, out, out_stride, n);
      return;
    }
  } else if constexpr (std::is_same_v<Sample, cfloat>) {
    simd::fir_cx(reinterpret_cast<const float*>(x), in_stride, rt, nt,
                 reinterpret_cast<float*>(out), out_stride, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    Sample acc{};
    const Sample* xi = x + i * in_stride;
    for (std::size_t t = 0; t < nt; ++t) acc += xi[t] * rt[t];
    out[i * out_stride] = acc;
  }
}

}  // namespace detail

/// Streaming FIR filter over float or complex samples. Maintains history
/// across process() calls so block boundaries are seamless.
template <typename Sample>
class FirFilter {
 public:
  explicit FirFilter(std::vector<float> taps) : taps_(std::move(taps)) {
    if (taps_.empty()) throw std::invalid_argument("FirFilter: empty taps");
    rtaps_ = detail::reverse_taps(taps_);
    history_.assign(taps_.size() - 1, Sample{});
  }

  std::size_t num_taps() const { return taps_.size(); }

  /// Group delay in samples ((N-1)/2 for these linear-phase designs).
  double group_delay() const { return (static_cast<double>(taps_.size()) - 1.0) / 2.0; }

  /// Filters a block; output has the same length as the input.
  std::vector<Sample> process(std::span<const Sample> in) {
    std::vector<Sample> out(in.size());
    process_into(in, out);
    return out;
  }

  /// Filters a block into a caller-provided buffer of equal length.
  void process_into(std::span<const Sample> in, std::span<Sample> out) {
    if (out.size() != in.size()) throw std::invalid_argument("FirFilter: size mismatch");
    const std::size_t h = history_.size();
    work_.resize(h + in.size());
    std::copy(history_.begin(), history_.end(), work_.begin());
    std::copy(in.begin(), in.end(), work_.begin() + static_cast<std::ptrdiff_t>(h));
    detail::fir_apply(work_.data(), 1, rtaps_.data(), taps_.size(), out.data(),
                      1, in.size());
    if (h > 0) {
      std::copy(work_.end() - static_cast<std::ptrdiff_t>(h), work_.end(),
                history_.begin());
    }
  }

  /// Clears the filter history.
  void reset() { std::fill(history_.begin(), history_.end(), Sample{}); }

 private:
  std::vector<float> taps_;
  std::vector<float> rtaps_;
  std::vector<Sample> history_;
  std::vector<Sample> work_;
};

/// Polyphase decimator: low-pass filter + keep-every-Mth-sample, computing
/// only the retained outputs. Input block lengths must be multiples of the
/// decimation factor.
template <typename Sample>
class FirDecimator {
 public:
  FirDecimator(std::vector<float> taps, std::size_t factor)
      : taps_(std::move(taps)), factor_(factor) {
    if (taps_.empty()) throw std::invalid_argument("FirDecimator: empty taps");
    if (factor_ == 0) throw std::invalid_argument("FirDecimator: factor must be >= 1");
    rtaps_ = detail::reverse_taps(taps_);
    history_.assign(taps_.size() - 1, Sample{});
  }

  std::size_t factor() const { return factor_; }

  std::vector<Sample> process(std::span<const Sample> in) {
    if (in.size() % factor_ != 0) {
      throw std::invalid_argument("FirDecimator: block not a multiple of factor");
    }
    const std::size_t h = history_.size();
    work_.resize(h + in.size());
    std::copy(history_.begin(), history_.end(), work_.begin());
    std::copy(in.begin(), in.end(), work_.begin() + static_cast<std::ptrdiff_t>(h));
    std::vector<Sample> out(in.size() / factor_);
    detail::fir_apply(work_.data(), factor_, rtaps_.data(), taps_.size(),
                      out.data(), 1, out.size());
    if (h > 0) {
      std::copy(work_.end() - static_cast<std::ptrdiff_t>(h), work_.end(),
                history_.begin());
    }
    return out;
  }

  void reset() { std::fill(history_.begin(), history_.end(), Sample{}); }

 private:
  std::vector<float> taps_;
  std::vector<float> rtaps_;
  std::size_t factor_;
  std::vector<Sample> history_;
  std::vector<Sample> work_;
};

/// Polyphase interpolator: insert L-1 zeros + low-pass, computed as L
/// subfilters so the zero multiplies are skipped. The prototype filter is
/// scaled by L internally to preserve signal amplitude.
template <typename Sample>
class FirInterpolator {
 public:
  FirInterpolator(std::vector<float> prototype_taps, std::size_t factor)
      : factor_(factor) {
    if (prototype_taps.empty()) {
      throw std::invalid_argument("FirInterpolator: empty taps");
    }
    if (factor_ == 0) throw std::invalid_argument("FirInterpolator: factor must be >= 1");
    // Pad the prototype to a multiple of L, scale by L (zero stuffing divides
    // the spectrum amplitude by L), then split into L polyphase branches.
    const std::size_t padded =
        (prototype_taps.size() + factor_ - 1) / factor_ * factor_;
    prototype_taps.resize(padded, 0.0F);
    const std::size_t branch_len = padded / factor_;
    branches_.assign(factor_, std::vector<float>(branch_len, 0.0F));
    for (std::size_t i = 0; i < padded; ++i) {
      branches_[i % factor_][i / factor_] =
          prototype_taps[i] * static_cast<float>(factor_);
    }
    rbranches_.reserve(factor_);
    for (const std::vector<float>& b : branches_) {
      rbranches_.push_back(detail::reverse_taps(b));
    }
    history_.assign(branch_len - 1, Sample{});
  }

  std::size_t factor() const { return factor_; }

  std::vector<Sample> process(std::span<const Sample> in) {
    const std::size_t h = history_.size();
    work_.resize(h + in.size());
    std::copy(history_.begin(), history_.end(), work_.begin());
    std::copy(in.begin(), in.end(), work_.begin() + static_cast<std::ptrdiff_t>(h));
    std::vector<Sample> out(in.size() * factor_);
    const std::size_t bl = branches_.empty() ? 0 : branches_[0].size();
    // Branch-major: each polyphase branch is one strided FIR pass across
    // every input sample (out[i*L + p] = branch p applied at input i), which
    // is the across-outputs layout the SIMD kernels want. Identical
    // arithmetic to the historical sample-major loop — each output is still
    // its branch's taps accumulated serially.
    for (std::size_t p = 0; p < factor_; ++p) {
      detail::fir_apply(work_.data(), 1, rbranches_[p].data(), bl,
                        out.data() + p, factor_, in.size());
    }
    if (h > 0) {
      std::copy(work_.end() - static_cast<std::ptrdiff_t>(h), work_.end(),
                history_.begin());
    }
    return out;
  }

  void reset() { std::fill(history_.begin(), history_.end(), Sample{}); }

 private:
  std::size_t factor_;
  std::vector<std::vector<float>> branches_;
  std::vector<std::vector<float>> rbranches_;
  std::vector<Sample> history_;
  std::vector<Sample> work_;
};

}  // namespace fmbs::dsp
