// Automatic gain control. Models the phone FM receiver behaviour the paper
// has to fight in cooperative backscatter: "hardware gain control alters the
// amplitude of FM_audio(t) in the presence of FM_back(t)".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fmbs::dsp {

/// Feed-forward RMS-tracking AGC with separate attack/release smoothing.
class Agc {
 public:
  struct Config {
    double target_rms = 0.25;      // output RMS setpoint
    double attack_seconds = 0.02;  // gain-down smoothing
    double release_seconds = 0.2;  // gain-up smoothing
    double max_gain = 100.0;
    double min_gain = 0.01;
  };

  Agc(const Config& config, double sample_rate);

  /// Processes one sample.
  float process_sample(float x);

  /// Processes a block.
  std::vector<float> process(std::span<const float> in);

  /// Current applied gain (observable for tests and calibration).
  double gain() const { return gain_; }

  void reset();

 private:
  Config cfg_;
  double attack_alpha_;
  double release_alpha_;
  double envelope_ = 0.0;
  double gain_ = 1.0;
};

}  // namespace fmbs::dsp
