#include "dsp/resample.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "dsp/fir.h"

namespace fmbs::dsp {

rvec upsample_linear(std::span<const float> in, std::size_t factor) {
  if (factor == 0) throw std::invalid_argument("upsample_linear: factor must be >= 1");
  if (in.empty() || factor == 1) return rvec(in.begin(), in.end());
  rvec out((in.size() - 1) * factor + 1);
  for (std::size_t i = 0; i + 1 < in.size(); ++i) {
    const float a = in[i];
    const float b = in[i + 1];
    for (std::size_t k = 0; k < factor; ++k) {
      const float frac = static_cast<float>(k) / static_cast<float>(factor);
      out[i * factor + k] = a + (b - a) * frac;
    }
  }
  out.back() = in.back();
  return out;
}

rvec downsample_keep(std::span<const float> in, std::size_t factor) {
  if (factor == 0) throw std::invalid_argument("downsample_keep: factor must be >= 1");
  rvec out;
  out.reserve(in.size() / factor + 1);
  for (std::size_t i = 0; i < in.size(); i += factor) out.push_back(in[i]);
  return out;
}

LinearResampler::LinearResampler(double ratio) : ratio_(ratio) {
  if (ratio <= 0.0) throw std::invalid_argument("LinearResampler: ratio must be > 0");
}

rvec LinearResampler::process(std::span<const float> in) {
  rvec out;
  if (in.empty()) return out;
  out.reserve(static_cast<std::size_t>(std::ceil(in.size() * ratio_)) + 2);
  // Virtual stream: [last_sample_, in[0], in[1], ...] when primed, with
  // position_ as fractional index into that stream.
  const double step = 1.0 / ratio_;
  if (!primed_) {
    last_sample_ = in[0];
    primed_ = true;
  }
  while (true) {
    const auto idx = static_cast<std::size_t>(position_);
    if (idx >= in.size()) break;
    const double frac = position_ - static_cast<double>(idx);
    const float a = idx == 0 ? last_sample_ : in[idx - 1];
    const float b = in[idx];
    // Interpolate between the sample before idx and the sample at idx so the
    // boundary between blocks needs only one remembered sample.
    out.push_back(static_cast<float>(a + (b - a) * frac));
    position_ += step;
  }
  position_ -= static_cast<double>(in.size());
  last_sample_ = in.back();
  return out;
}

void LinearResampler::reset() {
  position_ = 0.0;
  last_sample_ = 0.0F;
  primed_ = false;
}

rvec resample_rational(std::span<const float> in, std::size_t up, std::size_t down,
                       std::size_t taps_per_phase) {
  if (up == 0 || down == 0) {
    throw std::invalid_argument("resample_rational: factors must be >= 1");
  }
  const std::size_t g = std::gcd(up, down);
  up /= g;
  down /= g;
  if (up == 1 && down == 1) return rvec(in.begin(), in.end());

  // Single prototype low-pass at min(1/(2L), 1/(2M)) of the upsampled rate.
  const double cutoff = 0.5 / static_cast<double>(std::max(up, down)) * 0.9;
  const std::size_t num_taps = taps_per_phase * std::max(up, down) | 1U;
  std::vector<float> proto = fir_design_lowpass(num_taps, cutoff);

  FirInterpolator<float> interp(proto, up);
  rvec high = interp.process(in);
  if (down == 1) return high;
  // Pad so the decimator sees a multiple of `down`.
  const std::size_t rem = high.size() % down;
  if (rem != 0) high.resize(high.size() + (down - rem), 0.0F);
  if (up == 1) {
    // Need an anti-alias filter before plain decimation.
    FirDecimator<float> dec(proto, down);
    return dec.process(high);
  }
  return downsample_keep(high, down);
}

}  // namespace fmbs::dsp
