// Resampling helpers. The cooperative-backscatter receiver follows the paper
// exactly: "we resample the signals on the two phones, in software, by a
// factor of ten" before cross-correlating, which LinearResampler and
// upsample_linear provide. Rational resampling covers audio-rate conversion.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/types.h"

namespace fmbs::dsp {

/// Upsamples by an integer factor with linear interpolation (cheap, adequate
/// for correlation-based delay estimation at sub-sample resolution).
rvec upsample_linear(std::span<const float> in, std::size_t factor);

/// Downsamples by taking every factor-th sample (no filtering; callers must
/// band-limit first).
rvec downsample_keep(std::span<const float> in, std::size_t factor);

/// Arbitrary-ratio linear-interpolation resampler (streaming).
class LinearResampler {
 public:
  /// ratio = out_rate / in_rate, must be > 0.
  explicit LinearResampler(double ratio);

  /// Resamples a block. Output length ~= in.size() * ratio.
  rvec process(std::span<const float> in);

  void reset();

 private:
  double ratio_;
  double position_ = 0.0;  // fractional read index into the virtual stream
  float last_sample_ = 0.0F;
  bool primed_ = false;
};

/// Rational resampler: polyphase upsample by L then decimate by M with a
/// shared anti-alias/anti-image low-pass. One-shot (not streaming): designed
/// for converting whole audio clips between 44.1/48/240 kHz style rates.
rvec resample_rational(std::span<const float> in, std::size_t up, std::size_t down,
                       std::size_t taps_per_phase = 24);

}  // namespace fmbs::dsp
