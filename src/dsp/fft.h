// Radix-2 iterative FFT with a cached-twiddle plan, plus convenience helpers
// for power spectra. Sizes must be powers of two; callers that need other
// sizes zero-pad (see next_pow2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/types.h"

namespace fmbs::dsp {

/// Smallest power of two >= n (n == 0 yields 1).
std::size_t next_pow2(std::size_t n);

/// True when n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// FFT execution plan for a fixed power-of-two size. Precomputes twiddle
/// factors and the bit-reversal permutation so repeated transforms of the
/// same size (filter banks, Welch PSD) avoid per-call trig.
class FftPlan {
 public:
  /// Builds a plan for transforms of length n (power of two, >= 1).
  /// Throws std::invalid_argument otherwise.
  explicit FftPlan(std::size_t n);

  /// Transform length.
  std::size_t size() const { return n_; }

  /// In-place forward DFT (no normalization).
  void forward(std::span<cfloat> data) const;

  /// In-place inverse DFT, normalized by 1/N so inverse(forward(x)) == x.
  void inverse(std::span<cfloat> data) const;

 private:
  void transform(std::span<cfloat> data, bool invert) const;

  std::size_t n_;
  std::vector<std::size_t> bit_reverse_;
  std::vector<cfloat> twiddles_;  // e^{-2 pi i k / n} for k < n/2
};

/// Out-of-place forward FFT of arbitrary input length: input is zero-padded
/// to the next power of two. Returns the transformed vector.
cvec fft(std::span<const cfloat> input);

/// Out-of-place inverse FFT; input length must be a power of two.
cvec ifft(std::span<const cfloat> input);

/// Forward FFT of a real signal (zero-padded to a power of two).
cvec fft_real(std::span<const float> input);

/// |X[k]|^2 for each bin of the forward FFT of a real signal, zero-padded to
/// fft_size (0 means next_pow2(input.size())). Returns fft_size/2+1 bins.
std::vector<double> power_spectrum(std::span<const float> input,
                                   std::size_t fft_size = 0);

}  // namespace fmbs::dsp
