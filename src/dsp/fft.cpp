#include "dsp/fft.h"

#include <cmath>
#include <stdexcept>

#include "dsp/math_util.h"

namespace fmbs::dsp {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_pow2(n)) throw std::invalid_argument("FftPlan: size must be a power of two");
  bit_reverse_.resize(n);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
    }
    bit_reverse_[i] = r;
  }
  twiddles_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    twiddles_[k] = cfloat(static_cast<float>(std::cos(angle)),
                          static_cast<float>(std::sin(angle)));
  }
}

void FftPlan::transform(std::span<cfloat> data, bool invert) const {
  if (data.size() != n_) throw std::invalid_argument("FftPlan: size mismatch");
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bit_reverse_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n_ / len;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        cfloat w = twiddles_[k * stride];
        if (invert) w = std::conj(w);
        const cfloat a = data[start + k];
        const cfloat b = data[start + k + half] * w;
        data[start + k] = a + b;
        data[start + k + half] = a - b;
      }
    }
  }
  if (invert) {
    const float scale = 1.0F / static_cast<float>(n_);
    for (auto& v : data) v *= scale;
  }
}

void FftPlan::forward(std::span<cfloat> data) const { transform(data, false); }
void FftPlan::inverse(std::span<cfloat> data) const { transform(data, true); }

cvec fft(std::span<const cfloat> input) {
  cvec data(input.begin(), input.end());
  data.resize(next_pow2(data.size()));
  FftPlan plan(data.size());
  plan.forward(data);
  return data;
}

cvec ifft(std::span<const cfloat> input) {
  if (!is_pow2(input.size())) {
    throw std::invalid_argument("ifft: size must be a power of two");
  }
  cvec data(input.begin(), input.end());
  FftPlan plan(data.size());
  plan.inverse(data);
  return data;
}

cvec fft_real(std::span<const float> input) {
  cvec data(next_pow2(input.size()));
  for (std::size_t i = 0; i < input.size(); ++i) data[i] = cfloat(input[i], 0.0F);
  FftPlan plan(data.size());
  plan.forward(data);
  return data;
}

std::vector<double> power_spectrum(std::span<const float> input,
                                   std::size_t fft_size) {
  std::size_t n = fft_size == 0 ? next_pow2(input.size()) : fft_size;
  if (!is_pow2(n)) throw std::invalid_argument("power_spectrum: fft_size must be pow2");
  cvec data(n);
  const std::size_t m = std::min(n, input.size());
  for (std::size_t i = 0; i < m; ++i) data[i] = cfloat(input[i], 0.0F);
  FftPlan plan(n);
  plan.forward(data);
  std::vector<double> ps(n / 2 + 1);
  for (std::size_t k = 0; k < ps.size(); ++k) {
    ps[k] = static_cast<double>(std::norm(data[k]));
  }
  return ps;
}

}  // namespace fmbs::dsp
