// Goertzel single-bin DFT: the power detector behind the paper's
// non-coherent FSK receiver ("compares the received power on the two
// frequencies and outputs the frequency that has the higher power").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fmbs::dsp {

/// Power of a real signal at one frequency (Hz) via the Goertzel recurrence.
/// Returns |X(f)|^2 normalized by N^2 so a unit-amplitude sinusoid at f
/// measures ~0.25 regardless of block length.
double goertzel_power(std::span<const float> block, double frequency_hz,
                      double sample_rate);

/// Precomputed Goertzel detector bank for a fixed tone set — evaluates all
/// tones over the same block in one pass per tone.
class GoertzelBank {
 public:
  /// tones are in Hz; sample_rate in Hz. Throws if a tone is outside
  /// (0, sample_rate/2).
  GoertzelBank(std::vector<double> tones_hz, double sample_rate);

  std::size_t num_tones() const { return coeffs_.size(); }
  const std::vector<double>& tones_hz() const { return tones_hz_; }

  /// Powers of each tone over the block (normalized as goertzel_power).
  std::vector<double> powers(std::span<const float> block) const;

  /// Index of the strongest tone over the block.
  std::size_t detect(std::span<const float> block) const;

 private:
  std::vector<double> tones_hz_;
  std::vector<double> coeffs_;  // 2 cos(2 pi f / fs)
  double sample_rate_;
};

}  // namespace fmbs::dsp
