#include "dsp/window.h"

#include <cmath>
#include <stdexcept>

#include "dsp/math_util.h"

namespace fmbs::dsp {

namespace {

// Modified Bessel function of the first kind, order zero (series expansion).
double bessel_i0(double x) {
  double sum = 1.0;
  double term = 1.0;
  const double half_x = x / 2.0;
  for (int k = 1; k < 64; ++k) {
    term *= (half_x / k) * (half_x / k);
    sum += term;
    if (term < 1e-16 * sum) break;
  }
  return sum;
}

}  // namespace

std::vector<float> make_window(WindowType type, std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_window: n must be > 0");
  std::vector<float> w(n);
  if (n == 1) {
    w[0] = 1.0F;
    return w;
  }
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / denom;  // 0..1
    double v = 1.0;
    switch (type) {
      case WindowType::kRectangular:
        v = 1.0;
        break;
      case WindowType::kHann:
        v = 0.5 - 0.5 * std::cos(kTwoPi * x);
        break;
      case WindowType::kHamming:
        v = 0.54 - 0.46 * std::cos(kTwoPi * x);
        break;
      case WindowType::kBlackman:
        v = 0.42 - 0.5 * std::cos(kTwoPi * x) + 0.08 * std::cos(2 * kTwoPi * x);
        break;
      case WindowType::kBlackmanHarris:
        v = 0.35875 - 0.48829 * std::cos(kTwoPi * x) +
            0.14128 * std::cos(2 * kTwoPi * x) -
            0.01168 * std::cos(3 * kTwoPi * x);
        break;
    }
    w[i] = static_cast<float>(v);
  }
  return w;
}

std::vector<float> make_kaiser_window(std::size_t n, double beta) {
  if (n == 0) throw std::invalid_argument("make_kaiser_window: n must be > 0");
  std::vector<float> w(n);
  if (n == 1) {
    w[0] = 1.0F;
    return w;
  }
  const double denom = bessel_i0(beta);
  const double half = static_cast<double>(n - 1) / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = (static_cast<double>(i) - half) / half;
    w[i] = static_cast<float>(bessel_i0(beta * std::sqrt(1.0 - r * r)) / denom);
  }
  return w;
}

double kaiser_beta_for_attenuation(double attenuation_db) {
  if (attenuation_db > 50.0) return 0.1102 * (attenuation_db - 8.7);
  if (attenuation_db >= 21.0) {
    return 0.5842 * std::pow(attenuation_db - 21.0, 0.4) +
           0.07886 * (attenuation_db - 21.0);
  }
  return 0.0;
}

std::size_t kaiser_order_for(double attenuation_db, double transition_width) {
  if (transition_width <= 0.0) {
    throw std::invalid_argument("kaiser_order_for: transition width <= 0");
  }
  const double order = (attenuation_db - 7.95) / (2.285 * kTwoPi * transition_width);
  return order < 1.0 ? 1 : static_cast<std::size_t>(std::ceil(order));
}

double window_sum(const std::vector<float>& w) {
  double s = 0.0;
  for (const float v : w) s += v;
  return s;
}

double window_sum_squares(const std::vector<float>& w) {
  double s = 0.0;
  for (const float v : w) s += static_cast<double>(v) * v;
  return s;
}

}  // namespace fmbs::dsp
