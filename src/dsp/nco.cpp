#include "dsp/nco.h"

#include <stdexcept>

namespace fmbs::dsp {

Oscillator::Oscillator(double frequency_hz, double sample_rate,
                       double initial_phase)
    : frequency_hz_(frequency_hz),
      step_(kTwoPi * frequency_hz / sample_rate),
      acc_(initial_phase) {
  if (sample_rate <= 0.0) throw std::invalid_argument("Oscillator: bad sample rate");
}

cvec Oscillator::block_complex(std::size_t n) {
  cvec out(n);
  for (auto& v : out) v = next_complex();
  return out;
}

rvec Oscillator::block_real(std::size_t n) {
  rvec out(n);
  for (auto& v : out) v = next_real();
  return out;
}

Mixer::Mixer(double frequency_hz, double sample_rate, double initial_phase)
    : step_(kTwoPi * frequency_hz / sample_rate), acc_(initial_phase) {
  if (sample_rate <= 0.0) throw std::invalid_argument("Mixer: bad sample rate");
}

void Mixer::process_inplace(std::span<cfloat> data) {
  for (auto& v : data) {
    const double ph = acc_.advance(step_);
    const cfloat rot(static_cast<float>(std::cos(ph)),
                     static_cast<float>(std::sin(ph)));
    v *= rot;
  }
}

cvec Mixer::process(std::span<const cfloat> data) {
  cvec out(data.begin(), data.end());
  process_inplace(out);
  return out;
}

}  // namespace fmbs::dsp
