#include "dsp/nco.h"

#include <algorithm>
#include <cstddef>
#include <stdexcept>

#include "dsp/simd.h"

namespace fmbs::dsp {

Oscillator::Oscillator(double frequency_hz, double sample_rate,
                       double initial_phase)
    : frequency_hz_(frequency_hz),
      step_(kTwoPi * frequency_hz / sample_rate),
      acc_(initial_phase) {
  if (sample_rate <= 0.0) throw std::invalid_argument("Oscillator: bad sample rate");
}

cvec Oscillator::block_complex(std::size_t n) {
  cvec out(n);
  for (auto& v : out) v = next_complex();
  return out;
}

rvec Oscillator::block_real(std::size_t n) {
  rvec out(n);
  for (auto& v : out) v = next_real();
  return out;
}

Mixer::Mixer(double frequency_hz, double sample_rate, double initial_phase)
    : step_(kTwoPi * frequency_hz / sample_rate), acc_(initial_phase) {
  if (sample_rate <= 0.0) throw std::invalid_argument("Mixer: bad sample rate");
}

void Mixer::process_inplace(std::span<cfloat> data) {
#if FMBS_SIMD_ENABLED
  // Double-precision rotator recurrence instead of a libm cos+sin pair per
  // sample, re-seeded from the exact PhaseAccumulator phase every
  // kRenormInterval samples. The re-seeded samples are bit-identical to the
  // scalar path; the up-to-15 recurrence samples in between carry ~1e-15 rad
  // of accumulated rounding, far below float's 1e-7 resolution, so casts to
  // float almost always land on the same value. Tolerance pinned by
  // tests/dsp/test_simd_kernels.cpp (MixerRecurrenceMatchesScalar).
  constexpr std::size_t kRenormInterval = 16;
  const double c_step = std::cos(step_);
  const double s_step = std::sin(step_);
  std::size_t i = 0;
  while (i < data.size()) {
    double cr = std::cos(acc_.phase());
    double ci = std::sin(acc_.phase());
    const std::size_t run =
        std::min(kRenormInterval, data.size() - i);
    for (std::size_t k = 0; k < run; ++k) {
      data[i + k] *= cfloat(static_cast<float>(cr), static_cast<float>(ci));
      const double nr = cr * c_step - ci * s_step;
      ci = cr * s_step + ci * c_step;
      cr = nr;
      acc_.advance(step_);
    }
    i += run;
  }
#else
  for (auto& v : data) {
    const double ph = acc_.advance(step_);
    const cfloat rot(static_cast<float>(std::cos(ph)),
                     static_cast<float>(std::sin(ph)));
    v *= rot;
  }
#endif
}

cvec Mixer::process(std::span<const cfloat> data) {
  cvec out(data.begin(), data.end());
  process_inplace(out);
  return out;
}

}  // namespace fmbs::dsp
