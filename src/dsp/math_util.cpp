#include "dsp/math_util.h"

#include <algorithm>
#include <stdexcept>

#include "core/units.h"

namespace fmbs::dsp {

// The scalar dB/dBm helpers delegate to the strong-type layer so the
// formulas (and the -300 dB floor) exist exactly once in the codebase.

double db_from_power_ratio(double ratio) {
  return units::Db::from_power_ratio(ratio).raw();
}

double power_ratio_from_db(double db) { return units::Db{db}.power_ratio(); }

double db_from_amplitude_ratio(double ratio) {
  return units::Db::from_amplitude_ratio(ratio).raw();
}

double amplitude_ratio_from_db(double db) {
  return units::Db{db}.amplitude_ratio();
}

double watts_from_dbm(double dbm) { return units::Dbm{dbm}.to_watts().raw(); }

double dbm_from_watts(double watts) {
  return units::Watts{watts}.to_dbm().raw();
}

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = kPi * x;
  return std::sin(px) / px;
}

namespace {
template <typename T>
double mean_impl(std::span<const T> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const T v : x) acc += static_cast<double>(v);
  return acc / static_cast<double>(x.size());
}

template <typename T>
double stddev_impl(std::span<const T> x) {
  if (x.size() < 2) return 0.0;
  const double m = mean_impl(x);
  double acc = 0.0;
  for (const T v : x) {
    const double d = static_cast<double>(v) - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(x.size()));
}
}  // namespace

double mean(std::span<const float> x) { return mean_impl(x); }
double mean(std::span<const double> x) { return mean_impl(x); }
double stddev(std::span<const float> x) { return stddev_impl(x); }
double stddev(std::span<const double> x) { return stddev_impl(x); }

double mean_square(std::span<const float> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const float v : x) acc += static_cast<double>(v) * v;
  return acc / static_cast<double>(x.size());
}

double rms(std::span<const float> x) { return std::sqrt(mean_square(x)); }

double quantile(std::span<const double> x, double p) {
  if (x.empty()) throw std::invalid_argument("quantile: empty input");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("quantile: p out of [0,1]");
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> samples) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf(sorted.size());
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf[i] = {sorted[i], static_cast<double>(i + 1) / n};
  }
  return cdf;
}

std::vector<double> cdf_at(std::span<const double> samples,
                           std::span<const double> probabilities) {
  std::vector<double> out;
  out.reserve(probabilities.size());
  for (const double p : probabilities) out.push_back(quantile(samples, p));
  return out;
}

}  // namespace fmbs::dsp
