// Window functions for FIR design and spectral analysis.
#pragma once

#include <cstddef>
#include <vector>

namespace fmbs::dsp {

/// Supported window shapes.
enum class WindowType {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
  kBlackmanHarris,
};

/// Returns an n-point symmetric window of the given type.
/// Throws std::invalid_argument for n == 0.
std::vector<float> make_window(WindowType type, std::size_t n);

/// Returns an n-point Kaiser window with shape parameter beta.
std::vector<float> make_kaiser_window(std::size_t n, double beta);

/// Kaiser beta for a target stopband attenuation in dB (Kaiser's formula).
double kaiser_beta_for_attenuation(double attenuation_db);

/// Estimated Kaiser FIR order for attenuation (dB) and normalized transition
/// width (fraction of the sample rate). Result is always >= 1.
std::size_t kaiser_order_for(double attenuation_db, double transition_width);

/// Sum of the window coefficients (coherent gain numerator).
double window_sum(const std::vector<float>& w);

/// Sum of squared window coefficients (noise gain numerator, for PSD scaling).
double window_sum_squares(const std::vector<float>& w);

}  // namespace fmbs::dsp
