#include "dsp/goertzel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/math_util.h"

namespace fmbs::dsp {

namespace {
double goertzel_with_coeff(std::span<const float> block, double coeff) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0;
  for (const float x : block) {
    s0 = static_cast<double>(x) + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  const double power = s1 * s1 + s2 * s2 - coeff * s1 * s2;
  const double n = static_cast<double>(block.size());
  return n > 0.0 ? power / (n * n) : 0.0;
}
}  // namespace

double goertzel_power(std::span<const float> block, double frequency_hz,
                      double sample_rate) {
  if (sample_rate <= 0.0) throw std::invalid_argument("goertzel: bad sample rate");
  if (frequency_hz <= 0.0 || frequency_hz >= sample_rate / 2.0) {
    throw std::invalid_argument("goertzel: frequency outside (0, fs/2)");
  }
  const double coeff = 2.0 * std::cos(kTwoPi * frequency_hz / sample_rate);
  return goertzel_with_coeff(block, coeff);
}

GoertzelBank::GoertzelBank(std::vector<double> tones_hz, double sample_rate)
    : tones_hz_(std::move(tones_hz)), sample_rate_(sample_rate) {
  if (tones_hz_.empty()) throw std::invalid_argument("GoertzelBank: no tones");
  if (sample_rate_ <= 0.0) throw std::invalid_argument("GoertzelBank: bad rate");
  coeffs_.reserve(tones_hz_.size());
  for (const double f : tones_hz_) {
    if (f <= 0.0 || f >= sample_rate_ / 2.0) {
      throw std::invalid_argument("GoertzelBank: tone outside (0, fs/2)");
    }
    coeffs_.push_back(2.0 * std::cos(kTwoPi * f / sample_rate_));
  }
}

std::vector<double> GoertzelBank::powers(std::span<const float> block) const {
  std::vector<double> out(coeffs_.size());
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    out[i] = goertzel_with_coeff(block, coeffs_[i]);
  }
  return out;
}

std::size_t GoertzelBank::detect(std::span<const float> block) const {
  const std::vector<double> p = powers(block);
  return static_cast<std::size_t>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

}  // namespace fmbs::dsp
