// Fixed-capacity single-producer / multi-consumer ring of reusable slots —
// the backbone of the streaming scenario engine (core::StreamingEngine). The
// producer renders RF blocks into recycled slot buffers; every consumer sees
// every published slot exactly once, in order, and a slot is reused only
// after the slowest consumer has released it (backpressure). All
// synchronization is mutex + condvar: slot ownership transfers through the
// lock, so the producer-written buffers are safely visible to consumers
// (TSan-clean by construction).
//
// Lifecycle:
//   * producer: acquire() -> fill slot -> publish(), repeated; finish() when
//     the stream ends (consumers drain the residual published slots, then
//     acquire() returns nullptr);
//   * consumer k: consumer_acquire(k) -> read slot -> consumer_release(k);
//   * stop() aborts mid-stream from either side: every blocked or future
//     acquire returns nullptr immediately.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace fmbs::dsp {

template <typename T>
class RingBuffer {
 public:
  RingBuffer(std::size_t capacity, std::size_t num_consumers)
      : slots_(capacity), tails_(num_consumers, 0) {
    if (capacity == 0) {
      throw std::invalid_argument("RingBuffer: capacity must be > 0");
    }
    if (num_consumers == 0) {
      throw std::invalid_argument("RingBuffer: need at least one consumer");
    }
  }

  std::size_t capacity() const { return slots_.size(); }
  std::size_t num_consumers() const { return tails_.size(); }

  /// Next reusable slot to fill. Blocks while the ring is full (the slowest
  /// consumer still owns the oldest slot). Returns nullptr after stop().
  T* producer_acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    space_.wait(lock,
                [&] { return stopped_ || head_ - min_tail() < slots_.size(); });
    if (stopped_) return nullptr;
    return &slots_[head_ % slots_.size()];
  }

  /// Publishes the slot returned by the last producer_acquire().
  void producer_publish() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++head_;
    }
    data_.notify_all();
  }

  /// Next unread slot for consumer `k`, in publish order. Blocks while the
  /// ring is empty for this consumer. Returns nullptr once the producer has
  /// finished and every published slot was consumed, or after stop().
  T* consumer_acquire(std::size_t k) {
    std::unique_lock<std::mutex> lock(mu_);
    data_.wait(lock,
               [&] { return stopped_ || finished_ || tails_[k] < head_; });
    if (stopped_) return nullptr;
    if (tails_[k] == head_) return nullptr;  // finished and drained
    return &slots_[tails_[k] % slots_.size()];
  }

  /// Releases the slot returned by the last consumer_acquire(k).
  void consumer_release(std::size_t k) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++tails_[k];
    }
    space_.notify_one();
  }

  /// Producer-side end of stream: consumers drain what is published, then
  /// their acquires return nullptr.
  void finish() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      finished_ = true;
    }
    data_.notify_all();
  }

  /// Aborts the stream from either side: every blocked and future acquire
  /// (producer or consumer) returns nullptr immediately.
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    space_.notify_all();
    data_.notify_all();
  }

  bool stopped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stopped_;
  }

 private:
  std::size_t min_tail() const {
    std::size_t m = std::numeric_limits<std::size_t>::max();
    for (const std::size_t t : tails_) m = t < m ? t : m;
    return m;
  }

  std::vector<T> slots_;
  std::vector<std::size_t> tails_;  // consumed count per consumer
  std::size_t head_ = 0;            // published count
  bool finished_ = false;
  bool stopped_ = false;
  mutable std::mutex mu_;
  std::condition_variable space_;
  std::condition_variable data_;
};

}  // namespace fmbs::dsp
