// Small IIR building blocks: RBJ biquads, one-pole smoothers, and a DC
// blocker. Used for de-emphasis, pilot extraction and audio shaping.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fmbs::dsp {

/// Normalized biquad coefficients (a0 == 1).
struct BiquadCoeffs {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;
};

/// RBJ cookbook designs. frequency is normalized to the sample rate (0..0.5).
BiquadCoeffs biquad_lowpass(double frequency, double q);
BiquadCoeffs biquad_highpass(double frequency, double q);
BiquadCoeffs biquad_bandpass(double frequency, double q);
BiquadCoeffs biquad_notch(double frequency, double q);
BiquadCoeffs biquad_peak(double frequency, double q, double gain_db);

/// Streaming transposed-direct-form-II biquad.
class Biquad {
 public:
  explicit Biquad(const BiquadCoeffs& c) : c_(c) {}

  float process_sample(float x) {
    const double y = c_.b0 * x + s1_;
    s1_ = c_.b1 * x - c_.a1 * y + s2_;
    s2_ = c_.b2 * x - c_.a2 * y;
    return static_cast<float>(y);
  }

  std::vector<float> process(std::span<const float> in);

  void reset() { s1_ = s2_ = 0.0; }

 private:
  BiquadCoeffs c_;
  double s1_ = 0.0, s2_ = 0.0;
};

/// Cascade of biquads (for steeper responses).
class BiquadCascade {
 public:
  explicit BiquadCascade(const std::vector<BiquadCoeffs>& sections);
  float process_sample(float x);
  std::vector<float> process(std::span<const float> in);
  void reset();

 private:
  std::vector<Biquad> sections_;
};

/// One-pole low-pass y[n] = y[n-1] + a (x[n] - y[n-1]). Used for envelope
/// smoothing and the FM de-emphasis RC network.
class OnePoleLowpass {
 public:
  /// Builds from an RC time constant in seconds at the given sample rate.
  static OnePoleLowpass from_time_constant(double tau_seconds, double sample_rate);

  /// Builds from a -3 dB corner frequency in Hz at the given sample rate.
  static OnePoleLowpass from_corner(double corner_hz, double sample_rate);

  explicit OnePoleLowpass(double alpha);

  float process_sample(float x) {
    state_ += alpha_ * (static_cast<double>(x) - state_);
    return static_cast<float>(state_);
  }

  std::vector<float> process(std::span<const float> in);

  void reset() { state_ = 0.0; }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double state_ = 0.0;
};

/// DC blocker: y[n] = x[n] - x[n-1] + r y[n-1].
class DcBlocker {
 public:
  explicit DcBlocker(double r = 0.995);
  float process_sample(float x);
  std::vector<float> process(std::span<const float> in);
  void reset();

 private:
  double r_;
  double prev_x_ = 0.0;
  double prev_y_ = 0.0;
};

}  // namespace fmbs::dsp
