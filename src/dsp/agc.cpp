#include "dsp/agc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmbs::dsp {

namespace {
double smoothing_alpha(double seconds, double sample_rate) {
  if (seconds <= 0.0) return 1.0;
  return 1.0 - std::exp(-1.0 / (seconds * sample_rate));
}
}  // namespace

Agc::Agc(const Config& config, double sample_rate)
    : cfg_(config),
      attack_alpha_(smoothing_alpha(config.attack_seconds, sample_rate)),
      release_alpha_(smoothing_alpha(config.release_seconds, sample_rate)) {
  if (sample_rate <= 0.0) throw std::invalid_argument("Agc: bad sample rate");
  if (config.target_rms <= 0.0) throw std::invalid_argument("Agc: bad target");
}

float Agc::process_sample(float x) {
  const double inst = static_cast<double>(x) * x;
  // Attack when the envelope is rising (signal got louder -> reduce gain
  // quickly), release when falling.
  const double alpha = inst > envelope_ ? attack_alpha_ : release_alpha_;
  envelope_ += alpha * (inst - envelope_);
  const double rms = std::sqrt(std::max(envelope_, 1e-20));
  gain_ = std::clamp(cfg_.target_rms / rms, cfg_.min_gain, cfg_.max_gain);
  return static_cast<float>(static_cast<double>(x) * gain_);
}

std::vector<float> Agc::process(std::span<const float> in) {
  std::vector<float> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process_sample(in[i]);
  return out;
}

void Agc::reset() {
  envelope_ = 0.0;
  gain_ = 1.0;
}

}  // namespace fmbs::dsp
