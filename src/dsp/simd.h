// SSE2 kernels for the hot DSP inner loops, behind the FMBS_SIMD gate
// (CMake option FMBS_SIMD, ON by default; scalar fallbacks compile when the
// gate is off or the target has no SSE2).
//
// Bit-compatibility contract: every kernel here vectorizes ACROSS OUTPUTS —
// each SIMD lane accumulates its output's taps serially, in exactly the
// scalar loop's order — so no floating-point reassociation happens and the
// results are bit-identical to the scalar implementations. (Vectorizing
// across taps would reassociate the accumulation and is deliberately
// avoided.) Baseline x86-64 SSE2 has no FMA, so there is no contraction
// risk either. The one tolerance-pinned exception in the codebase — the
// NCO rotator recurrence — lives in nco.cpp/subcarrier.cpp, not here, and
// is justified at its call sites and pinned by tests.
//
// std::complex<float> arrays are addressed through reinterpret_cast<float*>:
// the standard guarantees array-of-complex is layout-compatible with
// interleaved re/im float pairs ([complex.numbers.general]).
#pragma once

#include <cstddef>

#if defined(FMBS_SIMD) && defined(__SSE2__)
#define FMBS_SIMD_ENABLED 1
#include <emmintrin.h>
#else
#define FMBS_SIMD_ENABLED 0
#endif

namespace fmbs::dsp::simd {

/// True when the SIMD kernels are compiled in (FMBS_SIMD + SSE2 target).
inline constexpr bool kEnabled = FMBS_SIMD_ENABLED == 1;

#if FMBS_SIMD_ENABLED

/// dst[i] = gain * src[i] over n floats (a complex span is 2n floats).
inline void scale_f32(float* dst, const float* src, float gain,
                      std::size_t n) {
  const __m128 g = _mm_set1_ps(gain);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(dst + i, _mm_mul_ps(g, _mm_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] = gain * src[i];
}

/// dst[i] += gain * src[i] over n floats.
inline void axpy_f32(float* dst, const float* src, float gain,
                     std::size_t n) {
  const __m128 g = _mm_set1_ps(gain);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(dst + i, _mm_add_ps(_mm_loadu_ps(dst + i),
                                      _mm_mul_ps(g, _mm_loadu_ps(src + i))));
  }
  for (; i < n; ++i) dst[i] += gain * src[i];
}

/// Real FIR across outputs: out[i * out_stride] = sum_t x[i + t] * rt[t]
/// for i in [0, n), with rt the REVERSED tap vector (rt[t] = taps[nt-1-t])
/// so the scalar loop `acc += x[t] * taps[nt-1-t]` reads rt in ascending
/// order. Four outputs per vector; each lane accumulates taps serially.
inline void fir_f32(const float* x, const float* rt, std::size_t nt,
                    float* out, std::size_t out_stride, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 acc = _mm_setzero_ps();
    const float* xi = x + i;
    for (std::size_t t = 0; t < nt; ++t) {
      acc = _mm_add_ps(acc, _mm_mul_ps(_mm_loadu_ps(xi + t),
                                       _mm_set1_ps(rt[t])));
    }
    if (out_stride == 1) {
      _mm_storeu_ps(out + i, acc);
    } else {
      alignas(16) float lanes[4];
      _mm_store_ps(lanes, acc);
      out[i * out_stride] = lanes[0];
      out[(i + 1) * out_stride] = lanes[1];
      out[(i + 2) * out_stride] = lanes[2];
      out[(i + 3) * out_stride] = lanes[3];
    }
  }
  for (; i < n; ++i) {
    float acc = 0.0F;
    const float* xi = x + i;
    for (std::size_t t = 0; t < nt; ++t) acc += xi[t] * rt[t];
    out[i * out_stride] = acc;
  }
}

/// Complex FIR across outputs with real taps: two complex outputs per
/// vector. x/out are interleaved re/im float arrays; strides are in complex
/// samples. in_stride > 1 implements the polyphase decimator (output o
/// reads x starting at complex index o * in_stride).
inline void fir_cx(const float* x, std::size_t in_stride, const float* rt,
                   std::size_t nt, float* out, std::size_t out_stride,
                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128 acc = _mm_setzero_ps();
    const float* x0 = x + 2 * (i * in_stride);
    const float* x1 = x + 2 * ((i + 1) * in_stride);
    for (std::size_t t = 0; t < nt; ++t) {
      __m128 xv;
      if (in_stride == 1) {
        xv = _mm_loadu_ps(x0 + 2 * t);
      } else {
        xv = _mm_loadl_pi(_mm_setzero_ps(),
                          reinterpret_cast<const __m64*>(x0 + 2 * t));
        xv = _mm_loadh_pi(xv, reinterpret_cast<const __m64*>(x1 + 2 * t));
      }
      acc = _mm_add_ps(acc, _mm_mul_ps(xv, _mm_set1_ps(rt[t])));
    }
    if (out_stride == 1) {
      _mm_storeu_ps(out + 2 * i, acc);
    } else {
      _mm_storel_pi(reinterpret_cast<__m64*>(out + 2 * (i * out_stride)), acc);
      _mm_storeh_pi(
          reinterpret_cast<__m64*>(out + 2 * ((i + 1) * out_stride)), acc);
    }
  }
  for (; i < n; ++i) {
    float re = 0.0F;
    float im = 0.0F;
    const float* xi = x + 2 * (i * in_stride);
    for (std::size_t t = 0; t < nt; ++t) {
      re += xi[2 * t] * rt[t];
      im += xi[2 * t + 1] * rt[t];
    }
    out[2 * (i * out_stride)] = re;
    out[2 * (i * out_stride) + 1] = im;
  }
}

/// 4-lane single-precision sin/cos (Cephes-style range reduction + minimax
/// polynomials, the classic sse_mathfun construction). Accurate to ~2 ulp
/// for |x| < 8192 — the subcarrier NCO feeds it phases below ~100 rad.
/// NOT bit-identical to libm cos/sin; call sites must be tolerance-pinned.
inline void sincos_ps(__m128 x, __m128* s, __m128* c) {
  const __m128 sign_mask = _mm_castsi128_ps(_mm_set1_epi32(
      static_cast<int>(0x80000000U)));
  __m128 sign_bit_sin = _mm_and_ps(x, sign_mask);
  x = _mm_andnot_ps(sign_mask, x);  // |x|

  // j = ((int)(x * 4/pi) + 1) & ~1 — quadrant counter, rounded to even.
  __m128 y = _mm_mul_ps(x, _mm_set1_ps(1.27323954473516F));
  __m128i j = _mm_cvttps_epi32(y);
  j = _mm_add_epi32(j, _mm_set1_epi32(1));
  j = _mm_and_si128(j, _mm_set1_epi32(~1));
  y = _mm_cvtepi32_ps(j);

  // sin sign flips when j & 4; the swap (j & 2) selects which polynomial
  // lands in which output; cos sign flips when exactly one of j&2, j&4.
  const __m128 flip_sin = _mm_castsi128_ps(
      _mm_slli_epi32(_mm_and_si128(j, _mm_set1_epi32(4)), 29));
  sign_bit_sin = _mm_xor_ps(sign_bit_sin, flip_sin);
  const __m128 sign_bit_cos = _mm_castsi128_ps(_mm_slli_epi32(
      _mm_and_si128(_mm_andnot_si128(_mm_sub_epi32(j, _mm_set1_epi32(2)),
                                     _mm_set1_epi32(4)),
                    _mm_set1_epi32(4)),
      29));
  const __m128 poly_mask = _mm_castsi128_ps(_mm_cmpeq_epi32(
      _mm_and_si128(j, _mm_set1_epi32(2)), _mm_setzero_si128()));

  // Extended-precision reduction: x -= j * pi/4 in three parts.
  x = _mm_add_ps(x, _mm_mul_ps(y, _mm_set1_ps(-0.78515625F)));
  x = _mm_add_ps(x, _mm_mul_ps(y, _mm_set1_ps(-2.4187564849853515625e-4F)));
  x = _mm_add_ps(x, _mm_mul_ps(y, _mm_set1_ps(-3.77489497744594108e-8F)));

  const __m128 z = _mm_mul_ps(x, x);
  // cos polynomial on the reduced argument.
  __m128 yc = _mm_set1_ps(2.443315711809948e-5F);
  yc = _mm_add_ps(_mm_mul_ps(yc, z), _mm_set1_ps(-1.388731625493765e-3F));
  yc = _mm_add_ps(_mm_mul_ps(yc, z), _mm_set1_ps(4.166664568298827e-2F));
  yc = _mm_mul_ps(_mm_mul_ps(yc, z), z);
  yc = _mm_sub_ps(yc, _mm_mul_ps(z, _mm_set1_ps(0.5F)));
  yc = _mm_add_ps(yc, _mm_set1_ps(1.0F));
  // sin polynomial.
  __m128 ys = _mm_set1_ps(-1.9515295891e-4F);
  ys = _mm_add_ps(_mm_mul_ps(ys, z), _mm_set1_ps(8.3321608736e-3F));
  ys = _mm_add_ps(_mm_mul_ps(ys, z), _mm_set1_ps(-1.6666654611e-1F));
  ys = _mm_add_ps(_mm_mul_ps(_mm_mul_ps(ys, z), x), x);

  const __m128 sin_sel = _mm_or_ps(_mm_and_ps(poly_mask, ys),
                                   _mm_andnot_ps(poly_mask, yc));
  const __m128 cos_sel = _mm_or_ps(_mm_and_ps(poly_mask, yc),
                                   _mm_andnot_ps(poly_mask, ys));
  *s = _mm_xor_ps(sin_sel, sign_bit_sin);
  *c = _mm_xor_ps(cos_sel, sign_bit_cos);
}

#endif  // FMBS_SIMD_ENABLED

}  // namespace fmbs::dsp::simd
