#include "dsp/iir.h"

#include <cmath>
#include <stdexcept>

#include "dsp/math_util.h"

namespace fmbs::dsp {

namespace {
void check_frequency(double f) {
  if (f <= 0.0 || f >= 0.5) {
    throw std::invalid_argument("biquad design: frequency must be in (0, 0.5)");
  }
}

struct RbjIntermediate {
  double w0, cw, sw, alpha;
};

RbjIntermediate rbj(double frequency, double q) {
  check_frequency(frequency);
  if (q <= 0.0) throw std::invalid_argument("biquad design: q must be > 0");
  RbjIntermediate r{};
  r.w0 = kTwoPi * frequency;
  r.cw = std::cos(r.w0);
  r.sw = std::sin(r.w0);
  r.alpha = r.sw / (2.0 * q);
  return r;
}

BiquadCoeffs normalize(double b0, double b1, double b2, double a0, double a1,
                       double a2) {
  return {b0 / a0, b1 / a0, b2 / a0, a1 / a0, a2 / a0};
}
}  // namespace

BiquadCoeffs biquad_lowpass(double frequency, double q) {
  const auto r = rbj(frequency, q);
  const double b1 = 1.0 - r.cw;
  return normalize(b1 / 2.0, b1, b1 / 2.0, 1.0 + r.alpha, -2.0 * r.cw,
                   1.0 - r.alpha);
}

BiquadCoeffs biquad_highpass(double frequency, double q) {
  const auto r = rbj(frequency, q);
  const double b = 1.0 + r.cw;
  return normalize(b / 2.0, -b, b / 2.0, 1.0 + r.alpha, -2.0 * r.cw,
                   1.0 - r.alpha);
}

BiquadCoeffs biquad_bandpass(double frequency, double q) {
  const auto r = rbj(frequency, q);
  return normalize(r.alpha, 0.0, -r.alpha, 1.0 + r.alpha, -2.0 * r.cw,
                   1.0 - r.alpha);
}

BiquadCoeffs biquad_notch(double frequency, double q) {
  const auto r = rbj(frequency, q);
  return normalize(1.0, -2.0 * r.cw, 1.0, 1.0 + r.alpha, -2.0 * r.cw,
                   1.0 - r.alpha);
}

BiquadCoeffs biquad_peak(double frequency, double q, double gain_db) {
  const auto r = rbj(frequency, q);
  const double a = std::pow(10.0, gain_db / 40.0);
  return normalize(1.0 + r.alpha * a, -2.0 * r.cw, 1.0 - r.alpha * a,
                   1.0 + r.alpha / a, -2.0 * r.cw, 1.0 - r.alpha / a);
}

std::vector<float> Biquad::process(std::span<const float> in) {
  std::vector<float> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process_sample(in[i]);
  return out;
}

BiquadCascade::BiquadCascade(const std::vector<BiquadCoeffs>& sections) {
  if (sections.empty()) {
    throw std::invalid_argument("BiquadCascade: need at least one section");
  }
  sections_.reserve(sections.size());
  for (const auto& c : sections) sections_.emplace_back(c);
}

float BiquadCascade::process_sample(float x) {
  for (auto& s : sections_) x = s.process_sample(x);
  return x;
}

std::vector<float> BiquadCascade::process(std::span<const float> in) {
  std::vector<float> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process_sample(in[i]);
  return out;
}

void BiquadCascade::reset() {
  for (auto& s : sections_) s.reset();
}

OnePoleLowpass OnePoleLowpass::from_time_constant(double tau_seconds,
                                                  double sample_rate) {
  if (tau_seconds <= 0.0 || sample_rate <= 0.0) {
    throw std::invalid_argument("OnePoleLowpass: tau and rate must be > 0");
  }
  // Exact discretization of the RC network: alpha = 1 - exp(-T/tau).
  const double alpha = 1.0 - std::exp(-1.0 / (sample_rate * tau_seconds));
  return OnePoleLowpass(alpha);
}

OnePoleLowpass OnePoleLowpass::from_corner(double corner_hz, double sample_rate) {
  if (corner_hz <= 0.0) throw std::invalid_argument("OnePoleLowpass: corner <= 0");
  return from_time_constant(1.0 / (kTwoPi * corner_hz), sample_rate);
}

OnePoleLowpass::OnePoleLowpass(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("OnePoleLowpass: alpha must be in (0, 1]");
  }
}

std::vector<float> OnePoleLowpass::process(std::span<const float> in) {
  std::vector<float> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process_sample(in[i]);
  return out;
}

DcBlocker::DcBlocker(double r) : r_(r) {
  if (r <= 0.0 || r >= 1.0) throw std::invalid_argument("DcBlocker: r in (0,1)");
}

float DcBlocker::process_sample(float x) {
  const double y = static_cast<double>(x) - prev_x_ + r_ * prev_y_;
  prev_x_ = x;
  prev_y_ = y;
  return static_cast<float>(y);
}

std::vector<float> DcBlocker::process(std::span<const float> in) {
  std::vector<float> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process_sample(in[i]);
  return out;
}

void DcBlocker::reset() {
  prev_x_ = 0.0;
  prev_y_ = 0.0;
}

}  // namespace fmbs::dsp
