#include "dsp/spectrum.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"
#include "dsp/math_util.h"

namespace fmbs::dsp {

double Psd::band_power(double lo_hz, double hi_hz) const {
  if (bin_hz <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < power.size(); ++i) {
    const double f = frequency(i);
    if (f >= lo_hz && f <= hi_hz) acc += power[i];
  }
  return acc;
}

double Psd::total_power() const {
  double acc = 0.0;
  for (const double p : power) acc += p;
  return acc;
}

Psd welch_psd(std::span<const float> x, double sample_rate,
              std::size_t segment_size, WindowType window) {
  if (sample_rate <= 0.0) throw std::invalid_argument("welch_psd: bad sample rate");
  if (x.empty()) throw std::invalid_argument("welch_psd: empty signal");
  std::size_t seg = next_pow2(segment_size);
  seg = std::min(seg, next_pow2(x.size()));
  if (seg > x.size()) seg /= 2;
  if (seg < 2) seg = 2;

  const std::vector<float> w = make_window(window, seg);
  const double wss = window_sum_squares(w);
  const std::size_t hop = seg / 2;
  FftPlan plan(seg);

  Psd psd;
  psd.sample_rate = sample_rate;
  psd.bin_hz = sample_rate / static_cast<double>(seg);
  psd.power.assign(seg / 2 + 1, 0.0);

  std::size_t count = 0;
  cvec buf(seg);
  for (std::size_t start = 0; start + seg <= x.size(); start += hop) {
    for (std::size_t i = 0; i < seg; ++i) {
      buf[i] = cfloat(x[start + i] * w[i], 0.0F);
    }
    plan.forward(buf);
    for (std::size_t k = 0; k <= seg / 2; ++k) {
      // One-sided PSD: double the interior bins.
      const double scale = (k == 0 || k == seg / 2) ? 1.0 : 2.0;
      psd.power[k] += scale * static_cast<double>(std::norm(buf[k]));
    }
    ++count;
  }
  if (count == 0) {
    // Signal shorter than one segment: single zero-padded segment.
    for (std::size_t i = 0; i < seg; ++i) {
      buf[i] = i < x.size() ? cfloat(x[i] * w[std::min(i, seg - 1)], 0.0F)
                            : cfloat{};
    }
    plan.forward(buf);
    for (std::size_t k = 0; k <= seg / 2; ++k) {
      const double scale = (k == 0 || k == seg / 2) ? 1.0 : 2.0;
      psd.power[k] += scale * static_cast<double>(std::norm(buf[k]));
    }
    count = 1;
  }
  const double norm = 1.0 / (static_cast<double>(count) * wss * static_cast<double>(seg));
  for (auto& p : psd.power) p *= norm;
  return psd;
}

double tone_snr_db(std::span<const float> x, double sample_rate, double tone_hz,
                   double band_lo_hz, double band_hi_hz, double tone_width_hz) {
  const Psd psd = welch_psd(x, sample_rate, 8192);
  const double p_tone =
      psd.band_power(tone_hz - tone_width_hz, tone_hz + tone_width_hz);
  const double p_band = psd.band_power(band_lo_hz, band_hi_hz);
  // Subtract only the part of the tone window that lies inside the band, so
  // a tone at the band edge cannot drive the remainder negative.
  const double overlap_lo = std::max(band_lo_hz, tone_hz - tone_width_hz);
  const double overlap_hi = std::min(band_hi_hz, tone_hz + tone_width_hz);
  const double p_tone_in_band =
      overlap_hi > overlap_lo ? psd.band_power(overlap_lo, overlap_hi) : 0.0;
  const double p_rest = std::max(p_band - p_tone_in_band, 1e-30);
  return db_from_power_ratio(p_tone / p_rest);
}

double band_power(std::span<const float> x, double sample_rate, double lo_hz,
                  double hi_hz) {
  const Psd psd = welch_psd(x, sample_rate, 8192);
  return psd.band_power(lo_hz, hi_hz);
}

}  // namespace fmbs::dsp
