// Spectral measurement: Welch PSD and band-power/tone-SNR extraction.
// These implement the paper's measurement methodology — e.g. Fig. 6 computes
// "the ratio P_5kHz / (sum_f P_f - P_5kHz)" — directly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/types.h"
#include "dsp/window.h"

namespace fmbs::dsp {

/// Power spectral density estimate with frequency axis metadata.
struct Psd {
  std::vector<double> power;  // linear power per bin
  double bin_hz = 0.0;        // frequency resolution
  double sample_rate = 0.0;

  /// Frequency of bin i in Hz.
  double frequency(std::size_t i) const { return static_cast<double>(i) * bin_hz; }

  /// Total power over [lo_hz, hi_hz].
  double band_power(double lo_hz, double hi_hz) const;

  /// Total power over all bins.
  double total_power() const;
};

/// Welch-averaged PSD of a real signal with 50% overlap Hann segments.
/// segment_size is rounded up to a power of two.
Psd welch_psd(std::span<const float> x, double sample_rate,
              std::size_t segment_size = 4096,
              WindowType window = WindowType::kHann);

/// Measures the SNR of a single tone against everything else in
/// [band_lo_hz, band_hi_hz]: P_tone / (P_band - P_tone). The tone power is
/// integrated over +-tone_width_hz around the nominal frequency.
/// Returns the ratio in dB.
double tone_snr_db(std::span<const float> x, double sample_rate, double tone_hz,
                   double band_lo_hz, double band_hi_hz,
                   double tone_width_hz = 50.0);

/// Average power of a real signal in [lo_hz, hi_hz].
double band_power(std::span<const float> x, double sample_rate, double lo_hz,
                  double hi_hz);

}  // namespace fmbs::dsp
