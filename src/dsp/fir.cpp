#include "dsp/fir.h"

#include <cmath>

#include "dsp/math_util.h"

namespace fmbs::dsp {

namespace {

void check_cutoff(double cutoff) {
  if (cutoff <= 0.0 || cutoff >= 0.5) {
    throw std::invalid_argument("fir design: cutoff must be in (0, 0.5)");
  }
}

std::vector<float> windowed_sinc(std::size_t num_taps, double cutoff,
                                 const std::vector<float>& window) {
  std::vector<float> taps(num_taps);
  const double center = (static_cast<double>(num_taps) - 1.0) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double t = static_cast<double>(i) - center;
    const double v = 2.0 * cutoff * sinc(2.0 * cutoff * t) * window[i];
    taps[i] = static_cast<float>(v);
    sum += v;
  }
  // Normalize to exactly unity DC gain.
  for (auto& t : taps) t = static_cast<float>(t / sum);
  return taps;
}

}  // namespace

std::vector<float> fir_design_lowpass(std::size_t num_taps, double cutoff,
                                      WindowType window) {
  if (num_taps == 0) throw std::invalid_argument("fir design: num_taps must be > 0");
  check_cutoff(cutoff);
  return windowed_sinc(num_taps, cutoff, make_window(window, num_taps));
}

std::vector<float> fir_design_highpass(std::size_t num_taps, double cutoff,
                                       WindowType window) {
  if (num_taps % 2 == 0) {
    // An even length has no well-defined Nyquist response. The historical
    // silent bump to the next odd count left callers that size history or
    // group delay from the requested count off by one sample — reject loudly
    // so the requested count is always the delivered count.
    throw std::invalid_argument(
        "fir_design_highpass: num_taps must be odd (an even-length high-pass "
        "has no well-defined Nyquist response)");
  }
  std::vector<float> lp = fir_design_lowpass(num_taps, cutoff, window);
  // Spectral inversion: delta at center minus low-pass.
  for (auto& t : lp) t = -t;
  lp[(num_taps - 1) / 2] += 1.0F;
  return lp;
}

std::vector<float> fir_design_bandpass(std::size_t num_taps, double low,
                                       double high, WindowType window) {
  if (num_taps == 0) throw std::invalid_argument("fir design: num_taps must be > 0");
  if (!(0.0 < low && low < high && high < 0.5)) {
    throw std::invalid_argument("fir design: require 0 < low < high < 0.5");
  }
  const std::vector<float> w = make_window(window, num_taps);
  std::vector<float> taps(num_taps);
  const double center = (static_cast<double>(num_taps) - 1.0) / 2.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double t = static_cast<double>(i) - center;
    const double v =
        (2.0 * high * sinc(2.0 * high * t) - 2.0 * low * sinc(2.0 * low * t)) * w[i];
    taps[i] = static_cast<float>(v);
  }
  // Normalize to unity gain at the band center.
  const double fc = (low + high) / 2.0;
  double re = 0.0;
  double im = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    re += taps[i] * std::cos(kTwoPi * fc * static_cast<double>(i));
    im += taps[i] * std::sin(kTwoPi * fc * static_cast<double>(i));
  }
  const double gain = std::sqrt(re * re + im * im);
  if (gain > 1e-12) {
    for (auto& t : taps) t = static_cast<float>(t / gain);
  }
  return taps;
}

std::vector<float> fir_design_kaiser_lowpass(double cutoff, double transition_width,
                                             double attenuation_db) {
  check_cutoff(cutoff);
  const double beta = kaiser_beta_for_attenuation(attenuation_db);
  std::size_t num_taps = kaiser_order_for(attenuation_db, transition_width) + 1;
  if (num_taps % 2 == 0) ++num_taps;
  const std::vector<float> w = make_kaiser_window(num_taps, beta);
  return windowed_sinc(num_taps, cutoff, w);
}

}  // namespace fmbs::dsp
