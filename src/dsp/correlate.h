// Cross-correlation and delay estimation. Cooperative backscatter aligns the
// two phones' audio streams with exactly this machinery (paper section 3.3).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fmbs::dsp {

/// Direct cross-correlation r[k] = sum_n a[n] b[n+k] for k in
/// [-max_lag, +max_lag]. Returns 2*max_lag+1 values; index max_lag is lag 0.
std::vector<double> cross_correlate(std::span<const float> a,
                                    std::span<const float> b,
                                    std::size_t max_lag);

/// FFT-based full cross-correlation (linear, zero-padded). Output length is
/// a.size() + b.size() - 1 with lag 0 at index b.size() - 1; entry i
/// corresponds to lag i - (b.size() - 1) applied to b.
std::vector<double> cross_correlate_fft(std::span<const float> a,
                                        std::span<const float> b);

/// Result of delay estimation between two signals.
struct DelayEstimate {
  /// Samples by which `b` must be advanced to align with `a` (may be
  /// negative).
  double delay_samples = 0.0;
  /// Normalized peak correlation in [0, 1]; low values mean unreliable
  /// alignment.
  double peak_correlation = 0.0;
};

/// Estimates the delay of b relative to a by peak-picking the cross
/// correlation over [-max_lag, max_lag], with parabolic interpolation for
/// sub-sample resolution.
DelayEstimate estimate_delay(std::span<const float> a, std::span<const float> b,
                             std::size_t max_lag);

/// Shifts a signal by an integer number of samples (positive = delay),
/// zero-filling the exposed edge. Output length matches the input.
std::vector<float> shift_signal(std::span<const float> x, long shift);

}  // namespace fmbs::dsp
