// Numerically controlled oscillators and complex frequency mixing. The tag's
// FM subcarrier and the receiver's tuner are both built on PhaseAccumulator.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

#include "dsp/math_util.h"
#include "dsp/types.h"

namespace fmbs::dsp {

/// Double-precision phase accumulator wrapping to [0, 2 pi). Double phase is
/// required: at 2.4 MHz sample rate a float accumulator drifts audibly within
/// a fraction of a second.
class PhaseAccumulator {
 public:
  explicit PhaseAccumulator(double initial_phase = 0.0) : phase_(initial_phase) {}

  /// Current phase in radians.
  double phase() const { return phase_; }

  /// Advances by `delta` radians and returns the phase *before* the advance.
  double advance(double delta) {
    const double current = phase_;
    phase_ += delta;
    if (phase_ >= kTwoPi) phase_ -= kTwoPi * std::floor(phase_ / kTwoPi);
    if (phase_ < 0.0) phase_ += kTwoPi * std::ceil(-phase_ / kTwoPi);
    return current;
  }

  void reset(double phase = 0.0) { phase_ = phase; }

 private:
  double phase_;
};

/// Fixed-frequency oscillator producing real or complex samples.
class Oscillator {
 public:
  /// frequency may be negative (complex conjugate rotation).
  Oscillator(double frequency_hz, double sample_rate, double initial_phase = 0.0);

  double frequency_hz() const { return frequency_hz_; }

  /// Next complex sample e^{j phase}.
  cfloat next_complex() {
    const double ph = acc_.advance(step_);
    return cfloat(static_cast<float>(std::cos(ph)), static_cast<float>(std::sin(ph)));
  }

  /// Next real sample cos(phase).
  float next_real() {
    return static_cast<float>(std::cos(acc_.advance(step_)));
  }

  /// Generates n complex samples.
  cvec block_complex(std::size_t n);

  /// Generates n real cosine samples.
  rvec block_real(std::size_t n);

 private:
  double frequency_hz_;
  double step_;
  PhaseAccumulator acc_;
};

/// Streaming complex mixer: multiplies a block by e^{j 2 pi f t}, keeping
/// phase continuity across blocks. Negative f shifts the spectrum down.
class Mixer {
 public:
  Mixer(double frequency_hz, double sample_rate, double initial_phase = 0.0);

  /// Mixes in-place.
  void process_inplace(std::span<cfloat> data);

  /// Mixes out-of-place.
  cvec process(std::span<const cfloat> data);

 private:
  double step_;
  PhaseAccumulator acc_;
};

}  // namespace fmbs::dsp
