// Basic numeric types shared across the fmbs DSP stack.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fmbs::dsp {

/// Complex baseband sample. Single precision: the whole RF pipeline runs in
/// float for throughput; double is used only where accumulation error matters.
using cfloat = std::complex<float>;

/// A block of complex baseband samples.
using cvec = std::vector<cfloat>;

/// A block of real (audio or MPX) samples.
using rvec = std::vector<float>;

}  // namespace fmbs::dsp
