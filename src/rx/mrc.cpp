#include "rx/mrc.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "dsp/correlate.h"

namespace fmbs::rx {

audio::MonoBuffer mrc_combine(const audio::MonoBuffer& audio,
                              std::size_t repetitions,
                              std::size_t max_align_lag) {
  if (repetitions == 0) throw std::invalid_argument("mrc_combine: zero repetitions");
  if (audio.empty()) throw std::invalid_argument("mrc_combine: empty audio");
  const std::size_t seg_len = audio.size() / repetitions;
  if (seg_len == 0) throw std::invalid_argument("mrc_combine: too few samples");

  std::vector<double> acc(seg_len, 0.0);
  const std::span<const float> all(audio.samples);
  const auto first = all.subspan(0, seg_len);
  for (std::size_t r = 0; r < repetitions; ++r) {
    auto seg = all.subspan(r * seg_len, seg_len);
    long shift = 0;
    if (r > 0 && max_align_lag > 0) {
      const dsp::DelayEstimate est = dsp::estimate_delay(first, seg, max_align_lag);
      shift = std::lround(est.delay_samples);
    }
    for (std::size_t i = 0; i < seg_len; ++i) {
      const long j = static_cast<long>(i) + shift;
      if (j >= 0 && j < static_cast<long>(seg_len)) {
        acc[i] += seg[static_cast<std::size_t>(j)];
      }
    }
  }
  std::vector<float> out(seg_len);
  const double inv = 1.0 / static_cast<double>(repetitions);
  for (std::size_t i = 0; i < seg_len; ++i) {
    out[i] = static_cast<float>(acc[i] * inv);
  }
  return audio::MonoBuffer(std::move(out), audio.sample_rate);
}

}  // namespace fmbs::rx
