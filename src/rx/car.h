// Car receiver model (paper section 5.4 / Fig. 14). Differences from the
// phone: a proper whip antenna with the car body as ground plane (lower
// effective noise floor), a non-programmable stereo limited to overlay
// backscatter, and measurement through a microphone recording the cabin
// speakers "with the car's engine running and the windows closed".
#pragma once

#include <cstdint>

#include "audio/audio_buffer.h"

namespace fmbs::rx {

/// Cabin acoustics / measurement-chain options.
struct CabinConfig {
  /// Direct-plus-reflection impulse response of the cabin (seconds, gain).
  double reflection1_delay_s = 0.0021;
  double reflection1_gain = 0.35;
  double reflection2_delay_s = 0.0057;
  double reflection2_gain = 0.18;
  /// Engine-idle rumble level (the paper runs the engine).
  double engine_noise_rms = 0.004;
  double engine_fundamental_hz = 30.0;  // ~900 rpm idle
  /// Microphone band limits.
  double mic_highpass_hz = 80.0;
  double mic_lowpass_hz = 14000.0;
};

/// Applies the cabin speaker -> microphone path to receiver audio.
audio::MonoBuffer apply_cabin_acoustics(const audio::MonoBuffer& in,
                                        const CabinConfig& config = {},
                                        std::uint64_t noise_seed = 7);

}  // namespace fmbs::rx
