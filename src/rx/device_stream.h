// Streaming (block-fed) counterparts of the device audio chains —
// rx::apply_phone_chain and rx::apply_cabin_acoustics — for the streaming
// scenario engine. Both one-shot chains are strictly per-sample causal
// (IIR filters, a sequentially drawn noise stream, delay-line reflections),
// so a persistent-state block decomposition reproduces them bit-for-bit:
// the filters carry their states, the RNG its position, the delay lines
// their input history across block boundaries.
#pragma once

#include <cstddef>
#include <optional>
#include <random>
#include <span>
#include <vector>

#include "dsp/agc.h"
#include "dsp/iir.h"
#include "rx/car.h"
#include "rx/phone_chain.h"

namespace fmbs::rx {

/// Block-fed phone recording chain (one channel), bit-identical to
/// apply_phone_chain on the concatenated stream.
class PhoneChainStream {
 public:
  PhoneChainStream(const PhoneChainConfig& config, double sample_rate,
                   std::uint64_t noise_seed = 99);

  /// Processes one audio block in place.
  void process_inplace(std::span<float> audio);

 private:
  dsp::BiquadCascade lowpass_;
  bool add_noise_;
  std::mt19937_64 rng_;
  std::normal_distribution<float> noise_;
  std::optional<dsp::Agc> agc_;
};

/// Block-fed cabin speaker -> microphone path, bit-identical to
/// apply_cabin_acoustics on the concatenated stream.
class CabinAcousticsStream {
 public:
  CabinAcousticsStream(const CabinConfig& config, double sample_rate,
                       std::uint64_t noise_seed = 7);

  /// Processes one audio block in place.
  void process_inplace(std::span<float> audio);

 private:
  CabinConfig cfg_;
  std::size_t d1_, d2_;
  std::vector<float> hist_;  // input delay line (max(d1, d2) samples)
  std::size_t index_ = 0;    // absolute stream position
  bool engine_noise_;
  std::mt19937_64 rng_;
  std::normal_distribution<float> gauss_;
  double ph1_ = 0.0, ph2_ = 0.0, ph3_ = 0.0;
  double s1_, s2_, s3_;
  float rms_;
  dsp::Biquad mic_hp_, mic_lp_;
};

}  // namespace fmbs::rx
