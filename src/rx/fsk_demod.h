// Non-coherent FSK demodulation — the paper's receiver: "we implement a
// non-coherent FSK receiver which compares the received power on the two
// frequencies and outputs the frequency that has the higher power. This
// eliminates the need for phase and amplitude estimation and makes the
// design resilient to channel changes." The FDM-4FSK variant applies the
// same rule independently within each of the four tone groups.
//
// Symbol timing is recovered by a decision-confidence search over candidate
// offsets (the pipeline's filter group delays are unknown to the receiver).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "audio/audio_buffer.h"
#include "tag/fsk.h"

namespace fmbs::rx {

/// Demodulation result.
struct FskDemodResult {
  std::vector<std::uint8_t> bits;
  double timing_offset_samples = 0.0;  // chosen by the confidence search
  double mean_confidence = 0.0;        // mean (p_max - p_2nd)/p_max per group
};

/// Demodulator options.
struct FskDemodConfig {
  /// Timing search resolution (offsets tried per symbol). The search covers
  /// one symbol period: timing is inherently periodic mod one symbol, so the
  /// end-to-end group delay must stay below a symbol (true for this
  /// pipeline; packet framing resolves whole-symbol slips via its sync word).
  int search_steps_per_symbol = 24;
};

/// One-shot demodulation of `num_bits` bits from audio.
FskDemodResult demodulate_fsk(const audio::MonoBuffer& audio, tag::DataRate rate,
                              std::size_t num_bits,
                              const FskDemodConfig& config = {});

/// Bit-error statistics.
struct BerResult {
  std::size_t bit_errors = 0;
  std::size_t bits_compared = 0;
  double ber = 0.0;
};

/// Compares demodulated bits with the transmitted reference.
BerResult compare_bits(std::span<const std::uint8_t> reference,
                       std::span<const std::uint8_t> received);

}  // namespace fmbs::rx
