#include "rx/phone_chain.h"

#include <cmath>
#include <random>
#include <stdexcept>

#include "dsp/iir.h"
#include "dsp/math_util.h"

namespace fmbs::rx {

// Butterworth Q values for a cascade of second-order sections.
std::vector<dsp::BiquadCoeffs> butterworth_lowpass(double cutoff_norm, int order) {
  if (order < 2 || order % 2 != 0) {
    throw std::invalid_argument("butterworth_lowpass: order must be even >= 2");
  }
  std::vector<dsp::BiquadCoeffs> sections;
  const int pairs = order / 2;
  for (int k = 0; k < pairs; ++k) {
    const double theta =
        dsp::kPi * (2.0 * k + 1.0) / (2.0 * order);
    const double q = 1.0 / (2.0 * std::cos(theta));
    sections.push_back(dsp::biquad_lowpass(cutoff_norm, q));
  }
  return sections;
}

namespace {

std::vector<float> process_channel(const std::vector<float>& in, double rate,
                                   const PhoneChainConfig& cfg,
                                   std::uint64_t noise_seed) {
  dsp::BiquadCascade lp(butterworth_lowpass(cfg.cutoff_hz / rate, cfg.filter_order));
  std::vector<float> out = lp.process(in);
  if (cfg.codec_noise_rms > 0.0) {
    std::mt19937_64 rng(noise_seed);
    std::normal_distribution<float> n(0.0F, static_cast<float>(cfg.codec_noise_rms));
    for (auto& v : out) v += n(rng);
  }
  if (cfg.enable_agc) {
    dsp::Agc agc(cfg.agc, rate);
    out = agc.process(out);
  }
  return out;
}

}  // namespace

audio::MonoBuffer apply_phone_chain(const audio::MonoBuffer& in,
                                    const PhoneChainConfig& config,
                                    std::uint64_t noise_seed) {
  if (in.empty()) throw std::invalid_argument("apply_phone_chain: empty input");
  if (config.cutoff_hz >= in.sample_rate / 2.0) {
    throw std::invalid_argument("apply_phone_chain: cutoff above Nyquist");
  }
  return audio::MonoBuffer(
      process_channel(in.samples, in.sample_rate, config, noise_seed),
      in.sample_rate);
}

audio::StereoBuffer apply_phone_chain(const audio::StereoBuffer& in,
                                      const PhoneChainConfig& config,
                                      std::uint64_t noise_seed) {
  if (in.empty()) throw std::invalid_argument("apply_phone_chain: empty input");
  return audio::StereoBuffer(
      process_channel(in.left, in.sample_rate, config, noise_seed),
      process_channel(in.right, in.sample_rate, config, noise_seed + 1),
      in.sample_rate);
}

}  // namespace fmbs::rx
