// Channel tuner: shifts the wanted FM channel to DC and decimates the
// wideband RF capture to the MPX processing rate. The stopband attenuation
// doubles as the receiver's adjacent-channel selectivity — the paper notes
// the effective noise floor "may instead be limited by power leaked from an
// adjacent channel", which this filter reproduces physically.
#pragma once

#include <memory>
#include <span>

#include "dsp/fir.h"
#include "dsp/nco.h"
#include "dsp/types.h"
#include "fm/constants.h"

namespace fmbs::rx {

/// Tuner parameters.
struct TunerConfig {
  double offset_hz = fm::kDefaultBackscatterShiftHz;  // channel center in the capture
  double rf_rate = fm::kRfRate;
  double output_rate = fm::kMpxRate;
  double passband_hz = 110000.0;       // one-sided channel passband
  double stopband_attenuation_db = 70.0;  // adjacent-channel selectivity
};

/// Streaming tuner (mixer + polyphase decimator).
class Tuner {
 public:
  explicit Tuner(const TunerConfig& config);

  std::size_t decimation() const { return factor_; }

  /// Processes an RF block; block length must be a multiple of decimation().
  dsp::cvec process(std::span<const dsp::cfloat> rf);

  void reset();

 private:
  TunerConfig cfg_;
  std::size_t factor_;
  dsp::Mixer mixer_;
  dsp::FirDecimator<dsp::cfloat> decimator_;
  dsp::cvec work_;
};

}  // namespace fmbs::rx
