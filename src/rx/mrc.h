// Maximal-ratio combining over repeated transmissions — paper section 3.4:
// "we backscatter our data N times and record the raw signals for each
// transmission. Our receiver then uses the sum of these raw signals in order
// to decode the data. Because the noise (i.e., the original audio signal) of
// each transmission are not correlated, the SNR of the sum is therefore up
// to N times that of a single transmission."
#pragma once

#include <cstddef>

#include "audio/audio_buffer.h"

namespace fmbs::rx {

/// Splits `audio` into `repetitions` equal back-to-back segments, aligns
/// segments 2..N to the first by cross-correlation (transmitter repeats are
/// synchronous, but receiver-side drift is tolerated), and returns their
/// sample mean.
audio::MonoBuffer mrc_combine(const audio::MonoBuffer& audio,
                              std::size_t repetitions,
                              std::size_t max_align_lag = 256);

}  // namespace fmbs::rx
