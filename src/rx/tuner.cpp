#include "rx/tuner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmbs::rx {

namespace {

std::size_t compute_factor(const TunerConfig& cfg) {
  const double ratio = cfg.rf_rate / cfg.output_rate;
  const auto factor = static_cast<std::size_t>(ratio + 0.5);
  if (factor == 0 || std::abs(ratio - static_cast<double>(factor)) > 1e-9) {
    throw std::invalid_argument("Tuner: rf_rate must be an integer multiple of output_rate");
  }
  return factor;
}

std::vector<float> design_channel_filter(const TunerConfig& cfg) {
  // Place the -6 dB design cutoff beyond the passband edge so the channel
  // itself sees a flat response; the transition then runs to the adjacent
  // channel (offset - passband), where full selectivity is required.
  const double cutoff = cfg.passband_hz * 1.18 / cfg.rf_rate;
  const double stop_edge =
      (std::abs(cfg.offset_hz) > 2.0 * cfg.passband_hz
           ? std::abs(cfg.offset_hz) - cfg.passband_hz
           : 2.4 * cfg.passband_hz) /
      cfg.rf_rate;
  // Cap the transition width: a wide allowed transition would produce a
  // filter so short that the passband itself droops by a dB or more.
  const double transition = std::clamp(stop_edge - cutoff, 0.02, 0.05);
  return dsp::fir_design_kaiser_lowpass(cutoff, transition,
                                        cfg.stopband_attenuation_db);
}

}  // namespace

Tuner::Tuner(const TunerConfig& config)
    : cfg_(config),
      factor_(compute_factor(config)),
      mixer_(-config.offset_hz, config.rf_rate),
      decimator_(design_channel_filter(config), factor_) {}

dsp::cvec Tuner::process(std::span<const dsp::cfloat> rf) {
  if (rf.size() % factor_ != 0) {
    throw std::invalid_argument("Tuner: block not a multiple of the decimation");
  }
  work_.assign(rf.begin(), rf.end());
  mixer_.process_inplace(work_);
  return decimator_.process(work_);
}

void Tuner::reset() {
  decimator_.reset();
  // Mixer phase continuity is intentional; recreate the Tuner for a fresh start.
}

}  // namespace fmbs::rx
