// Closed-form FSK error model — the analytic half of the hybrid fleet
// engine (paper section 8's metro-scale story). Uncontested links never
// touch the signal-level PHY: their outcome comes from the classical
// noncoherent-FSK error curves, driven by the same link-budget SNR the
// scene would have realized, through a small calibration fitted ONCE
// against the PHY demodulator and pinned by regression test.
//
// Model:
//  * 100 bps is binary noncoherent orthogonal FSK:  Pb = 1/2 exp(-g/2).
//  * 1.6 / 3.2 kbps are FDM-4FSK — each tone group is an independent 4-ary
//    noncoherent orthogonal decision:
//      Ps = sum_{k=1..3} (-1)^{k+1} C(3,k)/(k+1) exp(-g k/(k+1)),
//      Pb = (2/3) Ps.
//  * Rayleigh fading replaces every exp(-a g) by its Rayleigh average
//    1 / (1 + a g_bar)  (E[exp(-a g)] over an exponential g).
// The effective symbol SNR g absorbs everything between the in-channel
// carrier-to-noise ratio and the demodulator's decision statistic (FM noise
// quieting, audio filtering, the FDM power split, timing search) through the
// per-rate linear map  g_db = offset + slope * snr_db  — the calibration.
#pragma once

#include <cstddef>

#include "tag/fsk.h"

namespace fmbs::rx {

/// Per-rate map from in-channel SNR (dB, sideband power over the 200 kHz
/// channel noise) to the demodulator's effective symbol SNR (dB).
struct AnalyticFskCalibration {
  double gamma_offset_db = 0.0;
  double gamma_slope = 1.0;
  /// Residual SNR-independent error floor the demodulator exhibits even on a
  /// saturated-clean link (timing-search edge effects at the highest rate);
  /// 0 for rates whose floor is unmeasurable.
  double ber_floor = 0.0;
};

/// The pinned calibration constants for a rate (fitted against the PHY
/// demodulator by `bench_fleet_capacity --calibrate`; see README).
AnalyticFskCalibration analytic_fsk_calibration(tag::DataRate rate);

/// Raw error curve: BER at effective symbol SNR `gamma_s` (linear power
/// ratio), before any calibration. Monotone decreasing in gamma_s.
double analytic_fsk_ber_at_gamma(double gamma_s, tag::DataRate rate,
                                 bool rayleigh_fading = false);

/// Inverse of the AWGN curve: the effective symbol SNR (linear) that
/// produces `ber` (clamped inside (0, max)). Used by the calibration fit.
double analytic_fsk_gamma_from_ber(double ber, tag::DataRate rate);

/// Calibrated BER of one link at an in-channel SNR (dB). `rayleigh_fading`
/// selects the Rayleigh-averaged curve for links with a fading process.
double analytic_fsk_ber(double snr_db, tag::DataRate rate,
                        bool rayleigh_fading = false);

/// Deterministic burst outcome mirroring rx::BurstReport's packet
/// accounting: a packet is delivered iff its expected all-bits-correct
/// probability (1-ber)^bits reaches 1/2, and a delivered packet counts all
/// its bits (a ragged final packet only its own). Deterministic by design —
/// the analytic path must be bit-identical at any thread count, and at the
/// SNRs where the outcome is genuinely coin-flip the hybrid classifier has
/// already routed the link to the PHY.
struct AnalyticBurstReport {
  double ber = 0.0;
  std::size_t packets = 0;
  std::size_t packets_ok = 0;
  std::size_t bits_delivered = 0;
  double per = 0.0;
};

AnalyticBurstReport analytic_fsk_burst(double snr_db, tag::DataRate rate,
                                       std::size_t num_bits,
                                       std::size_t packet_bits,
                                       bool rayleigh_fading = false);

}  // namespace fmbs::rx
