// Streaming (block-fed) counterpart of rx::demodulate_burst: a collector
// that watches a receiver's decoded-audio stream, captures exactly the
// window the one-shot router would slice out of the full capture, and scores
// the burst once the window is complete — byte-identical to the batch path,
// at O(burst) memory instead of O(run). The capture length must be known up
// front (the streaming engine knows its padded block count before the first
// sample), so truncated end-of-run windows resolve to the same bounds the
// batch engine computes after the fact.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "rx/multitag.h"

namespace fmbs::rx {

/// Accumulates one burst's demodulation window from sequential audio blocks
/// and scores it with the shared window scorer. Feed every block of the
/// receiver's audio stream, in order, starting from sample 0.
class StreamingBurstDemodulator {
 public:
  StreamingBurstDemodulator(const BurstSpec& burst, double sample_rate,
                            std::size_t capture_samples);

  /// Consumes the next audio block (arbitrary length; the collector keeps
  /// only samples inside its window).
  void push(std::span<const float> audio);

  /// True once every sample of the window has been collected (the burst can
  /// be scored mid-stream — this is what makes live decode serving work).
  bool window_complete() const { return collected_ == bounds_.length; }

  /// Bytes of window buffer this collector holds at peak.
  std::size_t buffer_bytes() const { return bounds_.length * sizeof(float); }

  /// Scores the collected window (call once, after window_complete() or at
  /// end of stream — a truncated window scores exactly like the batch
  /// engine's, because the bounds were clamped to the capture up front).
  BurstReport finish() const;

 private:
  BurstSpec burst_;
  double sample_rate_;
  BurstWindowBounds bounds_;
  std::vector<float> window_;
  std::size_t cursor_ = 0;     // absolute stream position
  std::size_t collected_ = 0;  // window samples captured so far
};

}  // namespace fmbs::rx
