#include "rx/car.h"

#include <cmath>
#include <random>
#include <stdexcept>

#include "dsp/iir.h"
#include "dsp/math_util.h"

namespace fmbs::rx {

audio::MonoBuffer apply_cabin_acoustics(const audio::MonoBuffer& in,
                                        const CabinConfig& config,
                                        std::uint64_t noise_seed) {
  if (in.empty()) throw std::invalid_argument("apply_cabin_acoustics: empty input");
  const double rate = in.sample_rate;
  const auto d1 = static_cast<std::size_t>(config.reflection1_delay_s * rate);
  const auto d2 = static_cast<std::size_t>(config.reflection2_delay_s * rate);

  std::vector<float> out(in.size(), 0.0F);
  for (std::size_t i = 0; i < in.size(); ++i) {
    float v = in.samples[i];
    if (i >= d1) v += static_cast<float>(config.reflection1_gain) * in.samples[i - d1];
    if (i >= d2) v += static_cast<float>(config.reflection2_gain) * in.samples[i - d2];
    out[i] = v;
  }

  // Engine idle: fundamental + harmonics with amplitude jitter, plus a weak
  // broadband floor from the HVAC / road.
  if (config.engine_noise_rms > 0.0) {
    std::mt19937_64 rng(noise_seed);
    std::normal_distribution<float> g(0.0F, 1.0F);
    const double f0 = config.engine_fundamental_hz;
    double ph1 = 0.0, ph2 = 0.0, ph3 = 0.0;
    const double s1 = dsp::kTwoPi * f0 / rate;
    const double s2 = dsp::kTwoPi * 2.0 * f0 / rate;
    const double s3 = dsp::kTwoPi * 4.0 * f0 / rate;
    const auto rms = static_cast<float>(config.engine_noise_rms);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ph1 += s1;
      ph2 += s2;
      ph3 += s3;
      const float rumble = static_cast<float>(
          0.8 * std::sin(ph1) + 0.5 * std::sin(ph2) + 0.25 * std::sin(ph3));
      out[i] += rms * (rumble + 0.35F * g(rng));
    }
  }

  dsp::Biquad hp(dsp::biquad_highpass(config.mic_highpass_hz / rate, 0.707));
  dsp::Biquad lp(dsp::biquad_lowpass(config.mic_lowpass_hz / rate, 0.707));
  for (auto& v : out) v = lp.process_sample(hp.process_sample(v));
  return audio::MonoBuffer(std::move(out), rate);
}

}  // namespace fmbs::rx
