#include "rx/device_stream.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/math_util.h"

namespace fmbs::rx {

PhoneChainStream::PhoneChainStream(const PhoneChainConfig& config,
                                   double sample_rate,
                                   std::uint64_t noise_seed)
    : lowpass_(butterworth_lowpass(config.cutoff_hz / sample_rate,
                                   config.filter_order)),
      add_noise_(config.codec_noise_rms > 0.0),
      rng_(noise_seed),
      noise_(0.0F, static_cast<float>(std::max(config.codec_noise_rms,
                                               1e-30))) {
  if (config.cutoff_hz >= sample_rate / 2.0) {
    throw std::invalid_argument("PhoneChainStream: cutoff above Nyquist");
  }
  if (config.enable_agc) agc_.emplace(config.agc, sample_rate);
}

void PhoneChainStream::process_inplace(std::span<float> audio) {
  // Same per-index order as apply_phone_chain's three passes: the cascade
  // never touches the RNG and the AGC sees the noise-added stream, so
  // interleaving the passes per block keeps every sequence identical.
  for (auto& v : audio) v = lowpass_.process_sample(v);
  if (add_noise_) {
    for (auto& v : audio) v += noise_(rng_);
  }
  if (agc_) {
    for (auto& v : audio) v = agc_->process_sample(v);
  }
}

CabinAcousticsStream::CabinAcousticsStream(const CabinConfig& config,
                                           double sample_rate,
                                           std::uint64_t noise_seed)
    : cfg_(config),
      d1_(static_cast<std::size_t>(config.reflection1_delay_s * sample_rate)),
      d2_(static_cast<std::size_t>(config.reflection2_delay_s * sample_rate)),
      engine_noise_(config.engine_noise_rms > 0.0),
      rng_(noise_seed),
      gauss_(0.0F, 1.0F),
      s1_(dsp::kTwoPi * config.engine_fundamental_hz / sample_rate),
      s2_(dsp::kTwoPi * 2.0 * config.engine_fundamental_hz / sample_rate),
      s3_(dsp::kTwoPi * 4.0 * config.engine_fundamental_hz / sample_rate),
      rms_(static_cast<float>(config.engine_noise_rms)),
      mic_hp_(dsp::biquad_highpass(config.mic_highpass_hz / sample_rate,
                                   0.707)),
      mic_lp_(dsp::biquad_lowpass(config.mic_lowpass_hz / sample_rate,
                                  0.707)) {
  hist_.assign(std::max({d1_, d2_, std::size_t{1}}), 0.0F);
}

void CabinAcousticsStream::process_inplace(std::span<float> audio) {
  const auto g1 = static_cast<float>(cfg_.reflection1_gain);
  const auto g2 = static_cast<float>(cfg_.reflection2_gain);
  const std::size_t cap = hist_.size();
  for (auto& sample : audio) {
    const std::size_t i = index_++;
    const float x = sample;
    float v = x;
    if (i >= d1_) v += g1 * (d1_ == 0 ? x : hist_[(i - d1_) % cap]);
    if (i >= d2_) v += g2 * (d2_ == 0 ? x : hist_[(i - d2_) % cap]);
    hist_[i % cap] = x;
    if (engine_noise_) {
      ph1_ += s1_;
      ph2_ += s2_;
      ph3_ += s3_;
      const float rumble =
          static_cast<float>(0.8 * std::sin(ph1_) + 0.5 * std::sin(ph2_) +
                             0.25 * std::sin(ph3_));
      v += rms_ * (rumble + 0.35F * gauss_(rng_));
    }
    sample = mic_lp_.process_sample(mic_hp_.process_sample(v));
  }
}

}  // namespace fmbs::rx
