#include "rx/multitag.h"

#include <algorithm>
#include <cmath>

namespace fmbs::rx {

BurstWindowBounds burst_window_bounds(const BurstSpec& burst,
                                      double sample_rate,
                                      std::size_t capture_samples) {
  BurstWindowBounds bounds;
  const double fs = sample_rate;
  bounds.begin = static_cast<std::size_t>(
      std::llround(std::max(burst.start_seconds, 0.0) * fs));
  const double payload_seconds = static_cast<double>(burst.bits.size()) /
                                 tag::bits_per_second(burst.rate);
  const auto want = static_cast<std::size_t>(
      (payload_seconds + kBurstTailSlackSeconds) * fs);
  bounds.valid = bounds.begin < capture_samples;
  bounds.length =
      bounds.valid ? std::min(want, capture_samples - bounds.begin) : 0;
  return bounds;
}

BurstReport score_burst_window(const audio::MonoBuffer& window,
                               const BurstSpec& burst, bool window_valid) {
  BurstReport report;
  const std::size_t num_bits = burst.bits.size();
  const std::size_t packet_bits =
      burst.packet_bits > 0 ? std::min(burst.packet_bits, num_bits) : num_bits;

  if (!window_valid || num_bits == 0) {
    // Nothing demodulable: every expected bit counts as lost.
    report.ber = compare_bits(burst.bits, {});
  } else {
    const FskDemodResult demod = demodulate_fsk(window, burst.rate, num_bits);
    report.mean_confidence = demod.mean_confidence;
    report.ber = compare_bits(burst.bits, demod.bits);

    // Packet accounting on the same demodulated stream. A ragged final
    // packet counts only its own bits toward bits_delivered.
    for (std::size_t p = 0; p * packet_bits < num_bits; ++p) {
      const std::size_t lo = p * packet_bits;
      const std::size_t hi = std::min(lo + packet_bits, num_bits);
      ++report.packets;
      bool ok = demod.bits.size() >= hi;
      for (std::size_t i = lo; ok && i < hi; ++i) {
        ok = demod.bits[i] == burst.bits[i];
      }
      if (ok) {
        ++report.packets_ok;
        report.bits_delivered += hi - lo;
      }
    }
  }
  if (report.packets == 0 && num_bits > 0) {
    report.packets = (num_bits + packet_bits - 1) / packet_bits;
  }
  report.per = report.packets > 0
                   ? 1.0 - static_cast<double>(report.packets_ok) /
                               static_cast<double>(report.packets)
                   : 0.0;
  return report;
}

BurstReport demodulate_burst(const audio::MonoBuffer& capture,
                             const BurstSpec& burst) {
  const double fs = capture.sample_rate;
  const BurstWindowBounds bounds =
      burst_window_bounds(burst, fs, capture.size());
  audio::MonoBuffer window({}, fs);
  if (bounds.valid) {
    window = audio::MonoBuffer(
        std::vector<float>(
            capture.samples.begin() + static_cast<std::ptrdiff_t>(bounds.begin),
            capture.samples.begin() +
                static_cast<std::ptrdiff_t>(bounds.begin + bounds.length)),
        fs);
  }
  return score_burst_window(window, burst, bounds.valid);
}

std::vector<BurstReport> demodulate_bursts(const audio::MonoBuffer& capture,
                                           std::span<const BurstSpec> bursts) {
  std::vector<BurstReport> reports;
  reports.reserve(bursts.size());
  for (const BurstSpec& burst : bursts) {
    reports.push_back(demodulate_burst(capture, burst));
  }
  return reports;
}

}  // namespace fmbs::rx
