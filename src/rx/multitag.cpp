#include "rx/multitag.h"

#include <algorithm>
#include <cmath>

namespace fmbs::rx {

namespace {

/// Audio kept past the nominal payload end: covers the pipeline group delay
/// plus the timing search window of the demodulator.
constexpr double kTailSlackSeconds = 0.05;

}  // namespace

BurstReport demodulate_burst(const audio::MonoBuffer& capture,
                             const BurstSpec& burst) {
  BurstReport report;
  const std::size_t num_bits = burst.bits.size();
  const std::size_t packet_bits =
      burst.packet_bits > 0 ? std::min(burst.packet_bits, num_bits) : num_bits;

  const double fs = capture.sample_rate;
  const auto start = static_cast<std::size_t>(
      std::llround(std::max(burst.start_seconds, 0.0) * fs));
  const double payload_seconds =
      static_cast<double>(num_bits) / tag::bits_per_second(burst.rate);
  const auto want = static_cast<std::size_t>(
      (payload_seconds + kTailSlackSeconds) * fs);

  if (start >= capture.size() || num_bits == 0) {
    // Nothing demodulable: every expected bit counts as lost.
    report.ber = compare_bits(burst.bits, {});
  } else {
    const std::size_t len = std::min(want, capture.size() - start);
    const audio::MonoBuffer window(
        std::vector<float>(
            capture.samples.begin() + static_cast<std::ptrdiff_t>(start),
            capture.samples.begin() + static_cast<std::ptrdiff_t>(start + len)),
        fs);
    const FskDemodResult demod = demodulate_fsk(window, burst.rate, num_bits);
    report.mean_confidence = demod.mean_confidence;
    report.ber = compare_bits(burst.bits, demod.bits);

    // Packet accounting on the same demodulated stream. A ragged final
    // packet counts only its own bits toward bits_delivered.
    for (std::size_t p = 0; p * packet_bits < num_bits; ++p) {
      const std::size_t lo = p * packet_bits;
      const std::size_t hi = std::min(lo + packet_bits, num_bits);
      ++report.packets;
      bool ok = demod.bits.size() >= hi;
      for (std::size_t i = lo; ok && i < hi; ++i) {
        ok = demod.bits[i] == burst.bits[i];
      }
      if (ok) {
        ++report.packets_ok;
        report.bits_delivered += hi - lo;
      }
    }
  }
  if (report.packets == 0 && num_bits > 0) {
    report.packets = (num_bits + packet_bits - 1) / packet_bits;
  }
  report.per = report.packets > 0
                   ? 1.0 - static_cast<double>(report.packets_ok) /
                               static_cast<double>(report.packets)
                   : 0.0;
  return report;
}

std::vector<BurstReport> demodulate_bursts(const audio::MonoBuffer& capture,
                                           std::span<const BurstSpec> bursts) {
  std::vector<BurstReport> reports;
  reports.reserve(bursts.size());
  for (const BurstSpec& burst : bursts) {
    reports.push_back(demodulate_burst(capture, burst));
  }
  return reports;
}

}  // namespace fmbs::rx
