// Streaming (block-fed) counterpart of rx::decode_rds_link: the decoder's
// front end — mix the 57 kHz subcarrier to DC, 2.4 kHz low-pass — runs block
// by block with persistent mixer/filter state over exactly the window the
// one-shot path would slice, and the global stages (phase estimate, symbol
// timing search, differential decode, block sync) run once at window close
// via fm::decode_rds_baseband. Byte-identical to decode_rds_link on the same
// window, at O(window) memory instead of O(run).
//
// Windows are bounded: a tag burst's window is its on-air time plus slack,
// and an unbounded station window (duration < 0: "decode the whole
// capture") can be capped with `max_window_seconds` so soak runs stay at
// O(1) memory — the station's PS name then decodes from the first cap
// seconds of the run, which is what a real radio's RDS display does anyway.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/fir.h"
#include "dsp/nco.h"
#include "dsp/types.h"
#include "rx/rds_path.h"

namespace fmbs::rx {

/// Accumulates one RDS decode window from sequential MPX blocks. Feed every
/// block of the receiver's post-demodulation MPX, in order, from sample 0.
class RdsStreamDecoder {
 public:
  /// Window selection matches decode_rds_link(mpx, rate, start, duration)
  /// against a capture of `capture_samples`: the capture length must be
  /// known up front (the streaming engine knows its padded block count
  /// before the first sample). `duration_seconds < 0` extends to the end of
  /// the capture; `max_window_seconds > 0` additionally caps the window.
  RdsStreamDecoder(double sample_rate, std::size_t capture_samples,
                   double start_seconds = 0.0, double duration_seconds = -1.0,
                   double max_window_seconds = -1.0);

  /// Consumes the next MPX block (arbitrary length; samples outside the
  /// window are skipped, samples inside stream through the front end).
  void push(std::span<const float> mpx);

  /// True once every window sample has been filtered (the link can be
  /// reported mid-stream).
  bool window_complete() const { return filtered_ == length_; }

  /// Bytes of baseband buffer this decoder holds at peak.
  std::size_t buffer_bytes() const { return length_ * sizeof(dsp::cfloat); }

  /// Runs the global decode stages over the collected baseband and reports
  /// link statistics (call after window_complete() or at end of stream).
  RdsLinkReport finish() const;

 private:
  double sample_rate_;
  std::size_t begin_ = 0;
  std::size_t length_ = 0;
  std::size_t cursor_ = 0;    // absolute stream position
  std::size_t filtered_ = 0;  // window samples through the front end
  dsp::Mixer mixer_;
  dsp::FirFilter<dsp::cfloat> lowpass_;
  std::vector<dsp::cfloat> base_;
  std::vector<dsp::cfloat> work_;
};

}  // namespace fmbs::rx
