#include "rx/cooperative.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/correlate.h"
#include "dsp/goertzel.h"
#include "dsp/iir.h"
#include "dsp/resample.h"

namespace fmbs::rx {

namespace {

double pilot_amplitude(std::span<const float> block, double pilot_hz, double rate) {
  if (block.empty()) return 0.0;
  // goertzel_power returns ~A^2/4 for a sinusoid of amplitude A.
  return 2.0 * std::sqrt(dsp::goertzel_power(block, pilot_hz, rate));
}

}  // namespace

CooperativeResult cancel_ambient(const audio::MonoBuffer& phone1,
                                 const audio::MonoBuffer& phone2,
                                 const CooperativeConfig& config) {
  if (phone1.empty() || phone2.empty()) {
    throw std::invalid_argument("cancel_ambient: empty input");
  }
  if (phone1.sample_rate != phone2.sample_rate) {
    throw std::invalid_argument("cancel_ambient: sample rate mismatch");
  }
  const double rate = phone1.sample_rate;
  const std::size_t up = config.resample_factor;
  const double up_rate = rate * static_cast<double>(up);

  // 1) Software resampling x10 (paper) and time alignment. The alignment is
  // coarse-to-fine: a whole-sample estimate at the native rate bounds the
  // search, then the x10 streams refine to 1/10-sample resolution — same
  // result as a full search at the upsampled rate at a fraction of the cost.
  const dsp::rvec a1 = dsp::upsample_linear(phone1.samples, up);
  const dsp::rvec a2 = dsp::upsample_linear(phone2.samples, up);

  const auto coarse_lag =
      static_cast<std::size_t>(config.max_align_seconds * rate);
  const auto window = std::min<std::size_t>(phone1.samples.size(),
                                            static_cast<std::size_t>(rate));
  const std::size_t skip = window / 8;  // skip receiver/AGC settling
  const dsp::DelayEstimate coarse = dsp::estimate_delay(
      std::span<const float>(phone2.samples).subspan(skip, window - skip),
      std::span<const float>(phone1.samples).subspan(skip, window - skip),
      coarse_lag);
  const long coarse_up = std::lround(coarse.delay_samples * static_cast<double>(up));

  // Fine search: +-2 native samples around the coarse peak at the x10 rate.
  const std::size_t fine_window = std::min<std::size_t>(a2.size(), window * up);
  const std::size_t fine_skip = fine_window / 8;
  const auto fine_span_a2 =
      std::span<const float>(a2).subspan(fine_skip, fine_window - fine_skip);
  const dsp::rvec a1_pre = dsp::shift_signal(a1, -coarse_up);
  const auto fine_span_a1 =
      std::span<const float>(a1_pre).subspan(fine_skip, fine_window - fine_skip);
  const dsp::DelayEstimate fine =
      dsp::estimate_delay(fine_span_a2, fine_span_a1, 2 * up);

  dsp::DelayEstimate est;
  est.delay_samples = static_cast<double>(coarse_up) + fine.delay_samples;
  est.peak_correlation = fine.peak_correlation;
  const long shift = std::lround(est.delay_samples);
  const dsp::rvec a1_aligned = dsp::shift_signal(a1, -shift);

  // 2) AGC calibration from the 13 kHz pilot.
  const auto preamble_len =
      static_cast<std::size_t>(config.pilot.preamble_seconds * up_rate);
  if (preamble_len + 16 >= a2.size()) {
    throw std::invalid_argument("cancel_ambient: signal shorter than preamble");
  }
  // Skip the edges of the preamble (filter transients).
  const std::size_t pre_start = preamble_len / 8;
  const std::size_t pre_count = preamble_len * 3 / 4;
  const double amp_pre = pilot_amplitude(
      std::span<const float>(a2).subspan(pre_start, pre_count),
      config.pilot.pilot_hz, up_rate);
  const double amp_pay = pilot_amplitude(
      std::span<const float>(a2).subspan(preamble_len,
                                         a2.size() - preamble_len),
      config.pilot.pilot_hz, up_rate);
  // Pilot level at the tag: preamble_level during preamble, payload_level
  // during payload; normalize both to recover the receiver gain change.
  const double tx_ratio = config.pilot.preamble_level / config.pilot.payload_level;
  double agc_ratio = 1.0;
  if (amp_pay > 1e-9 && amp_pre > 1e-9) {
    agc_ratio = amp_pre / (amp_pay * tx_ratio);
  }

  dsp::rvec a2_cal(a2.size());
  for (std::size_t i = 0; i < a2.size(); ++i) {
    a2_cal[i] = i < preamble_len ? a2[i]
                                 : static_cast<float>(a2[i] * agc_ratio);
  }

  // 3) Least-squares fit of phone1 onto phone2 over the (gain-corrected)
  // payload region. The backscattered content is uncorrelated with the
  // ambient program, so it does not bias the fit, and using the whole
  // payload keeps the estimate robust even when the program pauses (speech
  // gaps) during the short preamble.
  double num = 0.0, den = 0.0;
  for (std::size_t i = preamble_len; i < a2_cal.size(); ++i) {
    num += static_cast<double>(a2_cal[i]) * a1_aligned[i];
    den += static_cast<double>(a1_aligned[i]) * a1_aligned[i];
  }
  const double g = den > 1e-20 ? num / den : 1.0;

  // 4) Subtract and return the payload region at the original rate.
  dsp::rvec diff(a2_cal.size());
  for (std::size_t i = 0; i < a2_cal.size(); ++i) {
    diff[i] = a2_cal[i] - static_cast<float>(g) * a1_aligned[i];
  }
  dsp::rvec payload(diff.begin() + static_cast<std::ptrdiff_t>(preamble_len),
                    diff.end());
  dsp::rvec down = dsp::downsample_keep(payload, up);

  if (config.notch_pilot) {
    dsp::Biquad notch(dsp::biquad_notch(config.pilot.pilot_hz / rate, 8.0));
    down = notch.process(down);
  }

  CooperativeResult result;
  result.backscatter_audio = audio::MonoBuffer(std::move(down), rate);
  result.delay_samples = est.delay_samples;
  result.agc_ratio = agc_ratio;
  result.ambient_gain = g;
  return result;
}

}  // namespace fmbs::rx
