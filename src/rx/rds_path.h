// Receiver-side RDS data path — the missing leg of the paper's headline
// demo (§4.2, §8, Fig. 3): any unmodified FM radio that demodulates a
// channel also sees the 57 kHz RDS subcarrier in its composite baseband, so
// a backscattering poster can push RadioText ("SIMPLY THREE - TICKETS 50%
// OFF") to its display. This module turns a receiver's post-demodulation
// MPX into decode statistics for one RDS source: a scene station's PS
// broadcast, or a tag's RadioText burst.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace fmbs::fm {
struct RdsDecodeResult;
}  // namespace fmbs::fm

namespace fmbs::rx {

/// Decode statistics of one RDS source recovered from a receiver's
/// post-demodulation MPX. Block accounting is post-sync only (see
/// fm::RdsDecodeResult): `bler` is blocks_failed / (blocks_ok +
/// blocks_failed), pinned to 1.0 when block sync was never acquired, so it
/// can be plotted next to FSK BER in range sweeps.
struct RdsLinkReport {
  bool synced = false;            ///< block sync acquired inside the window
  std::size_t blocks_ok = 0;      ///< post-sync blocks passing the syndrome
  std::size_t blocks_failed = 0;  ///< post-sync blocks failing it
  double bler = 1.0;              ///< block error rate (1.0 when unsynced)
  std::string ps_name;            ///< recovered group-0A program service name
  std::string radiotext;          ///< recovered group-2A RadioText
};

/// Decodes RDS from a window of a receiver's post-demod MPX (at
/// `sample_rate`). `start_seconds` / `duration_seconds` select the window
/// (a negative duration extends to the end of the capture): a tag burst is
/// decoded over its on-air window only, so a co-channel station's own
/// continuous RDS outside the burst cannot skew carrier or symbol-timing
/// recovery toward the wrong source.
RdsLinkReport decode_rds_link(std::span<const float> mpx, double sample_rate,
                              double start_seconds = 0.0,
                              double duration_seconds = -1.0);

/// Converts a raw decoder result into link statistics (BLER pinned to 1.0
/// when no block was ever checked). Shared by the one-shot decode_rds_link
/// and the streaming rx::RdsStreamDecoder.
RdsLinkReport rds_link_report_from(const fm::RdsDecodeResult& decoded);

}  // namespace fmbs::rx
