#include "rx/fsk_stream.h"

#include <algorithm>

namespace fmbs::rx {

StreamingBurstDemodulator::StreamingBurstDemodulator(
    const BurstSpec& burst, double sample_rate, std::size_t capture_samples)
    : burst_(burst),
      sample_rate_(sample_rate),
      bounds_(burst_window_bounds(burst, sample_rate, capture_samples)) {
  window_.reserve(bounds_.length);
}

void StreamingBurstDemodulator::push(std::span<const float> audio) {
  const std::size_t lo = bounds_.begin;
  const std::size_t hi = bounds_.begin + bounds_.length;
  const std::size_t block_lo = cursor_;
  const std::size_t block_hi = cursor_ + audio.size();
  cursor_ = block_hi;
  if (block_hi <= lo || block_lo >= hi) return;
  const std::size_t from = std::max(block_lo, lo);
  const std::size_t to = std::min(block_hi, hi);
  window_.insert(window_.end(), audio.begin() + (from - block_lo),
                 audio.begin() + (to - block_lo));
  collected_ += to - from;
}

BurstReport StreamingBurstDemodulator::finish() const {
  return score_burst_window(audio::MonoBuffer(window_, sample_rate_), burst_,
                            bounds_.valid);
}

}  // namespace fmbs::rx
