// Smartphone audio chain model: what happens to FM audio between the
// receiver chip and the recorded file on the phone (paper section 5.1).
// Fig. 6 measures "a good response below 13 kHz, after which there is a
// sharp drop" attributed to the receiver / recording app / AAC compression;
// this module reproduces that cutoff plus an optional hardware AGC — the
// gain control whose behaviour cooperative backscatter must calibrate out.
#pragma once

#include <vector>

#include "audio/audio_buffer.h"
#include "dsp/agc.h"
#include "dsp/iir.h"

namespace fmbs::rx {

/// Butterworth low-pass as cascaded second-order sections (even order >= 2;
/// throws otherwise). Exposed so the streaming device chain builds the same
/// cascade the one-shot chain uses.
std::vector<dsp::BiquadCoeffs> butterworth_lowpass(double cutoff_norm,
                                                   int order);

/// Phone chain options.
struct PhoneChainConfig {
  double cutoff_hz = 13000.0;      // app/codec low-pass (Fig. 6)
  int filter_order = 8;            // cascaded-biquad order (steep cliff)
  double codec_noise_rms = 5e-4;   // AAC-ish coding noise floor (caps the
                                   // strongest-signal audio SNR near the
                                   // paper's ~55 dB, Fig. 7)
  bool enable_agc = false;         // hardware gain control
  dsp::Agc::Config agc;
};

/// Applies the phone recording chain to decoded FM audio.
audio::MonoBuffer apply_phone_chain(const audio::MonoBuffer& in,
                                    const PhoneChainConfig& config = {},
                                    std::uint64_t noise_seed = 99);

/// Stereo variant (both channels through matched chains).
audio::StereoBuffer apply_phone_chain(const audio::StereoBuffer& in,
                                      const PhoneChainConfig& config = {},
                                      std::uint64_t noise_seed = 99);

}  // namespace fmbs::rx
