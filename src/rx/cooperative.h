// Cooperative backscatter cancellation — paper section 3.3. Two phones near
// the tag tune to different channels:
//   phone 1 @ fc        hears  FM_audio(t)
//   phone 2 @ fc+f_back hears  FM_audio(t) + FM_back(t)
// "Here we have two equations in two unknowns" — subtracting the aligned,
// gain-calibrated streams recovers FM_back(t). The two receiver-side issues
// the paper handles are reproduced faithfully:
//   1. no time synchronization  -> resample both streams x10 in software and
//      cross-correlate to align,
//   2. hardware gain control    -> a 13 kHz tag pilot, sent alone during a
//      preamble and at low level under the payload, calibrates the AGC's
//      gain change; the received signal is rescaled by the amplitude ratio.
#pragma once

#include "audio/audio_buffer.h"
#include "tag/baseband.h"

namespace fmbs::rx {

/// Canceller options (must match the tag's CoopPilotConfig).
struct CooperativeConfig {
  tag::CoopPilotConfig pilot;
  std::size_t resample_factor = 10;  // paper: "by a factor of ten"
  double max_align_seconds = 0.05;
  /// Remove the residual 13 kHz pilot from the recovered audio.
  bool notch_pilot = true;
};

/// Cancellation result.
struct CooperativeResult {
  audio::MonoBuffer backscatter_audio;  // recovered FM_back(t), payload region
  double delay_samples = 0.0;           // phone2 vs phone1 (at the x10 rate)
  double agc_ratio = 1.0;               // preamble/payload pilot amplitude
  double ambient_gain = 1.0;            // least-squares fit of phone1 onto phone2
};

/// Cancels the ambient program from phone2's audio using phone1's.
/// Both buffers must share a sample rate. phone2 must contain the tag's
/// 13 kHz preamble followed by the payload.
CooperativeResult cancel_ambient(const audio::MonoBuffer& phone1,
                                 const audio::MonoBuffer& phone2,
                                 const CooperativeConfig& config = {});

}  // namespace fmbs::rx
