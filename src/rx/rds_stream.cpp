#include "rx/rds_stream.h"

#include <algorithm>
#include <cmath>

#include "fm/constants.h"
#include "fm/rds.h"

namespace fmbs::rx {

RdsStreamDecoder::RdsStreamDecoder(double sample_rate,
                                   std::size_t capture_samples,
                                   double start_seconds,
                                   double duration_seconds,
                                   double max_window_seconds)
    : sample_rate_(sample_rate),
      mixer_(-fm::kRdsCarrierHz, sample_rate),
      lowpass_(dsp::fir_design_lowpass(101, 2400.0 / sample_rate)) {
  // Same window arithmetic as decode_rds_link (which also returns an empty
  // report for an empty capture).
  if (capture_samples == 0 || sample_rate <= 0.0) return;
  begin_ = std::min(
      capture_samples,
      static_cast<std::size_t>(std::max(0.0, start_seconds) * sample_rate));
  length_ = capture_samples - begin_;
  if (duration_seconds >= 0.0) {
    length_ = std::min(
        length_, static_cast<std::size_t>(duration_seconds * sample_rate));
  }
  if (max_window_seconds > 0.0) {
    length_ = std::min(
        length_, static_cast<std::size_t>(max_window_seconds * sample_rate));
  }
  base_.reserve(length_);
}

void RdsStreamDecoder::push(std::span<const float> mpx) {
  const std::size_t lo = begin_;
  const std::size_t hi = begin_ + length_;
  const std::size_t block_lo = cursor_;
  const std::size_t block_hi = cursor_ + mpx.size();
  cursor_ = block_hi;
  if (block_hi <= lo || block_lo >= hi) return;
  const std::size_t from = std::max(block_lo, lo);
  const std::size_t to = std::min(block_hi, hi);
  // Front end of fm::decode_rds, block-streamed: complex downconversion of
  // the 57 kHz subcarrier (the mixer's phase started at the window begin,
  // exactly where the one-shot decoder starts it) into the persistent
  // low-pass. Block-fed FIR state makes the chunked output bit-identical to
  // one-shot filtering of the whole window.
  work_.resize(to - from);
  for (std::size_t i = 0; i < work_.size(); ++i) {
    work_[i] = dsp::cfloat(mpx[from - block_lo + i], 0.0F);
  }
  mixer_.process_inplace(work_);
  const dsp::cvec filtered = lowpass_.process(work_);
  base_.insert(base_.end(), filtered.begin(), filtered.end());
  filtered_ += to - from;
}

RdsLinkReport RdsStreamDecoder::finish() const {
  return rds_link_report_from(fm::decode_rds_baseband(base_, sample_rate_));
}

}  // namespace fmbs::rx
