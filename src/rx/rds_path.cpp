#include "rx/rds_path.h"

#include <algorithm>
#include <cmath>

#include "fm/rds.h"

namespace fmbs::rx {

RdsLinkReport rds_link_report_from(const fm::RdsDecodeResult& decoded) {
  RdsLinkReport report;
  report.synced = decoded.synced;
  report.blocks_ok = decoded.blocks_ok;
  report.blocks_failed = decoded.blocks_failed;
  const std::size_t checked = decoded.blocks_ok + decoded.blocks_failed;
  report.bler = checked > 0
                    ? static_cast<double>(decoded.blocks_failed) /
                          static_cast<double>(checked)
                    : 1.0;
  report.ps_name = decoded.ps_name;
  report.radiotext = decoded.radiotext;
  return report;
}

RdsLinkReport decode_rds_link(std::span<const float> mpx, double sample_rate,
                              double start_seconds, double duration_seconds) {
  if (mpx.empty() || sample_rate <= 0.0) return RdsLinkReport{};
  const std::size_t begin = std::min(
      mpx.size(),
      static_cast<std::size_t>(std::max(0.0, start_seconds) * sample_rate));
  std::size_t length = mpx.size() - begin;
  if (duration_seconds >= 0.0) {
    length = std::min(
        length, static_cast<std::size_t>(duration_seconds * sample_rate));
  }
  return rds_link_report_from(
      fm::decode_rds(mpx.subspan(begin, length), sample_rate));
}

}  // namespace fmbs::rx
