#include "rx/analytic_fsk.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmbs::rx {

namespace {

/// Chance-level BER of each curve (all information destroyed).
double ber_floor_ceiling(tag::DataRate rate) {
  return rate == tag::DataRate::k100bps ? 0.5 : 0.5;  // (2/3) * 0.75 = 0.5
}

}  // namespace

AnalyticFskCalibration analytic_fsk_calibration(tag::DataRate rate) {
  // Fitted once against the PHY demodulator (kNews station, one tag at
  // 4 ft, receiver noise floor swept through the waterfall;
  // `bench_fleet_capacity --calibrate` reproduces the fit) and pinned by
  // tests/rx/test_analytic_fsk.cpp. 100 bps is sync-limited: its measured
  // BER is a cliff (clean above snr -5.5 dB, chance below -6), so the fit
  // pins unit slope through the cliff midpoint — only the knee position
  // matters there. The higher rates show real waterfalls; 3200 bps adds an
  // SNR-independent residual floor of 12/512 bits from timing-search edge
  // effects at the shortest symbol.
  switch (rate) {
    case tag::DataRate::k100bps:
      return {7.16855, 1.0, 0.0};
    case tag::DataRate::k1600bps:
      return {8.88947, 1.16737, 0.0};
    case tag::DataRate::k3200bps:
      return {9.56851, 1.9745, 0.0234375};
  }
  return {};
}

double analytic_fsk_ber_at_gamma(double gamma_s, tag::DataRate rate,
                                 bool rayleigh_fading) {
  if (gamma_s < 0.0) gamma_s = 0.0;
  double pb;
  if (rate == tag::DataRate::k100bps) {
    // Binary noncoherent orthogonal FSK.
    pb = rayleigh_fading ? 0.5 / (1.0 + 0.5 * gamma_s)
                         : 0.5 * std::exp(-0.5 * gamma_s);
  } else {
    // One FDM-4FSK tone group: 4-ary noncoherent orthogonal detection.
    static constexpr double kChoose3[] = {3.0, 3.0, 1.0};  // C(3, k)
    double ps = 0.0;
    for (int k = 1; k <= 3; ++k) {
      const double a = static_cast<double>(k) / (k + 1.0);
      const double avg_exp =
          rayleigh_fading ? 1.0 / (1.0 + a * gamma_s) : std::exp(-a * gamma_s);
      ps += (k % 2 == 1 ? 1.0 : -1.0) * kChoose3[k - 1] * avg_exp / (k + 1.0);
    }
    pb = (2.0 / 3.0) * std::clamp(ps, 0.0, 0.75);
  }
  return std::clamp(pb, 0.0, ber_floor_ceiling(rate));
}

double analytic_fsk_gamma_from_ber(double ber, tag::DataRate rate) {
  const double ceiling = ber_floor_ceiling(rate);
  ber = std::clamp(ber, 1e-12, ceiling * (1.0 - 1e-9));
  // The AWGN curve is strictly decreasing in gamma: bisect.
  double lo = 0.0;
  double hi = 1.0;
  while (analytic_fsk_ber_at_gamma(hi, rate) > ber && hi < 1e9) hi *= 2.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (analytic_fsk_ber_at_gamma(mid, rate) > ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double analytic_fsk_ber(double snr_db, tag::DataRate rate,
                        bool rayleigh_fading) {
  const AnalyticFskCalibration cal = analytic_fsk_calibration(rate);
  const double gamma_db = cal.gamma_offset_db + cal.gamma_slope * snr_db;
  const double gamma_s = std::pow(10.0, gamma_db / 10.0);
  const double curve = analytic_fsk_ber_at_gamma(gamma_s, rate, rayleigh_fading);
  // The floor mixes in as an independent error source so chance level stays
  // exactly 1/2: floor + (1 - 2*floor) * curve.
  return cal.ber_floor + (1.0 - 2.0 * cal.ber_floor) * curve;
}

AnalyticBurstReport analytic_fsk_burst(double snr_db, tag::DataRate rate,
                                       std::size_t num_bits,
                                       std::size_t packet_bits,
                                       bool rayleigh_fading) {
  if (num_bits == 0) {
    throw std::invalid_argument("analytic_fsk_burst: empty payload");
  }
  AnalyticBurstReport report;
  report.ber = analytic_fsk_ber(snr_db, rate, rayleigh_fading);
  const std::size_t pbits =
      packet_bits > 0 ? std::min(packet_bits, num_bits) : num_bits;
  for (std::size_t p = 0; p * pbits < num_bits; ++p) {
    const std::size_t lo = p * pbits;
    const std::size_t hi = std::min(lo + pbits, num_bits);
    ++report.packets;
    // Deterministic expectation threshold; ties (exactly 1/2) deliver, so a
    // noiseless link (ber == 0) is always clean.
    const double p_ok =
        std::pow(1.0 - report.ber, static_cast<double>(hi - lo));
    if (p_ok >= 0.5) {
      ++report.packets_ok;
      report.bits_delivered += hi - lo;
    }
  }
  report.per = 1.0 - static_cast<double>(report.packets_ok) /
                         static_cast<double>(report.packets);
  return report;
}

}  // namespace fmbs::rx
