// Multi-tag demodulation routing: one FM receiver capture may carry several
// tag transmissions (bursts) — concurrent tags on the same backscatter
// channel (ALOHA), or one tag's scheduled packets. Each burst is an expected
// transmission with a known start offset inside the continuous capture; the
// router extracts its audio window, runs the non-coherent FSK demodulator
// and scores BER plus packet-level statistics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "audio/audio_buffer.h"
#include "rx/fsk_demod.h"
#include "tag/fsk.h"

namespace fmbs::rx {

/// One expected tag transmission within a receiver's continuous capture.
struct BurstSpec {
  tag::DataRate rate = tag::DataRate::k1600bps;
  std::vector<std::uint8_t> bits;  // transmitted reference payload
  double start_seconds = 0.0;      // payload start within the capture
  /// Packet size for PER accounting; 0 = the whole payload is one packet.
  std::size_t packet_bits = 0;
};

/// Demodulation + scoring of one burst.
struct BurstReport {
  BerResult ber;
  std::size_t packets = 0;
  std::size_t packets_ok = 0;   // packets decoded with zero bit errors
  std::size_t bits_delivered = 0;  // total payload bits of the ok packets
  double per = 0.0;             // 1 - packets_ok / packets
  double mean_confidence = 0.0; // demodulator decision margin
};

/// Audio kept past the nominal payload end: covers the pipeline group delay
/// plus the timing search window of the demodulator.
inline constexpr double kBurstTailSlackSeconds = 0.05;

/// Where a burst's demodulation window sits inside a capture of
/// `capture_samples` at `sample_rate`: `[begin, begin + length)`, clamped to
/// the capture. `valid` is false when the burst starts past the end of the
/// capture (nothing demodulable — every expected bit counts as lost). Pure
/// arithmetic, shared by the one-shot router and the streaming collector so
/// both slice bit-identical windows.
struct BurstWindowBounds {
  std::size_t begin = 0;
  std::size_t length = 0;
  bool valid = false;
};

BurstWindowBounds burst_window_bounds(const BurstSpec& burst,
                                      double sample_rate,
                                      std::size_t capture_samples);

/// Scores an already-extracted burst window (exactly the samples
/// demodulate_burst slices out of the capture via burst_window_bounds).
/// `window_valid` false marks a fully out-of-range burst: every expected bit
/// is an error and no packet is delivered. Shared by demodulate_burst and
/// the streaming rx::StreamingBurstDemodulator.
BurstReport score_burst_window(const audio::MonoBuffer& window,
                               const BurstSpec& burst, bool window_valid);

/// Demodulates one burst from the capture. The window starts exactly at
/// `start_seconds` (the transmitter-side lead-in convention) and extends a
/// slack past the payload to cover the pipeline group delay. Bursts that
/// fall (partly) outside the capture are scored against whatever bits could
/// be demodulated; fully out-of-range bursts report all bits as errors.
BurstReport demodulate_burst(const audio::MonoBuffer& capture,
                             const BurstSpec& burst);

/// Routes every burst through demodulate_burst (reports parallel to input).
std::vector<BurstReport> demodulate_bursts(const audio::MonoBuffer& capture,
                                           std::span<const BurstSpec> bursts);

}  // namespace fmbs::rx
