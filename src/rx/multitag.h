// Multi-tag demodulation routing: one FM receiver capture may carry several
// tag transmissions (bursts) — concurrent tags on the same backscatter
// channel (ALOHA), or one tag's scheduled packets. Each burst is an expected
// transmission with a known start offset inside the continuous capture; the
// router extracts its audio window, runs the non-coherent FSK demodulator
// and scores BER plus packet-level statistics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "audio/audio_buffer.h"
#include "rx/fsk_demod.h"
#include "tag/fsk.h"

namespace fmbs::rx {

/// One expected tag transmission within a receiver's continuous capture.
struct BurstSpec {
  tag::DataRate rate = tag::DataRate::k1600bps;
  std::vector<std::uint8_t> bits;  // transmitted reference payload
  double start_seconds = 0.0;      // payload start within the capture
  /// Packet size for PER accounting; 0 = the whole payload is one packet.
  std::size_t packet_bits = 0;
};

/// Demodulation + scoring of one burst.
struct BurstReport {
  BerResult ber;
  std::size_t packets = 0;
  std::size_t packets_ok = 0;   // packets decoded with zero bit errors
  std::size_t bits_delivered = 0;  // total payload bits of the ok packets
  double per = 0.0;             // 1 - packets_ok / packets
  double mean_confidence = 0.0; // demodulator decision margin
};

/// Demodulates one burst from the capture. The window starts exactly at
/// `start_seconds` (the transmitter-side lead-in convention) and extends a
/// slack past the payload to cover the pipeline group delay. Bursts that
/// fall (partly) outside the capture are scored against whatever bits could
/// be demodulated; fully out-of-range bursts report all bits as errors.
BurstReport demodulate_burst(const audio::MonoBuffer& capture,
                             const BurstSpec& burst);

/// Routes every burst through demodulate_burst (reports parallel to input).
std::vector<BurstReport> demodulate_bursts(const audio::MonoBuffer& capture,
                                           std::span<const BurstSpec> bursts);

}  // namespace fmbs::rx
