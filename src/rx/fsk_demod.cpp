#include "rx/fsk_demod.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/goertzel.h"

namespace fmbs::rx {

namespace {

struct SymbolDecision {
  std::vector<std::size_t> winners;  // per group
  double confidence = 0.0;
};

SymbolDecision decide_symbol(std::span<const float> block,
                             const dsp::GoertzelBank& bank,
                             const tag::FskParams& params) {
  const std::vector<double> powers = bank.powers(block);
  SymbolDecision d;
  d.winners.resize(params.groups);
  double conf_acc = 0.0;
  for (std::size_t g = 0; g < params.groups; ++g) {
    const std::size_t base = g * params.tones_per_group;
    std::size_t best = 0;
    double p_best = -1.0, p_second = 0.0;
    for (std::size_t t = 0; t < params.tones_per_group; ++t) {
      const double p = powers[base + t];
      if (p > p_best) {
        p_second = p_best;
        p_best = p;
        best = t;
      } else if (p > p_second) {
        p_second = p;
      }
    }
    d.winners[g] = best;
    // Margin normalized by total group power: saturation-free, so symbol
    // boundaries (where power splits between two tones) score distinctly
    // lower than true alignment.
    double p_total = 0.0;
    for (std::size_t t = 0; t < params.tones_per_group; ++t) {
      p_total += powers[base + t];
    }
    conf_acc += p_total > 0.0 ? (p_best - p_second) / p_total : 0.0;
  }
  d.confidence = conf_acc / static_cast<double>(params.groups);
  return d;
}

}  // namespace

FskDemodResult demodulate_fsk(const audio::MonoBuffer& audio, tag::DataRate rate,
                              std::size_t num_bits, const FskDemodConfig& config) {
  if (audio.empty()) throw std::invalid_argument("demodulate_fsk: empty audio");
  const tag::FskParams params = tag::FskParams::for_rate(rate);
  const double fs = audio.sample_rate;
  const auto sps = static_cast<std::size_t>(fs / params.symbol_rate + 0.5);
  const std::size_t num_symbols =
      (num_bits + params.bits_per_symbol - 1) / params.bits_per_symbol;

  dsp::GoertzelBank bank(params.tones_hz, fs);

  // Timing search: maximize mean decision confidence over a subset of
  // symbols, then demodulate everything at the winning offset.
  const std::size_t max_offset = sps > 0 ? sps - 1 : 0;
  const std::size_t step =
      std::max<std::size_t>(1, sps / static_cast<std::size_t>(
                                         config.search_steps_per_symbol));
  const std::size_t probe_symbols = std::min<std::size_t>(num_symbols, 24);

  double best_metric = -1.0;
  std::size_t best_offset = 0;
  for (std::size_t offset = 0; offset <= max_offset; offset += step) {
    double metric = 0.0;
    std::size_t counted = 0;
    for (std::size_t s = 0; s < probe_symbols; ++s) {
      const std::size_t start = offset + s * sps;
      if (start + sps > audio.size()) break;
      const SymbolDecision d = decide_symbol(
          std::span<const float>(audio.samples).subspan(start, sps), bank, params);
      metric += d.confidence;
      ++counted;
    }
    if (counted == 0) continue;
    metric /= static_cast<double>(counted);
    if (metric > best_metric) {
      best_metric = metric;
      best_offset = offset;
    }
  }

  FskDemodResult result;
  result.timing_offset_samples = static_cast<double>(best_offset);
  result.bits.reserve(num_symbols * params.bits_per_symbol);
  double conf_acc = 0.0;
  std::size_t decoded_symbols = 0;
  const std::size_t bits_per_group = params.bits_per_symbol / params.groups;
  for (std::size_t s = 0; s < num_symbols; ++s) {
    const std::size_t start = best_offset + s * sps;
    if (start + sps > audio.size()) break;
    const SymbolDecision d = decide_symbol(
        std::span<const float>(audio.samples).subspan(start, sps), bank, params);
    conf_acc += d.confidence;
    ++decoded_symbols;
    for (std::size_t g = 0; g < params.groups; ++g) {
      for (std::size_t b = 0; b < bits_per_group; ++b) {
        const std::size_t shift = bits_per_group - 1 - b;
        result.bits.push_back(
            static_cast<std::uint8_t>((d.winners[g] >> shift) & 1U));
      }
    }
  }
  result.mean_confidence =
      decoded_symbols > 0 ? conf_acc / static_cast<double>(decoded_symbols) : 0.0;
  if (result.bits.size() > num_bits) result.bits.resize(num_bits);
  return result;
}

BerResult compare_bits(std::span<const std::uint8_t> reference,
                       std::span<const std::uint8_t> received) {
  BerResult r;
  r.bits_compared = std::min(reference.size(), received.size());
  for (std::size_t i = 0; i < r.bits_compared; ++i) {
    if (reference[i] != received[i]) ++r.bit_errors;
  }
  // Bits the receiver failed to produce count as errors (half on average
  // would be optimistic; the paper's BER includes lost symbols).
  if (received.size() < reference.size()) {
    r.bit_errors += reference.size() - received.size();
    r.bits_compared = reference.size();
  }
  r.ber = r.bits_compared > 0
              ? static_cast<double>(r.bit_errors) /
                    static_cast<double>(r.bits_compared)
              : 0.0;
  return r;
}

}  // namespace fmbs::rx
