#include "fm/station_cache.h"

#include <algorithm>
#include <utility>

namespace fmbs::fm {

StationCache& StationCache::instance() {
  static StationCache cache;
  return cache;
}

StationCache::Key StationCache::make_key(const StationConfig& config,
                                         double duration_seconds) {
  Key key;
  key.genre = static_cast<int>(config.program.genre);
  key.stereo = config.program.stereo;
  key.stereo_width = config.program.stereo_width;
  key.ambience_level = config.program.ambience_level;
  key.deviation_hz = config.deviation_hz;
  key.rds_level = config.rds_level;
  key.rds_ps_name = config.rds_ps_name;
  key.preemphasis = config.preemphasis;
  key.seed = config.seed;
  key.duration_seconds = duration_seconds;
  return key;
}

std::shared_ptr<const StationSignal> StationCache::render(
    const StationConfig& config, double duration_seconds) {
  Key key;
  std::shared_future<std::shared_ptr<const StationSignal>> future;
  std::promise<std::shared_ptr<const StationSignal>> promise;
  bool renderer = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!enabled_) {
      lock.unlock();
      return std::make_shared<const StationSignal>(
          render_station(config, duration_seconds));
    }
    key = make_key(config, duration_seconds);
    ++tick_;
    for (Entry& entry : entries_) {
      if (entry.key == key) {
        ++stats_.hits;
        entry.last_used = tick_;
        future = entry.signal;
        break;
      }
    }
    if (!future.valid()) {
      ++stats_.misses;
      if (entries_.size() >= capacity_) {
        auto oldest = std::min_element(entries_.begin(), entries_.end(),
                                       [](const Entry& a, const Entry& b) {
                                         return a.last_used < b.last_used;
                                       });
        entries_.erase(oldest);
      }
      future = promise.get_future().share();
      entries_.push_back(Entry{key, future, tick_});
      renderer = true;
    }
  }
  if (renderer) {
    // Render with the lock released: distinct keys proceed in parallel and
    // same-key callers block on the shared future instead of re-rendering.
    try {
      promise.set_value(std::make_shared<const StationSignal>(
          render_station(config, duration_seconds)));
    } catch (...) {
      promise.set_exception(std::current_exception());
      // Drop the poisoned entry so later calls retry rather than rethrowing
      // a stale error forever; waiters holding the future still see it.
      std::lock_guard<std::mutex> lock(mutex_);
      entries_.erase(
          std::remove_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.key == key; }),
          entries_.end());
    }
  }
  return future.get();
}

void StationCache::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

bool StationCache::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void StationCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(1, capacity);
  while (entries_.size() > capacity_) {
    auto oldest = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.last_used < b.last_used; });
    entries_.erase(oldest);
  }
}

void StationCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

StationCache::Stats StationCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void StationCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = Stats{};
}

}  // namespace fmbs::fm
