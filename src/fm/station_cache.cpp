#include "fm/station_cache.h"

#include <algorithm>
#include <utility>

namespace fmbs::fm {

StationCache& StationCache::instance() {
  static StationCache cache;
  return cache;
}

StationCache::Key StationCache::make_key(const StationConfig& config,
                                         units::Seconds duration) {
  Key key;
  key.genre = static_cast<int>(config.program.genre);
  key.stereo = config.program.stereo;
  key.stereo_width = config.program.stereo_width;
  key.ambience_level = config.program.ambience_level;
  key.deviation_hz = config.deviation.raw();
  key.rds_level = config.rds_level;
  key.rds_ps_name = config.rds_ps_name;
  key.preemphasis = config.preemphasis;
  key.seed = config.seed;
  key.duration_seconds = duration.raw();
  return key;
}

bool StationCache::evict_one_locked() {
  Entry* oldest = nullptr;
  for (Entry& entry : entries_) {
    if (entry.pins > 0) continue;
    if (oldest == nullptr || entry.last_used < oldest->last_used) {
      oldest = &entry;
    }
  }
  if (oldest == nullptr) return false;  // everything pinned: overflow instead
  entries_.erase(entries_.begin() + (oldest - entries_.data()));
  return true;
}

std::shared_ptr<const StationSignal> StationCache::render(
    const StationConfig& config, units::Seconds duration) {
  return render_impl(config, duration, nullptr);
}

std::shared_ptr<const StationSignal> StationCache::render_impl(
    const StationConfig& config, units::Seconds duration, SceneScope* scope) {
  Key key;
  std::shared_future<std::shared_ptr<const StationSignal>> future;
  std::promise<std::shared_ptr<const StationSignal>> promise;
  bool renderer = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!enabled_) {
      lock.unlock();
      return std::make_shared<const StationSignal>(
          render_station(config, duration));
    }
    key = make_key(config, duration);
    ++tick_;
    for (Entry& entry : entries_) {
      if (entry.key == key) {
        ++stats_.hits;
        entry.last_used = tick_;
        if (scope != nullptr &&
            std::find(scope->keys_.begin(), scope->keys_.end(), key) ==
                scope->keys_.end()) {
          ++entry.pins;
          scope->keys_.push_back(key);
        }
        future = entry.signal;
        break;
      }
    }
    if (!future.valid()) {
      ++stats_.misses;
      if (entries_.size() >= capacity_) evict_one_locked();
      future = promise.get_future().share();
      Entry entry{key, future, tick_, 0};
      if (scope != nullptr) {
        entry.pins = 1;
        scope->keys_.push_back(key);
      }
      entries_.push_back(std::move(entry));
      renderer = true;
    }
  }
  if (renderer) {
    // Render with the lock released: distinct keys proceed in parallel and
    // same-key callers block on the shared future instead of re-rendering.
    try {
      promise.set_value(std::make_shared<const StationSignal>(
          render_station(config, duration)));
    } catch (...) {
      promise.set_exception(std::current_exception());
      // Drop the poisoned entry so later calls retry rather than rethrowing
      // a stale error forever; waiters holding the future still see it.
      std::lock_guard<std::mutex> lock(mutex_);
      entries_.erase(
          std::remove_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.key == key; }),
          entries_.end());
      // The scope's pin died with the entry; forget the key so the scope's
      // destructor cannot decrement a pin owned by a scope that re-created
      // the entry later. (The renderer is the scope-owning thread, so
      // touching keys_ here is safe.)
      if (scope != nullptr) {
        scope->keys_.erase(
            std::remove(scope->keys_.begin(), scope->keys_.end(), key),
            scope->keys_.end());
      }
    }
  }
  return future.get();
}

StationCache::SceneScope::~SceneScope() {
  std::lock_guard<std::mutex> lock(cache_.mutex_);
  for (const Key& key : keys_) {
    for (std::size_t i = 0; i < cache_.entries_.size(); ++i) {
      Entry& entry = cache_.entries_[i];
      if (!(entry.key == key)) continue;
      if (entry.pins > 0) --entry.pins;
      if (evict_on_exit_ && entry.pins == 0) {
        cache_.entries_.erase(cache_.entries_.begin() +
                              static_cast<std::ptrdiff_t>(i));
      }
      break;
    }
  }
  // A pinned scene may have overflowed capacity; shrink back now.
  while (cache_.entries_.size() > cache_.capacity_) {
    if (!cache_.evict_one_locked()) break;
  }
}

std::shared_ptr<const StationSignal> StationCache::SceneScope::render(
    const StationConfig& config, units::Seconds duration) {
  return cache_.render_impl(config, duration, this);
}

void StationCache::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

bool StationCache::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void StationCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(1, capacity);
  while (entries_.size() > capacity_) {
    if (!evict_one_locked()) break;  // pinned entries overflow transiently
  }
}

std::size_t StationCache::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void StationCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [](const Entry& e) { return e.pins == 0; }),
                 entries_.end());
}

StationCache::Stats StationCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void StationCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = Stats{};
}

}  // namespace fmbs::fm
