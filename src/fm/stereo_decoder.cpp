#include "fm/stereo_decoder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fir.h"
#include "dsp/goertzel.h"
#include "dsp/iir.h"
#include "dsp/math_util.h"
#include "fm/emphasis.h"

namespace fmbs::fm {

namespace {
constexpr std::size_t kChannelFilterTaps = 127;  // odd -> integer group delay
}

StereoDecodeResult decode_stereo(std::span<const float> mpx,
                                 const StereoDecoderConfig& config) {
  if (mpx.empty()) throw std::invalid_argument("decode_stereo: empty mpx");
  const double rate = config.mpx_rate;
  const double audio_ratio = rate / config.audio_rate;
  const auto decim = static_cast<std::size_t>(audio_ratio + 0.5);
  if (std::abs(audio_ratio - static_cast<double>(decim)) > 1e-9 || decim == 0) {
    throw std::invalid_argument("decode_stereo: mpx_rate must be an integer multiple of audio_rate");
  }

  StereoDecodeResult result;

  // ---- Pilot measurement. Real pilot detectors integrate over short
  // windows (a PLL lock detector with a few-hundred-Hz bandwidth), so the
  // detection SNR is pilot power against the noise inside that bandwidth —
  // this is what makes weak-signal receivers "default back to mono mode"
  // (paper section 5.3). 8 ms windows approximate a ~125 Hz detector.
  const double flank_lo = kPilotHz - 600.0;
  const double flank_hi = kPilotHz + 600.0;
  const auto window = static_cast<std::size_t>(0.008 * rate);
  std::vector<double> window_snr;
  for (std::size_t start = 0; start + window <= mpx.size(); start += window) {
    const auto block = mpx.subspan(start, window);
    const double p_pilot = dsp::goertzel_power(block, kPilotHz, rate);
    const double p_noise = 0.5 * (dsp::goertzel_power(block, flank_lo, rate) +
                                  dsp::goertzel_power(block, flank_hi, rate));
    window_snr.push_back(
        dsp::db_from_power_ratio(p_pilot / std::max(p_noise, 1e-30)));
  }
  result.pilot_snr_db =
      window_snr.empty()
          ? dsp::db_from_power_ratio(
                dsp::goertzel_power(mpx, kPilotHz, rate) /
                std::max(0.5 * (dsp::goertzel_power(mpx, flank_lo, rate) +
                                dsp::goertzel_power(mpx, flank_hi, rate)),
                         1e-30))
          : dsp::quantile(window_snr, 0.5);
  const bool stereo_mode = !config.force_mono &&
                           result.pilot_snr_db >= config.pilot_detect_threshold.raw();
  result.pilot_detected = stereo_mode;

  // ---- Mono path: L+R below 15 kHz. ----
  dsp::FirFilter<float> mono_lp(
      dsp::fir_design_lowpass(kChannelFilterTaps, kMonoAudioHiHz / rate));
  dsp::rvec mid = mono_lp.process(mpx);

  dsp::rvec side(mid.size(), 0.0F);
  if (stereo_mode) {
    // ---- Pilot extraction and 38 kHz carrier regeneration. ----
    dsp::Biquad pilot_bp(dsp::biquad_bandpass(kPilotHz / rate, 40.0));
    dsp::OnePoleLowpass env_lp = dsp::OnePoleLowpass::from_corner(200.0, rate);
    dsp::rvec carrier38(mpx.size());
    for (std::size_t i = 0; i < mpx.size(); ++i) {
      const float p = pilot_bp.process_sample(mpx[i]);
      // Envelope: amplitude^2 = 2 * lowpass(p^2) for a sinusoid.
      const float e2 = env_lp.process_sample(p * p) * 2.0F;
      const float amp = std::sqrt(std::max(e2, 1e-12F));
      const float s = std::clamp(p / amp, -1.0F, 1.0F);  // ~cos(theta)
      carrier38[i] = 2.0F * s * s - 1.0F;                // cos(2 theta)
    }

    // ---- Stereo subband, synchronous demodulation. ----
    dsp::FirFilter<float> stereo_bp(dsp::fir_design_bandpass(
        kChannelFilterTaps, kStereoBandLoHz / rate, kStereoBandHiHz / rate));
    dsp::rvec sub = stereo_bp.process(mpx);
    // The band-pass delays the subcarrier by (N-1)/2 samples; delay the
    // regenerated carrier equally so the product is phase-coherent.
    const std::size_t delay = (kChannelFilterTaps - 1) / 2;
    dsp::rvec product(sub.size(), 0.0F);
    for (std::size_t i = delay; i < sub.size(); ++i) {
      product[i] = 2.0F * sub[i] * carrier38[i - delay];
    }
    dsp::FirFilter<float> side_lp(
        dsp::fir_design_lowpass(kChannelFilterTaps, kMonoAudioHiHz / rate));
    side = side_lp.process(product);
    // `side` now lags `mid` by one extra channel-filter delay; realign.
    dsp::rvec aligned(side.size(), 0.0F);
    const std::size_t lag = (kChannelFilterTaps - 1) / 2;
    for (std::size_t i = 0; i + lag < side.size(); ++i) {
      aligned[i] = side[i + lag];
    }
    // mid must also discard its own leading transient consistently; both
    // paths share the first filter's delay so only the extra lag differs.
    side = std::move(aligned);
  }

  // ---- Matrix back to L/R, undo the program level, decimate to audio rate.
  const float inv_level = config.program_level > 0.0
                              ? static_cast<float>(1.0 / config.program_level)
                              : 1.0F;
  dsp::rvec left_mpx(mid.size()), right_mpx(mid.size());
  for (std::size_t i = 0; i < mid.size(); ++i) {
    const float m = mid[i] * inv_level;
    const float s = side[i] * inv_level;
    left_mpx[i] = m + s;
    right_mpx[i] = m - s;
  }

  const std::size_t trimmed = left_mpx.size() / decim * decim;
  left_mpx.resize(trimmed);
  right_mpx.resize(trimmed);
  const auto audio_taps = dsp::fir_design_lowpass(
      kChannelFilterTaps, 0.45 / static_cast<double>(decim));
  dsp::FirDecimator<float> dec_l(audio_taps, decim);
  dsp::FirDecimator<float> dec_r(audio_taps, decim);
  std::vector<float> left = dec_l.process(left_mpx);
  std::vector<float> right = dec_r.process(right_mpx);

  if (config.deemphasis) {
    DeEmphasis de_l(units::Seconds{kDeemphasisSeconds}, config.audio_rate);
    DeEmphasis de_r(units::Seconds{kDeemphasisSeconds}, config.audio_rate);
    left = de_l.process(left);
    right = de_r.process(right);
  }

  result.audio =
      audio::StereoBuffer(std::move(left), std::move(right), config.audio_rate);
  return result;
}

}  // namespace fmbs::fm
