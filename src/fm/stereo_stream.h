// Streaming (block-fed) counterpart of fm::decode_stereo. The one-shot
// decoder makes exactly one global decision — is the 19 kHz pilot present? —
// from the median of short-window pilot SNRs over the whole capture; every
// other stage is a causal per-sample chain. The streaming decoder therefore
// buffers MPX only until a bounded decision window fills, decides once, and
// from then on streams the identical chain (mono low-pass; pilot band-pass +
// envelope + 38 kHz regeneration, stereo subband product, side low-pass,
// 63-sample realignment; matrix, per-channel decimation, optional
// de-emphasis) with persistent filter state — byte-identical to the one-shot
// decoder whenever the decision window covers the capture (every committed
// golden scenario), and O(window) memory on long runs where the one-shot
// decoder would hold the whole MPX.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/units.h"
#include "dsp/fir.h"
#include "dsp/iir.h"
#include "dsp/types.h"
#include "fm/emphasis.h"
#include "fm/stereo_decoder.h"

namespace fmbs::fm {

/// Block-fed stereo decoder with persistent state. Feed every MPX block of
/// the capture in order; decoded L/R audio (at config.audio_rate) is
/// appended to the caller's buffers as it becomes available (nothing is
/// emitted until the pilot decision window fills).
class StereoStreamDecoder {
 public:
  /// `total_mpx_samples` — the capture length, known up front by the
  /// streaming engine. `decision_window` bounds the pilot decision
  /// (<= 0 uses the whole capture, exactly like the one-shot decoder); the
  /// window is clamped to the capture, so short runs always decide from
  /// everything the one-shot decoder would see.
  StereoStreamDecoder(const StereoDecoderConfig& config,
                      std::size_t total_mpx_samples,
                      units::Seconds decision_window = units::Seconds{-1.0});

  /// Consumes the next MPX block; appends any newly decoded audio.
  void push(std::span<const float> mpx, dsp::rvec& left, dsp::rvec& right);

  /// Flushes the realignment tail and the last decimator feed; appends the
  /// final audio samples. Call exactly once, after the last block.
  void finish(dsp::rvec& left, dsp::rvec& right);

  bool decided() const { return decided_; }
  bool stereo_mode() const { return stereo_mode_; }
  double pilot_snr_db() const { return pilot_snr_db_; }

  /// Bytes of decision buffer this decoder holds at peak.
  std::size_t decision_buffer_bytes() const {
    return decision_len_ * sizeof(float);
  }

 private:
  void decide();
  void process_chain(std::span<const float> mpx, dsp::rvec& left,
                     dsp::rvec& right);
  void drain(dsp::rvec& left, dsp::rvec& right);

  StereoDecoderConfig cfg_;
  std::size_t decim_ = 1;
  float inv_level_ = 1.0F;
  std::size_t total_ = 0;
  std::size_t decision_len_ = 0;

  std::vector<float> decision_buf_;
  bool decided_ = false;
  bool stereo_mode_ = false;
  double pilot_snr_db_ = 0.0;

  // Causal chain state, constructed at decision time.
  std::optional<dsp::FirFilter<float>> mono_lp_;
  std::optional<dsp::Biquad> pilot_bp_;
  std::optional<dsp::OnePoleLowpass> env_lp_;
  std::optional<dsp::FirFilter<float>> stereo_bp_;
  std::optional<dsp::FirFilter<float>> side_lp_;
  std::size_t delay_ = 0;             // (channel filter taps - 1) / 2
  std::vector<float> carrier_hist_;   // regenerated 38 kHz carrier, delayed
  std::vector<float> mid_hist_;       // mid samples awaiting realigned side
  std::vector<float> product_;        // per-block scratch
  std::size_t processed_ = 0;         // MPX samples through the chain

  std::vector<float> pend_l_, pend_r_;  // pre-decimation remainder
  std::optional<dsp::FirDecimator<float>> dec_l_, dec_r_;
  std::optional<DeEmphasis> de_l_, de_r_;
};

}  // namespace fmbs::fm
