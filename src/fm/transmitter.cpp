#include "fm/transmitter.h"

#include <stdexcept>

#include "fm/modulator.h"
#include "fm/rds.h"

namespace fmbs::fm {

StationSignal render_station(const StationConfig& config, units::Seconds duration) {
  if (duration.raw() <= 0.0) {
    throw std::invalid_argument("render_station: duration must be > 0");
  }
  StationSignal out;
  out.sample_rate = kMpxRate;
  out.program = audio::render_program(config.program, duration.raw(),
                                      kAudioRate, config.seed);

  MpxConfig mpx_cfg;
  mpx_cfg.stereo = config.program.stereo;
  mpx_cfg.rds_level = config.rds_level;
  mpx_cfg.preemphasis = config.preemphasis;

  std::vector<unsigned char> rds_bits;
  if (config.rds_level > 0.0) {
    rds_bits = serialize_groups(make_ps_groups(config.rds_ps_name));
  }
  out.mpx = compose_mpx(out.program, mpx_cfg, rds_bits);

  FmModulator mod(config.deviation, kMpxRate);
  out.iq = mod.process(out.mpx);
  return out;
}

}  // namespace fmbs::fm
