#include "fm/receiver.h"

#include <stdexcept>

#include "fm/demodulator.h"

namespace fmbs::fm {

ReceiverOutput receive_fm(std::span<const dsp::cfloat> iq,
                          const ReceiverConfig& config) {
  if (iq.empty()) throw std::invalid_argument("receive_fm: empty input");
  QuadratureDemodulator demod(config.deviation, config.sample_rate);
  ReceiverOutput out;
  out.mpx = demod.process(iq);

  StereoDecoderConfig sd = config.stereo;
  sd.mpx_rate = config.sample_rate;
  const StereoDecodeResult decoded = decode_stereo(out.mpx, sd);
  out.audio = decoded.audio;
  out.stereo_mode = decoded.pilot_detected;
  out.pilot_snr_db = decoded.pilot_snr_db;
  return out;
}

}  // namespace fmbs::fm
