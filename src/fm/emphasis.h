// FM pre-emphasis / de-emphasis (75 us RC network, 50 us variant supported).
// Broadcast FM boosts treble before modulation and the receiver cuts it
// back, which also cuts the triangular FM noise spectrum.
#pragma once

#include <span>
#include <vector>

#include "core/units.h"

namespace fmbs::fm {

/// First-order de-emphasis: H(z) matching the RC low-pass 1/(1 + s tau).
class DeEmphasis {
 public:
  DeEmphasis(units::Seconds tau, double sample_rate);
  float process_sample(float x);
  std::vector<float> process(std::span<const float> in);
  void reset();

 private:
  double alpha_;
  double state_ = 0.0;
};

/// First-order pre-emphasis: the inverse of DeEmphasis (up to the sampling
/// approximation), implemented as a one-zero/one-pole shelf.
class PreEmphasis {
 public:
  PreEmphasis(units::Seconds tau, double sample_rate);
  float process_sample(float x);
  std::vector<float> process(std::span<const float> in);
  void reset();

 private:
  double alpha_;
  double prev_in_ = 0.0;
  double prev_out_ = 0.0;
};

}  // namespace fmbs::fm
