#include "fm/mpx.h"

#include <cmath>
#include <stdexcept>

#include "dsp/fir.h"
#include "dsp/math_util.h"
#include "dsp/nco.h"
#include "dsp/simd.h"
#include "fm/emphasis.h"
#include "fm/rds.h"

namespace fmbs::fm {

namespace {

dsp::rvec upsample_audio(std::span<const float> in, std::size_t factor) {
  if (factor == 1) return dsp::rvec(in.begin(), in.end());
  // 15 kHz program content in a 240 kHz stream: cutoff at the audio rate's
  // Nyquist, scaled for the interpolated rate.
  const double cutoff = 0.5 / static_cast<double>(factor) * 0.9;
  dsp::FirInterpolator<float> interp(
      dsp::fir_design_lowpass(static_cast<std::size_t>(16 * factor) | 1U, cutoff),
      factor);
  return interp.process(in);
}

}  // namespace

dsp::rvec compose_mpx(const audio::StereoBuffer& program, const MpxConfig& config,
                      std::span<const unsigned char> rds_bitstream) {
  if (program.sample_rate <= 0.0 || config.mpx_rate <= 0.0) {
    throw std::invalid_argument("compose_mpx: bad sample rate");
  }
  const double ratio = config.mpx_rate / program.sample_rate;
  const auto factor = static_cast<std::size_t>(ratio + 0.5);
  if (std::abs(ratio - static_cast<double>(factor)) > 1e-9 || factor == 0) {
    throw std::invalid_argument("compose_mpx: mpx_rate must be an integer multiple of the audio rate");
  }

  std::vector<float> left = program.left;
  std::vector<float> right = program.right;
  if (config.preemphasis) {
    PreEmphasis pe_l(units::Seconds{kDeemphasisSeconds}, program.sample_rate);
    PreEmphasis pe_r(units::Seconds{kDeemphasisSeconds}, program.sample_rate);
    left = pe_l.process(left);
    right = pe_r.process(right);
  }

  const dsp::rvec l_up = upsample_audio(left, factor);
  const dsp::rvec r_up = upsample_audio(right, factor);
  const std::size_t n = l_up.size();

  dsp::rvec rds_wave;
  if (config.rds_level > 0.0 && !rds_bitstream.empty()) {
    rds_wave = modulate_rds_subcarrier(rds_bitstream, n, config.mpx_rate);
  }

  dsp::Oscillator pilot(kPilotHz, config.mpx_rate);
  dsp::Oscillator stereo_carrier(kStereoCarrierHz, config.mpx_rate);

  // Hoist the oscillators out of the combine loop. Each oscillator's sample
  // sequence is exactly what interleaved next_real() calls produced (the two
  // accumulators are independent), so this is bit-identical to the historical
  // per-sample loop — and it leaves a pure elementwise combine that the SSE2
  // path below vectorizes with the scalar operation order preserved
  // (elementwise mul/add, no FMA contraction, hence bit-identical too).
  const dsp::rvec pil_w = pilot.block_real(n);
  const dsp::rvec sc_w = stereo_carrier.block_real(n);

  dsp::rvec mpx(n);
  const auto prog = static_cast<float>(config.program_level);
  const auto pil = static_cast<float>(config.pilot_level);
  const auto rds_g = static_cast<float>(config.rds_level);
  const bool have_rds = !rds_wave.empty();
  std::size_t i = 0;
#if FMBS_SIMD_ENABLED
  const __m128 half = _mm_set1_ps(0.5F);
  const __m128 prog_v = _mm_set1_ps(prog);
  const __m128 pil_v = _mm_set1_ps(pil);
  const __m128 rds_v = _mm_set1_ps(rds_g);
  for (; i + 4 <= n; i += 4) {
    const __m128 l = _mm_loadu_ps(l_up.data() + i);
    const __m128 r = _mm_loadu_ps(r_up.data() + i);
    const __m128 mid = _mm_mul_ps(half, _mm_add_ps(l, r));
    __m128 v;
    if (config.stereo) {
      const __m128 side = _mm_mul_ps(half, _mm_sub_ps(l, r));
      const __m128 sc = _mm_loadu_ps(sc_w.data() + i);
      const __m128 p = _mm_loadu_ps(pil_w.data() + i);
      v = _mm_add_ps(
          _mm_mul_ps(prog_v, _mm_add_ps(mid, _mm_mul_ps(side, sc))),
          _mm_mul_ps(pil_v, p));
    } else {
      v = _mm_mul_ps(prog_v, mid);
    }
    if (have_rds) {
      v = _mm_add_ps(v, _mm_mul_ps(rds_v, _mm_loadu_ps(rds_wave.data() + i)));
    }
    _mm_storeu_ps(mpx.data() + i, v);
  }
#endif
  for (; i < n; ++i) {
    const float mid = 0.5F * (l_up[i] + r_up[i]);
    float v = 0.0F;
    if (config.stereo) {
      const float side = 0.5F * (l_up[i] - r_up[i]);
      v = prog * (mid + side * sc_w[i]) + pil * pil_w[i];
    } else {
      // Mono transmissions emit neither pilot nor subcarrier; the hoisted
      // blocks above still advanced both oscillators, as before.
      v = prog * mid;
    }
    if (have_rds) v += rds_g * rds_wave[i];
    mpx[i] = v;
  }
  return mpx;
}

dsp::rvec extract_mono(std::span<const float> mpx, const MpxConfig& config) {
  const double cutoff = kMonoAudioHiHz / config.mpx_rate;
  dsp::FirFilter<float> lp(dsp::fir_design_lowpass(127, cutoff));
  dsp::rvec mono = lp.process(mpx);
  const float inv = config.program_level > 0.0
                        ? static_cast<float>(1.0 / config.program_level)
                        : 1.0F;
  for (auto& v : mono) v *= inv;
  return mono;
}

}  // namespace fmbs::fm
