#include "fm/mpx.h"

#include <cmath>
#include <stdexcept>

#include "dsp/fir.h"
#include "dsp/math_util.h"
#include "dsp/nco.h"
#include "fm/emphasis.h"
#include "fm/rds.h"

namespace fmbs::fm {

namespace {

dsp::rvec upsample_audio(std::span<const float> in, std::size_t factor) {
  if (factor == 1) return dsp::rvec(in.begin(), in.end());
  // 15 kHz program content in a 240 kHz stream: cutoff at the audio rate's
  // Nyquist, scaled for the interpolated rate.
  const double cutoff = 0.5 / static_cast<double>(factor) * 0.9;
  dsp::FirInterpolator<float> interp(
      dsp::fir_design_lowpass(static_cast<std::size_t>(16 * factor) | 1U, cutoff),
      factor);
  return interp.process(in);
}

}  // namespace

dsp::rvec compose_mpx(const audio::StereoBuffer& program, const MpxConfig& config,
                      std::span<const unsigned char> rds_bitstream) {
  if (program.sample_rate <= 0.0 || config.mpx_rate <= 0.0) {
    throw std::invalid_argument("compose_mpx: bad sample rate");
  }
  const double ratio = config.mpx_rate / program.sample_rate;
  const auto factor = static_cast<std::size_t>(ratio + 0.5);
  if (std::abs(ratio - static_cast<double>(factor)) > 1e-9 || factor == 0) {
    throw std::invalid_argument("compose_mpx: mpx_rate must be an integer multiple of the audio rate");
  }

  std::vector<float> left = program.left;
  std::vector<float> right = program.right;
  if (config.preemphasis) {
    PreEmphasis pe_l(kDeemphasisSeconds, program.sample_rate);
    PreEmphasis pe_r(kDeemphasisSeconds, program.sample_rate);
    left = pe_l.process(left);
    right = pe_r.process(right);
  }

  const dsp::rvec l_up = upsample_audio(left, factor);
  const dsp::rvec r_up = upsample_audio(right, factor);
  const std::size_t n = l_up.size();

  dsp::rvec rds_wave;
  if (config.rds_level > 0.0 && !rds_bitstream.empty()) {
    rds_wave = modulate_rds_subcarrier(rds_bitstream, n, config.mpx_rate);
  }

  dsp::Oscillator pilot(kPilotHz, config.mpx_rate);
  dsp::Oscillator stereo_carrier(kStereoCarrierHz, config.mpx_rate);

  dsp::rvec mpx(n);
  const auto prog = static_cast<float>(config.program_level);
  const auto pil = static_cast<float>(config.pilot_level);
  const auto rds_g = static_cast<float>(config.rds_level);
  for (std::size_t i = 0; i < n; ++i) {
    const float mid = 0.5F * (l_up[i] + r_up[i]);
    float v = 0.0F;
    if (config.stereo) {
      const float side = 0.5F * (l_up[i] - r_up[i]);
      v = prog * (mid + side * stereo_carrier.next_real()) + pil * pilot.next_real();
    } else {
      // Mono transmissions still advance the oscillators to keep the code
      // path uniform but emit neither pilot nor subcarrier.
      (void)stereo_carrier.next_real();
      (void)pilot.next_real();
      v = prog * mid;
    }
    if (!rds_wave.empty()) v += rds_g * rds_wave[i];
    mpx[i] = v;
  }
  return mpx;
}

dsp::rvec extract_mono(std::span<const float> mpx, const MpxConfig& config) {
  const double cutoff = kMonoAudioHiHz / config.mpx_rate;
  dsp::FirFilter<float> lp(dsp::fir_design_lowpass(127, cutoff));
  dsp::rvec mono = lp.process(mpx);
  const float inv = config.program_level > 0.0
                        ? static_cast<float>(1.0 / config.program_level)
                        : 1.0F;
  for (auto& v : mono) v *= inv;
  return mono;
}

}  // namespace fmbs::fm
