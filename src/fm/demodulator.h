// FM demodulator: quadrature (polar) discriminator. This is the software
// equivalent of the derivative + divide decoding described in paper
// section 3.2 ("in practice FM receiver circuits implement these decoding
// steps using phase-locked loop circuits") — the discriminator recovers
// d(phase)/dt, which is the composite baseband scaled by the deviation.
#pragma once

#include <span>

#include "core/units.h"
#include "dsp/types.h"
#include "fm/constants.h"

namespace fmbs::fm {

/// Streaming quadrature discriminator. Output is normalized so that a
/// transmitter deviation of `deviation` yields unit-amplitude MPX.
class QuadratureDemodulator {
 public:
  QuadratureDemodulator(units::Hertz deviation, double sample_rate);

  /// Demodulates a block of IQ into composite baseband samples.
  dsp::rvec process(std::span<const dsp::cfloat> iq);

  void reset();

 private:
  double gain_;
  dsp::cfloat prev_{1.0F, 0.0F};
};

}  // namespace fmbs::fm
