// FM broadcast constants (FCC Part 73 / ITU-R BS.450 values used throughout
// the paper) and the simulation's canonical sample rates.
#pragma once

namespace fmbs::fm {

/// 19 kHz stereo pilot tone (paper Fig. 3).
inline constexpr double kPilotHz = 19000.0;

/// 38 kHz DSB-SC stereo (L-R) subcarrier = 2x pilot.
inline constexpr double kStereoCarrierHz = 38000.0;

/// Stereo subband occupies 23-53 kHz of the composite baseband.
inline constexpr double kStereoBandLoHz = 23000.0;
inline constexpr double kStereoBandHiHz = 53000.0;

/// 57 kHz RDS subcarrier = 3x pilot; RDS occupies roughly 56-58 kHz.
inline constexpr double kRdsCarrierHz = 57000.0;

/// RDS bit rate: 57 kHz / 48.
inline constexpr double kRdsBitRateHz = 1187.5;

/// Audio program band of the mono (L+R) stream: 30 Hz - 15 kHz.
inline constexpr double kMonoAudioLoHz = 30.0;
inline constexpr double kMonoAudioHiHz = 15000.0;

/// Maximum FM frequency deviation for broadcast (100% modulation).
inline constexpr double kMaxDeviationHz = 75000.0;

/// US FM channel spacing; stations sit at 88.1 + 0.2 k MHz.
inline constexpr double kChannelSpacingHz = 200000.0;

/// First and last US FM channel center frequencies.
inline constexpr double kBandLoHz = 88.1e6;
inline constexpr double kBandHiHz = 107.9e6;

/// Number of US FM channels.
inline constexpr int kNumChannels = 100;

/// Carson-rule bandwidth for deviation 75 kHz + baseband to 58 kHz:
/// 2 (75 + 58) kHz = 266 kHz (paper section 3.2).
inline constexpr double kCarsonBandwidthHz = 266000.0;

/// Nominal mono + pilot modulation split: program gets 90% of the deviation
/// budget, the pilot gets ~10% (8-10% is standard; the paper's stereo
/// backscatter equation uses 0.9/0.1).
inline constexpr double kProgramLevel = 0.9;
inline constexpr double kPilotLevel = 0.1;

/// North-American de-emphasis time constant.
inline constexpr double kDeemphasisSeconds = 75e-6;

// ---- Simulation rates (integer chain 48 kHz x5 = 240 kHz, x10 = 2.4 MHz). --

/// Audio rate for program material and receiver output.
inline constexpr double kAudioRate = 48000.0;

/// Composite (MPX) baseband rate; must exceed 2x58 kHz comfortably.
inline constexpr double kMpxRate = 240000.0;

/// Complex-baseband RF simulation rate; wide enough for a station at 0 and a
/// backscatter channel at +-600 kHz plus Carson bandwidth.
inline constexpr double kRfRate = 2400000.0;

/// Audio -> MPX and MPX -> RF integer rate factors.
inline constexpr int kAudioToMpxFactor = 5;
inline constexpr int kMpxToRfFactor = 10;

/// The paper's canonical backscatter shift: 600 kHz (91.5 -> 92.1 MHz).
inline constexpr double kDefaultBackscatterShiftHz = 600000.0;

}  // namespace fmbs::fm
