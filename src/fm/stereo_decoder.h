// Pilot-gated FM stereo decoder. Mirrors a real receiver chip's behaviour,
// which the paper's stereo and cooperative techniques depend on:
//  * the 19 kHz pilot is detected against the local noise floor; with no (or
//    buried) pilot the receiver falls back to mono — this is why stereo
//    backscatter "requires a higher power to detect the 19 kHz pilot" and
//    why the tag can force stereo mode by injecting its own pilot,
//  * in stereo mode the 38 kHz carrier is regenerated from the pilot and the
//    DSB-SC (L-R) subband is synchronously demodulated,
//  * receivers output only L and R — never the L-R stream — so the stereo
//    data path must re-derive (L-R)/2 from (L,R), exactly as the paper does.
#pragma once

#include <span>

#include "audio/audio_buffer.h"
#include "core/units.h"
#include "dsp/types.h"
#include "fm/constants.h"

namespace fmbs::fm {

/// Stereo decoding options.
struct StereoDecoderConfig {
  double mpx_rate = kMpxRate;
  double audio_rate = kAudioRate;
  double program_level = kProgramLevel;
  /// Pilot detection: required power ratio of the 19 kHz bin over the
  /// adjacent noise bins. Below this the decoder stays in mono mode.
  units::Db pilot_detect_threshold{16.0};
  /// Force mono decoding regardless of pilot (car radios in mono mode, and
  /// the paper's mono-only experiments).
  bool force_mono = false;
  /// Apply 75 us de-emphasis to the decoded audio.
  bool deemphasis = false;
};

/// Decoded audio plus receiver state.
struct StereoDecodeResult {
  audio::StereoBuffer audio;    // L/R at audio_rate (duplicated if mono mode)
  bool pilot_detected = false;  // receiver ran in stereo mode
  double pilot_snr_db = 0.0;    // measured pilot-to-adjacent-noise ratio
};

/// One-shot decode of a composite MPX buffer.
StereoDecodeResult decode_stereo(std::span<const float> mpx,
                                 const StereoDecoderConfig& config);

}  // namespace fmbs::fm
