#include "fm/emphasis.h"

#include <cmath>
#include <stdexcept>

namespace fmbs::fm {

namespace {
double alpha_for(double tau_seconds, double sample_rate) {
  if (tau_seconds <= 0.0 || sample_rate <= 0.0) {
    throw std::invalid_argument("emphasis: tau and rate must be > 0");
  }
  return 1.0 - std::exp(-1.0 / (tau_seconds * sample_rate));
}
}  // namespace

DeEmphasis::DeEmphasis(units::Seconds tau, double sample_rate)
    : alpha_(alpha_for(tau.raw(), sample_rate)) {}

float DeEmphasis::process_sample(float x) {
  state_ += alpha_ * (static_cast<double>(x) - state_);
  return static_cast<float>(state_);
}

std::vector<float> DeEmphasis::process(std::span<const float> in) {
  std::vector<float> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process_sample(in[i]);
  return out;
}

void DeEmphasis::reset() { state_ = 0.0; }

PreEmphasis::PreEmphasis(units::Seconds tau, double sample_rate)
    : alpha_(alpha_for(tau.raw(), sample_rate)) {}

float PreEmphasis::process_sample(float x) {
  // Invert y[n] = y[n-1] + alpha (x[n] - y[n-1]):
  //   x[n] = (y[n] - (1-alpha) y[n-1]) / alpha, with roles swapped so this
  // filter undoes DeEmphasis when cascaded.
  const double y =
      (static_cast<double>(x) - (1.0 - alpha_) * prev_in_) / alpha_;
  prev_in_ = x;
  prev_out_ = y;
  return static_cast<float>(y);
}

std::vector<float> PreEmphasis::process(std::span<const float> in) {
  std::vector<float> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process_sample(in[i]);
  return out;
}

void PreEmphasis::reset() {
  prev_in_ = 0.0;
  prev_out_ = 0.0;
}

}  // namespace fmbs::fm
