// FM station: program synthesis -> MPX composition -> Eq.-1 modulation.
// Produces the ambient signal every experiment backscatters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "audio/audio_buffer.h"
#include "audio/program.h"
#include "core/units.h"
#include "dsp/types.h"
#include "fm/constants.h"
#include "fm/mpx.h"

namespace fmbs::fm {

/// Everything that defines an FM station in the simulation.
struct StationConfig {
  audio::ProgramConfig program;
  /// Frequency deviation; the paper uses the maximum allowed 75 kHz.
  units::Hertz deviation{kMaxDeviationHz};
  /// RDS injection (0 disables). PS name is broadcast as group 0A.
  double rds_level = 0.0;
  std::string rds_ps_name = "FMBSCTTR";
  /// Apply broadcast pre-emphasis to the program audio.
  bool preemphasis = false;
  /// Deterministic content seed.
  std::uint64_t seed = 1;
};

/// A rendered station transmission.
struct StationSignal {
  dsp::cvec iq;                 // unit-amplitude complex baseband at mpx rate
  dsp::rvec mpx;                // the composite baseband that was modulated
  audio::StereoBuffer program;  // the program audio (ground truth)
  double sample_rate = kMpxRate;
};

/// Renders `duration` of a station's transmission at the MPX rate.
/// The IQ is unit amplitude; the RF scene applies transmit power.
StationSignal render_station(const StationConfig& config, units::Seconds duration);

}  // namespace fmbs::fm
