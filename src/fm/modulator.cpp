#include "fm/modulator.h"

#include <cmath>
#include <stdexcept>

#include "dsp/math_util.h"

namespace fmbs::fm {

FmModulator::FmModulator(units::Hertz deviation, double sample_rate)
    : deviation_hz_(deviation.raw()), sample_rate_(sample_rate) {
  if (deviation_hz_ <= 0.0 || sample_rate <= 0.0) {
    throw std::invalid_argument("FmModulator: deviation and rate must be > 0");
  }
  if (deviation_hz_ >= sample_rate / 2.0) {
    throw std::invalid_argument("FmModulator: deviation exceeds Nyquist");
  }
}

dsp::cvec FmModulator::process(std::span<const float> mpx) {
  dsp::cvec out(mpx.size());
  const double k = dsp::kTwoPi * deviation_hz_ / sample_rate_;
  for (std::size_t i = 0; i < mpx.size(); ++i) {
    const double ph = phase_.advance(k * static_cast<double>(mpx[i]));
    out[i] = dsp::cfloat(static_cast<float>(std::cos(ph)),
                         static_cast<float>(std::sin(ph)));
  }
  return out;
}

void FmModulator::reset() { phase_.reset(); }

}  // namespace fmbs::fm
