// Radio Data System (RDS) codec — the 57 kHz digital subcarrier of Fig. 3.
// Implements the physical layer the paper describes as part of the FM
// baseband structure: 1187.5 bps data, differentially encoded, biphase
// (Manchester) shaped, BPSK-modulated on the 57 kHz subcarrier, framed as
// groups of four 26-bit blocks (16 information + 10 checkword bits) with the
// standard offset words A/B/C/C'/D.
//
// The encoder emits group type 0A carrying a station PS name; the decoder
// performs carrier recovery, symbol timing search, differential decode and
// syndrome-based block synchronization.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dsp/types.h"
#include "fm/constants.h"

namespace fmbs::fm {

/// One RDS group: four 16-bit information words (A, B, C, D blocks).
struct RdsGroup {
  std::array<std::uint16_t, 4> blocks{};
};

/// Computes the 10-bit RDS checkword (CRC with generator x^10 + x^8 + x^7 +
/// x^5 + x^4 + x^3 + 1) for a 16-bit information word, before offset.
std::uint16_t rds_checkword(std::uint16_t info);

/// Standard offset words added to checkwords for block identification.
enum class RdsOffset : std::uint16_t {
  kA = 0x0FC,
  kB = 0x198,
  kC = 0x168,
  kCPrime = 0x350,
  kD = 0x1B4,
};

/// Builds the group-0A sequence that broadcasts an 8-character program
/// service (PS) name. Shorter names are space padded. Returns 4 groups (one
/// per 2-character segment).
std::vector<RdsGroup> make_ps_groups(const std::string& ps_name,
                                     std::uint16_t program_id = 0x1234);

/// Builds the group-2A sequence for a RadioText message (up to 64
/// characters, 4 per group). This is how a backscattering poster can push a
/// full sentence ("SIMPLY THREE - TICKETS 50% OFF") to any RDS radio display.
std::vector<RdsGroup> make_radiotext_groups(const std::string& text,
                                            std::uint16_t program_id = 0x1234);

/// Serializes groups into the on-air bit sequence (26 bits per block,
/// checkwords + offsets included), MSB first.
std::vector<unsigned char> serialize_groups(std::span<const RdsGroup> groups);

/// Modulates an RDS bitstream onto the 57 kHz subcarrier: differential
/// encoding, biphase symbol shaping, BPSK. Produces `num_samples` samples at
/// `sample_rate` (bits repeat cyclically if needed). Unit amplitude — caller
/// applies the injection level.
dsp::rvec modulate_rds_subcarrier(std::span<const unsigned char> bits,
                                  std::size_t num_samples, double sample_rate);

/// Result of RDS demodulation.
///
/// Error accounting semantics: after block sync is acquired (the first bit
/// alignment where four consecutive 26-bit windows carry offsets A, B,
/// C/C', D with zero syndrome), the decoder strides group by group and
/// checks every 26-bit block against its expected offset word. Only these
/// post-sync blocks enter the tallies — the misaligned offsets probed
/// during acquisition are not "failed blocks", so a clean capture reports
/// blocks_failed == 0 and the block error rate is simply
/// blocks_failed / (blocks_ok + blocks_failed).
struct RdsDecodeResult {
  std::vector<RdsGroup> groups;   // post-sync windows with all 4 blocks clean
  std::string ps_name;            // reassembled from group 0A/0B segments
  std::string radiotext;          // reassembled from group 2A segments
  std::size_t bits_decoded = 0;
  bool synced = false;            // block sync ever acquired
  std::size_t blocks_ok = 0;      // post-sync blocks passing the syndrome
  std::size_t blocks_failed = 0;  // post-sync blocks failing the syndrome
};

/// Demodulates and decodes RDS from a composite MPX signal.
RdsDecodeResult decode_rds(std::span<const float> mpx, double sample_rate);

/// Decodes RDS from an already-downconverted 57 kHz baseband (the output of
/// decode_rds's front end: mix by -57 kHz, 2.4 kHz low-pass, full rate).
/// This is the global half of the decoder — phase estimate, symbol-timing
/// search, differential decode, block sync — split out so a streaming front
/// end (rx::RdsStreamDecoder) can filter block by block and run these
/// stages once at window close, byte-identical to the one-shot decode_rds.
RdsDecodeResult decode_rds_baseband(std::span<const dsp::cfloat> base,
                                    double sample_rate);

}  // namespace fmbs::fm
