#include "fm/rds.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <stdexcept>

#include "dsp/fir.h"
#include "dsp/math_util.h"
#include "dsp/nco.h"

namespace fmbs::fm {

namespace {

constexpr int kBlockBits = 26;
constexpr int kInfoBits = 16;
constexpr std::uint16_t kPoly = 0x5B9;  // x^10+x^8+x^7+x^5+x^4+x^3+1 (10-bit CRC)

// The four block offsets in group order.
constexpr std::array<RdsOffset, 4> kGroupOffsets{RdsOffset::kA, RdsOffset::kB,
                                                 RdsOffset::kC, RdsOffset::kD};

std::uint32_t block_bits(std::uint16_t info, RdsOffset offset) {
  const std::uint16_t check =
      rds_checkword(info) ^ static_cast<std::uint16_t>(offset);
  return (static_cast<std::uint32_t>(info) << 10) | check;
}

// Syndrome of a received 26-bit block: zero (after offset removal) when the
// block is error free.
std::uint16_t syndrome(std::uint32_t block) {
  const auto info = static_cast<std::uint16_t>(block >> 10);
  const auto check = static_cast<std::uint16_t>(block & 0x3FF);
  return static_cast<std::uint16_t>(rds_checkword(info) ^ check);
}

}  // namespace

std::uint16_t rds_checkword(std::uint16_t info) {
  // Polynomial division of info * x^10 by the generator.
  std::uint32_t reg = static_cast<std::uint32_t>(info) << 10;
  for (int bit = kBlockBits - 1; bit >= 10; --bit) {
    if (reg & (1U << bit)) {
      reg ^= static_cast<std::uint32_t>(kPoly) << (bit - 10);
    }
  }
  return static_cast<std::uint16_t>(reg & 0x3FF);
}

std::vector<RdsGroup> make_ps_groups(const std::string& ps_name,
                                     std::uint16_t program_id) {
  std::string ps = ps_name;
  ps.resize(8, ' ');
  std::vector<RdsGroup> groups(4);
  for (std::uint16_t seg = 0; seg < 4; ++seg) {
    RdsGroup g;
    g.blocks[0] = program_id;
    // Group type 0A: type=0, version A=0, TP=1, PTY=0, segment address.
    g.blocks[1] = static_cast<std::uint16_t>((0x0 << 12) | (0x1 << 10) | seg);
    g.blocks[2] = 0xCDCD;  // alternative-frequency placeholder
    g.blocks[3] = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(ps[seg * 2]) << 8) |
        static_cast<std::uint16_t>(ps[seg * 2 + 1]));
    groups[seg] = g;
  }
  return groups;
}

std::vector<RdsGroup> make_radiotext_groups(const std::string& text,
                                            std::uint16_t program_id) {
  std::string rt = text.substr(0, 64);
  // Terminate short messages with a carriage return (per the standard), then
  // pad to a whole number of 4-character segments.
  if (rt.size() < 64) rt.push_back('\r');
  rt.resize((rt.size() + 3) / 4 * 4, ' ');
  const std::size_t segments = rt.size() / 4;
  std::vector<RdsGroup> groups(segments);
  for (std::size_t seg = 0; seg < segments; ++seg) {
    RdsGroup g;
    g.blocks[0] = program_id;
    // Group type 2, version A, TP=1, text A/B flag 0, segment address.
    g.blocks[1] = static_cast<std::uint16_t>((0x2 << 12) | (0x1 << 10) |
                                             (seg & 0xF));
    g.blocks[2] = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(rt[seg * 4]) << 8) |
        static_cast<std::uint16_t>(rt[seg * 4 + 1]));
    g.blocks[3] = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(rt[seg * 4 + 2]) << 8) |
        static_cast<std::uint16_t>(rt[seg * 4 + 3]));
    groups[seg] = g;
  }
  return groups;
}

std::vector<unsigned char> serialize_groups(std::span<const RdsGroup> groups) {
  std::vector<unsigned char> bits;
  bits.reserve(groups.size() * 4 * kBlockBits);
  for (const RdsGroup& g : groups) {
    for (std::size_t b = 0; b < 4; ++b) {
      const std::uint32_t word = block_bits(g.blocks[b], kGroupOffsets[b]);
      for (int bit = kBlockBits - 1; bit >= 0; --bit) {
        bits.push_back(static_cast<unsigned char>((word >> bit) & 1U));
      }
    }
  }
  return bits;
}

dsp::rvec modulate_rds_subcarrier(std::span<const unsigned char> bits,
                                  std::size_t num_samples, double sample_rate) {
  if (bits.empty()) throw std::invalid_argument("modulate_rds: empty bitstream");
  if (sample_rate <= 0.0) throw std::invalid_argument("modulate_rds: bad rate");
  const double bit_period = sample_rate / kRdsBitRateHz;

  dsp::Oscillator carrier(kRdsCarrierHz, sample_rate);
  dsp::rvec out(num_samples);
  unsigned char diff_state = 0;
  std::size_t bit_index = 0;
  unsigned char current = 0;
  double next_boundary = 0.0;
  for (std::size_t i = 0; i < num_samples; ++i) {
    if (static_cast<double>(i) >= next_boundary) {
      diff_state ^= bits[bit_index % bits.size()];
      current = diff_state;
      ++bit_index;
      next_boundary += bit_period;
    }
    // Biphase-L: first half-bit carries the symbol, second half inverted.
    const double bit_start = next_boundary - bit_period;
    const bool second_half =
        static_cast<double>(i) - bit_start >= bit_period / 2.0;
    const float symbol = (current ^ (second_half ? 1 : 0)) ? 1.0F : -1.0F;
    out[i] = symbol * carrier.next_real();
  }
  return out;
}

RdsDecodeResult decode_rds(std::span<const float> mpx, double sample_rate) {
  RdsDecodeResult result;
  if (mpx.empty()) return result;
  const double bit_period = sample_rate / kRdsBitRateHz;
  if (static_cast<double>(mpx.size()) < 8.0 * bit_period) return result;

  // 1) Complex downconversion of the 57 kHz subcarrier. The simulation
  // shares one sample clock, so the residual is a constant phase rotation,
  // recovered below with a BPSK squaring estimator.
  dsp::Mixer mixer(-kRdsCarrierHz, sample_rate);
  dsp::cvec z(mpx.size());
  for (std::size_t i = 0; i < mpx.size(); ++i) z[i] = dsp::cfloat(mpx[i], 0.0F);
  mixer.process_inplace(z);
  dsp::FirFilter<dsp::cfloat> lp(
      dsp::fir_design_lowpass(101, 2400.0 / sample_rate));
  dsp::cvec base = lp.process(z);

  return decode_rds_baseband(base, sample_rate);
}

RdsDecodeResult decode_rds_baseband(std::span<const dsp::cfloat> base,
                                    double sample_rate) {
  RdsDecodeResult result;
  if (base.empty()) return result;
  const double bit_period = sample_rate / kRdsBitRateHz;
  if (static_cast<double>(base.size()) < 8.0 * bit_period) return result;

  // 2) Phase estimate: 0.5 arg E[z^2].
  std::complex<double> acc{0.0, 0.0};
  for (const auto& v : base) {
    const std::complex<double> d(v.real(), v.imag());
    acc += d * d;
  }
  const double phi = 0.5 * std::arg(acc);
  const dsp::cfloat derot(static_cast<float>(std::cos(-phi)),
                          static_cast<float>(std::sin(-phi)));
  dsp::rvec w(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) w[i] = (base[i] * derot).real();

  // 3) Symbol timing: search bit-phase offsets, maximize the *mean* |soft
  // bit| where soft = integral(first half) - integral(second half). Each
  // phase integrates every bit whose full period fits the capture, so a
  // phase with a larger tau may fit one bit fewer — the metric must be the
  // per-bit mean, because a raw sum would structurally penalize later
  // phases and bias the sync toward phase 0.
  const auto num_bits_max =
      static_cast<std::size_t>(static_cast<double>(w.size()) / bit_period) - 2;
  if (num_bits_max < 4) return result;
  constexpr int kPhases = 16;
  double best_metric = -1.0;
  std::vector<float> best_soft;
  std::vector<float> soft;
  for (int p = 0; p < kPhases; ++p) {
    const double tau = bit_period * static_cast<double>(p) / kPhases;
    soft.clear();
    soft.reserve(num_bits_max + 2);
    double sum = 0.0;
    for (std::size_t b = 0;; ++b) {
      const double t0 = tau + static_cast<double>(b) * bit_period;
      const auto i0 = static_cast<std::size_t>(t0);
      const auto i1 = static_cast<std::size_t>(t0 + bit_period / 2.0);
      const auto i2 = static_cast<std::size_t>(t0 + bit_period);
      if (i2 > w.size()) break;
      double first = 0.0, second = 0.0;
      for (std::size_t i = i0; i < i1; ++i) first += w[i];
      for (std::size_t i = i1; i < i2; ++i) second += w[i];
      const double s = first - second;
      soft.push_back(static_cast<float>(s));
      sum += std::abs(s);
    }
    if (soft.empty()) continue;
    const double metric = sum / static_cast<double>(soft.size());
    if (metric > best_metric) {
      best_metric = metric;
      best_soft = soft;
    }
  }

  // 4) Differential decode (removes BPSK polarity ambiguity as well).
  std::vector<unsigned char> bits(best_soft.size());
  unsigned char prev = 0;
  for (std::size_t i = 0; i < best_soft.size(); ++i) {
    const unsigned char d = best_soft[i] > 0.0F ? 1 : 0;
    bits[i] = static_cast<unsigned char>(d ^ prev);
    prev = d;
  }
  result.bits_decoded = bits.size();

  // 5) Block sync + error accounting. Acquisition scans for the first bit
  // alignment where four consecutive 26-bit windows carry offsets A, B, C
  // (or C'), D with zero syndrome; from that anchor the decoder strides
  // group by group (the simulation shares one bit clock, so sync cannot
  // drift) and checks every block against its expected offset word. Only
  // these post-sync blocks are tallied — a misaligned scan offset probed
  // during acquisition is not a "failed block" (the historical accounting
  // charged all ~104 of them per group found, so a perfectly clean signal
  // reported hundreds of failures).
  auto read_block = [&bits](std::size_t start) {
    std::uint32_t v = 0;
    for (int i = 0; i < kBlockBits; ++i) {
      v = (v << 1) | bits[start + static_cast<std::size_t>(i)];
    }
    return v;
  };
  const std::array<std::uint16_t, 4> want{
      static_cast<std::uint16_t>(RdsOffset::kA),
      static_cast<std::uint16_t>(RdsOffset::kB),
      static_cast<std::uint16_t>(RdsOffset::kC),
      static_cast<std::uint16_t>(RdsOffset::kD)};
  auto check_block = [&](std::size_t group_start, std::size_t b,
                         std::uint16_t* info) {
    const std::uint32_t raw = read_block(group_start + b * kBlockBits);
    const std::uint16_t syn = syndrome(raw);
    const bool ok =
        syn == want[b] ||
        (b == 2 && syn == static_cast<std::uint16_t>(RdsOffset::kCPrime));
    if (ok && info != nullptr) *info = static_cast<std::uint16_t>(raw >> 10);
    return ok;
  };

  std::size_t sync = bits.size();
  if (bits.size() >= 4 * kBlockBits) {
    for (std::size_t start = 0; start + 4 * kBlockBits <= bits.size();
         ++start) {
      bool ok = true;
      for (std::size_t b = 0; b < 4 && ok; ++b) {
        ok = check_block(start, b, nullptr);
      }
      if (ok) {
        sync = start;
        break;
      }
    }
  }

  std::string ps(8, ' ');
  std::string rt(64, ' ');
  bool got_ps = false;
  bool got_rt = false;
  std::size_t rt_max_end = 0;
  if (sync < bits.size()) {
    result.synced = true;
    for (std::size_t start = sync; start + 4 * kBlockBits <= bits.size();
         start += 4 * kBlockBits) {
      RdsGroup group;
      bool all_ok = true;
      for (std::size_t b = 0; b < 4; ++b) {
        if (check_block(start, b, &group.blocks[b])) {
          ++result.blocks_ok;
        } else {
          ++result.blocks_failed;
          all_ok = false;
        }
      }
      if (!all_ok) continue;
      result.groups.push_back(group);
      const std::uint16_t b1 = group.blocks[1];
      if ((b1 >> 12) == 0x0) {
        // Group 0A/0B PS segments: two characters per group.
        const std::uint16_t seg = b1 & 0x3;
        ps[seg * 2] = static_cast<char>(group.blocks[3] >> 8);
        ps[seg * 2 + 1] = static_cast<char>(group.blocks[3] & 0xFF);
        got_ps = true;
      } else if ((b1 >> 12) == 0x2) {
        // Group 2A RadioText: four characters per group.
        const std::uint16_t seg = b1 & 0xF;
        rt[seg * 4] = static_cast<char>(group.blocks[2] >> 8);
        rt[seg * 4 + 1] = static_cast<char>(group.blocks[2] & 0xFF);
        rt[seg * 4 + 2] = static_cast<char>(group.blocks[3] >> 8);
        rt[seg * 4 + 3] = static_cast<char>(group.blocks[3] & 0xFF);
        rt_max_end = std::max<std::size_t>(rt_max_end, (seg + 1) * 4);
        got_rt = true;
      }
    }
  }
  if (got_ps) result.ps_name = ps;
  if (got_rt) {
    rt.resize(rt_max_end);
    // Trim at the carriage-return terminator and trailing padding.
    const auto cr = rt.find('\r');
    if (cr != std::string::npos) rt.resize(cr);
    while (!rt.empty() && rt.back() == ' ') rt.pop_back();
    result.radiotext = rt;
  }
  return result;
}

}  // namespace fmbs::fm
