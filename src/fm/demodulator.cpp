#include "fm/demodulator.h"

#include <cmath>
#include <stdexcept>

#include "dsp/math_util.h"

namespace fmbs::fm {

QuadratureDemodulator::QuadratureDemodulator(units::Hertz deviation,
                                             double sample_rate) {
  if (deviation.raw() <= 0.0 || sample_rate <= 0.0) {
    throw std::invalid_argument("QuadratureDemodulator: bad parameters");
  }
  gain_ = sample_rate / (dsp::kTwoPi * deviation.raw());
}

dsp::rvec QuadratureDemodulator::process(std::span<const dsp::cfloat> iq) {
  dsp::rvec out(iq.size());
  dsp::cfloat prev = prev_;
  const auto g = static_cast<float>(gain_);
  for (std::size_t i = 0; i < iq.size(); ++i) {
    const dsp::cfloat cur = iq[i];
    // arg(cur * conj(prev)) = instantaneous phase increment.
    const dsp::cfloat d = cur * std::conj(prev);
    out[i] = g * std::atan2(d.imag(), d.real());
    prev = cur;
  }
  prev_ = prev;
  return out;
}

void QuadratureDemodulator::reset() { prev_ = dsp::cfloat(1.0F, 0.0F); }

}  // namespace fmbs::fm
