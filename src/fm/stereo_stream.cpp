#include "fm/stereo_stream.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/goertzel.h"
#include "dsp/math_util.h"

namespace fmbs::fm {

namespace {
constexpr std::size_t kChannelFilterTaps = 127;  // odd -> integer group delay
}

StereoStreamDecoder::StereoStreamDecoder(const StereoDecoderConfig& config,
                                         std::size_t total_mpx_samples,
                                         units::Seconds decision_window)
    : cfg_(config), total_(total_mpx_samples) {
  const double decision_window_seconds = decision_window.raw();
  const double rate = cfg_.mpx_rate;
  const double audio_ratio = rate / cfg_.audio_rate;
  decim_ = static_cast<std::size_t>(audio_ratio + 0.5);
  if (std::abs(audio_ratio - static_cast<double>(decim_)) > 1e-9 ||
      decim_ == 0) {
    throw std::invalid_argument(
        "StereoStreamDecoder: mpx_rate must be an integer multiple of audio_rate");
  }
  if (total_ == 0) {
    throw std::invalid_argument("StereoStreamDecoder: empty capture");
  }
  inv_level_ = cfg_.program_level > 0.0
                   ? static_cast<float>(1.0 / cfg_.program_level)
                   : 1.0F;
  decision_len_ =
      decision_window_seconds > 0.0
          ? std::min(total_, static_cast<std::size_t>(
                                 decision_window_seconds * rate))
          : total_;
  decision_buf_.reserve(decision_len_);
}

void StereoStreamDecoder::decide() {
  const double rate = cfg_.mpx_rate;
  const std::span<const float> mpx(decision_buf_);
  // Pilot measurement, verbatim from the one-shot decoder — over the
  // decision window instead of the whole capture (identical whenever the
  // window covers the capture, which it does for every golden scenario).
  const double flank_lo = kPilotHz - 600.0;
  const double flank_hi = kPilotHz + 600.0;
  const auto window = static_cast<std::size_t>(0.008 * rate);
  std::vector<double> window_snr;
  for (std::size_t start = 0; start + window <= mpx.size(); start += window) {
    const auto block = mpx.subspan(start, window);
    const double p_pilot = dsp::goertzel_power(block, kPilotHz, rate);
    const double p_noise = 0.5 * (dsp::goertzel_power(block, flank_lo, rate) +
                                  dsp::goertzel_power(block, flank_hi, rate));
    window_snr.push_back(
        dsp::db_from_power_ratio(p_pilot / std::max(p_noise, 1e-30)));
  }
  pilot_snr_db_ =
      window_snr.empty()
          ? dsp::db_from_power_ratio(
                dsp::goertzel_power(mpx, kPilotHz, rate) /
                std::max(0.5 * (dsp::goertzel_power(mpx, flank_lo, rate) +
                                dsp::goertzel_power(mpx, flank_hi, rate)),
                         1e-30))
          : dsp::quantile(window_snr, 0.5);
  stereo_mode_ =
      !cfg_.force_mono && pilot_snr_db_ >= cfg_.pilot_detect_threshold.raw();

  mono_lp_.emplace(
      dsp::fir_design_lowpass(kChannelFilterTaps, kMonoAudioHiHz / rate));
  delay_ = (kChannelFilterTaps - 1) / 2;
  if (stereo_mode_) {
    pilot_bp_.emplace(dsp::biquad_bandpass(kPilotHz / rate, 40.0));
    env_lp_.emplace(dsp::OnePoleLowpass::from_corner(200.0, rate));
    stereo_bp_.emplace(dsp::fir_design_bandpass(
        kChannelFilterTaps, kStereoBandLoHz / rate, kStereoBandHiHz / rate));
    side_lp_.emplace(
        dsp::fir_design_lowpass(kChannelFilterTaps, kMonoAudioHiHz / rate));
    carrier_hist_.assign(delay_, 0.0F);
    mid_hist_.assign(delay_, 0.0F);
  }
  const auto audio_taps = dsp::fir_design_lowpass(
      kChannelFilterTaps, 0.45 / static_cast<double>(decim_));
  dec_l_.emplace(audio_taps, decim_);
  dec_r_.emplace(audio_taps, decim_);
  if (cfg_.deemphasis) {
    de_l_.emplace(units::Seconds{kDeemphasisSeconds}, cfg_.audio_rate);
    de_r_.emplace(units::Seconds{kDeemphasisSeconds}, cfg_.audio_rate);
  }
  decided_ = true;
}

void StereoStreamDecoder::process_chain(std::span<const float> mpx,
                                        dsp::rvec& left, dsp::rvec& right) {
  const std::size_t n = mpx.size();
  if (n == 0) return;
  const dsp::rvec mid = mono_lp_->process(mpx);
  if (stereo_mode_) {
    const dsp::rvec sub = stereo_bp_->process(mpx);
    product_.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t g = processed_ + j;
      // 38 kHz carrier regeneration, sample by sample as in the one-shot
      // decoder; the ring holds the last `delay_` carrier values so the
      // product stays phase-coherent with the delayed subband.
      const float p = pilot_bp_->process_sample(mpx[j]);
      const float e2 = env_lp_->process_sample(p * p) * 2.0F;
      const float amp = std::sqrt(std::max(e2, 1e-12F));
      const float s = std::clamp(p / amp, -1.0F, 1.0F);
      const float c = 2.0F * s * s - 1.0F;
      product_[j] =
          g >= delay_ ? 2.0F * sub[j] * carrier_hist_[g % delay_] : 0.0F;
      carrier_hist_[g % delay_] = c;
    }
    const dsp::rvec side = side_lp_->process(product_);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t g = processed_ + j;
      if (g >= delay_) {
        // Realigned output sample g - delay_: its side value is side[g],
        // its mid value went into the ring delay_ samples ago.
        const float m = mid_hist_[g % delay_] * inv_level_;
        const float sv = side[j] * inv_level_;
        pend_l_.push_back(m + sv);
        pend_r_.push_back(m - sv);
      }
      mid_hist_[g % delay_] = mid[j];
    }
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      const float m = mid[j] * inv_level_;
      const float sv = 0.0F * inv_level_;
      pend_l_.push_back(m + sv);
      pend_r_.push_back(m - sv);
    }
  }
  processed_ += n;
  drain(left, right);
}

void StereoStreamDecoder::drain(dsp::rvec& left, dsp::rvec& right) {
  const std::size_t len = pend_l_.size() / decim_ * decim_;
  if (len == 0) return;
  dsp::rvec out_l =
      dec_l_->process(std::span<const float>(pend_l_.data(), len));
  dsp::rvec out_r =
      dec_r_->process(std::span<const float>(pend_r_.data(), len));
  if (de_l_) {
    out_l = de_l_->process(out_l);
    out_r = de_r_->process(out_r);
  }
  left.insert(left.end(), out_l.begin(), out_l.end());
  right.insert(right.end(), out_r.begin(), out_r.end());
  pend_l_.erase(pend_l_.begin(), pend_l_.begin() + static_cast<std::ptrdiff_t>(len));
  pend_r_.erase(pend_r_.begin(), pend_r_.begin() + static_cast<std::ptrdiff_t>(len));
}

void StereoStreamDecoder::push(std::span<const float> mpx, dsp::rvec& left,
                               dsp::rvec& right) {
  std::size_t offset = 0;
  if (!decided_) {
    const std::size_t need = decision_len_ - decision_buf_.size();
    const std::size_t take = std::min(need, mpx.size());
    decision_buf_.insert(decision_buf_.end(), mpx.begin(),
                         mpx.begin() + static_cast<std::ptrdiff_t>(take));
    offset = take;
    if (decision_buf_.size() < decision_len_) return;
    decide();
    process_chain(decision_buf_, left, right);
    std::vector<float>().swap(decision_buf_);  // decision memory is released
  }
  process_chain(mpx.subspan(offset), left, right);
}

void StereoStreamDecoder::finish(dsp::rvec& left, dsp::rvec& right) {
  if (!decided_) {
    // Capture ended inside the decision window (only possible when the
    // caller overstated the capture length): decide from what arrived.
    decide();
    process_chain(decision_buf_, left, right);
    std::vector<float>().swap(decision_buf_);
  }
  if (stereo_mode_) {
    // The one-shot decoder zero-pads the realigned side past the capture:
    // the last `delay_` outputs carry side = 0 and the mids still in the
    // ring.
    const std::size_t tail = std::min(processed_, delay_);
    for (std::size_t i = processed_ - tail; i < processed_; ++i) {
      const float m = mid_hist_[i % delay_] * inv_level_;
      const float sv = 0.0F * inv_level_;
      pend_l_.push_back(m + sv);
      pend_r_.push_back(m - sv);
    }
  }
  drain(left, right);
  // Anything still pending is shorter than one decimation stride — the
  // one-shot decoder trims exactly the same remainder.
}

}  // namespace fmbs::fm
