// Keyed, thread-safe cache of rendered stations. A station's MPX/IQ signal
// depends only on its StationConfig and the render duration — never on tag
// parameters — so every experiment point in a sweep that listens to the same
// station can share one read-only render instead of re-synthesizing it.
//
// Concurrency: the first caller of a key renders outside the lock while
// later callers of the same key block on a shared_future, so concurrent
// sweeps never render the same station twice, and distinct keys render in
// parallel. Entries are immutable once published (shared_ptr<const>).
//
// Multi-station scenes render through a SceneScope: every station rendered
// inside the scope is pinned against eviction until the scope ends (growing
// past capacity transiently if it must), so an 8-station scene can never
// thrash its own renders mid-run, nor have them stolen by a concurrent
// scene on another sweep thread.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fm/transmitter.h"

namespace fmbs::fm {

class StationCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  class SceneScope;

  /// Process-wide instance used by core::simulate.
  static StationCache& instance();

  /// Returns the rendered station for (config, duration), rendering it on
  /// this thread exactly once per key while the entry stays resident. When
  /// the cache is disabled every call renders fresh.
  std::shared_ptr<const StationSignal> render(const StationConfig& config,
                                              units::Seconds duration);

  /// Enables/disables caching globally (enabled by default). Disabling does
  /// not drop resident entries; call clear() for that.
  void set_enabled(bool enabled);
  bool enabled() const;

  /// Maximum resident renders; least-recently-used unpinned entries are
  /// evicted. Renders are large (roughly 4-5 MB per second of station
  /// signal), so the default of 16 bounds the steady-state footprint while
  /// letting a scenario sweep keep a whole city scene (up to ~10 stations at
  /// the 2.4 MHz scene width) plus a few single-station sweeps resident;
  /// long-lived processes can clear() after a sweep or shrink this.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Drops every unpinned entry (entries pinned by live SceneScopes stay).
  void clear();
  Stats stats() const;
  void reset_stats();

 private:
  struct Key {
    // audio::ProgramConfig, flattened.
    int genre = 0;
    bool stereo = false;
    double stereo_width = 0.0;
    double ambience_level = 0.0;
    // Remaining StationConfig fields.
    double deviation_hz = 0.0;
    double rds_level = 0.0;
    std::string rds_ps_name;
    bool preemphasis = false;
    std::uint64_t seed = 0;
    // Render argument.
    double duration_seconds = 0.0;

    bool operator==(const Key& other) const = default;
  };

  struct Entry {
    Key key;
    std::shared_future<std::shared_ptr<const StationSignal>> signal;
    std::uint64_t last_used = 0;
    /// Live SceneScopes holding this entry; pinned entries are never evicted.
    int pins = 0;
  };

  static Key make_key(const StationConfig& config, units::Seconds duration);

  std::shared_ptr<const StationSignal> render_impl(const StationConfig& config,
                                                   units::Seconds duration,
                                                   SceneScope* scope);
  /// Evicts the least-recently-used unpinned entry; false when all pinned.
  bool evict_one_locked();

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;  // small (capacity ~16): linear scan is fine
  std::size_t capacity_ = 16;
  std::uint64_t tick_ = 0;
  bool enabled_ = true;
  Stats stats_;
};

/// RAII scope for one RF scene's station renders. Renders requested through
/// the scope behave exactly like StationCache::render, plus the entries stay
/// pinned (unevictable) for the scope's lifetime; a scene with more stations
/// than the cache capacity overflows transiently rather than thrashing. On
/// destruction the pins are released and the cache shrinks back to capacity;
/// with `evict_on_exit` the scope's entries are dropped immediately (one-off
/// giant scenes that should not displace a sweep's working set).
class StationCache::SceneScope {
 public:
  explicit SceneScope(StationCache& cache, bool evict_on_exit = false)
      : cache_(cache), evict_on_exit_(evict_on_exit) {}
  ~SceneScope();

  SceneScope(const SceneScope&) = delete;
  SceneScope& operator=(const SceneScope&) = delete;

  /// Renders (config, duration) through the cache and pins the entry.
  std::shared_ptr<const StationSignal> render(const StationConfig& config,
                                              units::Seconds duration);

 private:
  friend class StationCache;

  StationCache& cache_;
  bool evict_on_exit_;
  std::vector<Key> keys_;  // distinct keys pinned by this scope
};

}  // namespace fmbs::fm
