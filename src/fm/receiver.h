// FM receiver chain: channel-filtered IQ -> discriminator -> stereo decode.
// This is the "any FM receiver" of the paper's title: it knows nothing about
// backscatter and decodes whatever composite baseband it sees.
#pragma once

#include <span>

#include "audio/audio_buffer.h"
#include "core/units.h"
#include "dsp/types.h"
#include "fm/constants.h"
#include "fm/stereo_decoder.h"

namespace fmbs::fm {

/// Receiver options.
struct ReceiverConfig {
  units::Hertz deviation{kMaxDeviationHz};
  double sample_rate = kMpxRate;  // IQ input rate (post-tuner)
  StereoDecoderConfig stereo;
};

/// Receiver output: decoded audio plus intermediate signals that the data
/// demodulators and the paper's measurement methodology consume.
struct ReceiverOutput {
  audio::StereoBuffer audio;     // L/R at the audio rate
  dsp::rvec mpx;                 // composite baseband (for diagnostics)
  bool stereo_mode = false;      // pilot detected, decoded in stereo
  double pilot_snr_db = 0.0;

  /// Mono downmix convenience accessor.
  audio::MonoBuffer mono() const { return audio.mid(); }

  /// The re-derived stereo difference (L-R)/2 — the paper's stereo
  /// backscatter recovery step ("compute the difference between these left
  /// and right audio streams").
  audio::MonoBuffer side() const { return audio.side(); }
};

/// One-shot demodulation of channel-filtered IQ at the MPX rate.
ReceiverOutput receive_fm(std::span<const dsp::cfloat> iq,
                          const ReceiverConfig& config);

}  // namespace fmbs::fm
