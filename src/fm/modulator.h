// FM modulator: implements paper Eq. 1 at complex baseband —
//   FM_RF(t) = cos(2 pi fc t + 2 pi df Int FM_audio) -> e^{j 2 pi df Int mpx}.
// The carrier placement (fc) is applied later by the RF scene's mixer.
#pragma once

#include <span>

#include "core/units.h"
#include "dsp/nco.h"
#include "dsp/types.h"
#include "fm/constants.h"

namespace fmbs::fm {

/// Streaming FM modulator at a fixed sample rate. Input MPX samples are
/// expected in [-1, 1]; full scale maps to +-deviation.
class FmModulator {
 public:
  FmModulator(units::Hertz deviation, double sample_rate);

  units::Hertz deviation() const { return units::Hertz{deviation_hz_}; }

  /// Modulates a block of composite baseband into unit-amplitude IQ.
  dsp::cvec process(std::span<const float> mpx);

  /// Resets the phase accumulator.
  void reset();

 private:
  double deviation_hz_;
  double sample_rate_;
  dsp::PhaseAccumulator phase_;
};

}  // namespace fmbs::fm
