// Stereo multiplex (MPX) composition — the baseband signal of Fig. 3 in the
// paper: mono (L+R), 19 kHz pilot, DSB-SC (L-R) at 38 kHz, optional RDS
// at 57 kHz.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "audio/audio_buffer.h"
#include "dsp/types.h"
#include "fm/constants.h"

namespace fmbs::fm {

/// MPX composition options.
struct MpxConfig {
  bool stereo = true;        // emit pilot + (L-R) subcarrier
  double program_level = kProgramLevel;
  double pilot_level = kPilotLevel;
  double rds_level = 0.0;    // 0 disables RDS injection (typical 0.03-0.06)
  double mpx_rate = kMpxRate;
  /// Apply 75 us pre-emphasis to L/R before multiplexing.
  bool preemphasis = false;
};

/// Composes the FM composite baseband from stereo audio. Audio is resampled
/// from its own rate to config.mpx_rate internally (integer factor required).
/// `rds_bitstream`, when non-empty and rds_level > 0, is BPSK-modulated onto
/// the 57 kHz subcarrier (see rds.h for framing).
dsp::rvec compose_mpx(const audio::StereoBuffer& program, const MpxConfig& config,
                      std::span<const unsigned char> rds_bitstream = {});

/// Extracts the mono (L+R) component of an MPX signal: low-pass below 15 kHz,
/// compensated for program_level. Returns audio at the MPX rate.
dsp::rvec extract_mono(std::span<const float> mpx, const MpxConfig& config);

}  // namespace fmbs::fm
