// Analytic power/cost model of the backscatter tag IC (paper section 4) and
// the battery-life comparison of section 2.
//
// Paper reference points (TSMC 65 nm LP, simulated in Cadence Spectre):
//   baseband state machine:            1.00 uW
//   LC-tank DCO FM modulator @600 kHz: 9.94 uW (frequency deviation 75 kHz)
//   NMOS backscatter switch  @600 kHz: 0.13 uW
//   total:                            11.07 uW
// Dynamic blocks scale ~linearly with switching frequency (C V^2 f), which
// this model uses to extrapolate to other subcarrier shifts.
#pragma once

#include "core/units.h"

namespace fmbs::tag {

/// Power model inputs.
struct PowerModelConfig {
  units::Hertz subcarrier{600e3};  // f_back
  units::Hertz deviation{75e3};
  double baseband_uw = 1.00;      // state machine (rate independent here)
  double modulator_uw_at_600k = 9.94;
  double switch_uw_at_600k = 0.13;
};

/// Per-block and total power in microwatts.
struct PowerBreakdown {
  double baseband_uw = 0.0;
  double modulator_uw = 0.0;
  double switch_uw = 0.0;
  double total_uw = 0.0;
};

/// Evaluates the model at the configured operating point. At the defaults
/// this returns the paper's 11.07 uW total.
PowerBreakdown tag_power(const PowerModelConfig& config = {});

/// Battery life estimate.
struct BatteryLife {
  double current_ua = 0.0;
  double hours = 0.0;
  double years = 0.0;
};

/// Battery life of a load drawing `power_uw` from a cell of
/// `capacity_mah`, with the effective supply voltage and converter
/// efficiency. The paper's "almost 3 years" for the 11.07 uW tag on a
/// 225 mAh coin cell corresponds to ~8.6 uA average draw (i.e. supply +
/// regulator overheads lumped into `efficiency`).
BatteryLife battery_life(double power_uw, double capacity_mah,
                         double supply_voltage = 3.0, double efficiency = 0.43);

/// Battery life of a radio quoted by its current draw (the paper's SI4713
/// FM transmitter: 18.8 mA; 225 mAh -> under 12 hours).
BatteryLife battery_life_from_current(double current_ma, double capacity_mah);

/// Unit-cost comparison (section 2 / related work): FM transmitter chip at
/// volume vs a backscatter tag.
struct CostComparison {
  double fm_chip_usd = 4.0;     // SI4713-B30-GMR at volume
  double ble_chip_usd = 2.3;    // CC2541-class
  double backscatter_usd = 0.1; // "as little as a few cents" (RFID-tag class)
};

}  // namespace fmbs::tag
