#include "tag/framing.h"

#include <stdexcept>

namespace fmbs::tag {

std::uint16_t crc16(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xFFFF;
  for (const std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

namespace {
void append_bits(std::vector<std::uint8_t>& bits, std::uint32_t value, int count) {
  for (int i = count - 1; i >= 0; --i) {
    bits.push_back(static_cast<std::uint8_t>((value >> i) & 1U));
  }
}

std::uint32_t read_bits(std::span<const std::uint8_t> bits, std::size_t start,
                        int count) {
  std::uint32_t v = 0;
  for (int i = 0; i < count; ++i) {
    v = (v << 1) | bits[start + static_cast<std::size_t>(i)];
  }
  return v;
}
}  // namespace

std::vector<std::uint8_t> encode_frame(std::span<const std::uint8_t> payload) {
  if (payload.size() > Frame::kMaxPayloadBytes) {
    throw std::invalid_argument("encode_frame: payload too large");
  }
  std::vector<std::uint8_t> bits;
  bits.reserve(16 + 8 + payload.size() * 8 + 16);
  append_bits(bits, Frame::kSyncWord, 16);
  append_bits(bits, static_cast<std::uint32_t>(payload.size()), 8);
  for (const std::uint8_t b : payload) append_bits(bits, b, 8);
  append_bits(bits, crc16(payload), 16);
  return bits;
}

std::optional<std::vector<std::uint8_t>> decode_frame(
    std::span<const std::uint8_t> bits) {
  if (bits.size() < 40) return std::nullopt;
  for (std::size_t start = 0; start + 40 <= bits.size(); ++start) {
    if (read_bits(bits, start, 16) != Frame::kSyncWord) continue;
    const std::uint32_t length = read_bits(bits, start + 16, 8);
    const std::size_t total = 16 + 8 + length * 8 + 16;
    if (start + total > bits.size()) continue;
    std::vector<std::uint8_t> payload(length);
    for (std::uint32_t i = 0; i < length; ++i) {
      payload[i] =
          static_cast<std::uint8_t>(read_bits(bits, start + 24 + i * 8, 8));
    }
    const auto crc =
        static_cast<std::uint16_t>(read_bits(bits, start + 24 + length * 8, 16));
    if (crc == crc16(payload)) return payload;
  }
  return std::nullopt;
}

std::vector<std::uint8_t> repeat_bits(std::span<const std::uint8_t> bits,
                                      std::size_t count) {
  std::vector<std::uint8_t> out;
  out.reserve(bits.size() * count);
  for (std::size_t i = 0; i < count; ++i) {
    out.insert(out.end(), bits.begin(), bits.end());
  }
  return out;
}

}  // namespace fmbs::tag
