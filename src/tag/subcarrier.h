// The tag's FM-modulated switching subcarrier — paper Eq. 2:
//   B(t) = cos(2 pi f_back t + 2 pi df Int FM_back(tau) dtau)
// approximated by a square wave toggling the antenna between reflect and
// absorb ("we approximate the cosine signal with a square wave alternating
// between +1 and -1 ... by changing the frequency of the resulting square
// wave, we can approximate a cosine signal with the desired time-varying
// frequencies").
//
// Three waveform models:
//  * kBandlimitedSquare — the square wave's odd-harmonic Fourier series
//    truncated below Nyquist (default; alias-free, carries the physical
//    4/pi k harmonic amplitudes),
//  * kHardSquare — literal sign() switching (for unit tests and harmonic
//    ablations; aliases above ~the 3rd harmonic at the default rates),
//  * kSingleSideband — complex subcarrier e^{j phi}, the paper's footnote-2
//    option that suppresses the mirror copy (cos(A-B) term).
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "core/units.h"
#include "dsp/fir.h"
#include "dsp/nco.h"
#include "dsp/types.h"
#include "fm/constants.h"

namespace fmbs::tag {

enum class SubcarrierMode {
  kBandlimitedSquare,
  kHardSquare,
  kSingleSideband,
};

/// Subcarrier generation parameters.
struct SubcarrierConfig {
  /// f_back. May be negative (backscatter to a channel *below* the station):
  /// a real square wave produces copies at +-|f_back| anyway, and in SSB
  /// mode the rotation direction follows the sign.
  units::Hertz shift{fm::kDefaultBackscatterShiftHz};
  units::Hertz deviation{fm::kMaxDeviationHz};  // df (max legal, as in paper)
  SubcarrierMode mode = SubcarrierMode::kBandlimitedSquare;
  /// Highest odd harmonic to synthesize in kBandlimitedSquare mode;
  /// 0 = every harmonic that fits below Nyquist.
  int max_harmonic = 0;
  /// Frequency-quantization bits of the digitally controlled oscillator
  /// (the IC uses an 8-bit binary-weighted capacitor bank); 0 = ideal DCO.
  int dco_bits = 0;
  double rf_rate = fm::kRfRate;
  double baseband_rate = fm::kMpxRate;
};

/// Streaming subcarrier generator. Feed tag baseband blocks at
/// `baseband_rate`; receive B(t) at `rf_rate` (complex; imaginary part is
/// zero except in SSB mode).
class SubcarrierGenerator {
 public:
  explicit SubcarrierGenerator(const SubcarrierConfig& config);

  const SubcarrierConfig& config() const { return cfg_; }

  /// Number of synthesized odd harmonics (1 means fundamental only).
  int harmonics_used() const { return harmonics_; }

  /// Generates B(t) for one baseband block. Output length is
  /// block.size() * (rf_rate / baseband_rate).
  dsp::cvec process(std::span<const float> baseband);

  void reset();

 private:
  SubcarrierConfig cfg_;
  int harmonics_ = 1;
  std::size_t up_factor_;
  dsp::FirInterpolator<float> interpolator_;
  dsp::PhaseAccumulator phase_;
};

}  // namespace fmbs::tag
