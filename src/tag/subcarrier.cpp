#include "tag/subcarrier.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "dsp/math_util.h"
#include "dsp/simd.h"

namespace fmbs::tag {

namespace {

std::size_t compute_up_factor(const SubcarrierConfig& cfg) {
  const double ratio = cfg.rf_rate / cfg.baseband_rate;
  const auto factor = static_cast<std::size_t>(ratio + 0.5);
  if (factor == 0 || std::abs(ratio - static_cast<double>(factor)) > 1e-9) {
    throw std::invalid_argument(
        "SubcarrierGenerator: rf_rate must be an integer multiple of baseband_rate");
  }
  return factor;
}

dsp::FirInterpolator<float> make_interpolator(std::size_t factor) {
  if (factor == 1) {
    return dsp::FirInterpolator<float>({1.0F}, 1);
  }
  const double cutoff = 0.45 / static_cast<double>(factor);
  return dsp::FirInterpolator<float>(
      dsp::fir_design_lowpass((16 * factor) | 1U, cutoff), factor);
}

}  // namespace

SubcarrierGenerator::SubcarrierGenerator(const SubcarrierConfig& config)
    : cfg_(config),
      up_factor_(compute_up_factor(config)),
      interpolator_(make_interpolator(up_factor_)) {
  if (cfg_.shift.raw() == 0.0 || cfg_.deviation.raw() <= 0.0) {
    throw std::invalid_argument("SubcarrierGenerator: bad shift or deviation");
  }
  if (std::abs(cfg_.shift.raw()) + cfg_.deviation.raw() >= cfg_.rf_rate / 2.0) {
    throw std::invalid_argument("SubcarrierGenerator: subcarrier exceeds Nyquist");
  }
  // Highest instantaneous frequency of harmonic k is roughly
  // k (|shift| + deviation + baseband bandwidth); keep it below 0.48 fs.
  const double top = std::abs(cfg_.shift.raw()) + cfg_.deviation.raw() + 58000.0;
  int k_max = 1;
  while ((k_max + 2) * top < 0.48 * cfg_.rf_rate) k_max += 2;
  if (cfg_.mode == SubcarrierMode::kBandlimitedSquare) {
    harmonics_ = cfg_.max_harmonic > 0 ? std::min(cfg_.max_harmonic, k_max) : k_max;
    if (harmonics_ % 2 == 0) --harmonics_;
  } else {
    harmonics_ = 1;
  }
}

dsp::cvec SubcarrierGenerator::process(std::span<const float> baseband) {
  const dsp::rvec up = interpolator_.process(baseband);
  dsp::cvec out(up.size());

  // The accumulated phase follows the signed shift: for real square waves
  // cos() makes the sign irrelevant (both +-|f_back| copies exist), while
  // the SSB exponential rotates toward the requested side.
  const double base_step = dsp::kTwoPi * cfg_.shift.raw() / cfg_.rf_rate;
  const double dev_step = dsp::kTwoPi * cfg_.deviation.raw() / cfg_.rf_rate;

  // Optional DCO quantization: the IC's capacitor bank realizes 2^bits
  // discrete frequencies across [shift - dev, shift + dev].
  const double levels = cfg_.dco_bits > 0 ? std::pow(2.0, cfg_.dco_bits) - 1.0 : 0.0;

#if FMBS_SIMD_ENABLED
  // The phase accumulation is inherently serial (each step depends on the
  // previous phase), but the waveform synthesis is not: run the accumulator
  // alone, then evaluate cos/sin four phases at a time with the vector
  // sincos. The phase SEQUENCE is identical to the scalar path — same
  // advance() calls in the same order — so streaming state is unaffected by
  // the gate; only the per-sample waveform values differ, at the ~1e-7
  // level of the Cephes float polynomials (tolerance pinned by
  // tests/dsp/test_simd_kernels.cpp). kHardSquare takes sign(cos), which a
  // 1e-7 wobble near a zero crossing could flip, so it stays on libm.
  if (cfg_.mode != SubcarrierMode::kHardSquare) {
    std::vector<float> ph(up.size());
    for (std::size_t i = 0; i < up.size(); ++i) {
      double m = static_cast<double>(up[i]);
      if (levels > 0.0) {
        const double clamped = std::clamp(m, -1.0, 1.0);
        m = std::round((clamped + 1.0) / 2.0 * levels) / levels * 2.0 - 1.0;
      }
      ph[i] = static_cast<float>(phase_.advance(base_step + dev_step * m));
    }
    auto* of = reinterpret_cast<float*>(out.data());
    const std::size_t n = up.size();
    std::size_t i = 0;
    if (cfg_.mode == SubcarrierMode::kSingleSideband) {
      const __m128 amp = _mm_set1_ps(static_cast<float>(2.0 / dsp::kPi));
      for (; i + 4 <= n; i += 4) {
        __m128 s;
        __m128 c;
        dsp::simd::sincos_ps(_mm_loadu_ps(ph.data() + i), &s, &c);
        c = _mm_mul_ps(c, amp);
        s = _mm_mul_ps(s, amp);
        _mm_storeu_ps(of + 2 * i, _mm_unpacklo_ps(c, s));
        _mm_storeu_ps(of + 2 * i + 4, _mm_unpackhi_ps(c, s));
      }
      for (; i < n; ++i) {
        out[i] = dsp::cfloat(
            static_cast<float>(2.0 / dsp::kPi) * std::cos(ph[i]),
            static_cast<float>(2.0 / dsp::kPi) * std::sin(ph[i]));
      }
    } else {  // kBandlimitedSquare
      for (; i + 4 <= n; i += 4) {
        const __m128 phv = _mm_loadu_ps(ph.data() + i);
        __m128 acc = _mm_setzero_ps();
        for (int k = 1; k <= harmonics_; k += 2) {
          __m128 s;
          __m128 c;
          dsp::simd::sincos_ps(
              _mm_mul_ps(phv, _mm_set1_ps(static_cast<float>(k))), &s, &c);
          acc = _mm_add_ps(
              acc, _mm_mul_ps(c, _mm_set1_ps(static_cast<float>(
                                     4.0 / (dsp::kPi * k)))));
        }
        const __m128 zero = _mm_setzero_ps();
        _mm_storeu_ps(of + 2 * i, _mm_unpacklo_ps(acc, zero));
        _mm_storeu_ps(of + 2 * i + 4, _mm_unpackhi_ps(acc, zero));
      }
      for (; i < n; ++i) {
        float acc = 0.0F;
        for (int k = 1; k <= harmonics_; k += 2) {
          acc += static_cast<float>(4.0 / (dsp::kPi * k)) *
                 std::cos(static_cast<float>(k) * ph[i]);
        }
        out[i] = dsp::cfloat(acc, 0.0F);
      }
    }
    return out;
  }
#endif

  for (std::size_t i = 0; i < up.size(); ++i) {
    double m = static_cast<double>(up[i]);
    if (levels > 0.0) {
      const double clamped = std::clamp(m, -1.0, 1.0);
      m = std::round((clamped + 1.0) / 2.0 * levels) / levels * 2.0 - 1.0;
    }
    const double ph = phase_.advance(base_step + dev_step * m);
    switch (cfg_.mode) {
      case SubcarrierMode::kBandlimitedSquare: {
        double acc = 0.0;
        for (int k = 1; k <= harmonics_; k += 2) {
          acc += 4.0 / (dsp::kPi * k) * std::cos(static_cast<double>(k) * ph);
        }
        out[i] = dsp::cfloat(static_cast<float>(acc), 0.0F);
        break;
      }
      case SubcarrierMode::kHardSquare:
        out[i] = dsp::cfloat(std::cos(ph) >= 0.0 ? 1.0F : -1.0F, 0.0F);
        break;
      case SubcarrierMode::kSingleSideband:
        // Same in-channel amplitude as one sideband of the square wave.
        out[i] = dsp::cfloat(static_cast<float>(2.0 / dsp::kPi * std::cos(ph)),
                             static_cast<float>(2.0 / dsp::kPi * std::sin(ph)));
        break;
    }
  }
  return out;
}

void SubcarrierGenerator::reset() {
  phase_.reset();
  interpolator_.reset();
}

}  // namespace fmbs::tag
