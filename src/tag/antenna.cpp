#include "tag/antenna.h"

namespace fmbs::tag {

AntennaModel poster_dipole_antenna() {
  // Half-wave dipole: 2.15 dBi; copper tape on paper is a good conductor at
  // 100 MHz, small ohmic loss.
  return {"poster-dipole-40x60", 2.15, -0.5, 0.0};
}

AntennaModel poster_bowtie_antenna() {
  // Bowtie trades a little gain for bandwidth; the 24"x36" aperture is
  // electrically shorter than a half wave at 95 MHz.
  return {"poster-bowtie-24x36", 1.5, -1.5, 0.0};
}

AntennaModel tshirt_meander_antenna(bool worn) {
  // Meandering shortens the dipole (lower radiation resistance) and the
  // stainless thread is lossier than copper; the body absorbs several dB
  // more when the shirt is worn.
  return {"tshirt-meander", 0.0, -3.0, worn ? 4.0 : 0.0};
}

AntennaModel car_whip_antenna() {
  // Quarter-wave whip over the car-body ground plane; well matched.
  return {"car-whip", 2.0, -0.5, 0.0};
}

AntennaModel headphone_antenna() {
  // Loose headphone wire: poorly controlled orientation and match.
  return {"headphone-wire", -3.0, -2.0, 0.0};
}

}  // namespace fmbs::tag
