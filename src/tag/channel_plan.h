// Multi-tag subcarrier placement — paper section 8: "an alternative approach
// is to assign different backscatter devices to different unused FM channels
// in the band, allowing them to operate concurrently."
//
// The planner hands out f_back values on the 200 kHz FM channel raster so N
// tags around one ambient station occupy disjoint backscatter channels:
//
//  * A real square-wave subcarrier at +|f| also produces a mirror copy at
//    -|f| (cos(A-B) term), so a real-switching tag *consumes both* signed
//    channels. The first four tags therefore get 400/600/800/1000 kHz with
//    the classic square switch.
//  * Beyond four, tags use the paper's footnote-2 single-sideband switch,
//    which suppresses the mirror and unlocks the negative channels
//    independently: up to eight concurrent tags within the +-1.2 MHz scene.
//  * Beyond eight the band is full; extra tags are assigned round-robin onto
//    the existing channels and must share via a MAC (core/aloha.h, or the
//    signal-level core::ScenarioEngine with staggered bursts).
#pragma once

#include <cstddef>
#include <vector>

#include "tag/subcarrier.h"

namespace fmbs::tag {

/// One planned backscatter channel assignment.
struct ChannelAssignment {
  SubcarrierConfig subcarrier;  // shift_hz and mode set by the planner
  bool shared = false;          // true when the channel is reused (needs a MAC)
};

/// Capacity of disjoint backscatter channels within `rf_rate` around one
/// station (4 with real square switches, 8 with SSB switches).
std::size_t max_disjoint_channels(double rf_rate = fm::kRfRate);

/// Plans subcarrier assignments for `num_tags` tags backscattering one
/// ambient station. Channels clear the station's Carson bandwidth (min
/// |f_back| = 400 kHz) and stay inside the simulated RF bandwidth. Throws
/// std::invalid_argument when num_tags is 0 or the scene cannot fit even one
/// channel.
std::vector<ChannelAssignment> plan_subcarrier_channels(
    std::size_t num_tags, double rf_rate = fm::kRfRate);

}  // namespace fmbs::tag
