// Forward error correction — the paper's section-8 extension: "We can use
// coding [Parks et al., turbocharging ambient backscatter] to improve the FM
// backscatter range." Two codes that fit a microwatt tag budget:
//
//  * Hamming(7,4): single-error-correcting block code; encoding is a few XOR
//    gates on the tag.
//  * Rate-1/2 K=7 convolutional code (industry-standard polynomials
//    171/133) with hard-decision Viterbi decoding at the receiver. The tag
//    side is just two shift-register taps; all complexity lands in the
//    phone, matching the paper's asymmetric design philosophy.
//
// A block interleaver breaks up the bursty errors that FM clicks and motion
// fades produce.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fmbs::tag {

// ---- Hamming(7,4) -----------------------------------------------------------

/// Encodes data bits (any length; zero-padded to a multiple of 4) into
/// Hamming(7,4) codewords. Output length = ceil(n/4) * 7 bits.
std::vector<std::uint8_t> hamming74_encode(std::span<const std::uint8_t> bits);

/// Decodes Hamming(7,4) codewords, correcting one error per 7-bit block.
/// Output length = (input length / 7) * 4 bits.
std::vector<std::uint8_t> hamming74_decode(std::span<const std::uint8_t> bits);

// ---- Rate-1/2 K=7 convolutional code ---------------------------------------

/// Convolutional code parameters (CCSDS / voyager polynomials).
struct ConvolutionalCode {
  static constexpr int kConstraintLength = 7;
  static constexpr std::uint8_t kPolyA = 0x6D;  // 155 octal = 1101101
  static constexpr std::uint8_t kPolyB = 0x4F;  // 117 octal = 1001111
};

/// Encodes bits at rate 1/2 with K=7, appending 6 flush bits so the decoder
/// terminates in the zero state. Output length = 2 * (n + 6).
std::vector<std::uint8_t> convolutional_encode(std::span<const std::uint8_t> bits);

/// Hard-decision Viterbi decoding; returns the original n = input/2 - 6
/// bits. Throws std::invalid_argument when the input is malformed.
std::vector<std::uint8_t> viterbi_decode(std::span<const std::uint8_t> bits);

// ---- Block interleaver -------------------------------------------------------

/// Row-in/column-out block interleaver. Input is zero-padded to fill the
/// rows x cols matrix; the same (rows, cols) deinterleaves.
std::vector<std::uint8_t> interleave(std::span<const std::uint8_t> bits,
                                     std::size_t rows, std::size_t cols);

/// Inverse of interleave (returns rows*cols bits; caller trims).
std::vector<std::uint8_t> deinterleave(std::span<const std::uint8_t> bits,
                                       std::size_t rows, std::size_t cols);

// ---- Convenience pipelines ---------------------------------------------------

/// Which code protects a payload.
enum class FecScheme {
  kNone,
  kHamming74,
  kConvolutionalK7,
};

/// Encodes payload bits under a scheme (with a 16x32 interleaver for the
/// coded schemes). Returns the on-air bit sequence.
std::vector<std::uint8_t> fec_encode(std::span<const std::uint8_t> bits,
                                     FecScheme scheme);

/// Inverse of fec_encode; `payload_bits` is the original payload length.
std::vector<std::uint8_t> fec_decode(std::span<const std::uint8_t> bits,
                                     FecScheme scheme, std::size_t payload_bits);

/// On-air bits needed to carry `payload_bits` under a scheme (for sizing
/// captures in benches).
std::size_t fec_encoded_length(std::size_t payload_bits, FecScheme scheme);

/// Code rate (payload bits per channel bit).
double fec_rate(FecScheme scheme);

const char* to_string(FecScheme scheme);

}  // namespace fmbs::tag
