// Medium access for backscatter tags — the connected-cities open problem
// (paper section 8; Talla et al., "Advances and Open Problems in Backscatter
// Networking"): tags sharing one backscatter channel must decide *when* to
// burst. Three policies:
//
//  * kPureAloha — transmit at the nominal start time (the engine's historic
//    behavior; collisions follow the S = G e^{-2G} vulnerability rule),
//  * kSlottedAloha — quantize the start up to the next slot boundary
//    (collisions become total overlaps; S = G e^{-G}),
//  * kCarrierSense — listen-before-talk: the tag measures the in-band scene
//    energy in its subcarrier channel over the preceding timeline segment
//    and defers its burst to the next segment boundary while the channel is
//    busy. Deferral changes the on-air schedule, which changes what later
//    tags sense — a feedback loop a single-shot render cannot express,
//    which is why the ScenarioEngine resolves the schedule segment by
//    segment before rendering.
//
// The resolver is pure scheduling: channel physics (who couples into whose
// channel, at what power) enters through the ChannelSenseFn oracle the
// caller provides, so this layer stays independent of scene geometry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "core/units.h"

namespace fmbs::tag {

enum class MacKind { kPureAloha, kSlottedAloha, kCarrierSense };

const char* to_string(MacKind kind);

/// Per-tag medium-access policy.
struct MacConfig {
  MacKind kind = MacKind::kPureAloha;
  /// Slotted-ALOHA slot pitch; 0 derives it from the burst:
  /// payload + both switch-on guards, so one burst fills one slot exactly.
  units::Seconds slot{0.0};
  /// Carrier-sense busy threshold: defer while the sensed in-channel
  /// power over the preceding segment exceeds this. The default sits well
  /// above receiver noise floors and well below a same-channel neighbor
  /// burst at city ranges.
  units::Dbm cs_threshold{-70.0};
  /// Carrier-sense gives up (the burst is never sent) after this many
  /// deferrals — a bounded listen-before-talk, not an infinite backoff.
  std::size_t max_deferrals = 64;
};

/// One intended transmission entering MAC resolution. Times are absolute
/// within the rendered window (settle included), like the engine's blocks.
struct MacAttempt {
  units::Seconds nominal_start{0.0};  ///< requested payload start
  units::Seconds burst{0.0};          ///< payload on-air time
  units::Seconds guard{0.0};          ///< switch-on guard on either side
  MacConfig config;
};

/// The resolved outcome of one attempt.
struct MacDecision {
  /// Actual payload start (meaningful only when transmitted).
  units::Seconds start{0.0};
  std::size_t deferrals = 0;
  bool transmitted = true;
  /// What the final carrier-sense measured (-inf for non-CS policies and
  /// for empty sense windows).
  units::Dbm last_sensed{-std::numeric_limits<double>::infinity()};
};

/// A committed transmission's switch-on window (payload plus guards) as
/// seen by carrier sensing.
struct OnAirInterval {
  std::size_t attempt = 0;
  units::Seconds begin{0.0};
  units::Seconds end{0.0};
};

/// Channel-sense oracle: in-band power observed by `attempt`'s tag in
/// its own subcarrier channel over [t0, t1), given the transmissions
/// committed so far. The caller owns the physics (geometry, link budgets,
/// channel overlap); return -inf dBm for a silent channel.
using ChannelSenseFn = std::function<units::Dbm(
    std::size_t attempt, units::Seconds t0, units::Seconds t1,
    std::span<const OnAirInterval> on_air)>;

/// Next slot boundary at or after `nominal_start` for a pitch.
units::Seconds slotted_start(units::Seconds nominal_start, units::Seconds slot);

/// Analytic verdict for one burst against one same-channel neighbor.
/// Ordered by severity so a reduction over many neighbors is std::max.
enum class Vulnerability {
  kClear = 0,      ///< no contact at all — certain delivery
  kGraze = 1,      ///< sub-symbol or guard-only contact — PHY-ambiguous
  kCollision = 2,  ///< >= one symbol of payload-on-payload — certain loss
};

const char* to_string(Vulnerability v);

/// A committed burst as the vulnerability rule sees it: payload span plus
/// the switch-on guard during which the tag's carrier is already on the air.
struct BurstWindow {
  units::Seconds start{0.0};  ///< payload start
  units::Seconds burst{0.0};  ///< payload on-air time
  units::Seconds guard{0.0};  ///< switch-on guard on either side
};

/// The ALOHA vulnerability rule, split by what actually touches `mine`'s
/// payload: `other`'s payload overlapping it by a symbol or more is a
/// certain collision; no contact at all (not even `other`'s switch-on
/// guard) is a certain delivery; anything between is a graze whose outcome
/// only the PHY can call. `symbol_seconds` is one FDM-FSK symbol at
/// `mine`'s data rate. Both the scenario-vs-analytic cross-check and the
/// fleet engine's contention classifier share this one rule.
Vulnerability classify_vulnerability(const BurstWindow& mine,
                                     const BurstWindow& other,
                                     units::Seconds symbol);

/// Resolves every attempt's actual start time within [0, window].
///
/// Pure-ALOHA and slotted-ALOHA attempts commit immediately (slotted after
/// quantization); their fit inside the window is the caller's contract to
/// validate. Carrier-sense attempts then resolve in candidate-time order:
/// a candidate inside segment k senses the preceding segment [(k-1)S, kS)
/// — or the elapsed part of segment 0 — against the transmissions committed
/// so far; a busy channel defers the candidate to the next segment
/// boundary. Candidates sharing one boundary decide against the same
/// committed set and commit together (simultaneous listeners cannot hear
/// each other — colliding anyway is exactly the residual collision rate a
/// real LBT keeps). A carrier-sense burst that can no longer fit the
/// window, or exceeds max_deferrals, is never sent (transmitted = false).
///
/// Deterministic: no randomness, no dependence on container ordering
/// beyond attempt indices. Throws std::invalid_argument when a
/// carrier-sense attempt is given a non-positive segment (LBT needs
/// a timeline to listen in).
std::vector<MacDecision> resolve_mac_schedule(
    std::span<const MacAttempt> attempts, units::Seconds window,
    units::Seconds segment, const ChannelSenseFn& sense);

}  // namespace fmbs::tag
