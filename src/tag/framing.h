// Packet framing over the FSK modem: sync word + length + payload + CRC-16,
// plus frame repetition for the paper's maximal-ratio-combining scheme.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace fmbs::tag {

/// CRC-16/CCITT-FALSE over a byte sequence.
std::uint16_t crc16(std::span<const std::uint8_t> data);

/// Frame layout constants.
struct Frame {
  /// 16-bit sync word chosen for good autocorrelation (0xF628).
  static constexpr std::uint16_t kSyncWord = 0xF628;
  static constexpr std::size_t kMaxPayloadBytes = 255;
};

/// Encodes payload bytes into a bit sequence:
/// [sync 16][length 8][payload 8*n][crc 16], MSB-first.
std::vector<std::uint8_t> encode_frame(std::span<const std::uint8_t> payload);

/// Scans a decoded bit sequence for a frame; verifies length and CRC.
/// Returns the payload, or nullopt when no intact frame is found.
std::optional<std::vector<std::uint8_t>> decode_frame(
    std::span<const std::uint8_t> bits);

/// Repeats a bit sequence `count` times back-to-back (MRC transmissions:
/// "we backscatter our data N times").
std::vector<std::uint8_t> repeat_bits(std::span<const std::uint8_t> bits,
                                      std::size_t count);

}  // namespace fmbs::tag
