// Tag baseband composition: what FM_back(t) should be for each of the
// paper's three techniques (section 3.3).
//
//  * Overlay:   FM_back = the tag's audio or FSK data, placed in the mono
//               (0-15 kHz) band; the receiver hears program + tag audio.
//  * Stereo:    FM_back = 0.9 * side_content * cos(2 pi 38k t)
//                         [+ 0.1 * cos(2 pi 19k t) when converting a mono
//                         station to stereo]  — the paper's stereo equation.
//  * Cooperative: overlay content prefixed by a 13 kHz calibration pilot
//               preamble, with the pilot kept at low level during payload
//               for the receiver's amplitude-calibration step.
#pragma once

#include <optional>
#include <span>

#include "audio/audio_buffer.h"
#include "dsp/types.h"
#include "fm/constants.h"

namespace fmbs::tag {

/// Parameters of the cooperative calibration pilot (paper: "we transmit a
/// low power pilot tone at 13 kHz as a preamble").
struct CoopPilotConfig {
  double pilot_hz = 13000.0;
  double preamble_seconds = 0.25;
  double preamble_level = 0.25;  // pilot alone during the preamble
  double payload_level = 0.05;   // pilot underneath the payload
};

/// Composes an overlay baseband at the MPX rate from audio-rate content.
/// `level` scales the content relative to full deviation.
dsp::rvec compose_overlay_baseband(const audio::MonoBuffer& content, double level,
                                   double mpx_rate = fm::kMpxRate);

/// Composes a stereo-backscatter baseband: content is amplitude-modulated
/// onto the 38 kHz subcarrier at program level 0.9; when `insert_pilot` is
/// true a 19 kHz pilot at level 0.1 is added (mono-to-stereo conversion).
dsp::rvec compose_stereo_baseband(const audio::MonoBuffer& side_content,
                                  bool insert_pilot,
                                  double mpx_rate = fm::kMpxRate);

/// Composes a cooperative-backscatter baseband: 13 kHz pilot preamble, then
/// the overlay content mixed with a low-level pilot.
dsp::rvec compose_cooperative_baseband(const audio::MonoBuffer& content,
                                       double level,
                                       const CoopPilotConfig& pilot = {},
                                       double mpx_rate = fm::kMpxRate);

/// Composes an RDS-backscatter baseband: the tag places an RDS bitstream on
/// the 57 kHz subcarrier of its *own* backscatter channel (which is empty —
/// the shifted copy of the station carries no RDS of its own). Any RDS-aware
/// receiver on the backscatter channel then shows the tag's text. `level`
/// is the subcarrier injection level (broadcast RDS uses ~0.05-0.1 of
/// deviation; higher is fine here since the stereo band is unused).
dsp::rvec compose_rds_baseband(std::span<const unsigned char> rds_bits,
                               std::size_t num_samples, double level = 0.3,
                               double mpx_rate = fm::kMpxRate);

}  // namespace fmbs::tag
