#include "tag/mac.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmbs::tag {

namespace {

constexpr double kTimeEps = 1e-9;

/// Candidate times within one epsilon share a decision round: they sense
/// the same committed schedule and commit together.
bool same_instant(double a, double b) { return std::abs(a - b) < kTimeEps; }

}  // namespace

const char* to_string(MacKind kind) {
  switch (kind) {
    case MacKind::kPureAloha:
      return "pure-aloha";
    case MacKind::kSlottedAloha:
      return "slotted-aloha";
    case MacKind::kCarrierSense:
      return "carrier-sense";
  }
  return "?";
}

const char* to_string(Vulnerability v) {
  switch (v) {
    case Vulnerability::kClear:
      return "clear";
    case Vulnerability::kGraze:
      return "graze";
    case Vulnerability::kCollision:
      return "collision";
  }
  return "?";
}

Vulnerability classify_vulnerability(const BurstWindow& mine,
                                     const BurstWindow& other,
                                     double symbol_seconds) {
  const double lo = mine.start_seconds;
  const double hi = mine.start_seconds + mine.burst_seconds;
  // Payload-on-payload contact decides certain collisions...
  const double pp = std::min(hi, other.start_seconds + other.burst_seconds) -
                    std::max(lo, other.start_seconds);
  // ...while any contact with the other switch's on-air window (payload
  // plus guards, whose carrier interferes like payload does) rules out a
  // certain delivery.
  const double po =
      std::min(hi, other.start_seconds + other.burst_seconds +
                       other.guard_seconds) -
      std::max(lo, other.start_seconds - other.guard_seconds);
  if (po <= 0.0) return Vulnerability::kClear;
  if (pp >= symbol_seconds) return Vulnerability::kCollision;
  return Vulnerability::kGraze;
}

double slotted_start(double nominal_start_seconds, double slot_seconds) {
  if (slot_seconds <= 0.0) {
    throw std::invalid_argument("slotted_start: slot pitch must be > 0");
  }
  const double slots = nominal_start_seconds / slot_seconds;
  // A nominal start already on a boundary keeps it (epsilon absorbs the
  // division round-off); anything later rounds up to the next slot.
  return std::ceil(slots - kTimeEps) * slot_seconds;
}

std::vector<MacDecision> resolve_mac_schedule(
    std::span<const MacAttempt> attempts, double window_seconds,
    double segment_seconds, const ChannelSenseFn& sense) {
  std::vector<MacDecision> decisions(attempts.size());
  std::vector<OnAirInterval> on_air;
  on_air.reserve(attempts.size());

  // Pending carrier-sense attempts, tracked by their moving candidate time.
  struct Pending {
    std::size_t index = 0;
    double candidate = 0.0;
  };
  std::vector<Pending> pending;

  // ---- Phase 1: policies whose start is a pure function of the config. ----
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const MacAttempt& a = attempts[i];
    MacDecision& d = decisions[i];
    switch (a.config.kind) {
      case MacKind::kPureAloha:
        d.start_seconds = a.nominal_start_seconds;
        on_air.push_back({i, d.start_seconds - a.guard_seconds,
                          d.start_seconds + a.burst_seconds + a.guard_seconds});
        break;
      case MacKind::kSlottedAloha: {
        const double pitch = a.config.slot_seconds > 0.0
                                 ? a.config.slot_seconds
                                 : a.burst_seconds + 2.0 * a.guard_seconds;
        d.start_seconds = slotted_start(a.nominal_start_seconds, pitch);
        on_air.push_back({i, d.start_seconds - a.guard_seconds,
                          d.start_seconds + a.burst_seconds + a.guard_seconds});
        break;
      }
      case MacKind::kCarrierSense:
        if (segment_seconds <= 0.0) {
          throw std::invalid_argument(
              "resolve_mac_schedule: carrier sense needs a segmented "
              "timeline (segment_seconds > 0) to listen in");
        }
        pending.push_back({i, a.nominal_start_seconds});
        break;
    }
  }

  // ---- Phase 2: carrier sense, earliest candidate first. -------------------
  while (!pending.empty()) {
    double now = pending.front().candidate;
    for (const Pending& p : pending) now = std::min(now, p.candidate);

    std::vector<OnAirInterval> committed_this_round;
    std::vector<Pending> still_pending;
    for (Pending& p : pending) {
      if (!same_instant(p.candidate, now)) {
        still_pending.push_back(p);
        continue;
      }
      const MacAttempt& a = attempts[p.index];
      MacDecision& d = decisions[p.index];
      // Carrier sense never throws on fit: a burst that cannot fit the
      // window — nominally or after deferral — silently stays off the air.
      if (p.candidate + a.burst_seconds > window_seconds + kTimeEps) {
        d.transmitted = false;
        continue;
      }
      // The sense window: the full preceding segment, or — inside segment 0,
      // where no full segment has elapsed — whatever has been on the air
      // since the scenario began.
      const auto seg =
          static_cast<std::size_t>(std::floor(now / segment_seconds + kTimeEps));
      const double w0 =
          seg == 0 ? 0.0 : (static_cast<double>(seg) - 1.0) * segment_seconds;
      const double w1 =
          seg == 0 ? now : static_cast<double>(seg) * segment_seconds;
      d.last_sensed_dbm =
          w1 > w0 ? sense(p.index, w0, w1, on_air)
                  : -std::numeric_limits<double>::infinity();

      if (d.last_sensed_dbm <= a.config.cs_threshold_dbm) {
        d.start_seconds = now;
        d.transmitted = true;
        committed_this_round.push_back(
            {p.index, now - a.guard_seconds,
             now + a.burst_seconds + a.guard_seconds});
        continue;
      }
      ++d.deferrals;
      if (d.deferrals > a.config.max_deferrals) {
        d.transmitted = false;  // bounded LBT: give up, stay silent
        continue;
      }
      p.candidate = (static_cast<double>(seg) + 1.0) * segment_seconds;
      if (p.candidate + a.burst_seconds > window_seconds + kTimeEps) {
        d.transmitted = false;  // the deferred burst no longer fits the run
        continue;
      }
      still_pending.push_back(p);
    }
    // Same-boundary listeners could not hear each other; their bursts join
    // the schedule only after the whole round has decided.
    on_air.insert(on_air.end(), committed_this_round.begin(),
                  committed_this_round.end());
    pending = std::move(still_pending);
  }

  return decisions;
}

}  // namespace fmbs::tag
