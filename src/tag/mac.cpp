#include "tag/mac.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmbs::tag {

namespace {

constexpr double kTimeEps = 1e-9;

/// Candidate times within one epsilon share a decision round: they sense
/// the same committed schedule and commit together.
bool same_instant(double a, double b) { return std::abs(a - b) < kTimeEps; }

}  // namespace

const char* to_string(MacKind kind) {
  switch (kind) {
    case MacKind::kPureAloha:
      return "pure-aloha";
    case MacKind::kSlottedAloha:
      return "slotted-aloha";
    case MacKind::kCarrierSense:
      return "carrier-sense";
  }
  return "?";
}

const char* to_string(Vulnerability v) {
  switch (v) {
    case Vulnerability::kClear:
      return "clear";
    case Vulnerability::kGraze:
      return "graze";
    case Vulnerability::kCollision:
      return "collision";
  }
  return "?";
}

Vulnerability classify_vulnerability(const BurstWindow& mine,
                                     const BurstWindow& other,
                                     units::Seconds symbol) {
  const double lo = mine.start.raw();
  const double hi = mine.start.raw() + mine.burst.raw();
  // Payload-on-payload contact decides certain collisions...
  const double pp = std::min(hi, other.start.raw() + other.burst.raw()) -
                    std::max(lo, other.start.raw());
  // ...while any contact with the other switch's on-air window (payload
  // plus guards, whose carrier interferes like payload does) rules out a
  // certain delivery.
  const double po =
      std::min(hi, other.start.raw() + other.burst.raw() +
                       other.guard.raw()) -
      std::max(lo, other.start.raw() - other.guard.raw());
  if (po <= 0.0) return Vulnerability::kClear;
  if (pp >= symbol.raw()) return Vulnerability::kCollision;
  return Vulnerability::kGraze;
}

units::Seconds slotted_start(units::Seconds nominal_start,
                             units::Seconds slot) {
  if (slot.raw() <= 0.0) {
    throw std::invalid_argument("slotted_start: slot pitch must be > 0");
  }
  const double slots = nominal_start.raw() / slot.raw();
  // A nominal start already on a boundary keeps it (epsilon absorbs the
  // division round-off); anything later rounds up to the next slot.
  return units::Seconds{std::ceil(slots - kTimeEps) * slot.raw()};
}

std::vector<MacDecision> resolve_mac_schedule(
    std::span<const MacAttempt> attempts, units::Seconds window,
    units::Seconds segment, const ChannelSenseFn& sense) {
  const double window_seconds = window.raw();
  const double segment_seconds = segment.raw();
  std::vector<MacDecision> decisions(attempts.size());
  std::vector<OnAirInterval> on_air;
  on_air.reserve(attempts.size());

  // Pending carrier-sense attempts, tracked by their moving candidate time.
  struct Pending {
    std::size_t index = 0;
    double candidate = 0.0;
  };
  std::vector<Pending> pending;

  // ---- Phase 1: policies whose start is a pure function of the config. ----
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const MacAttempt& a = attempts[i];
    MacDecision& d = decisions[i];
    switch (a.config.kind) {
      case MacKind::kPureAloha:
        d.start = a.nominal_start;
        on_air.push_back(
            {i, units::Seconds{d.start.raw() - a.guard.raw()},
             units::Seconds{d.start.raw() + a.burst.raw() + a.guard.raw()}});
        break;
      case MacKind::kSlottedAloha: {
        const units::Seconds pitch{a.config.slot.raw() > 0.0
                                       ? a.config.slot.raw()
                                       : a.burst.raw() + 2.0 * a.guard.raw()};
        d.start = slotted_start(a.nominal_start, pitch);
        on_air.push_back(
            {i, units::Seconds{d.start.raw() - a.guard.raw()},
             units::Seconds{d.start.raw() + a.burst.raw() + a.guard.raw()}});
        break;
      }
      case MacKind::kCarrierSense:
        if (segment_seconds <= 0.0) {
          throw std::invalid_argument(
              "resolve_mac_schedule: carrier sense needs a segmented "
              "timeline (segment_seconds > 0) to listen in");
        }
        pending.push_back({i, a.nominal_start.raw()});
        break;
    }
  }

  // ---- Phase 2: carrier sense, earliest candidate first. -------------------
  while (!pending.empty()) {
    double now = pending.front().candidate;
    for (const Pending& p : pending) now = std::min(now, p.candidate);

    std::vector<OnAirInterval> committed_this_round;
    std::vector<Pending> still_pending;
    for (Pending& p : pending) {
      if (!same_instant(p.candidate, now)) {
        still_pending.push_back(p);
        continue;
      }
      const MacAttempt& a = attempts[p.index];
      MacDecision& d = decisions[p.index];
      // Carrier sense never throws on fit: a burst that cannot fit the
      // window — nominally or after deferral — silently stays off the air.
      if (p.candidate + a.burst.raw() > window_seconds + kTimeEps) {
        d.transmitted = false;
        continue;
      }
      // The sense window: the full preceding segment, or — inside segment 0,
      // where no full segment has elapsed — whatever has been on the air
      // since the scenario began.
      const auto seg =
          static_cast<std::size_t>(std::floor(now / segment_seconds + kTimeEps));
      const double w0 =
          seg == 0 ? 0.0 : (static_cast<double>(seg) - 1.0) * segment_seconds;
      const double w1 =
          seg == 0 ? now : static_cast<double>(seg) * segment_seconds;
      d.last_sensed =
          w1 > w0 ? sense(p.index, units::Seconds{w0}, units::Seconds{w1},
                          on_air)
                  : units::Dbm{-std::numeric_limits<double>::infinity()};

      if (d.last_sensed <= a.config.cs_threshold) {
        d.start = units::Seconds{now};
        d.transmitted = true;
        committed_this_round.push_back(
            {p.index, units::Seconds{now - a.guard.raw()},
             units::Seconds{now + a.burst.raw() + a.guard.raw()}});
        continue;
      }
      ++d.deferrals;
      if (d.deferrals > a.config.max_deferrals) {
        d.transmitted = false;  // bounded LBT: give up, stay silent
        continue;
      }
      p.candidate = (static_cast<double>(seg) + 1.0) * segment_seconds;
      if (p.candidate + a.burst.raw() > window_seconds + kTimeEps) {
        d.transmitted = false;  // the deferred burst no longer fits the run
        continue;
      }
      still_pending.push_back(p);
    }
    // Same-boundary listeners could not hear each other; their bursts join
    // the schedule only after the whole round has decided.
    on_air.insert(on_air.end(), committed_this_round.begin(),
                  committed_this_round.end());
    pending = std::move(still_pending);
  }

  return decisions;
}

}  // namespace fmbs::tag
