#include "tag/coding.h"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

namespace fmbs::tag {

namespace {

// Hamming(7,4) generator: data d1..d4, parities p1 = d1^d2^d4,
// p2 = d1^d3^d4, p3 = d2^d3^d4; codeword [p1 p2 d1 p3 d2 d3 d4]
// (the classic positional layout, so the syndrome directly indexes the
// erroneous bit).
std::array<std::uint8_t, 7> hamming_codeword(std::uint8_t d1, std::uint8_t d2,
                                             std::uint8_t d3, std::uint8_t d4) {
  const std::uint8_t p1 = d1 ^ d2 ^ d4;
  const std::uint8_t p2 = d1 ^ d3 ^ d4;
  const std::uint8_t p3 = d2 ^ d3 ^ d4;
  return {p1, p2, d1, p3, d2, d3, d4};
}

}  // namespace

std::vector<std::uint8_t> hamming74_encode(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out;
  out.reserve((bits.size() + 3) / 4 * 7);
  for (std::size_t i = 0; i < bits.size(); i += 4) {
    const auto bit = [&](std::size_t k) -> std::uint8_t {
      return i + k < bits.size() ? bits[i + k] : 0;
    };
    const auto cw = hamming_codeword(bit(0), bit(1), bit(2), bit(3));
    out.insert(out.end(), cw.begin(), cw.end());
  }
  return out;
}

std::vector<std::uint8_t> hamming74_decode(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out;
  out.reserve(bits.size() / 7 * 4);
  for (std::size_t i = 0; i + 7 <= bits.size(); i += 7) {
    std::array<std::uint8_t, 7> cw{};
    for (std::size_t k = 0; k < 7; ++k) cw[k] = bits[i + k];
    // Syndrome bits: s1 checks positions 1,3,5,7; s2: 2,3,6,7; s3: 4,5,6,7
    // (1-indexed).
    const std::uint8_t s1 = cw[0] ^ cw[2] ^ cw[4] ^ cw[6];
    const std::uint8_t s2 = cw[1] ^ cw[2] ^ cw[5] ^ cw[6];
    const std::uint8_t s3 = cw[3] ^ cw[4] ^ cw[5] ^ cw[6];
    const std::size_t syndrome =
        static_cast<std::size_t>(s1) | (static_cast<std::size_t>(s2) << 1) |
        (static_cast<std::size_t>(s3) << 2);
    if (syndrome != 0) cw[syndrome - 1] ^= 1;  // correct the flagged bit
    out.push_back(cw[2]);
    out.push_back(cw[4]);
    out.push_back(cw[5]);
    out.push_back(cw[6]);
  }
  return out;
}

namespace {

std::uint8_t parity(std::uint8_t v) {
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return v & 1;
}

}  // namespace

std::vector<std::uint8_t> convolutional_encode(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out;
  out.reserve(2 * (bits.size() + 6));
  std::uint8_t state = 0;  // 6 memory bits
  auto push = [&](std::uint8_t input) {
    const std::uint8_t reg = static_cast<std::uint8_t>((input << 6) | state);
    out.push_back(parity(reg & ConvolutionalCode::kPolyA));
    out.push_back(parity(reg & ConvolutionalCode::kPolyB));
    state = static_cast<std::uint8_t>(reg >> 1);
  };
  for (const std::uint8_t b : bits) push(b & 1);
  for (int i = 0; i < 6; ++i) push(0);  // flush to the zero state
  return out;
}

std::vector<std::uint8_t> viterbi_decode(std::span<const std::uint8_t> bits) {
  if (bits.size() % 2 != 0 || bits.size() < 12) {
    throw std::invalid_argument("viterbi_decode: need an even number of >= 12 bits");
  }
  const std::size_t steps = bits.size() / 2;
  constexpr std::size_t kStates = 64;
  constexpr int kInf = std::numeric_limits<int>::max() / 4;

  // Precompute expected outputs per (state, input).
  std::array<std::array<std::uint8_t, 2>, kStates * 2> expected{};
  std::array<std::array<std::uint8_t, 2>, kStates> next{};
  for (std::size_t s = 0; s < kStates; ++s) {
    for (std::uint8_t in = 0; in < 2; ++in) {
      const std::uint8_t reg = static_cast<std::uint8_t>((in << 6) | s);
      expected[s * 2 + in] = {parity(reg & ConvolutionalCode::kPolyA),
                              parity(reg & ConvolutionalCode::kPolyB)};
      next[s][in] = static_cast<std::uint8_t>(reg >> 1);
    }
  }

  std::vector<int> metric(kStates, kInf);
  metric[0] = 0;  // encoder starts in the zero state
  std::vector<std::uint8_t> backtrack(steps * kStates);

  std::vector<int> metric_next(kStates);
  for (std::size_t t = 0; t < steps; ++t) {
    std::fill(metric_next.begin(), metric_next.end(), kInf);
    std::vector<std::uint8_t> chosen_input(kStates, 0);
    std::vector<std::uint8_t> chosen_prev(kStates, 0);
    const std::uint8_t r0 = bits[2 * t];
    const std::uint8_t r1 = bits[2 * t + 1];
    for (std::size_t s = 0; s < kStates; ++s) {
      if (metric[s] >= kInf) continue;
      for (std::uint8_t in = 0; in < 2; ++in) {
        const auto& e = expected[s * 2 + in];
        const int branch = (e[0] != r0) + (e[1] != r1);
        const std::uint8_t ns = next[s][in];
        const int cand = metric[s] + branch;
        if (cand < metric_next[ns]) {
          metric_next[ns] = cand;
          chosen_input[ns] = in;
          chosen_prev[ns] = static_cast<std::uint8_t>(s);
        }
      }
    }
    metric.swap(metric_next);
    for (std::size_t ns = 0; ns < kStates; ++ns) {
      // Pack (input, prev) for traceback: input in bit 7, prev in bits 0-5.
      backtrack[t * kStates + ns] =
          static_cast<std::uint8_t>((chosen_input[ns] << 7) | chosen_prev[ns]);
    }
  }

  // Terminated in state 0 by the flush bits.
  std::vector<std::uint8_t> reversed;
  reversed.reserve(steps);
  std::uint8_t state = 0;
  for (std::size_t t = steps; t-- > 0;) {
    const std::uint8_t entry = backtrack[t * kStates + state];
    reversed.push_back(static_cast<std::uint8_t>(entry >> 7));
    state = entry & 0x3F;
  }
  std::reverse(reversed.begin(), reversed.end());
  reversed.resize(steps - 6);  // drop the flush bits
  return reversed;
}

std::vector<std::uint8_t> interleave(std::span<const std::uint8_t> bits,
                                     std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("interleave: rows and cols must be >= 1");
  }
  const std::size_t block = rows * cols;
  const std::size_t blocks = (bits.size() + block - 1) / block;
  std::vector<std::uint8_t> out;
  out.reserve(blocks * block);
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t c = 0; c < cols; ++c) {
      for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t idx = b * block + r * cols + c;
        out.push_back(idx < bits.size() ? bits[idx] : 0);
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> deinterleave(std::span<const std::uint8_t> bits,
                                       std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("deinterleave: rows and cols must be >= 1");
  }
  const std::size_t block = rows * cols;
  const std::size_t blocks = (bits.size() + block - 1) / block;
  std::vector<std::uint8_t> out(blocks * block, 0);
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t k = 0;
    for (std::size_t c = 0; c < cols; ++c) {
      for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t src = b * block + k++;
        if (src < bits.size()) out[b * block + r * cols + c] = bits[src];
      }
    }
  }
  return out;
}

namespace {
constexpr std::size_t kInterleaveRows = 16;
constexpr std::size_t kInterleaveCols = 32;
}  // namespace

std::vector<std::uint8_t> fec_encode(std::span<const std::uint8_t> bits,
                                     FecScheme scheme) {
  switch (scheme) {
    case FecScheme::kNone:
      return std::vector<std::uint8_t>(bits.begin(), bits.end());
    case FecScheme::kHamming74: {
      const auto coded = hamming74_encode(bits);
      return interleave(coded, kInterleaveRows, kInterleaveCols);
    }
    case FecScheme::kConvolutionalK7: {
      const auto coded = convolutional_encode(bits);
      return interleave(coded, kInterleaveRows, kInterleaveCols);
    }
  }
  throw std::invalid_argument("fec_encode: unknown scheme");
}

std::vector<std::uint8_t> fec_decode(std::span<const std::uint8_t> bits,
                                     FecScheme scheme, std::size_t payload_bits) {
  std::vector<std::uint8_t> out;
  switch (scheme) {
    case FecScheme::kNone:
      out.assign(bits.begin(), bits.end());
      break;
    case FecScheme::kHamming74: {
      auto deint = deinterleave(bits, kInterleaveRows, kInterleaveCols);
      deint.resize((payload_bits + 3) / 4 * 7);
      out = hamming74_decode(deint);
      break;
    }
    case FecScheme::kConvolutionalK7: {
      auto deint = deinterleave(bits, kInterleaveRows, kInterleaveCols);
      deint.resize(2 * (payload_bits + 6));
      out = viterbi_decode(deint);
      break;
    }
  }
  if (out.size() > payload_bits) out.resize(payload_bits);
  return out;
}

std::size_t fec_encoded_length(std::size_t payload_bits, FecScheme scheme) {
  std::size_t raw = payload_bits;
  switch (scheme) {
    case FecScheme::kNone:
      return payload_bits;
    case FecScheme::kHamming74:
      raw = (payload_bits + 3) / 4 * 7;
      break;
    case FecScheme::kConvolutionalK7:
      raw = 2 * (payload_bits + 6);
      break;
  }
  const std::size_t block = kInterleaveRows * kInterleaveCols;
  return (raw + block - 1) / block * block;
}

double fec_rate(FecScheme scheme) {
  switch (scheme) {
    case FecScheme::kNone: return 1.0;
    case FecScheme::kHamming74: return 4.0 / 7.0;
    case FecScheme::kConvolutionalK7: return 0.5;
  }
  return 1.0;
}

const char* to_string(FecScheme scheme) {
  switch (scheme) {
    case FecScheme::kNone: return "uncoded";
    case FecScheme::kHamming74: return "Hamming(7,4)";
    case FecScheme::kConvolutionalK7: return "conv K=7 r=1/2";
  }
  return "unknown";
}

}  // namespace fmbs::tag
