#include "tag/power_model.h"

#include <stdexcept>

namespace fmbs::tag {

PowerBreakdown tag_power(const PowerModelConfig& config) {
  if (config.subcarrier.raw() <= 0.0) {
    throw std::invalid_argument("tag_power: bad subcarrier frequency");
  }
  PowerBreakdown out;
  out.baseband_uw = config.baseband_uw;
  // Dynamic power ~ C V^2 f: linear in the switching frequency.
  const double f_scale = config.subcarrier.raw() / 600e3;
  out.modulator_uw = config.modulator_uw_at_600k * f_scale;
  out.switch_uw = config.switch_uw_at_600k * f_scale;
  out.total_uw = out.baseband_uw + out.modulator_uw + out.switch_uw;
  return out;
}

BatteryLife battery_life(double power_uw, double capacity_mah,
                         double supply_voltage, double efficiency) {
  if (power_uw <= 0.0 || capacity_mah <= 0.0 || supply_voltage <= 0.0 ||
      efficiency <= 0.0 || efficiency > 1.0) {
    throw std::invalid_argument("battery_life: bad parameters");
  }
  BatteryLife out;
  out.current_ua = power_uw / (supply_voltage * efficiency);
  out.hours = capacity_mah * 1000.0 / out.current_ua;
  out.years = out.hours / (24.0 * 365.0);
  return out;
}

BatteryLife battery_life_from_current(double current_ma, double capacity_mah) {
  if (current_ma <= 0.0 || capacity_mah <= 0.0) {
    throw std::invalid_argument("battery_life_from_current: bad parameters");
  }
  BatteryLife out;
  out.current_ua = current_ma * 1000.0;
  out.hours = capacity_mah / current_ma;
  out.years = out.hours / (24.0 * 365.0);
  return out;
}

}  // namespace fmbs::tag
