// Behavioral antenna models for the paper's prototypes (section 6):
//  * 40"x60" half-wave copper-tape dipole on a bus-stop poster,
//  * 24"x36" bowtie on a Super A1 poster,
//  * meander dipole machine-sewn in conductive thread on a cotton t-shirt
//    (with body-proximity loss, per the paper's observation that "wearable
//    systems suffer from losses such as poor antenna performance in close
//    proximity to the human body").
// These are gain/efficiency abstractions, not EM solves (see DESIGN.md).
#pragma once

#include <string>

namespace fmbs::tag {

/// Antenna behavioral parameters.
struct AntennaModel {
  std::string name;
  double gain_dbi = 0.0;        // peak gain
  double efficiency_db = 0.0;   // ohmic/mismatch loss (negative)
  double body_loss_db = 0.0;    // proximity loss when worn (negative-ish, stored positive)

  /// Effective gain used in the link budget.
  double effective_gain_db() const {
    return gain_dbi + efficiency_db - body_loss_db;
  }
};

/// 40"x60" half-wave dipole poster antenna (copper tape).
AntennaModel poster_dipole_antenna();

/// 24"x36" bowtie poster antenna (copper tape, wider bandwidth, slightly
/// lower gain).
AntennaModel poster_bowtie_antenna();

/// Meander dipole sewn on a t-shirt in stainless conductive thread; the
/// `worn` flag applies body-proximity loss.
AntennaModel tshirt_meander_antenna(bool worn = true);

/// Quarter-wave whip on a car body (receiver side, for Fig. 14).
AntennaModel car_whip_antenna();

/// Headphone-cable antenna of a smartphone (receiver side).
AntennaModel headphone_antenna();

}  // namespace fmbs::tag
