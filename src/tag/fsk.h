// Audio-band data modulators — paper section 3.4.
//
//  * 100 bps: binary FSK with tones at 8 and 12 kHz ("above most human
//    speech frequencies"), 100 symbols/s.
//  * 1.6 / 3.2 kbps: FDM-4FSK — sixteen tones from 800 Hz to 12.8 kHz in
//    four consecutive groups; each group signals 2 bits by activating one of
//    its four tones (so 8 bits/symbol, only 4 tones live at a time, keeping
//    transmitter complexity and peak-to-average ratio low); 200 or 400
//    symbols/s.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "audio/audio_buffer.h"

namespace fmbs::tag {

/// The paper's three data rates.
enum class DataRate {
  k100bps,
  k1600bps,
  k3200bps,
};

/// Human-readable rate name.
const char* to_string(DataRate rate);

/// Bits per second for a rate.
double bits_per_second(DataRate rate);

/// Modulation parameters shared by modulator and demodulator.
struct FskParams {
  std::vector<double> tones_hz;  // all candidate tones
  std::size_t groups = 1;        // frequency-division groups
  std::size_t tones_per_group = 2;
  double symbol_rate = 100.0;
  std::size_t bits_per_symbol = 1;

  static FskParams for_rate(DataRate rate);
};

/// Modulates a bit sequence into audio-band baseband at `sample_rate`.
/// Tones maintain phase continuity across symbols (per-tone oscillators) to
/// avoid keying splatter. Amplitude is normalized so the waveform peaks near
/// `amplitude`.
audio::MonoBuffer modulate_fsk(std::span<const std::uint8_t> bits, DataRate rate,
                               double sample_rate, double amplitude = 1.0);

/// Exact on-air duration of modulate_fsk(bits of `num_bits`, rate,
/// sample_rate) without synthesizing the waveform — the same whole-symbol
/// rounding, so MAC schedules built from this match the rendered burst
/// sample for sample. Lets the scenario engine resolve its schedule for
/// every deployed tag while synthesizing waveforms only for the tags some
/// receiver can actually hear.
double fsk_burst_seconds(std::size_t num_bits, DataRate rate,
                         double sample_rate);

/// Deterministic pseudo-random payload helper for BER runs.
std::vector<std::uint8_t> random_bits(std::size_t count, std::uint64_t seed);

}  // namespace fmbs::tag
