#include "tag/baseband.h"

#include <cmath>
#include <stdexcept>

#include "dsp/fir.h"
#include "dsp/math_util.h"
#include "dsp/nco.h"
#include "fm/rds.h"

namespace fmbs::tag {

namespace {

dsp::rvec upsample_to_mpx(const audio::MonoBuffer& content, double mpx_rate) {
  if (content.sample_rate <= 0.0 || mpx_rate <= 0.0) {
    throw std::invalid_argument("tag baseband: bad sample rate");
  }
  const double ratio = mpx_rate / content.sample_rate;
  const auto factor = static_cast<std::size_t>(ratio + 0.5);
  if (factor == 0 || std::abs(ratio - static_cast<double>(factor)) > 1e-9) {
    throw std::invalid_argument(
        "tag baseband: mpx_rate must be an integer multiple of the content rate");
  }
  if (factor == 1) return content.samples;
  dsp::FirInterpolator<float> interp(
      dsp::fir_design_lowpass((16 * factor) | 1U,
                              0.45 / static_cast<double>(factor)),
      factor);
  return interp.process(content.samples);
}

}  // namespace

dsp::rvec compose_overlay_baseband(const audio::MonoBuffer& content, double level,
                                   double mpx_rate) {
  dsp::rvec up = upsample_to_mpx(content, mpx_rate);
  const auto g = static_cast<float>(level);
  for (auto& v : up) v *= g;
  return up;
}

dsp::rvec compose_stereo_baseband(const audio::MonoBuffer& side_content,
                                  bool insert_pilot, double mpx_rate) {
  dsp::rvec up = upsample_to_mpx(side_content, mpx_rate);
  dsp::Oscillator subcarrier(fm::kStereoCarrierHz, mpx_rate);
  dsp::Oscillator pilot(fm::kPilotHz, mpx_rate);
  const auto prog = static_cast<float>(fm::kProgramLevel);
  const auto pil = static_cast<float>(fm::kPilotLevel);
  for (auto& v : up) {
    float s = prog * v * subcarrier.next_real();
    if (insert_pilot) {
      s += pil * pilot.next_real();
    } else {
      (void)pilot.next_real();
    }
    v = s;
  }
  return up;
}

dsp::rvec compose_cooperative_baseband(const audio::MonoBuffer& content,
                                       double level,
                                       const CoopPilotConfig& pilot_cfg,
                                       double mpx_rate) {
  dsp::rvec payload = upsample_to_mpx(content, mpx_rate);
  const auto preamble_len =
      static_cast<std::size_t>(pilot_cfg.preamble_seconds * mpx_rate);
  dsp::rvec out(preamble_len + payload.size());
  dsp::Oscillator pilot(pilot_cfg.pilot_hz, mpx_rate);
  const auto pre = static_cast<float>(pilot_cfg.preamble_level);
  const auto pay = static_cast<float>(pilot_cfg.payload_level);
  const auto g = static_cast<float>(level);
  for (std::size_t i = 0; i < preamble_len; ++i) {
    out[i] = pre * pilot.next_real();
  }
  for (std::size_t i = 0; i < payload.size(); ++i) {
    out[preamble_len + i] = g * payload[i] + pay * pilot.next_real();
  }
  return out;
}

dsp::rvec compose_rds_baseband(std::span<const unsigned char> rds_bits,
                               std::size_t num_samples, double level,
                               double mpx_rate) {
  if (level <= 0.0 || level > 1.0) {
    throw std::invalid_argument("compose_rds_baseband: level must be in (0, 1]");
  }
  dsp::rvec wave = fm::modulate_rds_subcarrier(rds_bits, num_samples, mpx_rate);
  const auto g = static_cast<float>(level);
  for (auto& v : wave) v *= g;
  return wave;
}

}  // namespace fmbs::tag
