#include "tag/channel_plan.h"

#include <stdexcept>

namespace fmbs::tag {

namespace {

/// Lowest usable |f_back|: two channel spacings, so the backscatter channel's
/// Carson bandwidth (+-133 kHz) clears the station's own occupancy around DC.
constexpr double kMinShiftHz = 2.0 * fm::kChannelSpacingHz;

/// Positive channel-raster shifts that fit the scene: |f_back| + max
/// deviation must clear Nyquist with the subcarrier generator's margin.
std::vector<double> positive_shifts(double rf_rate) {
  std::vector<double> shifts;
  for (double f = kMinShiftHz;; f += fm::kChannelSpacingHz) {
    if (f + fm::kMaxDeviationHz >= rf_rate / 2.0) break;
    // The tuner needs the full channel passband alias-free.
    if (f + fm::kCarsonBandwidthHz / 2.0 >= rf_rate / 2.0) break;
    shifts.push_back(f);
  }
  return shifts;
}

}  // namespace

std::size_t max_disjoint_channels(double rf_rate) {
  return 2 * positive_shifts(rf_rate).size();
}

std::vector<ChannelAssignment> plan_subcarrier_channels(std::size_t num_tags,
                                                        double rf_rate) {
  if (num_tags == 0) {
    throw std::invalid_argument("plan_subcarrier_channels: num_tags must be > 0");
  }
  const std::vector<double> pos = positive_shifts(rf_rate);
  if (pos.empty()) {
    throw std::invalid_argument(
        "plan_subcarrier_channels: rf_rate too small for any backscatter channel");
  }

  // Disjoint channel list: +f (real square OK while only positive channels
  // are used), then -f (requires SSB everywhere so mirrors don't collide).
  const bool need_ssb = num_tags > pos.size();
  std::vector<double> channels;
  channels.reserve(2 * pos.size());
  for (const double f : pos) channels.push_back(f);
  if (need_ssb) {
    for (const double f : pos) channels.push_back(-f);
  }

  std::vector<ChannelAssignment> plan(num_tags);
  for (std::size_t i = 0; i < num_tags; ++i) {
    ChannelAssignment& a = plan[i];
    a.subcarrier.rf_rate = rf_rate;
    a.subcarrier.shift = units::Hertz{channels[i % channels.size()]};
    a.subcarrier.mode = need_ssb ? SubcarrierMode::kSingleSideband
                                 : SubcarrierMode::kBandlimitedSquare;
    a.shared = i >= channels.size();
  }
  return plan;
}

}  // namespace fmbs::tag
