#include "tag/fsk.h"

#include <cmath>
#include <random>
#include <stdexcept>

#include "dsp/math_util.h"

namespace fmbs::tag {

const char* to_string(DataRate rate) {
  switch (rate) {
    case DataRate::k100bps: return "100bps";
    case DataRate::k1600bps: return "1.6kbps";
    case DataRate::k3200bps: return "3.2kbps";
  }
  return "unknown";
}

double bits_per_second(DataRate rate) {
  switch (rate) {
    case DataRate::k100bps: return 100.0;
    case DataRate::k1600bps: return 1600.0;
    case DataRate::k3200bps: return 3200.0;
  }
  return 0.0;
}

FskParams FskParams::for_rate(DataRate rate) {
  FskParams p;
  switch (rate) {
    case DataRate::k100bps:
      p.tones_hz = {8000.0, 12000.0};
      p.groups = 1;
      p.tones_per_group = 2;
      p.symbol_rate = 100.0;
      p.bits_per_symbol = 1;
      break;
    case DataRate::k1600bps:
    case DataRate::k3200bps: {
      // Sixteen tones, 800 Hz ... 12.8 kHz in 800 Hz steps, grouped 4x4.
      for (int i = 1; i <= 16; ++i) p.tones_hz.push_back(800.0 * i);
      p.groups = 4;
      p.tones_per_group = 4;
      p.symbol_rate = rate == DataRate::k1600bps ? 200.0 : 400.0;
      p.bits_per_symbol = 8;
      break;
    }
  }
  return p;
}

audio::MonoBuffer modulate_fsk(std::span<const std::uint8_t> bits, DataRate rate,
                               double sample_rate, double amplitude) {
  if (sample_rate <= 0.0) throw std::invalid_argument("modulate_fsk: bad rate");
  if (bits.empty()) throw std::invalid_argument("modulate_fsk: no bits");
  const FskParams p = FskParams::for_rate(rate);

  const auto samples_per_symbol =
      static_cast<std::size_t>(sample_rate / p.symbol_rate + 0.5);
  const std::size_t num_symbols =
      (bits.size() + p.bits_per_symbol - 1) / p.bits_per_symbol;

  // Continuous-phase oscillators, one per tone.
  std::vector<double> phase(p.tones_hz.size(), 0.0);
  std::vector<double> step(p.tones_hz.size());
  for (std::size_t t = 0; t < p.tones_hz.size(); ++t) {
    step[t] = dsp::kTwoPi * p.tones_hz[t] / sample_rate;
  }

  const double tone_amp = amplitude / static_cast<double>(p.groups);
  std::vector<float> out(num_symbols * samples_per_symbol, 0.0F);

  for (std::size_t s = 0; s < num_symbols; ++s) {
    // Which tone is active in each group this symbol?
    std::vector<std::size_t> active(p.groups);
    for (std::size_t g = 0; g < p.groups; ++g) {
      std::size_t index = 0;
      const std::size_t bits_per_group = p.bits_per_symbol / p.groups;
      for (std::size_t b = 0; b < bits_per_group; ++b) {
        const std::size_t bit_pos = s * p.bits_per_symbol + g * bits_per_group + b;
        const std::uint8_t bit = bit_pos < bits.size() ? bits[bit_pos] : 0;
        index = (index << 1) | bit;
      }
      active[g] = g * p.tones_per_group + index;
    }
    for (std::size_t i = 0; i < samples_per_symbol; ++i) {
      float v = 0.0F;
      for (std::size_t t = 0; t < phase.size(); ++t) {
        // All oscillators advance; only active ones are summed, keeping the
        // phase continuous when a tone is re-keyed later.
        phase[t] += step[t];
        if (phase[t] >= dsp::kTwoPi) phase[t] -= dsp::kTwoPi;
        for (std::size_t g = 0; g < p.groups; ++g) {
          if (active[g] == t) {
            v += static_cast<float>(tone_amp * std::sin(phase[t]));
          }
        }
      }
      out[s * samples_per_symbol + i] = v;
    }
  }
  return audio::MonoBuffer(std::move(out), sample_rate);
}

double fsk_burst_seconds(std::size_t num_bits, DataRate rate,
                         double sample_rate) {
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("fsk_burst_seconds: bad rate");
  }
  if (num_bits == 0) throw std::invalid_argument("fsk_burst_seconds: no bits");
  const FskParams p = FskParams::for_rate(rate);
  const auto samples_per_symbol =
      static_cast<std::size_t>(sample_rate / p.symbol_rate + 0.5);
  const std::size_t num_symbols =
      (num_bits + p.bits_per_symbol - 1) / p.bits_per_symbol;
  return static_cast<double>(num_symbols * samples_per_symbol) / sample_rate;
}

std::vector<std::uint8_t> random_bits(std::size_t count, std::uint64_t seed) {
  std::vector<std::uint8_t> bits(count);
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution coin(0.5);
  for (auto& b : bits) b = coin(rng) ? 1 : 0;
  return bits;
}

}  // namespace fmbs::tag
