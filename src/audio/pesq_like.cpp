#include "audio/pesq_like.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "audio/metrics.h"
#include "dsp/fft.h"
#include "dsp/math_util.h"
#include "dsp/window.h"

namespace fmbs::audio {

namespace {

double bark_from_hz(double hz) {
  return 13.0 * std::atan(0.00076 * hz) + 3.5 * std::atan((hz / 7500.0) * (hz / 7500.0));
}

struct BarkBank {
  // band -> list of (bin, weight); triangular responses on the Bark scale.
  std::vector<std::vector<std::pair<std::size_t, double>>> bands;
};

BarkBank make_bark_bank(std::size_t num_bands, std::size_t fft_size,
                        double sample_rate) {
  const double max_hz = std::min(sample_rate / 2.0, 15000.0);
  const double max_bark = bark_from_hz(max_hz);
  BarkBank bank;
  bank.bands.resize(num_bands);
  const double band_width = max_bark / static_cast<double>(num_bands);
  for (std::size_t k = 0; k <= fft_size / 2; ++k) {
    const double hz = static_cast<double>(k) * sample_rate / static_cast<double>(fft_size);
    if (hz > max_hz || hz < 50.0) continue;
    const double b = bark_from_hz(hz);
    for (std::size_t band = 0; band < num_bands; ++band) {
      const double center = (static_cast<double>(band) + 0.5) * band_width;
      const double dist = std::abs(b - center) / band_width;
      if (dist < 1.0) {
        bank.bands[band].emplace_back(k, 1.0 - dist);
      }
    }
  }
  return bank;
}

}  // namespace

double perceptual_snr_db(const MonoBuffer& reference, const MonoBuffer& degraded,
                         const PesqLikeConfig& config) {
  if (reference.empty() || degraded.empty()) {
    throw std::invalid_argument("pesq_like: empty input");
  }
  if (reference.sample_rate != degraded.sample_rate) {
    throw std::invalid_argument("pesq_like: sample rate mismatch");
  }
  const double rate = reference.sample_rate;
  const auto max_lag =
      static_cast<std::size_t>(config.max_align_seconds * rate);
  const AlignedPair pair =
      align_and_scale(reference.samples, degraded.samples, max_lag);

  const auto frame = dsp::next_pow2(
      static_cast<std::size_t>(config.frame_seconds * rate));
  if (pair.reference.size() < frame) {
    throw std::invalid_argument("pesq_like: signal shorter than one frame");
  }
  const std::vector<float> window = dsp::make_window(dsp::WindowType::kHann, frame);
  const BarkBank bank = make_bark_bank(config.num_bark_bands, frame, rate);
  dsp::FftPlan plan(frame);

  // Loudness-weighted SNR accumulation across frames and bands.
  double weighted_snr = 0.0;
  double weight_total = 0.0;

  // Frame activity gate: skip frames where the reference is silent.
  double ref_power_total = 0.0;
  for (const float v : pair.reference) ref_power_total += static_cast<double>(v) * v;
  const double activity_gate =
      0.005 * ref_power_total / static_cast<double>(pair.reference.size());

  dsp::cvec fr(frame), fd(frame);
  for (std::size_t start = 0; start + frame <= pair.reference.size();
       start += frame / 2) {
    double frame_power = 0.0;
    for (std::size_t i = 0; i < frame; ++i) {
      const float r = pair.reference[start + i] * window[i];
      const float d = pair.test[start + i] * window[i];
      fr[i] = dsp::cfloat(r, 0.0F);
      fd[i] = dsp::cfloat(d, 0.0F);
      frame_power += static_cast<double>(r) * r;
    }
    frame_power /= static_cast<double>(frame);
    if (frame_power < activity_gate) continue;
    plan.forward(fr);
    plan.forward(fd);

    for (const auto& band : bank.bands) {
      if (band.empty()) continue;
      double p_ref = 0.0, p_err = 0.0;
      for (const auto& [bin, w] : band) {
        const double rr = std::norm(fr[bin]);
        const auto err = fd[bin] - fr[bin];
        p_ref += w * rr;
        p_err += w * std::norm(err);
      }
      if (p_ref <= 1e-20) continue;
      // Zwicker-style compressive loudness as the weighting.
      const double loud = std::pow(p_ref, 0.23);
      const double snr = p_ref / std::max(p_err, 1e-20);
      weighted_snr += loud * dsp::db_from_power_ratio(snr);
      weight_total += loud;
    }
  }
  if (weight_total <= 0.0) return -30.0;
  return std::clamp(weighted_snr / weight_total, -30.0, 80.0);
}

double pesq_like(const MonoBuffer& reference, const MonoBuffer& degraded,
                 const PesqLikeConfig& config) {
  const double snr = perceptual_snr_db(reference, degraded, config);
  double mos =
      1.0 + config.mos_span /
                (1.0 + std::exp(-(snr - config.mos_midpoint_db) / config.mos_slope_db));

  // Signal-presence penalty: a degraded signal that simply does not contain
  // the reference (e.g. pure noise, a dropped link) would otherwise score
  // the same as reference-plus-equal-noise. After the least-squares gain
  // fit, absence shows up as the fitted test having far less energy than
  // the reference; scale the above-floor part of the score away with it.
  const double rate = reference.sample_rate;
  const auto max_lag = static_cast<std::size_t>(config.max_align_seconds * rate);
  const AlignedPair pair =
      align_and_scale(reference.samples, degraded.samples, max_lag);
  double p_ref = 0.0, p_test = 0.0;
  for (const float v : pair.reference) p_ref += static_cast<double>(v) * v;
  for (const float v : pair.test) p_test += static_cast<double>(v) * v;
  if (p_ref > 1e-20) {
    const double presence = std::clamp(p_test / (0.25 * p_ref), 0.0, 1.0);
    mos = 1.0 + (mos - 1.0) * presence;
  }
  return mos;
}

}  // namespace fmbs::audio
