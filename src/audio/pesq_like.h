// PESQ-like perceptual quality metric.
//
// The paper scores received audio with ITU-T P.862 PESQ (0-5 MOS). P.862 is
// licensed and its reference implementation is not redistributable, so this
// module provides a documented substitute with the same interface and the
// same comparative behaviour (see DESIGN.md):
//
//   1. time-align and gain-match degraded vs reference (cross-correlation),
//   2. frame both signals (32 ms Hann, 50% overlap) and map power spectra
//      onto a Bark-spaced filter bank,
//   3. compute a loudness-weighted per-band SNR ("perceptual SNR"),
//   4. map perceptual SNR through a logistic MOS curve calibrated so that a
//      clean signal scores ~4.5 and speech at 0 dB audio SNR scores ~2.0 —
//      matching the paper's observation that overlay backscatter (whose
//      interference is the comparable-power ambient program) sits near
//      PESQ = 2 while cooperative cancellation sits near 4.
//
// Scores are comparable across conditions within this codebase; they are not
// bit-exact P.862 values.
#pragma once

#include "audio/audio_buffer.h"

namespace fmbs::audio {

/// Configuration for the perceptual metric.
struct PesqLikeConfig {
  double frame_seconds = 0.032;
  std::size_t num_bark_bands = 24;
  /// Logistic mapping parameters: mos = 1 + span / (1 + exp(-(snr-mid)/slope)).
  double mos_span = 3.6;
  double mos_midpoint_db = 5.0;
  double mos_slope_db = 6.0;
  /// Maximum alignment search (seconds).
  double max_align_seconds = 0.25;
};

/// Computes the PESQ-like score (range ~[1, 4.6]) of `degraded` against
/// `reference`. Both must share a sample rate; lengths may differ (the
/// overlap after alignment is scored). Throws std::invalid_argument on
/// empty/mismatched input.
double pesq_like(const MonoBuffer& reference, const MonoBuffer& degraded,
                 const PesqLikeConfig& config = {});

/// The intermediate perceptual SNR in dB (useful for tests/calibration).
double perceptual_snr_db(const MonoBuffer& reference, const MonoBuffer& degraded,
                         const PesqLikeConfig& config = {});

}  // namespace fmbs::audio
