#include "audio/music_synth.h"

#include <array>
#include <cmath>
#include <random>
#include <stdexcept>

#include "dsp/iir.h"
#include "dsp/math_util.h"

namespace fmbs::audio {

namespace {

// I-V-vi-IV progression root frequencies (C major-ish), in Hz.
constexpr std::array<double, 4> kChordRoots{261.63, 392.00, 440.00, 349.23};

double chord_third(double root, std::size_t chord_index) {
  // Minor third for the vi chord, major third elsewhere.
  return chord_index == 2 ? root * std::pow(2.0, 3.0 / 12.0)
                          : root * std::pow(2.0, 4.0 / 12.0);
}

}  // namespace

MusicConfig pop_music_config() {
  MusicConfig c;
  c.tempo_bpm = 118.0;
  c.brightness = 0.65;
  c.distortion = 0.05;
  c.percussion = 0.6;
  return c;
}

MusicConfig rock_music_config() {
  MusicConfig c;
  c.tempo_bpm = 140.0;
  c.brightness = 0.8;
  c.distortion = 0.55;
  c.percussion = 0.8;
  return c;
}

MonoBuffer synthesize_music(const MusicConfig& config, double duration_seconds,
                            double sample_rate, std::uint64_t seed) {
  if (duration_seconds < 0.0 || sample_rate <= 0.0) {
    throw std::invalid_argument("synthesize_music: bad duration or rate");
  }
  const auto n = static_cast<std::size_t>(duration_seconds * sample_rate + 0.5);
  std::vector<float> out(n, 0.0F);
  if (n == 0) return MonoBuffer(std::move(out), sample_rate);

  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);

  const double beat_seconds = 60.0 / config.tempo_bpm;
  const auto beat_len = static_cast<std::size_t>(beat_seconds * sample_rate);
  const std::size_t num_harmonics =
      2 + static_cast<std::size_t>(config.brightness * 6.0);

  double energy_acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / sample_rate;
    const std::size_t beat_index = beat_len > 0 ? i / beat_len : 0;
    const std::size_t chord_index = (beat_index / 4) % kChordRoots.size();
    const double root = kChordRoots[chord_index];
    const double third = chord_third(root, chord_index);
    const double fifth = root * std::pow(2.0, 7.0 / 12.0);

    // Chord pad: harmonic stacks with 1/h rolloff.
    double v = 0.0;
    for (const double f0 : {root, third, fifth}) {
      for (std::size_t h = 1; h <= num_harmonics; ++h) {
        v += std::sin(dsp::kTwoPi * f0 * static_cast<double>(h) * t) /
             (3.0 * static_cast<double>(h));
      }
    }
    // Bass an octave below the root.
    v += 0.8 * std::sin(dsp::kTwoPi * (root / 2.0) * t);

    // Percussion: exponentially decaying noise burst at each beat start.
    if (beat_len > 0) {
      const std::size_t into_beat = i % beat_len;
      const double decay =
          std::exp(-static_cast<double>(into_beat) / (0.05 * sample_rate));
      if (decay > 1e-3) {
        v += config.percussion * decay * gauss(rng);
      }
    }

    // Distortion drive (rock): soft clip.
    if (config.distortion > 0.0) {
      const double drive = 1.0 + 6.0 * config.distortion;
      v = std::tanh(v * drive) / std::tanh(drive);
    }

    out[i] = static_cast<float>(v);
    energy_acc += v * v;
  }

  const double rms = std::sqrt(energy_acc / static_cast<double>(n));
  if (rms > 1e-9) {
    const float g = static_cast<float>(config.level_rms / rms);
    for (auto& v : out) v *= g;
  }
  return MonoBuffer(std::move(out), sample_rate);
}

}  // namespace fmbs::audio
