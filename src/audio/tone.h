// Deterministic test-signal generators: tones, multitones, chirps, noise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "audio/audio_buffer.h"

namespace fmbs::audio {

/// Single sinusoid at `frequency_hz` with the given amplitude.
MonoBuffer make_tone(double frequency_hz, double amplitude, double duration_seconds,
                     double sample_rate, double initial_phase = 0.0);

/// Sum of equal-amplitude sinusoids; total amplitude normalized to `amplitude`.
MonoBuffer make_multitone(const std::vector<double>& frequencies_hz,
                          double amplitude, double duration_seconds,
                          double sample_rate);

/// Linear chirp sweeping lo->hi Hz over the duration.
MonoBuffer make_chirp(double lo_hz, double hi_hz, double amplitude,
                      double duration_seconds, double sample_rate);

/// Gaussian white noise with the given RMS.
MonoBuffer make_noise(double rms, double duration_seconds, double sample_rate,
                      std::uint64_t seed);

/// Digital silence.
MonoBuffer make_silence(double duration_seconds, double sample_rate);

/// Concatenates two buffers (rates must match).
MonoBuffer concat(const MonoBuffer& a, const MonoBuffer& b);

/// Element-wise sum, truncated to the shorter operand.
MonoBuffer mix(const MonoBuffer& a, const MonoBuffer& b, float gain_a = 1.0F,
               float gain_b = 1.0F);

}  // namespace fmbs::audio
