// Synthetic music generator. Stands in for the paper's pop/rock station
// clips: chord pads with harmonic stacks, a bass line, and percussive noise
// bursts on the beat. Pop and rock differ in brightness, distortion and
// percussion density — enough to reproduce the genre-dependent interference
// spread in the paper's Fig. 5 and BER evaluations.
#pragma once

#include <cstdint>

#include "audio/audio_buffer.h"

namespace fmbs::audio {

/// Style knobs for the music synthesizer.
struct MusicConfig {
  double tempo_bpm = 120.0;
  double brightness = 0.5;   // 0..1, scales harmonic count / treble energy
  double distortion = 0.0;   // 0..1, tanh drive (rock guitar flavor)
  double percussion = 0.5;   // 0..1, noise-burst level on beats
  double level_rms = 0.18;   // long-term output RMS
};

/// Preset approximating a pop-music station.
MusicConfig pop_music_config();

/// Preset approximating a rock-music station.
MusicConfig rock_music_config();

/// Generates `duration_seconds` of music-like audio. Deterministic per seed.
MonoBuffer synthesize_music(const MusicConfig& config, double duration_seconds,
                            double sample_rate, std::uint64_t seed);

}  // namespace fmbs::audio
