#include "audio/speech_synth.h"

#include <array>
#include <cmath>
#include <random>
#include <stdexcept>

#include "dsp/iir.h"
#include "dsp/math_util.h"

namespace fmbs::audio {

namespace {

// Canonical vowel formant targets (F1, F2, F3) in Hz.
constexpr std::array<std::array<double, 3>, 5> kVowelFormants{{
    {730.0, 1090.0, 2440.0},  // /a/
    {530.0, 1840.0, 2480.0},  // /e/
    {390.0, 1990.0, 2550.0},  // /i/
    {570.0, 840.0, 2410.0},   // /o/
    {440.0, 1020.0, 2240.0},  // /u/
}};

}  // namespace

MonoBuffer synthesize_speech(const SpeechConfig& config, double duration_seconds,
                             double sample_rate, std::uint64_t seed) {
  if (duration_seconds < 0.0 || sample_rate <= 0.0) {
    throw std::invalid_argument("synthesize_speech: bad duration or rate");
  }
  const auto n = static_cast<std::size_t>(duration_seconds * sample_rate + 0.5);
  std::vector<float> out(n, 0.0F);
  if (n == 0) return MonoBuffer(std::move(out), sample_rate);

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, 1.0);

  const auto syllable_len =
      static_cast<std::size_t>(sample_rate / config.syllable_rate_hz);
  if (syllable_len == 0) {
    throw std::invalid_argument("synthesize_speech: syllable rate too high");
  }

  // Per-syllable state machine; formant filters persist across syllables so
  // transitions glide rather than click.
  std::array<dsp::Biquad, 3> formants{
      dsp::Biquad(dsp::biquad_bandpass(730.0 / sample_rate, 6.0)),
      dsp::Biquad(dsp::biquad_bandpass(1090.0 / sample_rate, 8.0)),
      dsp::Biquad(dsp::biquad_bandpass(2440.0 / sample_rate, 10.0)),
  };
  // Gentle low-pass to mimic the transmission/mic chain rolloff.
  dsp::Biquad lip_radiation(dsp::biquad_highpass(80.0 / sample_rate, 0.7));

  double pitch_phase = 0.0;
  double energy_acc = 0.0;
  std::size_t pos = 0;
  while (pos < n) {
    const std::size_t len = std::min(syllable_len, n - pos);
    const double r = uni(rng);
    if (r < config.pause_probability) {
      pos += len;  // silent gap between words/sentences
      continue;
    }
    const bool fricative = uni(rng) < config.fricative_probability;
    const auto& vowel = kVowelFormants[static_cast<std::size_t>(uni(rng) * 4.999)];
    for (std::size_t k = 0; k < 3; ++k) {
      const double q = 6.0 + 2.0 * static_cast<double>(k);
      formants[k] = dsp::Biquad(dsp::biquad_bandpass(vowel[k] / sample_rate, q));
    }
    const double pitch =
        config.pitch_hz * (1.0 + config.pitch_jitter * gauss(rng) * 0.5);

    for (std::size_t i = 0; i < len; ++i) {
      // Raised-cosine syllable envelope.
      const double env =
          0.5 - 0.5 * std::cos(dsp::kTwoPi * static_cast<double>(i) /
                               static_cast<double>(len));
      float excitation;
      if (fricative) {
        excitation = static_cast<float>(0.4 * gauss(rng));
      } else {
        // Impulse-ish glottal pulse train: narrow raised-cosine pulses.
        pitch_phase += pitch / sample_rate;
        if (pitch_phase >= 1.0) pitch_phase -= 1.0;
        const double duty = 0.15;
        excitation = pitch_phase < duty
                         ? static_cast<float>(
                               0.5 - 0.5 * std::cos(dsp::kTwoPi * pitch_phase / duty))
                         : 0.0F;
      }
      float v = 0.0F;
      float x = excitation;
      for (auto& f : formants) v += f.process_sample(x);
      v = lip_radiation.process_sample(v);
      const float sample = static_cast<float>(env) * v;
      out[pos + i] = sample;
      energy_acc += static_cast<double>(sample) * sample;
    }
    pos += len;
  }

  // Normalize speech-active RMS to the configured level.
  const double rms = std::sqrt(energy_acc / static_cast<double>(n));
  if (rms > 1e-9) {
    const float g = static_cast<float>(config.level_rms / rms);
    for (auto& v : out) v *= g;
  }
  return MonoBuffer(std::move(out), sample_rate);
}

}  // namespace fmbs::audio
