#include "audio/tone.h"

#include <cmath>
#include <random>
#include <stdexcept>

#include "dsp/math_util.h"

namespace fmbs::audio {

using dsp::kTwoPi;

namespace {
std::size_t sample_count(double duration_seconds, double sample_rate) {
  if (duration_seconds < 0.0 || sample_rate <= 0.0) {
    throw std::invalid_argument("tone: bad duration or sample rate");
  }
  return static_cast<std::size_t>(duration_seconds * sample_rate + 0.5);
}
}  // namespace

MonoBuffer make_tone(double frequency_hz, double amplitude,
                     double duration_seconds, double sample_rate,
                     double initial_phase) {
  const std::size_t n = sample_count(duration_seconds, sample_rate);
  std::vector<float> s(n);
  const double step = kTwoPi * frequency_hz / sample_rate;
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = static_cast<float>(amplitude *
                              std::sin(initial_phase + step * static_cast<double>(i)));
  }
  return MonoBuffer(std::move(s), sample_rate);
}

MonoBuffer make_multitone(const std::vector<double>& frequencies_hz,
                          double amplitude, double duration_seconds,
                          double sample_rate) {
  if (frequencies_hz.empty()) {
    throw std::invalid_argument("make_multitone: no frequencies");
  }
  const std::size_t n = sample_count(duration_seconds, sample_rate);
  std::vector<float> s(n, 0.0F);
  const double per_tone = amplitude / static_cast<double>(frequencies_hz.size());
  for (const double f : frequencies_hz) {
    const double step = kTwoPi * f / sample_rate;
    for (std::size_t i = 0; i < n; ++i) {
      s[i] += static_cast<float>(per_tone * std::sin(step * static_cast<double>(i)));
    }
  }
  return MonoBuffer(std::move(s), sample_rate);
}

MonoBuffer make_chirp(double lo_hz, double hi_hz, double amplitude,
                      double duration_seconds, double sample_rate) {
  const std::size_t n = sample_count(duration_seconds, sample_rate);
  std::vector<float> s(n);
  const double k = n > 1 ? (hi_hz - lo_hz) / duration_seconds : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / sample_rate;
    const double phase = kTwoPi * (lo_hz * t + 0.5 * k * t * t);
    s[i] = static_cast<float>(amplitude * std::sin(phase));
  }
  return MonoBuffer(std::move(s), sample_rate);
}

MonoBuffer make_noise(double rms, double duration_seconds, double sample_rate,
                      std::uint64_t seed) {
  const std::size_t n = sample_count(duration_seconds, sample_rate);
  std::vector<float> s(n);
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0F, static_cast<float>(rms));
  for (auto& v : s) v = dist(rng);
  return MonoBuffer(std::move(s), sample_rate);
}

MonoBuffer make_silence(double duration_seconds, double sample_rate) {
  return MonoBuffer(std::vector<float>(sample_count(duration_seconds, sample_rate), 0.0F),
                    sample_rate);
}

MonoBuffer concat(const MonoBuffer& a, const MonoBuffer& b) {
  if (a.sample_rate != b.sample_rate) {
    throw std::invalid_argument("concat: sample rate mismatch");
  }
  std::vector<float> s;
  s.reserve(a.size() + b.size());
  s.insert(s.end(), a.samples.begin(), a.samples.end());
  s.insert(s.end(), b.samples.begin(), b.samples.end());
  return MonoBuffer(std::move(s), a.sample_rate);
}

MonoBuffer mix(const MonoBuffer& a, const MonoBuffer& b, float gain_a, float gain_b) {
  if (a.sample_rate != b.sample_rate) {
    throw std::invalid_argument("mix: sample rate mismatch");
  }
  const std::size_t n = std::min(a.size(), b.size());
  std::vector<float> s(n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = gain_a * a.samples[i] + gain_b * b.samples[i];
  }
  return MonoBuffer(std::move(s), a.sample_rate);
}

}  // namespace fmbs::audio
