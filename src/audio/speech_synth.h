// Synthetic speech generator. Stands in for the paper's recorded news/talk
// radio clips: a glottal pulse train driven through time-varying formant
// resonators, with word/sentence pauses and occasional unvoiced (fricative)
// segments. The output has the spectral footprint of human speech —
// fundamental 85-255 Hz, formants below ~3.5 kHz, silence gaps — which is
// what the paper's "8/12 kHz tones sit above most speech frequencies"
// argument and the Fig. 5 stereo-power measurements depend on.
#pragma once

#include <cstdint>

#include "audio/audio_buffer.h"

namespace fmbs::audio {

/// Parameters of the speech synthesizer.
struct SpeechConfig {
  double pitch_hz = 118.0;           // median glottal pitch
  double pitch_jitter = 0.12;        // relative pitch wander
  double syllable_rate_hz = 4.5;     // syllables per second
  double pause_probability = 0.18;   // chance a syllable slot is silent
  double fricative_probability = 0.15;  // chance a syllable is unvoiced noise
  double level_rms = 0.15;           // long-term output RMS (speech-active parts)
};

/// Generates `duration_seconds` of speech-like audio. Deterministic per seed.
MonoBuffer synthesize_speech(const SpeechConfig& config, double duration_seconds,
                             double sample_rate, std::uint64_t seed);

}  // namespace fmbs::audio
