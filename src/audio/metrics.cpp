#include "audio/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/correlate.h"
#include "dsp/math_util.h"

namespace fmbs::audio {

double snr_db(std::span<const float> reference, std::span<const float> test) {
  const std::size_t n = std::min(reference.size(), test.size());
  if (n == 0) throw std::invalid_argument("snr_db: empty input");
  double sig = 0.0, noise = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = reference[i];
    const double e = static_cast<double>(test[i]) - r;
    sig += r * r;
    noise += e * e;
  }
  if (noise <= 0.0) return 120.0;  // numerically identical
  return dsp::db_from_power_ratio(sig / noise);
}

double segmental_snr_db(std::span<const float> reference,
                        std::span<const float> test, double sample_rate) {
  if (sample_rate <= 0.0) throw std::invalid_argument("segmental_snr_db: bad rate");
  const std::size_t n = std::min(reference.size(), test.size());
  const auto frame = static_cast<std::size_t>(0.030 * sample_rate);
  if (frame == 0 || n < frame) {
    return snr_db(reference.first(n), test.first(n));
  }
  double total_ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total_ref += static_cast<double>(reference[i]) * reference[i];
  }
  const double activity_threshold = 0.01 * total_ref / static_cast<double>(n);

  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t start = 0; start + frame <= n; start += frame) {
    double sig = 0.0, noise = 0.0;
    for (std::size_t i = start; i < start + frame; ++i) {
      const double r = reference[i];
      const double e = static_cast<double>(test[i]) - r;
      sig += r * r;
      noise += e * e;
    }
    if (sig / static_cast<double>(frame) < activity_threshold) continue;
    double s = dsp::db_from_power_ratio(noise > 0.0 ? sig / noise : 1e12);
    s = std::clamp(s, -10.0, 35.0);
    acc += s;
    ++count;
  }
  if (count == 0) return snr_db(reference.first(n), test.first(n));
  return acc / static_cast<double>(count);
}

AlignedPair align_and_scale(std::span<const float> reference,
                            std::span<const float> test, std::size_t max_lag) {
  if (reference.empty() || test.empty()) {
    throw std::invalid_argument("align_and_scale: empty input");
  }
  const dsp::DelayEstimate est = dsp::estimate_delay(reference, test, max_lag);
  const long shift = std::lround(est.delay_samples);

  AlignedPair out;
  out.delay_samples = est.delay_samples;
  // test must be advanced by `delay` to align: test_aligned[i] = test[i+shift].
  const long start_t = std::max(0L, shift);
  const long start_r = std::max(0L, -shift);
  const long len = std::min(static_cast<long>(test.size()) - start_t,
                            static_cast<long>(reference.size()) - start_r);
  if (len <= 0) throw std::invalid_argument("align_and_scale: no overlap");

  out.reference.assign(reference.begin() + start_r, reference.begin() + start_r + len);
  out.test.assign(test.begin() + start_t, test.begin() + start_t + len);

  // Least-squares gain: g = <ref, test> / <test, test>.
  double num = 0.0, den = 0.0;
  for (long i = 0; i < len; ++i) {
    num += static_cast<double>(out.reference[static_cast<std::size_t>(i)]) *
           out.test[static_cast<std::size_t>(i)];
    den += static_cast<double>(out.test[static_cast<std::size_t>(i)]) *
           out.test[static_cast<std::size_t>(i)];
  }
  out.gain = den > 1e-20 ? num / den : 1.0;
  for (auto& v : out.test) v = static_cast<float>(v * out.gain);
  return out;
}

}  // namespace fmbs::audio
