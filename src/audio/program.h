// Station program models: what an FM station is broadcasting. Reproduces the
// paper's four station archetypes (news/information, mixed, pop music, rock
// music) including their stereo behaviour — news stations play the same
// speech on both channels (near-zero L-R energy, the basis of stereo
// backscatter), music stations pan instruments (substantial L-R energy).
#pragma once

#include <cstdint>
#include <string>

#include "audio/audio_buffer.h"

namespace fmbs::audio {

/// The paper's four program genres plus pure silence (for micro-benchmarks
/// that need an unmodulated carrier, e.g. Fig. 6).
enum class ProgramGenre {
  kSilence,
  kNews,
  kMixed,
  kPop,
  kRock,
};

/// Human-readable genre name (matches the paper's figure legends).
std::string to_string(ProgramGenre genre);

/// Program content descriptor.
struct ProgramConfig {
  ProgramGenre genre = ProgramGenre::kNews;
  /// True if the station transmits a stereo (L-R) stream + pilot.
  bool stereo = true;
  /// L-R content level relative to L+R for music genres (stereo width).
  double stereo_width = 0.35;
  /// Level of uncorrelated studio/ambience noise that leaks into L-R even on
  /// news stations (keeps P_stereo/P_noise finite, as measured in Fig. 5).
  double ambience_level = 0.004;
};

/// Renders station program audio. Deterministic per (config, seed).
StereoBuffer render_program(const ProgramConfig& config, double duration_seconds,
                            double sample_rate, std::uint64_t seed);

}  // namespace fmbs::audio
