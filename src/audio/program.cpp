#include "audio/program.h"

#include <cmath>
#include <random>
#include <stdexcept>

#include "audio/music_synth.h"
#include "audio/speech_synth.h"
#include "audio/tone.h"

namespace fmbs::audio {

std::string to_string(ProgramGenre genre) {
  switch (genre) {
    case ProgramGenre::kSilence: return "silence";
    case ProgramGenre::kNews: return "news";
    case ProgramGenre::kMixed: return "mixed";
    case ProgramGenre::kPop: return "pop";
    case ProgramGenre::kRock: return "rock";
  }
  return "unknown";
}

namespace {

MonoBuffer render_mixed(double duration_seconds, double sample_rate,
                        std::uint64_t seed) {
  // Alternate ~4 s talk segments with ~4 s music segments.
  MonoBuffer out(std::vector<float>{}, sample_rate);
  double remaining = duration_seconds;
  bool talk = true;
  std::uint64_t segment = 0;
  while (remaining > 1e-9) {
    const double seg = std::min(4.0, remaining);
    MonoBuffer part =
        talk ? synthesize_speech(SpeechConfig{}, seg, sample_rate, seed + segment)
             : synthesize_music(pop_music_config(), seg, sample_rate, seed + segment);
    out = out.empty() ? std::move(part) : concat(out, part);
    remaining -= seg;
    talk = !talk;
    ++segment;
  }
  if (out.empty()) out = make_silence(0.0, sample_rate);
  return out;
}

}  // namespace

StereoBuffer render_program(const ProgramConfig& config, double duration_seconds,
                            double sample_rate, std::uint64_t seed) {
  if (duration_seconds < 0.0 || sample_rate <= 0.0) {
    throw std::invalid_argument("render_program: bad duration or rate");
  }

  MonoBuffer main;
  switch (config.genre) {
    case ProgramGenre::kSilence:
      main = make_silence(duration_seconds, sample_rate);
      break;
    case ProgramGenre::kNews: {
      SpeechConfig sc;
      main = synthesize_speech(sc, duration_seconds, sample_rate, seed);
      break;
    }
    case ProgramGenre::kMixed:
      main = render_mixed(duration_seconds, sample_rate, seed);
      break;
    case ProgramGenre::kPop:
      main = synthesize_music(pop_music_config(), duration_seconds, sample_rate, seed);
      break;
    case ProgramGenre::kRock:
      main = synthesize_music(rock_music_config(), duration_seconds, sample_rate, seed);
      break;
  }

  const std::size_t n = main.size();
  std::vector<float> left(n), right(n);

  // Side (L-R) content: music genres pan a secondary line; news/talk has only
  // faint studio ambience. The "mixed" genre sits in between.
  double width = 0.0;
  switch (config.genre) {
    case ProgramGenre::kSilence: width = 0.0; break;
    case ProgramGenre::kNews: width = 0.0; break;
    case ProgramGenre::kMixed: width = config.stereo_width * 0.4; break;
    case ProgramGenre::kPop: width = config.stereo_width; break;
    case ProgramGenre::kRock: width = config.stereo_width * 1.2; break;
  }

  MonoBuffer side_content = make_silence(main.duration_seconds(), sample_rate);
  if (config.stereo && width > 0.0) {
    // A separately seeded synthesis acts as the panned content, uncorrelated
    // with the mid signal the way a panned rhythm guitar is with the vocal.
    MusicConfig mc = config.genre == ProgramGenre::kRock ? rock_music_config()
                                                         : pop_music_config();
    mc.percussion *= 0.3;
    side_content = synthesize_music(mc, main.duration_seconds(), sample_rate,
                                    seed ^ 0x51de5eedULL);
  }

  std::mt19937_64 rng(seed ^ 0xa111b1e2ceULL);
  std::normal_distribution<float> ambience(0.0F,
                                           static_cast<float>(config.ambience_level));
  for (std::size_t i = 0; i < n; ++i) {
    const float mid = main.samples[i];
    float side = 0.0F;
    if (config.stereo) {
      if (i < side_content.size()) {
        side = static_cast<float>(width) * side_content.samples[i];
      }
      side += ambience(rng);
    }
    left[i] = mid + side;
    right[i] = mid - side;
  }
  return StereoBuffer(std::move(left), std::move(right), sample_rate);
}

}  // namespace fmbs::audio
