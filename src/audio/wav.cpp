#include "audio/wav.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace fmbs::audio {

namespace {

struct WavHeader {
  char riff[4];
  std::uint32_t chunk_size;
  char wave[4];
};

void write_u16(std::ofstream& os, std::uint16_t v) {
  os.write(reinterpret_cast<const char*>(&v), 2);
}
void write_u32(std::ofstream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), 4);
}

std::int16_t to_pcm16(float v) {
  const float c = std::clamp(v, -1.0F, 1.0F);
  return static_cast<std::int16_t>(std::lround(c * 32767.0F));
}

void write_pcm16(const std::string& path, const std::vector<float>& interleaved,
                 std::uint16_t channels, double sample_rate) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("write_wav: cannot open " + path);
  const std::uint32_t data_bytes =
      static_cast<std::uint32_t>(interleaved.size() * 2);
  const auto rate = static_cast<std::uint32_t>(sample_rate);
  os.write("RIFF", 4);
  write_u32(os, 36 + data_bytes);
  os.write("WAVE", 4);
  os.write("fmt ", 4);
  write_u32(os, 16);
  write_u16(os, 1);  // PCM
  write_u16(os, channels);
  write_u32(os, rate);
  write_u32(os, rate * channels * 2);
  write_u16(os, static_cast<std::uint16_t>(channels * 2));
  write_u16(os, 16);
  os.write("data", 4);
  write_u32(os, data_bytes);
  for (const float v : interleaved) {
    const std::int16_t s = to_pcm16(v);
    os.write(reinterpret_cast<const char*>(&s), 2);
  }
  if (!os) throw std::runtime_error("write_wav: write failed for " + path);
}

}  // namespace

void write_wav(const std::string& path, const MonoBuffer& audio) {
  write_pcm16(path, audio.samples, 1, audio.sample_rate);
}

void write_wav(const std::string& path, const StereoBuffer& audio) {
  std::vector<float> inter(audio.size() * 2);
  for (std::size_t i = 0; i < audio.size(); ++i) {
    inter[2 * i] = audio.left[i];
    inter[2 * i + 1] = audio.right[i];
  }
  write_pcm16(path, inter, 2, audio.sample_rate);
}

MonoBuffer read_wav(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("read_wav: cannot open " + path);
  char riff[4], wave[4];
  std::uint32_t chunk_size = 0;
  is.read(riff, 4);
  is.read(reinterpret_cast<char*>(&chunk_size), 4);
  is.read(wave, 4);
  if (!is || std::memcmp(riff, "RIFF", 4) != 0 || std::memcmp(wave, "WAVE", 4) != 0) {
    throw std::runtime_error("read_wav: not a RIFF/WAVE file: " + path);
  }
  std::uint16_t format = 0, channels = 0, bits = 0;
  std::uint32_t rate = 0;
  std::vector<char> data;
  while (is) {
    char id[4];
    std::uint32_t size = 0;
    is.read(id, 4);
    is.read(reinterpret_cast<char*>(&size), 4);
    if (!is) break;
    if (std::memcmp(id, "fmt ", 4) == 0) {
      std::vector<char> fmt(size);
      is.read(fmt.data(), size);
      if (size < 16) throw std::runtime_error("read_wav: bad fmt chunk");
      std::memcpy(&format, fmt.data() + 0, 2);
      std::memcpy(&channels, fmt.data() + 2, 2);
      std::memcpy(&rate, fmt.data() + 4, 4);
      std::memcpy(&bits, fmt.data() + 14, 2);
    } else if (std::memcmp(id, "data", 4) == 0) {
      data.resize(size);
      is.read(data.data(), size);
      break;
    } else {
      is.seekg(size + (size & 1), std::ios::cur);
    }
  }
  if (channels == 0 || rate == 0 || data.empty()) {
    throw std::runtime_error("read_wav: missing fmt or data chunk: " + path);
  }

  std::vector<float> mono;
  if (format == 1 && bits == 16) {
    const std::size_t frames = data.size() / 2 / channels;
    mono.resize(frames);
    const auto* s = reinterpret_cast<const std::int16_t*>(data.data());
    for (std::size_t f = 0; f < frames; ++f) {
      float acc = 0.0F;
      for (std::uint16_t c = 0; c < channels; ++c) {
        acc += static_cast<float>(s[f * channels + c]) / 32768.0F;
      }
      mono[f] = acc / static_cast<float>(channels);
    }
  } else if (format == 3 && bits == 32) {
    const std::size_t frames = data.size() / 4 / channels;
    mono.resize(frames);
    const auto* s = reinterpret_cast<const float*>(data.data());
    for (std::size_t f = 0; f < frames; ++f) {
      float acc = 0.0F;
      for (std::uint16_t c = 0; c < channels; ++c) acc += s[f * channels + c];
      mono[f] = acc / static_cast<float>(channels);
    }
  } else {
    throw std::runtime_error("read_wav: unsupported format (want PCM16/float32)");
  }
  return MonoBuffer(std::move(mono), static_cast<double>(rate));
}

}  // namespace fmbs::audio
