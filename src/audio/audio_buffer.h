// Sample-rate-tagged audio containers used across the library boundary.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace fmbs::audio {

/// Mono audio: samples in [-1, 1] nominal full scale.
struct MonoBuffer {
  std::vector<float> samples;
  double sample_rate = 48000.0;

  MonoBuffer() = default;
  MonoBuffer(std::vector<float> s, double rate)
      : samples(std::move(s)), sample_rate(rate) {}

  std::size_t size() const { return samples.size(); }
  bool empty() const { return samples.empty(); }
  double duration_seconds() const {
    return sample_rate > 0.0 ? static_cast<double>(samples.size()) / sample_rate : 0.0;
  }
};

/// Stereo audio with separate left/right channels of equal length.
struct StereoBuffer {
  std::vector<float> left;
  std::vector<float> right;
  double sample_rate = 48000.0;

  StereoBuffer() = default;
  StereoBuffer(std::vector<float> l, std::vector<float> r, double rate)
      : left(std::move(l)), right(std::move(r)), sample_rate(rate) {
    if (left.size() != right.size()) {
      throw std::invalid_argument("StereoBuffer: channel length mismatch");
    }
  }

  /// Builds a dual-mono stereo buffer (L == R), as a mono station would.
  static StereoBuffer dual_mono(const MonoBuffer& mono) {
    return StereoBuffer(mono.samples, mono.samples, mono.sample_rate);
  }

  std::size_t size() const { return left.size(); }
  bool empty() const { return left.empty(); }
  double duration_seconds() const {
    return sample_rate > 0.0 ? static_cast<double>(left.size()) / sample_rate : 0.0;
  }

  /// Mono downmix (L+R)/2.
  MonoBuffer mid() const {
    std::vector<float> m(left.size());
    for (std::size_t i = 0; i < m.size(); ++i) m[i] = 0.5F * (left[i] + right[i]);
    return MonoBuffer(std::move(m), sample_rate);
  }

  /// Stereo difference (L-R)/2 — the content of the FM stereo subband.
  MonoBuffer side() const {
    std::vector<float> s(left.size());
    for (std::size_t i = 0; i < s.size(); ++i) s[i] = 0.5F * (left[i] - right[i]);
    return MonoBuffer(std::move(s), sample_rate);
  }
};

}  // namespace fmbs::audio
