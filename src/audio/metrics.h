// Objective audio metrics: plain and segmental SNR against a reference,
// with alignment and gain matching helpers shared with the PESQ-like metric.
#pragma once

#include <span>

#include "audio/audio_buffer.h"

namespace fmbs::audio {

/// SNR (dB) of `test` against `reference`: power(ref) / power(test - ref).
/// Assumes the signals are already time aligned and gain matched.
double snr_db(std::span<const float> reference, std::span<const float> test);

/// Segmental SNR (dB): mean of per-frame SNRs clamped to [-10, 35] dB over
/// frames where the reference is active. frame = 30 ms at the given rate.
double segmental_snr_db(std::span<const float> reference,
                        std::span<const float> test, double sample_rate);

/// Aligns `test` to `reference` (cross-correlation over +-max_lag samples)
/// and scales it to the least-squares gain; returns the aligned/scaled test
/// signal truncated to the overlap region, alongside the matching reference.
struct AlignedPair {
  std::vector<float> reference;
  std::vector<float> test;
  double delay_samples = 0.0;
  double gain = 1.0;
};
AlignedPair align_and_scale(std::span<const float> reference,
                            std::span<const float> test, std::size_t max_lag);

}  // namespace fmbs::audio
