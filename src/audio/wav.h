// Minimal RIFF/WAVE reader-writer (PCM16 and float32), enough for the
// example programs to emit listenable artifacts.
#pragma once

#include <string>

#include "audio/audio_buffer.h"

namespace fmbs::audio {

/// Writes a mono buffer as 16-bit PCM. Samples are clipped to [-1, 1].
/// Throws std::runtime_error on I/O failure.
void write_wav(const std::string& path, const MonoBuffer& audio);

/// Writes a stereo buffer as interleaved 16-bit PCM.
void write_wav(const std::string& path, const StereoBuffer& audio);

/// Reads a PCM16 or float32 WAV file. Multichannel input is downmixed to
/// mono. Throws std::runtime_error on malformed files.
MonoBuffer read_wav(const std::string& path);

}  // namespace fmbs::audio
