// google-benchmark microbenchmarks for the hot DSP paths: how fast the
// pipeline runs relative to real time, per stage.
#include <benchmark/benchmark.h>

#include <random>

#include "audio/tone.h"
#include "channel/awgn.h"
#include "channel/superpose.h"
#include "core/experiment.h"
#include "core/simulator.h"
#include "core/thread_pool.h"
#include "fm/station_cache.h"
#include "dsp/fft.h"
#include "dsp/fir.h"
#include "dsp/goertzel.h"
#include "fm/demodulator.h"
#include "fm/modulator.h"
#include "rx/tuner.h"
#include "tag/baseband.h"
#include "tag/subcarrier.h"

namespace {

using namespace fmbs;

void BM_FftForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::FftPlan plan(n);
  dsp::cvec data(n, dsp::cfloat(1.0F, 0.5F));
  for (auto _ : state) {
    plan.forward(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FftForward)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FirFilterFloat(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  dsp::FirFilter<float> filt(dsp::fir_design_lowpass(taps, 0.1));
  std::vector<float> block(24000, 0.5F);
  for (auto _ : state) {
    auto out = filt.process(block);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 24000);
}
BENCHMARK(BM_FirFilterFloat)->Arg(31)->Arg(127);

void BM_ScaleInto(benchmark::State& state) {
  dsp::cvec src(240000, dsp::cfloat(0.3F, -0.2F));
  dsp::cvec dst(240000);
  for (auto _ : state) {
    channel::scale_into(dst, src, 0.7F);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 240000);
}
BENCHMARK(BM_ScaleInto);

void BM_AccumulateScaled(benchmark::State& state) {
  dsp::cvec src(240000, dsp::cfloat(0.3F, -0.2F));
  dsp::cvec dst(240000, dsp::cfloat(0.1F, 0.1F));
  for (auto _ : state) {
    channel::accumulate_scaled(dst, src, 0.7F);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 240000);
}
BENCHMARK(BM_AccumulateScaled);

// The scene's per-station upsampler: one 0.1 s MPX-rate block to RF rate.
void BM_PolyphaseInterpolator(benchmark::State& state) {
  dsp::FirInterpolator<dsp::cfloat> interp(dsp::fir_design_lowpass(127, 0.04),
                                           10);
  dsp::cvec block(24000, dsp::cfloat(0.3F, -0.2F));
  for (auto _ : state) {
    auto out = interp.process(block);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 24000);
}
BENCHMARK(BM_PolyphaseInterpolator);

void BM_PolyphaseDecimator(benchmark::State& state) {
  dsp::FirDecimator<dsp::cfloat> dec(dsp::fir_design_lowpass(127, 0.04), 10);
  dsp::cvec block(240000, dsp::cfloat(0.3F, -0.2F));
  for (auto _ : state) {
    auto out = dec.process(block);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 240000);
}
BENCHMARK(BM_PolyphaseDecimator);

void BM_FmModulator(benchmark::State& state) {
  fm::FmModulator mod( units::Hertz{fm::kMaxDeviationHz}, fm::kMpxRate);
  const auto tone = audio::make_tone(1000.0, 0.8, 0.1, fm::kMpxRate);
  for (auto _ : state) {
    auto iq = mod.process(tone.samples);
    benchmark::DoNotOptimize(iq.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tone.size()));
}
BENCHMARK(BM_FmModulator);

void BM_QuadratureDemodulator(benchmark::State& state) {
  fm::FmModulator mod( units::Hertz{fm::kMaxDeviationHz}, fm::kMpxRate);
  fm::QuadratureDemodulator demod( units::Hertz{fm::kMaxDeviationHz}, fm::kMpxRate);
  const auto tone = audio::make_tone(1000.0, 0.8, 0.1, fm::kMpxRate);
  const auto iq = mod.process(tone.samples);
  for (auto _ : state) {
    auto mpx = demod.process(iq);
    benchmark::DoNotOptimize(mpx.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(iq.size()));
}
BENCHMARK(BM_QuadratureDemodulator);

void BM_SubcarrierGenerator(benchmark::State& state) {
  tag::SubcarrierConfig cfg;
  tag::SubcarrierGenerator gen(cfg);
  std::vector<float> bb(24000, 0.2F);
  for (auto _ : state) {
    auto b = gen.process(bb);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 240000);
}
BENCHMARK(BM_SubcarrierGenerator);

void BM_Tuner(benchmark::State& state) {
  rx::Tuner tuner{rx::TunerConfig{}};
  dsp::cvec rf(240000, dsp::cfloat(0.1F, 0.1F));
  for (auto _ : state) {
    auto out = tuner.process(rf);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 240000);
}
BENCHMARK(BM_Tuner);

void BM_AwgnSource(benchmark::State& state) {
  channel::AwgnSource src( units::Dbm{-90.0}, units::Hertz{200000.0}, 2400000.0, 7);
  dsp::cvec block(240000);
  for (auto _ : state) {
    src.add_to(block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 240000);
}
BENCHMARK(BM_AwgnSource);

void BM_GoertzelBank16(benchmark::State& state) {
  std::vector<double> tones;
  for (int i = 1; i <= 16; ++i) tones.push_back(800.0 * i);
  dsp::GoertzelBank bank(tones, 48000.0);
  const auto block = audio::make_tone(4800.0, 1.0, 0.0025, 48000.0);
  for (auto _ : state) {
    auto p = bank.powers(block.samples);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_GoertzelBank16);

void BM_ThreadPoolParallelForOverhead(benchmark::State& state) {
  // Dispatch cost of the sweep engine's work distribution (empty tasks).
  core::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pool.parallel_for(256, [](std::size_t i) { benchmark::DoNotOptimize(i); });
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_ThreadPoolParallelForOverhead)->Arg(1)->Arg(4);

void BM_StationCacheHit(benchmark::State& state) {
  // Cost of serving a cached station render vs re-synthesizing it: the
  // shared-render fast path every sweep point takes after the first.
  auto& cache = fm::StationCache::instance();
  cache.clear();
  fm::StationConfig cfg;
  cfg.seed = 424242;
  (void)cache.render(cfg, units::Seconds{0.5});  // warm
  for (auto _ : state) {
    auto signal = cache.render(cfg, units::Seconds{0.5});
    benchmark::DoNotOptimize(signal.get());
  }
  cache.clear();
}
BENCHMARK(BM_StationCacheHit);

void BM_EndToEndSimulationSecond(benchmark::State& state) {
  // Full physical pipeline for one second of signal, station render
  // included — the cache would otherwise serve it after iteration 1.
  fm::StationCache::instance().set_enabled(false);
  core::ExperimentPoint point;
  point.genre = audio::ProgramGenre::kNews;
  core::SystemConfig cfg = core::make_system(point);
  const auto tone = audio::make_tone(1000.0, 1.0, 1.0, fm::kAudioRate);
  const auto bb = tag::compose_overlay_baseband(tone, core::kOverlayLevel);
  for (auto _ : state) {
    auto sim = core::simulate(cfg, bb, units::Seconds{1.0});
    benchmark::DoNotOptimize(sim.backscatter_rx.mono.samples.data());
  }
  fm::StationCache::instance().set_enabled(true);
}
BENCHMARK(BM_EndToEndSimulationSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
