// Fig. 13 — PESQ of stereo backscatter:
//  (a) audio in the stereo stream of a stereo news station (paper: much
//      higher than overlay at strong powers; below ~-40 dBm the receiver
//      loses the pilot and falls back to mono),
//  (b) a mono station converted to stereo by the tag's injected 19 kHz
//      pilot (paper: even better — the stereo stream is completely empty —
//      and works down to -40 dBm).
#include <iostream>

#include "core/sweep_runner.h"

int main() {
  using namespace fmbs;

  const std::vector<double> distances_ft{2, 4, 8, 12, 16, 20};
  const std::vector<double> powers_dbm{-20, -30, -40};

  struct SubFigure {
    const char* title;
    bool stereo_station;
  };
  const std::vector<SubFigure> subs{
      {"Fig 13a: stereo news station (tag uses existing pilot)", true},
      {"Fig 13b: mono station converted to stereo (tag injects pilot)", false},
  };

  core::SweepRunner runner;
  for (const auto& sub : subs) {
    std::vector<core::GridRow> rows;
    for (const double p : powers_dbm) {
      rows.push_back({std::to_string(static_cast<int>(p)) + "dBm",
                      [p, &sub](double d) {
                        core::ExperimentPoint point;
                        point.tag_power = units::Dbm{p};
                        point.distance = units::Feet{d};
                        point.genre = audio::ProgramGenre::kNews;
                        point.stereo_station = sub.stereo_station;
                        return point;
                      },
                      [](const core::ExperimentPoint& pt, double) {
                        return core::run_stereo_pesq(pt, units::Seconds{2.5});
                      }});
    }
    const auto series = runner.run_grid(rows, distances_ft);
    core::print_table(std::cout, sub.title, "dist_ft", distances_ft, series, 2);
    std::cout << "\n";
  }
  std::cout << "(paper: 13b >= 13a >> overlay at strong power; both collapse\n"
               " once the pilot is undetectable at weak power)\n";
  return 0;
}
