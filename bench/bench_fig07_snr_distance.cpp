// Fig. 7 — SNR vs tag-receiver distance for ambient powers of -20..-60 dBm
// at the backscatter device (paper: a 1 kHz tone; usable SNR out to 20 ft at
// -30 dBm, close range still fine at -50 dBm).
//
// Runs as a scenario-level sweep: each grid cell is a one-tag Scenario (a
// 1 kHz tone backscattered over an unmodulated carrier) pushed through the
// ScenarioEngine by core::run_scenario_grid — per-cell seeds derive from the
// grid position and every cell shares one cached station render.
#include <iostream>

#include "audio/tone.h"
#include "core/scenario.h"
#include "dsp/spectrum.h"
#include "tag/baseband.h"

namespace {

constexpr double kToneHz = 1000.0;
constexpr double kDuration = 1.0;

fmbs::core::Scenario tone_scenario(double power_dbm, double distance_ft) {
  using namespace fmbs;
  core::Scenario sc;
  sc.name = "fig07";
  sc.seed = 0;          // derived per grid cell by the sweep seed policy
  sc.station.seed = 0;  // pinned sweep-wide: one shared station render
  // Fig. 6/7 methodology: "an FM station transmitting no audio information".
  sc.station.program.genre = audio::ProgramGenre::kSilence;
  sc.station.program.stereo = false;
  sc.settle = units::Seconds{0.0};
  sc.duration = units::Seconds{kDuration};

  core::ScenarioTag t;
  t.name = "tone-tag";
  t.custom_baseband = tag::compose_overlay_baseband(
      audio::make_tone(kToneHz, 1.0, kDuration, fm::kAudioRate),
      core::kOverlayLevel);
  t.tag_power = units::Dbm{power_dbm};
  t.distance_override = units::Feet{distance_ft};
  sc.tags.push_back(std::move(t));
  sc.receivers.push_back(core::phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

double received_tone_snr_db(const fmbs::core::ScenarioResult& result) {
  using namespace fmbs;
  const audio::MonoBuffer& mono = result.receivers[0].capture.mono;
  // Skip the filter-settling head before measuring, as run_tone_snr does.
  const auto skip = static_cast<std::size_t>(0.1 * fm::kAudioRate);
  const std::span<const float> body(mono.samples.data() + skip,
                                    mono.size() - skip);
  return dsp::tone_snr_db(body, fm::kAudioRate, kToneHz, 100.0, 15000.0);
}

}  // namespace

int main() {
  using namespace fmbs;

  const std::vector<double> distances_ft{1, 2, 4, 6, 8, 12, 16, 20};
  const std::vector<double> powers_dbm{-20, -30, -40, -50, -60};

  std::vector<core::ScenarioGridRow> rows;
  for (const double p : powers_dbm) {
    rows.push_back({std::to_string(static_cast<int>(p)) + "dBm",
                    [p](double d) { return tone_scenario(p, d); },
                    [](const core::ScenarioResult& result, double) {
                      return received_tone_snr_db(result);
                    }});
  }
  core::SweepRunner runner;
  const core::ScenarioEngine engine;  // captures kept: the metric needs audio
  const auto series = core::run_scenario_grid(runner, engine, rows, distances_ft);

  std::cout << "Fig. 7: received SNR of a 1 kHz backscattered tone\n"
               "(paper: ~50 dB at -20 dBm close in; ~20 ft usable at -30 dBm;\n"
               " still usable at close range at -50 dBm)\n\n";
  core::print_table(std::cout, "Fig 7: SNR (dB) vs distance (ft)", "dist_ft",
                    distances_ft, series, 1);
  return 0;
}
