// Fig. 7 — SNR vs tag-receiver distance for ambient powers of -20..-60 dBm
// at the backscatter device (paper: a 1 kHz tone; usable SNR out to 20 ft at
// -30 dBm, close range still fine at -50 dBm).
#include <iostream>

#include "core/sweep_runner.h"

int main() {
  using namespace fmbs;

  const std::vector<double> distances_ft{1, 2, 4, 6, 8, 12, 16, 20};
  const std::vector<double> powers_dbm{-20, -30, -40, -50, -60};

  std::vector<core::GridRow> rows;
  for (const double p : powers_dbm) {
    rows.push_back({std::to_string(static_cast<int>(p)) + "dBm",
                    [p](double d) {
                      core::ExperimentPoint point;
                      point.tag_power_dbm = p;
                      point.distance_feet = d;
                      return point;
                    },
                    [](const core::ExperimentPoint& pt, double) {
                      return core::run_tone_snr(pt, 1000.0, false, 1.0);
                    }});
  }
  core::SweepRunner runner;
  const auto series = runner.run_grid(rows, distances_ft);

  std::cout << "Fig. 7: received SNR of a 1 kHz backscattered tone\n"
               "(paper: ~50 dB at -20 dBm close in; ~20 ft usable at -30 dBm;\n"
               " still usable at close range at -50 dBm)\n\n";
  core::print_table(std::cout, "Fig 7: SNR (dB) vs distance (ft)", "dist_ft",
                    distances_ft, series, 1);
  return 0;
}
