// Scaling check for the sweep engine (the PR's acceptance bench): a Fig.
// 8-style BER grid is run three ways —
//
//   1. the legacy hand-rolled serial loop (fresh station render per point,
//      exactly what every bench_fig* binary used to do),
//   2. SweepRunner with 1 thread (shared station render, same task order),
//   3. SweepRunner with 8 threads,
//
// and the binary (a) verifies the SweepRunner results are bit-identical at
// 1, 2 and 8 threads, and (b) reports the speedups. On a multi-core host the
// 8-thread run combines near-linear pool scaling with the shared render; on
// any host the shared render alone already beats the legacy loop.
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/sweep_runner.h"
#include "fm/station_cache.h"

using namespace fmbs;

namespace {

struct GridResult {
  std::vector<rx::BerResult> results;
  double seconds = 0.0;
};

std::vector<core::ExperimentPoint> make_grid() {
  const std::vector<double> distances_ft{2, 4, 6, 8, 12};
  const std::vector<double> powers_dbm{-30, -40, -50};
  std::vector<core::ExperimentPoint> points;
  for (const double p : powers_dbm) {
    for (const double d : distances_ft) {
      core::ExperimentPoint point;
      point.tag_power = units::Dbm{p};
      point.distance = units::Feet{d};
      point.genre = audio::ProgramGenre::kNews;
      points.push_back(point);
    }
  }
  return points;
}

constexpr tag::DataRate kRate = tag::DataRate::k1600bps;
constexpr std::size_t kBits = 320;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The loop every figure bench used to hand-roll: sequential points, each
// re-rendering its own station (cache bypassed to reproduce the old cost).
GridResult run_legacy_serial(const std::vector<core::ExperimentPoint>& grid) {
  auto& cache = fm::StationCache::instance();
  cache.set_enabled(false);
  GridResult out;
  const double t0 = now_seconds();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    core::ExperimentPoint point = grid[i];
    point.seed = core::derive_seed(1, i);
    out.results.push_back(core::run_overlay_ber(point, kRate, kBits));
  }
  out.seconds = now_seconds() - t0;
  cache.set_enabled(true);
  return out;
}

GridResult run_with_engine(const std::vector<core::ExperimentPoint>& grid,
                           std::size_t threads) {
  fm::StationCache::instance().clear();
  core::SweepRunner runner(core::SweepConfig{.threads = threads, .base_seed = 1});
  GridResult out;
  const double t0 = now_seconds();
  out.results = runner.map(runner.seed_points(grid),
                           [](const core::ExperimentPoint& point) {
                             return core::run_overlay_ber(point, kRate, kBits);
                           });
  out.seconds = now_seconds() - t0;
  return out;
}

bool identical(const std::vector<rx::BerResult>& a,
               const std::vector<rx::BerResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].bit_errors != b[i].bit_errors ||
        a[i].bits_compared != b[i].bits_compared || a[i].ber != b[i].ber) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const auto grid = make_grid();
  std::printf("Fig. 8-style grid: %zu points, 1.6 kbps, %zu bits/point\n\n",
              grid.size(), kBits);

  const GridResult legacy = run_legacy_serial(grid);
  std::printf("%-34s %8.2f s\n", "legacy serial loop (fresh renders)",
              legacy.seconds);

  const GridResult t1 = run_with_engine(grid, 1);
  std::printf("%-34s %8.2f s   (%.2fx vs legacy)\n", "SweepRunner, 1 thread",
              t1.seconds, legacy.seconds / t1.seconds);
  const GridResult t2 = run_with_engine(grid, 2);
  std::printf("%-34s %8.2f s   (%.2fx vs legacy)\n", "SweepRunner, 2 threads",
              t2.seconds, legacy.seconds / t2.seconds);
  const GridResult t8 = run_with_engine(grid, 8);
  std::printf("%-34s %8.2f s   (%.2fx vs legacy)\n", "SweepRunner, 8 threads",
              t8.seconds, legacy.seconds / t8.seconds);

  const bool bit_identical =
      identical(t1.results, t2.results) && identical(t1.results, t8.results);
  std::printf("\nbit-identical at 1/2/8 threads: %s\n",
              bit_identical ? "yes" : "NO — ENGINE BUG");

  const auto stats = fm::StationCache::instance().stats();
  std::printf("station cache: %llu hits, %llu misses this run\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));
  return bit_identical ? 0 : 1;
}
