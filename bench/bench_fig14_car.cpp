// Fig. 14 — Overlay backscatter received by a car radio, 20-80 ft (paper:
// the car's antenna and ground plane outperform a phone; the system works
// to 60 ft; audio re-recorded by a microphone in the running cabin).
//
// Runs as a scenario-level sweep (finishing the migration started with
// fig07/fig08): each grid cell is a one-tag Scenario — a 1 kHz tone over an
// unmodulated carrier for the SNR panel, synthesized speech for the PESQ
// panel — heard by a core::car_listening_to receiver (whip antenna, car
// noise floor, two-ray ground propagation, cabin playback).
#include <iostream>

#include "audio/speech_synth.h"
#include "audio/pesq_like.h"
#include "audio/tone.h"
#include "core/scenario.h"
#include "dsp/spectrum.h"
#include "tag/baseband.h"

namespace {

using namespace fmbs;

constexpr double kToneHz = 1000.0;
constexpr double kToneSeconds = 1.0;
constexpr double kSpeechSeconds = 2.5;

core::Scenario car_scenario(double power_dbm, double distance_ft,
                            const dsp::rvec& baseband, double duration,
                            audio::ProgramGenre genre) {
  core::Scenario sc;
  sc.name = "fig14";
  sc.seed = 0;          // derived per grid cell by the sweep seed policy
  sc.station.seed = 0;  // pinned sweep-wide: one shared station render
  sc.station.program.genre = genre;
  sc.station.program.stereo = false;
  sc.settle = units::Seconds{0.0};
  sc.duration = units::Seconds{duration};

  core::ScenarioTag t;
  t.name = "poster";
  t.custom_baseband = baseband;
  t.tag_power = units::Dbm{power_dbm};
  t.distance_override = units::Feet{distance_ft};
  sc.tags.push_back(std::move(t));
  sc.receivers.push_back(core::car_listening_to(sc.tags[0].subcarrier));
  return sc;
}

core::Scenario tone_scenario(double power_dbm, double distance_ft) {
  // Fig. 6/7 methodology: "an FM station transmitting no audio information".
  return car_scenario(
      power_dbm, distance_ft,
      tag::compose_overlay_baseband(
          audio::make_tone(kToneHz, 1.0, kToneSeconds, fm::kAudioRate),
          core::kOverlayLevel),
      kToneSeconds, audio::ProgramGenre::kSilence);
}

audio::MonoBuffer cabin_speech(std::uint64_t seed) {
  audio::SpeechConfig cfg;
  cfg.pitch_hz = 165.0;  // distinct voice from the news announcer
  cfg.level_rms = 0.2;
  return audio::synthesize_speech(cfg, kSpeechSeconds, fm::kAudioRate, seed);
}

core::Scenario speech_scenario(double power_dbm, double distance_ft) {
  return car_scenario(
      power_dbm, distance_ft,
      tag::compose_overlay_baseband(
          cabin_speech(static_cast<std::uint64_t>(distance_ft)),
          core::kOverlayLevel),
      kSpeechSeconds + 0.1, audio::ProgramGenre::kNews);
}

double cabin_tone_snr_db(const core::ScenarioResult& result) {
  const audio::MonoBuffer& mono = result.receivers[0].capture.mono;
  // Skip the filter-settling head before measuring, as run_tone_snr does.
  const auto skip = static_cast<std::size_t>(0.1 * fm::kAudioRate);
  const std::span<const float> body(mono.samples.data() + skip,
                                    mono.size() - skip);
  return dsp::tone_snr_db(body, fm::kAudioRate, kToneHz, 100.0, 15000.0);
}

}  // namespace

int main() {
  const std::vector<double> distances_ft{20, 30, 40, 50, 60, 70, 80};
  const std::vector<double> powers_dbm{-20, -30};

  std::vector<core::ScenarioGridRow> snr_rows, pesq_rows;
  for (const double p : powers_dbm) {
    const std::string label = std::to_string(static_cast<int>(p)) + "dBm";
    snr_rows.push_back({label,
                        [p](double d) { return tone_scenario(p, d); },
                        [](const core::ScenarioResult& result, double) {
                          return cabin_tone_snr_db(result);
                        }});
    pesq_rows.push_back({label,
                         [p](double d) { return speech_scenario(p, d); },
                         [](const core::ScenarioResult& result, double d) {
                           return audio::pesq_like(
                               cabin_speech(static_cast<std::uint64_t>(d)),
                               result.receivers[0].capture.mono);
                         }});
  }
  core::SweepRunner runner;
  const core::ScenarioEngine engine;  // captures kept: both metrics need audio
  const auto snr_series =
      core::run_scenario_grid(runner, engine, snr_rows, distances_ft);
  const auto pesq_series =
      core::run_scenario_grid(runner, engine, pesq_rows, distances_ft);

  std::cout << "Fig. 14: overlay backscatter into a car receiver\n"
               "(paper: works well to 60 ft; SNR 15-45 dB over 20-80 ft)\n\n";
  core::print_table(std::cout, "Fig 14a: SNR (dB) vs distance", "dist_ft",
                    distances_ft, snr_series, 1);
  std::cout << "\n";
  core::print_table(std::cout, "Fig 14b: PESQ vs distance", "dist_ft",
                    distances_ft, pesq_series, 2);
  return 0;
}
