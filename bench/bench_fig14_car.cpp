// Fig. 14 — Overlay backscatter received by a car radio, 20-80 ft (paper:
// the car's antenna and ground plane outperform a phone; the system works
// to 60 ft; audio re-recorded by a microphone in the running cabin).
#include <iostream>

#include "core/sweep_runner.h"

int main() {
  using namespace fmbs;

  const std::vector<double> distances_ft{20, 30, 40, 50, 60, 70, 80};
  const std::vector<double> powers_dbm{-20, -30};

  const auto car_point = [](double p) {
    return [p](double d) {
      core::ExperimentPoint point;
      point.tag_power_dbm = p;
      point.distance_feet = d;
      point.receiver = core::ReceiverKind::kCar;
      point.genre = audio::ProgramGenre::kNews;
      return point;
    };
  };

  std::vector<core::GridRow> snr_rows, pesq_rows;
  for (const double p : powers_dbm) {
    const std::string label = std::to_string(static_cast<int>(p)) + "dBm";
    snr_rows.push_back({label, car_point(p),
                        [](const core::ExperimentPoint& pt, double) {
                          return core::run_tone_snr(pt, 1000.0, false, 1.0);
                        }});
    pesq_rows.push_back({label, car_point(p),
                         [](const core::ExperimentPoint& pt, double) {
                           return core::run_overlay_pesq(pt, 2.5);
                         }});
  }
  core::SweepRunner runner;
  const auto snr_series = runner.run_grid(snr_rows, distances_ft);
  const auto pesq_series = runner.run_grid(pesq_rows, distances_ft);

  std::cout << "Fig. 14: overlay backscatter into a car receiver\n"
               "(paper: works well to 60 ft; SNR 15-45 dB over 20-80 ft)\n\n";
  core::print_table(std::cout, "Fig 14a: SNR (dB) vs distance", "dist_ft",
                    distances_ft, snr_series, 1);
  std::cout << "\n";
  core::print_table(std::cout, "Fig 14b: PESQ vs distance", "dist_ft",
                    distances_ft, pesq_series, 2);
  return 0;
}
