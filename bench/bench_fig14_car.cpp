// Fig. 14 — Overlay backscatter received by a car radio, 20-80 ft (paper:
// the car's antenna and ground plane outperform a phone; the system works
// to 60 ft; audio re-recorded by a microphone in the running cabin).
#include <iostream>

#include "core/experiment.h"

int main() {
  using namespace fmbs;

  const std::vector<double> distances_ft{20, 30, 40, 50, 60, 70, 80};
  const std::vector<double> powers_dbm{-20, -30};

  std::vector<core::Series> snr_series, pesq_series;
  for (const double p : powers_dbm) {
    core::Series snr_s, pesq_s;
    snr_s.label = std::to_string(static_cast<int>(p)) + "dBm";
    pesq_s.label = snr_s.label;
    for (const double d : distances_ft) {
      core::ExperimentPoint point;
      point.tag_power_dbm = p;
      point.distance_feet = d;
      point.receiver = core::ReceiverKind::kCar;
      point.genre = audio::ProgramGenre::kNews;
      point.seed = static_cast<std::uint64_t>(d - p);
      snr_s.values.push_back(core::run_tone_snr(point, 1000.0, false, 1.0));
      pesq_s.values.push_back(core::run_overlay_pesq(point, 2.5));
    }
    snr_series.push_back(std::move(snr_s));
    pesq_series.push_back(std::move(pesq_s));
  }

  std::cout << "Fig. 14: overlay backscatter into a car receiver\n"
               "(paper: works well to 60 ft; SNR 15-45 dB over 20-80 ft)\n\n";
  core::print_table(std::cout, "Fig 14a: SNR (dB) vs distance", "dist_ft",
                    distances_ft, snr_series, 1);
  std::cout << "\n";
  core::print_table(std::cout, "Fig 14b: PESQ vs distance", "dist_ft",
                    distances_ft, pesq_series, 2);
  return 0;
}
