// Section 4 (IC design) and section 2 (application requirements):
//  * tag IC power budget — baseband 1.00 uW + LC-DCO modulator 9.94 uW +
//    backscatter switch 0.13 uW = 11.07 uW at a 600 kHz subcarrier,
//  * battery-life comparison — an active FM transmitter chip (18.8 mA)
//    drains a 225 mAh coin cell in under 12 hours; the backscatter tag runs
//    for years,
//  * unit-cost comparison.
#include <cstdio>

#include "core/sweep_runner.h"
#include "tag/power_model.h"

int main() {
  using namespace fmbs;
  using namespace fmbs::tag;

  std::puts("Section 4: tag IC power budget (TSMC 65 nm LP, paper values)\n");
  std::printf("%-28s %12s\n", "block", "power (uW)");
  const PowerBreakdown p = tag_power();
  std::printf("%-28s %12.2f\n", "baseband state machine", p.baseband_uw);
  std::printf("%-28s %12.2f\n", "FM modulator (LC DCO @600k)", p.modulator_uw);
  std::printf("%-28s %12.2f\n", "backscatter switch", p.switch_uw);
  std::printf("%-28s %12.2f   (paper: 11.07 uW)\n", "TOTAL", p.total_uw);

  std::puts("\nPower vs subcarrier shift (dynamic blocks scale with f_back):\n");
  const std::vector<double> shifts_hz{200e3, 400e3, 600e3, 800e3};
  core::SweepRunner runner;
  const auto totals = runner.map(shifts_hz, [](const double& f) {
    PowerModelConfig cfg;
    cfg.subcarrier = units::Hertz{f};
    return tag_power(cfg).total_uw;
  });
  std::printf("%-14s %12s\n", "f_back (kHz)", "total (uW)");
  for (std::size_t i = 0; i < shifts_hz.size(); ++i) {
    std::printf("%-14.0f %12.2f\n", shifts_hz[i] / 1000.0, totals[i]);
  }

  std::puts("\nSection 2: battery life on a 225 mAh coin cell\n");
  std::printf("%-34s %14s %12s\n", "radio", "current", "lifetime");
  const BatteryLife fm_chip = battery_life_from_current(18.8, 225.0);
  std::printf("%-34s %11.1f mA %9.1f h   (paper: < 12 h)\n",
              "active FM transmitter (SI4713)", 18.8, fm_chip.hours);
  const BatteryLife tag = battery_life(11.07, 225.0);
  std::printf("%-34s %11.2f uA %9.2f y   (paper: almost 3 years)\n",
              "FM backscatter tag (11.07 uW)", tag.current_ua, tag.years);

  std::puts("\nUnit cost at volume:\n");
  const CostComparison cost;
  std::printf("  FM transmitter chip:  $%.2f\n", cost.fm_chip_usd);
  std::printf("  BLE chip:             $%.2f\n", cost.ble_chip_usd);
  std::printf("  backscatter tag:      $%.2f  (paper: 'a few cents')\n",
              cost.backscatter_usd);
  return 0;
}
