// Multi-tag coexistence bench (paper section 8): the signal-level
// ScenarioEngine driving the two deployment strategies the paper proposes
// for concurrent tags, with core::run_scenario_sweep parallelizing the
// scenarios across the SweepRunner pool (every scenario here pins its own
// seeds, so the sweep seed policy passes them through untouched).
//
//  1. Channel spreading: N tags on the planner's disjoint channels — per-tag
//     BER stays flat and aggregate goodput scales ~linearly with N.
//  2. Channel sharing: a fixed channel at rising ALOHA offered load — the
//     PHY-measured success probability tracks the analytic e^{-2G}, which
//     the repo could previously only assert from the Monte-Carlo MAC model.
#include <cmath>
#include <iostream>
#include <random>

#include "core/fmbs.h"

namespace {

using namespace fmbs;

core::Scenario spreading_scenario(std::size_t num_tags) {
  core::Scenario sc;
  sc.name = "spread" + std::to_string(num_tags);
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 2;
  sc.seed = 2;
  sc.duration_seconds = 0.25;
  const auto plan = tag::plan_subcarrier_channels(num_tags);
  for (std::size_t i = 0; i < num_tags; ++i) {
    core::ScenarioTag t;
    t.name = "tag" + std::to_string(i);
    t.subcarrier = plan[i].subcarrier;
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = 256;
    t.packet_bits = 64;
    t.tag_power_dbm = -30.0;
    t.distance_override_feet = 5.0;
    sc.tags.push_back(std::move(t));
    sc.receivers.push_back(core::phone_listening_to(plan[i].subcarrier));
  }
  return sc;
}

constexpr double kFrame = 96.0 / 1600.0;  // one shared-channel burst

std::vector<double> poisson_starts(std::size_t attempts, double window_seconds,
                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> at(0.0, window_seconds - kFrame);
  std::vector<double> starts(attempts);
  for (auto& s : starts) s = at(rng);
  return starts;
}

core::Scenario sharing_scenario(const std::vector<double>& starts,
                                double window_seconds, std::uint64_t seed) {
  core::Scenario sc;
  sc.name = "share-" + std::to_string(seed);
  sc.station.program.genre = audio::ProgramGenre::kSilence;
  sc.station.program.stereo = false;
  sc.station.seed = seed;
  sc.seed = seed;
  sc.duration_seconds = window_seconds;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    core::ScenarioTag t;
    t.name = "burst" + std::to_string(i);
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = 96;
    t.tag_power_dbm = -25.0;
    t.distance_override_feet = 3.0;
    t.start_seconds = starts[i];
    sc.tags.push_back(std::move(t));
  }
  sc.receivers.push_back(core::phone_listening_to(tag::SubcarrierConfig{}));
  return sc;
}

/// The ALOHA vulnerability rule on a schedule: a burst survives when no
/// other switch-on window touches its payload.
std::size_t schedule_survivors(const std::vector<double>& starts) {
  constexpr double kGuard = core::kBurstGuardSeconds;  // engine's switch-on guard
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    bool clear = true;
    for (std::size_t j = 0; clear && j < starts.size(); ++j) {
      if (j == i) continue;
      clear = starts[j] - kGuard >= starts[i] + kFrame ||
              starts[j] + kFrame + kGuard <= starts[i];
    }
    if (clear) ++survivors;
  }
  return survivors;
}

}  // namespace

int main() {
  core::SweepRunner runner;
  const core::ScenarioEngine engine({.keep_captures = false});

  // ---- 1. Disjoint-channel spreading --------------------------------------
  const std::vector<double> tag_counts{1, 2, 4, 6, 8};
  std::vector<core::Scenario> spread;
  spread.reserve(tag_counts.size());
  for (const double n : tag_counts) {
    spread.push_back(spreading_scenario(static_cast<std::size_t>(n)));
  }
  const auto spread_results = core::run_scenario_sweep(runner, engine, spread);

  std::vector<core::Series> series(2);
  series[0].label = "worst_ber";
  series[1].label = "agg_kbps";
  for (const auto& result : spread_results) {
    double worst = 0.0;
    for (const auto& link : result.best_per_tag) {
      worst = std::max(worst, link.burst.ber.ber);
    }
    series[0].values.push_back(worst);
    series[1].values.push_back(result.aggregate_goodput_bps / 1000.0);
  }
  core::print_table(std::cout, "Channel spreading: N tags on disjoint channels",
                    "tags", tag_counts, series, 4);
  std::cout << "(per-tag BER should stay flat while goodput scales with N;\n"
               " beyond 4 tags the planner switches everyone to SSB switches)\n\n";

  // ---- 2. Shared-channel ALOHA vs the analytic model -----------------------
  // Each load point pools several independent schedules (run in parallel by
  // run_many) so the PHY estimate has enough attempts behind it; the
  // `sched` column applies the analytic vulnerability rule to the exact
  // same schedules, separating sampling noise from PHY disagreement.
  constexpr double kWindow = 1.8;
  constexpr std::size_t kSchedulesPerLoad = 3;
  const double frames = kWindow / kFrame;
  const std::vector<double> attempt_counts{4, 8, 15, 24};

  std::vector<core::Scenario> share;
  std::vector<std::vector<double>> schedules;
  for (std::size_t i = 0; i < attempt_counts.size(); ++i) {
    for (std::size_t k = 0; k < kSchedulesPerLoad; ++k) {
      const std::uint64_t seed = 1000 + 10 * i + k;
      schedules.push_back(poisson_starts(
          static_cast<std::size_t>(attempt_counts[i]), kWindow, seed));
      share.push_back(sharing_scenario(schedules.back(), kWindow, seed));
    }
  }
  const auto share_results = core::run_scenario_sweep(runner, engine, share);

  std::vector<double> offered_load;
  std::vector<core::Series> aloha(4);
  aloha[0].label = "phy_success";
  aloha[1].label = "sched_rule";
  aloha[2].label = "pure_e^-2G";
  aloha[3].label = "mc_aloha";
  for (std::size_t i = 0; i < attempt_counts.size(); ++i) {
    std::size_t delivered = 0, predicted = 0, attempts = 0;
    for (std::size_t k = 0; k < kSchedulesPerLoad; ++k) {
      const std::size_t idx = i * kSchedulesPerLoad + k;
      for (const auto& link : share_results[idx].best_per_tag) {
        if (link.burst.packets_ok == link.burst.packets) ++delivered;
      }
      predicted += schedule_survivors(schedules[idx]);
      attempts += schedules[idx].size();
    }
    const double g = attempt_counts[i] / frames;
    offered_load.push_back(g);
    const auto n = static_cast<double>(attempts);
    aloha[0].values.push_back(static_cast<double>(delivered) / n);
    aloha[1].values.push_back(static_cast<double>(predicted) / n);
    aloha[2].values.push_back(std::exp(-2.0 * g));
    core::AlohaConfig mc;
    mc.frame_seconds = kFrame;
    mc.duration_seconds = 3600.0;
    mc.num_tags = static_cast<std::size_t>(attempt_counts[i]);
    mc.per_tag_rate_hz = g / (kFrame * static_cast<double>(mc.num_tags));
    aloha[3].values.push_back(core::simulate_aloha(mc).success_probability);
  }
  core::print_table(std::cout,
                    "Channel sharing: PHY ALOHA vs analytic vs Monte-Carlo",
                    "G", offered_load, aloha, 3);
  std::cout << "(phy_success tracking sched_rule means the PHY agrees with\n"
               " the vulnerability model; e^-2G and the MAC Monte-Carlo are\n"
               " its expectation over schedules)\n";
  return 0;
}
