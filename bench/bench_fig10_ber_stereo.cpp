// Fig. 10 — Overlay vs stereo backscatter BER at -30 dBm, 1-4 ft (paper:
// the stereo stream of a news station is nearly interference-free, so
// stereo backscatter clearly beats overlay at both 1.6 and 3.2 kbps).
#include <iostream>

#include "core/sweep_runner.h"

int main() {
  using namespace fmbs;

  const std::vector<double> distances_ft{1, 2, 3, 4};
  struct Plan {
    const char* label;
    tag::DataRate rate;
    bool stereo;
  };
  const std::vector<Plan> plans{
      {"Overlay 1.6k", tag::DataRate::k1600bps, false},
      {"Stereo 1.6k", tag::DataRate::k1600bps, true},
      {"Overlay 3.2k", tag::DataRate::k3200bps, false},
      {"Stereo 3.2k", tag::DataRate::k3200bps, true},
  };
  const std::size_t bits = 640;

  std::vector<core::GridRow> rows;
  for (const auto& plan : plans) {
    rows.push_back({plan.label,
                    [](double d) {
                      core::ExperimentPoint point;
                      point.tag_power_dbm = -30.0;
                      point.distance_feet = d;
                      point.genre = audio::ProgramGenre::kNews;
                      point.stereo_station = true;  // news broadcasting in stereo
                      return point;
                    },
                    [plan, bits](const core::ExperimentPoint& pt, double) {
                      return plan.stereo
                                 ? core::run_stereo_ber(pt, plan.rate, bits).ber
                                 : core::run_overlay_ber(pt, plan.rate, bits).ber;
                    }});
  }
  core::SweepRunner runner;
  const auto series = runner.run_grid(rows, distances_ft);

  std::cout << "Fig. 10: overlay vs stereo backscatter BER @ -30 dBm\n"
               "(paper: stereo backscatter significantly lower BER; it needs\n"
               " the stronger signal to hold the receiver in stereo mode)\n\n";
  core::print_table(std::cout, "Fig 10: BER, overlay vs stereo", "dist_ft",
                    distances_ft, series, 4);
  return 0;
}
