// Fig. 10 — Overlay vs stereo backscatter BER at -30 dBm, 1-4 ft (paper:
// the stereo stream of a news station is nearly interference-free, so
// stereo backscatter clearly beats overlay at both 1.6 and 3.2 kbps).
//
// Runs as a scenario-level sweep (finishing the migration started with
// fig07/fig08): each grid cell is a one-tag Scenario whose custom baseband
// carries the FSK payload either as overlay content or in the stereo (L-R)
// stream; the eval demodulates the matching receiver output (mono downmix
// for overlay, the stereo side channel for stereo backscatter).
#include <iostream>

#include "audio/tone.h"
#include "core/scenario.h"
#include "rx/fsk_demod.h"
#include "tag/baseband.h"

namespace {

using namespace fmbs;

constexpr double kSettleSeconds = 0.08;  // receiver warm-up lead-in
constexpr std::size_t kBits = 640;

std::vector<std::uint8_t> cell_bits(std::size_t plan, double distance_ft) {
  return tag::random_bits(
      kBits, core::derive_seed(0xF10, plan * 1000 +
                                          static_cast<std::uint64_t>(
                                              distance_ft * 10.0)));
}

core::Scenario stereo_scenario(std::size_t plan, tag::DataRate rate,
                               bool stereo, double distance_ft) {
  core::Scenario sc;
  sc.name = "fig10";
  sc.seed = 0;          // derived per grid cell by the sweep seed policy
  sc.station.seed = 0;  // pinned sweep-wide: one shared station render
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = true;  // news broadcasting in stereo
  sc.settle = units::Seconds{0.0};  // the lead-in lives inside the custom baseband

  const audio::MonoBuffer wave = audio::concat(
      audio::make_silence(kSettleSeconds, fm::kAudioRate),
      tag::modulate_fsk(cell_bits(plan, distance_ft), rate, fm::kAudioRate));
  sc.duration = units::Seconds{wave.duration_seconds() + 0.15};

  core::ScenarioTag t;
  t.name = "data-tag";
  // Stereo backscatter rides the L-R stream of the already-stereo station
  // (no pilot insertion needed); overlay rides the mono program band.
  t.custom_baseband =
      stereo ? tag::compose_stereo_baseband(wave, /*insert_pilot=*/false)
             : tag::compose_overlay_baseband(wave, core::kOverlayLevel);
  t.tag_power = units::Dbm{-30.0};
  t.distance_override = units::Feet{distance_ft};
  sc.tags.push_back(std::move(t));
  sc.receivers.push_back(core::phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

double demod_ber(const core::ScenarioResult& result, std::size_t plan,
                 tag::DataRate rate, bool stereo, double distance_ft) {
  const std::vector<std::uint8_t> bits = cell_bits(plan, distance_ft);
  // The data lives in the mono downmix for overlay, in (L-R)/2 for stereo.
  const audio::MonoBuffer measured =
      stereo ? result.receivers[0].capture.stereo.side()
             : result.receivers[0].capture.mono;
  const auto skip = static_cast<std::size_t>(kSettleSeconds * fm::kAudioRate);
  const audio::MonoBuffer body(
      std::vector<float>(
          measured.samples.begin() + static_cast<std::ptrdiff_t>(
                                         std::min(measured.size(), skip)),
          measured.samples.end()),
      fm::kAudioRate);
  const rx::FskDemodResult demod = rx::demodulate_fsk(body, rate, bits.size());
  return rx::compare_bits(bits, demod.bits).ber;
}

}  // namespace

int main() {
  const std::vector<double> distances_ft{1, 2, 3, 4};
  struct Plan {
    const char* label;
    tag::DataRate rate;
    bool stereo;
  };
  const std::vector<Plan> plans{
      {"Overlay 1.6k", tag::DataRate::k1600bps, false},
      {"Stereo 1.6k", tag::DataRate::k1600bps, true},
      {"Overlay 3.2k", tag::DataRate::k3200bps, false},
      {"Stereo 3.2k", tag::DataRate::k3200bps, true},
  };

  std::vector<core::ScenarioGridRow> rows;
  for (std::size_t p = 0; p < plans.size(); ++p) {
    const Plan& plan = plans[p];
    rows.push_back({plan.label,
                    [p, plan](double d) {
                      return stereo_scenario(p, plan.rate, plan.stereo, d);
                    },
                    [p, plan](const core::ScenarioResult& result, double d) {
                      return demod_ber(result, p, plan.rate, plan.stereo, d);
                    }});
  }
  core::SweepRunner runner;
  const core::ScenarioEngine engine;  // captures kept: the demod needs audio
  const auto series = core::run_scenario_grid(runner, engine, rows, distances_ft);

  std::cout << "Fig. 10: overlay vs stereo backscatter BER @ -30 dBm\n"
               "(paper: stereo backscatter significantly lower BER; it needs\n"
               " the stronger signal to hold the receiver in stereo mode)\n\n";
  core::print_table(std::cout, "Fig 10: BER, overlay vs stereo", "dist_ft",
                    distances_ft, series, 4);
  return 0;
}
