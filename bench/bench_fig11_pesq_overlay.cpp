// Fig. 11 — PESQ of overlay-backscattered speech vs distance and power
// (paper: consistently ~2 for -20..-40 dBm out to 20 ft, similar at
// -50 dBm to 12 ft; audio needs >= -50 dBm while data can go to -60).
// The received signal is a composite of the ambient program and the tag's
// speech — the paper notes a listener hears the backscattered audio clearly
// at PESQ ~= 2.
#include <iostream>

#include "core/sweep_runner.h"

int main() {
  using namespace fmbs;

  const std::vector<double> distances_ft{2, 4, 8, 12, 16, 20};
  const std::vector<double> powers_dbm{-20, -30, -40, -50, -60};

  std::vector<core::GridRow> rows;
  for (const double p : powers_dbm) {
    rows.push_back({std::to_string(static_cast<int>(p)) + "dBm",
                    [p](double d) {
                      core::ExperimentPoint point;
                      point.tag_power = units::Dbm{p};
                      point.distance = units::Feet{d};
                      point.genre = audio::ProgramGenre::kNews;
                      return point;
                    },
                    [](const core::ExperimentPoint& pt, double) {
                      return core::run_overlay_pesq(pt, units::Seconds{2.5});
                    }});
  }
  core::SweepRunner runner;
  const auto series = runner.run_grid(rows, distances_ft);

  std::cout << "Fig. 11: PESQ-like score of overlay backscatter audio\n"
               "(paper: ~2 for -20..-40 dBm up to 20 ft; drops at -50/-60)\n\n";
  core::print_table(std::cout, "Fig 11: PESQ vs distance", "dist_ft",
                    distances_ft, series, 2);
  return 0;
}
