// Fig. 8 — BER of overlay backscatter vs distance, power and bit rate
// (paper: (a) 100 bps near-zero to 6 ft at every power, >12 ft above
// -60 dBm; (b,c) 1.6/3.2 kbps low BER to 16 ft at >= -40 dBm; range shrinks
// as rate grows). Background: recorded-station programs (here: synthetic
// news content; see bench_ablations for the genre sweep).
#include <iostream>

#include "core/sweep_runner.h"

int main() {
  using namespace fmbs;

  const std::vector<double> distances_ft{2, 4, 6, 8, 12, 16, 20};
  const std::vector<double> powers_dbm{-20, -30, -40, -50, -60};
  struct RatePlan {
    tag::DataRate rate;
    std::size_t bits;
    const char* figure;
  };
  const std::vector<RatePlan> plans{
      {tag::DataRate::k100bps, 200, "Fig 8a: BFSK @ 100 bps"},
      {tag::DataRate::k1600bps, 640, "Fig 8b: FDM-4FSK @ 1.6 kbps"},
      {tag::DataRate::k3200bps, 960, "Fig 8c: FDM-4FSK @ 3.2 kbps"},
  };

  core::SweepRunner runner;
  for (const auto& plan : plans) {
    std::vector<core::GridRow> rows;
    for (const double p : powers_dbm) {
      rows.push_back({std::to_string(static_cast<int>(p)) + "dBm",
                      [p](double d) {
                        core::ExperimentPoint point;
                        point.tag_power_dbm = p;
                        point.distance_feet = d;
                        point.genre = audio::ProgramGenre::kNews;
                        return point;
                      },
                      [&plan](const core::ExperimentPoint& pt, double) {
                        return core::run_overlay_ber(pt, plan.rate, plan.bits).ber;
                      }});
    }
    const auto series = runner.run_grid(rows, distances_ft);
    core::print_table(std::cout, plan.figure, "dist_ft", distances_ft, series, 4);
    std::cout << "\n";
  }
  std::cout << "(paper shapes: 100 bps robust everywhere near; higher rates\n"
               " trade range; -60 dBm only works at the shortest distances)\n";
  return 0;
}
