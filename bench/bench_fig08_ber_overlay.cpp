// Fig. 8 — BER of overlay backscatter vs distance, power and bit rate
// (paper: (a) 100 bps near-zero to 6 ft at every power, >12 ft above
// -60 dBm; (b,c) 1.6/3.2 kbps low BER to 16 ft at >= -40 dBm; range shrinks
// as rate grows). Background: recorded-station programs (here: synthetic
// news content; see bench_ablations for the genre sweep).
//
// Runs as a scenario-level sweep: each grid cell is a one-tag Scenario whose
// FSK burst the engine composes, renders and scores itself
// (core::run_scenario_grid derives per-cell seeds and shares one cached
// station render across the whole figure).
#include <iostream>

#include "core/scenario.h"

namespace {

fmbs::core::Scenario ber_scenario(double power_dbm, double distance_ft,
                                  fmbs::tag::DataRate rate, std::size_t bits) {
  using namespace fmbs;
  core::Scenario sc;
  sc.name = "fig08";
  sc.seed = 0;          // derived per grid cell by the sweep seed policy
  sc.station.seed = 0;  // pinned sweep-wide: one shared station render
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.duration = units::Seconds{
      static_cast<double>(bits) / tag::bits_per_second(rate) + 0.15};

  core::ScenarioTag t;
  t.name = "tag";
  t.rate = rate;
  t.num_bits = bits;
  t.tag_power = units::Dbm{power_dbm};
  t.distance_override = units::Feet{distance_ft};
  sc.tags.push_back(std::move(t));
  sc.receivers.push_back(core::phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

}  // namespace

int main() {
  using namespace fmbs;

  const std::vector<double> distances_ft{2, 4, 6, 8, 12, 16, 20};
  const std::vector<double> powers_dbm{-20, -30, -40, -50, -60};
  struct RatePlan {
    tag::DataRate rate;
    std::size_t bits;
    const char* figure;
  };
  const std::vector<RatePlan> plans{
      {tag::DataRate::k100bps, 200, "Fig 8a: BFSK @ 100 bps"},
      {tag::DataRate::k1600bps, 640, "Fig 8b: FDM-4FSK @ 1.6 kbps"},
      {tag::DataRate::k3200bps, 960, "Fig 8c: FDM-4FSK @ 3.2 kbps"},
  };

  core::SweepRunner runner;
  const core::ScenarioEngine engine({.keep_captures = false});
  for (const auto& plan : plans) {
    std::vector<core::ScenarioGridRow> rows;
    for (const double p : powers_dbm) {
      rows.push_back({std::to_string(static_cast<int>(p)) + "dBm",
                      [p, &plan](double d) {
                        return ber_scenario(p, d, plan.rate, plan.bits);
                      },
                      [](const core::ScenarioResult& result, double) {
                        return result.best_per_tag.empty()
                                   ? 1.0
                                   : result.best_per_tag[0].burst.ber.ber;
                      }});
    }
    const auto series =
        core::run_scenario_grid(runner, engine, rows, distances_ft);
    core::print_table(std::cout, plan.figure, "dist_ft", distances_ft, series, 4);
    std::cout << "\n";
  }
  std::cout << "(paper shapes: 100 bps robust everywhere near; higher rates\n"
               " trade range; -60 dBm only works at the shortest distances)\n";
  return 0;
}
