// Streaming vs batch engine on the survey-driven Boston city scene: wall
// time, real-time factor, block throughput and peak RSS at 5 s / 30 s /
// 120 s simulated. The point the numbers make: the batch engine's footprint
// grows linearly with the run (it materialises every station render plus the
// full RF composite) while the streaming engine's stays flat at its bounded
// ring + decode windows — and pipelined block rendering costs no throughput
// for the privilege.
//
// Modes:
//   (default)       all three durations, both engines, human-readable table
//   --json <path>   same sweep written as JSON (CI's bench-baselines job
//                   regenerates BENCH_streaming.json with this)
//   --smoke         fast acceptance run (CI build-and-test step): 5 s city
//                   run through both engines, decoded-results equality and
//                   a sane real-time factor asserted
#include <chrono>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fmbs.h"
#include "core/streaming.h"
#include "fm/station_cache.h"

namespace {

using namespace fmbs;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- Peak-RSS accounting ----------------------------------------------------

/// VmHWM from /proc/self/status, in KiB (0 if unreadable).
std::size_t peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::size_t kb = 0;
      fields >> kb;
      return kb;
    }
  }
  return 0;
}

/// Resets the kernel's peak-RSS watermark so each phase measures its own
/// high-water mark rather than inheriting the previous phase's. Best-effort:
/// needs write access to /proc/self/clear_refs ("5" = reset VmHWM).
bool reset_peak_rss() {
  std::ofstream clear_refs("/proc/self/clear_refs");
  if (!clear_refs) return false;
  clear_refs << "5";
  return static_cast<bool>(clear_refs);
}

// ---- The Boston city scene --------------------------------------------------

/// Densest in-scene slice of the surveyed Boston band (same selection as
/// bench_fleet_capacity and bench_scenario_multitag).
std::vector<core::ScenarioStation> boston_band() {
  const auto cities = survey::builtin_city_spectra();
  const survey::CitySpectrum* boston = nullptr;
  for (const auto& city : cities) {
    if (city.name == "Boston") boston = &city;
  }
  if (boston == nullptr) throw std::runtime_error("no Boston survey");
  core::SurveySceneReport report;
  for (const int channel : boston->detectable_channels) {
    core::SurveySceneReport candidate =
        core::stations_from_survey_report(*boston, channel);
    if (candidate.stations.size() > report.stations.size()) {
      report = std::move(candidate);
    }
  }
  return report.stations;
}

/// City scene: the full Boston band, two posters backscattering off the
/// scene-center station into a clear gateway channel, one phone on the
/// gateway channel and one car radio on the broadcast itself. The decode
/// work per block is fixed; only the duration varies.
core::Scenario city_scene(double duration_seconds) {
  core::Scenario sc;
  sc.name = "boston-streaming";
  sc.stations = boston_band();
  sc.duration = units::Seconds{duration_seconds};
  sc.seed = 20170327;

  // A gateway slot one full channel spacing clear of every licensed carrier
  // and a legal SSB shift from the scene center (station 0 at 0 Hz).
  double slot_hz = 0.0;
  for (double c = 400e3; c <= 1000e3 + 1.0; c += 100e3) {
    double min_dist = 1e12;
    for (const auto& st : sc.stations) {
      min_dist = std::min(min_dist, std::abs(c - st.offset.raw()));
    }
    if (min_dist >= fm::kChannelSpacingHz - 1e-6) {
      slot_hz = c;
      break;
    }
  }
  if (slot_hz == 0.0) throw std::runtime_error("no clear gateway slot");

  for (std::size_t i = 0; i < 2; ++i) {
    core::ScenarioTag t;
    t.name = "poster" + std::to_string(i);
    t.station_index = 0;
    t.subcarrier.shift = units::Hertz{slot_hz};
    t.subcarrier.mode = tag::SubcarrierMode::kSingleSideband;
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = 128;
    t.packet_bits = 64;
    t.distance_override = units::Feet{4.0 + 2.0 * static_cast<double>(i)};
    // Both bursts inside the first 1.2 s so the same scene works from the
    // sub-horizon smoke run up to the 120 s soak point.
    t.start = units::Seconds{0.3 + 0.7 * static_cast<double>(i)};
    sc.tags.push_back(std::move(t));
  }

  core::ScenarioReceiver phone;
  phone.name = "gateway";
  phone.kind = core::ReceiverKind::kPhone;
  phone.tune_offset = units::Hertz{slot_hz};
  sc.receivers.push_back(std::move(phone));

  core::ScenarioReceiver car;
  car.name = "car";
  car.kind = core::ReceiverKind::kCar;
  car.tune_offset = units::Hertz{0.0};
  sc.receivers.push_back(std::move(car));
  return sc;
}

// ---- The sweep --------------------------------------------------------------

struct Point {
  std::string engine;
  double duration_seconds = 0.0;
  double wall_seconds = 0.0;
  double real_time_factor = 0.0;
  double blocks_per_second = 0.0;
  std::size_t peak_rss_kb = 0;
  bool peak_rss_reset = false;
  std::size_t streaming_peak_buffer_bytes = 0;
  double aggregate_goodput_bps = 0.0;
  std::size_t links = 0;
};

std::size_t count_links(const core::ScenarioResult& result) {
  std::size_t n = 0;
  for (const auto& rr : result.receivers) n += rr.links.size();
  return n;
}

/// One timed engine run. The station cache is cleared first so every phase
/// pays (and measures) its own synthesis, and the RSS watermark is reset so
/// the phase reports its own footprint, not a previous phase's.
template <typename RunFn>
Point measure(const std::string& engine, double duration, RunFn&& run) {
  fm::StationCache::instance().clear();
  Point p;
  p.engine = engine;
  p.duration_seconds = duration;
  p.peak_rss_reset = reset_peak_rss();
  const double t0 = now_seconds();
  const core::ScenarioResult result = run(city_scene(duration));
  p.wall_seconds = now_seconds() - t0;
  p.peak_rss_kb = peak_rss_kb();
  p.real_time_factor = duration / p.wall_seconds;
  // The pipeline renders in 0.1 s blocks; block throughput is the simulated
  // block count over the wall time (batch points get the same accounting so
  // the columns compare).
  p.blocks_per_second = (duration / 0.1) / p.wall_seconds;
  p.streaming_peak_buffer_bytes = result.scene.streaming_peak_buffer_bytes;
  p.aggregate_goodput_bps = result.aggregate_goodput_bps;
  p.links = count_links(result);
  return p;
}

core::ScenarioResult run_batch(const core::Scenario& sc) {
  // keep_captures off: the comparison is engine footprint, not result-object
  // audio retention (which would dwarf everything at 120 s).
  return core::ScenarioEngine(core::ScenarioEngineConfig{.keep_captures =
                                                             false})
      .run(sc);
}

core::ScenarioResult run_streaming(const core::Scenario& sc) {
  return core::StreamingEngine(core::StreamingConfig{}).run(sc);
}

std::vector<Point> run_sweep(const std::vector<double>& durations) {
  std::vector<Point> points;
  for (const double d : durations) {
    // Streaming first: its watermark is the small one, so a reset failure
    // (monotone VmHWM) can only make the streaming numbers look *worse*.
    points.push_back(measure("streaming", d, run_streaming));
    points.push_back(measure("batch", d, run_batch));
    const Point& s = points[points.size() - 2];
    const Point& b = points.back();
    std::cerr << "  " << d << " s: streaming " << s.wall_seconds
              << " s wall (RTF " << s.real_time_factor << ", peak "
              << s.peak_rss_kb << " KiB), batch " << b.wall_seconds
              << " s wall (RTF " << b.real_time_factor << ", peak "
              << b.peak_rss_kb << " KiB)\n";
  }
  return points;
}

void write_json(std::ostream& out, const std::vector<Point>& points,
                std::size_t stations) {
  out << "{\n";
  out << "  \"scenario\": \"boston-streaming\",\n";
  out << "  \"stations_in_scene\": " << stations << ",\n";
  out << "  \"receivers\": 2,\n";
  out << "  \"tags\": 2,\n";
  out << "  \"block_seconds\": 0.1,\n";
  out << "  \"consumer_threads\": 1,\n";
  out << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    out << "    {\"engine\": \"" << p.engine << "\", \"duration_seconds\": "
        << p.duration_seconds << ", \"wall_seconds\": " << p.wall_seconds
        << ", \"real_time_factor\": " << p.real_time_factor
        << ", \"blocks_per_second\": " << p.blocks_per_second
        << ", \"peak_rss_kb\": " << p.peak_rss_kb << ", \"peak_rss_reset\": "
        << (p.peak_rss_reset ? "true" : "false")
        << ", \"streaming_peak_buffer_bytes\": "
        << p.streaming_peak_buffer_bytes << ", \"aggregate_goodput_bps\": "
        << p.aggregate_goodput_bps << ", \"links\": " << p.links << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

int run_bench(const std::string& json_path) {
  const std::size_t stations = city_scene(5.0).stations.size();
  std::cerr << "boston city scene: " << stations
            << " stations, 2 tags, 2 receivers\n";
  const std::vector<Point> points = run_sweep({5.0, 30.0, 120.0});
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    write_json(out, points, stations);
    std::cerr << "wrote " << json_path << "\n";
  } else {
    std::cout << "engine     sim_s   wall_s    RTF  blocks/s  peak_MiB"
                 "  stream_buf_MiB\n";
    for (const Point& p : points) {
      std::printf("%-9s %6.0f %8.2f %6.2f %9.1f %9.1f %15.2f\n",
                  p.engine.c_str(), p.duration_seconds, p.wall_seconds,
                  p.real_time_factor, p.blocks_per_second,
                  static_cast<double>(p.peak_rss_kb) / 1024.0,
                  static_cast<double>(p.streaming_peak_buffer_bytes) /
                      (1024.0 * 1024.0));
    }
  }
  return 0;
}

int run_smoke() {
  // 1.8 s keeps the run (plus settle) inside the default 2 s station
  // horizon: the streaming engine takes its exact path, so decoded results
  // must match batch bit for bit. Past the horizon the station program
  // loops by design and only the committed-golden equivalence holds.
  constexpr double kSmokeSeconds = 1.8;
  const Point stream = measure("streaming", kSmokeSeconds, run_streaming);
  const Point batch = measure("batch", kSmokeSeconds, run_batch);
  std::cerr << "smoke: streaming RTF " << stream.real_time_factor
            << ", batch RTF " << batch.real_time_factor << "\n";
  if (stream.links == 0 || batch.links == 0) {
    std::cerr << "FAIL: no decoded links on the city scene\n";
    return 1;
  }
  if (stream.links != batch.links ||
      stream.aggregate_goodput_bps != batch.aggregate_goodput_bps) {
    std::cerr << "FAIL: streaming decode diverges from batch ("
              << stream.links << " links @ " << stream.aggregate_goodput_bps
              << " bps vs " << batch.links << " @ "
              << batch.aggregate_goodput_bps << ")\n";
    return 1;
  }
  if (stream.streaming_peak_buffer_bytes == 0) {
    std::cerr << "FAIL: streaming run reported no bounded-buffer ledger\n";
    return 1;
  }
  if (stream.real_time_factor <= 0.0) {
    std::cerr << "FAIL: nonsensical real-time factor\n";
    return 1;
  }
  std::cerr << "smoke OK: " << stream.links << " links, goodput "
            << stream.aggregate_goodput_bps << " bps\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") return run_smoke();
    if (arg == "--json" && i + 1 < argc) return run_bench(argv[i + 1]);
  }
  return run_bench("");
}
