// Ablations over the design choices DESIGN.md calls out, plus the paper's
// section-8 extensions:
//  1. subcarrier waveform: band-limited square vs hard square vs SSB,
//  2. DCO quantization bits,
//  3. symbol-rate limit (why the paper stops at 400 sym/s),
//  4. program genre sensitivity of overlay data,
//  5. Aloha MAC for multiple tags (section 8),
//  6. harvesting-driven duty cycling (section 8).
// Every ablation axis is one SweepRunner task list; independent points run
// across the worker pool.
#include <cstdio>
#include <iostream>

#include "audio/tone.h"
#include "core/aloha.h"
#include "core/harvesting.h"
#include "core/sweep_runner.h"
#include "dsp/spectrum.h"
#include "rx/fsk_demod.h"
#include "tag/baseband.h"

using namespace fmbs;

namespace {

double tone_snr_for_subcarrier(const tag::SubcarrierConfig& subcarrier) {
  core::ExperimentPoint point;
  point.tag_power = units::Dbm{-30.0};
  point.distance = units::Feet{4.0};
  core::SystemConfig cfg = core::make_system(point);
  cfg.station.program.genre = audio::ProgramGenre::kSilence;
  cfg.station.program.stereo = false;
  cfg.tag.subcarrier = subcarrier;
  const auto tone = audio::make_tone(1000.0, 1.0, 1.0, fm::kAudioRate);
  const auto bb = tag::compose_overlay_baseband(tone, core::kOverlayLevel);
  const auto sim = core::simulate(cfg, bb, units::Seconds{1.0});
  const auto skip = static_cast<std::size_t>(0.1 * fm::kAudioRate);
  return dsp::tone_snr_db(
      std::span<const float>(sim.backscatter_rx.mono.samples)
          .subspan(skip, sim.backscatter_rx.mono.size() - skip),
      fm::kAudioRate, 1000.0, 100.0, 15000.0);
}

}  // namespace

int main() {
  core::SweepRunner runner;

  std::puts("=== Ablation 1: subcarrier waveform model ===");
  {
    struct Mode {
      const char* label;
      tag::SubcarrierMode mode;
    };
    const std::vector<Mode> modes{
        {"band-limited square", tag::SubcarrierMode::kBandlimitedSquare},
        {"hard square (aliasing)", tag::SubcarrierMode::kHardSquare},
        {"single sideband", tag::SubcarrierMode::kSingleSideband},
    };
    const auto snrs = runner.map(modes, [](const Mode& m) {
      tag::SubcarrierConfig sc;
      sc.mode = m.mode;
      return tone_snr_for_subcarrier(sc);
    });
    std::printf("%-28s %12s\n", "waveform", "SNR (dB)");
    for (std::size_t i = 0; i < modes.size(); ++i) {
      std::printf("%-28s %12.1f%s\n", modes[i].label, snrs[i],
                  i == 2 ? "  (footnote 2: SSB removes the mirror copy)" : "");
    }
  }

  std::puts("\n=== Ablation 2: DCO frequency-quantization bits ===");
  {
    const std::vector<int> dco_bits{2, 4, 6, 8, 0};
    const auto snrs = runner.map(dco_bits, [](const int& bits) {
      tag::SubcarrierConfig sc;
      sc.dco_bits = bits;
      return tone_snr_for_subcarrier(sc);
    });
    std::printf("%-12s %12s\n", "bits", "SNR (dB)");
    for (std::size_t i = 0; i < dco_bits.size(); ++i) {
      std::printf("%-12s %12.1f\n",
                  dco_bits[i] == 0 ? "ideal" : std::to_string(dco_bits[i]).c_str(),
                  snrs[i]);
    }
    std::puts("(the paper's 8-bit capacitor bank is effectively ideal)");
  }

  std::puts("\n=== Ablation 3: symbol-rate limit of FDM-4FSK ===");
  std::puts("BER at -58 dBm / 16 ft vs symbol rate (paper: \"BER performance");
  std::puts("degrades significantly when the symbol rates are above 400\"):");
  {
    const std::vector<std::pair<tag::DataRate, double>> plans{
        {tag::DataRate::k1600bps, 200.0}, {tag::DataRate::k3200bps, 400.0}};
    const auto bers =
        runner.map(plans, [](const std::pair<tag::DataRate, double>& plan) {
          core::ExperimentPoint point;
          point.tag_power = units::Dbm{-58.0};
          point.distance = units::Feet{16.0};
          point.genre = audio::ProgramGenre::kNews;
          return core::run_overlay_ber(point, plan.first, 640).ber;
        });
    std::printf("%-16s %10s %10s\n", "symbols/s", "kbps", "BER");
    for (std::size_t i = 0; i < plans.size(); ++i) {
      std::printf("%-16.0f %10.1f %10.4f\n", plans[i].second,
                  tag::bits_per_second(plans[i].first) / 1000.0, bers[i]);
    }
    std::puts("(800 sym/s would need 60 Hz tone spacing discrimination within");
    std::puts(" 1.25 ms symbols — below the Goertzel resolution at 48 kHz,");
    std::puts(" matching the paper's observed cliff)");
  }

  std::puts("\n=== Ablation 4: program genre vs overlay data (1.6 kbps, -58 dBm, 16 ft) ===");
  {
    const std::vector<audio::ProgramGenre> genres{
        audio::ProgramGenre::kNews, audio::ProgramGenre::kMixed,
        audio::ProgramGenre::kPop, audio::ProgramGenre::kRock};
    const auto bers = runner.map(genres, [](const audio::ProgramGenre& genre) {
      core::ExperimentPoint point;
      point.tag_power = units::Dbm{-58.0};
      point.distance = units::Feet{16.0};
      point.genre = genre;
      return core::run_overlay_ber(point, tag::DataRate::k1600bps, 480).ber;
    });
    std::printf("%-12s %10s\n", "genre", "BER");
    for (std::size_t i = 0; i < genres.size(); ++i) {
      std::printf("%-12s %10.4f\n", audio::to_string(genres[i]).c_str(), bers[i]);
    }
  }

  std::puts("\n=== Ablation 5: broadcast emphasis mismatch ===");
  std::puts("Real stations pre-emphasize (+13 dB @ 10 kHz) and receivers");
  std::puts("de-emphasize; the tag cannot pre-emphasize its reflection, so");
  std::puts("its high data tones arrive attenuated relative to the program —");
  std::puts("one reason the paper's measured BERs exceed a clean channel's:");
  {
    const std::vector<bool> emphasis_options{false, true};
    const auto bers = runner.map(emphasis_options, [](const bool& emphasis) {
      core::ExperimentPoint point;
      point.tag_power = units::Dbm{-58.0};
      point.distance = units::Feet{16.0};
      point.genre = audio::ProgramGenre::kMixed;
      core::SystemConfig cfg = core::make_system(point);
      cfg.station.preemphasis = emphasis;
      cfg.stereo_decoder.deemphasis = emphasis;
      const auto bits = tag::random_bits(480, 5);
      const auto wave = tag::modulate_fsk(bits, tag::DataRate::k1600bps,
                                          fm::kAudioRate);
      const auto bb = tag::compose_overlay_baseband(wave, core::kOverlayLevel);
      const auto sim = core::simulate(cfg, bb, units::Seconds{wave.duration_seconds() + 0.15});
      const auto demod = rx::demodulate_fsk(sim.backscatter_rx.mono,
                                            tag::DataRate::k1600bps, bits.size());
      return rx::compare_bits(bits, demod.bits).ber;
    });
    std::printf("%-26s %10s\n", "chain", "BER @1.6k");
    for (std::size_t i = 0; i < emphasis_options.size(); ++i) {
      std::printf("%-26s %10.4f\n",
                  emphasis_options[i] ? "75us emphasis (realistic)"
                                      : "flat (default)",
                  bers[i]);
    }
  }

  std::puts("\n=== Section 8: coding extends range ===");
  std::puts("Payload BER at the 1.6 kbps cliff (-60 dBm / 14 ft); coded");
  std::puts("schemes spend channel bits to push the usable range outward:");
  {
    const std::vector<tag::FecScheme> schemes{
        tag::FecScheme::kNone, tag::FecScheme::kHamming74,
        tag::FecScheme::kConvolutionalK7};
    const auto bers = runner.map(schemes, [](const tag::FecScheme& scheme) {
      core::ExperimentPoint point;
      point.tag_power = units::Dbm{-60.0};
      point.distance = units::Feet{14.0};
      point.genre = audio::ProgramGenre::kNews;
      return core::run_overlay_ber_coded(point, tag::DataRate::k1600bps, 512,
                                         scheme).ber;
    });
    std::printf("%-18s %8s %12s\n", "scheme", "rate", "payload BER");
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      std::printf("%-18s %8.2f %12.4f\n", tag::to_string(schemes[i]),
                  tag::fec_rate(schemes[i]), bers[i]);
    }
  }

  std::puts("\n=== Section 8: Aloha MAC for multiple tags ===");
  {
    const std::vector<std::pair<int, int>> populations{
        {5, 1}, {20, 1}, {20, 4}, {40, 8}};
    const auto results =
        runner.map(populations, [](const std::pair<int, int>& pop) {
          core::AlohaConfig cfg;
          cfg.num_tags = static_cast<std::size_t>(pop.first);
          cfg.num_channels = static_cast<std::size_t>(pop.second);
          cfg.per_tag_rate = units::Hertz{0.05};
          cfg.duration = units::Seconds{20000.0};
          return core::simulate_aloha(cfg);
        });
    std::printf("%-10s %12s %12s %14s\n", "tags", "channels", "throughput",
                "P(success)");
    for (std::size_t i = 0; i < populations.size(); ++i) {
      std::printf("%-10d %12d %12.3f %14.3f\n", populations[i].first,
                  populations[i].second, results[i].throughput,
                  results[i].success_probability);
    }
  }

  std::puts("\n=== Section 8: harvesting-driven duty cycle ===");
  std::printf("%-34s %12s %12s\n", "source", "duty cycle", "eff. bps@3.2k");
  {
    core::HarvestConfig rf;
    rf.rf_power = units::Dbm{-20.0};
    core::HarvestConfig sun;
    sun.rf_power = units::Dbm{-40.0};
    sun.solar_area_cm2 = 4.0;
    sun.solar_irradiance_uw_per_cm2 = 10000.0;  // direct sun
    const auto results = runner.map(
        std::vector<core::HarvestConfig>{rf, sun},
        [](const core::HarvestConfig& cfg) {
          return core::sustainable_duty_cycle(cfg);
        });
    std::printf("%-34s %12.3f %12.0f\n", "RF harvest @ -20 dBm",
                results[0].sustainable_duty_cycle, results[0].effective_bps_3200);
    std::printf("%-34s %12.3f %12.0f\n", "4 cm^2 solar, outdoors",
                results[1].sustainable_duty_cycle, results[1].effective_bps_3200);
  }
  return 0;
}
