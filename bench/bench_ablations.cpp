// Ablations over the design choices DESIGN.md calls out, plus the paper's
// section-8 extensions:
//  1. subcarrier waveform: band-limited square vs hard square vs SSB,
//  2. DCO quantization bits,
//  3. symbol-rate limit (why the paper stops at 400 sym/s),
//  4. program genre sensitivity of overlay data,
//  5. Aloha MAC for multiple tags (section 8),
//  6. harvesting-driven duty cycling (section 8).
#include <cstdio>
#include <iostream>

#include "audio/tone.h"
#include "core/aloha.h"
#include "core/experiment.h"
#include "core/harvesting.h"
#include "dsp/spectrum.h"
#include "rx/fsk_demod.h"
#include "tag/baseband.h"

using namespace fmbs;

namespace {

double tone_snr_for_mode(tag::SubcarrierMode mode, int max_harmonic) {
  core::ExperimentPoint point;
  point.tag_power_dbm = -30.0;
  point.distance_feet = 4.0;
  core::SystemConfig cfg = core::make_system(point);
  cfg.station.program.genre = audio::ProgramGenre::kSilence;
  cfg.station.program.stereo = false;
  cfg.tag.subcarrier.mode = mode;
  cfg.tag.subcarrier.max_harmonic = max_harmonic;
  const auto tone = audio::make_tone(1000.0, 1.0, 1.0, fm::kAudioRate);
  const auto bb = tag::compose_overlay_baseband(tone, core::kOverlayLevel);
  const auto sim = core::simulate(cfg, bb, 1.0);
  const auto skip = static_cast<std::size_t>(0.1 * fm::kAudioRate);
  return dsp::tone_snr_db(
      std::span<const float>(sim.backscatter_rx.mono.samples)
          .subspan(skip, sim.backscatter_rx.mono.size() - skip),
      fm::kAudioRate, 1000.0, 100.0, 15000.0);
}

}  // namespace

int main() {
  std::puts("=== Ablation 1: subcarrier waveform model ===");
  std::printf("%-28s %12s\n", "waveform", "SNR (dB)");
  std::printf("%-28s %12.1f\n", "band-limited square",
              tone_snr_for_mode(tag::SubcarrierMode::kBandlimitedSquare, 0));
  std::printf("%-28s %12.1f\n", "hard square (aliasing)",
              tone_snr_for_mode(tag::SubcarrierMode::kHardSquare, 0));
  std::printf("%-28s %12.1f  (footnote 2: SSB removes the mirror copy)\n",
              "single sideband",
              tone_snr_for_mode(tag::SubcarrierMode::kSingleSideband, 0));

  std::puts("\n=== Ablation 2: DCO frequency-quantization bits ===");
  std::printf("%-12s %12s\n", "bits", "SNR (dB)");
  for (const int bits : {2, 4, 6, 8, 0}) {
    core::ExperimentPoint point;
    point.tag_power_dbm = -30.0;
    point.distance_feet = 4.0;
    core::SystemConfig cfg = core::make_system(point);
    cfg.station.program.genre = audio::ProgramGenre::kSilence;
    cfg.station.program.stereo = false;
    cfg.tag.subcarrier.dco_bits = bits;
    const auto tone = audio::make_tone(1000.0, 1.0, 1.0, fm::kAudioRate);
    const auto bb = tag::compose_overlay_baseband(tone, core::kOverlayLevel);
    const auto sim = core::simulate(cfg, bb, 1.0);
    const auto skip = static_cast<std::size_t>(0.1 * fm::kAudioRate);
    const double snr = dsp::tone_snr_db(
        std::span<const float>(sim.backscatter_rx.mono.samples)
            .subspan(skip, sim.backscatter_rx.mono.size() - skip),
        fm::kAudioRate, 1000.0, 100.0, 15000.0);
    std::printf("%-12s %12.1f\n", bits == 0 ? "ideal" : std::to_string(bits).c_str(),
                snr);
  }
  std::puts("(the paper's 8-bit capacitor bank is effectively ideal)");

  std::puts("\n=== Ablation 3: symbol-rate limit of FDM-4FSK ===");
  std::puts("BER at -58 dBm / 16 ft vs symbol rate (paper: \"BER performance");
  std::puts("degrades significantly when the symbol rates are above 400\"):");
  std::printf("%-16s %10s %10s\n", "symbols/s", "kbps", "BER");
  for (const auto& [rate, label] :
       {std::pair{tag::DataRate::k1600bps, 200.0},
        std::pair{tag::DataRate::k3200bps, 400.0}}) {
    core::ExperimentPoint point;
    point.tag_power_dbm = -58.0;
    point.distance_feet = 16.0;
    point.genre = audio::ProgramGenre::kNews;
    const auto r = core::run_overlay_ber(point, rate, 640);
    std::printf("%-16.0f %10.1f %10.4f\n", label,
                tag::bits_per_second(rate) / 1000.0, r.ber);
  }
  std::puts("(800 sym/s would need 60 Hz tone spacing discrimination within");
  std::puts(" 1.25 ms symbols — below the Goertzel resolution at 48 kHz,");
  std::puts(" matching the paper's observed cliff)");

  std::puts("\n=== Ablation 4: program genre vs overlay data (1.6 kbps, -58 dBm, 16 ft) ===");
  std::printf("%-12s %10s\n", "genre", "BER");
  for (const auto genre :
       {audio::ProgramGenre::kNews, audio::ProgramGenre::kMixed,
        audio::ProgramGenre::kPop, audio::ProgramGenre::kRock}) {
    core::ExperimentPoint point;
    point.tag_power_dbm = -58.0;
    point.distance_feet = 16.0;
    point.genre = genre;
    const auto r = core::run_overlay_ber(point, tag::DataRate::k1600bps, 480);
    std::printf("%-12s %10.4f\n", audio::to_string(genre).c_str(), r.ber);
  }

  std::puts("\n=== Ablation 5: broadcast emphasis mismatch ===");
  std::puts("Real stations pre-emphasize (+13 dB @ 10 kHz) and receivers");
  std::puts("de-emphasize; the tag cannot pre-emphasize its reflection, so");
  std::puts("its high data tones arrive attenuated relative to the program —");
  std::puts("one reason the paper's measured BERs exceed a clean channel's:");
  std::printf("%-26s %10s\n", "chain", "BER @1.6k");
  for (const bool emphasis : {false, true}) {
    core::ExperimentPoint point;
    point.tag_power_dbm = -58.0;
    point.distance_feet = 16.0;
    point.genre = audio::ProgramGenre::kMixed;
    core::SystemConfig cfg = core::make_system(point);
    cfg.station.preemphasis = emphasis;
    cfg.stereo_decoder.deemphasis = emphasis;
    const auto bits = tag::random_bits(480, 5);
    const auto wave = tag::modulate_fsk(bits, tag::DataRate::k1600bps,
                                        fm::kAudioRate);
    const auto bb = tag::compose_overlay_baseband(wave, core::kOverlayLevel);
    const auto sim = core::simulate(cfg, bb, wave.duration_seconds() + 0.15);
    const auto demod = rx::demodulate_fsk(sim.backscatter_rx.mono,
                                          tag::DataRate::k1600bps, bits.size());
    const auto ber = rx::compare_bits(bits, demod.bits);
    std::printf("%-26s %10.4f\n",
                emphasis ? "75us emphasis (realistic)" : "flat (default)",
                ber.ber);
  }

  std::puts("\n=== Section 8: coding extends range ===");
  std::puts("Payload BER at the 1.6 kbps cliff (-60 dBm / 14 ft); coded");
  std::puts("schemes spend channel bits to push the usable range outward:");
  std::printf("%-18s %8s %12s\n", "scheme", "rate", "payload BER");
  for (const auto scheme :
       {tag::FecScheme::kNone, tag::FecScheme::kHamming74,
        tag::FecScheme::kConvolutionalK7}) {
    core::ExperimentPoint point;
    point.tag_power_dbm = -60.0;
    point.distance_feet = 14.0;
    point.genre = audio::ProgramGenre::kNews;
    const auto r = core::run_overlay_ber_coded(point, tag::DataRate::k1600bps,
                                               512, scheme);
    std::printf("%-18s %8.2f %12.4f\n", tag::to_string(scheme),
                tag::fec_rate(scheme), r.ber);
  }

  std::puts("\n=== Section 8: Aloha MAC for multiple tags ===");
  std::printf("%-10s %12s %12s %14s\n", "tags", "channels", "throughput",
              "P(success)");
  for (const auto& [tags, channels] :
       {std::pair{5, 1}, std::pair{20, 1}, std::pair{20, 4}, std::pair{40, 8}}) {
    core::AlohaConfig cfg;
    cfg.num_tags = static_cast<std::size_t>(tags);
    cfg.num_channels = static_cast<std::size_t>(channels);
    cfg.per_tag_rate_hz = 0.05;
    cfg.duration_seconds = 20000.0;
    const auto r = core::simulate_aloha(cfg);
    std::printf("%-10d %12d %12.3f %14.3f\n", tags, channels, r.throughput,
                r.success_probability);
  }

  std::puts("\n=== Section 8: harvesting-driven duty cycle ===");
  std::printf("%-34s %12s %12s\n", "source", "duty cycle", "eff. bps@3.2k");
  {
    core::HarvestConfig rf;
    rf.rf_power_dbm = -20.0;
    const auto r = core::sustainable_duty_cycle(rf);
    std::printf("%-34s %12.3f %12.0f\n", "RF harvest @ -20 dBm", r.sustainable_duty_cycle,
                r.effective_bps_3200);
  }
  {
    core::HarvestConfig sun;
    sun.rf_power_dbm = -40.0;
    sun.solar_area_cm2 = 4.0;
    sun.solar_irradiance_uw_per_cm2 = 10000.0;  // direct sun
    const auto r = core::sustainable_duty_cycle(sun);
    std::printf("%-34s %12.3f %12.0f\n", "4 cm^2 solar, outdoors",
                r.sustainable_duty_cycle, r.effective_bps_3200);
  }
  return 0;
}
