// Fig. 9 — BER with maximal-ratio combining at 1.6 kbps, -40 dBm (paper:
// combining two transmissions already reduces BER significantly; the
// ambient program acts as uncorrelated noise across repetitions).
#include <iostream>

#include "core/sweep_runner.h"

int main() {
  using namespace fmbs;

  const std::vector<double> distances_ft{4, 8, 12, 16, 20};
  const std::vector<std::size_t> repetitions{1, 2, 3, 4};
  const std::size_t bits = 480;

  std::vector<core::GridRow> rows;
  for (const std::size_t reps : repetitions) {
    rows.push_back({reps == 1 ? "No MRC" : std::to_string(reps) + "x MRC",
                    [](double d) {
                      core::ExperimentPoint point;
                      point.tag_power_dbm = -40.0;
                      point.distance_feet = d;
                      point.genre = audio::ProgramGenre::kNews;
                      return point;
                    },
                    [reps, bits](const core::ExperimentPoint& pt, double) {
                      return reps == 1
                                 ? core::run_overlay_ber(
                                       pt, tag::DataRate::k1600bps, bits).ber
                                 : core::run_overlay_ber_mrc(
                                       pt, tag::DataRate::k1600bps, bits, reps).ber;
                    }});
  }
  core::SweepRunner runner;
  const auto series = runner.run_grid(rows, distances_ft);

  std::cout << "Fig. 9: BER with MRC, 1.6 kbps @ -40 dBm\n"
               "(paper: 2x combining already gives most of the gain)\n\n";
  core::print_table(std::cout, "Fig 9: BER vs distance with MRC", "dist_ft",
                    distances_ft, series, 4);
  return 0;
}
