// Fig. 9 — BER with maximal-ratio combining at 1.6 kbps, -40 dBm (paper:
// combining two transmissions already reduces BER significantly; the
// ambient program acts as uncorrelated noise across repetitions).
#include <iostream>

#include "core/experiment.h"

int main() {
  using namespace fmbs;

  const std::vector<double> distances_ft{4, 8, 12, 16, 20};
  const std::vector<std::size_t> repetitions{1, 2, 3, 4};
  const std::size_t bits = 480;

  std::vector<core::Series> series;
  for (const std::size_t reps : repetitions) {
    core::Series s;
    s.label = reps == 1 ? "No MRC" : std::to_string(reps) + "x MRC";
    for (const double d : distances_ft) {
      core::ExperimentPoint point;
      point.tag_power_dbm = -40.0;
      point.distance_feet = d;
      point.genre = audio::ProgramGenre::kNews;
      point.seed = static_cast<std::uint64_t>(d * 13 + reps);
      const auto r =
          reps == 1
              ? core::run_overlay_ber(point, tag::DataRate::k1600bps, bits)
              : core::run_overlay_ber_mrc(point, tag::DataRate::k1600bps, bits, reps);
      s.values.push_back(r.ber);
    }
    series.push_back(std::move(s));
  }

  std::cout << "Fig. 9: BER with MRC, 1.6 kbps @ -40 dBm\n"
               "(paper: 2x combining already gives most of the gain)\n\n";
  core::print_table(std::cout, "Fig 9: BER vs distance with MRC", "dist_ft",
                    distances_ft, series, 4);
  return 0;
}
