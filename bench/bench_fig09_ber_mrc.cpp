// Fig. 9 — BER with maximal-ratio combining at 1.6 kbps, -40 dBm (paper:
// combining two transmissions already reduces BER significantly; the
// ambient program acts as uncorrelated noise across repetitions).
//
// Runs as a scenario-level sweep (finishing the migration started with
// fig07/fig08): each grid cell is a one-tag Scenario whose custom baseband
// carries the N repetitions, pushed through the ScenarioEngine by
// core::run_scenario_grid — per-cell seeds derive from the grid position
// and every cell shares one cached station render. The MRC combine +
// demodulate measurement runs in the cell's eval, exactly as the legacy
// harness did it.
#include <iostream>

#include "audio/tone.h"
#include "core/scenario.h"
#include "rx/mrc.h"
#include "tag/baseband.h"

namespace {

using namespace fmbs;

constexpr double kSettleSeconds = 0.08;  // receiver warm-up lead-in
constexpr std::size_t kBits = 480;
constexpr tag::DataRate kRate = tag::DataRate::k1600bps;

/// Per-cell payload content: deterministic in the grid position, shared by
/// the scenario factory and the eval without threading state between them.
std::vector<std::uint8_t> cell_bits(std::size_t reps, double distance_ft) {
  return tag::random_bits(
      kBits, core::derive_seed(0xF19, reps * 1000 +
                                          static_cast<std::uint64_t>(
                                              distance_ft * 10.0)));
}

audio::MonoBuffer repeated_payload(const std::vector<std::uint8_t>& bits,
                                   std::size_t reps) {
  const audio::MonoBuffer one = tag::modulate_fsk(bits, kRate, fm::kAudioRate);
  audio::MonoBuffer all = one;
  for (std::size_t r = 1; r < reps; ++r) all = audio::concat(all, one);
  return all;
}

core::Scenario mrc_scenario(std::size_t reps, double distance_ft) {
  core::Scenario sc;
  sc.name = "fig09";
  sc.seed = 0;          // derived per grid cell by the sweep seed policy
  sc.station.seed = 0;  // pinned sweep-wide: one shared station render
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.settle = units::Seconds{0.0};  // the lead-in lives inside the custom baseband

  const audio::MonoBuffer all =
      repeated_payload(cell_bits(reps, distance_ft), reps);
  sc.duration = units::Seconds{all.duration_seconds() + kSettleSeconds + 0.15};

  core::ScenarioTag t;
  t.name = "mrc-tag";
  t.custom_baseband = tag::compose_overlay_baseband(
      audio::concat(audio::make_silence(kSettleSeconds, fm::kAudioRate), all),
      core::kOverlayLevel);
  t.tag_power = units::Dbm{-40.0};
  t.distance_override = units::Feet{distance_ft};
  sc.tags.push_back(std::move(t));
  sc.receivers.push_back(core::phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

double mrc_ber(const core::ScenarioResult& result, std::size_t reps,
               double distance_ft) {
  const std::vector<std::uint8_t> bits = cell_bits(reps, distance_ft);
  const audio::MonoBuffer& full = result.receivers[0].capture.mono;
  // Drop the warm-up lead-in, then trim the padding tail so the N segments
  // tile exactly for the combiner.
  const auto skip = static_cast<std::size_t>(kSettleSeconds * fm::kAudioRate);
  const double payload_seconds =
      repeated_payload(bits, reps).duration_seconds();
  const auto payload_samples =
      static_cast<std::size_t>(payload_seconds * fm::kAudioRate);
  audio::MonoBuffer mono(
      std::vector<float>(
          full.samples.begin() + static_cast<std::ptrdiff_t>(skip),
          full.samples.begin() +
              static_cast<std::ptrdiff_t>(
                  std::min(full.size(), skip + payload_samples))),
      fm::kAudioRate);
  audio::MonoBuffer combined =
      reps == 1 ? mono : rx::mrc_combine(mono, reps, 0);
  // The pipeline group delay pushes the last symbol just past the trimmed
  // buffer; repetitions are cyclic, so the head restores the tail.
  const std::size_t extra = std::min<std::size_t>(combined.size(), 480);
  combined.samples.insert(
      combined.samples.end(), combined.samples.begin(),
      combined.samples.begin() + static_cast<std::ptrdiff_t>(extra));
  const rx::FskDemodResult demod =
      rx::demodulate_fsk(combined, kRate, bits.size());
  return rx::compare_bits(bits, demod.bits).ber;
}

}  // namespace

int main() {
  const std::vector<double> distances_ft{4, 8, 12, 16, 20};
  const std::vector<std::size_t> repetitions{1, 2, 3, 4};

  std::vector<core::ScenarioGridRow> rows;
  for (const std::size_t reps : repetitions) {
    rows.push_back({reps == 1 ? "No MRC" : std::to_string(reps) + "x MRC",
                    [reps](double d) { return mrc_scenario(reps, d); },
                    [reps](const core::ScenarioResult& result, double d) {
                      return mrc_ber(result, reps, d);
                    }});
  }
  core::SweepRunner runner;
  const core::ScenarioEngine engine;  // captures kept: the combiner needs audio
  const auto series = core::run_scenario_grid(runner, engine, rows, distances_ft);

  std::cout << "Fig. 9: BER with MRC, 1.6 kbps @ -40 dBm\n"
               "(paper: 2x combining already gives most of the gain)\n\n";
  core::print_table(std::cout, "Fig 9: BER vs distance with MRC", "dist_ft",
                    distances_ft, series, 4);
  return 0;
}
