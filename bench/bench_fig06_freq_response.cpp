// Fig. 6 — SNR vs backscattered tone frequency for the mono and stereo
// paths (paper: good response below 13 kHz, then a sharp drop caused by the
// phone's recording chain; measured at -20 dBm, 4 ft, on a carrier with no
// program audio).
#include <iostream>

#include "core/sweep_runner.h"

int main() {
  using namespace fmbs;

  const std::vector<double> tones_hz{500,  1000, 2000,  4000,  6000, 8000,
                                     10000, 12000, 13000, 14000, 15000};

  const auto make_point = [](double) {
    core::ExperimentPoint point;
    point.tag_power = units::Dbm{-20.0};
    point.distance = units::Feet{4.0};
    return point;
  };
  core::SweepRunner runner;
  const auto series = runner.run_grid(
      {
          {"mono_band", make_point,
           [](const core::ExperimentPoint& pt, double tone_hz) {
             return core::run_tone_snr(pt, units::Hertz{tone_hz}, /*stereo_band=*/false, units::Seconds{1.0});
           }},
          // The stereo (L-R) path only carries audio content up to 15 kHz;
          // the tone itself must stay in band after DSB modulation at 38 kHz.
          {"stereo_band", make_point,
           [](const core::ExperimentPoint& pt, double tone_hz) {
             return core::run_tone_snr(pt, units::Hertz{tone_hz}, /*stereo_band=*/true, units::Seconds{1.0});
           }},
      },
      tones_hz);

  std::cout << "Fig. 6: received SNR vs backscattered audio frequency\n"
               "(paper: flat and high below ~13 kHz, sharp drop after; the\n"
               " stereo band behaves like the mono band)\n\n";
  core::print_table(std::cout, "Fig 6: SNR (dB) vs tone frequency", "tone_Hz",
                    tones_hz, series, 1);
  return 0;
}
