// Fig. 5 — CDF of the power broadcast in the stereo (L-R) band of stations
// of different genres, relative to the noise reference at 16-18 kHz.
// Paper: news/information stations have very low stereo-band energy (the
// same speech plays on both channels), music stations have much more —
// the observation that motivates stereo backscatter.
#include <cstdio>
#include <iostream>

#include "audio/program.h"
#include "core/sweep_runner.h"
#include "dsp/math_util.h"
#include "dsp/spectrum.h"
#include "fm/constants.h"
#include "fm/mpx.h"

int main() {
  using namespace fmbs;

  std::puts("Fig. 5: P_stereo / P_noise(16-18 kHz) per program genre");
  std::puts("(paper: news lowest, rock/pop highest; measured on the composite");
  std::puts(" MPX over 2-second windows of a long synthetic broadcast)\n");

  const std::vector<audio::ProgramGenre> genres{
      audio::ProgramGenre::kNews, audio::ProgramGenre::kMixed,
      audio::ProgramGenre::kPop, audio::ProgramGenre::kRock};

  const double total_seconds = 48.0;  // paper used 24 h; shape needs far less
  const double window_seconds = 2.0;
  const std::vector<double> probs{0.1, 0.25, 0.5, 0.75, 0.9};

  // One long broadcast per genre; the four renders are independent and heavy
  // (48 s of audio + MPX each), so each genre is one sweep task.
  core::SweepRunner runner;
  const auto series = runner.map(genres, [&](const audio::ProgramGenre& genre) {
    audio::ProgramConfig pcfg;
    pcfg.genre = genre;
    pcfg.stereo = true;
    const auto program =
        audio::render_program(pcfg, total_seconds, fm::kAudioRate, 505);
    const auto mpx = fm::compose_mpx(program, fm::MpxConfig{});

    const auto win = static_cast<std::size_t>(window_seconds * fm::kMpxRate);
    std::vector<double> ratios_db;
    for (std::size_t start = 0; start + win <= mpx.size(); start += win) {
      const std::span<const float> block(mpx.data() + start, win);
      const double p_stereo =
          dsp::band_power(block, fm::kMpxRate, fm::kStereoBandLoHz,
                          fm::kStereoBandHiHz);
      const double p_noise =
          dsp::band_power(block, fm::kMpxRate, 16000.0, 18000.0);
      ratios_db.push_back(
          dsp::db_from_power_ratio(p_stereo / std::max(p_noise, 1e-20)));
    }
    return core::Series{audio::to_string(genre), dsp::cdf_at(ratios_db, probs)};
  });
  core::print_table(std::cout, "Fig 5: P_stereo/P_noise (dB) CDF", "CDF",
                    probs, series, 1);
  std::puts("\n(ordering check: news << mixed < pop <= rock, as in the paper)");
  return 0;
}
