// Fig. 17b — Smart fabric BER while standing / walking (1 m/s) / running
// (2.2 m/s), with the conductive-thread shirt antenna at -35..-40 dBm
// ambient power (paper: 100 bps under 0.005 even when running; 1.6 kbps
// with 2x MRC ~0.02 standing, growing with motion).
#include <cstdio>
#include <iostream>

#include "core/sweep_runner.h"

int main() {
  using namespace fmbs;

  struct Scheme {
    const char* label;
    tag::DataRate rate;
    std::size_t bits;
    std::size_t mrc;
  };
  const std::vector<Scheme> schemes{
      {"100bps", tag::DataRate::k100bps, 400, 1},
      {"1.6kbps w/ 2x MRC", tag::DataRate::k1600bps, 1600, 2},
  };
  const std::vector<std::pair<const char*, channel::Mobility>> mobilities{
      {"Standing", channel::Mobility::kStanding},
      {"Walking", channel::Mobility::kWalking},
      {"Running", channel::Mobility::kRunning},
  };
  // Motion fading is bursty (stride-rate shadowing), so each cell averages
  // several capture realizations; every capture is one independent task in
  // the sweep. The capture seeds repeat across schemes and mobilities
  // (common random numbers): every cell sees the same realizations, so the
  // cross-scheme comparison is paired and the numbers match the original
  // serial loop bit for bit — the station cache still shares each seed's
  // render across all cells that use it.
  const std::vector<std::uint64_t> seeds{99, 100, 101};

  struct Capture {
    std::size_t scheme;
    std::size_t mobility;
    std::uint64_t seed;
  };
  std::vector<Capture> captures;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    for (std::size_t m = 0; m < mobilities.size(); ++m) {
      for (const std::uint64_t seed : seeds) {
        captures.push_back({s, m, seed});
      }
    }
  }

  core::SweepRunner runner;
  const auto results = runner.map(captures, [&](const Capture& cap) {
    const Scheme& scheme = schemes[cap.scheme];
    return core::run_fabric_ber(mobilities[cap.mobility].second, scheme.rate,
                                scheme.bits, scheme.mrc, cap.seed);
  });

  std::cout << "Fig. 17b: smart-fabric BER (t-shirt antenna, worn, -37.5 dBm)\n"
               "(paper: 100 bps < 0.005 even running; 1.6 kbps+2xMRC ~0.02\n"
               " standing and increases with motion)\n\n";
  std::printf("%-20s %12s %12s %12s\n", "scheme", "Standing", "Walking",
              "Running");
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::printf("%-20s", schemes[s].label);
    for (std::size_t m = 0; m < mobilities.size(); ++m) {
      std::size_t errors = 0, bits = 0;
      for (std::size_t i = 0; i < captures.size(); ++i) {
        if (captures[i].scheme == s && captures[i].mobility == m) {
          errors += results[i].bit_errors;
          bits += results[i].bits_compared;
        }
      }
      std::printf(" %12.4f",
                  static_cast<double>(errors) / static_cast<double>(bits));
    }
    std::printf("\n");
  }
  return 0;
}
