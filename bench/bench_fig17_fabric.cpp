// Fig. 17b — Smart fabric BER while standing / walking (1 m/s) / running
// (2.2 m/s), with the conductive-thread shirt antenna at -35..-40 dBm
// ambient power (paper: 100 bps under 0.005 even when running; 1.6 kbps
// with 2x MRC ~0.02 standing, growing with motion).
#include <cstdio>
#include <iostream>

#include "core/experiment.h"

int main() {
  using namespace fmbs;

  struct Scheme {
    const char* label;
    tag::DataRate rate;
    std::size_t bits;
    std::size_t mrc;
  };
  const std::vector<Scheme> schemes{
      {"100bps", tag::DataRate::k100bps, 400, 1},
      {"1.6kbps w/ 2x MRC", tag::DataRate::k1600bps, 1600, 2},
  };
  const std::vector<std::pair<const char*, channel::Mobility>> mobilities{
      {"Standing", channel::Mobility::kStanding},
      {"Walking", channel::Mobility::kWalking},
      {"Running", channel::Mobility::kRunning},
  };
  // Motion fading is bursty (stride-rate shadowing), so each point averages
  // several capture realizations.
  const std::vector<std::uint64_t> seeds{99, 100, 101};

  std::cout << "Fig. 17b: smart-fabric BER (t-shirt antenna, worn, -37.5 dBm)\n"
               "(paper: 100 bps < 0.005 even running; 1.6 kbps+2xMRC ~0.02\n"
               " standing and increases with motion)\n\n";
  std::printf("%-20s %12s %12s %12s\n", "scheme", "Standing", "Walking",
              "Running");
  for (const auto& scheme : schemes) {
    std::printf("%-20s", scheme.label);
    for (const auto& [name, mobility] : mobilities) {
      (void)name;
      std::size_t errors = 0, bits = 0;
      for (const auto seed : seeds) {
        const auto r = core::run_fabric_ber(mobility, scheme.rate, scheme.bits,
                                            scheme.mrc, seed);
        errors += r.bit_errors;
        bits += r.bits_compared;
      }
      std::printf(" %12.4f", static_cast<double>(errors) /
                                 static_cast<double>(bits));
    }
    std::printf("\n");
  }
  return 0;
}
