// Metro-scale fleet capacity (paper section 8): aggregate goodput and
// delivery latency versus tag density over the survey-driven Boston band,
// at 10^2..10^5 tags — two to three orders of magnitude past what the
// signal-level ScenarioEngine can render — through the hybrid
// core::FleetEngine.
//
// Modes:
//   (default)            capacity curve on a reduced grid, human-readable
//   --json <path>        full 10^2..10^5 curve + full-PHY speedup
//                        accounting, written as JSON (CI's bench-baselines
//                        job regenerates BENCH_fleet.json with this)
//   --smoke              fast acceptance run (CI build-and-test step):
//                        small fleet through the hybrid, sanity-checked
//   --calibrate          refit the analytic FSK calibration against the
//                        PHY demodulator and print the constants pinned in
//                        rx/analytic_fsk.cpp (run after touching the
//                        demodulator or the link budget)
//
// The speedup number is honest about what it compares: the full-PHY cost of
// a 10^4-tag, 30 s Boston point is *projected* from two measured small-N
// renders (wall time is affine in tag count at fixed duration and linear in
// duration), because actually rendering it would take hours.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fmbs.h"
#include "fm/station_cache.h"

namespace {

using namespace fmbs;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- The survey-driven Boston band ------------------------------------------

/// The densest in-scene slice of the surveyed Boston band (same selection as
/// bench_scenario_multitag's city-scale scene).
std::vector<core::ScenarioStation> boston_band() {
  const auto cities = survey::builtin_city_spectra();
  const survey::CitySpectrum* boston = nullptr;
  for (const auto& city : cities) {
    if (city.name == "Boston") boston = &city;
  }
  if (boston == nullptr) throw std::runtime_error("no Boston survey");
  core::SurveySceneReport report;
  for (const int channel : boston->detectable_channels) {
    core::SurveySceneReport candidate =
        core::stations_from_survey_report(*boston, channel);
    if (candidate.stations.size() > report.stations.size()) {
      report = std::move(candidate);
    }
  }
  return report.stations;
}

/// Backscatter slots a coordinated metro deployment would use: 100 kHz grid
/// positions one full channel spacing clear of every licensed carrier,
/// reachable by some station with a legal SSB shift (400 kHz..1 MHz), and
/// pairwise a full channel spacing apart so each slot's gateway receiver
/// never sits in another slot's tuner neighborhood.
struct FleetSlot {
  double offset_hz = 0.0;
  std::vector<std::size_t> feeders;  ///< stations that can reach this slot
};

std::vector<FleetSlot> gateway_slots(
    const std::vector<core::ScenarioStation>& stations) {
  std::vector<FleetSlot> slots;
  for (double c = -1000e3; c <= 1000e3 + 1.0; c += 100e3) {
    if (std::abs(c) > core::kMaxStationOffsetHz) continue;
    double min_dist = 1e12;
    for (const auto& st : stations) {
      min_dist = std::min(min_dist, std::abs(c - st.offset.raw()));
    }
    if (min_dist < fm::kChannelSpacingHz - 1e-6) continue;
    FleetSlot slot;
    slot.offset_hz = c;
    for (std::size_t s = 0; s < stations.size(); ++s) {
      const double shift = c - stations[s].offset.raw();
      if (std::abs(shift) >= 400e3 - 1e-6 && std::abs(shift) <= 1000e3 + 1e-6) {
        slot.feeders.push_back(s);
      }
    }
    if (slot.feeders.empty()) continue;
    if (!slots.empty() &&
        std::abs(c - slots.back().offset_hz) < fm::kChannelSpacingHz - 1e-6) {
      continue;
    }
    slots.push_back(std::move(slot));
  }
  if (slots.empty()) throw std::runtime_error("no gateway slots in the band");
  return slots;
}

constexpr std::size_t kBurstBits = 128;  // 0.08 s at 1.6 kbps
constexpr std::size_t kPacketBits = 64;

/// `num_tags` posters spread round-robin over the band's gateway slots, one
/// gateway phone per slot, every tag bursting once at a uniformly random
/// time in the window — the fleet's offered load is num_tags bursts per
/// `duration` seconds.
core::Scenario fleet_scenario(const std::vector<core::ScenarioStation>& band,
                              const std::vector<FleetSlot>& slots,
                              std::size_t num_tags, double duration,
                              bool slotted, std::uint64_t seed) {
  core::Scenario sc;
  sc.name = (slotted ? std::string("fleet-slotted") : std::string("fleet")) +
            std::to_string(num_tags);
  sc.stations = band;
  sc.seed = seed;
  sc.duration = units::Seconds{duration};

  const double burst_seconds =
      tag::fsk_burst_seconds(kBurstBits, tag::DataRate::k1600bps, fm::kMpxRate);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> at(0.0, duration - burst_seconds -
                                                     2.0 * core::kBurstGuardSeconds);
  for (std::size_t i = 0; i < num_tags; ++i) {
    const FleetSlot& slot = slots[i % slots.size()];
    const std::size_t s = slot.feeders[(i / slots.size()) % slot.feeders.size()];
    core::ScenarioTag t;
    t.name = "tag" + std::to_string(i);
    t.station_index = static_cast<int>(s);
    t.subcarrier.shift = units::Hertz{slot.offset_hz - sc.stations[s].offset.raw()};
    t.subcarrier.mode = tag::SubcarrierMode::kSingleSideband;
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = kBurstBits;
    t.packet_bits = kPacketBits;
    // Poster-to-gateway walk-up distances vary a little, so same-slot
    // bursts arrive at distinct powers (4..8 ft).
    t.distance_override = units::Feet{4.0 + static_cast<double>(i % 5)};
    t.start = units::Seconds{at(rng)};
    if (slotted) t.mac.kind = tag::MacKind::kSlottedAloha;
    sc.tags.push_back(std::move(t));
  }
  for (const FleetSlot& slot : slots) {
    core::ScenarioReceiver phone;
    phone.name = "gateway@" + std::to_string(slot.offset_hz / 1e3) + "kHz";
    phone.kind = core::ReceiverKind::kPhone;
    phone.tune_offset = units::Hertz{slot.offset_hz};
    sc.receivers.push_back(std::move(phone));
  }
  return sc;
}

// ---- Calibration: fit the analytic curve against the PHY --------------------

/// Runs one single-tag scene through the signal-level engine and returns
/// (in-channel SNR dB, PHY BER) for the link.
std::pair<double, double> phy_ber_point(tag::DataRate rate, double distance_ft,
                                        std::size_t num_bits,
                                        std::uint64_t seed,
                                        double noise_dbm_override) {
  core::Scenario sc;
  sc.name = "cal";
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 7;
  sc.seed = seed;
  core::ScenarioTag t;
  t.name = "cal-tag";
  t.rate = rate;
  t.num_bits = num_bits;
  t.tag_power = units::Dbm{-30.0};
  t.distance_override = units::Feet{distance_ft};
  sc.tags.push_back(t);
  sc.duration = units::Seconds{
      tag::fsk_burst_seconds(num_bits, rate, fm::kMpxRate) + 4.0 * core::kBurstGuardSeconds +
      0.1};
  core::ScenarioReceiver rx = core::phone_listening_to(t.subcarrier);
  if (!std::isnan(noise_dbm_override)) rx.noise_200khz = units::Dbm{noise_dbm_override};
  sc.receivers.push_back(rx);

  const core::ScenarioResult result =
      core::ScenarioEngine({.keep_captures = false}).run(sc);
  if (result.best_per_tag.empty()) {
    throw std::runtime_error("calibration link not audible");
  }
  const core::TagLinkReport& link = result.best_per_tag.front();
  const double snr_db = link.backscatter_rx_power_dbm -
                        core::receiver_noise_floor(sc.receivers[0]).raw();
  return {snr_db, link.burst.ber.ber};
}

int run_calibrate() {
  struct RateSpec {
    tag::DataRate rate;
    const char* name;
    std::size_t bits;
  };
  const std::vector<RateSpec> rates = {
      {tag::DataRate::k100bps, "k100bps", 96},
      {tag::DataRate::k1600bps, "k1600bps", 512},
      {tag::DataRate::k3200bps, "k3200bps", 512},
  };
  std::cout << "Calibration: PHY BER vs in-channel SNR, one tag at 4 ft,\n"
               "kNews station, receiver noise floor swept. Noise power is\n"
               "the same coordinate the fleet engine's SINR denominator\n"
               "uses, so the fit transfers to interference-limited links.\n";
  for (const RateSpec& spec : rates) {
    std::cout << "  " << spec.name << ":\n";
    // Reference probe at the phone's default floor pins the received
    // sideband power; each SNR target then maps to a floor override.
    const auto [snr_ref, ber_ref] = phy_ber_point(
        spec.rate, 4.0, spec.bits, 11,
        std::numeric_limits<double>::quiet_NaN());
    const double p_rx_dbm =
        snr_ref + channel::ReceiverNoise::kPhonePer200kHz.raw();
    std::cout << "    reference: p_rx=" << p_rx_dbm << "dBm snr=" << snr_ref
              << "dB ber=" << ber_ref << "\n";
    // Coarse above the knee (floor estimation), fine through it: the
    // noncoherent waterfall can be only a few dB wide at 100 bps.
    std::vector<double> snr_targets;
    for (double s = 30.0; s > 8.0; s -= 4.0) snr_targets.push_back(s);
    for (double s = 8.0; s > -2.0; s -= 1.0) snr_targets.push_back(s);
    for (double s = -2.0; s >= -9.0; s -= 0.5) snr_targets.push_back(s);
    std::vector<std::pair<double, double>> points;  // (snr_db, ber)
    for (const double snr_target : snr_targets) {
      const auto [snr_db, ber] = phy_ber_point(
          spec.rate, 4.0, spec.bits, 11, p_rx_dbm - snr_target);
      points.emplace_back(snr_db, ber);
      std::cout << "    snr=" << snr_db << "dB ber=" << ber << "\n";
    }
    // The SNR-independent floor is what remains on saturated-clean links;
    // below one expected bit error it is indistinguishable from zero.
    double floor_sum = 0.0;
    std::size_t floor_n = 0;
    for (const auto& [snr_db, ber] : points) {
      if (snr_db >= 22.0) {
        floor_sum += ber;
        ++floor_n;
      }
    }
    double ber_floor = floor_n > 0 ? floor_sum / static_cast<double>(floor_n)
                                   : 0.0;
    if (ber_floor < 1.0 / static_cast<double>(spec.bits)) ber_floor = 0.0;
    // Only waterfall points identify the gamma mapping: a saturated-clean
    // BER says "gamma is at least ...", a chance-level one "at most ...".
    std::vector<double> xs, ys;  // snr_db -> gamma_s_db
    for (const auto& [snr_db, ber] : points) {
      const double curve = (ber - ber_floor) / (1.0 - 2.0 * ber_floor);
      if (curve > 1.5 / static_cast<double>(spec.bits) && ber < 0.4) {
        const double gamma = rx::analytic_fsk_gamma_from_ber(curve, spec.rate);
        xs.push_back(snr_db);
        ys.push_back(10.0 * std::log10(gamma));
      }
    }
    double slope = 1.0;
    double offset = 0.0;
    if (xs.size() >= 3) {
      double sx = 0, sy = 0, sxx = 0, sxy = 0;
      for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
      }
      const auto n = static_cast<double>(xs.size());
      slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
      offset = (sy - slope * sx) / n;
    } else if (!xs.empty()) {
      // Waterfall narrower than the grid: pin unit slope through the
      // point(s) we did catch. Only the knee position matters then —
      // links on either side are saturated clean or dead.
      for (std::size_t i = 0; i < xs.size(); ++i) offset += ys[i] - xs[i];
      offset /= static_cast<double>(xs.size());
      std::cout << "    (cliff: " << xs.size()
                << " waterfall point(s), unit slope through them)\n";
    } else {
      // No waterfall point at all: place the half-BER knee at the cliff
      // midpoint between the last clean and first chance-level sample.
      double snr_dead = snr_targets.back();
      for (const auto& [snr_db, ber] : points) {
        if (ber >= 0.4 && snr_db > snr_dead) snr_dead = snr_db;
      }
      // Clean samples below the first chance-level one are sync failures
      // scored as zero errors, not working links — ignore them.
      double snr_clean = snr_targets.front();
      for (const auto& [snr_db, ber] : points) {
        if (ber < 1.5 / static_cast<double>(spec.bits) && snr_db > snr_dead &&
            snr_db < snr_clean) {
          snr_clean = snr_db;
        }
      }
      const double gamma_half =
          rx::analytic_fsk_gamma_from_ber(0.25, spec.rate);
      offset = 10.0 * std::log10(gamma_half) - 0.5 * (snr_clean + snr_dead);
      std::cout << "    (cliff between snr=" << snr_clean << " and "
                << snr_dead << "dB; unit slope through the midpoint)\n";
    }
    const rx::AnalyticFskCalibration pinned =
        rx::analytic_fsk_calibration(spec.rate);
    std::cout << "    fit (" << xs.size() << " points): gamma_offset_db="
              << offset << " gamma_slope=" << slope
              << " ber_floor=" << ber_floor << "   [pinned: "
              << pinned.gamma_offset_db << ", " << pinned.gamma_slope << ", "
              << pinned.ber_floor << "]\n";
  }
  std::cout << "Pin the fitted constants in rx/analytic_fsk.cpp and in\n"
               "tests/rx/test_analytic_fsk.cpp.\n";
  return 0;
}

// ---- Capacity curve ---------------------------------------------------------

struct CapacityPoint {
  std::size_t tags = 0;
  bool slotted = false;
  double wall_seconds = 0.0;
  double goodput_bps = 0.0;
  double latency_seconds = 0.0;
  std::size_t delivered = 0;
  core::FleetStats stats;
};

CapacityPoint run_point(const std::vector<core::ScenarioStation>& band,
                        const std::vector<FleetSlot>& slots, std::size_t n,
                        double duration, bool slotted) {
  const core::Scenario sc =
      fleet_scenario(band, slots, n, duration, slotted, 40 + (slotted ? 1 : 0));
  fm::StationCache::instance().clear();  // cold: sub-scene renders count
  const core::FleetEngine engine;
  const double t0 = now_seconds();
  const core::FleetResult result = engine.run(sc);
  CapacityPoint point;
  point.wall_seconds = now_seconds() - t0;
  point.tags = n;
  point.slotted = slotted;
  point.goodput_bps = result.aggregate_goodput_bps;
  point.latency_seconds = result.mean_delivery_latency_seconds;
  for (const core::FleetLink& link : result.best_per_tag) {
    if (link.delivered) ++point.delivered;
  }
  point.stats = result.stats;
  return point;
}

void print_point(const CapacityPoint& p) {
  std::cout << "  " << (p.slotted ? "slotted" : "pure   ") << " N=" << p.tags
            << ": goodput=" << p.goodput_bps / 1000.0 << " kbps, delivered "
            << p.delivered << "/" << p.tags
            << ", latency=" << p.latency_seconds << " s, links "
            << p.stats.links_total << " (clear " << p.stats.analytic_clear
            << ", collision " << p.stats.analytic_collision << ", phy "
            << p.stats.phy_links << " in " << p.stats.phy_clusters
            << " clusters), " << p.wall_seconds << " s wall\n";
}

/// Projects the full-PHY wall cost of an (n tags, duration) Boston point
/// from two measured small renders: cost is affine in N at fixed duration
/// and scales linearly with duration (both station synthesis and per-tag
/// compose/demod do).
double project_phy_seconds(const std::vector<core::ScenarioStation>& band,
                           const std::vector<FleetSlot>& slots, std::size_t n,
                           double duration, double* measured_small) {
  constexpr double kProbeDuration = 2.0;
  constexpr std::size_t kSmallN = 8;
  constexpr std::size_t kBigN = 24;
  const core::ScenarioEngine engine({.keep_captures = false});
  double t_small = 0.0;
  double t_big = 0.0;
  {
    const core::Scenario sc =
        fleet_scenario(band, slots, kSmallN, kProbeDuration, false, 40);
    fm::StationCache::instance().clear();
    const double t0 = now_seconds();
    (void)engine.run(sc);
    t_small = now_seconds() - t0;
  }
  {
    const core::Scenario sc =
        fleet_scenario(band, slots, kBigN, kProbeDuration, false, 40);
    fm::StationCache::instance().clear();
    const double t0 = now_seconds();
    (void)engine.run(sc);
    t_big = now_seconds() - t0;
  }
  if (measured_small != nullptr) *measured_small = t_small;
  const double per_tag =
      std::max(0.0, (t_big - t_small) / static_cast<double>(kBigN - kSmallN));
  const double base = std::max(0.0, t_small - per_tag * kSmallN);
  return (base + per_tag * static_cast<double>(n)) * (duration / kProbeDuration);
}

int run_capacity(const std::string& json_path, bool full) {
  const std::vector<core::ScenarioStation> band = boston_band();
  const std::vector<FleetSlot> slots = gateway_slots(band);
  const double duration = 30.0;
  std::cout << "Fleet capacity: Boston band, " << band.size() << " stations, "
            << slots.size() << " gateway slots, " << duration
            << " s window\n";

  std::vector<std::size_t> grid = {100, 1000, 10000};
  if (full) grid = {100, 316, 1000, 3162, 10000, 31623, 100000};

  std::vector<CapacityPoint> points;
  for (const bool slotted : {false, true}) {
    for (const std::size_t n : grid) {
      points.push_back(run_point(band, slots, n, duration, slotted));
      print_point(points.back());
    }
  }

  // Full-PHY projection at the acceptance point (10^4 tags).
  double probe_seconds = 0.0;
  const double phy_10k =
      project_phy_seconds(band, slots, 10000, duration, &probe_seconds);
  double fleet_10k = 0.0;
  for (const CapacityPoint& p : points) {
    if (!p.slotted && p.tags == 10000) fleet_10k = p.wall_seconds;
  }
  const double speedup = fleet_10k > 0.0 ? phy_10k / fleet_10k : 0.0;
  std::cout << "  full-PHY projection at N=10000: " << phy_10k
            << " s (probe render " << probe_seconds << " s); hybrid measured "
            << fleet_10k << " s -> speedup " << speedup << "x\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << "{\n"
        << "  \"scenario\": \"boston-fleet\",\n"
        << "  \"stations_in_scene\": " << band.size() << ",\n"
        << "  \"gateway_slots\": " << slots.size() << ",\n"
        << "  \"window_seconds\": " << duration << ",\n"
        << "  \"phy_projected_seconds_10k\": " << phy_10k << ",\n"
        << "  \"hybrid_seconds_10k\": " << fleet_10k << ",\n"
        << "  \"speedup_10k\": " << speedup << ",\n"
        << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const CapacityPoint& p = points[i];
      out << "    {\"mac\": \"" << (p.slotted ? "slotted" : "pure")
          << "\", \"tags\": " << p.tags
          << ", \"goodput_bps\": " << p.goodput_bps
          << ", \"delivered\": " << p.delivered
          << ", \"mean_latency_seconds\": " << p.latency_seconds
          << ", \"links\": " << p.stats.links_total
          << ", \"analytic_clear\": " << p.stats.analytic_clear
          << ", \"analytic_collision\": " << p.stats.analytic_collision
          << ", \"phy_links\": " << p.stats.phy_links
          << ", \"phy_clusters\": " << p.stats.phy_clusters
          << ", \"wall_seconds\": " << p.wall_seconds << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "  wrote " << json_path << "\n";
  }
  return 0;
}

int run_smoke() {
  const std::vector<core::ScenarioStation> band = boston_band();
  const std::vector<FleetSlot> slots = gateway_slots(band);
  const CapacityPoint p = run_point(band, slots, 64, 4.0, false);
  print_point(p);
  if (p.stats.links_total == 0) {
    std::cerr << "smoke: no links resolved\n";
    return 1;
  }
  if (p.delivered == 0) {
    std::cerr << "smoke: nothing delivered at low load\n";
    return 1;
  }
  if (p.stats.analytic_clear + p.stats.analytic_collision +
          p.stats.phy_links !=
      p.stats.links_total) {
    std::cerr << "smoke: resolution counts do not partition the links\n";
    return 1;
  }
  std::cout << "smoke: ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") return run_smoke();
    if (arg == "--calibrate") return run_calibrate();
    if (arg == "--json" && i + 1 < argc) return run_capacity(argv[i + 1], true);
  }
  return run_capacity("", false);
}
