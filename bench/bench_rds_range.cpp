// RDS range — the paper's headline data plane (§4.2, §8, Fig. 3) measured
// the way Fig. 7/14 measure audio: a poster pushes one RadioText ad
// ("SIMPLY THREE - TICKETS 50% OFF") over the 57 kHz subcarrier of its
// backscatter channel, and the grid sweeps tag–receiver distance for a
// phone row and a car row. Reported per cell: RDS block error rate (the
// post-sync accounting of fm::RdsDecodeResult) and whether the full
// RadioText string was recovered — BLER vs distance is the RDS twin of the
// FSK BER curves, and the recovery row is the user-visible outcome.
#include <iostream>
#include <string>

#include "core/scenario.h"

namespace {

using namespace fmbs;

constexpr const char* kAdText = "SIMPLY THREE - TICKETS 50% OFF";

core::Scenario rds_scenario(double distance_ft, bool car) {
  core::Scenario sc;
  sc.name = "rds_range";
  sc.seed = 0;          // derived per grid cell by the sweep seed policy
  sc.station.seed = 0;  // pinned sweep-wide: one shared station render
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.duration = units::Seconds{0.75};  // 8 RadioText groups at 1187.5 bps ~ 0.70 s

  core::ScenarioTag t;
  t.name = "ad-poster";
  t.rds_radiotext = kAdText;
  t.tag_power = units::Dbm{-35.0};  // low-power poster: the knee lands mid-grid
  t.distance_override = units::Feet{distance_ft};
  sc.tags.push_back(std::move(t));
  sc.receivers.push_back(car ? core::car_listening_to(sc.tags[0].subcarrier)
                             : core::phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

const rx::RdsLinkReport& rds_of(const core::ScenarioResult& result) {
  return *result.best_per_tag.at(0).rds;
}

}  // namespace

int main() {
  const std::vector<double> distances_ft{4, 32, 64, 128, 192, 256, 384};

  std::vector<core::ScenarioGridRow> rows;
  for (const bool car : {false, true}) {
    const std::string chain = car ? "car" : "phone";
    rows.push_back({chain + " BLER",
                    [car](double d) { return rds_scenario(d, car); },
                    [](const core::ScenarioResult& result, double) {
                      return rds_of(result).bler;
                    }});
    rows.push_back({chain + " RT-ok",
                    [car](double d) { return rds_scenario(d, car); },
                    [](const core::ScenarioResult& result, double) {
                      return rds_of(result).radiotext == kAdText ? 1.0 : 0.0;
                    }});
  }

  core::SweepRunner runner;
  const core::ScenarioEngine engine({.keep_captures = false});
  const auto series = core::run_scenario_grid(runner, engine, rows,
                                              distances_ft);

  std::cout << "RDS range: RadioText \"" << kAdText << "\" (8 groups, "
               "1187.5 bps) vs tag-receiver distance\n"
               "(BLER is post-sync block error rate, 1.0 when sync was "
               "never acquired; RT-ok = full string recovered)\n\n";
  core::print_table(std::cout, "RDS BLER / RadioText recovery vs distance",
                    "dist_ft", distances_ft, series, 3);
  return 0;
}
