// Fig. 2 — Survey of FM radio signals.
//  (a) CDF of received FM power across a metropolitan city (paper: -10 to
//      -55 dBm, median -35.15 dBm, 69 grid measurements).
//  (b) CDF of received power at a fixed location over 24 hours (paper:
//      roughly constant, sigma ~0.7 dB).
#include <cstdio>
#include <iostream>

#include "core/sweep_runner.h"
#include "dsp/math_util.h"
#include "survey/city_survey.h"

int main() {
  using namespace fmbs;

  std::puts("Fig. 2a: CDF of FM power across a city (paper: median -35.15 dBm,");
  std::puts("         range about -10..-55 dBm over 69 grid cells)\n");

  // The two surveys are independent measurement campaigns; run them as two
  // tasks on the sweep engine (each is internally sequential — its RNG walks
  // the city grid / the 24 hours in order).
  core::SweepRunner runner;
  enum Campaign { kCityGrid, kTemporal };
  const auto campaigns = runner.map(
      std::vector<Campaign>{kCityGrid, kTemporal},
      [](const Campaign& which) -> std::vector<double> {
        if (which == kCityGrid) {
          const auto samples = survey::run_city_survey(survey::CitySurveyConfig{});
          std::vector<double> dbm;
          for (const auto& s : samples) dbm.push_back(s.best_station_dbm);
          return dbm;
        }
        return survey::run_temporal_survey(-33.0, 0.7, 24, 2017);
      });
  const std::vector<double>& dbm = campaigns[0];
  const std::vector<double>& series = campaigns[1];

  const std::vector<double> probs{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0};
  const auto values = dsp::cdf_at(dbm, probs);
  core::print_table(std::cout, "Fig 2a: strongest-station power CDF",
                    "CDF", probs, {{"power_dBm", values}}, 2);
  std::printf("\ncells measured: %zu   median: %.2f dBm   (seed %llu)\n\n",
              dbm.size(), dsp::quantile(dbm, 0.5),
              static_cast<unsigned long long>(survey::CitySurveyConfig{}.seed));

  std::puts("Fig. 2b: power at a fixed location over 24 h (paper: sigma 0.7 dB)\n");
  std::vector<double> probs_b{0.05, 0.25, 0.5, 0.75, 0.95};
  const auto values_b = dsp::cdf_at(series, probs_b);
  core::print_table(std::cout, "Fig 2b: 24-hour power CDF", "CDF", probs_b,
                    {{"power_dBm", values_b}}, 2);
  std::printf("\nminutes: %zu  mean: %.2f dBm  sigma: %.2f dB\n", series.size(),
              dsp::mean(std::span<const double>(series)),
              dsp::stddev(std::span<const double>(series)));
  return 0;
}
