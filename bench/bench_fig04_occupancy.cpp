// Fig. 4 — Usage of FM channels in US cities.
//  (a) licensed vs detectable station counts for SFO/Seattle/Boston/
//      Chicago/LA (paper: 20-70 of the 100 channels; Seattle detects more
//      than licensed because of neighboring-city stations).
//  (b) CDF of the minimum shift frequency from each licensed station to the
//      nearest empty channel (paper: median 200 kHz, worst case < 800 kHz).
#include <cstdio>
#include <iostream>

#include "core/sweep_runner.h"
#include "dsp/math_util.h"
#include "survey/spectrum_db.h"

int main() {
  using namespace fmbs;

  std::puts("Fig. 4a: licensed vs detectable FM stations per city\n");
  std::printf("%-10s %10s %12s\n", "city", "licensed", "detectable");
  const auto cities = survey::builtin_city_spectra();
  for (const auto& c : cities) {
    std::printf("%-10s %10zu %12zu\n", c.name.c_str(),
                c.licensed_channels.size(), c.detectable_channels.size());
  }

  std::puts("\nFig. 4b: CDF of minimum shift frequency to the nearest empty channel");
  std::puts("(paper: median 200 kHz, max < 800 kHz)\n");
  const std::vector<double> probs{0.25, 0.5, 0.75, 0.9, 1.0};
  core::SweepRunner runner;
  // One task per city: the shift search scans every licensed channel.
  const auto series = runner.map(cities, [&](const survey::CitySpectrum& c) {
    const auto shifts = survey::minimum_shift_frequencies(c);
    std::vector<double> khz;
    for (const double s : shifts) khz.push_back(s / 1000.0);
    return core::Series{c.name, dsp::cdf_at(khz, probs)};
  });
  core::print_table(std::cout, "Fig 4b: min shift frequency (kHz)", "CDF",
                    probs, series, 2);

  std::puts("\nBackscatter channel selection (section 3.3 'How do we pick f_back?'):");
  const auto choices = runner.map(cities, [](const survey::CitySpectrum& c) {
    const int station = c.licensed_channels[c.licensed_channels.size() / 2];
    return survey::choose_backscatter_shift(c, station);
  });
  for (std::size_t i = 0; i < cities.size(); ++i) {
    const auto& c = cities[i];
    const auto& choice = choices[i];
    const int station = c.licensed_channels[c.licensed_channels.size() / 2];
    std::printf(
        "  %-8s listen %6.1f MHz -> backscatter to %6.1f MHz (shift %+5.0f kHz, "
        "ambient %6.1f dBm)\n",
        c.name.c_str(), survey::channel_frequency_hz(station) / 1e6,
        survey::channel_frequency_hz(choice.target_channel) / 1e6,
        choice.shift_hz / 1000.0, choice.ambient_dbm);
  }
  return 0;
}
