// Fig. 12 — PESQ with cooperative (two-phone MIMO) cancellation (paper:
// ~4 across -20..-50 dBm — the ambient program is cancelled, unlike overlay
// at ~2 — and it keeps working at powers where stereo backscatter cannot
// hold the receiver in stereo mode).
#include <iostream>

#include "core/experiment.h"

int main() {
  using namespace fmbs;

  const std::vector<double> distances_ft{2, 4, 8, 12, 16, 20};
  const std::vector<double> powers_dbm{-20, -30, -40, -50};

  std::vector<core::Series> series;
  for (const double p : powers_dbm) {
    core::Series s;
    s.label = std::to_string(static_cast<int>(p)) + "dBm";
    for (const double d : distances_ft) {
      core::ExperimentPoint point;
      point.tag_power_dbm = p;
      point.distance_feet = d;
      point.genre = audio::ProgramGenre::kNews;
      point.seed = static_cast<std::uint64_t>(d * 11 - p);
      s.values.push_back(core::run_cooperative_pesq(point, 2.5));
    }
    series.push_back(std::move(s));
  }

  std::cout << "Fig. 12: PESQ-like score with cooperative cancellation\n"
               "(paper: ~4 for -20..-50 dBm; receiver gain control is active\n"
               " and calibrated out via the 13 kHz tag pilot)\n\n";
  core::print_table(std::cout, "Fig 12: PESQ vs distance (cooperative)",
                    "dist_ft", distances_ft, series, 2);
  return 0;
}
