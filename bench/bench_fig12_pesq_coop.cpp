// Fig. 12 — PESQ with cooperative (two-phone MIMO) cancellation (paper:
// ~4 across -20..-50 dBm — the ambient program is cancelled, unlike overlay
// at ~2 — and it keeps working at powers where stereo backscatter cannot
// hold the receiver in stereo mode).
#include <iostream>

#include "core/sweep_runner.h"

int main() {
  using namespace fmbs;

  const std::vector<double> distances_ft{2, 4, 8, 12, 16, 20};
  const std::vector<double> powers_dbm{-20, -30, -40, -50};

  std::vector<core::GridRow> rows;
  for (const double p : powers_dbm) {
    rows.push_back({std::to_string(static_cast<int>(p)) + "dBm",
                    [p](double d) {
                      core::ExperimentPoint point;
                      point.tag_power = units::Dbm{p};
                      point.distance = units::Feet{d};
                      point.genre = audio::ProgramGenre::kNews;
                      return point;
                    },
                    [](const core::ExperimentPoint& pt, double) {
                      return core::run_cooperative_pesq(pt, units::Seconds{2.5});
                    }});
  }
  core::SweepRunner runner;
  const auto series = runner.run_grid(rows, distances_ft);

  std::cout << "Fig. 12: PESQ-like score with cooperative cancellation\n"
               "(paper: ~4 for -20..-50 dBm; receiver gain control is active\n"
               " and calibrated out via the 13 kHz tag pilot)\n\n";
  core::print_table(std::cout, "Fig 12: PESQ vs distance (cooperative)",
                    "dist_ft", distances_ft, series, 2);
  return 0;
}
