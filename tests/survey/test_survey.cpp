#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dsp/math_util.h"
#include "fm/constants.h"
#include "survey/city_survey.h"
#include "survey/spectrum_db.h"

namespace fmbs::survey {
namespace {

TEST(CitySurvey, SampleCountNearPaper) {
  const auto samples = run_city_survey(CitySurveyConfig{});
  // Paper: 69 grid squares. The synthetic drive should land close.
  EXPECT_GT(samples.size(), 55U);
  EXPECT_LT(samples.size(), 85U);
}

TEST(CitySurvey, PowerRangeMatchesFig2a) {
  const auto samples = run_city_survey(CitySurveyConfig{});
  std::vector<double> dbm;
  for (const auto& s : samples) dbm.push_back(s.best_station_dbm);
  const double median = dsp::quantile(dbm, 0.5);
  // Paper: median -35.15 dBm, range about -10 to -55 dBm.
  EXPECT_GT(median, -45.0);
  EXPECT_LT(median, -25.0);
  EXPECT_GT(dsp::quantile(dbm, 1.0), -30.0);
  EXPECT_LT(dsp::quantile(dbm, 0.0), -35.0);
}

TEST(CitySurvey, DeterministicPerSeed) {
  const auto a = run_city_survey(CitySurveyConfig{});
  const auto b = run_city_survey(CitySurveyConfig{});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].best_station_dbm, b[i].best_station_dbm);
  }
}

TEST(CitySurvey, Validation) {
  CitySurveyConfig bad;
  bad.grid_cell_miles = 0.0;
  EXPECT_THROW(run_city_survey(bad), std::invalid_argument);
}

TEST(TemporalSurvey, SigmaMatchesFig2b) {
  const auto series = run_temporal_survey(-33.0, 0.7, 24, 9);
  ASSERT_EQ(series.size(), 24U * 60U);
  EXPECT_NEAR(dsp::mean(std::span<const double>(series)), -33.0, 0.5);
  EXPECT_NEAR(dsp::stddev(std::span<const double>(series)), 0.7, 0.3);
}

TEST(TemporalSurvey, Validation) {
  EXPECT_THROW(run_temporal_survey(-30.0, 0.7, 0, 1), std::invalid_argument);
}

TEST(SpectrumDb, ChannelFrequencies) {
  EXPECT_NEAR(channel_frequency_hz(0), 88.1e6, 1.0);
  EXPECT_NEAR(channel_frequency_hz(17), 91.5e6, 1.0);  // the paper's test band
  EXPECT_NEAR(channel_frequency_hz(99), 107.9e6, 1.0);
  EXPECT_THROW(channel_frequency_hz(-1), std::invalid_argument);
  EXPECT_THROW(channel_frequency_hz(100), std::invalid_argument);
}

TEST(SpectrumDb, BuiltinCitiesMatchFig4aCounts) {
  const auto cities = builtin_city_spectra();
  ASSERT_EQ(cities.size(), 5U);
  std::set<std::string> names;
  for (const auto& c : cities) names.insert(c.name);
  EXPECT_TRUE(names.count("Seattle"));
  EXPECT_TRUE(names.count("LA"));
  for (const auto& c : cities) {
    EXPECT_GT(c.licensed_channels.size(), 20U) << c.name;
    EXPECT_LT(c.licensed_channels.size(), 70U) << c.name;
    // A large fraction of the 100 channels stays unoccupied (the paper's
    // key observation enabling backscatter).
    EXPECT_LT(c.licensed_channels.size(), 70U);
  }
  // Seattle: more detectable than licensed (neighboring cities).
  const auto seattle = std::find_if(cities.begin(), cities.end(),
                                    [](const auto& c) { return c.name == "Seattle"; });
  EXPECT_GT(seattle->detectable_channels.size(),
            seattle->licensed_channels.size());
}

TEST(SpectrumDb, MinShiftMedianIs200kHz) {
  // Paper Fig. 4b: "the median frequency shift required is 200 kHz".
  for (const auto& city : builtin_city_spectra()) {
    const auto shifts = minimum_shift_frequencies(city);
    ASSERT_FALSE(shifts.empty()) << city.name;
    const double median = dsp::quantile(shifts, 0.5);
    EXPECT_NEAR(median, 200e3, 1.0) << city.name;
  }
}

TEST(SpectrumDb, MinShiftWorstCaseBounded) {
  // Paper: "less than 800 kHz in the worst case".
  for (const auto& city : builtin_city_spectra()) {
    const auto shifts = minimum_shift_frequencies(city);
    const double worst = *std::max_element(shifts.begin(), shifts.end());
    EXPECT_LE(worst, 800e3 + 1.0) << city.name;
  }
}

TEST(SpectrumDb, ChooseShiftLandsOnEmptyChannel) {
  const auto cities = builtin_city_spectra();
  const auto& city = cities.front();
  const int station = city.licensed_channels.front();
  const ShiftChoice choice = choose_backscatter_shift(city, station);
  ASSERT_GE(choice.target_channel, 0);
  EXPECT_NE(choice.shift_hz, 0.0);
  EXPECT_LE(std::abs(choice.shift_hz), 800e3);
  const std::set<int> occupied(city.licensed_channels.begin(),
                               city.licensed_channels.end());
  EXPECT_FALSE(occupied.count(choice.target_channel))
      << "chose an occupied channel";
}

TEST(SpectrumDb, ChooseShiftPrefersQuietChannel) {
  CitySpectrum city;
  city.name = "synthetic";
  city.licensed_channels = {50};
  city.detectable_channels = {50, 51, 49};
  city.detectable_power_dbm = {-30.0, -60.0, -90.0};
  const ShiftChoice choice = choose_backscatter_shift(city, 50);
  // Channel 49 has lower ambient power than 51 -> shift down.
  EXPECT_EQ(choice.target_channel, 48);  // 49 is detectable; 48 is quietest empty
}

TEST(SpectrumDb, SynthesizeRespectsCounts) {
  const auto city = synthesize_city_spectrum("test", 40, 35, 1);
  EXPECT_EQ(city.licensed_channels.size(), 40U);
  EXPECT_EQ(city.detectable_channels.size(), 35U);
  EXPECT_EQ(city.detectable_power_dbm.size(), 35U);
  EXPECT_THROW(synthesize_city_spectrum("bad", -1, 10, 1), std::invalid_argument);
  EXPECT_THROW(synthesize_city_spectrum("bad", 10, 200, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::survey
