#include "dsp/iir.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/math_util.h"

namespace fmbs::dsp {
namespace {

// Steady-state gain of a streaming filter at a normalized frequency,
// measured by driving it with a sinusoid and comparing RMS.
template <typename Filter>
double measured_gain(Filter& filt, double f) {
  const std::size_t n = 8000;
  double in_sq = 0.0, out_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float x = static_cast<float>(std::sin(kTwoPi * f * static_cast<double>(i)));
    const float y = filt.process_sample(x);
    if (i > n / 2) {  // skip transient
      in_sq += static_cast<double>(x) * x;
      out_sq += static_cast<double>(y) * y;
    }
  }
  return std::sqrt(out_sq / in_sq);
}

TEST(Biquad, LowpassGainShape) {
  Biquad lp(biquad_lowpass(0.05, 0.707));
  EXPECT_NEAR(measured_gain(lp, 0.005), 1.0, 0.02);
  lp.reset();
  EXPECT_NEAR(measured_gain(lp, 0.05), 0.707, 0.03);
  lp.reset();
  EXPECT_LT(measured_gain(lp, 0.3), 0.05);
}

TEST(Biquad, HighpassGainShape) {
  Biquad hp(biquad_highpass(0.05, 0.707));
  EXPECT_LT(measured_gain(hp, 0.005), 0.05);
  hp.reset();
  EXPECT_NEAR(measured_gain(hp, 0.25), 1.0, 0.02);
}

TEST(Biquad, BandpassPeaksAtCenter) {
  Biquad bp(biquad_bandpass(0.1, 5.0));
  EXPECT_NEAR(measured_gain(bp, 0.1), 1.0, 0.05);
  bp.reset();
  EXPECT_LT(measured_gain(bp, 0.02), 0.15);
  bp.reset();
  EXPECT_LT(measured_gain(bp, 0.3), 0.15);
}

TEST(Biquad, NotchKillsCenter) {
  Biquad nc(biquad_notch(0.12, 8.0));
  EXPECT_LT(measured_gain(nc, 0.12), 0.05);
  nc.reset();
  EXPECT_NEAR(measured_gain(nc, 0.02), 1.0, 0.05);
}

TEST(Biquad, PeakBoostsByGainDb) {
  Biquad pk(biquad_peak(0.1, 2.0, 6.0));
  EXPECT_NEAR(db_from_amplitude_ratio(measured_gain(pk, 0.1)), 6.0, 0.5);
}

TEST(Biquad, DesignValidation) {
  EXPECT_THROW(biquad_lowpass(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(biquad_lowpass(0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(biquad_lowpass(0.1, 0.0), std::invalid_argument);
}

TEST(BiquadCascade, SteeperThanSingle) {
  Biquad single(biquad_lowpass(0.05, 0.707));
  BiquadCascade cascade({biquad_lowpass(0.05, 0.54), biquad_lowpass(0.05, 1.31)});
  const double g1 = measured_gain(single, 0.15);
  const double g4 = measured_gain(cascade, 0.15);
  EXPECT_LT(g4, g1 * 0.5);
}

TEST(BiquadCascade, EmptyThrows) {
  EXPECT_THROW(BiquadCascade({}), std::invalid_argument);
}

TEST(OnePoleLowpass, TimeConstantStepResponse) {
  // After one time constant the step response reaches 1 - 1/e.
  const double fs = 1000.0;
  const double tau = 0.05;
  auto lp = OnePoleLowpass::from_time_constant(tau, fs);
  float y = 0.0F;
  const auto n_tau = static_cast<std::size_t>(tau * fs);
  for (std::size_t i = 0; i < n_tau; ++i) y = lp.process_sample(1.0F);
  EXPECT_NEAR(y, 1.0F - std::exp(-1.0F), 0.02F);
}

TEST(OnePoleLowpass, CornerGain) {
  auto lp = OnePoleLowpass::from_corner(50.0, 48000.0);
  EXPECT_NEAR(measured_gain(lp, 50.0 / 48000.0), 0.707, 0.05);
}

TEST(OnePoleLowpass, Validation) {
  EXPECT_THROW(OnePoleLowpass::from_time_constant(0.0, 1000.0),
               std::invalid_argument);
  EXPECT_THROW(OnePoleLowpass(0.0), std::invalid_argument);
  EXPECT_THROW(OnePoleLowpass(1.5), std::invalid_argument);
}

TEST(DcBlocker, RemovesDcKeepsAc) {
  DcBlocker blocker;
  double dc_out = 0.0;
  for (int i = 0; i < 5000; ++i) dc_out = blocker.process_sample(1.0F);
  EXPECT_NEAR(dc_out, 0.0, 0.01);

  blocker.reset();
  EXPECT_NEAR(measured_gain(blocker, 0.1), 1.0, 0.05);
}

TEST(DcBlocker, Validation) {
  EXPECT_THROW(DcBlocker(0.0), std::invalid_argument);
  EXPECT_THROW(DcBlocker(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::dsp
