// Pins the FMBS_SIMD contract from dsp/simd.h:
//  * elementwise and FIR kernels (scale/axpy, FirFilter, FirDecimator,
//    FirInterpolator) are BIT-IDENTICAL to scalar references — they
//    vectorize across outputs and never reassociate an accumulation;
//  * the two tolerance-pinned exceptions (the Mixer rotator recurrence and
//    the subcarrier's vector sincos) stay within justified bounds, with the
//    recurrence exactly re-anchored at every renormalization point.
// With FMBS_SIMD off this file still passes (both sides run the same scalar
// code), so the suite is valid in either build configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <span>
#include <vector>

#include "channel/superpose.h"
#include "dsp/fir.h"
#include "dsp/math_util.h"
#include "dsp/nco.h"
#include "dsp/simd.h"
#include "dsp/types.h"
#include "tag/subcarrier.h"

namespace fmbs {
namespace {

std::vector<float> random_floats(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> u(-1.0F, 1.0F);
  std::vector<float> out(n);
  for (auto& v : out) v = u(rng);
  return out;
}

dsp::cvec random_complex(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> u(-1.0F, 1.0F);
  dsp::cvec out(n);
  for (auto& v : out) v = dsp::cfloat(u(rng), u(rng));
  return out;
}

TEST(SimdKernels, ScaleIntoBitIdenticalToScalar) {
  const dsp::cvec src = random_complex(1001, 11);  // odd length: covers tail
  dsp::cvec dst(src.size());
  channel::scale_into(dst, src, 0.3713F);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(dst[i], 0.3713F * src[i]) << "i=" << i;
  }
}

TEST(SimdKernels, AccumulateScaledBitIdenticalToScalar) {
  const dsp::cvec src = random_complex(997, 12);
  dsp::cvec dst = random_complex(997, 13);
  dsp::cvec expect = dst;
  channel::accumulate_scaled(dst, src, -1.625F);
  for (std::size_t i = 0; i < src.size(); ++i) {
    expect[i] += -1.625F * src[i];
    EXPECT_EQ(dst[i], expect[i]) << "i=" << i;
  }
}

// Scalar FIR reference matching the library's accumulation order exactly:
// out[i] = sum_t work[i + t] * rtaps[t], rtaps reversed, t ascending.
template <typename Sample>
std::vector<Sample> fir_reference(const std::vector<Sample>& in,
                                  const std::vector<float>& taps) {
  const std::vector<float> rt(taps.rbegin(), taps.rend());
  std::vector<Sample> work(taps.size() - 1, Sample{});
  work.insert(work.end(), in.begin(), in.end());
  std::vector<Sample> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    Sample acc{};
    for (std::size_t t = 0; t < taps.size(); ++t) acc += work[i + t] * rt[t];
    out[i] = acc;
  }
  return out;
}

TEST(SimdKernels, FirFilterFloatBitIdentical) {
  const auto taps = dsp::fir_design_lowpass(37, 0.2);
  const auto x = random_floats(517, 21);
  dsp::FirFilter<float> filt(taps);
  const auto got = filt.process(x);
  const auto ref = fir_reference(x, taps);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(got[i], ref[i]) << "i=" << i;
  }
}

TEST(SimdKernels, FirFilterComplexBitIdentical) {
  const auto taps = dsp::fir_design_lowpass(33, 0.15);
  const dsp::cvec x = random_complex(259, 22);
  dsp::FirFilter<dsp::cfloat> filt(taps);
  const auto got = filt.process(x);
  const std::vector<dsp::cfloat> xv(x.begin(), x.end());
  const auto ref = fir_reference(xv, taps);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(got[i], ref[i]) << "i=" << i;
  }
}

TEST(SimdKernels, FirDecimatorBitIdentical) {
  const auto taps = dsp::fir_design_lowpass(31, 0.08);
  const dsp::cvec x = random_complex(400, 23);
  dsp::FirDecimator<dsp::cfloat> dec(taps, 5);
  const auto got = dec.process(x);
  const std::vector<dsp::cfloat> xv(x.begin(), x.end());
  const auto full = fir_reference(xv, taps);
  ASSERT_EQ(got.size(), x.size() / 5);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], full[i * 5]) << "i=" << i;
  }
}

TEST(SimdKernels, FirInterpolatorBitIdentical) {
  const std::size_t factor = 10;
  auto proto = dsp::fir_design_lowpass(16 * factor + 1, 0.45 / factor);
  const dsp::cvec x = random_complex(203, 24);
  dsp::FirInterpolator<dsp::cfloat> interp(proto, factor);
  const auto got = interp.process(x);

  // Reference: the polyphase decomposition evaluated one output at a time.
  const std::size_t padded = (proto.size() + factor - 1) / factor * factor;
  proto.resize(padded, 0.0F);
  const std::size_t bl = padded / factor;
  std::vector<std::vector<float>> rbranch(factor, std::vector<float>(bl));
  for (std::size_t i = 0; i < padded; ++i) {
    rbranch[i % factor][bl - 1 - i / factor] =
        proto[i] * static_cast<float>(factor);
  }
  std::vector<dsp::cfloat> work(bl - 1, dsp::cfloat{});
  work.insert(work.end(), x.begin(), x.end());
  ASSERT_EQ(got.size(), x.size() * factor);
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t p = 0; p < factor; ++p) {
      dsp::cfloat acc{};
      for (std::size_t t = 0; t < bl; ++t) acc += work[i + t] * rbranch[p][t];
      EXPECT_EQ(got[i * factor + p], acc) << "i=" << i << " p=" << p;
    }
  }
}

#if FMBS_SIMD_ENABLED
TEST(SimdKernels, SincosMatchesLibmWithinTolerance) {
  // The Cephes-style polynomials are good to ~2 ulp for |x| < 8192; the
  // subcarrier feeds phases below ~100 rad. Pin 1e-6 absolute over that
  // range, both signs.
  for (double x = -110.0; x < 110.0; x += 0.0137) {
    alignas(16) float in[4] = {static_cast<float>(x),
                               static_cast<float>(x + 1.1),
                               static_cast<float>(x + 2.3),
                               static_cast<float>(x + 3.7)};
    __m128 s;
    __m128 c;
    dsp::simd::sincos_ps(_mm_load_ps(in), &s, &c);
    alignas(16) float sv[4];
    alignas(16) float cv[4];
    _mm_store_ps(sv, s);
    _mm_store_ps(cv, c);
    for (int lane = 0; lane < 4; ++lane) {
      EXPECT_NEAR(sv[lane], std::sin(static_cast<double>(in[lane])), 1e-6)
          << "x=" << in[lane];
      EXPECT_NEAR(cv[lane], std::cos(static_cast<double>(in[lane])), 1e-6)
          << "x=" << in[lane];
    }
  }
}
#endif

TEST(SimdKernels, MixerRecurrencePinnedToScalarReference) {
  const double rate = 240000.0;
  const double freq = 12345.6;
  const dsp::cvec x = random_complex(2048, 31);

  dsp::Mixer mixer(freq, rate);
  const dsp::cvec got = mixer.process(x);

  // Scalar reference: libm cos/sin per sample off the same accumulator.
  dsp::PhaseAccumulator acc;
  const double step = dsp::kTwoPi * freq / rate;
  ASSERT_EQ(got.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ph = acc.advance(step);
    const dsp::cfloat ref =
        x[i] * dsp::cfloat(static_cast<float>(std::cos(ph)),
                           static_cast<float>(std::sin(ph)));
    if (i % 16 == 0) {
      // Renormalization points re-seed from the exact accumulator phase and
      // must be bit-identical in every build configuration.
      EXPECT_EQ(got[i], ref) << "renorm point i=" << i;
    } else {
      // Between renorms the double recurrence carries ~1e-15 rad of rounding
      // — invisible at float resolution apart from the rare half-ulp
      // boundary case.
      EXPECT_NEAR(got[i].real(), ref.real(), 1e-5F) << "i=" << i;
      EXPECT_NEAR(got[i].imag(), ref.imag(), 1e-5F) << "i=" << i;
    }
  }
}

// Scalar double-precision reference for SubcarrierGenerator::process — the
// pre-vectorization loop, verbatim.
dsp::cvec subcarrier_reference(const tag::SubcarrierConfig& cfg, int harmonics,
                               std::span<const float> baseband) {
  const auto factor =
      static_cast<std::size_t>(cfg.rf_rate / cfg.baseband_rate + 0.5);
  dsp::FirInterpolator<float> interp(
      factor == 1 ? std::vector<float>{1.0F}
                  : dsp::fir_design_lowpass((16 * factor) | 1U,
                                            0.45 / static_cast<double>(factor)),
      factor);
  const dsp::rvec up = interp.process(baseband);
  const double base_step = dsp::kTwoPi * cfg.shift.raw() / cfg.rf_rate;
  const double dev_step = dsp::kTwoPi * cfg.deviation.raw() / cfg.rf_rate;
  const double levels =
      cfg.dco_bits > 0 ? std::pow(2.0, cfg.dco_bits) - 1.0 : 0.0;
  dsp::PhaseAccumulator phase;
  dsp::cvec out(up.size());
  for (std::size_t i = 0; i < up.size(); ++i) {
    double m = static_cast<double>(up[i]);
    if (levels > 0.0) {
      const double clamped = std::clamp(m, -1.0, 1.0);
      m = std::round((clamped + 1.0) / 2.0 * levels) / levels * 2.0 - 1.0;
    }
    const double ph = phase.advance(base_step + dev_step * m);
    switch (cfg.mode) {
      case tag::SubcarrierMode::kBandlimitedSquare: {
        double acc = 0.0;
        for (int k = 1; k <= harmonics; k += 2) {
          acc += 4.0 / (dsp::kPi * k) * std::cos(static_cast<double>(k) * ph);
        }
        out[i] = dsp::cfloat(static_cast<float>(acc), 0.0F);
        break;
      }
      case tag::SubcarrierMode::kHardSquare:
        out[i] = dsp::cfloat(std::cos(ph) >= 0.0 ? 1.0F : -1.0F, 0.0F);
        break;
      case tag::SubcarrierMode::kSingleSideband:
        out[i] = dsp::cfloat(static_cast<float>(2.0 / dsp::kPi * std::cos(ph)),
                             static_cast<float>(2.0 / dsp::kPi * std::sin(ph)));
        break;
    }
  }
  return out;
}

TEST(SimdKernels, SubcarrierSquarePinnedToScalarReference) {
  tag::SubcarrierConfig cfg;
  cfg.shift = units::Hertz{100000.0};  // low shift => several harmonics fit below Nyquist
  cfg.dco_bits = 8;         // exercise the DCO quantization inside the loop
  tag::SubcarrierGenerator gen(cfg);
  ASSERT_GE(gen.harmonics_used(), 3) << "config should synthesize harmonics";
  const auto bb = random_floats(480, 41);
  const auto got = gen.process(bb);
  const auto ref = subcarrier_reference(cfg, gen.harmonics_used(), bb);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].real(), ref[i].real(), 1e-5F) << "i=" << i;
    EXPECT_EQ(got[i].imag(), 0.0F) << "i=" << i;
  }
}

TEST(SimdKernels, SubcarrierSsbPinnedToScalarReference) {
  tag::SubcarrierConfig cfg;
  cfg.mode = tag::SubcarrierMode::kSingleSideband;
  tag::SubcarrierGenerator gen(cfg);
  const auto bb = random_floats(480, 42);
  const auto got = gen.process(bb);
  const auto ref = subcarrier_reference(cfg, gen.harmonics_used(), bb);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].real(), ref[i].real(), 1e-5F) << "i=" << i;
    EXPECT_NEAR(got[i].imag(), ref[i].imag(), 1e-5F) << "i=" << i;
  }
}

TEST(SimdKernels, SubcarrierHardSquareStaysBitExact) {
  // sign(cos) cannot be tolerance-pinned (a 1e-7 wobble at a zero crossing
  // flips the sample), so kHardSquare must keep the libm path in every
  // build configuration.
  tag::SubcarrierConfig cfg;
  cfg.mode = tag::SubcarrierMode::kHardSquare;
  tag::SubcarrierGenerator gen(cfg);
  const auto bb = random_floats(480, 43);
  const auto got = gen.process(bb);
  const auto ref = subcarrier_reference(cfg, gen.harmonics_used(), bb);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], ref[i]) << "i=" << i;
  }
}

}  // namespace
}  // namespace fmbs
