#include "dsp/nco.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/goertzel.h"
#include "dsp/math_util.h"

namespace fmbs::dsp {
namespace {

TEST(PhaseAccumulator, WrapsForward) {
  PhaseAccumulator acc;
  for (int i = 0; i < 1000; ++i) acc.advance(1.0);
  EXPECT_GE(acc.phase(), 0.0);
  EXPECT_LT(acc.phase(), kTwoPi);
}

TEST(PhaseAccumulator, WrapsBackward) {
  PhaseAccumulator acc;
  for (int i = 0; i < 1000; ++i) acc.advance(-1.0);
  EXPECT_GE(acc.phase(), 0.0);
  EXPECT_LT(acc.phase(), kTwoPi);
}

TEST(PhaseAccumulator, ReturnsPreAdvancePhase) {
  PhaseAccumulator acc(0.5);
  EXPECT_NEAR(acc.advance(0.25), 0.5, 1e-12);
  EXPECT_NEAR(acc.phase(), 0.75, 1e-12);
}

TEST(PhaseAccumulator, LongRunStaysAccurate) {
  // The double accumulator at RF rates must not drift measurably over a
  // second of samples.
  PhaseAccumulator acc;
  const double step = kTwoPi * 600000.0 / 2400000.0;  // 600 kHz at 2.4 MHz
  for (int i = 0; i < 2400000; ++i) acc.advance(step);
  // After 2.4e6 steps the phase should be (2.4e6 * step) mod 2pi = 0.
  const double p = acc.phase();
  const double dist = std::min(p, kTwoPi - p);
  EXPECT_LT(dist, 1e-5);
}

TEST(Oscillator, GeneratesRequestedFrequency) {
  Oscillator osc(1000.0, 48000.0);
  const auto block = osc.block_real(4800);
  EXPECT_NEAR(goertzel_power(block, 1000.0, 48000.0), 0.25, 0.01);
}

TEST(Oscillator, ComplexHasUnitMagnitude) {
  Oscillator osc(19000.0, 240000.0);
  const auto block = osc.block_complex(1000);
  for (const auto& v : block) {
    EXPECT_NEAR(std::abs(v), 1.0F, 1e-5F);
  }
}

TEST(Oscillator, NegativeFrequencyConjugates) {
  Oscillator pos(5000.0, 48000.0);
  Oscillator neg(-5000.0, 48000.0);
  for (int i = 0; i < 100; ++i) {
    const auto a = pos.next_complex();
    const auto b = neg.next_complex();
    EXPECT_NEAR(a.real(), b.real(), 1e-5F);
    EXPECT_NEAR(a.imag(), -b.imag(), 1e-5F);
  }
}

TEST(Oscillator, Validation) {
  EXPECT_THROW(Oscillator(100.0, 0.0), std::invalid_argument);
}

TEST(Mixer, ShiftsSpectrum) {
  // A 2 kHz complex tone mixed by +3 kHz lands at 5 kHz.
  const double fs = 48000.0;
  Oscillator osc(2000.0, fs);
  cvec x = osc.block_complex(4800);
  Mixer mixer(3000.0, fs);
  mixer.process_inplace(x);
  // Real part now contains a 5 kHz tone.
  std::vector<float> re(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) re[i] = x[i].real();
  EXPECT_GT(goertzel_power(re, 5000.0, fs), 0.2);
  EXPECT_LT(goertzel_power(re, 2000.0, fs), 1e-3);
}

TEST(Mixer, DownShiftToDc) {
  const double fs = 240000.0;
  Oscillator osc(19000.0, fs);
  cvec x = osc.block_complex(24000);
  Mixer mixer(-19000.0, fs);
  mixer.process_inplace(x);
  // After the shift the signal is DC: nearly constant.
  for (std::size_t i = 1; i < x.size(); ++i) {
    EXPECT_NEAR(x[i].real(), x[0].real(), 1e-3F);
    EXPECT_NEAR(x[i].imag(), x[0].imag(), 1e-3F);
  }
}

TEST(Mixer, PhaseContinuousAcrossBlocks) {
  const double fs = 48000.0;
  Mixer whole(1234.0, fs);
  Mixer chunked(1234.0, fs);
  cvec ones(300, cfloat(1.0F, 0.0F));
  const cvec ref = whole.process(ones);
  cvec got;
  for (std::size_t start = 0; start < ones.size(); start += 41) {
    const std::size_t len = std::min<std::size_t>(41, ones.size() - start);
    const cvec part = chunked.process(
        std::span<const cfloat>(ones.data() + start, len));
    got.insert(got.end(), part.begin(), part.end());
  }
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i].real(), ref[i].real(), 1e-6F);
    EXPECT_NEAR(got[i].imag(), ref[i].imag(), 1e-6F);
  }
}

}  // namespace
}  // namespace fmbs::dsp
