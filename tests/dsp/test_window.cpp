#include "dsp/window.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fmbs::dsp {
namespace {

class WindowTypes : public ::testing::TestWithParam<WindowType> {};

TEST_P(WindowTypes, SymmetricAndBounded) {
  const auto w = make_window(GetParam(), 65);
  ASSERT_EQ(w.size(), 65U);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-6) << "asymmetry at " << i;
    EXPECT_LE(w[i], 1.0F + 1e-6F);
    EXPECT_GE(w[i], -0.01F);
  }
}

TEST_P(WindowTypes, PeaksAtCenter) {
  const auto w = make_window(GetParam(), 65);
  const float center = w[32];
  for (const float v : w) EXPECT_LE(v, center + 1e-6F);
}

INSTANTIATE_TEST_SUITE_P(AllShapes, WindowTypes,
                         ::testing::Values(WindowType::kRectangular,
                                           WindowType::kHann,
                                           WindowType::kHamming,
                                           WindowType::kBlackman,
                                           WindowType::kBlackmanHarris));

TEST(Window, HannEndpointsAreZero) {
  const auto w = make_window(WindowType::kHann, 33);
  EXPECT_NEAR(w.front(), 0.0F, 1e-7F);
  EXPECT_NEAR(w.back(), 0.0F, 1e-7F);
  EXPECT_NEAR(w[16], 1.0F, 1e-6F);
}

TEST(Window, RectangularIsAllOnes) {
  const auto w = make_window(WindowType::kRectangular, 8);
  for (const float v : w) EXPECT_EQ(v, 1.0F);
}

TEST(Window, SizeOneIsUnity) {
  EXPECT_EQ(make_window(WindowType::kHann, 1).at(0), 1.0F);
  EXPECT_EQ(make_kaiser_window(1, 8.0).at(0), 1.0F);
}

TEST(Window, ZeroSizeThrows) {
  EXPECT_THROW(make_window(WindowType::kHann, 0), std::invalid_argument);
  EXPECT_THROW(make_kaiser_window(0, 5.0), std::invalid_argument);
}

TEST(Window, KaiserBetaZeroIsRectangular) {
  const auto w = make_kaiser_window(17, 0.0);
  for (const float v : w) EXPECT_NEAR(v, 1.0F, 1e-6F);
}

TEST(Window, KaiserNarrowsWithBeta) {
  const auto w1 = make_kaiser_window(65, 2.0);
  const auto w2 = make_kaiser_window(65, 10.0);
  // Higher beta -> smaller edge values (more taper).
  EXPECT_LT(w2.front(), w1.front());
  EXPECT_NEAR(w1[32], 1.0F, 1e-6F);
  EXPECT_NEAR(w2[32], 1.0F, 1e-6F);
}

TEST(Window, KaiserBetaFormulaRegions) {
  EXPECT_NEAR(kaiser_beta_for_attenuation(20.0), 0.0, 1e-12);
  EXPECT_GT(kaiser_beta_for_attenuation(40.0), 0.0);
  EXPECT_GT(kaiser_beta_for_attenuation(80.0),
            kaiser_beta_for_attenuation(60.0));
}

TEST(Window, KaiserOrderGrowsWithAttenuationAndShrinksWithWidth) {
  const auto n1 = kaiser_order_for(60.0, 0.05);
  const auto n2 = kaiser_order_for(80.0, 0.05);
  const auto n3 = kaiser_order_for(60.0, 0.1);
  EXPECT_GT(n2, n1);
  EXPECT_LT(n3, n1);
  EXPECT_THROW(kaiser_order_for(60.0, 0.0), std::invalid_argument);
}

TEST(Window, SumsMatchDirectComputation) {
  const auto w = make_window(WindowType::kHamming, 32);
  double s = 0.0, ss = 0.0;
  for (const float v : w) {
    s += v;
    ss += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(window_sum(w), s, 1e-9);
  EXPECT_NEAR(window_sum_squares(w), ss, 1e-9);
}

}  // namespace
}  // namespace fmbs::dsp
