#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dsp/math_util.h"

namespace fmbs::dsp {
namespace {

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1U);
  EXPECT_EQ(next_pow2(1), 1U);
  EXPECT_EQ(next_pow2(2), 2U);
  EXPECT_EQ(next_pow2(3), 4U);
  EXPECT_EQ(next_pow2(1024), 1024U);
  EXPECT_EQ(next_pow2(1025), 2048U);
}

TEST(Fft, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(96));
}

TEST(Fft, PlanRejectsNonPow2) {
  EXPECT_THROW(FftPlan(12), std::invalid_argument);
  EXPECT_THROW(FftPlan(0), std::invalid_argument);
}

TEST(Fft, DeltaTransformsToFlatSpectrum) {
  cvec x(16);
  x[0] = cfloat(1.0F, 0.0F);
  FftPlan plan(16);
  plan.forward(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0F, 1e-5F);
    EXPECT_NEAR(v.imag(), 0.0F, 1e-5F);
  }
}

TEST(Fft, SingleBinTone) {
  const std::size_t n = 64;
  cvec x(n);
  const int k = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = kTwoPi * k * static_cast<double>(i) / n;
    x[i] = cfloat(static_cast<float>(std::cos(ph)), static_cast<float>(std::sin(ph)));
  }
  FftPlan plan(n);
  plan.forward(x);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == static_cast<std::size_t>(k)) {
      EXPECT_NEAR(std::abs(x[i]), static_cast<float>(n), 1e-3);
    } else {
      EXPECT_LT(std::abs(x[i]), 1e-3F) << "leakage at bin " << i;
    }
  }
}

TEST(Fft, RoundTripIdentity) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<float> u(-1.0F, 1.0F);
  cvec x(256);
  for (auto& v : x) v = cfloat(u(rng), u(rng));
  cvec y = x;
  FftPlan plan(256);
  plan.forward(y);
  plan.inverse(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i].real(), y[i].real(), 1e-4F);
    EXPECT_NEAR(x[i].imag(), y[i].imag(), 1e-4F);
  }
}

TEST(Fft, ParsevalHolds) {
  std::mt19937 rng(4);
  std::uniform_real_distribution<float> u(-1.0F, 1.0F);
  cvec x(128);
  for (auto& v : x) v = cfloat(u(rng), u(rng));
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  cvec y = x;
  FftPlan plan(128);
  plan.forward(y);
  double freq_energy = 0.0;
  for (const auto& v : y) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 128.0, time_energy, time_energy * 1e-4);
}

TEST(Fft, LinearityHolds) {
  const std::size_t n = 64;
  cvec a(n), b(n), sum(n);
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> u(-1.0F, 1.0F);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = cfloat(u(rng), u(rng));
    b[i] = cfloat(u(rng), u(rng));
    sum[i] = a[i] + 2.0F * b[i];
  }
  FftPlan plan(n);
  plan.forward(a);
  plan.forward(b);
  plan.forward(sum);
  for (std::size_t i = 0; i < n; ++i) {
    const cfloat expect = a[i] + 2.0F * b[i];
    EXPECT_NEAR(sum[i].real(), expect.real(), 2e-3F);
    EXPECT_NEAR(sum[i].imag(), expect.imag(), 2e-3F);
  }
}

TEST(Fft, FreeFunctionZeroPads) {
  cvec x(5, cfloat(1.0F, 0.0F));
  const cvec y = fft(x);
  EXPECT_EQ(y.size(), 8U);
}

TEST(Fft, IfftRequiresPow2) {
  cvec x(6);
  EXPECT_THROW(ifft(x), std::invalid_argument);
}

TEST(Fft, RealPowerSpectrumFindsTone) {
  const double fs = 1000.0;
  std::vector<float> x(512);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(static_cast<float>(kTwoPi * 125.0 * i / fs));
  }
  const auto ps = power_spectrum(x);
  // 125 Hz at fs=1000 with N=512 -> bin 64.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < ps.size(); ++i) {
    if (ps[i] > ps[peak]) peak = i;
  }
  EXPECT_EQ(peak, 64U);
}

TEST(PlanReuse, ManyTransformsStayConsistent) {
  FftPlan plan(32);
  cvec ref(32);
  ref[3] = cfloat(1.0F, 0.0F);
  cvec first = ref;
  plan.forward(first);
  for (int iter = 0; iter < 10; ++iter) {
    cvec again = ref;
    plan.forward(again);
    for (std::size_t i = 0; i < again.size(); ++i) {
      EXPECT_EQ(again[i], first[i]);
    }
  }
}

}  // namespace
}  // namespace fmbs::dsp
