#include "dsp/goertzel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dsp/math_util.h"

namespace fmbs::dsp {
namespace {

std::vector<float> tone(double f, double fs, std::size_t n, double amp = 1.0) {
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(amp * std::sin(kTwoPi * f * static_cast<double>(i) / fs));
  }
  return x;
}

TEST(Goertzel, UnitToneMeasuresQuarter) {
  const auto x = tone(1000.0, 48000.0, 4800);
  EXPECT_NEAR(goertzel_power(x, 1000.0, 48000.0), 0.25, 0.01);
}

TEST(Goertzel, PowerScalesWithAmplitudeSquared) {
  const auto x = tone(2000.0, 48000.0, 4800, 0.5);
  EXPECT_NEAR(goertzel_power(x, 2000.0, 48000.0), 0.25 * 0.25, 0.005);
}

TEST(Goertzel, RejectsOffFrequency) {
  const auto x = tone(1000.0, 48000.0, 4800);
  EXPECT_LT(goertzel_power(x, 3000.0, 48000.0), 1e-4);
}

TEST(Goertzel, IndependentOfBlockLength) {
  const auto x1 = tone(8000.0, 48000.0, 480);
  const auto x2 = tone(8000.0, 48000.0, 9600);
  EXPECT_NEAR(goertzel_power(x1, 8000.0, 48000.0),
              goertzel_power(x2, 8000.0, 48000.0), 0.02);
}

TEST(Goertzel, Validation) {
  const auto x = tone(100.0, 1000.0, 100);
  EXPECT_THROW(goertzel_power(x, 0.0, 1000.0), std::invalid_argument);
  EXPECT_THROW(goertzel_power(x, 500.0, 1000.0), std::invalid_argument);
  EXPECT_THROW(goertzel_power(x, 100.0, 0.0), std::invalid_argument);
}

TEST(GoertzelBank, DetectsStrongestTone) {
  // The paper's 2-FSK detector: 8 kHz vs 12 kHz.
  GoertzelBank bank({8000.0, 12000.0}, 48000.0);
  const auto zero = tone(8000.0, 48000.0, 480);
  const auto one = tone(12000.0, 48000.0, 480);
  EXPECT_EQ(bank.detect(zero), 0U);
  EXPECT_EQ(bank.detect(one), 1U);
}

TEST(GoertzelBank, DetectsInNoise) {
  std::mt19937 rng(11);
  std::normal_distribution<float> n(0.0F, 0.5F);
  auto x = tone(12000.0, 48000.0, 480);
  for (auto& v : x) v += n(rng);
  GoertzelBank bank({8000.0, 12000.0}, 48000.0);
  EXPECT_EQ(bank.detect(x), 1U);
}

TEST(GoertzelBank, PowersParallelToTones) {
  GoertzelBank bank({800.0, 1600.0, 2400.0, 3200.0}, 48000.0);
  const auto x = tone(2400.0, 48000.0, 960);
  const auto p = bank.powers(x);
  ASSERT_EQ(p.size(), 4U);
  EXPECT_GT(p[2], 10.0 * p[0]);
  EXPECT_GT(p[2], 10.0 * p[1]);
  EXPECT_GT(p[2], 10.0 * p[3]);
}

TEST(GoertzelBank, SixteenToneFdmSet) {
  // The paper's full FDM-4FSK tone set: 800 Hz ... 12.8 kHz.
  std::vector<double> tones;
  for (int i = 1; i <= 16; ++i) tones.push_back(800.0 * i);
  GoertzelBank bank(tones, 48000.0);
  for (int i = 0; i < 16; ++i) {
    const auto x = tone(800.0 * (i + 1), 48000.0, 120);  // one 400-sps symbol
    EXPECT_EQ(bank.detect(x), static_cast<std::size_t>(i)) << "tone " << i;
  }
}

TEST(GoertzelBank, Validation) {
  EXPECT_THROW(GoertzelBank({}, 48000.0), std::invalid_argument);
  EXPECT_THROW(GoertzelBank({100.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(GoertzelBank({30000.0}, 48000.0), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::dsp
