#include "dsp/math_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace fmbs::dsp {
namespace {

TEST(MathUtil, DbPowerRoundTrip) {
  EXPECT_NEAR(db_from_power_ratio(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_from_power_ratio(1.0), 0.0, 1e-12);
  EXPECT_NEAR(db_from_power_ratio(0.5), -3.0103, 1e-3);
  EXPECT_NEAR(power_ratio_from_db(db_from_power_ratio(123.4)), 123.4, 1e-9);
}

TEST(MathUtil, DbClampsNonPositive) {
  EXPECT_LE(db_from_power_ratio(0.0), -299.0);
  EXPECT_LE(db_from_power_ratio(-5.0), -299.0);
  EXPECT_LE(db_from_amplitude_ratio(0.0), -299.0);
  EXPECT_LE(dbm_from_watts(0.0), -299.0);
}

TEST(MathUtil, AmplitudeDb) {
  EXPECT_NEAR(db_from_amplitude_ratio(10.0), 20.0, 1e-12);
  EXPECT_NEAR(amplitude_ratio_from_db(6.0205999), 2.0, 1e-6);
}

TEST(MathUtil, DbmWattsRoundTrip) {
  EXPECT_NEAR(watts_from_dbm(0.0), 1e-3, 1e-12);
  EXPECT_NEAR(watts_from_dbm(30.0), 1.0, 1e-9);
  EXPECT_NEAR(dbm_from_watts(watts_from_dbm(-35.15)), -35.15, 1e-9);
}

TEST(MathUtil, Sinc) {
  EXPECT_NEAR(sinc(0.0), 1.0, 1e-15);
  EXPECT_NEAR(sinc(1.0), 0.0, 1e-12);
  EXPECT_NEAR(sinc(0.5), 2.0 / kPi, 1e-12);
  EXPECT_NEAR(sinc(-0.5), 2.0 / kPi, 1e-12);
}

TEST(MathUtil, MeanAndStddev) {
  const std::vector<float> x{1.0F, 2.0F, 3.0F, 4.0F};
  EXPECT_NEAR(mean(std::span<const float>(x)), 2.5, 1e-12);
  EXPECT_NEAR(stddev(std::span<const float>(x)), std::sqrt(1.25), 1e-6);
  EXPECT_EQ(mean(std::span<const float>{}), 0.0);
  EXPECT_EQ(stddev(std::span<const float>(x.data(), 1)), 0.0);
}

TEST(MathUtil, RmsAndMeanSquare) {
  const std::vector<float> x{3.0F, -3.0F, 3.0F, -3.0F};
  EXPECT_NEAR(mean_square(x), 9.0, 1e-9);
  EXPECT_NEAR(rms(x), 3.0, 1e-9);
}

TEST(MathUtil, QuantileInterpolates) {
  const std::vector<double> x{4.0, 1.0, 3.0, 2.0};
  EXPECT_NEAR(quantile(x, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(quantile(x, 1.0), 4.0, 1e-12);
  EXPECT_NEAR(quantile(x, 0.5), 2.5, 1e-12);
}

TEST(MathUtil, QuantileValidatesInput) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  const std::vector<double> x{1.0};
  EXPECT_THROW(quantile(x, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(x, 1.1), std::invalid_argument);
}

TEST(MathUtil, EmpiricalCdfIsMonotone) {
  const std::vector<double> x{5.0, -1.0, 2.0, 2.0, 9.0};
  const auto cdf = empirical_cdf(x);
  ASSERT_EQ(cdf.size(), x.size());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].probability, cdf[i - 1].probability);
  }
  EXPECT_NEAR(cdf.back().probability, 1.0, 1e-12);
}

TEST(MathUtil, CdfAtMatchesQuantiles) {
  const std::vector<double> x{10.0, 20.0, 30.0, 40.0, 50.0};
  const std::vector<double> ps{0.0, 0.5, 1.0};
  const auto vals = cdf_at(x, ps);
  ASSERT_EQ(vals.size(), 3U);
  EXPECT_NEAR(vals[0], 10.0, 1e-12);
  EXPECT_NEAR(vals[1], 30.0, 1e-12);
  EXPECT_NEAR(vals[2], 50.0, 1e-12);
}

}  // namespace
}  // namespace fmbs::dsp
