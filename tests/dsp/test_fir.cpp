#include "dsp/fir.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "dsp/math_util.h"

namespace fmbs::dsp {
namespace {

// Measures |H(f)| of a tap set at a normalized frequency.
double gain_at(const std::vector<float>& taps, double f) {
  double re = 0.0, im = 0.0;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    re += taps[i] * std::cos(kTwoPi * f * static_cast<double>(i));
    im -= taps[i] * std::sin(kTwoPi * f * static_cast<double>(i));
  }
  return std::hypot(re, im);
}

TEST(FirDesign, LowpassUnityDcAndStopband) {
  const auto taps = fir_design_lowpass(101, 0.1);
  EXPECT_NEAR(gain_at(taps, 0.0), 1.0, 1e-6);
  EXPECT_GT(gain_at(taps, 0.05), 0.95);
  EXPECT_LT(gain_at(taps, 0.2), 0.01);
  EXPECT_LT(gain_at(taps, 0.4), 0.01);
}

TEST(FirDesign, LowpassHalfPowerAtCutoff) {
  const auto taps = fir_design_lowpass(201, 0.125);
  EXPECT_NEAR(gain_at(taps, 0.125), 0.5, 0.05);
}

TEST(FirDesign, HighpassInvertsLowpass) {
  const auto taps = fir_design_highpass(101, 0.2);
  EXPECT_LT(gain_at(taps, 0.0), 1e-6);
  EXPECT_LT(gain_at(taps, 0.1), 0.02);
  EXPECT_GT(gain_at(taps, 0.35), 0.95);
}

// Regression for the silent even->odd tap-count bump: a caller asking for
// 100 taps used to get 101 back, so any history or group-delay bookkeeping
// sized from the REQUESTED count was off by one sample. The design now
// rejects even counts loudly instead of resizing behind the caller's back.
TEST(FirDesign, HighpassRejectsEvenTapCountLoudly) {
  EXPECT_THROW(fir_design_highpass(100, 0.2), std::invalid_argument);
  // Odd requests deliver exactly the requested count...
  const auto taps = fir_design_highpass(101, 0.2);
  EXPECT_EQ(taps.size(), 101U);
  // ...so filter alignment derived from the request is exact: the impulse
  // peak (the spectral-inversion delta) sits at the group delay.
  FirFilter<float> filt(taps);
  EXPECT_DOUBLE_EQ(filt.group_delay(), 50.0);
  std::vector<float> impulse(taps.size(), 0.0F);
  impulse[0] = 1.0F;
  const auto h = filt.process(impulse);
  std::size_t peak = 0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (std::abs(h[i]) > std::abs(h[peak])) peak = i;
  }
  EXPECT_EQ(peak, 50U);
}

TEST(FirDesign, BandpassPassesCenterRejectsEdges) {
  const auto taps = fir_design_bandpass(201, 0.1, 0.2);
  EXPECT_NEAR(gain_at(taps, 0.15), 1.0, 0.02);
  EXPECT_LT(gain_at(taps, 0.02), 0.02);
  EXPECT_LT(gain_at(taps, 0.35), 0.02);
}

TEST(FirDesign, KaiserMeetsAttenuation) {
  const auto taps = fir_design_kaiser_lowpass(0.1, 0.05, 60.0);
  EXPECT_NEAR(gain_at(taps, 0.0), 1.0, 1e-6);
  // Past the transition band the response must be below -55 dB (5 dB slack).
  for (double f = 0.16; f < 0.5; f += 0.02) {
    EXPECT_LT(db_from_amplitude_ratio(gain_at(taps, f)), -55.0) << "f=" << f;
  }
}

TEST(FirDesign, Validation) {
  EXPECT_THROW(fir_design_lowpass(0, 0.1), std::invalid_argument);
  EXPECT_THROW(fir_design_lowpass(11, 0.0), std::invalid_argument);
  EXPECT_THROW(fir_design_lowpass(11, 0.5), std::invalid_argument);
  EXPECT_THROW(fir_design_bandpass(11, 0.3, 0.2), std::invalid_argument);
}

TEST(FirFilter, ImpulseResponseEqualsTaps) {
  const std::vector<float> taps{0.5F, 0.25F, 0.125F};
  FirFilter<float> filt(taps);
  std::vector<float> impulse(8, 0.0F);
  impulse[0] = 1.0F;
  const auto out = filt.process(impulse);
  EXPECT_NEAR(out[0], 0.5F, 1e-6F);
  EXPECT_NEAR(out[1], 0.25F, 1e-6F);
  EXPECT_NEAR(out[2], 0.125F, 1e-6F);
  EXPECT_NEAR(out[3], 0.0F, 1e-6F);
}

TEST(FirFilter, BlockBoundariesSeamless) {
  const auto taps = fir_design_lowpass(31, 0.2);
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> u(-1.0F, 1.0F);
  std::vector<float> x(300);
  for (auto& v : x) v = u(rng);

  FirFilter<float> whole(taps);
  const auto ref = whole.process(x);

  FirFilter<float> chunked(taps);
  std::vector<float> got;
  for (std::size_t start = 0; start < x.size(); start += 37) {
    const std::size_t len = std::min<std::size_t>(37, x.size() - start);
    const auto part = chunked.process(
        std::span<const float>(x.data() + start, len));
    got.insert(got.end(), part.begin(), part.end());
  }
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-5F) << "mismatch at " << i;
  }
}

TEST(FirFilter, ComplexSamplesWork) {
  const auto taps = fir_design_lowpass(21, 0.25);
  FirFilter<cfloat> filt(taps);
  cvec x(64, cfloat(1.0F, -1.0F));
  const auto out = filt.process(x);
  // DC gain 1: steady state should approach the input value.
  EXPECT_NEAR(out.back().real(), 1.0F, 1e-3F);
  EXPECT_NEAR(out.back().imag(), -1.0F, 1e-3F);
}

TEST(FirFilter, ResetClearsHistory) {
  const std::vector<float> taps{1.0F, 1.0F};
  FirFilter<float> filt(taps);
  std::vector<float> ones(4, 1.0F);
  (void)filt.process(ones);
  filt.reset();
  const auto out = filt.process(ones);
  EXPECT_NEAR(out[0], 1.0F, 1e-6F);  // history zero again
}

TEST(FirDecimator, MatchesFilterThenKeep) {
  const auto taps = fir_design_lowpass(31, 0.08);
  std::mt19937 rng(8);
  std::uniform_real_distribution<float> u(-1.0F, 1.0F);
  std::vector<float> x(200);
  for (auto& v : x) v = u(rng);

  FirFilter<float> full(taps);
  const auto filtered = full.process(x);
  FirDecimator<float> dec(taps, 5);
  const auto decimated = dec.process(x);
  ASSERT_EQ(decimated.size(), x.size() / 5);
  for (std::size_t i = 0; i < decimated.size(); ++i) {
    EXPECT_NEAR(decimated[i], filtered[i * 5], 1e-5F);
  }
}

TEST(FirDecimator, RejectsBadBlocks) {
  FirDecimator<float> dec(fir_design_lowpass(11, 0.1), 4);
  std::vector<float> x(10);
  EXPECT_THROW(dec.process(x), std::invalid_argument);
}

TEST(FirInterpolator, PreservesAmplitudeAndSpectrum) {
  const std::size_t factor = 4;
  const auto proto = fir_design_lowpass(64 * factor + 1, 0.45 / factor);
  FirInterpolator<float> interp(proto, factor);
  // A slow sine should come out with the same amplitude at 4x the rate.
  std::vector<float> x(256);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(static_cast<float>(kTwoPi * 0.01 * i));
  }
  const auto y = interp.process(x);
  ASSERT_EQ(y.size(), x.size() * factor);
  float peak = 0.0F;
  for (std::size_t i = y.size() / 2; i < y.size(); ++i) {
    peak = std::max(peak, std::abs(y[i]));
  }
  EXPECT_NEAR(peak, 1.0F, 0.03F);
}

TEST(FirInterpolator, StreamingMatchesOneShot) {
  const std::size_t factor = 3;
  const auto proto = fir_design_lowpass(8 * factor + 1, 0.4 / factor);
  std::mt19937 rng(9);
  std::uniform_real_distribution<float> u(-1.0F, 1.0F);
  std::vector<float> x(120);
  for (auto& v : x) v = u(rng);

  FirInterpolator<float> whole(proto, factor);
  const auto ref = whole.process(x);
  FirInterpolator<float> chunked(proto, factor);
  std::vector<float> got;
  for (std::size_t start = 0; start < x.size(); start += 17) {
    const std::size_t len = std::min<std::size_t>(17, x.size() - start);
    const auto part = chunked.process(std::span<const float>(x.data() + start, len));
    got.insert(got.end(), part.begin(), part.end());
  }
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-5F);
  }
}

TEST(FirInterpolator, InterpolateThenDecimateIsNearIdentity) {
  const std::size_t factor = 5;
  const auto proto = fir_design_lowpass(32 * factor + 1, 0.45 / factor);
  FirInterpolator<float> up(proto, factor);
  FirDecimator<float> down(proto, factor);
  std::vector<float> x(400);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(static_cast<float>(kTwoPi * 0.02 * i)) +
           0.5F * std::sin(static_cast<float>(kTwoPi * 0.07 * i));
  }
  const auto hi = up.process(x);
  const auto back = down.process(hi);
  // Compare mid-signal (skip both filters' group delays).
  const std::size_t delay = (proto.size() - 1) / factor;  // in low-rate samples
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 100; i + delay < back.size() && i < 300; ++i) {
    const double d = back[i + delay] - x[i];
    err += d * d;
    ref += static_cast<double>(x[i]) * x[i];
  }
  EXPECT_LT(err / ref, 0.01);
}

}  // namespace
}  // namespace fmbs::dsp
