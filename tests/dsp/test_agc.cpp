#include "dsp/agc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/math_util.h"

namespace fmbs::dsp {
namespace {

std::vector<float> tone(double amp, std::size_t n) {
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(amp * std::sin(kTwoPi * 0.01 * static_cast<double>(i)));
  }
  return x;
}

TEST(Agc, ConvergesToTargetRms) {
  Agc::Config cfg;
  cfg.target_rms = 0.25;
  Agc agc(cfg, 48000.0);
  const auto x = tone(0.05, 96000);  // quiet input
  const auto y = agc.process(x);
  // Measure tail RMS after convergence.
  double acc = 0.0;
  const std::size_t tail = y.size() / 2;
  for (std::size_t i = tail; i < y.size(); ++i) acc += static_cast<double>(y[i]) * y[i];
  const double rms = std::sqrt(acc / static_cast<double>(y.size() - tail));
  // The asymmetric attack/release smoothing biases the envelope toward
  // peaks, so convergence is approximate (within ~25% of the setpoint).
  EXPECT_NEAR(rms, 0.25, 0.07);
}

TEST(Agc, GainDropsWhenSignalGetsLouder) {
  Agc::Config cfg;
  Agc agc(cfg, 48000.0);
  (void)agc.process(tone(0.1, 48000));
  const double gain_quiet = agc.gain();
  (void)agc.process(tone(0.8, 48000));
  const double gain_loud = agc.gain();
  EXPECT_LT(gain_loud, gain_quiet);
}

TEST(Agc, RespectsGainLimits) {
  Agc::Config cfg;
  cfg.min_gain = 0.5;
  cfg.max_gain = 2.0;
  Agc agc(cfg, 48000.0);
  (void)agc.process(tone(1e-4, 48000));  // would need gain >> 2
  EXPECT_LE(agc.gain(), 2.0 + 1e-9);
  (void)agc.process(tone(10.0, 48000));  // would need gain << 0.5
  EXPECT_GE(agc.gain(), 0.5 - 1e-9);
}

TEST(Agc, AttackFasterThanRelease) {
  Agc::Config cfg;
  cfg.attack_seconds = 0.01;
  cfg.release_seconds = 0.5;
  Agc agc(cfg, 48000.0);
  (void)agc.process(tone(0.1, 96000));
  const double g0 = agc.gain();
  // A loud burst: gain should drop quickly (attack)...
  (void)agc.process(tone(1.0, 4800));  // 100 ms
  const double g_after_burst = agc.gain();
  EXPECT_LT(g_after_burst, g0 * 0.7);
  // ...then recover slowly (release): after another 100 ms of quiet it
  // should NOT be back to g0 yet.
  (void)agc.process(tone(0.1, 4800));
  EXPECT_LT(agc.gain(), g0 * 0.9);
}

TEST(Agc, ResetRestoresInitialState) {
  Agc::Config cfg;
  Agc agc(cfg, 48000.0);
  (void)agc.process(tone(1.0, 48000));
  agc.reset();
  EXPECT_NEAR(agc.gain(), 1.0, 1e-12);
}

TEST(Agc, Validation) {
  Agc::Config cfg;
  EXPECT_THROW(Agc(cfg, 0.0), std::invalid_argument);
  cfg.target_rms = 0.0;
  EXPECT_THROW(Agc(cfg, 48000.0), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::dsp
