#include "dsp/correlate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dsp/math_util.h"

namespace fmbs::dsp {
namespace {

std::vector<float> noise(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> d(0.0F, 1.0F);
  std::vector<float> x(n);
  for (auto& v : x) v = d(rng);
  return x;
}

TEST(CrossCorrelate, ZeroLagIsDotProduct) {
  const std::vector<float> a{1.0F, 2.0F, 3.0F};
  const std::vector<float> b{4.0F, 5.0F, 6.0F};
  const auto r = cross_correlate(a, b, 0);
  ASSERT_EQ(r.size(), 1U);
  EXPECT_NEAR(r[0], 32.0, 1e-9);
}

TEST(CrossCorrelate, FindsKnownShift) {
  const auto a = noise(500, 21);
  // b = a delayed by 7: b[n] = a[n-7] so r peaks at k = -7
  // (a[n] matches b[n+(-7)+14?]) — verify empirically via estimate_delay.
  std::vector<float> b(500, 0.0F);
  for (std::size_t i = 7; i < 500; ++i) b[i] = a[i - 7];
  const auto est = estimate_delay(a, b, 20);
  // b must be advanced by 7 samples to align with a.
  EXPECT_NEAR(est.delay_samples, 7.0, 0.25);
  EXPECT_GT(est.peak_correlation, 0.9);
}

TEST(CrossCorrelate, NegativeShiftDetected) {
  const auto a = noise(500, 22);
  std::vector<float> b(500, 0.0F);
  for (std::size_t i = 0; i + 9 < 500; ++i) b[i] = a[i + 9];  // b early by 9
  const auto est = estimate_delay(a, b, 20);
  EXPECT_NEAR(est.delay_samples, -9.0, 0.25);
}

TEST(CrossCorrelate, EmptyThrows) {
  const std::vector<float> a{1.0F};
  EXPECT_THROW(cross_correlate({}, a, 1), std::invalid_argument);
  EXPECT_THROW(cross_correlate(a, {}, 1), std::invalid_argument);
}

TEST(CrossCorrelateFft, MatchesDirect) {
  const auto a = noise(128, 23);
  const auto b = noise(96, 24);
  const auto direct = cross_correlate(a, b, 40);
  const auto fast = cross_correlate_fft(a, b);
  // fast index i corresponds to lag i - (b.size()-1); direct index j to
  // lag j - 40.
  for (std::size_t j = 0; j < direct.size(); ++j) {
    const long lag = static_cast<long>(j) - 40;
    const long fi = lag + static_cast<long>(b.size()) - 1;
    if (fi < 0 || fi >= static_cast<long>(fast.size())) continue;
    EXPECT_NEAR(fast[static_cast<std::size_t>(fi)], direct[j],
                std::abs(direct[j]) * 1e-3 + 1e-2)
        << "lag " << lag;
  }
}

TEST(EstimateDelay, SubSampleResolutionOnSmoothSignal) {
  // A sine shifted by half a sample: parabolic interpolation should get
  // within a tenth of a sample.
  const double fs = 100.0;
  std::vector<float> a(400), b(400);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    a[i] = static_cast<float>(std::sin(kTwoPi * 3.0 * t));
    b[i] = static_cast<float>(std::sin(kTwoPi * 3.0 * (t - 0.5 / fs)));
  }
  const auto est = estimate_delay(a, b, 10);
  EXPECT_NEAR(est.delay_samples, 0.5, 0.1);
}

TEST(EstimateDelay, InvertedSignalStillAligns) {
  // Polarity inversion should not confuse peak-picking (|abs| used).
  const auto a = noise(300, 25);
  std::vector<float> b(300, 0.0F);
  for (std::size_t i = 3; i < 300; ++i) b[i] = -a[i - 3];
  const auto est = estimate_delay(a, b, 10);
  EXPECT_NEAR(est.delay_samples, 3.0, 0.25);
}

TEST(ShiftSignal, PositiveDelaysAndZeroFills) {
  const std::vector<float> x{1.0F, 2.0F, 3.0F, 4.0F};
  const auto y = shift_signal(x, 2);
  ASSERT_EQ(y.size(), 4U);
  EXPECT_EQ(y[0], 0.0F);
  EXPECT_EQ(y[1], 0.0F);
  EXPECT_EQ(y[2], 1.0F);
  EXPECT_EQ(y[3], 2.0F);
}

TEST(ShiftSignal, NegativeAdvances) {
  const std::vector<float> x{1.0F, 2.0F, 3.0F, 4.0F};
  const auto y = shift_signal(x, -1);
  EXPECT_EQ(y[0], 2.0F);
  EXPECT_EQ(y[3], 0.0F);
}

TEST(ShiftSignal, RoundTripIdentityInInterior) {
  const auto x = noise(100, 26);
  const auto y = shift_signal(shift_signal(x, 5), -5);
  for (std::size_t i = 5; i + 5 < x.size(); ++i) {
    EXPECT_EQ(y[i], x[i]);
  }
}

}  // namespace
}  // namespace fmbs::dsp
