#include "dsp/spectrum.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dsp/math_util.h"

namespace fmbs::dsp {
namespace {

std::vector<float> tone(double f, double fs, std::size_t n, double amp = 1.0) {
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(amp * std::sin(kTwoPi * f * static_cast<double>(i) / fs));
  }
  return x;
}

TEST(WelchPsd, TotalPowerMatchesVariance) {
  std::mt19937 rng(31);
  std::normal_distribution<float> d(0.0F, 0.3F);
  std::vector<float> x(48000);
  for (auto& v : x) v = d(rng);
  const Psd psd = welch_psd(x, 48000.0, 4096);
  EXPECT_NEAR(psd.total_power(), 0.09, 0.01);
}

TEST(WelchPsd, TonePowerConcentratesAtFrequency) {
  const auto x = tone(5000.0, 48000.0, 48000, 0.8);
  const Psd psd = welch_psd(x, 48000.0, 4096);
  const double in_band = psd.band_power(4900.0, 5100.0);
  const double total = psd.total_power();
  EXPECT_GT(in_band / total, 0.98);
  // Sine power = A^2/2.
  EXPECT_NEAR(total, 0.32, 0.02);
}

TEST(WelchPsd, FrequencyAxis) {
  const auto x = tone(1000.0, 8000.0, 8192);
  const Psd psd = welch_psd(x, 8000.0, 1024);
  EXPECT_NEAR(psd.bin_hz, 8000.0 / 1024.0, 1e-9);
  EXPECT_NEAR(psd.frequency(128), 1000.0, psd.bin_hz);
}

TEST(WelchPsd, ShortSignalStillWorks) {
  const auto x = tone(100.0, 1000.0, 300);
  const Psd psd = welch_psd(x, 1000.0, 4096);
  EXPECT_GT(psd.total_power(), 0.0);
}

TEST(WelchPsd, Validation) {
  EXPECT_THROW(welch_psd({}, 48000.0), std::invalid_argument);
  const auto x = tone(100.0, 1000.0, 100);
  EXPECT_THROW(welch_psd(x, 0.0), std::invalid_argument);
}

TEST(ToneSnr, CleanToneScoresHigh) {
  const auto x = tone(5000.0, 48000.0, 48000);
  EXPECT_GT(tone_snr_db(x, 48000.0, 5000.0, 100.0, 15000.0), 30.0);
}

TEST(ToneSnr, NoisyToneScoresNearTrueSnr) {
  std::mt19937 rng(32);
  std::normal_distribution<float> d(0.0F, 0.5F);
  auto x = tone(5000.0, 48000.0, 96000);
  for (auto& v : x) v += d(rng);
  // True SNR within measured band (noise in 100-15000 of 24k Nyquist):
  // tone power 0.5; noise total 0.25 spread evenly -> in-band fraction
  // (15000-100)/24000 = 0.62; SNR = 0.5 / 0.155 = 5.08 dB.
  const double snr = tone_snr_db(x, 48000.0, 5000.0, 100.0, 15000.0);
  EXPECT_NEAR(snr, 5.1, 1.5);
}

TEST(ToneSnr, MissingToneScoresLow) {
  std::mt19937 rng(33);
  std::normal_distribution<float> d(0.0F, 0.5F);
  std::vector<float> x(48000);
  for (auto& v : x) v = d(rng);
  EXPECT_LT(tone_snr_db(x, 48000.0, 5000.0, 100.0, 15000.0), 0.0);
}

TEST(BandPower, SplitsBands) {
  auto x = tone(2000.0, 48000.0, 48000, 1.0);
  const auto hi = tone(10000.0, 48000.0, 48000, 0.5);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += hi[i];
  const double p_lo = band_power(x, 48000.0, 1000.0, 3000.0);
  const double p_hi = band_power(x, 48000.0, 9000.0, 11000.0);
  EXPECT_NEAR(p_lo, 0.5, 0.05);
  EXPECT_NEAR(p_hi, 0.125, 0.02);
}

}  // namespace
}  // namespace fmbs::dsp
