#include "dsp/resample.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/goertzel.h"
#include "dsp/math_util.h"

namespace fmbs::dsp {
namespace {

std::vector<float> tone(double f, double fs, std::size_t n) {
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(std::sin(kTwoPi * f * static_cast<double>(i) / fs));
  }
  return x;
}

TEST(UpsampleLinear, FactorOneIsIdentity) {
  const std::vector<float> x{1.0F, 2.0F, 3.0F};
  const auto y = upsample_linear(x, 1);
  EXPECT_EQ(y, x);
}

TEST(UpsampleLinear, InterpolatesMidpoints) {
  const std::vector<float> x{0.0F, 1.0F, 0.0F};
  const auto y = upsample_linear(x, 2);
  ASSERT_EQ(y.size(), 5U);
  EXPECT_NEAR(y[0], 0.0F, 1e-6F);
  EXPECT_NEAR(y[1], 0.5F, 1e-6F);
  EXPECT_NEAR(y[2], 1.0F, 1e-6F);
  EXPECT_NEAR(y[3], 0.5F, 1e-6F);
  EXPECT_NEAR(y[4], 0.0F, 1e-6F);
}

TEST(UpsampleLinear, FactorTenToneSurvives) {
  // The cooperative path: x10 upsampling must preserve audio content.
  const auto x = tone(1000.0, 48000.0, 4800);
  const auto y = upsample_linear(x, 10);
  EXPECT_NEAR(goertzel_power(y, 1000.0, 480000.0), 0.25, 0.02);
}

TEST(UpsampleLinear, Validation) {
  EXPECT_THROW(upsample_linear(std::vector<float>{1.0F}, 0),
               std::invalid_argument);
}

TEST(DownsampleKeep, TakesEveryNth) {
  const std::vector<float> x{0.0F, 1.0F, 2.0F, 3.0F, 4.0F, 5.0F};
  const auto y = downsample_keep(x, 3);
  ASSERT_EQ(y.size(), 2U);
  EXPECT_EQ(y[0], 0.0F);
  EXPECT_EQ(y[1], 3.0F);
}

TEST(DownsampleKeep, InverseOfUpsampleLinear) {
  const auto x = tone(440.0, 48000.0, 1000);
  const auto y = downsample_keep(upsample_linear(x, 10), 10);
  ASSERT_EQ(y.size(), x.size() - 0);
  for (std::size_t i = 0; i < x.size() - 1; ++i) {
    EXPECT_NEAR(y[i], x[i], 1e-6F);
  }
}

TEST(LinearResampler, RatioValidation) {
  EXPECT_THROW(LinearResampler(0.0), std::invalid_argument);
  EXPECT_THROW(LinearResampler(-2.0), std::invalid_argument);
}

TEST(LinearResampler, OutputLengthTracksRatio) {
  LinearResampler rs(1.5);
  const auto x = tone(100.0, 8000.0, 800);
  const auto y = rs.process(x);
  EXPECT_NEAR(static_cast<double>(y.size()), 1200.0, 3.0);
}

TEST(LinearResampler, PreservesToneFrequency) {
  LinearResampler rs(2.0);
  const auto x = tone(500.0, 8000.0, 8000);
  const auto y = rs.process(x);
  // 500 Hz at 16 kHz now.
  EXPECT_NEAR(goertzel_power(y, 500.0, 16000.0), 0.25, 0.02);
}

TEST(LinearResampler, StreamingMatchesOneShot) {
  const auto x = tone(300.0, 8000.0, 1600);
  LinearResampler whole(0.75);
  const auto ref = whole.process(x);
  LinearResampler chunked(0.75);
  std::vector<float> got;
  for (std::size_t start = 0; start < x.size(); start += 111) {
    const std::size_t len = std::min<std::size_t>(111, x.size() - start);
    const auto part = chunked.process(std::span<const float>(x.data() + start, len));
    got.insert(got.end(), part.begin(), part.end());
  }
  ASSERT_NEAR(static_cast<double>(got.size()), static_cast<double>(ref.size()), 2.0);
  const std::size_t n = std::min(got.size(), ref.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-4F) << "at " << i;
  }
}

TEST(ResampleRational, UpsampleByTwoKeepsTone) {
  const auto x = tone(1000.0, 24000.0, 4800);
  const auto y = resample_rational(x, 2, 1);
  EXPECT_NEAR(static_cast<double>(y.size()), 9600.0, 16.0);
  EXPECT_NEAR(goertzel_power(y, 1000.0, 48000.0), 0.25, 0.03);
}

TEST(ResampleRational, FortyFourOneToFortyEight) {
  // The classic audio conversion 44.1 kHz -> 48 kHz is 160/147.
  const auto x = tone(997.0, 44100.0, 44100);
  const auto y = resample_rational(x, 160, 147);
  EXPECT_NEAR(static_cast<double>(y.size()), 48000.0, 200.0);
  EXPECT_NEAR(goertzel_power(y, 997.0, 48000.0), 0.25, 0.03);
}

TEST(ResampleRational, ReducesGcdInternally) {
  const auto x = tone(100.0, 8000.0, 800);
  const auto a = resample_rational(x, 4, 2);
  const auto b = resample_rational(x, 2, 1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-5F);
}

TEST(ResampleRational, Validation) {
  const std::vector<float> x{1.0F};
  EXPECT_THROW(resample_rational(x, 0, 1), std::invalid_argument);
  EXPECT_THROW(resample_rational(x, 1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::dsp
