#include "rx/cooperative.h"

#include <gtest/gtest.h>

#include <cmath>

#include "audio/metrics.h"
#include "audio/pesq_like.h"
#include "audio/speech_synth.h"
#include "audio/tone.h"
#include "dsp/correlate.h"
#include "dsp/nco.h"

namespace fmbs::rx {
namespace {

// Builds phone1/phone2 signals directly in the audio domain (unit test —
// the RF version lives in the integration suite): phone1 = ambient,
// phone2 = gain * (ambient + pilot/back per the coop baseband layout).
struct CoopFixture {
  audio::MonoBuffer phone1;
  audio::MonoBuffer phone2;
  audio::MonoBuffer content;
  tag::CoopPilotConfig pilot;
};

CoopFixture make_fixture(double phone2_gain, long delay_samples,
                         double payload_gain_change = 1.0) {
  CoopFixture f;
  const double rate = 48000.0;
  const double payload_seconds = 0.9;
  f.content = audio::synthesize_speech({}, payload_seconds, rate, 81);
  const audio::MonoBuffer ambient =
      audio::synthesize_speech({}, payload_seconds + 0.25 + 0.05, rate, 82);

  const auto pre_len = static_cast<std::size_t>(f.pilot.preamble_seconds * rate);
  dsp::Oscillator pilot_osc(f.pilot.pilot_hz, rate);
  std::vector<float> p2(ambient.size(), 0.0F);
  for (std::size_t i = 0; i < p2.size(); ++i) {
    float v = ambient.samples[i];
    if (i < pre_len) {
      v += static_cast<float>(f.pilot.preamble_level) * pilot_osc.next_real();
    } else {
      const std::size_t j = i - pre_len;
      float tagv = static_cast<float>(f.pilot.payload_level) * pilot_osc.next_real();
      if (j < f.content.size()) tagv += f.content.samples[j];
      v += tagv;
      v *= static_cast<float>(payload_gain_change);  // AGC-style gain step
    }
    p2[i] = static_cast<float>(phone2_gain) * v;
  }
  f.phone2 = audio::MonoBuffer(std::move(p2), rate);
  f.phone1 = audio::MonoBuffer(dsp::shift_signal(ambient.samples, delay_samples),
                               rate);
  return f;
}

TEST(Cooperative, CancelsAmbientCleanCase) {
  const CoopFixture f = make_fixture(1.0, 0);
  const CooperativeResult r = cancel_ambient(f.phone1, f.phone2);
  const double score = audio::pesq_like(f.content, r.backscatter_audio);
  EXPECT_GT(score, 3.5) << "residual ambient after cancellation";
}

TEST(Cooperative, HandlesUnsynchronizedReceivers) {
  // Phone1 delayed by 23 samples: the x10 resample + correlation must find
  // that phone1 needs advancing by +230 upsampled samples.
  const CoopFixture f = make_fixture(1.0, 23);
  const CooperativeResult r = cancel_ambient(f.phone1, f.phone2);
  EXPECT_NEAR(r.delay_samples, 230.0, 15.0);  // at the x10 rate
  const double score = audio::pesq_like(f.content, r.backscatter_audio);
  EXPECT_GT(score, 3.0);
}

TEST(Cooperative, LsqGainAbsorbsReceiverScale) {
  const CoopFixture f = make_fixture(2.5, 0);
  const CooperativeResult r = cancel_ambient(f.phone1, f.phone2);
  EXPECT_NEAR(r.ambient_gain, 2.5, 0.2);
  const double score = audio::pesq_like(f.content, r.backscatter_audio);
  EXPECT_GT(score, 3.0);
}

TEST(Cooperative, PilotCalibratesAgcStep) {
  // The payload plays 0.6x quieter than the preamble (gain control kicked
  // in); the 13 kHz pilot ratio must correct it.
  const CoopFixture f = make_fixture(1.0, 0, 0.6);
  const CooperativeResult r = cancel_ambient(f.phone1, f.phone2);
  EXPECT_NEAR(r.agc_ratio, 1.0 / 0.6, 0.15);
  const double score = audio::pesq_like(f.content, r.backscatter_audio);
  EXPECT_GT(score, 3.0);
}

TEST(Cooperative, NotchRemovesResidualPilot) {
  const CoopFixture f = make_fixture(1.0, 0);
  CooperativeConfig cfg;
  cfg.notch_pilot = true;
  const CooperativeResult with_notch = cancel_ambient(f.phone1, f.phone2, cfg);
  cfg.notch_pilot = false;
  const CooperativeResult without = cancel_ambient(f.phone1, f.phone2, cfg);
  auto pilot_power = [&](const audio::MonoBuffer& x) {
    double acc = 0.0;
    dsp::Oscillator osc(13000.0, 48000.0);
    for (const float v : x.samples) acc += v * osc.next_real();
    return std::abs(acc);
  };
  EXPECT_LT(pilot_power(with_notch.backscatter_audio),
            0.5 * pilot_power(without.backscatter_audio));
}

TEST(Cooperative, Validation) {
  const audio::MonoBuffer a(std::vector<float>(100, 0.0F), 48000.0);
  audio::MonoBuffer b = a;
  b.sample_rate = 44100.0;
  EXPECT_THROW(cancel_ambient(a, b), std::invalid_argument);
  EXPECT_THROW(cancel_ambient(audio::MonoBuffer{}, a), std::invalid_argument);
  // Too short for the preamble.
  EXPECT_THROW(cancel_ambient(a, a), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::rx
