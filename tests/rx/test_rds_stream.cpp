// RdsStreamDecoder vs decode_rds_link: the block-fed front end (persistent
// mixer + low-pass over the window) plus one-shot global stages must report
// exactly what decode_rds_link reports on the same window slice — PS name,
// RadioText, block counts, BLER — for whole-capture windows, offset burst
// windows, and windows truncated by the end of the capture.
#include "rx/rds_stream.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "audio/tone.h"
#include "fm/constants.h"
#include "fm/mpx.h"
#include "fm/rds.h"
#include "rx/rds_path.h"

namespace fmbs::rx {
namespace {

dsp::rvec rds_mpx(double seconds, const std::string& ps = "STREAMFM") {
  const audio::MonoBuffer l =
      audio::make_tone(800.0, 0.4, seconds, fm::kAudioRate);
  const audio::MonoBuffer r =
      audio::make_tone(2200.0, 0.4, seconds, fm::kAudioRate);
  fm::MpxConfig cfg;
  cfg.rds_level = 0.05;
  const auto groups = fm::make_ps_groups(ps);
  return fm::compose_mpx(
      audio::StereoBuffer(l.samples, r.samples, fm::kAudioRate), cfg,
      fm::serialize_groups(groups));
}

void expect_same_report(const RdsLinkReport& stream, const RdsLinkReport& one,
                        const std::string& where) {
  EXPECT_EQ(stream.synced, one.synced) << where;
  EXPECT_EQ(stream.blocks_ok, one.blocks_ok) << where;
  EXPECT_EQ(stream.blocks_failed, one.blocks_failed) << where;
  EXPECT_EQ(stream.bler, one.bler) << where;
  EXPECT_EQ(stream.ps_name, one.ps_name) << where;
  EXPECT_EQ(stream.radiotext, one.radiotext) << where;
}

void feed_blocks(RdsStreamDecoder& dec, const dsp::rvec& mpx,
                 std::size_t block) {
  for (std::size_t i = 0; i < mpx.size(); i += block) {
    const std::size_t n = std::min(block, mpx.size() - i);
    dec.push(std::span<const float>(mpx.data() + i, n));
  }
}

TEST(RdsStream, WholeCaptureMatchesOneShot) {
  const dsp::rvec mpx = rds_mpx(1.0);
  const RdsLinkReport one = decode_rds_link(mpx, fm::kMpxRate);
  for (const std::size_t block : {std::size_t{7919}, std::size_t{24000}}) {
    RdsStreamDecoder dec(fm::kMpxRate, mpx.size());
    feed_blocks(dec, mpx, block);
    EXPECT_TRUE(dec.window_complete());
    expect_same_report(dec.finish(), one, "block=" + std::to_string(block));
  }
  EXPECT_TRUE(one.synced);
  EXPECT_EQ(one.ps_name, "STREAMFM");
}

TEST(RdsStream, OffsetBurstWindowMatchesOneShot) {
  const dsp::rvec mpx = rds_mpx(1.2);
  const double start = 0.3;
  const double dur = 0.7;
  const RdsLinkReport one = decode_rds_link(mpx, fm::kMpxRate, start, dur);
  RdsStreamDecoder dec(fm::kMpxRate, mpx.size(), start, dur);
  feed_blocks(dec, mpx, 10007);
  EXPECT_TRUE(dec.window_complete());
  expect_same_report(dec.finish(), one, "offset window");
}

TEST(RdsStream, WindowTruncatedByCaptureMatchesOneShot) {
  const dsp::rvec mpx = rds_mpx(0.8);
  // Requested duration runs past the capture; both paths clamp to the end.
  const double start = 0.5;
  const double dur = 2.0;
  const RdsLinkReport one = decode_rds_link(mpx, fm::kMpxRate, start, dur);
  RdsStreamDecoder dec(fm::kMpxRate, mpx.size(), start, dur);
  feed_blocks(dec, mpx, 7919);
  EXPECT_TRUE(dec.window_complete());
  expect_same_report(dec.finish(), one, "truncated window");
}

TEST(RdsStream, MaxWindowCapBoundsBufferAndStillDecodes) {
  const dsp::rvec mpx = rds_mpx(2.0);
  RdsStreamDecoder dec(fm::kMpxRate, mpx.size(), 0.0, -1.0, 0.5);
  EXPECT_EQ(dec.buffer_bytes(),
            static_cast<std::size_t>(0.5 * fm::kMpxRate) * sizeof(dsp::cfloat));
  feed_blocks(dec, mpx, 24000);
  EXPECT_TRUE(dec.window_complete());
  // The capped window is itself a valid decode window: identical to the
  // one-shot decode of the first 0.5 s.
  const RdsLinkReport one = decode_rds_link(mpx, fm::kMpxRate, 0.0, 0.5);
  expect_same_report(dec.finish(), one, "capped window");
  EXPECT_EQ(dec.finish().ps_name, "STREAMFM");
}

TEST(RdsStream, FinishBeforeWindowCompleteScoresCollectedPrefix) {
  const dsp::rvec mpx = rds_mpx(1.0);
  RdsStreamDecoder dec(fm::kMpxRate, mpx.size());
  dec.push(std::span<const float>(mpx.data(), mpx.size() / 2));
  EXPECT_FALSE(dec.window_complete());
  // End-of-stream drain: report what was collected, don't crash or hang.
  const RdsLinkReport partial = dec.finish();
  EXPECT_LE(partial.blocks_ok,
            decode_rds_link(mpx, fm::kMpxRate).blocks_ok);
}

}  // namespace
}  // namespace fmbs::rx
