#include "rx/mrc.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "audio/metrics.h"
#include "audio/tone.h"
#include "fm/constants.h"
#include "rx/fsk_demod.h"
#include "tag/fsk.h"

namespace fmbs::rx {
namespace {

TEST(Mrc, AveragesRepeatedSegments) {
  // Signal + independent noise per repetition: combining must raise SNR.
  const auto clean = audio::make_tone(1000.0, 0.5, 0.25, 48000.0);
  std::mt19937 rng(71);
  std::normal_distribution<float> n(0.0F, 0.25F);
  std::vector<float> four;
  for (int r = 0; r < 4; ++r) {
    for (const float v : clean.samples) four.push_back(v + n(rng));
  }
  const audio::MonoBuffer rx(std::move(four), 48000.0);
  const audio::MonoBuffer combined = mrc_combine(rx, 4, 0);

  // SNR of one segment vs the combined segment.
  const std::span<const float> seg1(rx.samples.data(), clean.size());
  const double snr1 = audio::snr_db(clean.samples, seg1);
  const double snr4 = audio::snr_db(clean.samples, combined.samples);
  // 4x combining: up to 6 dB gain (paper: "SNR of the sum is up to N times").
  EXPECT_NEAR(snr4 - snr1, 6.0, 1.5);
}

TEST(Mrc, SnrGainFollowsRepetitionCount) {
  const auto clean = audio::make_tone(2000.0, 0.5, 0.2, 48000.0);
  std::mt19937 rng(72);
  std::normal_distribution<float> n(0.0F, 0.3F);
  double last_snr = -100.0;
  for (const std::size_t reps : {1U, 2U, 4U}) {
    std::vector<float> all;
    for (std::size_t r = 0; r < reps; ++r) {
      for (const float v : clean.samples) all.push_back(v + n(rng));
    }
    const audio::MonoBuffer combined =
        mrc_combine(audio::MonoBuffer(std::move(all), 48000.0), reps, 0);
    const double snr = audio::snr_db(clean.samples, combined.samples);
    EXPECT_GT(snr, last_snr);
    last_snr = snr;
  }
}

TEST(Mrc, ReducesBitErrors) {
  // The Fig. 9 mechanism at unit-test scale: FSK data + heavy uncorrelated
  // noise repeated 4x decodes better after combining.
  const auto bits = tag::random_bits(160, 73);
  const auto one = tag::modulate_fsk(bits, tag::DataRate::k1600bps, 48000.0);
  std::mt19937 rng(74);
  // Heavy enough that single-shot decoding reliably fails.
  std::normal_distribution<float> noise(0.0F, 1.1F);
  std::vector<float> all;
  for (int r = 0; r < 4; ++r) {
    for (const float v : one.samples) all.push_back(v + noise(rng));
  }
  const audio::MonoBuffer rx(std::move(all), 48000.0);

  const auto single = demodulate_fsk(
      audio::MonoBuffer(
          std::vector<float>(rx.samples.begin(),
                             rx.samples.begin() + one.samples.size()),
          48000.0),
      tag::DataRate::k1600bps, bits.size());
  const auto combined = demodulate_fsk(mrc_combine(rx, 4, 0),
                                       tag::DataRate::k1600bps, bits.size());
  const double ber_single = compare_bits(bits, single.bits).ber;
  const double ber_mrc = compare_bits(bits, combined.bits).ber;
  EXPECT_GT(ber_single, 0.02) << "baseline too clean to show the MRC gain";
  EXPECT_LT(ber_mrc, ber_single);
}

TEST(Mrc, AlignsDriftedSegments) {
  const auto clean = audio::make_tone(500.0, 0.5, 0.25, 48000.0);
  // Second copy shifted by 13 samples (receiver drift).
  std::vector<float> all(clean.samples.begin(), clean.samples.end());
  std::vector<float> shifted(clean.size(), 0.0F);
  for (std::size_t i = 13; i < clean.size(); ++i) {
    shifted[i] = clean.samples[i - 13];
  }
  all.insert(all.end(), shifted.begin(), shifted.end());
  const audio::MonoBuffer combined =
      mrc_combine(audio::MonoBuffer(std::move(all), 48000.0), 2, 64);
  // With alignment, amplitude stays ~0.5; without, partial cancellation.
  float peak = 0.0F;
  for (std::size_t i = 1000; i < combined.size() - 1000; ++i) {
    peak = std::max(peak, std::abs(combined.samples[i]));
  }
  EXPECT_GT(peak, 0.45F);
}

TEST(Mrc, SingleRepetitionIsIdentity) {
  const auto x = audio::make_tone(1000.0, 0.3, 0.1, 48000.0);
  const auto out = mrc_combine(x, 1);
  ASSERT_EQ(out.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(out.samples[i], x.samples[i], 1e-6F);
  }
}

TEST(Mrc, Validation) {
  const auto x = audio::make_tone(1000.0, 0.3, 0.1, 48000.0);
  EXPECT_THROW(mrc_combine(x, 0), std::invalid_argument);
  EXPECT_THROW(mrc_combine(audio::MonoBuffer{}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::rx
