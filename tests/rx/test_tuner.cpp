#include "rx/tuner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/math_util.h"
#include "dsp/nco.h"

namespace fmbs::rx {
namespace {

TEST(Tuner, DecimationFactor) {
  Tuner t{TunerConfig{}};
  EXPECT_EQ(t.decimation(), 10U);
}

TEST(Tuner, ShiftsWantedChannelToDc) {
  TunerConfig cfg;  // offset 600 kHz
  Tuner tuner(cfg);
  // A tone exactly at the offset becomes DC after tuning.
  dsp::Oscillator osc(600000.0, cfg.rf_rate);
  const dsp::cvec rf = osc.block_complex(240000);
  const dsp::cvec out = tuner.process(rf);
  ASSERT_EQ(out.size(), 24000U);
  // After settle, the output should be constant (DC) with near-unity power.
  double p = 0.0;
  for (std::size_t i = out.size() / 2; i < out.size(); ++i) p += std::norm(out[i]);
  p /= static_cast<double>(out.size() / 2);
  EXPECT_NEAR(p, 1.0, 0.05);
  for (std::size_t i = out.size() / 2 + 1; i < out.size(); ++i) {
    EXPECT_NEAR(std::abs(out[i] - out[i - 1]), 0.0F, 1e-2F);
  }
}

TEST(Tuner, RejectsAdjacentChannel) {
  // A strong signal at DC (the ambient station, 600 kHz away from the
  // backscatter channel) must be suppressed by the tuner's selectivity.
  TunerConfig cfg;
  Tuner tuner(cfg);
  dsp::cvec rf(240000, dsp::cfloat(1.0F, 0.0F));  // carrier at 0 Hz
  const dsp::cvec out = tuner.process(rf);
  double p = 0.0;
  for (std::size_t i = out.size() / 2; i < out.size(); ++i) p += std::norm(out[i]);
  p /= static_cast<double>(out.size() / 2);
  EXPECT_LT(dsp::db_from_power_ratio(p), -60.0)
      << "adjacent-channel suppression too weak";
}

TEST(Tuner, PassbandIsFlatEnough) {
  // A tone at offset + 80 kHz (inside the channel) keeps its power.
  TunerConfig cfg;
  Tuner tuner(cfg);
  dsp::Oscillator osc(680000.0, cfg.rf_rate);
  const dsp::cvec rf = osc.block_complex(240000);
  const dsp::cvec out = tuner.process(rf);
  double p = 0.0;
  for (std::size_t i = out.size() / 2; i < out.size(); ++i) p += std::norm(out[i]);
  p /= static_cast<double>(out.size() / 2);
  EXPECT_NEAR(p, 1.0, 0.1);
}

TEST(Tuner, BlockSizeValidation) {
  Tuner tuner{TunerConfig{}};
  dsp::cvec bad(1001);
  EXPECT_THROW(tuner.process(bad), std::invalid_argument);
}

TEST(Tuner, RateValidation) {
  TunerConfig cfg;
  cfg.output_rate = 210000.0;  // not an integer divisor
  EXPECT_THROW(Tuner{cfg}, std::invalid_argument);
}

TEST(Tuner, StreamingContinuity) {
  TunerConfig cfg;
  Tuner whole(cfg);
  Tuner chunked(cfg);
  dsp::Oscillator osc1(612000.0, cfg.rf_rate);
  const dsp::cvec rf = osc1.block_complex(120000);
  const dsp::cvec ref = whole.process(rf);
  dsp::cvec got;
  for (std::size_t start = 0; start < rf.size(); start += 24000) {
    const auto part = chunked.process(
        std::span<const dsp::cfloat>(rf.data() + start, 24000));
    got.insert(got.end(), part.begin(), part.end());
  }
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i].real(), ref[i].real(), 1e-4F);
    EXPECT_NEAR(got[i].imag(), ref[i].imag(), 1e-4F);
  }
}

}  // namespace
}  // namespace fmbs::rx
