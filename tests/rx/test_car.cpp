#include "rx/car.h"

#include <gtest/gtest.h>

#include "audio/tone.h"
#include "dsp/spectrum.h"

namespace fmbs::rx {
namespace {

using audio::make_silence;
using audio::make_tone;
using audio::MonoBuffer;

TEST(Cabin, SignalSurvivesReRecording) {
  const MonoBuffer in = make_tone(1000.0, 0.5, 1.0, 48000.0);
  const MonoBuffer out = apply_cabin_acoustics(in);
  const double p_in = dsp::band_power(in.samples, 48000.0, 900.0, 1100.0);
  const double p_out = dsp::band_power(out.samples, 48000.0, 900.0, 1100.0);
  // Reflections can add up to a few dB; the tone must clearly survive.
  EXPECT_GT(p_out, 0.5 * p_in);
}

TEST(Cabin, EngineNoisePresentWithSilentRadio) {
  // "we perform all experiments with the car's engine running".
  const MonoBuffer in = make_silence(1.0, 48000.0);
  const MonoBuffer out = apply_cabin_acoustics(in);
  const double p_rumble = dsp::band_power(out.samples, 48000.0, 25.0, 200.0);
  EXPECT_GT(p_rumble, 1e-7);
}

TEST(Cabin, EngineNoiseIsLowFrequency) {
  CabinConfig cfg;
  const MonoBuffer in = make_silence(1.0, 48000.0);
  const MonoBuffer out = apply_cabin_acoustics(in, cfg);
  const double p_low = dsp::band_power(out.samples, 48000.0, 25.0, 300.0);
  const double p_mid = dsp::band_power(out.samples, 48000.0, 2000.0, 6000.0);
  EXPECT_GT(p_low, 3.0 * p_mid);
}

TEST(Cabin, MicBandLimits) {
  CabinConfig cfg;
  cfg.engine_noise_rms = 0.0;
  // Very low frequency content is cut by the mic high-pass.
  const MonoBuffer sub = make_tone(20.0, 0.5, 1.0, 48000.0);
  const MonoBuffer out_sub = apply_cabin_acoustics(sub, cfg);
  EXPECT_LT(dsp::band_power(out_sub.samples, 48000.0, 10.0, 30.0),
            0.25 * dsp::band_power(sub.samples, 48000.0, 10.0, 30.0));
  // Very high frequency content is cut by the mic low-pass.
  const MonoBuffer hi = make_tone(20000.0, 0.5, 1.0, 48000.0);
  const MonoBuffer out_hi = apply_cabin_acoustics(hi, cfg);
  EXPECT_LT(dsp::band_power(out_hi.samples, 48000.0, 19000.0, 21000.0),
            0.5 * dsp::band_power(hi.samples, 48000.0, 19000.0, 21000.0));
}

TEST(Cabin, ReflectionsCreateEcho) {
  CabinConfig cfg;
  cfg.engine_noise_rms = 0.0;
  // An impulse should produce echoes at the configured delays.
  std::vector<float> impulse(4800, 0.0F);
  impulse[0] = 1.0F;
  const MonoBuffer out =
      apply_cabin_acoustics(MonoBuffer(impulse, 48000.0), cfg);
  const auto d1 = static_cast<std::size_t>(cfg.reflection1_delay_s * 48000.0);
  // The mic band-pass smears the impulse; check energy near the echo tap.
  double near_echo = 0.0;
  for (std::size_t i = d1 - 3; i <= d1 + 3; ++i) {
    near_echo = std::max(near_echo, std::abs(static_cast<double>(out.samples[i])));
  }
  EXPECT_GT(near_echo, 0.1);
}

TEST(Cabin, DeterministicPerSeed) {
  const MonoBuffer in = make_silence(0.2, 48000.0);
  const MonoBuffer a = apply_cabin_acoustics(in, CabinConfig{}, 5);
  const MonoBuffer b = apply_cabin_acoustics(in, CabinConfig{}, 5);
  EXPECT_EQ(a.samples, b.samples);
}

TEST(Cabin, Validation) {
  EXPECT_THROW(apply_cabin_acoustics(MonoBuffer{}), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::rx
