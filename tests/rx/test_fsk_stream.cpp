// StreamingBurstDemodulator vs demodulate_burst: the collector must capture
// exactly the window the one-shot router slices out of the full audio
// capture and score it identically — including windows truncated by the end
// of the capture and windows that start mid-block. Also pins the refactored
// burst_window_bounds/score_burst_window split against the original
// demodulate_burst behaviour.
#include "rx/fsk_stream.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "audio/tone.h"
#include "fm/constants.h"
#include "rx/multitag.h"
#include "tag/fsk.h"

namespace fmbs::rx {
namespace {

audio::MonoBuffer burst_capture(const BurstSpec& burst, double total_seconds,
                                double noise_rms = 0.002) {
  const audio::MonoBuffer payload =
      tag::modulate_fsk(burst.bits, burst.rate, fm::kAudioRate);
  audio::MonoBuffer capture = audio::concat(
      audio::make_silence(burst.start_seconds, fm::kAudioRate), payload);
  const auto total =
      static_cast<std::size_t>(total_seconds * fm::kAudioRate + 0.5);
  capture.samples.resize(total, 0.0F);
  const audio::MonoBuffer noise =
      audio::make_noise(noise_rms, total_seconds, fm::kAudioRate, 17);
  for (std::size_t i = 0; i < capture.samples.size() && i < noise.size();
       ++i) {
    capture.samples[i] += noise.samples[i];
  }
  return capture;
}

void expect_same_report(const BurstReport& stream, const BurstReport& one,
                        const std::string& where) {
  EXPECT_EQ(stream.ber.bit_errors, one.ber.bit_errors) << where;
  EXPECT_EQ(stream.ber.bits_compared, one.ber.bits_compared) << where;
  EXPECT_EQ(stream.ber.ber, one.ber.ber) << where;
  EXPECT_EQ(stream.packets, one.packets) << where;
  EXPECT_EQ(stream.packets_ok, one.packets_ok) << where;
  EXPECT_EQ(stream.bits_delivered, one.bits_delivered) << where;
  EXPECT_EQ(stream.per, one.per) << where;
  EXPECT_EQ(stream.mean_confidence, one.mean_confidence) << where;
}

void expect_stream_matches_one_shot(const audio::MonoBuffer& capture,
                                    const BurstSpec& burst,
                                    std::size_t block) {
  const BurstReport one = demodulate_burst(capture, burst);
  StreamingBurstDemodulator dec(burst, capture.sample_rate,
                                capture.samples.size());
  for (std::size_t i = 0; i < capture.samples.size(); i += block) {
    const std::size_t n = std::min(block, capture.samples.size() - i);
    dec.push(std::span<const float>(capture.samples.data() + i, n));
  }
  expect_same_report(dec.finish(), one, "block=" + std::to_string(block));
}

BurstSpec test_burst(double start_seconds = 0.12) {
  BurstSpec burst;
  burst.rate = tag::DataRate::k1600bps;
  burst.bits = tag::random_bits(96, 0xB0B5);
  burst.start_seconds = start_seconds;
  burst.packet_bits = 16;
  return burst;
}

TEST(FskStream, BlockFedMatchesOneShot) {
  const BurstSpec burst = test_burst();
  const audio::MonoBuffer capture = burst_capture(burst, 0.6);
  expect_stream_matches_one_shot(capture, burst, 997);
  expect_stream_matches_one_shot(capture, burst, 4800);
  expect_stream_matches_one_shot(capture, burst, capture.samples.size());
  // The decode is real: clean capture delivers every packet.
  const BurstReport one = demodulate_burst(capture, burst);
  EXPECT_EQ(one.packets_ok, one.packets);
  EXPECT_GT(one.bits_delivered, 0U);
}

TEST(FskStream, WindowCompletesMidStream) {
  const BurstSpec burst = test_burst(0.05);
  const audio::MonoBuffer capture = burst_capture(burst, 1.0);
  StreamingBurstDemodulator dec(burst, capture.sample_rate,
                                capture.samples.size());
  // The window (burst + tail slack) ends well before the capture does: the
  // collector must report completion without seeing the rest of the stream.
  std::size_t fed = 0;
  const std::size_t block = 2400;
  while (!dec.window_complete() && fed < capture.samples.size()) {
    const std::size_t n = std::min(block, capture.samples.size() - fed);
    dec.push(std::span<const float>(capture.samples.data() + fed, n));
    fed += n;
  }
  EXPECT_TRUE(dec.window_complete());
  EXPECT_LT(fed, capture.samples.size());
  expect_same_report(dec.finish(), demodulate_burst(capture, burst),
                     "mid-stream completion");
}

TEST(FskStream, TruncatedWindowMatchesOneShot) {
  // Capture ends before the burst window does (the end-of-run case): both
  // paths clamp the window to the capture and score the same samples.
  BurstSpec burst = test_burst(0.3);
  const double burst_len =
      tag::fsk_burst_seconds(burst.bits.size(), burst.rate, fm::kAudioRate);
  const audio::MonoBuffer capture =
      burst_capture(burst, 0.3 + 0.5 * burst_len);
  expect_stream_matches_one_shot(capture, burst, 997);
}

TEST(FskStream, WindowEntirelyPastCaptureMatchesOneShot) {
  // Burst starts after the capture ends: the one-shot router scores an
  // invalid window (no packets, BER 1); the collector must agree.
  BurstSpec burst = test_burst(2.0);
  const audio::MonoBuffer capture = burst_capture(test_burst(0.05), 0.5);
  const BurstReport one = demodulate_burst(capture, burst);
  StreamingBurstDemodulator dec(burst, capture.sample_rate,
                                capture.samples.size());
  dec.push(capture.samples);
  expect_same_report(dec.finish(), one, "window past capture");
  EXPECT_EQ(one.packets_ok, 0U);
}

TEST(FskStream, BufferIsWindowSizedNotCaptureSized) {
  const BurstSpec burst = test_burst(0.1);
  const double payload_seconds = static_cast<double>(burst.bits.size()) /
                                 tag::bits_per_second(burst.rate);
  // A long capture must not grow the collector: it holds the window only.
  StreamingBurstDemodulator dec(
      burst, fm::kAudioRate,
      static_cast<std::size_t>(100.0 * fm::kAudioRate));
  const auto window_cap = static_cast<std::size_t>(
      (payload_seconds + kBurstTailSlackSeconds) * fm::kAudioRate + 1.0);
  EXPECT_LE(dec.buffer_bytes(), window_cap * sizeof(float));
  EXPECT_GT(dec.buffer_bytes(), 0U);
}

}  // namespace
}  // namespace fmbs::rx
