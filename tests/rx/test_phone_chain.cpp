#include "rx/phone_chain.h"

#include <gtest/gtest.h>

#include "audio/tone.h"
#include "dsp/spectrum.h"

namespace fmbs::rx {
namespace {

using audio::make_tone;
using audio::MonoBuffer;

TEST(PhoneChain, PassesBelowCutoff) {
  const MonoBuffer in = make_tone(5000.0, 0.5, 0.5, 48000.0);
  const MonoBuffer out = apply_phone_chain(in);
  const double p_in = dsp::band_power(in.samples, 48000.0, 4900.0, 5100.0);
  const double p_out = dsp::band_power(out.samples, 48000.0, 4900.0, 5100.0);
  EXPECT_NEAR(p_out / p_in, 1.0, 0.1);
}

TEST(PhoneChain, CutsAboveThirteenKilohertz) {
  // Fig. 6: "a good response below 13 kHz, after which there is a sharp
  // drop".
  const MonoBuffer in = make_tone(14500.0, 0.5, 0.5, 48000.0);
  const MonoBuffer out = apply_phone_chain(in);
  const double p_in = dsp::band_power(in.samples, 48000.0, 14000.0, 15000.0);
  const double p_out = dsp::band_power(out.samples, 48000.0, 14000.0, 15000.0);
  EXPECT_LT(p_out / p_in, 0.1);
}

TEST(PhoneChain, TwelvePointEightStillPasses) {
  // The paper's top FDM tone (12.8 kHz) must survive the phone chain —
  // that's why the tone plan stops there.
  const MonoBuffer in = make_tone(12800.0, 0.5, 0.5, 48000.0);
  const MonoBuffer out = apply_phone_chain(in);
  const double p_in = dsp::band_power(in.samples, 48000.0, 12700.0, 12900.0);
  const double p_out = dsp::band_power(out.samples, 48000.0, 12700.0, 12900.0);
  EXPECT_GT(p_out / p_in, 0.5);
}

TEST(PhoneChain, CodecNoiseFloorPresent) {
  const MonoBuffer silence = audio::make_silence(0.5, 48000.0);
  PhoneChainConfig cfg;
  cfg.codec_noise_rms = 1e-3;
  const MonoBuffer out = apply_phone_chain(silence, cfg);
  double p = 0.0;
  for (const float v : out.samples) p += static_cast<double>(v) * v;
  p /= static_cast<double>(out.size());
  EXPECT_NEAR(std::sqrt(p), 1e-3, 3e-4);
}

TEST(PhoneChain, AgcNormalizesLevel) {
  PhoneChainConfig cfg;
  cfg.enable_agc = true;
  cfg.agc.target_rms = 0.2;
  const MonoBuffer quiet = make_tone(1000.0, 0.02, 2.0, 48000.0);
  const MonoBuffer out = apply_phone_chain(quiet, cfg);
  double p = 0.0;
  const std::size_t tail = out.size() / 2;
  for (std::size_t i = tail; i < out.size(); ++i) {
    p += static_cast<double>(out.samples[i]) * out.samples[i];
  }
  EXPECT_NEAR(std::sqrt(p / static_cast<double>(out.size() - tail)), 0.2, 0.05);
}

TEST(PhoneChain, StereoKeepsChannelsSeparate) {
  const MonoBuffer l = make_tone(1000.0, 0.5, 0.2, 48000.0);
  const MonoBuffer r = make_tone(3000.0, 0.5, 0.2, 48000.0);
  const audio::StereoBuffer out = apply_phone_chain(
      audio::StereoBuffer(l.samples, r.samples, 48000.0));
  EXPECT_GT(dsp::band_power(out.left, 48000.0, 900.0, 1100.0),
            10.0 * dsp::band_power(out.left, 48000.0, 2900.0, 3100.0));
  EXPECT_GT(dsp::band_power(out.right, 48000.0, 2900.0, 3100.0),
            10.0 * dsp::band_power(out.right, 48000.0, 900.0, 1100.0));
}

TEST(PhoneChain, Validation) {
  EXPECT_THROW(apply_phone_chain(audio::MonoBuffer{}), std::invalid_argument);
  PhoneChainConfig cfg;
  cfg.cutoff_hz = 30000.0;  // above Nyquist of 48 kHz audio
  const MonoBuffer in = make_tone(1000.0, 0.5, 0.1, 48000.0);
  EXPECT_THROW(apply_phone_chain(in, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::rx
