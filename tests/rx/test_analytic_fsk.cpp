// The closed-form FSK error model behind the hybrid fleet engine: curve
// properties (monotonicity, fading penalty, correct limits), the
// gamma<->BER inversion the calibration fit rests on, the deterministic
// burst/packet accounting, and — most load-bearing — the pinned calibration
// constants. The constants were fitted ONCE against the PHY demodulator
// (`bench_fleet_capacity --calibrate`); if this test fails after a
// demodulator or link-budget change, rerun the fit and re-pin BOTH here and
// in rx/analytic_fsk.cpp, keeping model and PHY in agreement.
#include "rx/analytic_fsk.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace fmbs::rx {
namespace {

const tag::DataRate kRates[] = {tag::DataRate::k100bps,
                                tag::DataRate::k1600bps,
                                tag::DataRate::k3200bps};

TEST(AnalyticFsk, CurveIsMonotoneAndBounded) {
  for (const tag::DataRate rate : kRates) {
    double prev = 1.0;
    for (double gamma_db = -10.0; gamma_db <= 30.0; gamma_db += 0.5) {
      const double gamma = std::pow(10.0, gamma_db / 10.0);
      const double ber = analytic_fsk_ber_at_gamma(gamma, rate);
      EXPECT_GE(ber, 0.0);
      EXPECT_LE(ber, 0.5);
      EXPECT_LE(ber, prev + 1e-12) << "BER must not rise with SNR";
      prev = ber;
    }
    // Limits: no signal -> chance level; strong signal -> error-free.
    EXPECT_NEAR(analytic_fsk_ber_at_gamma(0.0, rate), 0.5, 1e-9);
    EXPECT_LT(analytic_fsk_ber_at_gamma(1e4, rate), 1e-12);
  }
}

TEST(AnalyticFsk, RayleighFadingIsAlwaysWorse) {
  for (const tag::DataRate rate : kRates) {
    for (double gamma_db = 0.0; gamma_db <= 25.0; gamma_db += 1.0) {
      const double gamma = std::pow(10.0, gamma_db / 10.0);
      EXPECT_GE(analytic_fsk_ber_at_gamma(gamma, rate, true),
                analytic_fsk_ber_at_gamma(gamma, rate, false))
          << "fading cannot improve a noncoherent link (gamma_db="
          << gamma_db << ")";
    }
  }
}

TEST(AnalyticFsk, GammaFromBerInvertsTheCurve) {
  for (const tag::DataRate rate : kRates) {
    for (const double ber : {0.3, 0.1, 0.02, 1e-3, 1e-5}) {
      const double gamma = analytic_fsk_gamma_from_ber(ber, rate);
      EXPECT_NEAR(analytic_fsk_ber_at_gamma(gamma, rate), ber, ber * 1e-5);
    }
  }
}

TEST(AnalyticFsk, BinaryCurveMatchesTheTextbookForm) {
  // Pb = 1/2 exp(-gamma/2) for binary noncoherent orthogonal FSK.
  for (const double gamma : {0.5, 2.0, 8.0, 20.0}) {
    EXPECT_NEAR(analytic_fsk_ber_at_gamma(gamma, tag::DataRate::k100bps),
                0.5 * std::exp(-0.5 * gamma), 1e-12);
  }
}

TEST(AnalyticFsk, BurstAccountingMirrorsThePacketRule) {
  // Error-free link: every packet delivered, ragged final packet counts
  // only its own bits (129 bits in 64-bit packets = 64 + 64 + 1).
  const AnalyticBurstReport clean =
      analytic_fsk_burst(60.0, tag::DataRate::k1600bps, 129, 64);
  EXPECT_EQ(clean.packets, 3U);
  EXPECT_EQ(clean.packets_ok, 3U);
  EXPECT_EQ(clean.bits_delivered, 129U);
  EXPECT_NEAR(clean.per, 0.0, 1e-12);

  // Chance-level link: nothing survives.
  const AnalyticBurstReport dead =
      analytic_fsk_burst(-60.0, tag::DataRate::k1600bps, 128, 64);
  // The calibrated gamma at -60 dB is tiny but not exactly zero.
  EXPECT_NEAR(dead.ber, 0.5, 1e-6);
  EXPECT_EQ(dead.packets_ok, 0U);
  EXPECT_EQ(dead.bits_delivered, 0U);

  // packet_bits == 0 means one packet spanning the payload.
  EXPECT_EQ(analytic_fsk_burst(60.0, tag::DataRate::k100bps, 96, 0).packets,
            1U);
  EXPECT_THROW(analytic_fsk_burst(10.0, tag::DataRate::k100bps, 0, 0),
               std::invalid_argument);
}

TEST(AnalyticFsk, DeliveryThresholdTiesDeliver) {
  // (1 - ber)^bits == 0.5 exactly at ber = 1 - 2^(-1/bits); the packet rule
  // delivers at the tie so a zero-BER link can never be dropped.
  const double tie_ber = 1.0 - std::pow(2.0, -1.0 / 64.0);
  const double gamma =
      analytic_fsk_gamma_from_ber(tie_ber, tag::DataRate::k1600bps);
  const double ber = analytic_fsk_ber_at_gamma(gamma, tag::DataRate::k1600bps);
  const double p_ok = std::pow(1.0 - ber, 64.0);
  if (p_ok >= 0.5) {
    // Representable as >= 0.5: must deliver.
    AnalyticBurstReport rep;
    rep.ber = ber;
    EXPECT_GE(p_ok, 0.5);
  }
  // The unambiguous cases around the knee.
  EXPECT_EQ(analytic_fsk_burst(60.0, tag::DataRate::k1600bps, 64, 64)
                .packets_ok,
            1U);
  EXPECT_EQ(analytic_fsk_burst(-60.0, tag::DataRate::k1600bps, 64, 64)
                .packets_ok,
            0U);
}

TEST(AnalyticFsk, PinnedCalibrationConstants) {
  // Fitted by `bench_fleet_capacity --calibrate` against the signal-level
  // demodulator; see the file header before editing these.
  const AnalyticFskCalibration c100 =
      analytic_fsk_calibration(tag::DataRate::k100bps);
  EXPECT_NEAR(c100.gamma_offset_db, 7.16855, 1e-9);
  EXPECT_NEAR(c100.gamma_slope, 1.0, 1e-9);
  EXPECT_NEAR(c100.ber_floor, 0.0, 1e-12);
  const AnalyticFskCalibration c1600 =
      analytic_fsk_calibration(tag::DataRate::k1600bps);
  EXPECT_NEAR(c1600.gamma_offset_db, 8.88947, 1e-9);
  EXPECT_NEAR(c1600.gamma_slope, 1.16737, 1e-9);
  EXPECT_NEAR(c1600.ber_floor, 0.0, 1e-12);
  const AnalyticFskCalibration c3200 =
      analytic_fsk_calibration(tag::DataRate::k3200bps);
  EXPECT_NEAR(c3200.gamma_offset_db, 9.56851, 1e-9);
  EXPECT_NEAR(c3200.gamma_slope, 1.9745, 1e-9);
  EXPECT_NEAR(c3200.ber_floor, 0.0234375, 1e-12);  // 12 errors / 512 bits
}

}  // namespace
}  // namespace fmbs::rx
