#include "rx/fsk_demod.h"

#include <gtest/gtest.h>

#include <random>

#include "audio/tone.h"
#include "dsp/correlate.h"
#include "fm/constants.h"
#include "tag/fsk.h"

namespace fmbs::rx {
namespace {

using tag::DataRate;

class AllRates : public ::testing::TestWithParam<DataRate> {};

TEST_P(AllRates, CleanLoopbackIsErrorFree) {
  const auto bits = tag::random_bits(240, 61);
  const auto wave = tag::modulate_fsk(bits, GetParam(), fm::kAudioRate);
  const auto out = demodulate_fsk(wave, GetParam(), bits.size());
  const auto ber = compare_bits(bits, out.bits);
  EXPECT_EQ(ber.bit_errors, 0U);
  EXPECT_GT(out.mean_confidence, 0.3);
}

TEST_P(AllRates, SurvivesUnknownDelay) {
  // The demodulator must find symbol timing for any sub-symbol delay.
  const auto bits = tag::random_bits(160, 62);
  const auto wave = tag::modulate_fsk(bits, GetParam(), fm::kAudioRate);
  const auto p = tag::FskParams::for_rate(GetParam());
  const auto sps = static_cast<long>(fm::kAudioRate / p.symbol_rate);
  for (const long delay : {sps / 7, sps / 3, sps / 2, 3 * sps / 4}) {
    audio::MonoBuffer delayed(dsp::shift_signal(wave.samples, delay),
                              fm::kAudioRate);
    const auto out = demodulate_fsk(delayed, GetParam(), bits.size());
    const auto ber = compare_bits(bits, out.bits);
    EXPECT_LE(ber.bit_errors, 8U) << "delay " << delay;  // edge symbols only
  }
}

TEST_P(AllRates, SurvivesModerateNoise) {
  const auto bits = tag::random_bits(240, 63);
  auto wave = tag::modulate_fsk(bits, GetParam(), fm::kAudioRate);
  std::mt19937 rng(64);
  std::normal_distribution<float> n(0.0F, 0.1F);
  for (auto& v : wave.samples) v += n(rng);
  const auto out = demodulate_fsk(wave, GetParam(), bits.size());
  const auto ber = compare_bits(bits, out.bits);
  EXPECT_LT(ber.ber, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Rates, AllRates,
                         ::testing::Values(DataRate::k100bps, DataRate::k1600bps,
                                           DataRate::k3200bps));

TEST(FskDemod, NonCoherentAmplitudeInvariance) {
  // "eliminates the need for phase and amplitude estimation": scaling the
  // waveform must not change decisions.
  const auto bits = tag::random_bits(120, 65);
  auto wave = tag::modulate_fsk(bits, DataRate::k1600bps, fm::kAudioRate);
  for (auto& v : wave.samples) v *= 0.003F;
  const auto out = demodulate_fsk(wave, DataRate::k1600bps, bits.size());
  EXPECT_EQ(compare_bits(bits, out.bits).bit_errors, 0U);
}

TEST(FskDemod, StrongInterferenceBreaksIt) {
  // Sanity: the demodulator is not magic — overwhelming in-band noise must
  // produce high BER (protects against metrics that always "pass").
  const auto bits = tag::random_bits(240, 66);
  auto wave = tag::modulate_fsk(bits, DataRate::k3200bps, fm::kAudioRate);
  std::mt19937 rng(67);
  std::normal_distribution<float> n(0.0F, 2.0F);
  for (auto& v : wave.samples) v += n(rng);
  const auto out = demodulate_fsk(wave, DataRate::k3200bps, bits.size());
  EXPECT_GT(compare_bits(bits, out.bits).ber, 0.1);
}

TEST(FskDemod, ShortCaptureCountsMissingBitsAsErrors) {
  const auto bits = tag::random_bits(100, 68);
  const auto wave = tag::modulate_fsk(bits, DataRate::k100bps, fm::kAudioRate);
  // Truncate to half the bits.
  audio::MonoBuffer half(
      std::vector<float>(wave.samples.begin(),
                         wave.samples.begin() + wave.samples.size() / 2),
      fm::kAudioRate);
  const auto out = demodulate_fsk(half, DataRate::k100bps, bits.size());
  const auto ber = compare_bits(bits, out.bits);
  EXPECT_EQ(ber.bits_compared, bits.size());
  EXPECT_GE(ber.bit_errors, 45U);
}

TEST(FskDemod, Validation) {
  EXPECT_THROW(demodulate_fsk(audio::MonoBuffer{}, DataRate::k100bps, 10),
               std::invalid_argument);
}

TEST(CompareBits, CountsCorrectly) {
  const std::vector<std::uint8_t> a{1, 0, 1, 1};
  const std::vector<std::uint8_t> b{1, 1, 1, 0};
  const auto r = compare_bits(a, b);
  EXPECT_EQ(r.bit_errors, 2U);
  EXPECT_EQ(r.bits_compared, 4U);
  EXPECT_NEAR(r.ber, 0.5, 1e-12);
}

}  // namespace
}  // namespace fmbs::rx
