#include "audio/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "audio/speech_synth.h"
#include "audio/tone.h"
#include "dsp/correlate.h"

namespace fmbs::audio {
namespace {

TEST(Snr, IdenticalSignalsScoreVeryHigh) {
  const MonoBuffer t = make_tone(1000.0, 0.5, 0.5, 48000.0);
  EXPECT_GE(snr_db(t.samples, t.samples), 100.0);
}

TEST(Snr, KnownNoiseLevel) {
  const MonoBuffer sig = make_tone(1000.0, 1.0, 1.0, 48000.0);
  const MonoBuffer noise = make_noise(0.1, 1.0, 48000.0, 3);
  const MonoBuffer noisy = mix(sig, noise);
  // SNR = (1/2) / 0.01 = 50 -> 17 dB.
  EXPECT_NEAR(snr_db(sig.samples, noisy.samples), 17.0, 0.5);
}

TEST(Snr, EmptyThrows) {
  EXPECT_THROW(snr_db({}, {}), std::invalid_argument);
}

TEST(SegmentalSnr, TracksPlainSnrForStationarySignals) {
  const MonoBuffer sig = make_tone(500.0, 1.0, 2.0, 48000.0);
  const MonoBuffer noise = make_noise(0.05, 2.0, 48000.0, 4);
  const MonoBuffer noisy = mix(sig, noise);
  const double seg = segmental_snr_db(sig.samples, noisy.samples, 48000.0);
  EXPECT_NEAR(seg, 23.0, 2.0);
}

TEST(SegmentalSnr, IgnoresSilentFrames) {
  // Half tone, half silence; noise everywhere. Segmental SNR should reflect
  // the active region only.
  MonoBuffer sig = concat(make_tone(500.0, 1.0, 1.0, 48000.0),
                          make_silence(1.0, 48000.0));
  const MonoBuffer noise = make_noise(0.05, 2.0, 48000.0, 5);
  const MonoBuffer noisy = mix(sig, noise);
  const double seg = segmental_snr_db(sig.samples, noisy.samples, 48000.0);
  EXPECT_GT(seg, 15.0);
}

TEST(AlignAndScale, RecoversDelayAndGain) {
  const MonoBuffer ref = synthesize_speech({}, 1.0, 48000.0, 6);
  // Delayed and attenuated copy.
  std::vector<float> delayed = dsp::shift_signal(ref.samples, 480);  // 10 ms
  for (auto& v : delayed) v *= 0.4F;
  const AlignedPair pair = align_and_scale(ref.samples, delayed, 4800);
  // `delayed` lags the reference, so it must be advanced by +480 samples.
  EXPECT_NEAR(pair.delay_samples, 480.0, 2.0);
  EXPECT_NEAR(pair.gain, 1.0 / 0.4, 0.05);
  // After alignment + scaling, the SNR must be very high.
  EXPECT_GT(snr_db(pair.reference, pair.test), 30.0);
}

TEST(AlignAndScale, HandlesAdvance) {
  const MonoBuffer ref = synthesize_speech({}, 1.0, 48000.0, 7);
  std::vector<float> advanced = dsp::shift_signal(ref.samples, -333);
  const AlignedPair pair = align_and_scale(ref.samples, advanced, 1000);
  EXPECT_NEAR(pair.delay_samples, -333.0, 2.0);
  EXPECT_GT(snr_db(pair.reference, pair.test), 30.0);
}

TEST(AlignAndScale, EmptyThrows) {
  EXPECT_THROW(align_and_scale({}, {}, 10), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::audio
