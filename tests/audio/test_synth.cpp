#include <gtest/gtest.h>

#include <cmath>

#include "audio/music_synth.h"
#include "audio/program.h"
#include "audio/speech_synth.h"
#include "audio/tone.h"
#include "dsp/math_util.h"
#include "dsp/spectrum.h"

namespace fmbs::audio {
namespace {

TEST(ToneGen, FrequencyAndAmplitude) {
  const MonoBuffer t = make_tone(1000.0, 0.5, 1.0, 48000.0);
  EXPECT_NEAR(dsp::rms(t.samples), 0.5 / std::sqrt(2.0), 0.01);
  const double p = dsp::band_power(t.samples, 48000.0, 900.0, 1100.0);
  EXPECT_NEAR(p, 0.125, 0.01);
}

TEST(ToneGen, MultitoneSplitsAmplitude) {
  const MonoBuffer t = make_multitone({1000.0, 3000.0}, 1.0, 1.0, 48000.0);
  const double p1 = dsp::band_power(t.samples, 48000.0, 900.0, 1100.0);
  const double p3 = dsp::band_power(t.samples, 48000.0, 2900.0, 3100.0);
  EXPECT_NEAR(p1, 0.125, 0.02);
  EXPECT_NEAR(p3, 0.125, 0.02);
}

TEST(ToneGen, ChirpSweepsBand) {
  const MonoBuffer c = make_chirp(500.0, 5000.0, 1.0, 1.0, 48000.0);
  // Power should be spread through the swept band, none far above it.
  const double in_band = dsp::band_power(c.samples, 48000.0, 400.0, 5100.0);
  const double out_band = dsp::band_power(c.samples, 48000.0, 9000.0, 20000.0);
  EXPECT_GT(in_band, 100.0 * out_band);
}

TEST(ToneGen, NoiseRms) {
  const MonoBuffer n = make_noise(0.2, 1.0, 48000.0, 5);
  EXPECT_NEAR(dsp::rms(n.samples), 0.2, 0.01);
}

TEST(ToneGen, NoiseDeterministicPerSeed) {
  const MonoBuffer a = make_noise(0.1, 0.1, 48000.0, 42);
  const MonoBuffer b = make_noise(0.1, 0.1, 48000.0, 42);
  const MonoBuffer c = make_noise(0.1, 0.1, 48000.0, 43);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_NE(a.samples, c.samples);
}

TEST(ToneGen, MixAndConcat) {
  const MonoBuffer a = make_tone(100.0, 0.2, 0.1, 8000.0);
  const MonoBuffer b = make_tone(200.0, 0.2, 0.2, 8000.0);
  EXPECT_EQ(concat(a, b).size(), a.size() + b.size());
  EXPECT_EQ(mix(a, b).size(), a.size());
  const MonoBuffer other(std::vector<float>(10), 44100.0);
  EXPECT_THROW(concat(a, other), std::invalid_argument);
  EXPECT_THROW(mix(a, other), std::invalid_argument);
}

TEST(SpeechSynth, EnergyConcentratesInSpeechBand) {
  const MonoBuffer s = synthesize_speech({}, 4.0, 48000.0, 7);
  const double speech_band = dsp::band_power(s.samples, 48000.0, 100.0, 4000.0);
  const double high_band = dsp::band_power(s.samples, 48000.0, 8000.0, 15000.0);
  EXPECT_GT(speech_band, 30.0 * high_band)
      << "speech synthesizer should be spectrally speech-like";
}

TEST(SpeechSynth, HasPauses) {
  const MonoBuffer s = synthesize_speech({}, 6.0, 48000.0, 8);
  // Count 30 ms frames with negligible energy: news/talk should pause.
  const std::size_t frame = 1440;
  std::size_t silent = 0, total = 0;
  const double gate = 0.01 * dsp::mean_square(s.samples);
  for (std::size_t i = 0; i + frame <= s.size(); i += frame) {
    double p = 0.0;
    for (std::size_t k = i; k < i + frame; ++k) {
      p += static_cast<double>(s.samples[k]) * s.samples[k];
    }
    if (p / frame < gate) ++silent;
    ++total;
  }
  EXPECT_GT(static_cast<double>(silent) / static_cast<double>(total), 0.05);
}

TEST(SpeechSynth, NormalizedRms) {
  SpeechConfig cfg;
  cfg.level_rms = 0.15;
  const MonoBuffer s = synthesize_speech(cfg, 4.0, 48000.0, 9);
  EXPECT_NEAR(dsp::rms(s.samples), 0.15, 0.02);
}

TEST(SpeechSynth, DeterministicPerSeed) {
  const MonoBuffer a = synthesize_speech({}, 1.0, 48000.0, 10);
  const MonoBuffer b = synthesize_speech({}, 1.0, 48000.0, 10);
  EXPECT_EQ(a.samples, b.samples);
}

TEST(MusicSynth, BroaderSpectrumThanSpeech) {
  const MonoBuffer m = synthesize_music(rock_music_config(), 4.0, 48000.0, 11);
  const MonoBuffer s = synthesize_speech({}, 4.0, 48000.0, 11);
  const auto ratio = [](const MonoBuffer& x) {
    return dsp::band_power(x.samples, 48000.0, 4000.0, 15000.0) /
           dsp::band_power(x.samples, 48000.0, 100.0, 4000.0);
  };
  EXPECT_GT(ratio(m), 3.0 * ratio(s));
}

TEST(MusicSynth, RockBrighterThanPop) {
  const MonoBuffer rock = synthesize_music(rock_music_config(), 4.0, 48000.0, 12);
  const MonoBuffer pop = synthesize_music(pop_music_config(), 4.0, 48000.0, 12);
  const auto treble = [](const MonoBuffer& x) {
    return dsp::band_power(x.samples, 48000.0, 3000.0, 12000.0) /
           dsp::mean_square(x.samples);
  };
  EXPECT_GT(treble(rock), treble(pop));
}

TEST(Program, NewsHasMinimalSideEnergy) {
  ProgramConfig cfg;
  cfg.genre = ProgramGenre::kNews;
  const StereoBuffer p = render_program(cfg, 4.0, 48000.0, 13);
  const double side = dsp::mean_square(p.side().samples);
  const double mid = dsp::mean_square(p.mid().samples);
  EXPECT_LT(side / mid, 0.01)
      << "news stations play the same speech on both channels (paper Fig. 5)";
}

TEST(Program, MusicHasSubstantialSideEnergy) {
  ProgramConfig cfg;
  cfg.genre = ProgramGenre::kRock;
  const StereoBuffer p = render_program(cfg, 4.0, 48000.0, 14);
  const double side = dsp::mean_square(p.side().samples);
  const double mid = dsp::mean_square(p.mid().samples);
  EXPECT_GT(side / mid, 0.02);
}

TEST(Program, MonoModeHasExactlyZeroSide) {
  ProgramConfig cfg;
  cfg.genre = ProgramGenre::kPop;
  cfg.stereo = false;
  const StereoBuffer p = render_program(cfg, 1.0, 48000.0, 15);
  for (const float v : p.side().samples) EXPECT_EQ(v, 0.0F);
}

TEST(Program, SilenceIsSilent) {
  ProgramConfig cfg;
  cfg.genre = ProgramGenre::kSilence;
  const StereoBuffer p = render_program(cfg, 0.5, 48000.0, 16);
  EXPECT_LT(dsp::rms(p.mid().samples), 1e-6);
}

TEST(Program, GenreNames) {
  EXPECT_EQ(to_string(ProgramGenre::kNews), "news");
  EXPECT_EQ(to_string(ProgramGenre::kMixed), "mixed");
  EXPECT_EQ(to_string(ProgramGenre::kPop), "pop");
  EXPECT_EQ(to_string(ProgramGenre::kRock), "rock");
}

}  // namespace
}  // namespace fmbs::audio
