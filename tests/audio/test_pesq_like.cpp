#include "audio/pesq_like.h"

#include <gtest/gtest.h>

#include <cmath>

#include "audio/speech_synth.h"
#include "audio/tone.h"
#include "dsp/correlate.h"

namespace fmbs::audio {
namespace {

MonoBuffer speech(double seconds, std::uint64_t seed) {
  return synthesize_speech({}, seconds, 48000.0, seed);
}

// Calibration anchor 1: a clean signal scores near the top of the scale.
TEST(PesqLike, CleanSpeechScoresHigh) {
  const MonoBuffer ref = speech(1.2, 21);
  EXPECT_GT(pesq_like(ref, ref), 4.3);
}

// Calibration anchor 2 (DESIGN.md): speech-on-speech interference at 0 dB
// audio SNR — the overlay backscatter situation — scores ~2.
TEST(PesqLike, ZeroDbSpeechInterferenceScoresNearTwo) {
  const MonoBuffer ref = speech(3.0, 22);
  MonoBuffer interferer = speech(3.0, 23);
  // Scale interferer to equal power.
  double pr = 0.0, pi = 0.0;
  for (const float v : ref.samples) pr += static_cast<double>(v) * v;
  for (const float v : interferer.samples) pi += static_cast<double>(v) * v;
  const float g = static_cast<float>(std::sqrt(pr / pi));
  MonoBuffer degraded = ref;
  for (std::size_t i = 0; i < degraded.size(); ++i) {
    degraded.samples[i] += g * interferer.samples[i];
  }
  const double score = pesq_like(ref, degraded);
  EXPECT_GT(score, 1.5);
  EXPECT_LT(score, 2.6);
}

TEST(PesqLike, MonotoneInNoiseLevel) {
  const MonoBuffer ref = speech(1.2, 24);
  double last = 5.0;
  for (const double rms : {0.002, 0.01, 0.05, 0.25}) {
    const MonoBuffer noise = make_noise(rms, 1.2, 48000.0, 25);
    const MonoBuffer degraded = mix(ref, noise);
    const double score = pesq_like(ref, degraded);
    EXPECT_LT(score, last + 0.05) << "not monotone at rms " << rms;
    last = score;
  }
  EXPECT_LT(last, 2.0);
}

TEST(PesqLike, InsensitiveToDelayAndGain) {
  const MonoBuffer ref = speech(1.2, 26);
  MonoBuffer shifted = ref;
  shifted.samples = dsp::shift_signal(ref.samples, 960);  // 20 ms
  for (auto& v : shifted.samples) v *= 0.5F;
  const double plain = pesq_like(ref, ref);
  const double moved = pesq_like(ref, shifted);
  EXPECT_NEAR(moved, plain, 0.35);
}

TEST(PesqLike, ScoreBoundsRespected) {
  const MonoBuffer ref = speech(1.2, 27);
  const MonoBuffer junk = make_noise(0.5, 1.2, 48000.0, 28);
  const double bad = pesq_like(ref, junk);
  EXPECT_GE(bad, 0.9);
  EXPECT_LE(bad, 1.6);
}

TEST(PesqLike, PerceptualSnrTracksTrueSnr) {
  const MonoBuffer ref = speech(1.2, 29);
  const MonoBuffer quiet_noise = make_noise(0.01, 1.2, 48000.0, 30);
  const MonoBuffer loud_noise = make_noise(0.1, 1.2, 48000.0, 31);
  const double hi = perceptual_snr_db(ref, mix(ref, quiet_noise));
  const double lo = perceptual_snr_db(ref, mix(ref, loud_noise));
  EXPECT_GT(hi, lo + 10.0);
}

TEST(PesqLike, ValidatesInput) {
  const MonoBuffer ref = speech(0.5, 32);
  MonoBuffer other = ref;
  other.sample_rate = 44100.0;
  EXPECT_THROW(pesq_like(ref, other), std::invalid_argument);
  EXPECT_THROW(pesq_like(MonoBuffer{}, ref), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::audio
