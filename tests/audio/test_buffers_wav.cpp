#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "audio/audio_buffer.h"
#include "audio/tone.h"
#include "audio/wav.h"

namespace fmbs::audio {
namespace {

TEST(AudioBuffer, DurationAndSize) {
  MonoBuffer m(std::vector<float>(48000, 0.0F), 48000.0);
  EXPECT_EQ(m.size(), 48000U);
  EXPECT_NEAR(m.duration_seconds(), 1.0, 1e-9);
  EXPECT_FALSE(m.empty());
}

TEST(AudioBuffer, StereoMismatchThrows) {
  EXPECT_THROW(StereoBuffer(std::vector<float>(10), std::vector<float>(11), 48000.0),
               std::invalid_argument);
}

TEST(AudioBuffer, MidSideRoundTrip) {
  std::vector<float> l{1.0F, 0.5F, -0.5F};
  std::vector<float> r{0.0F, 0.5F, 0.5F};
  StereoBuffer s(l, r, 48000.0);
  const MonoBuffer mid = s.mid();
  const MonoBuffer side = s.side();
  for (std::size_t i = 0; i < l.size(); ++i) {
    EXPECT_NEAR(mid.samples[i] + side.samples[i], l[i], 1e-6F);
    EXPECT_NEAR(mid.samples[i] - side.samples[i], r[i], 1e-6F);
  }
}

TEST(AudioBuffer, DualMonoHasZeroSide) {
  const MonoBuffer m = make_tone(440.0, 0.5, 0.01, 48000.0);
  const StereoBuffer s = StereoBuffer::dual_mono(m);
  for (const float v : s.side().samples) EXPECT_EQ(v, 0.0F);
}

class WavRoundTrip : public ::testing::Test {
 protected:
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path_ = "/tmp/fmbs_test_wav.wav";
};

TEST_F(WavRoundTrip, MonoPcm16) {
  const MonoBuffer in = make_tone(1000.0, 0.5, 0.1, 48000.0);
  write_wav(path_, in);
  const MonoBuffer out = read_wav(path_);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(out.sample_rate, 48000.0);
  for (std::size_t i = 0; i < in.size(); i += 97) {
    EXPECT_NEAR(out.samples[i], in.samples[i], 1.5e-4F);
  }
}

TEST_F(WavRoundTrip, StereoDownmixesOnRead) {
  const MonoBuffer l = make_tone(500.0, 0.8, 0.05, 44100.0);
  const MonoBuffer r = make_silence(0.05, 44100.0);
  write_wav(path_, StereoBuffer(l.samples, r.samples, 44100.0));
  const MonoBuffer out = read_wav(path_);
  EXPECT_EQ(out.sample_rate, 44100.0);
  // Downmix = (L+R)/2 = L/2.
  float peak = 0.0F;
  for (const float v : out.samples) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 0.4F, 0.02F);
}

TEST_F(WavRoundTrip, ClipsOutOfRange) {
  MonoBuffer loud(std::vector<float>(100, 3.0F), 8000.0);
  write_wav(path_, loud);
  const MonoBuffer out = read_wav(path_);
  for (const float v : out.samples) EXPECT_LE(v, 1.0F);
}

TEST(Wav, MissingFileThrows) {
  EXPECT_THROW(read_wav("/nonexistent/definitely_missing.wav"), std::runtime_error);
}

TEST(Wav, GarbageFileThrows) {
  const std::string path = "/tmp/fmbs_garbage.bin";
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a wav file at all", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_wav(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fmbs::audio
