// Adding two absolute power levels in log space is dimensionally
// meaningless (what would -30 dBm + -30 dBm be?); link budgets compose a
// level with a *gain* (Dbm + Db). The types must refuse.
// expect-error: no match for .operator\+.*Dbm.*Dbm
#include "core/units.h"

int main() {
  const fmbs::units::Dbm tag{-30.0};
  const fmbs::units::Dbm rx{-52.0};
  return (tag + rx).raw() > 0.0;
}
