// A gain (dB) is not a power level (dBm). Passing a relative quantity where
// an absolute one is required silently breaks a link budget if the type
// system lets it through.
// expect-error: (cannot|could not) convert .*units::Db.*to .*units::Dbm
#include "channel/link_budget.h"

int main() {
  const fmbs::units::Db gain{6.0};
  const auto b = fmbs::channel::compute_link_budget(
      gain, fmbs::units::Dbm{-30.0}, fmbs::units::Meters{1.2});
  return b.direct_amplitude > 0.0;
}
