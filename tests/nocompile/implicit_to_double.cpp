// No implicit conversion *out* either: untyped math must go through the
// .raw() escape hatch, so every exit from the typed domain is greppable.
// expect-error: cannot convert .*units::Seconds.*to .double.
#include "core/units.h"

double half_of(double x) { return 0.5 * x; }

int main() {
  const fmbs::units::Seconds window{0.1};
  return half_of(window) > 0.0;
}
