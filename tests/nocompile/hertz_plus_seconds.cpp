// Quantities of different dimensions do not add. (Hz + s has no unit; the
// only cross-dimension product defined is Seconds * SampleRate -> samples.)
// expect-error: no match for .operator\+.*Hertz.*Seconds
#include "core/units.h"

int main() {
  const fmbs::units::Hertz shift{600e3};
  const fmbs::units::Seconds slot{0.08};
  return (shift + slot).raw() > 0.0;
}
