// Construction is explicit: a bare double carries no unit, so it must not
// silently become one. (94.9e6 what? Hz? kHz? The literal suffixes exist
// for exactly this.)
// expect-error: conversion from .double. to non-scalar type .*Hertz
#include "core/units.h"

int main() {
  const fmbs::units::Hertz carrier = 94.9e6;
  return carrier.raw() > 0.0;
}
