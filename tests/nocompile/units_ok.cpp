// Control fixture (no expect-error lines): the legal dimensional algebra
// must keep compiling, proving the harness distinguishes "rejected for the
// right reason" from "everything fails". Exercises every sanctioned
// cross-type operation in one translation unit.
#include "channel/link_budget.h"
#include "core/units.h"
#include "fm/transmitter.h"

using namespace fmbs::units::literals;
namespace units = fmbs::units;

int main() {
  // Log-domain link-budget algebra.
  const units::Dbm tag = -30.0_dbm;
  const units::Dbm at_rx = tag + units::Db{-18.5};
  const units::Db margin = at_rx - (-93.0_dbm);

  // Linear domain and the blessed conversions.
  const units::Watts w = at_rx.to_watts();
  const units::Meters d = (4.0_ft).to_meters();
  const units::Meters lambda = (94.9_mhz).wavelength();

  // Time <-> samples via the project rounding rule.
  const units::SampleCount n = 0.1_s * units::SampleRate{240000.0};
  const units::Seconds back = n.at(units::SampleRate{240000.0});

  // A migrated API accepts the typed call shape.
  fmbs::fm::StationConfig config;
  config.deviation = 75.0_khz;
  const auto budget = fmbs::channel::compute_link_budget(tag, tag, d);

  return (margin.raw() > 0.0 && w.raw() > 0.0 && lambda.raw() > 0.0 &&
          back.raw() > 0.0 && budget.direct_amplitude > 0.0)
             ? 0
             : 1;
}
