// The migrated public APIs refuse bare doubles: render_station's duration
// parameter is units::Seconds, so the pre-migration call shape no longer
// compiles. (This is the regression the whole harness guards: someone
// re-widening a typed API back to double would make this fixture build.)
// expect-error: (cannot|could not) convert .*.double.*to .*units::Seconds
#include "fm/transmitter.h"

int main() {
  fmbs::fm::StationConfig config;
  const auto signal = fmbs::fm::render_station(config, 0.5);
  return signal.iq.empty() ? 1 : 0;
}
