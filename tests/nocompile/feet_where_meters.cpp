// The paper reports feet; the physics runs in meters. Handing feet to a
// meters parameter is the classic unit bug (Mars Climate Orbiter class) —
// the conversion must be spelled .to_meters().
// expect-error: (cannot|could not) convert .*units::Feet.*to .*units::Meters
#include "channel/link_budget.h"

int main() {
  const fmbs::units::Feet range{4.0};
  const auto b = fmbs::channel::compute_link_budget(
      fmbs::units::Dbm{-30.0}, fmbs::units::Dbm{-30.0}, range);
  return b.direct_amplitude > 0.0;
}
