#include "tag/subcarrier.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/math_util.h"
#include "dsp/spectrum.h"

namespace fmbs::tag {
namespace {

// Complex band power helper: power of B(t) within [lo, hi] Hz (positive
// frequencies only, via the real part for real waveforms).
double real_band_power(const dsp::cvec& x, double rate, double lo, double hi) {
  std::vector<float> re(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) re[i] = x[i].real();
  return dsp::band_power(re, rate, lo, hi);
}

TEST(Subcarrier, IdleToneSitsAtShiftFrequency) {
  SubcarrierConfig cfg;
  SubcarrierGenerator gen(cfg);
  const std::vector<float> silence(24000, 0.0F);
  const dsp::cvec b = gen.process(silence);
  ASSERT_EQ(b.size(), 240000U);
  const double p_at_shift = real_band_power(b, cfg.rf_rate, 595000.0, 605000.0);
  const double p_elsewhere = real_band_power(b, cfg.rf_rate, 100000.0, 500000.0);
  EXPECT_GT(p_at_shift, 100.0 * p_elsewhere);
}

TEST(Subcarrier, FundamentalAmplitudeIsFourOverPi) {
  SubcarrierConfig cfg;
  SubcarrierGenerator gen(cfg);
  const std::vector<float> silence(24000, 0.0F);
  const dsp::cvec b = gen.process(silence);
  // Power of (4/pi) cos = (4/pi)^2 / 2 = 0.811.
  double p = 0.0;
  for (const auto& v : b) p += std::norm(v);
  p /= static_cast<double>(b.size());
  EXPECT_NEAR(p, 0.811, 0.02);
}

TEST(Subcarrier, BasebandShiftsInstantaneousFrequency) {
  // Full-scale positive baseband -> tone at shift + deviation.
  SubcarrierConfig cfg;
  SubcarrierGenerator gen(cfg);
  const std::vector<float> high(24000, 1.0F);
  const dsp::cvec b = gen.process(high);
  const double p_at_dev = real_band_power(b, cfg.rf_rate, 670000.0, 680000.0);
  const double p_at_center = real_band_power(b, cfg.rf_rate, 595000.0, 605000.0);
  EXPECT_GT(p_at_dev, 30.0 * p_at_center);
}

TEST(Subcarrier, HardSquareIsPlusMinusOne) {
  SubcarrierConfig cfg;
  cfg.mode = SubcarrierMode::kHardSquare;
  SubcarrierGenerator gen(cfg);
  const std::vector<float> silence(2400, 0.0F);
  const dsp::cvec b = gen.process(silence);
  for (const auto& v : b) {
    EXPECT_EQ(std::abs(v.real()), 1.0F);
    EXPECT_EQ(v.imag(), 0.0F);
  }
}

TEST(Subcarrier, SsbIsComplexWithConstantModulus) {
  SubcarrierConfig cfg;
  cfg.mode = SubcarrierMode::kSingleSideband;
  SubcarrierGenerator gen(cfg);
  const std::vector<float> silence(2400, 0.0F);
  const dsp::cvec b = gen.process(silence);
  for (const auto& v : b) {
    EXPECT_NEAR(std::abs(v), static_cast<float>(2.0 / dsp::kPi), 1e-3F);
  }
}

TEST(Subcarrier, SsbSuppressesMirror) {
  // Real square wave has energy at -f_back (mirror); SSB must not. Measure
  // via the analytic signal: correlate with e^{+j2 pi f t} and e^{-j2 pi f t}.
  SubcarrierConfig cfg;
  cfg.mode = SubcarrierMode::kSingleSideband;
  SubcarrierGenerator gen(cfg);
  const std::vector<float> silence(24000, 0.0F);
  const dsp::cvec b = gen.process(silence);
  std::complex<double> pos{0.0, 0.0}, neg{0.0, 0.0};
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double ph = dsp::kTwoPi * 600000.0 * static_cast<double>(i) / cfg.rf_rate;
    const std::complex<double> e(std::cos(ph), std::sin(ph));
    const std::complex<double> v(b[i].real(), b[i].imag());
    pos += v * std::conj(e);
    neg += v * e;
  }
  EXPECT_GT(std::abs(pos), 100.0 * std::abs(neg));
}

TEST(Subcarrier, DcoQuantizationAddsSpurs) {
  SubcarrierConfig ideal;
  SubcarrierConfig coarse;
  coarse.dco_bits = 3;  // very coarse quantizer
  SubcarrierGenerator g1(ideal);
  SubcarrierGenerator g2(coarse);
  // A slow ramp exercises many quantization levels.
  std::vector<float> ramp(24000);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<float>(std::sin(dsp::kTwoPi * 0.0005 * i));
  }
  const dsp::cvec b1 = g1.process(ramp);
  const dsp::cvec b2 = g2.process(ramp);
  // Out-of-band spur power (well away from the subcarrier band).
  const double spur1 = real_band_power(b1, ideal.rf_rate, 100000.0, 400000.0);
  const double spur2 = real_band_power(b2, ideal.rf_rate, 100000.0, 400000.0);
  EXPECT_GT(spur2, spur1);
}

TEST(Subcarrier, EightBitDcoIsNearIdeal) {
  // The IC's 8-bit capacitor bank: quantization effects should be tiny.
  SubcarrierConfig ideal;
  SubcarrierConfig ic;
  ic.dco_bits = 8;
  SubcarrierGenerator g1(ideal);
  SubcarrierGenerator g2(ic);
  std::vector<float> ramp(24000);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<float>(std::sin(dsp::kTwoPi * 0.0005 * i));
  }
  const dsp::cvec b1 = g1.process(ramp);
  const dsp::cvec b2 = g2.process(ramp);
  const double band1 = real_band_power(b1, ideal.rf_rate, 520000.0, 680000.0);
  const double band2 = real_band_power(b2, ideal.rf_rate, 520000.0, 680000.0);
  EXPECT_NEAR(band2 / band1, 1.0, 0.05);
}

TEST(Subcarrier, StreamingPhaseContinuity) {
  SubcarrierConfig cfg;
  SubcarrierGenerator whole(cfg);
  SubcarrierGenerator chunked(cfg);
  const std::vector<float> silence(4800, 0.0F);
  const dsp::cvec ref = whole.process(silence);
  dsp::cvec got;
  for (std::size_t start = 0; start < silence.size(); start += 1200) {
    const auto part = chunked.process(
        std::span<const float>(silence.data() + start, 1200));
    got.insert(got.end(), part.begin(), part.end());
  }
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i].real(), ref[i].real(), 1e-4F) << "discontinuity at " << i;
  }
}

TEST(Subcarrier, Validation) {
  SubcarrierConfig bad;
  bad.shift = units::Hertz{0.0};
  EXPECT_THROW(SubcarrierGenerator{bad}, std::invalid_argument);
  SubcarrierConfig too_fast;
  too_fast.shift = units::Hertz{1.3e6};  // 1.3 MHz + 75 kHz >= 1.2 MHz Nyquist
  EXPECT_THROW(SubcarrierGenerator{too_fast}, std::invalid_argument);
  SubcarrierConfig bad_rate;
  bad_rate.baseband_rate = 100000.0;  // 2.4 MHz / 100 kHz = 24 OK; use odd rate
  bad_rate.rf_rate = 250000.0;        // 2.5x -> not integer
  EXPECT_THROW(SubcarrierGenerator{bad_rate}, std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::tag
