#include "tag/coding.h"

#include <gtest/gtest.h>

#include <random>

#include "tag/fsk.h"

namespace fmbs::tag {
namespace {

TEST(Hamming74, RoundTripClean) {
  const auto data = random_bits(64, 1);
  const auto coded = hamming74_encode(data);
  EXPECT_EQ(coded.size(), 64U / 4U * 7U);
  const auto decoded = hamming74_decode(coded);
  ASSERT_EQ(decoded.size(), data.size());
  EXPECT_EQ(decoded, data);
}

TEST(Hamming74, CorrectsSingleErrorPerBlock) {
  const auto data = random_bits(32, 2);
  auto coded = hamming74_encode(data);
  // Flip one bit in every 7-bit block (each position once over the blocks).
  for (std::size_t block = 0; block * 7 < coded.size(); ++block) {
    coded[block * 7 + block % 7] ^= 1;
  }
  const auto decoded = hamming74_decode(coded);
  EXPECT_EQ(decoded, data);
}

TEST(Hamming74, TwoErrorsPerBlockFail) {
  // Sanity: the code is only single-error-correcting.
  const std::vector<std::uint8_t> data{1, 0, 1, 1};
  auto coded = hamming74_encode(data);
  coded[0] ^= 1;
  coded[1] ^= 1;
  const auto decoded = hamming74_decode(coded);
  EXPECT_NE(decoded, data);
}

TEST(Hamming74, PadsPartialBlock) {
  const std::vector<std::uint8_t> data{1, 1, 0};  // not a multiple of 4
  const auto coded = hamming74_encode(data);
  EXPECT_EQ(coded.size(), 7U);
  const auto decoded = hamming74_decode(coded);
  ASSERT_EQ(decoded.size(), 4U);
  EXPECT_EQ(decoded[0], 1);
  EXPECT_EQ(decoded[1], 1);
  EXPECT_EQ(decoded[2], 0);
}

TEST(Convolutional, RoundTripClean) {
  const auto data = random_bits(200, 3);
  const auto coded = convolutional_encode(data);
  EXPECT_EQ(coded.size(), 2U * (200U + 6U));
  const auto decoded = viterbi_decode(coded);
  EXPECT_EQ(decoded, data);
}

TEST(Convolutional, CorrectsScatteredErrors) {
  const auto data = random_bits(200, 4);
  auto coded = convolutional_encode(data);
  // ~4% random errors, scattered (the interleaver's job in the pipeline).
  std::mt19937 rng(5);
  std::uniform_int_distribution<std::size_t> pos(0, coded.size() - 1);
  for (int i = 0; i < static_cast<int>(coded.size() / 25); ++i) {
    coded[pos(rng)] ^= 1;
  }
  const auto decoded = viterbi_decode(coded);
  ASSERT_EQ(decoded.size(), data.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (decoded[i] != data[i]) ++errors;
  }
  EXPECT_EQ(errors, 0U) << "K=7 Viterbi should clean up 4% scattered errors";
}

TEST(Convolutional, BurstWithoutInterleaverFails) {
  const auto data = random_bits(200, 6);
  auto coded = convolutional_encode(data);
  // A 30-bit burst exceeds the code's memory; expect residual errors.
  for (std::size_t i = 100; i < 130; ++i) coded[i] ^= 1;
  const auto decoded = viterbi_decode(coded);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (decoded[i] != data[i]) ++errors;
  }
  EXPECT_GT(errors, 0U);
}

TEST(Convolutional, Validation) {
  const std::vector<std::uint8_t> odd(13, 0);
  EXPECT_THROW(viterbi_decode(odd), std::invalid_argument);
  const std::vector<std::uint8_t> tiny(4, 0);
  EXPECT_THROW(viterbi_decode(tiny), std::invalid_argument);
}

TEST(Interleaver, RoundTrip) {
  const auto data = random_bits(16 * 32 * 2, 7);
  const auto inter = interleave(data, 16, 32);
  const auto deinter = deinterleave(inter, 16, 32);
  ASSERT_GE(deinter.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(deinter[i], data[i]);
  }
}

TEST(Interleaver, SpreadsBursts) {
  // A burst of B consecutive channel errors must land in distinct rows after
  // deinterleaving: no two errors closer than `cols` apart.
  const std::size_t rows = 8, cols = 16;
  std::vector<std::uint8_t> data(rows * cols, 0);
  auto inter = interleave(data, rows, cols);
  for (std::size_t i = 40; i < 46; ++i) inter[i] ^= 1;  // 6-bit burst
  const auto deinter = deinterleave(inter, rows, cols);
  std::vector<std::size_t> error_positions;
  for (std::size_t i = 0; i < deinter.size(); ++i) {
    if (deinter[i]) error_positions.push_back(i);
  }
  ASSERT_EQ(error_positions.size(), 6U);
  for (std::size_t i = 1; i < error_positions.size(); ++i) {
    EXPECT_GE(error_positions[i] - error_positions[i - 1], cols - 1);
  }
}

TEST(Interleaver, Validation) {
  const std::vector<std::uint8_t> bits{1};
  EXPECT_THROW(interleave(bits, 0, 4), std::invalid_argument);
  EXPECT_THROW(deinterleave(bits, 4, 0), std::invalid_argument);
}

class FecSchemes : public ::testing::TestWithParam<FecScheme> {};

TEST_P(FecSchemes, PipelineRoundTrip) {
  const auto data = random_bits(300, 8);
  const auto coded = fec_encode(data, GetParam());
  EXPECT_EQ(coded.size(), fec_encoded_length(data.size(), GetParam()));
  const auto decoded = fec_decode(coded, GetParam(), data.size());
  EXPECT_EQ(decoded, data);
}

TEST_P(FecSchemes, BurstToleranceOrdering) {
  // With the interleaver, a channel burst is survivable by the coded
  // schemes in proportion to their strength.
  const auto data = random_bits(300, 9);
  auto coded = fec_encode(data, GetParam());
  for (std::size_t i = 64; i < 72 && i < coded.size(); ++i) coded[i] ^= 1;
  const auto decoded = fec_decode(coded, GetParam(), data.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (decoded[i] != data[i]) ++errors;
  }
  if (GetParam() == FecScheme::kNone) {
    EXPECT_EQ(errors, 8U);  // burst passes straight through
  } else {
    EXPECT_EQ(errors, 0U) << "coded scheme should absorb an 8-bit burst";
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, FecSchemes,
                         ::testing::Values(FecScheme::kNone,
                                           FecScheme::kHamming74,
                                           FecScheme::kConvolutionalK7));

TEST(Fec, RatesAndNames) {
  EXPECT_EQ(fec_rate(FecScheme::kNone), 1.0);
  EXPECT_NEAR(fec_rate(FecScheme::kHamming74), 4.0 / 7.0, 1e-12);
  EXPECT_EQ(fec_rate(FecScheme::kConvolutionalK7), 0.5);
  EXPECT_STREQ(to_string(FecScheme::kHamming74), "Hamming(7,4)");
}

}  // namespace
}  // namespace fmbs::tag
