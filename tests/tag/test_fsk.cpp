#include "tag/fsk.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/goertzel.h"
#include "dsp/spectrum.h"
#include "fm/constants.h"

namespace fmbs::tag {
namespace {

TEST(FskParams, PaperRates) {
  const auto p100 = FskParams::for_rate(DataRate::k100bps);
  EXPECT_EQ(p100.tones_hz.size(), 2U);
  EXPECT_EQ(p100.tones_hz[0], 8000.0);   // paper: 8 kHz for 0
  EXPECT_EQ(p100.tones_hz[1], 12000.0);  // paper: 12 kHz for 1
  EXPECT_EQ(p100.symbol_rate, 100.0);
  EXPECT_EQ(p100.bits_per_symbol, 1U);

  const auto p16 = FskParams::for_rate(DataRate::k1600bps);
  EXPECT_EQ(p16.tones_hz.size(), 16U);
  EXPECT_EQ(p16.tones_hz.front(), 800.0);
  EXPECT_EQ(p16.tones_hz.back(), 12800.0);
  EXPECT_EQ(p16.groups, 4U);
  EXPECT_EQ(p16.symbol_rate, 200.0);
  EXPECT_EQ(p16.bits_per_symbol, 8U);

  const auto p32 = FskParams::for_rate(DataRate::k3200bps);
  EXPECT_EQ(p32.symbol_rate, 400.0);
}

TEST(FskParams, RateHelpers) {
  EXPECT_EQ(bits_per_second(DataRate::k100bps), 100.0);
  EXPECT_EQ(bits_per_second(DataRate::k1600bps), 1600.0);
  EXPECT_EQ(bits_per_second(DataRate::k3200bps), 3200.0);
  EXPECT_STREQ(to_string(DataRate::k100bps), "100bps");
  EXPECT_STREQ(to_string(DataRate::k3200bps), "3.2kbps");
}

TEST(Fsk2, ZeroAndOneMapToTones) {
  const std::vector<std::uint8_t> zero{0};
  const std::vector<std::uint8_t> one{1};
  const auto w0 = modulate_fsk(zero, DataRate::k100bps, fm::kAudioRate);
  const auto w1 = modulate_fsk(one, DataRate::k100bps, fm::kAudioRate);
  EXPECT_GT(dsp::goertzel_power(w0.samples, 8000.0, fm::kAudioRate),
            10.0 * dsp::goertzel_power(w0.samples, 12000.0, fm::kAudioRate));
  EXPECT_GT(dsp::goertzel_power(w1.samples, 12000.0, fm::kAudioRate),
            10.0 * dsp::goertzel_power(w1.samples, 8000.0, fm::kAudioRate));
}

TEST(Fsk2, SymbolDurationCorrect) {
  const auto bits = random_bits(25, 1);
  const auto w = modulate_fsk(bits, DataRate::k100bps, fm::kAudioRate);
  EXPECT_EQ(w.size(), 25U * 480U);  // 100 sps at 48 kHz
  EXPECT_NEAR(w.duration_seconds(), 0.25, 1e-9);
}

TEST(Fdm4Fsk, FourTonesActivePerSymbol) {
  // One symbol of 8 bits = one tone per group; exactly 4 spectral lines.
  const std::vector<std::uint8_t> bits{0, 0, 0, 1, 1, 0, 1, 1};  // 00 01 10 11
  const auto w = modulate_fsk(bits, DataRate::k1600bps, fm::kAudioRate);
  // Expected tones: group 0 index 0 -> 800; group 1 index 1 -> 4*800+2*... :
  // group g index i -> tone (g*4 + i + 1) * 800.
  const std::vector<double> expected{800.0, 4800.0, 8800.0, 12800.0};
  for (const double f : expected) {
    EXPECT_GT(dsp::goertzel_power(w.samples, f, fm::kAudioRate), 1e-3)
        << "expected tone " << f;
  }
  // A tone that should NOT be present.
  EXPECT_LT(dsp::goertzel_power(w.samples, 1600.0, fm::kAudioRate), 1e-4);
}

TEST(Fdm4Fsk, PeakBounded) {
  // Four simultaneous tones at 1/4 amplitude: peak can't exceed ~1.
  const auto bits = random_bits(800, 2);
  const auto w = modulate_fsk(bits, DataRate::k3200bps, fm::kAudioRate, 1.0);
  for (const float v : w.samples) EXPECT_LE(std::abs(v), 1.05F);
}

TEST(Fdm4Fsk, PhaseContinuityNoSplatter) {
  // With continuous-phase tones, energy between tone bins stays low.
  const auto bits = random_bits(1600, 3);
  const auto w = modulate_fsk(bits, DataRate::k1600bps, fm::kAudioRate);
  const double on_grid = dsp::band_power(w.samples, fm::kAudioRate, 700.0, 13000.0);
  const double above = dsp::band_power(w.samples, fm::kAudioRate, 14000.0, 20000.0);
  EXPECT_GT(on_grid, 200.0 * above);
}

TEST(Fsk, PadsPartialFinalSymbol) {
  // 9 bits at 8 bits/symbol -> 2 symbols.
  const auto bits = random_bits(9, 4);
  const auto w = modulate_fsk(bits, DataRate::k1600bps, fm::kAudioRate);
  EXPECT_EQ(w.size(), 2U * 240U);
}

TEST(Fsk, Validation) {
  EXPECT_THROW(modulate_fsk({}, DataRate::k100bps, fm::kAudioRate),
               std::invalid_argument);
  const auto bits = random_bits(8, 5);
  EXPECT_THROW(modulate_fsk(bits, DataRate::k100bps, 0.0), std::invalid_argument);
}

TEST(RandomBits, DeterministicAndBalanced) {
  const auto a = random_bits(10000, 6);
  const auto b = random_bits(10000, 6);
  EXPECT_EQ(a, b);
  std::size_t ones = 0;
  for (const auto bit : a) ones += bit;
  EXPECT_NEAR(static_cast<double>(ones), 5000.0, 300.0);
}

}  // namespace
}  // namespace fmbs::tag
