// The tag MAC layer (tag/mac.h): slot quantization, carrier-sense deferral
// mechanics, and — the way tests/core/test_scenario_aloha.cpp cross-checks
// pure ALOHA against S = G e^{-2G} — a slotted-ALOHA throughput cross-check
// of the schedule resolver against the analytic e^{-G} curve and the
// core::aloha Monte-Carlo.
#include "tag/mac.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <unordered_map>

#include "core/aloha.h"

namespace fmbs::tag {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A sense oracle for a channel that is never busy.
units::Dbm silent_channel(std::size_t, units::Seconds, units::Seconds,
                          std::span<const OnAirInterval>) {
  return units::Dbm{-kInf};
}

units::Seconds S(double v) { return units::Seconds{v}; }

TEST(Mac, SlottedStartQuantizesUpToTheNextBoundary) {
  EXPECT_DOUBLE_EQ(slotted_start(S(0.0), S(0.08)).raw(), 0.0);
  EXPECT_DOUBLE_EQ(slotted_start(S(0.001), S(0.08)).raw(), 0.08);
  EXPECT_DOUBLE_EQ(slotted_start(S(0.0799), S(0.08)).raw(), 0.08);
  // A nominal start already on a boundary keeps it.
  EXPECT_DOUBLE_EQ(slotted_start(S(0.16), S(0.08)).raw(), 0.16);
  EXPECT_DOUBLE_EQ(slotted_start(S(0.1600000001), S(0.08)).raw(), 0.24);
  EXPECT_THROW(slotted_start(S(0.1), S(0.0)), std::invalid_argument);
}

TEST(Mac, PureAlohaPassesNominalStartsThrough) {
  std::vector<MacAttempt> attempts(2);
  attempts[0].nominal_start = units::Seconds{0.013};
  attempts[0].burst = units::Seconds{0.06};
  attempts[1].nominal_start = units::Seconds{0.07};
  attempts[1].burst = units::Seconds{0.06};
  const auto d = resolve_mac_schedule(attempts, units::Seconds{1.0}, units::Seconds{0.0}, silent_channel);
  ASSERT_EQ(d.size(), 2U);
  EXPECT_DOUBLE_EQ(d[0].start.raw(), 0.013);
  EXPECT_DOUBLE_EQ(d[1].start.raw(), 0.07);
  EXPECT_TRUE(d[0].transmitted);
  EXPECT_EQ(d[0].deferrals, 0U);
  EXPECT_EQ(d[0].last_sensed.raw(), -kInf);
}

TEST(Mac, SlottedAlohaDerivesThePitchFromTheBurst) {
  MacAttempt a;
  a.config.kind = MacKind::kSlottedAloha;
  a.nominal_start = units::Seconds{0.05};
  a.burst = units::Seconds{0.06};
  a.guard = units::Seconds{0.01};  // derived pitch: 0.06 + 2 * 0.01 = 0.08
  const auto d =
      resolve_mac_schedule(std::vector<MacAttempt>{a}, units::Seconds{1.0}, units::Seconds{0.0}, silent_channel);
  EXPECT_DOUBLE_EQ(d[0].start.raw(), 0.08);

  a.config.slot = units::Seconds{0.2};  // explicit pitch wins
  const auto d2 =
      resolve_mac_schedule(std::vector<MacAttempt>{a}, units::Seconds{1.0}, units::Seconds{0.0}, silent_channel);
  EXPECT_DOUBLE_EQ(d2[0].start.raw(), 0.2);
}

TEST(Mac, CarrierSenseNeedsATimeline) {
  MacAttempt a;
  a.config.kind = MacKind::kCarrierSense;
  a.burst = units::Seconds{0.06};
  EXPECT_THROW(
      resolve_mac_schedule(std::vector<MacAttempt>{a}, units::Seconds{1.0}, units::Seconds{0.0}, silent_channel),
      std::invalid_argument);
}

TEST(Mac, CarrierSenseDefersWhileBusyThenTransmits) {
  // Tag 0: pure ALOHA on the air over [0.07, 0.15] (payload + guards).
  // Tag 1: carrier sense, nominal 0.11 (segment 1 of a 0.1 s timeline).
  std::vector<MacAttempt> attempts(2);
  attempts[0].nominal_start = units::Seconds{0.08};
  attempts[0].burst = units::Seconds{0.06};
  attempts[0].guard = units::Seconds{0.01};
  attempts[1].config.kind = MacKind::kCarrierSense;
  attempts[1].config.cs_threshold = units::Dbm{-70.0};
  attempts[1].nominal_start = units::Seconds{0.11};
  attempts[1].burst = units::Seconds{0.06};
  attempts[1].guard = units::Seconds{0.01};

  // The oracle reports the neighbor hot (-40 dBm) whenever its committed
  // window overlaps the sensed one.
  auto sense = [](std::size_t attempt, units::Seconds w0, units::Seconds w1,
                  std::span<const OnAirInterval> on_air) {
    double dbm = -kInf;
    for (const OnAirInterval& iv : on_air) {
      if (iv.attempt == attempt) continue;
      if (std::min(w1.raw(), iv.end.raw()) - std::max(w0.raw(), iv.begin.raw()) >
          0.0) {
        dbm = std::max(dbm, -40.0);
      }
    }
    return units::Dbm{dbm};
  };
  const auto d = resolve_mac_schedule(attempts, units::Seconds{0.6}, units::Seconds{0.1}, sense);
  // Candidate 0.11 senses segment 0 ([0, 0.1): neighbor on air from 0.07)
  // -> defer to 0.2; 0.2 senses [0.1, 0.2) (neighbor on air until 0.15) ->
  // defer to 0.3; 0.3 senses [0.2, 0.3): clear -> transmit.
  EXPECT_TRUE(d[1].transmitted);
  EXPECT_EQ(d[1].deferrals, 2U);
  EXPECT_DOUBLE_EQ(d[1].start.raw(), 0.3);
  EXPECT_EQ(d[1].last_sensed.raw(), -kInf);
  // The pure neighbor was untouched.
  EXPECT_DOUBLE_EQ(d[0].start.raw(), 0.08);
}

TEST(Mac, SameBoundaryListenersCannotHearEachOther) {
  // Two carrier-sense tags whose candidates land on the same boundary both
  // sense the same (clear) preceding segment and both commit — the residual
  // collision a real LBT cannot avoid.
  std::vector<MacAttempt> attempts(2);
  for (MacAttempt& a : attempts) {
    a.config.kind = MacKind::kCarrierSense;
    a.nominal_start = units::Seconds{0.21};
    a.burst = units::Seconds{0.06};
    a.guard = units::Seconds{0.01};
  }
  auto sense = [](std::size_t, units::Seconds, units::Seconds,
                  std::span<const OnAirInterval> on_air) {
    return units::Dbm{on_air.empty() ? -kInf : -40.0};
  };
  const auto d = resolve_mac_schedule(attempts, units::Seconds{1.0}, units::Seconds{0.1}, sense);
  EXPECT_TRUE(d[0].transmitted);
  EXPECT_TRUE(d[1].transmitted);
  EXPECT_DOUBLE_EQ(d[0].start.raw(), d[1].start.raw());
}

TEST(Mac, CarrierSenseGivesUpWhenTheBurstNoLongerFits) {
  std::vector<MacAttempt> attempts(2);
  attempts[0].nominal_start = units::Seconds{0.0};
  attempts[0].burst = units::Seconds{0.5};  // hogs the whole window
  attempts[0].guard = units::Seconds{0.01};
  attempts[1].config.kind = MacKind::kCarrierSense;
  attempts[1].nominal_start = units::Seconds{0.15};
  attempts[1].burst = units::Seconds{0.06};
  attempts[1].guard = units::Seconds{0.01};
  auto sense = [](std::size_t, units::Seconds, units::Seconds,
                  std::span<const OnAirInterval> on_air) {
    return units::Dbm{on_air.empty() ? -kInf : -40.0};
  };
  const auto d = resolve_mac_schedule(attempts, units::Seconds{0.6}, units::Seconds{0.1}, sense);
  EXPECT_FALSE(d[1].transmitted);
  EXPECT_GT(d[1].deferrals, 0U);
}

TEST(Mac, CarrierSenseNeverThrowsOnAnUnfittableBurst) {
  // Unlike pure/slotted (whose fit is the caller's configuration contract),
  // carrier sense stays silent when its burst cannot fit the window — even
  // at the nominal start on an idle channel, before any deferral.
  std::vector<MacAttempt> attempts(1);
  attempts[0].config.kind = MacKind::kCarrierSense;
  attempts[0].nominal_start = units::Seconds{0.55};
  attempts[0].burst = units::Seconds{0.2};  // 0.55 + 0.2 > 0.6: never fits
  const auto d = resolve_mac_schedule(attempts, units::Seconds{0.6}, units::Seconds{0.1}, silent_channel);
  EXPECT_FALSE(d[0].transmitted);
  EXPECT_EQ(d[0].deferrals, 0U);
}

TEST(Mac, CarrierSenseRespectsMaxDeferrals) {
  std::vector<MacAttempt> attempts(1);
  attempts[0].config.kind = MacKind::kCarrierSense;
  attempts[0].config.max_deferrals = 3;
  attempts[0].nominal_start = units::Seconds{0.15};
  attempts[0].burst = units::Seconds{0.06};
  attempts[0].guard = units::Seconds{0.01};
  // A jammed channel: always busy.
  auto jammed = [](std::size_t, units::Seconds, units::Seconds,
                   std::span<const OnAirInterval>) { return units::Dbm{-30.0}; };
  const auto d = resolve_mac_schedule(attempts, units::Seconds{100.0}, units::Seconds{0.1}, jammed);
  EXPECT_FALSE(d[0].transmitted);
  EXPECT_EQ(d[0].deferrals, 4U);  // the give-up attempt is counted
}

// ---- Slotted ALOHA vs the analytic e^{-G} curve -----------------------------

/// Runs `num_attempts` uniform arrivals through the resolver's slotted
/// policy and scores successes by slot occupancy (a slot used once is a
/// delivery; a shared slot is a total collision — the slotted vulnerability
/// rule).
struct SlottedRun {
  double success_probability = 0.0;
  double offered_load = 0.0;  // G: attempts per slot
  std::size_t attempts = 0;
};

SlottedRun run_slotted(std::size_t num_attempts, std::size_t num_slots,
                       double pitch, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> at(
      0.0, static_cast<double>(num_slots) * pitch);
  std::vector<MacAttempt> attempts(num_attempts);
  for (MacAttempt& a : attempts) {
    a.config.kind = MacKind::kSlottedAloha;
    a.config.slot = units::Seconds{pitch};
    a.nominal_start = units::Seconds{at(rng)};
    a.burst = units::Seconds{0.8 * pitch};
  }
  const auto decisions = resolve_mac_schedule(attempts, units::Seconds{static_cast<double>(num_slots + 2) * pitch}, units::Seconds{0.0}, silent_channel);

  std::unordered_map<long long, std::size_t> occupancy;
  for (const MacDecision& d : decisions) {
    occupancy[std::llround(d.start.raw() / pitch)]++;
  }
  std::size_t successes = 0;
  for (const MacDecision& d : decisions) {
    if (occupancy[std::llround(d.start.raw() / pitch)] == 1) ++successes;
  }
  SlottedRun out;
  out.attempts = num_attempts;
  out.offered_load =
      static_cast<double>(num_attempts) / static_cast<double>(num_slots);
  out.success_probability =
      static_cast<double>(successes) / static_cast<double>(num_attempts);
  return out;
}

/// 3-sigma binomial Monte-Carlo band around p for n samples.
double tolerance(double p, std::size_t n) {
  return 3.0 * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
}

TEST(MacSlottedAloha, LowLoadMatchesAnalytic) {
  const SlottedRun run = run_slotted(400, 1000, 0.08, 2026);
  const double p = std::exp(-run.offered_load);  // e^{-G}, G = 0.4
  EXPECT_NEAR(run.success_probability, p, tolerance(p, run.attempts));
}

TEST(MacSlottedAloha, FullLoadMatchesAnalyticAndMonteCarlo) {
  const SlottedRun run = run_slotted(600, 600, 0.08, 7);
  const double p = std::exp(-run.offered_load);  // e^{-G}, G = 1
  EXPECT_NEAR(run.success_probability, p, tolerance(p, run.attempts));

  // Converged core::aloha Monte-Carlo at the same offered load: the
  // schedule resolver and the MAC simulator must tell the same story.
  core::AlohaConfig mc;
  mc.slotted = true;
  mc.num_tags = 30;
  mc.frame = units::Seconds{0.08};
  mc.duration = units::Seconds{3600.0};
  mc.per_tag_rate = units::Hertz{
      run.offered_load / (mc.frame.raw() * static_cast<double>(mc.num_tags))};
  const core::AlohaResult ref = core::simulate_aloha(mc);
  EXPECT_NEAR(run.success_probability, ref.success_probability,
              tolerance(ref.success_probability, run.attempts));
}

TEST(MacSlottedAloha, ThroughputPeaksNearGOfOne) {
  // S = G e^{-G} peaks at G = 1: the resolver's throughput curve must show
  // the same shape the closed form predicts.
  const double s_low = 0.4 * run_slotted(240, 600, 0.08, 11).success_probability;
  const double s_peak = 1.0 * run_slotted(600, 600, 0.08, 12).success_probability;
  const double s_high = 2.0 * run_slotted(1200, 600, 0.08, 13).success_probability;
  EXPECT_GT(s_peak, s_low);
  EXPECT_GT(s_peak, s_high);
  EXPECT_NEAR(s_peak, std::exp(-1.0), 0.06);
  EXPECT_NEAR(s_peak, core::aloha_theoretical_throughput(1.0, true), 0.06);
}

// ---- The shared vulnerability predicate -------------------------------------
// classify_vulnerability is the one rule both the ALOHA cross-check test and
// the fleet engine's contention classifier apply: clear / graze / collision
// against a neighbor's on-air window.

TEST(MacVulnerability, ClassifiesTheThreeRegimes) {
  const double sym = 0.005;
  const BurstWindow mine{S(1.0), S(0.06), S(0.01)};
  // Other's on-air window ends exactly at my payload start: clear.
  EXPECT_EQ(classify_vulnerability(mine, {S(0.93), S(0.06), S(0.01)}, S(sym)),
            Vulnerability::kClear);
  // Guard-only contact (payload gap smaller than the guard): graze.
  EXPECT_EQ(classify_vulnerability(mine, {S(0.935), S(0.06), S(0.01)}, S(sym)),
            Vulnerability::kGraze);
  // Sub-symbol payload overlap: still a graze.
  EXPECT_EQ(classify_vulnerability(mine, {S(1.0 - 0.06 + 0.002), S(0.06), S(0.01)}, S(sym)),
            Vulnerability::kGraze);
  // Two full symbols of payload overlap (comfortably past the one-symbol
  // threshold, away from float round-off): collision.
  EXPECT_EQ(
      classify_vulnerability(mine, {S(1.0 - 0.06 + 2.0 * sym), S(0.06), S(0.01)}, S(sym)),
      Vulnerability::kCollision);
  // Total overlap: collision.
  EXPECT_EQ(classify_vulnerability(mine, mine, S(sym)), Vulnerability::kCollision);
}

TEST(MacVulnerability, IsSymmetricInTheCollisionRegime) {
  // Payload-vs-payload overlap is symmetric, so two equal-guard bursts
  // always agree on kCollision; the graze band need not be symmetric (the
  // guard contact is mine-payload vs other-window).
  const double sym = 0.005;
  const BurstWindow a{S(0.0), S(0.08), S(0.01)};
  const BurstWindow b{S(0.05), S(0.08), S(0.01)};
  EXPECT_EQ(classify_vulnerability(a, b, S(sym)), Vulnerability::kCollision);
  EXPECT_EQ(classify_vulnerability(b, a, S(sym)), Vulnerability::kCollision);
}

TEST(MacVulnerability, OrderingSupportsWorstOfReduction) {
  // The enum is ordered so std::max over neighbors is "the worst verdict".
  EXPECT_LT(Vulnerability::kClear, Vulnerability::kGraze);
  EXPECT_LT(Vulnerability::kGraze, Vulnerability::kCollision);
  EXPECT_STREQ(to_string(Vulnerability::kClear), "clear");
  EXPECT_STREQ(to_string(Vulnerability::kGraze), "graze");
  EXPECT_STREQ(to_string(Vulnerability::kCollision), "collision");
}

}  // namespace
}  // namespace fmbs::tag
