#include <gtest/gtest.h>

#include "tag/antenna.h"
#include "tag/power_model.h"

namespace fmbs::tag {
namespace {

TEST(PowerModel, PaperTotalAt600k) {
  // Paper section 4: 1 + 9.94 + 0.13 = 11.07 uW.
  const PowerBreakdown p = tag_power();
  EXPECT_NEAR(p.baseband_uw, 1.00, 1e-9);
  EXPECT_NEAR(p.modulator_uw, 9.94, 1e-9);
  EXPECT_NEAR(p.switch_uw, 0.13, 1e-9);
  EXPECT_NEAR(p.total_uw, 11.07, 1e-9);
}

TEST(PowerModel, DynamicPowerScalesWithFrequency) {
  PowerModelConfig cfg;
  cfg.subcarrier = units::Hertz{300e3};
  const PowerBreakdown p = tag_power(cfg);
  EXPECT_NEAR(p.modulator_uw, 9.94 / 2.0, 1e-9);
  EXPECT_NEAR(p.switch_uw, 0.13 / 2.0, 1e-9);
  EXPECT_NEAR(p.baseband_uw, 1.0, 1e-9);  // static block unchanged
}

TEST(PowerModel, LargerShiftCostsMore) {
  PowerModelConfig near_cfg;
  near_cfg.subcarrier = units::Hertz{200e3};
  PowerModelConfig far_cfg;
  far_cfg.subcarrier = units::Hertz{800e3};
  EXPECT_LT(tag_power(near_cfg).total_uw, tag_power(far_cfg).total_uw);
}

TEST(PowerModel, Validation) {
  PowerModelConfig bad;
  bad.subcarrier = units::Hertz{0.0};
  EXPECT_THROW(tag_power(bad), std::invalid_argument);
}

TEST(BatteryLife, PaperFmChipUnderTwelveHours) {
  // Paper section 2: 18.8 mA FM chip on a 225 mAh coin cell -> < 12 h.
  const BatteryLife b = battery_life_from_current(18.8, 225.0);
  EXPECT_LT(b.hours, 12.0);
  EXPECT_GT(b.hours, 11.0);
}

TEST(BatteryLife, BackscatterNearlyThreeYears) {
  // Paper section 2: "our backscatter system could continuously transmit for
  // almost 3 years" on the same cell.
  const BatteryLife b = battery_life(11.07, 225.0);
  EXPECT_GT(b.years, 2.5);
  EXPECT_LT(b.years, 3.5);
}

TEST(BatteryLife, ScalesInverselyWithPower) {
  const BatteryLife a = battery_life(11.07, 225.0);
  const BatteryLife b = battery_life(22.14, 225.0);
  EXPECT_NEAR(a.hours / b.hours, 2.0, 1e-6);
}

TEST(BatteryLife, Validation) {
  EXPECT_THROW(battery_life(0.0, 225.0), std::invalid_argument);
  EXPECT_THROW(battery_life(11.0, 0.0), std::invalid_argument);
  EXPECT_THROW(battery_life(11.0, 225.0, 3.0, 0.0), std::invalid_argument);
  EXPECT_THROW(battery_life_from_current(0.0, 225.0), std::invalid_argument);
}

TEST(Antenna, PosterDipoleIsBestTagAntenna) {
  const double dipole = poster_dipole_antenna().effective_gain_db();
  const double bowtie = poster_bowtie_antenna().effective_gain_db();
  const double shirt = tshirt_meander_antenna(true).effective_gain_db();
  EXPECT_GT(dipole, bowtie);
  EXPECT_GT(bowtie, shirt);
}

TEST(Antenna, BodyProximityCostsGain) {
  const double worn = tshirt_meander_antenna(true).effective_gain_db();
  const double off_body = tshirt_meander_antenna(false).effective_gain_db();
  EXPECT_LT(worn, off_body);
  EXPECT_NEAR(off_body - worn, 4.0, 1e-9);
}

TEST(Antenna, CarBeatsHeadphones) {
  EXPECT_GT(car_whip_antenna().effective_gain_db(),
            headphone_antenna().effective_gain_db() + 5.0);
}

TEST(Antenna, NamesAreDescriptive) {
  EXPECT_FALSE(poster_dipole_antenna().name.empty());
  EXPECT_NE(poster_dipole_antenna().name, poster_bowtie_antenna().name);
}

}  // namespace
}  // namespace fmbs::tag
