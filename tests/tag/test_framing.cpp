#include "tag/framing.h"

#include <gtest/gtest.h>

#include <string>

namespace fmbs::tag {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Crc16, KnownVector) {
  // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
  const auto data = bytes_of("123456789");
  EXPECT_EQ(crc16(data), 0x29B1);
}

TEST(Crc16, EmptyIsInitialValue) { EXPECT_EQ(crc16({}), 0xFFFF); }

TEST(Frame, EncodeDecodeRoundTrip) {
  const auto payload = bytes_of("SIMPLY THREE - FALL TOUR");
  const auto bits = encode_frame(payload);
  const auto decoded = decode_frame(bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(Frame, BitLengthLayout) {
  const auto payload = bytes_of("AB");
  const auto bits = encode_frame(payload);
  EXPECT_EQ(bits.size(), 16U + 8U + 16U + 16U);
}

TEST(Frame, DecodeWithLeadingGarbage) {
  const auto payload = bytes_of("hello");
  auto bits = encode_frame(payload);
  std::vector<std::uint8_t> noisy{1, 0, 1, 1, 1, 0, 0, 1, 0, 1, 0};
  noisy.insert(noisy.end(), bits.begin(), bits.end());
  const auto decoded = decode_frame(noisy);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(Frame, CorruptedCrcRejected) {
  const auto payload = bytes_of("data!");
  auto bits = encode_frame(payload);
  bits[30] ^= 1;  // flip a payload bit
  EXPECT_FALSE(decode_frame(bits).has_value());
}

TEST(Frame, CorruptedSyncNotFound) {
  const auto payload = bytes_of("x");
  auto bits = encode_frame(payload);
  bits[0] ^= 1;
  bits[5] ^= 1;
  EXPECT_FALSE(decode_frame(bits).has_value());
}

TEST(Frame, EmptyPayloadAllowed) {
  const auto bits = encode_frame({});
  const auto decoded = decode_frame(bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(Frame, OversizedPayloadThrows) {
  const std::vector<std::uint8_t> big(256, 0x55);
  EXPECT_THROW(encode_frame(big), std::invalid_argument);
}

TEST(Frame, TruncatedFrameRejected) {
  const auto payload = bytes_of("truncate me");
  auto bits = encode_frame(payload);
  // erase, not resize(size()-10): GCC 12 cannot prove size()>=10 through the
  // inlined resize and emits a -Wstringop-overflow/-Warray-bounds false
  // positive (PR 107852) under -Werror; erasing a checked tail range does
  // the same truncation without the flagged memset path.
  ASSERT_GT(bits.size(), 10U);
  bits.erase(bits.end() - 10, bits.end());
  EXPECT_FALSE(decode_frame(bits).has_value());
}

TEST(RepeatBits, TilesForMrc) {
  const std::vector<std::uint8_t> bits{1, 0, 1};
  const auto tiled = repeat_bits(bits, 3);
  ASSERT_EQ(tiled.size(), 9U);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(tiled[r * 3 + 0], 1);
    EXPECT_EQ(tiled[r * 3 + 1], 0);
    EXPECT_EQ(tiled[r * 3 + 2], 1);
  }
}

TEST(Frame, FindsFrameInLongBitstream) {
  // Multiple frames: decoder returns the first intact one.
  const auto p1 = bytes_of("first");
  const auto p2 = bytes_of("second");
  auto bits = encode_frame(p1);
  const auto more = encode_frame(p2);
  bits.insert(bits.end(), more.begin(), more.end());
  const auto decoded = decode_frame(bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, p1);
}

}  // namespace
}  // namespace fmbs::tag
