#include "tag/baseband.h"

#include <gtest/gtest.h>

#include "audio/tone.h"
#include "dsp/spectrum.h"
#include "fm/constants.h"

namespace fmbs::tag {
namespace {

using audio::make_tone;

TEST(OverlayBaseband, UpsamplesAndScales) {
  const auto tone = make_tone(1000.0, 1.0, 0.5, fm::kAudioRate);
  const auto bb = compose_overlay_baseband(tone, 0.5);
  EXPECT_EQ(bb.size(), tone.size() * 5);
  const double p = dsp::band_power(bb, fm::kMpxRate, 900.0, 1100.0);
  // Amplitude 0.5 tone -> power 0.125.
  EXPECT_NEAR(p, 0.125, 0.02);
}

TEST(OverlayBaseband, RateValidation) {
  audio::MonoBuffer odd(std::vector<float>(100, 0.0F), 44100.0);
  EXPECT_THROW(compose_overlay_baseband(odd, 1.0), std::invalid_argument);
}

TEST(StereoBaseband, ContentAppearsAt38k) {
  const auto tone = make_tone(2000.0, 1.0, 0.5, fm::kAudioRate);
  const auto bb = compose_stereo_baseband(tone, /*insert_pilot=*/false);
  // DSB-SC: energy at 38 +- 2 kHz, none at baseband 2 kHz or 19 kHz.
  const double p_sub = dsp::band_power(bb, fm::kMpxRate, 35000.0, 41000.0);
  const double p_base = dsp::band_power(bb, fm::kMpxRate, 1000.0, 3000.0);
  const double p_pilot = dsp::band_power(bb, fm::kMpxRate, 18800.0, 19200.0);
  EXPECT_GT(p_sub, 100.0 * p_base);
  EXPECT_LT(p_pilot, 1e-6);
}

TEST(StereoBaseband, PilotInsertionMatchesPaperEquation) {
  // Paper: B(t) baseband = 0.9 FM_stereo_back + 0.1 cos(2 pi 19k t).
  const auto tone = make_tone(2000.0, 1.0, 0.5, fm::kAudioRate);
  const auto bb = compose_stereo_baseband(tone, /*insert_pilot=*/true);
  const double p_pilot = dsp::band_power(bb, fm::kMpxRate, 18800.0, 19200.0);
  EXPECT_NEAR(p_pilot, 0.005, 0.001);  // (0.1)^2/2
  const double p_sub = dsp::band_power(bb, fm::kMpxRate, 35000.0, 41000.0);
  // 0.9 * tone on carrier: DSB power = (0.9)^2 * (1/2)(tone power 1/2)...
  // measured empirically around 0.2.
  EXPECT_GT(p_sub, 0.1);
}

TEST(CoopBaseband, PreambleThenPayload) {
  const auto tone = make_tone(1000.0, 1.0, 1.0, fm::kAudioRate);
  CoopPilotConfig pilot;
  const auto bb = compose_cooperative_baseband(tone, 0.9, pilot);
  const auto pre_len =
      static_cast<std::size_t>(pilot.preamble_seconds * fm::kMpxRate);
  ASSERT_EQ(bb.size(), pre_len + tone.size() * 5);

  // Preamble: pure 13 kHz pilot at preamble level.
  std::span<const float> pre(bb.data(), pre_len);
  const double p_pilot_pre =
      dsp::band_power(pre, fm::kMpxRate, 12800.0, 13200.0);
  EXPECT_NEAR(p_pilot_pre, 0.25 * 0.25 / 2.0, 0.005);
  const double p_content_pre = dsp::band_power(pre, fm::kMpxRate, 900.0, 1100.0);
  EXPECT_LT(p_content_pre, 1e-6);

  // Payload: content + low-level pilot.
  std::span<const float> pay(bb.data() + pre_len, bb.size() - pre_len);
  const double p_content = dsp::band_power(pay, fm::kMpxRate, 900.0, 1100.0);
  EXPECT_GT(p_content, 0.3);
  const double p_pilot_pay =
      dsp::band_power(pay, fm::kMpxRate, 12800.0, 13200.0);
  EXPECT_NEAR(p_pilot_pay, 0.05 * 0.05 / 2.0, 0.0005);
}

TEST(CoopBaseband, PilotLevelsConfigurable) {
  const auto tone = make_tone(1000.0, 1.0, 0.2, fm::kAudioRate);
  CoopPilotConfig pilot;
  pilot.preamble_level = 0.5;
  pilot.preamble_seconds = 0.1;
  const auto bb = compose_cooperative_baseband(tone, 0.9, pilot);
  std::span<const float> pre(
      bb.data(), static_cast<std::size_t>(pilot.preamble_seconds * fm::kMpxRate));
  const double p = dsp::band_power(pre, fm::kMpxRate, 12800.0, 13200.0);
  EXPECT_NEAR(p, 0.125, 0.01);
}

}  // namespace
}  // namespace fmbs::tag
