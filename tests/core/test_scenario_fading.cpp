// Regression suite for the per-segment fading re-derivation (scenario.cpp):
// a walking tag's channel::FadingProcess used to be constructed once with
// one seed and stream across the whole run, so segment geometry changes
// never decorrelated the fade — a long walk rode one coherent realization.
// Segmented timelines now re-derive the stream per segment
// (derive_seed(fseed, segment)); the zero-waypoint single-segment path
// keeps the historical construction bit-for-bit (golden traces pin that).
#include "core/scenario.h"

#include <gtest/gtest.h>

#include "channel/fading.h"
#include "tag/channel_plan.h"

namespace fmbs::core {
namespace {

Scenario fading_scenario(double segment_seconds) {
  Scenario sc;
  sc.name = "fading-reseed";
  sc.seed = 91;
  sc.station.program.genre = audio::ProgramGenre::kSilence;
  sc.station.program.stereo = false;
  sc.station.seed = 91;
  sc.duration = units::Seconds{0.2};
  sc.timeline.segment = units::Seconds{segment_seconds};

  ScenarioTag t;
  t.name = "walker";
  t.rate = tag::DataRate::k1600bps;
  t.num_bits = 96;
  t.tag_power = units::Dbm{-25.0};
  t.distance_override = units::Feet{4.0};
  t.fading = channel::fading_for_mobility(channel::Mobility::kWalking);
  sc.tags.push_back(std::move(t));
  sc.receivers.push_back(phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

TEST(ScenarioFading, SegmentedTimelineRederivesTheFadingStream) {
  // Regression: with the old single-process construction the fading stream
  // was a function of time only, so segmenting an otherwise identical
  // static scenario changed nothing and these two captures were
  // bit-identical — the fade could never decorrelate with the segments.
  const ScenarioEngine engine;  // keep_captures on: compare raw MPX
  const ScenarioResult whole = engine.run(fading_scenario(0.0));
  const ScenarioResult segmented = engine.run(fading_scenario(0.1));

  const auto& a = whole.receivers[0].capture.fm.mpx;
  const auto& b = segmented.receivers[0].capture.fm.mpx;
  ASSERT_EQ(a.size(), b.size());
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i] != b[i];
  }
  EXPECT_TRUE(differs)
      << "per-segment fading must re-derive its stream, not continue the "
         "single-segment realization";
}

TEST(ScenarioFading, SegmentedFadingIsDeterministic) {
  const ScenarioEngine engine;
  const ScenarioResult r1 = engine.run(fading_scenario(0.1));
  const ScenarioResult r2 = engine.run(fading_scenario(0.1));
  ASSERT_EQ(r1.best_per_tag.size(), 1U);
  ASSERT_EQ(r2.best_per_tag.size(), 1U);
  EXPECT_EQ(r1.best_per_tag[0].burst.ber.bit_errors,
            r2.best_per_tag[0].burst.ber.bit_errors);
  const auto& a = r1.receivers[0].capture.fm.mpx;
  const auto& b = r2.receivers[0].capture.fm.mpx;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "sample " << i;
  }
}

TEST(ScenarioFading, SingleSegmentPathIsStable) {
  // The zero-waypoint, unsegmented path must keep the historical
  // construction: the same scenario decodes identically run-to-run and an
  // explicit fading_seed reproduces the derived-default stream.
  Scenario sc = fading_scenario(0.0);
  const ScenarioEngine engine({.keep_captures = false});
  const ScenarioResult r1 = engine.run(sc);
  const ScenarioResult r2 = engine.run(sc);
  EXPECT_EQ(r1.best_per_tag[0].burst.ber.bit_errors,
            r2.best_per_tag[0].burst.ber.bit_errors);
  EXPECT_DOUBLE_EQ(r1.best_per_tag[0].goodput_bps,
                   r2.best_per_tag[0].goodput_bps);
}

}  // namespace
}  // namespace fmbs::core
