// Regression for the block-padding seam: the engine streams each station's
// render in 0.1 s blocks and fills the tail of the final partial block with
// a pad, and the pad used to be the constant dsp::cfloat(1.0F, 0.0F) — a
// unit carrier snapped to phase zero. The modulated signal ends at some
// arbitrary phase, so the old pad introduced a phase step there, and the
// receiver's FM discriminator turned it into a click. Decode windows really
// do reach that region: rx::demodulate_burst keeps kTailSlackSeconds past
// the payload for its timing search, so a burst ending near the scenario
// end reads padded samples. The fix holds the render's final sample instead
// — carrier-on at the final phase, which the discriminator sees as silence.
//
// The detector is calibrated from measurement, not from a relative program
// bound (an earlier version compared the seam against the program's own
// peak, which the click never exceeds). With a mono news program and a
// -150 dBm monitor the discriminator output just past the seam is pure
// noise floor, ~2e-6; the old phase-step pad puts its click in the first
// ~50 MPX samples after the seam at 1.3e-3 (seed 7) / 9.0e-3 (seed 21) —
// three orders of magnitude above the floor. The 1e-4 threshold sits ~40x
// above the measured floor and ~13x below the smaller measured click, so
// the test fails on the old pad for both seeds and is insensitive to noise
// realization. (The click amplitude tracks the render's end phase, which is
// seed-dependent — seed 59, for instance, happens to end near phase zero
// and clicks by luck barely at all; seeds 7 and 21 do not.)
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

#include "core/scenario.h"
#include "fm/constants.h"

namespace fmbs::core {
namespace {

/// Max |discriminator output| over [begin, end).
float peak_abs(std::span<const float> mpx, std::size_t begin, std::size_t end) {
  float peak = 0.0F;
  for (std::size_t i = begin; i < end; ++i) {
    peak = std::max(peak, std::abs(mpx[i]));
  }
  return peak;
}

void expect_quiet_pad(std::uint64_t seed) {
  SCOPED_TRACE(seed);
  Scenario sc;
  sc.name = "pad-seam";
  sc.settle = units::Seconds{0.08};
  sc.duration = units::Seconds{0.1};  // total 0.18 s = 1.8 blocks -> 0.02 s of pad
  sc.seed = seed;
  sc.station.seed = seed;
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;

  ScenarioReceiver rx;
  rx.name = "monitor";
  rx.tune_offset = units::Hertz{0.0};       // parked on the station carrier itself
  rx.noise_200khz = units::Dbm{-150.0};  // essentially noiseless: isolate the seam
  sc.receivers.push_back(rx);

  const ScenarioResult result = ScenarioEngine().run(sc);
  ASSERT_EQ(result.receivers.size(), 1U);
  const auto& mpx = result.receivers[0].capture.fm.mpx;

  const double total = sc.settle.raw() + sc.duration.raw();
  const auto seam =
      static_cast<std::size_t>(std::llround(total * fm::kMpxRate));
  ASSERT_GT(mpx.size(), seam + 500) << "capture should extend into the pad";

  // Sanity: the capture carries real program ahead of the seam, so a quiet
  // pad cannot be explained by a dead capture.
  EXPECT_GT(peak_abs(mpx, 20000, seam), 0.05F) << "program went silent";

  // The click window: the old pad's phase step lands in the first ~50 MPX
  // samples past the seam (measured 1.3e-3 .. 9.0e-3 there; floor ~2e-6).
  const float click = peak_abs(mpx, seam, seam + 50);
  EXPECT_LT(click, 1e-4F)
      << "click=" << click
      << ": the pad boundary rings above the noise floor — the pad is "
         "snapping the carrier phase again";

  // And the deep pad is carrier-on silence all the way out.
  EXPECT_LT(peak_abs(mpx, seam + 50, mpx.size()), 1e-4F);
}

TEST(ScenarioSeam, PadRegionCarriesNoDiscriminatorClickSeed7) {
  expect_quiet_pad(7);
}
TEST(ScenarioSeam, PadRegionCarriesNoDiscriminatorClickSeed21) {
  expect_quiet_pad(21);
}

}  // namespace
}  // namespace fmbs::core
