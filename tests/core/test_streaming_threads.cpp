// Streaming engine threading behaviour (threaded ctest lane, TSan in CI):
// decoded results are bit-identical at 1, 2 and 8 consumer threads with real
// producer/consumer overlap; a consumer slower than the producer only slows
// the run (backpressure, no drops, no divergence); and a worker failure
// mid-stream tears the pipeline down cleanly — the error propagates, nothing
// deadlocks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/streaming.h"
#include "golden/golden_scenarios.h"

namespace fmbs::core {
namespace {

// Digest of everything decode-dependent in a result; any divergence between
// thread counts shows up as a digest mismatch.
std::vector<double> decode_digest(const ScenarioResult& result) {
  std::vector<double> d;
  for (const auto& rr : result.receivers) {
    for (const auto& link : rr.links) {
      d.push_back(static_cast<double>(link.tag_index));
      d.push_back(link.burst.ber.ber);
      d.push_back(static_cast<double>(link.burst.ber.bit_errors));
      d.push_back(static_cast<double>(link.burst.packets_ok));
      d.push_back(static_cast<double>(link.burst.bits_delivered));
      d.push_back(link.burst.per);
      d.push_back(link.goodput_bps);
      if (link.rds) {
        d.push_back(static_cast<double>(link.rds->blocks_ok));
        d.push_back(link.rds->bler);
      }
    }
    if (rr.station_rds) {
      d.push_back(static_cast<double>(rr.station_rds->blocks_ok));
      d.push_back(rr.station_rds->bler);
    }
  }
  d.push_back(result.aggregate_goodput_bps);
  return d;
}

TEST(StreamingThreads, BitIdenticalAcrossThreadCounts) {
  // city_disjoint has two receivers (car + phone) hearing different tags, so
  // at 2 and 8 threads the consumers genuinely overlap with the producer and
  // each other.
  const Scenario sc = golden::city_disjoint();
  std::vector<std::vector<double>> digests;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    StreamingConfig cfg;
    cfg.consumer_threads = threads;
    digests.push_back(decode_digest(StreamingEngine(cfg).run(sc)));
  }
  ASSERT_EQ(digests[0].size(), digests[1].size());
  ASSERT_EQ(digests[0].size(), digests[2].size());
  for (std::size_t i = 0; i < digests[0].size(); ++i) {
    EXPECT_EQ(digests[0][i], digests[1][i]) << "1 vs 2 threads, field " << i;
    EXPECT_EQ(digests[0][i], digests[2][i]) << "1 vs 8 threads, field " << i;
  }
}

TEST(StreamingThreads, TinyRingForcesBackpressureWithoutDivergence) {
  // ring_blocks = 1: the producer can never run ahead; every block hands off
  // through a full-ring wait. Results must not change.
  const Scenario sc = golden::solo_poster();
  StreamingConfig roomy;
  roomy.consumer_threads = 2;
  roomy.ring_blocks = 16;
  StreamingConfig tight;
  tight.consumer_threads = 2;
  tight.ring_blocks = 1;
  const auto a = decode_digest(StreamingEngine(roomy).run(sc));
  const auto b = decode_digest(StreamingEngine(tight).run(sc));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

TEST(StreamingThreads, SlowConsumerOnlySlowsTheRun) {
  // A deliberately slow on_link callback stalls the consumer mid-stream; the
  // producer must wait (bounded ring), not drop or scramble blocks.
  const Scenario sc = golden::solo_poster();
  StreamingConfig cfg;
  cfg.consumer_threads = 1;
  cfg.ring_blocks = 2;
  std::atomic<int> events{0};
  cfg.on_link = [&](const StreamingLinkEvent&) {
    events.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  const auto slow = decode_digest(StreamingEngine(cfg).run(sc));
  EXPECT_GT(events.load(), 0);
  const auto fast = decode_digest(StreamingEngine(StreamingConfig{}).run(sc));
  ASSERT_EQ(slow.size(), fast.size());
  for (std::size_t i = 0; i < slow.size(); ++i) EXPECT_EQ(slow[i], fast[i]) << i;
}

TEST(StreamingThreads, ConsumerFailureTearsDownCleanly) {
  // An exception from a consumer (via the on_link callback) must stop the
  // ring, unblock the producer, join every worker and surface the error —
  // promptly, with no deadlock even with a tiny ring.
  const Scenario sc = golden::city_disjoint();
  StreamingConfig cfg;
  cfg.consumer_threads = 2;
  cfg.ring_blocks = 1;
  cfg.on_link = [](const StreamingLinkEvent&) {
    throw std::runtime_error("injected consumer failure");
  };
  // A teardown deadlock would hang here and trip the ctest timeout.
  EXPECT_THROW(StreamingEngine(cfg).run(sc), std::runtime_error);
}

TEST(StreamingThreads, MoreThreadsThanReceiversIsFine) {
  // solo_poster has one receiver; 8 consumers means 7 idle threads that must
  // still participate in ring release so the producer never stalls forever.
  const Scenario sc = golden::solo_poster();
  StreamingConfig cfg;
  cfg.consumer_threads = 8;
  cfg.ring_blocks = 2;
  const auto a = decode_digest(StreamingEngine(cfg).run(sc));
  const auto b = decode_digest(StreamingEngine(StreamingConfig{}).run(sc));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

TEST(StreamingThreads, RejectsDegenerateConfig) {
  StreamingConfig zero_threads;
  zero_threads.consumer_threads = 0;
  EXPECT_THROW(StreamingEngine{zero_threads}, std::invalid_argument);
  StreamingConfig zero_ring;
  zero_ring.ring_blocks = 0;
  EXPECT_THROW(StreamingEngine{zero_ring}, std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::core
