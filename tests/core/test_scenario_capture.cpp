// Capture-effect / near-far study (ROADMAP's named next step): two tags
// sharing one backscatter channel with very unequal link budgets. FM
// receivers demodulate the strongest in-channel carrier and suppress the
// weaker one (the capture effect) — so unlike an additive-noise channel,
// the collision is asymmetric: the strong tag's payload survives while the
// weak tag's collapses. The engine reproduces this physically because both
// reflections land in the same MPX spectrum before one shared FM demod.
#include "core/scenario.h"

#include <gtest/gtest.h>

namespace fmbs::core {
namespace {

Scenario near_far_scenario(double strong_dbm, double weak_dbm) {
  Scenario sc;
  sc.name = "near-far";
  // Overlay FSK over real program audio, as deployed tags run; over a
  // silent carrier the tone detector captures even at a ~1 dB gap, which
  // would make the near-equal control below vacuous.
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 71;
  sc.seed = 71;
  sc.duration = units::Seconds{0.35};
  const double powers[2] = {strong_dbm, weak_dbm};
  for (int i = 0; i < 2; ++i) {
    ScenarioTag t;
    t.name = i == 0 ? "near" : "far";
    t.rate = tag::DataRate::k1600bps;  // robust solo at either power
    t.num_bits = 128;
    t.packet_bits = 64;
    t.tag_power = units::Dbm{powers[i]};
    t.distance_override = units::Feet{3.0};
    t.start = units::Seconds{0.0};  // fully overlapping bursts, one channel
    sc.tags.push_back(std::move(t));
  }
  sc.receivers.push_back(phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

TEST(ScenarioCapture, StrongTagCapturesTheChannelWeakTagCollapses) {
  const ScenarioEngine engine({.keep_captures = false});
  const ScenarioResult r = engine.run(near_far_scenario(-18.0, -45.0));
  ASSERT_EQ(r.best_per_tag.size(), 2U);
  const TagLinkReport& strong = r.best_per_tag[0];
  const TagLinkReport& weak = r.best_per_tag[1];

  // The 27 dB power gap puts the receiver firmly in capture: the near tag
  // decodes as if it were alone...
  EXPECT_LT(strong.burst.ber.ber, 0.02) << "capture effect should protect the "
                                           "strong tag";
  EXPECT_EQ(strong.burst.packets_ok, strong.burst.packets);
  // ...while the far tag is suppressed outright, not merely degraded.
  EXPECT_GT(weak.burst.ber.ber, 0.2) << "weak same-channel tag should collapse";
  EXPECT_EQ(weak.burst.packets_ok, 0U);
  EXPECT_GT(strong.goodput_bps, 0.0);
  EXPECT_EQ(weak.goodput_bps, 0.0);
}

TEST(ScenarioCapture, EqualPowersDestroyBothTags) {
  // Control: at equal powers capture gives way to a mutual collision — the
  // scenario the ALOHA model assumes. (FM's capture ratio is famously small,
  // ~1 dB, so even a slightly unequal pair resolves toward the stronger
  // tag; only the symmetric case truly destroys both.)
  const ScenarioEngine engine({.keep_captures = false});
  const ScenarioResult r = engine.run(near_far_scenario(-20.0, -20.0));
  ASSERT_EQ(r.best_per_tag.size(), 2U);
  for (const TagLinkReport& link : r.best_per_tag) {
    EXPECT_GT(link.burst.ber.ber, 0.08) << link.tag_index;
    EXPECT_EQ(link.burst.packets_ok, 0U) << link.tag_index;
  }
}

}  // namespace
}  // namespace fmbs::core
