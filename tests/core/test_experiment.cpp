#include "core/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

namespace fmbs::core {
namespace {

TEST(MakeSystem, PhoneDefaults) {
  ExperimentPoint point;
  point.tag_power = units::Dbm{-42.0};
  point.distance = units::Feet{7.0};
  const SystemConfig cfg = make_system(point);
  EXPECT_EQ(cfg.scene.tag_power.raw(), -42.0);
  EXPECT_EQ(cfg.scene.tag_rx_distance.raw(), 7.0);
  EXPECT_EQ(cfg.receiver, ReceiverKind::kPhone);
  EXPECT_EQ(cfg.scene.rx_noise_200khz.raw(),
            channel::ReceiverNoise::kPhonePer200kHz.raw());
}

TEST(MakeSystem, CarOverrides) {
  ExperimentPoint point;
  point.receiver = ReceiverKind::kCar;
  const SystemConfig cfg = make_system(point);
  EXPECT_EQ(cfg.scene.rx_noise_200khz.raw(),
            channel::ReceiverNoise::kCarPer200kHz.raw());
  EXPECT_TRUE(cfg.stereo_decoder.force_mono);
  EXPECT_GT(cfg.scene.link.rx_antenna_gain.raw(), 0.0);
}

TEST(ToneSnr, StrongCloseToneIsClean) {
  ExperimentPoint point;
  point.tag_power = units::Dbm{-20.0};
  point.distance = units::Feet{4.0};
  const double snr = run_tone_snr(point, units::Hertz{1000.0}, false, units::Seconds{0.8});
  EXPECT_GT(snr, 25.0);
}

TEST(ToneSnr, StereoBandToneDecodes) {
  ExperimentPoint point;
  point.tag_power = units::Dbm{-20.0};
  point.distance = units::Feet{4.0};
  const double snr = run_tone_snr(point, units::Hertz{2000.0}, true, units::Seconds{0.8});
  EXPECT_GT(snr, 15.0);
}

TEST(OverlayBer, CleanAtStrongPower) {
  ExperimentPoint point;
  point.tag_power = units::Dbm{-30.0};
  point.distance = units::Feet{4.0};
  const auto ber = run_overlay_ber(point, tag::DataRate::k1600bps, 320);
  EXPECT_LT(ber.ber, 0.01);
}

TEST(OverlayBerMrc, CombiningHelpsAtWeakPower) {
  ExperimentPoint point;
  point.tag_power = units::Dbm{-55.0};
  point.distance = units::Feet{10.0};
  point.genre = audio::ProgramGenre::kRock;  // hostile interference
  const auto plain = run_overlay_ber(point, tag::DataRate::k1600bps, 240);
  const auto mrc = run_overlay_ber_mrc(point, tag::DataRate::k1600bps, 240, 3);
  EXPECT_LE(mrc.ber, plain.ber + 0.01);
}

TEST(OverlayBerMrc, Validation) {
  ExperimentPoint point;
  EXPECT_THROW(run_overlay_ber_mrc(point, tag::DataRate::k1600bps, 100, 0),
               std::invalid_argument);
}

TEST(StereoBer, NewsStationStereoStreamWorks) {
  ExperimentPoint point;
  point.tag_power = units::Dbm{-25.0};
  point.distance = units::Feet{2.0};
  point.genre = audio::ProgramGenre::kNews;
  point.stereo_station = true;
  const auto ber = run_stereo_ber(point, tag::DataRate::k1600bps, 240);
  EXPECT_LT(ber.ber, 0.05);
}

TEST(FabricBer, StandingBeatsRunning) {
  const auto standing =
      run_fabric_ber(channel::Mobility::kStanding, tag::DataRate::k100bps, 40, 1);
  const auto running =
      run_fabric_ber(channel::Mobility::kRunning, tag::DataRate::k100bps, 40, 1);
  EXPECT_LE(standing.ber, running.ber + 0.05);
}

TEST(PrintTable, FormatsColumns) {
  std::ostringstream os;
  print_table(os, "Fig X", "distance", {1.0, 2.0},
              {{"a", {0.1, 0.2}}, {"b", {0.3}}});
  const std::string s = os.str();
  EXPECT_NE(s.find("Fig X"), std::string::npos);
  EXPECT_NE(s.find("distance"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
  // Missing value printed as '-'.
  EXPECT_NE(s.find('-'), std::string::npos);
}

}  // namespace
}  // namespace fmbs::core
