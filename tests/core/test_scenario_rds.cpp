// The RDS data plane through the scenario stack (paper §4.2, §8, Fig. 3):
// a tag's RadioText burst travels tag -> subcarrier switch -> shared RF
// scene -> receiver tuner -> FM demod -> 57 kHz decode, and a scene
// station's own RDS (PS name) is recovered by a receiver parked on its
// channel — both end-to-end through the real receiver chain, no shortcuts.
#include "core/scenario.h"

#include <gtest/gtest.h>

#include "fm/constants.h"
#include "tag/channel_plan.h"

namespace fmbs::core {
namespace {

Scenario radiotext_scenario(const std::string& text) {
  Scenario sc;
  sc.name = "rds-loopback";
  sc.seed = 71;
  sc.station.program.genre = audio::ProgramGenre::kSilence;
  sc.station.program.stereo = false;
  sc.station.seed = 71;
  sc.duration = units::Seconds{0.35};

  ScenarioTag t;
  t.name = "ad-poster";
  t.rds_radiotext = text;
  t.tag_power = units::Dbm{-25.0};
  t.distance_override = units::Feet{4.0};
  sc.tags.push_back(std::move(t));
  sc.receivers.push_back(phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

TEST(ScenarioRds, TagRadiotextLoopbackThroughPhoneChain) {
  const Scenario sc = radiotext_scenario("GIG TONIGHT");
  const ScenarioResult result = ScenarioEngine().run(sc);

  ASSERT_EQ(result.best_per_tag.size(), 1U);
  const TagLinkReport& link = result.best_per_tag[0];
  ASSERT_TRUE(link.rds.has_value());
  EXPECT_TRUE(link.rds->synced);
  EXPECT_EQ(link.rds->radiotext, "GIG TONIGHT");
  EXPECT_EQ(link.rds->blocks_failed, 0U);
  EXPECT_DOUBLE_EQ(link.rds->bler, 0.0);
  // Uniform reporting: BLER rides in burst.ber.ber, info bits in goodput.
  EXPECT_DOUBLE_EQ(link.burst.ber.ber, 0.0);
  EXPECT_GT(link.goodput_bps, 0.0);
  EXPECT_GT(result.aggregate_goodput_bps, 0.0);
}

TEST(ScenarioRds, StationPsRecoveredOnTunedChannel) {
  Scenario sc;
  sc.name = "rds-station";
  sc.seed = 73;
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 73;
  sc.station.rds_level = 0.06;
  sc.station.rds_ps_name = "CITYRADI";
  sc.duration = units::Seconds{0.45};  // >= 4 PS groups plus sync slack

  ScenarioReceiver radio;
  radio.name = "radio";
  radio.tune_offset = units::Hertz{0.0};  // parked on the station carrier
  sc.receivers.push_back(std::move(radio));

  const ScenarioResult result = ScenarioEngine().run(sc);
  ASSERT_TRUE(result.receivers[0].station_rds.has_value());
  const rx::RdsLinkReport& rds = *result.receivers[0].station_rds;
  EXPECT_TRUE(rds.synced);
  EXPECT_EQ(rds.ps_name, "CITYRADI");
  EXPECT_EQ(rds.blocks_failed, 0U);
}

TEST(ScenarioRds, RdsBurstDefersUnderCarrierSense) {
  // The RDS burst is a MAC citizen like any FSK burst: a carrier-sensing
  // RadioText tag sharing a channel with an early FSK neighbor defers to a
  // segment boundary and still delivers its text.
  Scenario sc;
  sc.name = "rds-lbt";
  sc.seed = 79;
  sc.station.program.genre = audio::ProgramGenre::kSilence;
  sc.station.program.stereo = false;
  sc.station.seed = 79;
  sc.duration = units::Seconds{0.6};
  sc.timeline.segment = units::Seconds{0.1};

  ScenarioTag neighbor;
  neighbor.name = "fsk-neighbor";
  neighbor.rate = tag::DataRate::k1600bps;
  neighbor.num_bits = 96;
  neighbor.tag_power = units::Dbm{-25.0};
  neighbor.distance_override = units::Feet{4.0};
  neighbor.start = units::Seconds{0.0};
  sc.tags.push_back(std::move(neighbor));

  ScenarioTag ad;
  ad.name = "ad-poster";
  ad.rds_radiotext = "GO!";  // 1 group, ~0.09 s burst
  ad.tag_power = units::Dbm{-25.0};
  ad.distance_override = units::Feet{4.0};
  ad.start = units::Seconds{0.0};
  ad.mac.kind = tag::MacKind::kCarrierSense;
  sc.tags.push_back(std::move(ad));

  sc.receivers.push_back(phone_listening_to(sc.tags[0].subcarrier));

  const ScenarioResult result = ScenarioEngine().run(sc);
  EXPECT_TRUE(result.mac[1].transmitted);
  EXPECT_GE(result.mac[1].deferrals, 1U);
  bool found = false;
  for (const TagLinkReport& link : result.best_per_tag) {
    if (link.tag_index != 1) continue;
    found = true;
    ASSERT_TRUE(link.rds.has_value());
    EXPECT_EQ(link.rds->radiotext, "GO!");
    EXPECT_DOUBLE_EQ(link.rds->bler, 0.0);
  }
  EXPECT_TRUE(found) << "no RDS link for the deferring tag";
}

TEST(ScenarioRds, RejectsConflictingPayloadModes) {
  Scenario sc = radiotext_scenario("X");
  sc.tags[0].custom_baseband = dsp::rvec(100, 0.0F);
  EXPECT_THROW(ScenarioEngine().run(sc), std::invalid_argument);

  Scenario bad_level = radiotext_scenario("X");
  bad_level.tags[0].rds_level = 1.5;
  EXPECT_THROW(ScenarioEngine().run(bad_level), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::core
