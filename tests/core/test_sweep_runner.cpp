#include "core/sweep_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "fm/station_cache.h"
#include "support/determinism.h"

namespace fmbs::core {
namespace {

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 17) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a failed loop and keeps working.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8U);
}

TEST(ThreadPool, ZeroItemsIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(DeriveSeed, DeterministicAndWellSpread) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {1ULL, 2ULL, 999ULL}) {
    for (std::uint64_t i = 0; i < 100; ++i) seen.insert(derive_seed(base, i));
  }
  EXPECT_EQ(seen.size(), 300U);  // no collisions across bases or indices
}

TEST(SweepRunner, MapPreservesOrder) {
  SweepRunner runner(SweepConfig{.threads = 4});
  std::vector<int> items(257);
  std::iota(items.begin(), items.end(), 0);
  const auto out = runner.map(items, [](const int& v) { return v * v; });
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(SweepRunner, SeedPolicyIsIndexDerivedAndStationShared) {
  SweepRunner runner(SweepConfig{.threads = 2, .base_seed = 77});
  std::vector<ExperimentPoint> points(3);
  const auto seeded = runner.seed_points(points);
  for (std::size_t i = 0; i < seeded.size(); ++i) {
    EXPECT_EQ(seeded[i].seed, derive_seed(77, i));
    EXPECT_EQ(seeded[i].station_seed, 77U);
  }
  SweepRunner own_station(
      SweepConfig{.threads = 1, .base_seed = 5, .share_station_renders = false});
  const auto unshared = own_station.seed_points(points);
  EXPECT_EQ(unshared[0].station_seed, 0U);
}

// The acceptance property of the engine: the same grid produces bit-identical
// BerResults at 1, 2 and 8 threads.
TEST(SweepRunner, GridIsBitIdenticalAcrossThreadCounts) {
  const std::vector<double> distances{2.0, 4.0};
  const std::vector<double> powers{-25.0, -35.0};

  test::ExpectBitIdenticalAcrossThreads(
      [&](std::size_t threads) {
        SweepRunner runner(SweepConfig{.threads = threads, .base_seed = 11});
        std::vector<ExperimentPoint> points;
        for (const double p : powers) {
          for (const double d : distances) {
            ExperimentPoint point;
            point.tag_power = units::Dbm{p};
            point.distance = units::Feet{d};
            points.push_back(point);
          }
        }
        return runner.map(runner.seed_points(points),
                          [](const ExperimentPoint& pt) {
                            return run_overlay_ber(pt, tag::DataRate::k1600bps,
                                                   64);
                          });
      },
      [](const auto& serial, const auto& other, std::size_t threads) {
        ASSERT_EQ(serial.size(), 4U);
        ASSERT_EQ(other.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
          EXPECT_EQ(serial[i].bit_errors, other[i].bit_errors)
              << threads << "t," << i;
          EXPECT_EQ(serial[i].bits_compared, other[i].bits_compared)
              << threads << "t," << i;
          EXPECT_EQ(serial[i].ber, other[i].ber) << threads << "t," << i;
        }
      });
}

TEST(SweepRunner, RunGridShapesSeries) {
  SweepRunner runner(SweepConfig{.threads = 2, .base_seed = 3});
  std::vector<GridRow> rows;
  for (const double p : {-20.0, -30.0}) {
    rows.push_back(GridRow{
        std::to_string(static_cast<int>(p)) + "dBm",
        [p](double x) {
          ExperimentPoint point;
          point.tag_power = units::Dbm{p};
          point.distance = units::Feet{x};
          return point;
        },
        [](const ExperimentPoint& pt, double x) {
          return pt.tag_power.raw() * 1000.0 + x;  // cheap, order-revealing
        }});
  }
  const auto series = runner.run_grid(rows, {1.0, 2.0, 3.0});
  ASSERT_EQ(series.size(), 2U);
  EXPECT_EQ(series[0].label, "-20dBm");
  EXPECT_EQ(series[0].values, (std::vector<double>{-19999.0, -19998.0, -19997.0}));
  EXPECT_EQ(series[1].values, (std::vector<double>{-29999.0, -29998.0, -29997.0}));
}

TEST(StationCache, CachedRenderEqualsFreshRender) {
  auto& cache = fm::StationCache::instance();
  cache.clear();
  cache.reset_stats();

  fm::StationConfig config;
  config.program.genre = audio::ProgramGenre::kNews;
  config.program.stereo = true;
  config.seed = 1234;
  const double duration = 0.3;

  const auto cached = cache.render(config, units::Seconds{duration});
  const fm::StationSignal fresh = fm::render_station(config, units::Seconds{duration});

  ASSERT_EQ(cached->iq.size(), fresh.iq.size());
  for (std::size_t i = 0; i < fresh.iq.size(); ++i) {
    ASSERT_EQ(cached->iq[i], fresh.iq[i]) << "iq sample " << i;
  }
  ASSERT_EQ(cached->mpx.size(), fresh.mpx.size());
  for (std::size_t i = 0; i < fresh.mpx.size(); ++i) {
    ASSERT_EQ(cached->mpx[i], fresh.mpx[i]) << "mpx sample " << i;
  }
}

TEST(StationCache, SecondLookupHitsAndSharesTheRender) {
  auto& cache = fm::StationCache::instance();
  cache.clear();
  cache.reset_stats();

  fm::StationConfig config;
  config.seed = 777;
  const auto first = cache.render(config, units::Seconds{0.2});
  const auto second = cache.render(config, units::Seconds{0.2});
  EXPECT_EQ(first.get(), second.get());  // literally the same render
  EXPECT_EQ(cache.stats().misses, 1U);
  EXPECT_EQ(cache.stats().hits, 1U);

  // A different seed is a different station: no false sharing.
  config.seed = 778;
  const auto third = cache.render(config, units::Seconds{0.2});
  EXPECT_NE(first.get(), third.get());
  EXPECT_EQ(cache.stats().misses, 2U);
}

TEST(StationCache, DisabledCacheRendersFreshEveryTime) {
  auto& cache = fm::StationCache::instance();
  cache.clear();
  cache.reset_stats();
  cache.set_enabled(false);
  fm::StationConfig config;
  config.seed = 9;
  const auto a = cache.render(config, units::Seconds{0.2});
  const auto b = cache.render(config, units::Seconds{0.2});
  cache.set_enabled(true);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().hits, 0U);
  EXPECT_EQ(cache.stats().misses, 0U);
  ASSERT_EQ(a->iq.size(), b->iq.size());
  for (std::size_t i = 0; i < a->iq.size(); ++i) ASSERT_EQ(a->iq[i], b->iq[i]);
}

TEST(StationCache, EvictsLeastRecentlyUsed) {
  auto& cache = fm::StationCache::instance();
  cache.clear();
  cache.reset_stats();
  const std::size_t original_capacity = cache.capacity();
  cache.set_capacity(1);
  fm::StationConfig config;
  config.seed = 1;
  (void)cache.render(config, units::Seconds{0.2});  // miss
  config.seed = 2;
  (void)cache.render(config, units::Seconds{0.2});  // miss, evicts seed 1
  config.seed = 1;
  (void)cache.render(config, units::Seconds{0.2});  // miss again
  EXPECT_EQ(cache.stats().misses, 3U);
  EXPECT_EQ(cache.stats().hits, 0U);
  cache.set_capacity(original_capacity);
  cache.clear();
}

}  // namespace
}  // namespace fmbs::core
