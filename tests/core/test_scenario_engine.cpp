// Property tests for the multi-tag scenario engine:
//  * a one-tag scenario is bit-identical to the legacy single-tag simulator
//    (same RF scene, same noise draws, same receiver chain),
//  * K tags on K disjoint channels each decode exactly as they do solo
//    (spectrum separation really isolates them),
//  * the demod router, channel planner and audibility rules behave.
#include "core/scenario.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "audio/tone.h"
#include "fm/station_cache.h"
#include "tag/baseband.h"
#include "tag/channel_plan.h"

namespace fmbs::core {
namespace {

// ---- Bit-identity with the legacy simulator --------------------------------

TEST(ScenarioEngine, SingleTagBitIdenticalToSimulator) {
  SystemConfig cfg;
  cfg.station.program.genre = audio::ProgramGenre::kNews;
  cfg.station.program.stereo = false;
  cfg.station.seed = 5;
  cfg.scene.tag_power_dbm = -35.0;
  cfg.scene.tag_rx_distance_feet = 6.0;
  cfg.scene.noise_seed = 99;

  const double duration = 0.4;
  const audio::MonoBuffer tone =
      audio::make_tone(3000.0, 0.8, duration, fm::kAudioRate);
  const dsp::rvec bb = tag::compose_overlay_baseband(tone, kOverlayLevel);

  const SimulationResult legacy = simulate(cfg, bb, duration);
  const ScenarioResult sc =
      ScenarioEngine().run(scenario_from_system(cfg, bb, duration));

  ASSERT_EQ(sc.receivers.size(), 1U);
  const audio::MonoBuffer& a = legacy.backscatter_rx.mono;
  const audio::MonoBuffer& b = sc.receivers[0].capture.mono;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.samples[i], b.samples[i]) << "sample " << i;
  }
  // Stereo chain too: the full capture matches, not just the mono downmix.
  ASSERT_EQ(legacy.backscatter_rx.stereo.size(),
            sc.receivers[0].capture.stereo.size());
  for (std::size_t i = 0; i < legacy.backscatter_rx.stereo.size(); ++i) {
    ASSERT_EQ(legacy.backscatter_rx.stereo.left[i],
              sc.receivers[0].capture.stereo.left[i]) << "L sample " << i;
  }
}

TEST(ScenarioEngine, BridgeCarriesAmbientReceiverAndFading) {
  SystemConfig cfg;
  cfg.station.program.genre = audio::ProgramGenre::kNews;
  cfg.station.program.stereo = false;
  cfg.station.seed = 6;
  cfg.scene.noise_seed = 7;
  cfg.scene.fading = channel::fading_for_mobility(channel::Mobility::kWalking);
  cfg.capture_ambient_receiver = true;

  const double duration = 0.3;
  const audio::MonoBuffer tone =
      audio::make_tone(2000.0, 0.8, duration, fm::kAudioRate);
  const dsp::rvec bb = tag::compose_overlay_baseband(tone, kOverlayLevel);

  const SimulationResult legacy = simulate(cfg, bb, duration);
  const ScenarioResult sc =
      ScenarioEngine().run(scenario_from_system(cfg, bb, duration));

  ASSERT_TRUE(legacy.ambient_rx.has_value());
  ASSERT_EQ(sc.receivers.size(), 2U);
  const audio::MonoBuffer& a = legacy.ambient_rx->mono;
  const audio::MonoBuffer& b = sc.receivers[1].capture.mono;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.samples[i], b.samples[i]) << "ambient sample " << i;
  }
  const audio::MonoBuffer& ab = legacy.backscatter_rx.mono;
  const audio::MonoBuffer& bb2 = sc.receivers[0].capture.mono;
  ASSERT_EQ(ab.size(), bb2.size());
  for (std::size_t i = 0; i < ab.size(); ++i) {
    ASSERT_EQ(ab.samples[i], bb2.samples[i]) << "backscatter sample " << i;
  }
}

// ---- Disjoint channels isolate tags ----------------------------------------

Scenario disjoint_scenario(std::size_t num_tags) {
  Scenario sc;
  sc.name = "disjoint";
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 33;
  sc.seed = 33;
  sc.duration_seconds = 0.25;
  const auto plan = tag::plan_subcarrier_channels(num_tags);
  for (std::size_t i = 0; i < num_tags; ++i) {
    ScenarioTag t;
    t.name = "tag" + std::to_string(i);
    t.subcarrier = plan[i].subcarrier;
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = 96;
    t.tag_power_dbm = -35.0;
    t.distance_override_feet = 6.0;
    sc.tags.push_back(std::move(t));
    sc.receivers.push_back(phone_listening_to(plan[i].subcarrier));
  }
  return sc;
}

TEST(ScenarioEngine, DisjointChannelTagsMatchTheirSoloRuns) {
  constexpr std::size_t kTags = 3;
  const Scenario all = disjoint_scenario(kTags);
  const ScenarioEngine engine;
  const ScenarioResult together = engine.run(all);
  ASSERT_EQ(together.best_per_tag.size(), kTags);

  for (std::size_t i = 0; i < kTags; ++i) {
    // Solo run: same tag, same seeds (explicitly pinned to the multi-run
    // derived values so content and noise draws are unchanged), same rx.
    Scenario solo = all;
    solo.tags = {all.tags[i]};
    solo.tags[0].seed = derive_seed(all.seed, 0x1000 + i);
    solo.receivers = {all.receivers[i]};
    solo.receivers[0].noise_seed = derive_seed(all.seed, 0x3000 + i);
    const ScenarioResult alone = engine.run(solo);
    ASSERT_EQ(alone.best_per_tag.size(), 1U);

    const auto& multi = together.best_per_tag[i];
    const auto& single = alone.best_per_tag[0];
    EXPECT_EQ(multi.tag_index, i);
    // Spectrum separation: adjacent-channel leakage must not flip any bit
    // relative to the tag running alone.
    EXPECT_EQ(multi.burst.ber.bit_errors, single.burst.ber.bit_errors) << i;
    EXPECT_EQ(multi.burst.ber.bits_compared, single.burst.ber.bits_compared) << i;
    EXPECT_EQ(multi.burst.ber.bit_errors, 0U) << "link should be clean at -35 dBm";
  }
}

// ---- Same-channel collision is physical ------------------------------------

TEST(ScenarioEngine, SameChannelOverlapCollidesAndStaggerRecovers) {
  Scenario sc;
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 21;  // a quiet program stretch under the burst window
  sc.seed = 21;
  sc.duration_seconds = 0.35;
  for (int i = 0; i < 2; ++i) {
    ScenarioTag t;
    t.name = i == 0 ? "a" : "b";
    t.rate = tag::DataRate::k1600bps;  // robust solo at this power/range
    t.num_bits = 128;
    t.tag_power_dbm = -20.0;
    t.distance_override_feet = 3.0;
    t.start_seconds = 0.0;  // fully overlapping bursts
    sc.tags.push_back(std::move(t));
  }
  ScenarioReceiver rx;
  rx.tune_offset_hz = sc.tags[0].subcarrier.shift_hz;
  sc.receivers.push_back(rx);

  const ScenarioEngine engine;
  const ScenarioResult collided = engine.run(sc);
  ASSERT_EQ(collided.best_per_tag.size(), 2U);
  // Equal-power overlap on one channel destroys both packets.
  for (const auto& link : collided.best_per_tag) {
    EXPECT_GT(link.burst.ber.ber, 0.08) << "collision should corrupt the payload";
    EXPECT_EQ(link.burst.packets_ok, 0U);
  }

  // Stagger the second tag clear of the first: both decode cleanly.
  Scenario staggered = sc;
  staggered.tags[1].start_seconds = 0.15;  // 128 bits @ 1.6 kbps = 80 ms
  const ScenarioResult apart = engine.run(staggered);
  ASSERT_EQ(apart.best_per_tag.size(), 2U);
  for (const auto& link : apart.best_per_tag) {
    EXPECT_EQ(link.burst.ber.bit_errors, 0U)
        << "staggered burst should be clean, tag " << link.tag_index;
  }
  EXPECT_GT(apart.aggregate_goodput_bps, collided.aggregate_goodput_bps);
}

// ---- Channel planner -------------------------------------------------------

TEST(ChannelPlan, DisjointUpToCapacityThenShared) {
  const std::size_t cap = tag::max_disjoint_channels();
  EXPECT_EQ(cap, 8U);  // 4 raster channels x 2 signs at the 2.4 MHz scene

  const auto four = tag::plan_subcarrier_channels(4);
  for (const auto& a : four) {
    EXPECT_EQ(a.subcarrier.mode, tag::SubcarrierMode::kBandlimitedSquare);
    EXPECT_FALSE(a.shared);
    EXPECT_GE(std::abs(a.subcarrier.shift_hz), 400000.0);
  }

  const auto eight = tag::plan_subcarrier_channels(8);
  std::set<double> shifts;
  for (const auto& a : eight) {
    EXPECT_EQ(a.subcarrier.mode, tag::SubcarrierMode::kSingleSideband);
    EXPECT_FALSE(a.shared);
    shifts.insert(a.subcarrier.shift_hz);
  }
  EXPECT_EQ(shifts.size(), 8U);  // all distinct signed channels

  const auto ten = tag::plan_subcarrier_channels(10);
  EXPECT_FALSE(ten[7].shared);
  EXPECT_TRUE(ten[8].shared);  // band full: round-robin reuse
  EXPECT_TRUE(ten[9].shared);
  EXPECT_EQ(ten[8].subcarrier.shift_hz, ten[0].subcarrier.shift_hz);

  EXPECT_THROW(tag::plan_subcarrier_channels(0), std::invalid_argument);
}

TEST(ChannelPlan, AudibilityFollowsWaveformMirrors) {
  ScenarioTag square;
  square.subcarrier.shift_hz = 600000.0;
  square.subcarrier.mode = tag::SubcarrierMode::kBandlimitedSquare;
  EXPECT_TRUE(tag_audible_at(square, 600000.0));
  EXPECT_TRUE(tag_audible_at(square, -600000.0));  // mirror copy
  EXPECT_FALSE(tag_audible_at(square, 400000.0));
  EXPECT_FALSE(tag_audible_at(square, 0.0));  // ambient rx hears no tag data

  ScenarioTag ssb = square;
  ssb.subcarrier.mode = tag::SubcarrierMode::kSingleSideband;
  EXPECT_TRUE(tag_audible_at(ssb, 600000.0));
  EXPECT_FALSE(tag_audible_at(ssb, -600000.0));  // mirror suppressed
}

// ---- Validation ------------------------------------------------------------

TEST(ScenarioEngine, RejectsInconsistentScenarios) {
  const ScenarioEngine engine;
  Scenario sc;
  EXPECT_THROW(engine.run(sc), std::invalid_argument);  // no receivers

  sc.receivers.emplace_back();
  sc.duration_seconds = 0.0;
  EXPECT_THROW(engine.run(sc), std::invalid_argument);

  sc.duration_seconds = 0.1;
  ScenarioTag t;
  t.num_bits = 6400;  // 2 s at 3.2 kbps cannot fit in 0.1 s
  t.rate = tag::DataRate::k3200bps;
  sc.tags.push_back(t);
  EXPECT_THROW(engine.run(sc), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::core
